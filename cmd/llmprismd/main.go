// Command llmprismd is the long-running multi-tenant fleet daemon: one
// process monitoring many training clusters at once, each behind its own
// streaming session managed by internal/session.
//
// Usage:
//
//	llmprismd -topo topo.json [-listen 127.0.0.1:9900] [-query 127.0.0.1:9901]
//	          [-dir /var/lib/llmprism] [-resume] [-max-sessions 64] [-pending 4]
//	          [-rotate-windows N] [-rotate-bytes N] [-rotate-span 1h]
//	          [-retain-segments N] [-retain-bytes N]
//	          [-window 1m] [-hop 30s] [-lateness 5s] [-depth 2]
//	          [-bucket 1m] [-workers 8] [-localize] [-suppress-chronic]
//	          [-drain 30s] [-ready-file path]
//
// Collectors connect to the ingest listener and speak the LPW1 stream
// framing (see internal/session/wire.go): a hello naming the collector's
// cluster, then length-prefixed binary LPF1 flow frames in event-time
// order, then an end-of-stream marker. Each connection carries exactly one
// cluster; any number of connections may be open at once, across any mix
// of clusters. Frames route into the cluster's session — created lazily on
// the first hello, bounded by -max-sessions — whose window pipeline runs
// with the daemon-wide analysis flags. Per connection, at most -pending
// decoded frames wait between the wire reader and the session push, so a
// collector that outruns analysis is slowed by TCP flow control instead of
// growing the heap.
//
// With -dir set, every cluster's session records its windows to the
// rotating multi-segment store <dir>/<cluster>.llps and checkpoints
// continuity state to <dir>/<cluster>.llpk. The -rotate-* flags bound
// when a store cuts a new segment (windows per segment, segment bytes,
// event-time span) and the -retain-* flags bound how much finalized
// history each store keeps (oldest segments pruned first). Stores follow
// the archive layer's crash-safety contract: closed segments are
// finalized atomically as the capture runs, so a killed daemon loses at
// most each cluster's open-segment temporary — and even that stays
// salvageable (llmprism replay -recover). The session manager rejects any
// configuration where two clusters would share an output path.
//
// With -resume (requires -dir), the daemon restarts every cluster found
// in -dir at boot: each session restores its .llpk checkpoint, reconciles
// its store to the checkpoint's resume point, and continues appending new
// segments — reports after the restart are bit-identical to a run that
// was never interrupted, provided collectors replay their stream from the
// start (records before the resume point are dropped as late). A cluster
// whose previous start never released a window simply starts fresh.
//
// The query listener serves plain text over HTTP (all responses
// Content-Type: text/plain; charset=utf-8):
//
//	GET /v1/clusters           cluster list with window/late-drop counters
//	GET /v1/report?cluster=X   every window report the cluster has released,
//	                           line-identical to llmprism replay of the
//	                           cluster's store
//	GET /v1/latest?cluster=X   the latest window's report only (its alerts,
//	                           incidents and fused suspect ranking)
//	GET /v1/segments?cluster=X the cluster's store manifest: per-segment
//	                           window ranges, event-time bounds and sizes
//
// On SIGINT/SIGTERM the daemon stops accepting, drains open connections
// (force-closing them after -drain), then closes every session — flushing
// remaining windows, writing final checkpoints and finalizing archives in
// deterministic order — and exits. Determinism carries end to end: a
// cluster's daemon-ingested report stream is bit-identical to an offline
// replay of the same frames, whatever the other clusters' connections were
// doing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/session"
	"github.com/llmprism/llmprism/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "llmprismd:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("llmprismd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listenAddr  = fs.String("listen", "127.0.0.1:9900", "collector ingest listener address")
		queryAddr   = fs.String("query", "127.0.0.1:9901", "query (HTTP) listener address")
		topoPath    = fs.String("topo", "topo.json", "topology spec (JSON)")
		dir         = fs.String("dir", "", "per-cluster store/checkpoint directory (empty = no persistence)")
		resume      = fs.Bool("resume", false, "restart every cluster found in -dir from its checkpoint at boot")
		maxSessions = fs.Int("max-sessions", 64, "bound on concurrently open cluster sessions")
		pending     = fs.Int("pending", 4, "per-connection decoded frames buffered ahead of analysis")
		rotWindows  = fs.Int("rotate-windows", 0, "rotate a cluster's store segment after this many windows (0 = no bound)")
		rotBytes    = fs.Int64("rotate-bytes", 0, "rotate a cluster's store segment once it reaches this many bytes (0 = no bound)")
		rotSpan     = fs.Duration("rotate-span", 0, "rotate a cluster's store segment once it spans this much event time (0 = no bound)")
		keepSegs    = fs.Int("retain-segments", 0, "keep at most this many finalized segments per cluster, pruning the oldest (0 = keep all)")
		keepBytes   = fs.Int64("retain-bytes", 0, "keep each cluster's finalized segments within this byte total, pruning the oldest (0 = unbounded)")
		window      = fs.Duration("window", time.Minute, "analysis window width")
		hop         = fs.Duration("hop", 0, "window stride, <= window; 0 = tumbling")
		lateness    = fs.Duration("lateness", 5*time.Second, "allowed out-of-orderness")
		depth       = fs.Int("depth", 2, "pipelined windows in flight per cluster")
		bucket      = fs.Duration("bucket", time.Minute, "switch-level aggregation bucket")
		workers     = fs.Int("workers", 0, "per-job analysis fan-out (0 = GOMAXPROCS)")
		localized   = fs.Bool("localize", false, "rank root-cause suspect components")
		suppress    = fs.Bool("suppress-chronic", false, "suppress persistent anomalies from the alert surface")
		drain       = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout before connections are force-closed")
		readyFile   = fs.String("ready-file", "", "write the bound ingest and query addresses here once serving (atomic rename)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *maxSessions < 1 {
		return fmt.Errorf("-max-sessions must be positive (got %d)", *maxSessions)
	}
	if *pending < 1 {
		return fmt.Errorf("-pending must be positive (got %d)", *pending)
	}
	if *drain <= 0 {
		return fmt.Errorf("-drain must be positive (got %v)", *drain)
	}
	if *rotWindows < 0 || *rotBytes < 0 || *rotSpan < 0 || *keepSegs < 0 || *keepBytes < 0 {
		return fmt.Errorf("rotation and retention bounds must not be negative")
	}
	if *resume && *dir == "" {
		return fmt.Errorf("-resume requires -dir")
	}

	tf, err := os.Open(*topoPath)
	if err != nil {
		return err
	}
	topo, err := topology.ReadJSON(tf)
	tf.Close()
	if err != nil {
		return err
	}

	cfg := daemonConfig{
		base: session.Config{
			Topo:     topo,
			Bucket:   *bucket,
			Workers:  *workers,
			Localize: *localized,
			Suppress: *suppress,
			Window:   *window,
			Hop:      *hop,
			Lateness: *lateness,
			Depth:    *depth,
		},
		dir: *dir,
		rotate: archive.StorePolicy{
			RotateWindows:  *rotWindows,
			RotateBytes:    *rotBytes,
			RotateSpan:     *rotSpan,
			RetainSegments: *keepSegs,
			RetainBytes:    *keepBytes,
		},
		resume:      *resume,
		maxSessions: *maxSessions,
		pending:     *pending,
		logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	}
	ingestLn, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		return err
	}
	queryLn, err := net.Listen("tcp", *queryAddr)
	if err != nil {
		ingestLn.Close()
		return err
	}
	d, err := newDaemon(context.Background(), cfg, ingestLn, queryLn)
	if err != nil {
		ingestLn.Close()
		queryLn.Close()
		return err
	}
	resumed, err := d.ResumeClusters()
	for _, c := range resumed {
		cfg.logf("llmprismd: resumed cluster %s from checkpoint", c)
	}
	if err != nil {
		ingestLn.Close()
		queryLn.Close()
		return errors.Join(err, d.mgr.Close())
	}
	d.Serve()
	cfg.logf("llmprismd: ingest on %s, query on http://%s", ingestLn.Addr(), queryLn.Addr())
	if *readyFile != "" {
		if err := writeReadyFile(*readyFile, ingestLn.Addr().String(), queryLn.Addr().String()); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	cfg.logf("llmprismd: shutting down (draining up to %v)", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = d.Shutdown(drainCtx)
	for _, c := range d.Clusters() {
		windows, late := d.ClusterStats(c)
		cfg.logf("llmprismd: cluster %s: %d windows, %d late drops", c, windows, late)
	}
	return errors.Join(err, d.Close())
}

// daemonConfig parameterizes a daemon instance.
type daemonConfig struct {
	// base is the analysis and window configuration every cluster session
	// is built from; per-cluster archive/checkpoint paths are added on top.
	base session.Config
	// dir is the per-cluster output directory ("" = no persistence).
	dir string
	// rotate bounds every cluster store's segment rotation and retention.
	rotate archive.StorePolicy
	// resume restarts every cluster found in dir from its checkpoint at
	// boot, and makes lazily created sessions reconcile whatever state a
	// previous run left for their cluster.
	resume bool
	// maxSessions bounds concurrently open cluster sessions (0 = unbounded).
	maxSessions int
	// pending bounds decoded frames buffered per connection between the
	// wire reader and the session push (min 1).
	pending int
	// logf receives operational log lines.
	logf func(format string, args ...any)
}

// daemon is the running server: the session manager, the two listeners,
// and the per-cluster report text the query endpoint serves.
type daemon struct {
	cfg daemonConfig
	ctx context.Context
	mgr *session.Manager

	ingest  net.Listener
	queryLn net.Listener
	query   *http.Server

	// mu guards the query-side state OnReports appends to.
	mu     sync.Mutex
	text   map[string]*strings.Builder
	latest map[string]*llmprism.Report

	// connMu guards the open-connection set; down blocks new registrations
	// once shutdown starts, closing the wg.Add/wg.Wait race.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	down   bool
	wg     sync.WaitGroup
}

// newDaemon assembles a daemon around already-bound listeners. ctx bounds
// every analysis the cluster sessions run; it should outlive the daemon
// (sessions outlive the connections that created them).
func newDaemon(ctx context.Context, cfg daemonConfig, ingestLn, queryLn net.Listener) (*daemon, error) {
	if cfg.pending < 1 {
		cfg.pending = 1
	}
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	d := &daemon{
		cfg:     cfg,
		ctx:     ctx,
		ingest:  ingestLn,
		queryLn: queryLn,
		text:    make(map[string]*strings.Builder),
		latest:  make(map[string]*llmprism.Report),
		conns:   make(map[net.Conn]struct{}),
	}
	mgr, err := session.NewManager(session.ManagerConfig{
		Config:      d.clusterConfig,
		MaxSessions: cfg.maxSessions,
		OnReports:   d.onReports,
	})
	if err != nil {
		return nil, err
	}
	d.mgr = mgr
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/clusters", d.handleClusters)
	mux.HandleFunc("/v1/report", d.handleReport)
	mux.HandleFunc("/v1/latest", d.handleLatest)
	mux.HandleFunc("/v1/segments", d.handleSegments)
	d.query = &http.Server{Handler: mux}
	return d, nil
}

// clusterConfig derives one cluster's session config: the shared analysis
// base plus that cluster's store and checkpoint paths. Cluster IDs have
// already passed ValidateClusterID, so they are safe file-name stems.
func (d *daemon) clusterConfig(cluster string) (session.Config, error) {
	cfg := d.cfg.base
	if d.cfg.dir != "" {
		cfg.StoreDir = filepath.Join(d.cfg.dir, cluster+".llps")
		cfg.CheckpointPath = filepath.Join(d.cfg.dir, cluster+".llpk")
		cfg.Rotate = d.cfg.rotate
		cfg.Resume = d.cfg.resume
	}
	return cfg, nil
}

// ResumeClusters eagerly reopens every cluster a previous run left in the
// persistence directory — any <cluster>.llpk checkpoint or <cluster>.llps
// store — so each session restores its checkpoint and reconciles its
// store at boot, before collectors reconnect. No-op unless the daemon was
// configured with resume and a directory. Returns the resumed cluster
// IDs, sorted; on error, the clusters resumed before the failure are
// still returned.
func (d *daemon) ResumeClusters() ([]string, error) {
	if !d.cfg.resume || d.cfg.dir == "" {
		return nil, nil
	}
	ents, err := os.ReadDir(d.cfg.dir)
	if err != nil {
		return nil, err
	}
	clusters := make(map[string]bool)
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case !ent.IsDir() && strings.HasSuffix(name, ".llpk"):
			clusters[strings.TrimSuffix(name, ".llpk")] = true
		case ent.IsDir() && strings.HasSuffix(name, ".llps"):
			clusters[strings.TrimSuffix(name, ".llps")] = true
		}
	}
	resumed := make([]string, 0, len(clusters))
	for cluster := range clusters {
		if session.ValidateClusterID(cluster) != nil {
			continue
		}
		resumed = append(resumed, cluster)
	}
	sort.Strings(resumed)
	for i, cluster := range resumed {
		if _, err := d.mgr.Session(d.ctx, cluster); err != nil {
			return resumed[:i], fmt.Errorf("resume cluster %q: %w", cluster, err)
		}
	}
	return resumed, nil
}

// writeReadyFile publishes the bound listener addresses for supervisors
// (and the kill-and-resume test harness): two lines, "ingest <addr>" and
// "query <addr>", written to a temporary and renamed so a reader never
// sees a partial file.
func writeReadyFile(path, ingest, query string) error {
	body := fmt.Sprintf("ingest %s\nquery %s\n", ingest, query)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// onReports accumulates each cluster's released window reports as the same
// text the CLI prints, so the query endpoint's answer is line-identical to
// an offline replay. Called by the manager in strict window order per
// cluster, with at least one report.
func (d *daemon) onReports(cluster string, reports []*llmprism.Report) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.text[cluster]
	if b == nil {
		b = &strings.Builder{}
		d.text[cluster] = b
	}
	session.PrintReports(b, reports)
	d.latest[cluster] = reports[len(reports)-1]
}

// Serve starts the accept loops. It returns immediately.
func (d *daemon) Serve() {
	go d.serveIngest()
	go d.query.Serve(d.queryLn)
}

func (d *daemon) serveIngest() {
	for {
		conn, err := d.ingest.Accept()
		if err != nil {
			return
		}
		if !d.trackConn(conn) {
			conn.Close()
			continue
		}
		go func() {
			defer d.untrackConn(conn)
			defer conn.Close()
			d.handleConn(conn)
		}()
	}
}

func (d *daemon) trackConn(c net.Conn) bool {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	if d.down {
		return false
	}
	d.conns[c] = struct{}{}
	d.wg.Add(1)
	return true
}

func (d *daemon) untrackConn(c net.Conn) {
	d.connMu.Lock()
	delete(d.conns, c)
	d.connMu.Unlock()
	d.wg.Done()
}

// handleConn runs one collector connection: hello, then frames into the
// cluster's session until end-of-stream. A bounded channel separates the
// wire reader from the session push, so up to cfg.pending frames decode
// ahead of analysis and a full buffer back-pressures the collector through
// TCP flow control.
func (d *daemon) handleConn(conn net.Conn) {
	cluster, err := session.ReadHello(conn)
	if err != nil {
		d.cfg.logf("llmprismd: %s: %v", conn.RemoteAddr(), err)
		return
	}
	cs, err := d.mgr.Session(d.ctx, cluster)
	if err != nil {
		d.cfg.logf("llmprismd: %s: %v", conn.RemoteAddr(), err)
		return
	}
	frames := make(chan *flow.Frame, d.cfg.pending)
	done := make(chan error, 1)
	go func() {
		for f := range frames {
			if err := cs.PushFrame(f); err != nil {
				done <- err
				// Keep draining so the reader never blocks on a dead
				// session; the frames are lost either way.
				for range frames {
				}
				return
			}
		}
		done <- nil
	}()
	var readErr error
	for {
		f, err := session.ReadFrameMessage(conn)
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		frames <- f
	}
	close(frames)
	if err := <-done; err != nil {
		d.cfg.logf("llmprismd: cluster %s: push: %v", cluster, err)
	}
	if readErr != nil {
		d.cfg.logf("llmprismd: cluster %s: %s: %v", cluster, conn.RemoteAddr(), readErr)
	}
}

func (d *daemon) handleClusters(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, c := range d.mgr.Clusters() {
		windows, late := d.ClusterStats(c)
		fmt.Fprintf(w, "cluster %s: %d windows, %d late drops\n", c, windows, late)
	}
}

// queryCluster resolves the ?cluster= parameter against the clusters that
// have released at least one report.
func (d *daemon) queryCluster(w http.ResponseWriter, r *http.Request) (string, bool) {
	cluster := r.URL.Query().Get("cluster")
	if cluster == "" {
		http.Error(w, "missing cluster parameter", http.StatusBadRequest)
		return "", false
	}
	d.mu.Lock()
	_, ok := d.text[cluster]
	d.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown cluster %q", cluster), http.StatusNotFound)
		return "", false
	}
	return cluster, true
}

func (d *daemon) handleReport(w http.ResponseWriter, r *http.Request) {
	cluster, ok := d.queryCluster(w, r)
	if !ok {
		return
	}
	d.mu.Lock()
	body := d.text[cluster].String()
	d.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, body)
}

func (d *daemon) handleLatest(w http.ResponseWriter, r *http.Request) {
	cluster, ok := d.queryCluster(w, r)
	if !ok {
		return
	}
	d.mu.Lock()
	latest := d.latest[cluster]
	d.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	session.PrintReports(w, []*llmprism.Report{latest})
}

// handleSegments serves a cluster's store manifest: one line per
// finalized segment with its window range, event-time bounds and size.
// It reads the manifest file directly — the store writer rewrites it
// atomically, so a concurrent read always sees a complete manifest.
func (d *daemon) handleSegments(w http.ResponseWriter, r *http.Request) {
	cluster := r.URL.Query().Get("cluster")
	if cluster == "" {
		http.Error(w, "missing cluster parameter", http.StatusBadRequest)
		return
	}
	if err := session.ValidateClusterID(cluster); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if d.cfg.dir == "" {
		http.Error(w, "no persistence directory configured", http.StatusNotFound)
		return
	}
	meta, _, segs, err := archive.ReadStoreManifest(filepath.Join(d.cfg.dir, cluster+".llps"))
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster %q has no readable store: %v", cluster, err), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "store %s: %d segments, window %v, hop %v, lateness %v\n",
		cluster, len(segs), meta.Width, meta.Hop, meta.Lateness)
	for _, s := range segs {
		fmt.Fprintf(w, "segment %d: %d windows, seq %d..%d, [%s..%s), %d bytes\n",
			s.Index, s.Windows, s.FirstSeq, s.LastSeq,
			s.MinStart.UTC().Format(time.RFC3339Nano), s.MaxEnd.UTC().Format(time.RFC3339Nano), s.Bytes)
	}
}

// Clusters returns the open clusters, sorted.
func (d *daemon) Clusters() []string { return d.mgr.Clusters() }

// ClusterStats returns one cluster's released-window and late-drop
// counters.
func (d *daemon) ClusterStats(cluster string) (windows int, late uint64) {
	cs, ok := d.mgr.Lookup(cluster)
	if !ok {
		return 0, 0
	}
	return cs.Stats()
}

// Shutdown stops ingest and finalizes every session: the ingest listener
// closes, open connections drain gracefully — force-closed once ctx
// expires — and the manager then flushes, checkpoints and finalizes each
// cluster in deterministic order. The query endpoint keeps serving (now
// complete) reports until Close.
func (d *daemon) Shutdown(ctx context.Context) error {
	d.ingest.Close()
	d.connMu.Lock()
	d.down = true
	d.connMu.Unlock()
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		d.connMu.Lock()
		for c := range d.conns {
			c.Close()
		}
		d.connMu.Unlock()
		<-done
	}
	return d.mgr.Close()
}

// Close stops the query endpoint. Call after Shutdown.
func (d *daemon) Close() error {
	return d.query.Close()
}
