package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/session"
	"github.com/llmprism/llmprism/internal/topology"
)

// daemonTrace simulates one cluster's flow trace, sorted by start. Each
// seed yields a distinct workload on the same fabric shape.
func daemonTrace(t testing.TB, seed int64) ([]flow.Record, *topology.Topology) {
	t.Helper()
	spec := llmprism.TopologySpec{Nodes: 24, NodesPerLeaf: 8, Spines: 4}
	jobs, err := llmprism.PlanJobs(spec, []llmprism.JobPlan{
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 4, TargetStep: 3 * time.Second},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := llmprism.Simulate(llmprism.Scenario{
		Name: "daemon", Topo: spec, Jobs: jobs, Horizon: 12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	records := make([]flow.Record, len(res.Records))
	copy(records, res.Records)
	flow.SortByStart(records)
	return records, res.Topo
}

// chunkFrames slices a sorted trace into collector-sized frames in
// event-time order — the shape a real collector ships, not aligned to the
// daemon's analysis windows.
func chunkFrames(records []flow.Record, per int) []*flow.Frame {
	var frames []*flow.Frame
	for lo := 0; lo < len(records); lo += per {
		hi := min(lo+per, len(records))
		frames = append(frames, flow.NewFrame(records[lo:hi]))
	}
	return frames
}

// offlineText replays the exact frames through a bare session — the
// offline reference every daemon-ingested report stream must match bit for
// bit.
func offlineText(t testing.TB, cfg session.Config, frames []*flow.Frame) string {
	t.Helper()
	s, err := session.Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()
	var b strings.Builder
	for _, f := range frames {
		reports, err := s.PushFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		session.PrintReports(&b, reports)
	}
	reports, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	session.PrintReports(&b, reports)
	return b.String()
}

// startTestDaemon binds a daemon on loopback listeners and returns it with
// its ingest address and query base URL.
func startTestDaemon(t testing.TB, topo *topology.Topology, dir string) (*daemon, string, string) {
	t.Helper()
	ingestLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	queryLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := daemonConfig{
		base: session.Config{
			Topo:     topo,
			Workers:  2,
			Localize: true,
			Suppress: true,
			Window:   5 * time.Second,
			Lateness: 2 * time.Second,
			Depth:    2,
		},
		dir:         dir,
		rotate:      archive.StorePolicy{RotateWindows: 2},
		maxSessions: 8,
		pending:     2,
		logf:        t.Logf,
	}
	d, err := newDaemon(context.Background(), cfg, ingestLn, queryLn)
	if err != nil {
		t.Fatal(err)
	}
	d.Serve()
	return d, ingestLn.Addr().String(), "http://" + queryLn.Addr().String()
}

// streamFrames plays one collector connection: hello, frames, end-of-stream,
// then blocks until the daemon closes the connection — its confirmation
// that every frame was pushed.
func streamFrames(addr, cluster string, frames []*flow.Frame) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := session.WriteHello(conn, cluster); err != nil {
		return err
	}
	for _, f := range frames {
		if err := session.WriteFrameMessage(conn, f); err != nil {
			return err
		}
	}
	if err := session.WriteEndOfStream(conn); err != nil {
		return err
	}
	_, err = io.Copy(io.Discard, conn)
	return err
}

func httpGet(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Every query response — success or error — is plain text.
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("GET %s: Content-Type = %q, want %q", url, ct, "text/plain; charset=utf-8")
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDaemonTwoClusterIngestMatchesOfflineReplay is the daemon's
// equivalence gate (and the CI smoke): two clusters stream concurrently
// over the wire — arbitrary cross-cluster interleaving — and each
// cluster's queried report text must be bit-identical to an offline replay
// of its frames. Shutdown must finalize both archives; the finalized
// archives must themselves replay to the same text.
func TestDaemonTwoClusterIngestMatchesOfflineReplay(t *testing.T) {
	recordsA, topo := daemonTrace(t, 7)
	recordsB, _ := daemonTrace(t, 99)
	framesA := chunkFrames(recordsA, 500)
	framesB := chunkFrames(recordsB, 300)

	dir := t.TempDir()
	d, ingestAddr, queryURL := startTestDaemon(t, topo, dir)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, c := range []struct {
		cluster string
		frames  []*flow.Frame
	}{{"east", framesA}, {"west", framesB}} {
		wg.Add(1)
		go func(i int, cluster string, frames []*flow.Frame) {
			defer wg.Done()
			errs[i] = streamFrames(ingestAddr, cluster, frames)
		}(i, c.cluster, c.frames)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("collector %d: %v", i, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	want := map[string]string{
		"east": offlineText(t, d.cfg.base, framesA),
		"west": offlineText(t, d.cfg.base, framesB),
	}
	if want["east"] == want["west"] {
		t.Fatal("test traces degenerate: both clusters produce identical reports")
	}
	for cluster, wantText := range want {
		if wantText == "" {
			t.Fatalf("offline reference for %s released no windows", cluster)
		}
		code, body := httpGet(t, queryURL+"/v1/report?cluster="+cluster)
		if code != http.StatusOK {
			t.Fatalf("report %s: status %d", cluster, code)
		}
		if body != wantText {
			t.Errorf("cluster %s: daemon report text differs from offline replay\n got %d bytes\nwant %d bytes",
				cluster, len(body), len(wantText))
		}
		code, latest := httpGet(t, queryURL+"/v1/latest?cluster="+cluster)
		if code != http.StatusOK || latest == "" {
			t.Fatalf("latest %s: status %d, %d bytes", cluster, code, len(latest))
		}
		if !strings.HasSuffix(wantText, latest) {
			t.Errorf("cluster %s: latest window text is not the report's tail", cluster)
		}

		// The daemon's own finalized store replays to the same text. A
		// strict open proves shutdown finalized every segment and the
		// manifest — no temporaries left behind.
		storeDir := filepath.Join(dir, cluster+".llps")
		if _, err := os.Stat(filepath.Join(storeDir, archive.StoreManifestName)); err != nil {
			t.Fatalf("cluster %s store not finalized: %v", cluster, err)
		}
		if tmps, _ := filepath.Glob(filepath.Join(storeDir, "*.tmp")); len(tmps) != 0 {
			t.Fatalf("cluster %s store temporaries left behind: %v", cluster, tmps)
		}
		rep, err := session.OpenReplay(context.Background(), d.cfg.base, storeDir, false)
		if err != nil {
			t.Fatal(err)
		}
		if rep.NumSegments() < 2 {
			t.Errorf("cluster %s: store did not rotate: %d segments", cluster, rep.NumSegments())
		}
		var replayed strings.Builder
		if err := rep.Run(func(reports []*llmprism.Report) {
			session.PrintReports(&replayed, reports)
		}); err != nil {
			t.Fatal(err)
		}
		rep.Release()
		if replayed.String() != wantText {
			t.Errorf("cluster %s: replay of daemon store differs from offline reference", cluster)
		}

		// The segments endpoint serves the store manifest.
		code, segs := httpGet(t, queryURL+"/v1/segments?cluster="+cluster)
		if code != http.StatusOK {
			t.Fatalf("segments %s: status %d", cluster, code)
		}
		if !strings.Contains(segs, "store "+cluster+": ") || !strings.Contains(segs, "segment 1: ") {
			t.Errorf("segments %s: unexpected body:\n%s", cluster, segs)
		}
	}

	code, clusters := httpGet(t, queryURL+"/v1/clusters")
	if code != http.StatusOK {
		t.Fatalf("clusters: status %d", code)
	}
	for _, cluster := range []string{"east", "west"} {
		if !strings.Contains(clusters, "cluster "+cluster+": ") {
			t.Errorf("clusters listing missing %s:\n%s", cluster, clusters)
		}
	}
	if code, _ := httpGet(t, queryURL+"/v1/report?cluster=nosuch"); code != http.StatusNotFound {
		t.Errorf("unknown cluster: status %d, want 404", code)
	}
	if code, _ := httpGet(t, queryURL+"/v1/report"); code != http.StatusBadRequest {
		t.Errorf("missing cluster param: status %d, want 400", code)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonSurvivesGarbageConnections: junk hellos and abruptly dropped
// streams must cost only their own connection — a well-behaved collector
// on the same daemon still ingests and queries normally.
func TestDaemonSurvivesGarbageConnections(t *testing.T) {
	records, topo := daemonTrace(t, 7)
	frames := chunkFrames(records, 500)
	d, ingestAddr, queryURL := startTestDaemon(t, topo, "")

	// Garbage hello.
	conn, err := net.Dial("tcp", ingestAddr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	io.Copy(io.Discard, conn) // daemon closes on the bad magic
	conn.Close()

	// Valid hello, then the stream dies mid-frame without the sentinel.
	conn, err = net.Dial("tcp", ingestAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := session.WriteHello(conn, "flaky"); err != nil {
		t.Fatal(err)
	}
	if err := session.WriteFrameMessage(conn, frames[0]); err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xFF, 0xFF}) // torn length prefix
	conn.Close()

	if err := streamFrames(ingestAddr, "steady", frames); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	code, body := httpGet(t, queryURL+"/v1/report?cluster=steady")
	if code != http.StatusOK || body == "" {
		t.Fatalf("steady cluster after garbage peers: status %d, %d bytes", code, len(body))
	}
	if body != offlineText(t, d.cfg.base, frames) {
		t.Error("steady cluster's report text drifted from offline replay")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonFlagValidation pins the startup domain checks: a bad flag
// must fail fast with a precise error, before any listener binds or the
// topology loads.
func TestDaemonFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-pending", "0"}, "-pending must be positive (got 0)"},
		{[]string{"-pending", "-3"}, "-pending must be positive (got -3)"},
		{[]string{"-max-sessions", "0"}, "-max-sessions must be positive (got 0)"},
		{[]string{"-max-sessions", "-1"}, "-max-sessions must be positive (got -1)"},
		{[]string{"-drain", "0s"}, "-drain must be positive (got 0s)"},
		{[]string{"-drain", "-5s"}, "-drain must be positive (got -5s)"},
		{[]string{"-rotate-windows", "-1"}, "must not be negative"},
		{[]string{"-retain-bytes", "-1"}, "must not be negative"},
		{[]string{"-resume"}, "-resume requires -dir"},
	} {
		err := run(tc.args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v): err = %v, want %q", tc.args, err, tc.want)
		}
	}
}

// TestMain re-execs the test binary as the real daemon when the child
// marker is set, so the kill-and-resume test can SIGKILL an actual
// llmprismd process mid-ingest.
func TestMain(m *testing.M) {
	if os.Getenv("LLMPRISMD_TEST_CHILD") == "1" {
		if err := run(os.Args[1:], os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "llmprismd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startDaemonProcess launches the daemon as a separate OS process and
// waits for its ready file, returning the process and its bound ingest
// address and query base URL.
func startDaemonProcess(t *testing.T, args []string, readyPath string) (*exec.Cmd, string, string) {
	t.Helper()
	os.Remove(readyPath)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "LLMPRISMD_TEST_CHILD=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	// Generous: under -race with other package test binaries sharing the
	// machine, the child can take a while to bind and publish.
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		b, err := os.ReadFile(readyPath)
		if err == nil {
			f := strings.Fields(string(b))
			if len(f) == 4 && f[0] == "ingest" && f[2] == "query" {
				return cmd, f[1], "http://" + f[3]
			}
			t.Fatalf("malformed ready file: %q", b)
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("daemon child never became ready")
	return nil, "", ""
}

// pollClusterWindows polls the daemon's cluster listing until the cluster
// reports at least want released windows, then returns the count.
func pollClusterWindows(t *testing.T, queryURL, cluster string, want int) int {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(queryURL + "/v1/clusters")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(body), "\n") {
				var n int
				var late uint64
				if _, err := fmt.Sscanf(line, "cluster "+cluster+": %d windows, %d late drops", &n, &late); err == nil && n >= want {
					return n
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("cluster %s never reached %d released windows", cluster, want)
	return 0
}

// TestDaemonKillAndResume is the restart-resume equivalence gate (and the
// CI kill-and-resume smoke): a daemon process is SIGKILLed mid-ingest —
// no drain, no finalize — restarted with -resume, fed the collector's
// stream from the start, and shut down cleanly. The final store must open
// strictly and replay bit-identically to a run that was never
// interrupted.
func TestDaemonKillAndResume(t *testing.T) {
	records, topo := daemonTrace(t, 7)
	frames := chunkFrames(records, 150)
	dir := t.TempDir()
	topoPath := filepath.Join(dir, "topo.json")
	tf, err := os.Create(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.WriteJSON(tf); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	stateDir := filepath.Join(dir, "state")
	if err := os.Mkdir(stateDir, 0o777); err != nil {
		t.Fatal(err)
	}
	readyPath := filepath.Join(dir, "ready")
	args := []string{
		"-topo", topoPath, "-dir", stateDir, "-resume",
		"-listen", "127.0.0.1:0", "-query", "127.0.0.1:0",
		"-window", "2s", "-lateness", "1s", "-workers", "2",
		"-localize", "-suppress-chronic", "-rotate-windows", "2",
		"-ready-file", readyPath,
	}
	base := session.Config{
		Topo:     topo,
		Bucket:   time.Minute,
		Workers:  2,
		Localize: true,
		Suppress: true,
		Window:   2 * time.Second,
		Lateness: time.Second,
		Depth:    2,
	}
	want := offlineText(t, base, frames)
	if want == "" {
		t.Fatal("offline reference released no windows")
	}

	// First life: stream the whole trace, and SIGKILL the daemon as soon
	// as a few windows have been analyzed and checkpointed — mid-ingest,
	// with open windows, a live segment temporary and no shutdown.
	cmd, ingestAddr, queryURL := startDaemonProcess(t, args, readyPath)
	go streamFrames(ingestAddr, "kr", frames) // dies with the process; error irrelevant
	pollClusterWindows(t, queryURL, "kr", 2)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// The killed capture must be visibly unfinished: the strict opener
	// refuses it until a resumed run (or salvage) reconciles it.
	if _, err := session.OpenReplay(context.Background(), base, filepath.Join(stateDir, "kr.llps"), false); err == nil {
		t.Fatal("strict open of a SIGKILLed store succeeded")
	}

	// Second life: -resume restores the checkpoint, reconciles the store,
	// and the collector replays its stream from the start (pre-resume
	// records are dropped as late). SIGTERM then drains and finalizes.
	cmd, ingestAddr, queryURL = startDaemonProcess(t, args, readyPath)
	if err := streamFrames(ingestAddr, "kr", frames); err != nil {
		t.Fatalf("resumed stream: %v", err)
	}
	if code, _ := httpGet(t, queryURL+"/v1/segments?cluster=kr"); code != http.StatusOK {
		t.Errorf("segments after resume: status %d", code)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("resumed daemon exited uncleanly: %v", err)
	}

	rep, err := session.OpenReplay(context.Background(), base, filepath.Join(stateDir, "kr.llps"), false)
	if err != nil {
		t.Fatalf("strict open of resumed store: %v", err)
	}
	var replayed strings.Builder
	if err := rep.Run(func(reports []*llmprism.Report) {
		session.PrintReports(&replayed, reports)
	}); err != nil {
		t.Fatal(err)
	}
	if replayed.String() != want {
		t.Errorf("resumed store replay differs from uninterrupted run\n got %d bytes\nwant %d bytes",
			len(replayed.String()), len(want))
	}
}
