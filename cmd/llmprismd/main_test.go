package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/session"
	"github.com/llmprism/llmprism/internal/topology"
)

// daemonTrace simulates one cluster's flow trace, sorted by start. Each
// seed yields a distinct workload on the same fabric shape.
func daemonTrace(t testing.TB, seed int64) ([]flow.Record, *topology.Topology) {
	t.Helper()
	spec := llmprism.TopologySpec{Nodes: 24, NodesPerLeaf: 8, Spines: 4}
	jobs, err := llmprism.PlanJobs(spec, []llmprism.JobPlan{
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 4, TargetStep: 3 * time.Second},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := llmprism.Simulate(llmprism.Scenario{
		Name: "daemon", Topo: spec, Jobs: jobs, Horizon: 12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	records := make([]flow.Record, len(res.Records))
	copy(records, res.Records)
	flow.SortByStart(records)
	return records, res.Topo
}

// chunkFrames slices a sorted trace into collector-sized frames in
// event-time order — the shape a real collector ships, not aligned to the
// daemon's analysis windows.
func chunkFrames(records []flow.Record, per int) []*flow.Frame {
	var frames []*flow.Frame
	for lo := 0; lo < len(records); lo += per {
		hi := min(lo+per, len(records))
		frames = append(frames, flow.NewFrame(records[lo:hi]))
	}
	return frames
}

// offlineText replays the exact frames through a bare session — the
// offline reference every daemon-ingested report stream must match bit for
// bit.
func offlineText(t testing.TB, cfg session.Config, frames []*flow.Frame) string {
	t.Helper()
	s, err := session.Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()
	var b strings.Builder
	for _, f := range frames {
		reports, err := s.PushFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		session.PrintReports(&b, reports)
	}
	reports, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	session.PrintReports(&b, reports)
	return b.String()
}

// startTestDaemon binds a daemon on loopback listeners and returns it with
// its ingest address and query base URL.
func startTestDaemon(t testing.TB, topo *topology.Topology, dir string) (*daemon, string, string) {
	t.Helper()
	ingestLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	queryLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := daemonConfig{
		base: session.Config{
			Topo:     topo,
			Workers:  2,
			Localize: true,
			Suppress: true,
			Window:   5 * time.Second,
			Lateness: 2 * time.Second,
			Depth:    2,
		},
		dir:         dir,
		maxSessions: 8,
		pending:     2,
		logf:        t.Logf,
	}
	d, err := newDaemon(context.Background(), cfg, ingestLn, queryLn)
	if err != nil {
		t.Fatal(err)
	}
	d.Serve()
	return d, ingestLn.Addr().String(), "http://" + queryLn.Addr().String()
}

// streamFrames plays one collector connection: hello, frames, end-of-stream,
// then blocks until the daemon closes the connection — its confirmation
// that every frame was pushed.
func streamFrames(addr, cluster string, frames []*flow.Frame) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := session.WriteHello(conn, cluster); err != nil {
		return err
	}
	for _, f := range frames {
		if err := session.WriteFrameMessage(conn, f); err != nil {
			return err
		}
	}
	if err := session.WriteEndOfStream(conn); err != nil {
		return err
	}
	_, err = io.Copy(io.Discard, conn)
	return err
}

func httpGet(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDaemonTwoClusterIngestMatchesOfflineReplay is the daemon's
// equivalence gate (and the CI smoke): two clusters stream concurrently
// over the wire — arbitrary cross-cluster interleaving — and each
// cluster's queried report text must be bit-identical to an offline replay
// of its frames. Shutdown must finalize both archives; the finalized
// archives must themselves replay to the same text.
func TestDaemonTwoClusterIngestMatchesOfflineReplay(t *testing.T) {
	recordsA, topo := daemonTrace(t, 7)
	recordsB, _ := daemonTrace(t, 99)
	framesA := chunkFrames(recordsA, 500)
	framesB := chunkFrames(recordsB, 300)

	dir := t.TempDir()
	d, ingestAddr, queryURL := startTestDaemon(t, topo, dir)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, c := range []struct {
		cluster string
		frames  []*flow.Frame
	}{{"east", framesA}, {"west", framesB}} {
		wg.Add(1)
		go func(i int, cluster string, frames []*flow.Frame) {
			defer wg.Done()
			errs[i] = streamFrames(ingestAddr, cluster, frames)
		}(i, c.cluster, c.frames)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("collector %d: %v", i, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	want := map[string]string{
		"east": offlineText(t, d.cfg.base, framesA),
		"west": offlineText(t, d.cfg.base, framesB),
	}
	if want["east"] == want["west"] {
		t.Fatal("test traces degenerate: both clusters produce identical reports")
	}
	for cluster, wantText := range want {
		if wantText == "" {
			t.Fatalf("offline reference for %s released no windows", cluster)
		}
		code, body := httpGet(t, queryURL+"/v1/report?cluster="+cluster)
		if code != http.StatusOK {
			t.Fatalf("report %s: status %d", cluster, code)
		}
		if body != wantText {
			t.Errorf("cluster %s: daemon report text differs from offline replay\n got %d bytes\nwant %d bytes",
				cluster, len(body), len(wantText))
		}
		code, latest := httpGet(t, queryURL+"/v1/latest?cluster="+cluster)
		if code != http.StatusOK || latest == "" {
			t.Fatalf("latest %s: status %d, %d bytes", cluster, code, len(latest))
		}
		if !strings.HasSuffix(wantText, latest) {
			t.Errorf("cluster %s: latest window text is not the report's tail", cluster)
		}

		// The daemon's own finalized archive replays to the same text.
		archivePath := filepath.Join(dir, cluster+".llpa")
		if _, err := os.Stat(archivePath); err != nil {
			t.Fatalf("cluster %s archive not finalized: %v", cluster, err)
		}
		if _, err := os.Stat(archivePath + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("cluster %s archive temporary left behind (err=%v)", cluster, err)
		}
		rep, err := session.OpenReplay(context.Background(), d.cfg.base, archivePath, false)
		if err != nil {
			t.Fatal(err)
		}
		var replayed strings.Builder
		if err := rep.Run(func(reports []*llmprism.Report) {
			session.PrintReports(&replayed, reports)
		}); err != nil {
			t.Fatal(err)
		}
		rep.Release()
		if replayed.String() != wantText {
			t.Errorf("cluster %s: replay of daemon archive differs from offline reference", cluster)
		}
	}

	code, clusters := httpGet(t, queryURL+"/v1/clusters")
	if code != http.StatusOK {
		t.Fatalf("clusters: status %d", code)
	}
	for _, cluster := range []string{"east", "west"} {
		if !strings.Contains(clusters, "cluster "+cluster+": ") {
			t.Errorf("clusters listing missing %s:\n%s", cluster, clusters)
		}
	}
	if code, _ := httpGet(t, queryURL+"/v1/report?cluster=nosuch"); code != http.StatusNotFound {
		t.Errorf("unknown cluster: status %d, want 404", code)
	}
	if code, _ := httpGet(t, queryURL+"/v1/report"); code != http.StatusBadRequest {
		t.Errorf("missing cluster param: status %d, want 400", code)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonSurvivesGarbageConnections: junk hellos and abruptly dropped
// streams must cost only their own connection — a well-behaved collector
// on the same daemon still ingests and queries normally.
func TestDaemonSurvivesGarbageConnections(t *testing.T) {
	records, topo := daemonTrace(t, 7)
	frames := chunkFrames(records, 500)
	d, ingestAddr, queryURL := startTestDaemon(t, topo, "")

	// Garbage hello.
	conn, err := net.Dial("tcp", ingestAddr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	io.Copy(io.Discard, conn) // daemon closes on the bad magic
	conn.Close()

	// Valid hello, then the stream dies mid-frame without the sentinel.
	conn, err = net.Dial("tcp", ingestAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := session.WriteHello(conn, "flaky"); err != nil {
		t.Fatal(err)
	}
	if err := session.WriteFrameMessage(conn, frames[0]); err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xFF, 0xFF}) // torn length prefix
	conn.Close()

	if err := streamFrames(ingestAddr, "steady", frames); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	code, body := httpGet(t, queryURL+"/v1/report?cluster=steady")
	if code != http.StatusOK || body == "" {
		t.Fatalf("steady cluster after garbage peers: status %d, %d bytes", code, len(body))
	}
	if body != offlineText(t, d.cfg.base, frames) {
		t.Error("steady cluster's report text drifted from offline replay")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
