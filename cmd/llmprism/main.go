// Command llmprism analyzes a window of collected network flow records and
// reports recognized training jobs, their parallelism strategies,
// reconstructed training timelines and diagnosed performance issues — the
// full black-box pipeline of the paper, as a platform operator would run it.
//
// Usage:
//
//	llmprism analyze  -flows flows.csv -topo topo.json [-alerts-only] [-workers 8]
//	llmprism diagnose -flows flows.csv -topo topo.json [-localize] [-bucket 1m] [-workers 8]
//	llmprism timeline -flows flows.csv -topo topo.json [-job 0] [-ranks 8] [-width 120]
//	llmprism switches -flows flows.csv -topo topo.json [-bucket 1m]
//	llmprism monitor  -flows flows.csv -topo topo.json [-window 1m] [-hop 30s] [-lateness 5s] [-batch 10s] [-depth 2] [-localize] [-suppress-chronic] [-checkpoint state.llpk]
//	llmprism record   -flows flows.csv -topo topo.json -archive trace.llpa [monitor flags]
//	llmprism record   -flows flows.csv -topo topo.json -store trace.llps [-rotate-windows N] [-rotate-bytes N] [-rotate-span 5m] [-retain-segments N] [-retain-bytes N] [monitor flags]
//	llmprism replay   -archive <trace.llpa|store-dir> -topo topo.json [-recover] [-window 1m] [-lateness 5s] [-depth 2] [-localize] [-suppress-chronic]
//	llmprism scan     -archive <trace.llpa|store-dir> [-from t] [-to t] [-pair 10.a.b.c,10.d.e.f] [-switch sw-3] [-recover] [-replay -topo topo.json [monitor flags]]
//
// -workers bounds the per-job fan-out of the analysis pipeline
// (0 = GOMAXPROCS); the report is identical for any value.
//
// monitor replays the flow file through the streaming engine as a
// continuous deployment would consume it: records are windowed on an
// event-time grid (-window wide, advancing by -hop, closing -lateness
// after their end), pushed in -batch-sized slices, and analyzed in a
// pipeline -depth windows deep. Each window prints its job, alert and
// ongoing-incident summary; late records are counted, not misfiled.
// -checkpoint additionally persists the session's continuity state after
// every window (atomically), for crash-resume.
//
// -suppress-chronic turns the alert feed incident-centric: anomalies that
// fire from the monitor's first windows and never resolve are classified
// chronic — platform steady state, not events — and removed from the
// per-window alert surface and (with -localize) from localization
// evidence, while their incidents stay listed with a chronic marker.
// Suspects that persist across windows additionally accumulate a fused
// score; the per-window fused ranking is printed alongside them.
//
// diagnose is the diagnosis-focused view of analyze: it stratifies the
// switch-bandwidth comparison by tier (leaves vs spines, from the
// topology — monitor, record and replay stratify the same way) and, with
// -localize, converts the window's alerts plus the flows' switch paths
// into a ranked list of suspect components — the switch, inter-switch
// link or host NIC most likely behind the symptoms.
//
// record is monitor plus persistence: every completed window's columnar
// frame is appended to a binary trace alongside the printed report. With
// -archive the trace is a single file, written to a temporary and renamed
// into place only after a clean close, so a crashed capture never leaves
// a half-written file under the requested name. With -store the trace is
// a rotating multi-segment store directory instead: segments rotate at
// window boundaries when they exceed -rotate-windows, -rotate-bytes or
// -rotate-span, each closed segment is finalized atomically as the
// capture runs, and -retain-segments/-retain-bytes prune the oldest
// finalized segments so unbounded captures hold bounded history. replay
// reopens either layout — no flow file, no text parsing, no re-sorting —
// and pushes the archived windows back through a fresh monitor session on
// the recorded window grid, reproducing the recorded session's reports
// bit for bit (run with the same -bucket, -localize and detector settings
// used to record). Archives written by an unwindowed capture (zero
// recorded width) take their window geometry from the flags instead.
//
// replay -recover salvages a torn or unclosed capture (a crashed capture
// recovered from its temporary file or directory, a truncated copy): the
// intact whole windows replay exactly as they would from the clean trace,
// and a recovery note describing what was reconciled goes to stderr so
// stdout stays comparable line for line.
//
// scan queries a recorded trace without re-analyzing it: -from/-to bound
// event time, -pair an endpoint pair, -switch a traversed switch, and the
// store manifest's per-segment summaries prune segment files the query
// cannot match before any is opened. By default matching flows print one
// line each; with -replay the selected windows are instead pushed through
// a fresh monitor session built from the flags — re-analysis of a slice
// of history under a new configuration.
//
// The monitor, record and replay subcommands are thin adapters over
// internal/session, the same session lifecycle the llmprismd fleet daemon
// runs per cluster — one Config assembled from the flags, one Session
// driving open → push → close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/session"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/viz"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "llmprism:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: llmprism <analyze|timeline|switches|monitor|record|replay> [flags]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		flowsPath   = fs.String("flows", "flows.csv", "flow records (CSV or .jsonl)")
		topoPath    = fs.String("topo", "topo.json", "topology spec (JSON)")
		alertsOnly  = fs.Bool("alerts-only", false, "print only alerts (analyze)")
		jobIdx      = fs.Int("job", 0, "job index (timeline)")
		ranks       = fs.Int("ranks", 8, "ranks to render (timeline)")
		width       = fs.Int("width", 120, "render width in cells (timeline)")
		bucket      = fs.Duration("bucket", time.Minute, "aggregation bucket (switches)")
		workers     = fs.Int("workers", 0, "per-job analysis fan-out (0 = GOMAXPROCS)")
		window      = fs.Duration("window", time.Minute, "analysis window width (monitor)")
		hop         = fs.Duration("hop", 0, "window stride, <= window; 0 = tumbling (monitor)")
		lateness    = fs.Duration("lateness", 5*time.Second, "allowed out-of-orderness (monitor)")
		batch       = fs.Duration("batch", 10*time.Second, "replay batch size (monitor)")
		depth       = fs.Int("depth", 2, "pipelined windows in flight (monitor)")
		archivePath = fs.String("archive", "", "binary trace: single file or store directory (record output, replay/scan input)")
		storeDir    = fs.String("store", "", "rotating multi-segment store directory (record output)")
		rotWindows  = fs.Int("rotate-windows", 0, "rotate the store segment after this many windows (record -store; 0 = never)")
		rotBytes    = fs.Int64("rotate-bytes", 0, "rotate the store segment past this many bytes (record -store; 0 = never)")
		rotSpan     = fs.Duration("rotate-span", 0, "rotate the store segment past this event-time span (record -store; 0 = never)")
		keepSegs    = fs.Int("retain-segments", 0, "keep at most this many finalized segments (record -store; 0 = all)")
		keepBytes   = fs.Int64("retain-bytes", 0, "prune oldest finalized segments past this total size (record -store; 0 = unbounded)")
		ckptPath    = fs.String("checkpoint", "", "session checkpoint file, saved after every window (monitor, record)")
		localized   = fs.Bool("localize", false, "rank root-cause suspect components (diagnose, monitor, record, replay)")
		suppress    = fs.Bool("suppress-chronic", false, "suppress persistent anomalies from the alert surface (monitor, record, replay)")
		salvage     = fs.Bool("recover", false, "salvage the intact windows of a torn/unclosed capture (replay, scan)")
		fromFlag    = fs.String("from", "", "only windows/flows starting at or after this RFC3339 time (scan)")
		toFlag      = fs.String("to", "", "only windows/flows starting before this RFC3339 time (scan)")
		pairFlag    = fs.String("pair", "", `only flows between this endpoint pair, "10.a.b.c,10.d.e.f" (scan)`)
		switchFlag  = fs.String("switch", "", `only flows traversing this switch, "sw-12" or "12" (scan)`)
		scanReplay  = fs.Bool("replay", false, "re-analyze the selected windows through a monitor session instead of listing flows (scan)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	// One shared option set for every subcommand: the session config is
	// assembled once from the flags, and each path derives its analyzer
	// (pooled or tier-stratified) and monitor options from it.
	cfg := session.Config{
		Bucket:   *bucket,
		Workers:  *workers,
		Localize: *localized,
		Suppress: *suppress,
		Window:   *window,
		Hop:      *hop,
		Lateness: *lateness,
		Depth:    *depth,
	}
	if cmd == "replay" {
		// Replay needs no flow file: the archive is the trace.
		topo, err := loadTopo(*topoPath)
		if err != nil {
			return err
		}
		cfg.Topo = topo
		return runReplay(ctx, stdout, stderr, *archivePath, cfg, *salvage)
	}
	if cmd == "scan" {
		q, err := parseQuery(*fromFlag, *toFlag, *pairFlag, *switchFlag)
		if err != nil {
			return err
		}
		if !*scanReplay {
			return runScan(stdout, stderr, *archivePath, q, *salvage)
		}
		// Re-analysis mode builds a full monitor session, so it needs the
		// topology like replay does.
		topo, err := loadTopo(*topoPath)
		if err != nil {
			return err
		}
		cfg.Topo = topo
		return runScanReplay(ctx, stdout, stderr, *archivePath, cfg, q, *salvage)
	}

	records, topo, err := load(*flowsPath, *topoPath)
	if err != nil {
		return err
	}
	cfg.Topo = topo
	switch cmd {
	case "monitor":
		cfg.CheckpointPath = *ckptPath
		return runMonitor(ctx, stdout, records, cfg, *batch)
	case "record":
		if *archivePath == "" && *storeDir == "" {
			return fmt.Errorf("record requires -archive or -store")
		}
		cfg.ArchivePath = *archivePath
		cfg.StoreDir = *storeDir
		cfg.Rotate = archive.StorePolicy{
			RotateWindows:  *rotWindows,
			RotateBytes:    *rotBytes,
			RotateSpan:     *rotSpan,
			RetainSegments: *keepSegs,
			RetainBytes:    *keepBytes,
		}
		cfg.CheckpointPath = *ckptPath
		return runMonitor(ctx, stdout, records, cfg, *batch)
	case "diagnose":
		report, err := cfg.TieredAnalyzer().AnalyzeContext(ctx, records, topo)
		if err != nil {
			return err
		}
		return printDiagnose(stdout, report, topo, *localized)
	}
	report, err := cfg.Analyzer().AnalyzeContext(ctx, records, topo)
	if err != nil {
		return err
	}

	switch cmd {
	case "analyze":
		return printAnalysis(stdout, report, topo, *alertsOnly)
	case "timeline":
		return printTimeline(stdout, report, *jobIdx, *ranks, *width)
	case "switches":
		fmt.Fprint(stdout, viz.BandwidthSeries(report.SwitchSeries, topo.SwitchName))
		fmt.Fprintln(stdout, "\nswitch-level alerts:")
		fmt.Fprint(stdout, viz.AlertList(report.SwitchAlerts))
		return nil
	default:
		return fmt.Errorf("unknown command %q (want analyze, diagnose, timeline, switches, monitor, record, replay or scan)", cmd)
	}
}

// componentName renders a suspect component with topology-aware switch
// names ("spine-3" instead of "sw-11").
func componentName(topo *topology.Topology, c llmprism.SuspectComponent) string {
	switch c.Kind {
	case llmprism.ComponentSwitch:
		return "switch " + topo.SwitchName(c.Switch)
	case llmprism.ComponentLink:
		return "link " + topo.SwitchName(c.A) + " -> " + topo.SwitchName(c.B)
	default:
		return "host " + c.Host.String()
	}
}

// printDiagnose writes the diagnosis-focused view: alerts, then (with
// localization enabled) the ranked root-cause suspects.
func printDiagnose(stdout io.Writer, report *llmprism.Report, topo *topology.Topology, localized bool) error {
	alerts := report.Alerts()
	fmt.Fprintf(stdout, "alerts (%d):\n", len(alerts))
	fmt.Fprint(stdout, viz.AlertList(alerts))
	if !localized {
		return nil
	}
	fmt.Fprintf(stdout, "\nroot-cause suspects (%d):\n", len(report.Suspects))
	if len(report.Suspects) == 0 {
		fmt.Fprintln(stdout, "  none (no alert implicated any flow)")
		return nil
	}
	for i, s := range report.Suspects {
		fmt.Fprintf(stdout, "  #%d %-28s score %6.2f  coverage %.2f  contrast %5.2f  (%d implicated, %d healthy flows)\n",
			i+1, componentName(topo, s.Component), s.Score, s.Coverage, s.Contrast, s.Implicated, s.Healthy)
	}
	return nil
}

// runMonitor replays the flow file through a streaming monitor session in
// collection order, printing one line per completed window plus its
// ongoing incidents. A config with an ArchivePath (the record subcommand)
// also persists every completed window's columnar frame to a binary trace
// archive for later deterministic replay. All session wiring — analyzer
// assembly, archive temporary, checkpointing — lives in internal/session.
func runMonitor(ctx context.Context, stdout io.Writer, records []flow.Record, cfg session.Config, batch time.Duration) error {
	s, err := session.Open(ctx, cfg)
	if err != nil {
		return err
	}
	defer s.Abort()
	if batch <= 0 {
		batch = 10 * time.Second
	}

	sorted := make([]flow.Record, len(records))
	copy(sorted, records)
	flow.SortByStart(sorted)
	fmt.Fprintf(stdout, "monitoring %d records: window %v, hop %v, lateness %v, pipeline depth %d\n\n",
		len(sorted), s.Window(), s.Hop(), s.Lateness(), cfg.Depth)

	for lo := 0; lo < len(sorted); {
		cut := sorted[lo].Start.Add(batch)
		hi := lo
		for hi < len(sorted) && sorted[hi].Start.Before(cut) {
			hi++
		}
		reports, err := s.Push(sorted[lo:hi])
		session.PrintReports(stdout, reports)
		if err != nil {
			return err
		}
		lo = hi
	}
	reports, err := s.Close()
	session.PrintReports(stdout, reports)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nlate drops (record-window assignments): %d\n", s.Late())
	if cfg.ArchivePath != "" {
		fmt.Fprintf(stdout, "archived %d windows to %s\n", s.Windows(), cfg.ArchivePath)
	}
	if cfg.StoreDir != "" {
		fmt.Fprintf(stdout, "archived %d windows to store %s\n", s.Windows(), cfg.StoreDir)
	}
	return nil
}

// runReplay reopens a recorded binary trace archive and pushes its windows
// back through a fresh monitor session on the recorded window grid,
// reproducing the recorded reports bit for bit. Archives from unwindowed
// captures (zero recorded width) are windowed with the flag geometry.
// With salvage set, torn or unclosed archives are recovered to their
// intact whole-window prefix; the recovery note goes to stderr so stdout
// stays line-comparable with a clean replay of the same prefix.
func runReplay(ctx context.Context, stdout, stderr io.Writer, archivePath string, cfg session.Config, salvage bool) error {
	if archivePath == "" {
		return fmt.Errorf("replay requires -archive")
	}
	rep, err := session.OpenReplay(ctx, cfg, archivePath, salvage)
	if err != nil {
		return err
	}
	defer rep.Release()
	defer rep.Abort()
	if rep.Recovery != nil {
		fmt.Fprintf(stderr, "llmprism: recovered archive: %s\n", rep.Recovery)
	}
	fmt.Fprintf(stdout, "replaying %d archived windows: window %v, hop %v, lateness %v, pipeline depth %d\n\n",
		rep.NumWindows(), rep.Window(), rep.Hop(), rep.Lateness(), cfg.Depth)

	if err := rep.Run(func(reports []*llmprism.Report) {
		session.PrintReports(stdout, reports)
	}); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nlate drops (record-window assignments): %d\n", rep.Late())
	return nil
}

// parseQuery assembles the scan subcommand's store query from its flags.
func parseQuery(from, to, pair, sw string) (archive.Query, error) {
	var q archive.Query
	var err error
	if from != "" {
		if q.From, err = time.Parse(time.RFC3339, from); err != nil {
			return q, fmt.Errorf("scan: -from: %w", err)
		}
	}
	if to != "" {
		if q.To, err = time.Parse(time.RFC3339, to); err != nil {
			return q, fmt.Errorf("scan: -to: %w", err)
		}
	}
	if pair != "" {
		a, b, ok := strings.Cut(pair, ",")
		if !ok {
			return q, fmt.Errorf(`scan: -pair %q: want "addr,addr"`, pair)
		}
		pa, err := flow.ParseAddr(strings.TrimSpace(a))
		if err != nil {
			return q, fmt.Errorf("scan: -pair: %w", err)
		}
		pb, err := flow.ParseAddr(strings.TrimSpace(b))
		if err != nil {
			return q, fmt.Errorf("scan: -pair: %w", err)
		}
		p := flow.MakePair(pa, pb)
		q.Pair = &p
	}
	if sw != "" {
		id, err := strconv.ParseInt(strings.TrimPrefix(sw, "sw-"), 10, 64)
		if err != nil {
			return q, fmt.Errorf(`scan: -switch %q: want "sw-N" or "N"`, sw)
		}
		s := flow.SwitchID(id)
		q.Switch = &s
	}
	return q, nil
}

// runScan lists every flow in the recorded trace matching the query, one
// line per flow in global event-time order, then a summary. Segment files
// the store manifest can prove irrelevant are never opened.
func runScan(stdout, stderr io.Writer, archivePath string, q archive.Query, salvage bool) error {
	if archivePath == "" {
		return fmt.Errorf("scan requires -archive")
	}
	var rows int
	var lastWindow time.Time
	windows := 0
	recovery, err := session.Scan(archivePath, salvage, q, func(start, _ time.Time, f *flow.Frame, i int) error {
		if windows == 0 || !start.Equal(lastWindow) {
			windows++
			lastWindow = start
		}
		rows++
		fmt.Fprintf(stdout, "%s %s -> %s  %d bytes  %v  via %v\n",
			f.Start(i).UTC().Format(time.RFC3339Nano), f.Src(i), f.Dst(i),
			f.Bytes(i), f.Duration(i), f.Switches(i))
		return nil
	})
	if recovery != nil {
		fmt.Fprintf(stderr, "llmprism: recovered archive: %s\n", recovery)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "matched %d flows in %d windows\n", rows, windows)
	return nil
}

// runScanReplay re-analyzes the query's slice of the trace: the selected
// segments' overlapping windows replay through a fresh monitor session
// built from the flags — history under a new configuration.
func runScanReplay(ctx context.Context, stdout, stderr io.Writer, archivePath string, cfg session.Config, q archive.Query, salvage bool) error {
	if archivePath == "" {
		return fmt.Errorf("scan requires -archive")
	}
	rep, err := session.OpenReplay(ctx, cfg, archivePath, salvage)
	if err != nil {
		return err
	}
	defer rep.Release()
	defer rep.Abort()
	if rep.Recovery != nil {
		fmt.Fprintf(stderr, "llmprism: recovered archive: %s\n", rep.Recovery)
	}
	sel := rep.Store().Select(q)
	fmt.Fprintf(stdout, "replaying %d of %d segments matching query: window %v, hop %v, lateness %v\n\n",
		len(sel), rep.NumSegments(), rep.Window(), rep.Hop(), rep.Lateness())
	if err := rep.RunSelected(q, func(reports []*llmprism.Report) {
		session.PrintReports(stdout, reports)
	}); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nlate drops (record-window assignments): %d\n", rep.Late())
	return nil
}

func load(flowsPath, topoPath string) ([]flow.Record, *topology.Topology, error) {
	ff, err := os.Open(flowsPath)
	if err != nil {
		return nil, nil, err
	}
	defer ff.Close()
	var records []flow.Record
	if strings.HasSuffix(flowsPath, ".jsonl") {
		records, err = flow.ReadJSONL(ff)
	} else {
		records, err = flow.ReadCSV(ff)
	}
	if err != nil {
		return nil, nil, err
	}
	topo, err := loadTopo(topoPath)
	if err != nil {
		return nil, nil, err
	}
	return records, topo, nil
}

func loadTopo(topoPath string) (*topology.Topology, error) {
	tf, err := os.Open(topoPath)
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	return topology.ReadJSON(tf)
}

func printAnalysis(stdout io.Writer, report *llmprism.Report, topo *topology.Topology, alertsOnly bool) error {
	if !alertsOnly {
		fmt.Fprintf(stdout, "recognized %d training jobs\n\n", len(report.Jobs))
		for i, job := range report.Jobs {
			var pp, dp int
			for _, t := range job.Types {
				if t == llmprism.TypeDP {
					dp++
				} else {
					pp++
				}
			}
			kind := "DP-only"
			if pp > 0 {
				kind = "PP+DP"
			}
			var meanStep time.Duration
			var n int
			for _, tl := range job.Timelines {
				if d := timeline.MeanStepDuration(tl); d > 0 {
					meanStep += d
					n++
				}
			}
			if n > 0 {
				meanStep /= time.Duration(n)
			}
			fmt.Fprintf(stdout, "job %d: %d GPUs on %d servers, %s, %d DP groups, %d DP pairs, %d PP pairs, mean step %v\n",
				i, len(job.Cluster.Endpoints), len(job.Cluster.Servers), kind,
				len(job.DPGroups), dp, pp, meanStep.Round(time.Millisecond))
		}
		fmt.Fprintln(stdout)
	}
	alerts := report.Alerts()
	fmt.Fprintf(stdout, "alerts (%d):\n", len(alerts))
	fmt.Fprint(stdout, viz.AlertList(alerts))
	return nil
}

func printTimeline(stdout io.Writer, report *llmprism.Report, jobIdx, nRanks, width int) error {
	if jobIdx < 0 || jobIdx >= len(report.Jobs) {
		return fmt.Errorf("job index %d out of range (have %d jobs)", jobIdx, len(report.Jobs))
	}
	job := report.Jobs[jobIdx]
	ranks := make([]flow.Addr, 0, len(job.Timelines))
	for r, tl := range job.Timelines {
		if len(tl.Steps) > 0 {
			ranks = append(ranks, r)
		}
	}
	if len(ranks) == 0 {
		return fmt.Errorf("job %d has no reconstructed steps", jobIdx)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	if len(ranks) > nRanks {
		ranks = ranks[:nRanks]
	}
	tl := job.Timelines[ranks[0]]
	mid := len(tl.Steps) / 2
	from := tl.Steps[mid].Start
	span := 2 * timeline.MeanStepDuration(tl)
	if span <= 0 {
		span = 2 * tl.Steps[mid].Duration()
	}
	if span <= 0 {
		return fmt.Errorf("job %d has empty reconstructed steps", jobIdx)
	}
	fmt.Fprint(stdout, viz.TimelineSwimlanes(job.Timelines, ranks, from, from.Add(span), width))
	return nil
}
