// Command llmprism analyzes a window of collected network flow records and
// reports recognized training jobs, their parallelism strategies,
// reconstructed training timelines and diagnosed performance issues — the
// full black-box pipeline of the paper, as a platform operator would run it.
//
// Usage:
//
//	llmprism analyze  -flows flows.csv -topo topo.json [-alerts-only]
//	llmprism timeline -flows flows.csv -topo topo.json [-job 0] [-ranks 8] [-width 120]
//	llmprism switches -flows flows.csv -topo topo.json [-bucket 1m]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "llmprism:", err)
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: llmprism <analyze|timeline|switches> [flags]")
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		flowsPath  = fs.String("flows", "flows.csv", "flow records (CSV or .jsonl)")
		topoPath   = fs.String("topo", "topo.json", "topology spec (JSON)")
		alertsOnly = fs.Bool("alerts-only", false, "print only alerts (analyze)")
		jobIdx     = fs.Int("job", 0, "job index (timeline)")
		ranks      = fs.Int("ranks", 8, "ranks to render (timeline)")
		width      = fs.Int("width", 120, "render width in cells (timeline)")
		bucket     = fs.Duration("bucket", time.Minute, "aggregation bucket (switches)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		return err
	}

	records, topo, err := load(*flowsPath, *topoPath)
	if err != nil {
		return err
	}
	analyzer := llmprism.New(llmprism.WithSwitchBucket(*bucket))
	report, err := analyzer.Analyze(records, topo)
	if err != nil {
		return err
	}

	switch cmd {
	case "analyze":
		return printAnalysis(report, topo, *alertsOnly)
	case "timeline":
		return printTimeline(report, *jobIdx, *ranks, *width)
	case "switches":
		fmt.Print(viz.BandwidthSeries(report.SwitchSeries, topo.SwitchName))
		fmt.Println("\nswitch-level alerts:")
		fmt.Print(viz.AlertList(report.SwitchAlerts))
		return nil
	default:
		return fmt.Errorf("unknown command %q (want analyze, timeline or switches)", cmd)
	}
}

func load(flowsPath, topoPath string) ([]flow.Record, *topology.Topology, error) {
	ff, err := os.Open(flowsPath)
	if err != nil {
		return nil, nil, err
	}
	defer ff.Close()
	var records []flow.Record
	if strings.HasSuffix(flowsPath, ".jsonl") {
		records, err = flow.ReadJSONL(ff)
	} else {
		records, err = flow.ReadCSV(ff)
	}
	if err != nil {
		return nil, nil, err
	}
	tf, err := os.Open(topoPath)
	if err != nil {
		return nil, nil, err
	}
	defer tf.Close()
	topo, err := topology.ReadJSON(tf)
	if err != nil {
		return nil, nil, err
	}
	return records, topo, nil
}

func printAnalysis(report *llmprism.Report, topo *topology.Topology, alertsOnly bool) error {
	if !alertsOnly {
		fmt.Printf("recognized %d training jobs\n\n", len(report.Jobs))
		for i, job := range report.Jobs {
			var pp, dp int
			for _, t := range job.Types {
				if t == llmprism.TypeDP {
					dp++
				} else {
					pp++
				}
			}
			kind := "DP-only"
			if pp > 0 {
				kind = "PP+DP"
			}
			var meanStep time.Duration
			var n int
			for _, tl := range job.Timelines {
				if d := timeline.MeanStepDuration(tl); d > 0 {
					meanStep += d
					n++
				}
			}
			if n > 0 {
				meanStep /= time.Duration(n)
			}
			fmt.Printf("job %d: %d GPUs on %d servers, %s, %d DP groups, %d DP pairs, %d PP pairs, mean step %v\n",
				i, len(job.Cluster.Endpoints), len(job.Cluster.Servers), kind,
				len(job.DPGroups), dp, pp, meanStep.Round(time.Millisecond))
		}
		fmt.Println()
	}
	alerts := report.Alerts()
	fmt.Printf("alerts (%d):\n", len(alerts))
	fmt.Print(viz.AlertList(alerts))
	return nil
}

func printTimeline(report *llmprism.Report, jobIdx, nRanks, width int) error {
	if jobIdx < 0 || jobIdx >= len(report.Jobs) {
		return fmt.Errorf("job index %d out of range (have %d jobs)", jobIdx, len(report.Jobs))
	}
	job := report.Jobs[jobIdx]
	ranks := make([]flow.Addr, 0, len(job.Timelines))
	for r, tl := range job.Timelines {
		if len(tl.Steps) > 0 {
			ranks = append(ranks, r)
		}
	}
	if len(ranks) == 0 {
		return fmt.Errorf("job %d has no reconstructed steps", jobIdx)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	if len(ranks) > nRanks {
		ranks = ranks[:nRanks]
	}
	tl := job.Timelines[ranks[0]]
	mid := len(tl.Steps) / 2
	from := tl.Steps[mid].Start
	span := 2 * timeline.MeanStepDuration(tl)
	if span <= 0 {
		span = 2 * tl.Steps[mid].Duration()
	}
	if span <= 0 {
		return fmt.Errorf("job %d has empty reconstructed steps", jobIdx)
	}
	fmt.Print(viz.TimelineSwimlanes(job.Timelines, ranks, from, from.Add(span), width))
	return nil
}
