// Command llmprism analyzes a window of collected network flow records and
// reports recognized training jobs, their parallelism strategies,
// reconstructed training timelines and diagnosed performance issues — the
// full black-box pipeline of the paper, as a platform operator would run it.
//
// Usage:
//
//	llmprism analyze  -flows flows.csv -topo topo.json [-alerts-only] [-workers 8]
//	llmprism diagnose -flows flows.csv -topo topo.json [-localize] [-bucket 1m] [-workers 8]
//	llmprism timeline -flows flows.csv -topo topo.json [-job 0] [-ranks 8] [-width 120]
//	llmprism switches -flows flows.csv -topo topo.json [-bucket 1m]
//	llmprism monitor  -flows flows.csv -topo topo.json [-window 1m] [-hop 30s] [-lateness 5s] [-batch 10s] [-depth 2] [-localize] [-suppress-chronic] [-checkpoint state.llpk]
//	llmprism record   -flows flows.csv -topo topo.json -archive trace.llpa [monitor flags]
//	llmprism replay   -archive trace.llpa -topo topo.json [-recover] [-window 1m] [-lateness 5s] [-depth 2] [-localize] [-suppress-chronic]
//
// -workers bounds the per-job fan-out of the analysis pipeline
// (0 = GOMAXPROCS); the report is identical for any value.
//
// monitor replays the flow file through the streaming engine as a
// continuous deployment would consume it: records are windowed on an
// event-time grid (-window wide, advancing by -hop, closing -lateness
// after their end), pushed in -batch-sized slices, and analyzed in a
// pipeline -depth windows deep. Each window prints its job, alert and
// ongoing-incident summary; late records are counted, not misfiled.
// -checkpoint additionally persists the session's continuity state after
// every window (atomically), for crash-resume.
//
// -suppress-chronic turns the alert feed incident-centric: anomalies that
// fire from the monitor's first windows and never resolve are classified
// chronic — platform steady state, not events — and removed from the
// per-window alert surface and (with -localize) from localization
// evidence, while their incidents stay listed with a chronic marker.
// Suspects that persist across windows additionally accumulate a fused
// score; the per-window fused ranking is printed alongside them.
//
// diagnose is the diagnosis-focused view of analyze: it stratifies the
// switch-bandwidth comparison by tier (leaves vs spines, from the
// topology — monitor, record and replay stratify the same way) and, with
// -localize, converts the window's alerts plus the flows' switch paths
// into a ranked list of suspect components — the switch, inter-switch
// link or host NIC most likely behind the symptoms.
//
// record is monitor plus persistence: every completed window's columnar
// frame is appended to a binary trace archive alongside the printed
// report. The archive is written to a temporary file and renamed into
// place only after a clean close, so a crashed capture never leaves a
// half-written file under the requested name. replay reopens such an
// archive — no flow file, no text parsing, no re-sorting — and pushes the
// archived windows back through a fresh monitor session on the recorded
// window grid, reproducing the recorded session's reports bit for bit
// (run with the same -bucket, -localize and detector settings used to
// record). Archives written by an unwindowed capture (zero recorded
// width) take their window geometry from the flags instead.
//
// replay -recover salvages a torn or unclosed archive (a crashed capture
// recovered from its temporary file, a truncated copy): the intact prefix
// of whole windows replays exactly as it would from the clean archive,
// and a recovery note describing the salvaged/discarded byte counts goes
// to stderr so stdout stays comparable line for line.
//
// The monitor, record and replay subcommands are thin adapters over
// internal/session, the same session lifecycle the llmprismd fleet daemon
// runs per cluster — one Config assembled from the flags, one Session
// driving open → push → close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/session"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/viz"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "llmprism:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: llmprism <analyze|timeline|switches|monitor|record|replay> [flags]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		flowsPath   = fs.String("flows", "flows.csv", "flow records (CSV or .jsonl)")
		topoPath    = fs.String("topo", "topo.json", "topology spec (JSON)")
		alertsOnly  = fs.Bool("alerts-only", false, "print only alerts (analyze)")
		jobIdx      = fs.Int("job", 0, "job index (timeline)")
		ranks       = fs.Int("ranks", 8, "ranks to render (timeline)")
		width       = fs.Int("width", 120, "render width in cells (timeline)")
		bucket      = fs.Duration("bucket", time.Minute, "aggregation bucket (switches)")
		workers     = fs.Int("workers", 0, "per-job analysis fan-out (0 = GOMAXPROCS)")
		window      = fs.Duration("window", time.Minute, "analysis window width (monitor)")
		hop         = fs.Duration("hop", 0, "window stride, <= window; 0 = tumbling (monitor)")
		lateness    = fs.Duration("lateness", 5*time.Second, "allowed out-of-orderness (monitor)")
		batch       = fs.Duration("batch", 10*time.Second, "replay batch size (monitor)")
		depth       = fs.Int("depth", 2, "pipelined windows in flight (monitor)")
		archivePath = fs.String("archive", "", "binary trace archive (record output, replay input)")
		ckptPath    = fs.String("checkpoint", "", "session checkpoint file, saved after every window (monitor, record)")
		localized   = fs.Bool("localize", false, "rank root-cause suspect components (diagnose, monitor, record, replay)")
		suppress    = fs.Bool("suppress-chronic", false, "suppress persistent anomalies from the alert surface (monitor, record, replay)")
		salvage     = fs.Bool("recover", false, "salvage the intact prefix of a torn/unclosed archive (replay)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	// One shared option set for every subcommand: the session config is
	// assembled once from the flags, and each path derives its analyzer
	// (pooled or tier-stratified) and monitor options from it.
	cfg := session.Config{
		Bucket:   *bucket,
		Workers:  *workers,
		Localize: *localized,
		Suppress: *suppress,
		Window:   *window,
		Hop:      *hop,
		Lateness: *lateness,
		Depth:    *depth,
	}
	if cmd == "replay" {
		// Replay needs no flow file: the archive is the trace.
		topo, err := loadTopo(*topoPath)
		if err != nil {
			return err
		}
		cfg.Topo = topo
		return runReplay(ctx, stdout, stderr, *archivePath, cfg, *salvage)
	}

	records, topo, err := load(*flowsPath, *topoPath)
	if err != nil {
		return err
	}
	cfg.Topo = topo
	switch cmd {
	case "monitor":
		cfg.CheckpointPath = *ckptPath
		return runMonitor(ctx, stdout, records, cfg, *batch)
	case "record":
		if *archivePath == "" {
			return fmt.Errorf("record requires -archive")
		}
		cfg.ArchivePath = *archivePath
		cfg.CheckpointPath = *ckptPath
		return runMonitor(ctx, stdout, records, cfg, *batch)
	case "diagnose":
		report, err := cfg.TieredAnalyzer().AnalyzeContext(ctx, records, topo)
		if err != nil {
			return err
		}
		return printDiagnose(stdout, report, topo, *localized)
	}
	report, err := cfg.Analyzer().AnalyzeContext(ctx, records, topo)
	if err != nil {
		return err
	}

	switch cmd {
	case "analyze":
		return printAnalysis(stdout, report, topo, *alertsOnly)
	case "timeline":
		return printTimeline(stdout, report, *jobIdx, *ranks, *width)
	case "switches":
		fmt.Fprint(stdout, viz.BandwidthSeries(report.SwitchSeries, topo.SwitchName))
		fmt.Fprintln(stdout, "\nswitch-level alerts:")
		fmt.Fprint(stdout, viz.AlertList(report.SwitchAlerts))
		return nil
	default:
		return fmt.Errorf("unknown command %q (want analyze, diagnose, timeline, switches, monitor, record or replay)", cmd)
	}
}

// componentName renders a suspect component with topology-aware switch
// names ("spine-3" instead of "sw-11").
func componentName(topo *topology.Topology, c llmprism.SuspectComponent) string {
	switch c.Kind {
	case llmprism.ComponentSwitch:
		return "switch " + topo.SwitchName(c.Switch)
	case llmprism.ComponentLink:
		return "link " + topo.SwitchName(c.A) + " -> " + topo.SwitchName(c.B)
	default:
		return "host " + c.Host.String()
	}
}

// printDiagnose writes the diagnosis-focused view: alerts, then (with
// localization enabled) the ranked root-cause suspects.
func printDiagnose(stdout io.Writer, report *llmprism.Report, topo *topology.Topology, localized bool) error {
	alerts := report.Alerts()
	fmt.Fprintf(stdout, "alerts (%d):\n", len(alerts))
	fmt.Fprint(stdout, viz.AlertList(alerts))
	if !localized {
		return nil
	}
	fmt.Fprintf(stdout, "\nroot-cause suspects (%d):\n", len(report.Suspects))
	if len(report.Suspects) == 0 {
		fmt.Fprintln(stdout, "  none (no alert implicated any flow)")
		return nil
	}
	for i, s := range report.Suspects {
		fmt.Fprintf(stdout, "  #%d %-28s score %6.2f  coverage %.2f  contrast %5.2f  (%d implicated, %d healthy flows)\n",
			i+1, componentName(topo, s.Component), s.Score, s.Coverage, s.Contrast, s.Implicated, s.Healthy)
	}
	return nil
}

// runMonitor replays the flow file through a streaming monitor session in
// collection order, printing one line per completed window plus its
// ongoing incidents. A config with an ArchivePath (the record subcommand)
// also persists every completed window's columnar frame to a binary trace
// archive for later deterministic replay. All session wiring — analyzer
// assembly, archive temporary, checkpointing — lives in internal/session.
func runMonitor(ctx context.Context, stdout io.Writer, records []flow.Record, cfg session.Config, batch time.Duration) error {
	s, err := session.Open(ctx, cfg)
	if err != nil {
		return err
	}
	defer s.Abort()
	if batch <= 0 {
		batch = 10 * time.Second
	}

	sorted := make([]flow.Record, len(records))
	copy(sorted, records)
	flow.SortByStart(sorted)
	fmt.Fprintf(stdout, "monitoring %d records: window %v, hop %v, lateness %v, pipeline depth %d\n\n",
		len(sorted), s.Window(), s.Hop(), s.Lateness(), cfg.Depth)

	for lo := 0; lo < len(sorted); {
		cut := sorted[lo].Start.Add(batch)
		hi := lo
		for hi < len(sorted) && sorted[hi].Start.Before(cut) {
			hi++
		}
		reports, err := s.Push(sorted[lo:hi])
		session.PrintReports(stdout, reports)
		if err != nil {
			return err
		}
		lo = hi
	}
	reports, err := s.Close()
	session.PrintReports(stdout, reports)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nlate drops (record-window assignments): %d\n", s.Late())
	if cfg.ArchivePath != "" {
		fmt.Fprintf(stdout, "archived %d windows to %s\n", s.Windows(), cfg.ArchivePath)
	}
	return nil
}

// runReplay reopens a recorded binary trace archive and pushes its windows
// back through a fresh monitor session on the recorded window grid,
// reproducing the recorded reports bit for bit. Archives from unwindowed
// captures (zero recorded width) are windowed with the flag geometry.
// With salvage set, torn or unclosed archives are recovered to their
// intact whole-window prefix; the recovery note goes to stderr so stdout
// stays line-comparable with a clean replay of the same prefix.
func runReplay(ctx context.Context, stdout, stderr io.Writer, archivePath string, cfg session.Config, salvage bool) error {
	if archivePath == "" {
		return fmt.Errorf("replay requires -archive")
	}
	rep, err := session.OpenReplay(ctx, cfg, archivePath, salvage)
	if err != nil {
		return err
	}
	defer rep.Release()
	defer rep.Abort()
	if rep.Recovery != nil {
		fmt.Fprintf(stderr, "llmprism: recovered archive: %s\n", rep.Recovery)
	}
	fmt.Fprintf(stdout, "replaying %d archived windows: window %v, hop %v, lateness %v, pipeline depth %d\n\n",
		rep.NumSegments(), rep.Window(), rep.Hop(), rep.Lateness(), cfg.Depth)

	if err := rep.Run(func(reports []*llmprism.Report) {
		session.PrintReports(stdout, reports)
	}); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nlate drops (record-window assignments): %d\n", rep.Late())
	return nil
}

func load(flowsPath, topoPath string) ([]flow.Record, *topology.Topology, error) {
	ff, err := os.Open(flowsPath)
	if err != nil {
		return nil, nil, err
	}
	defer ff.Close()
	var records []flow.Record
	if strings.HasSuffix(flowsPath, ".jsonl") {
		records, err = flow.ReadJSONL(ff)
	} else {
		records, err = flow.ReadCSV(ff)
	}
	if err != nil {
		return nil, nil, err
	}
	topo, err := loadTopo(topoPath)
	if err != nil {
		return nil, nil, err
	}
	return records, topo, nil
}

func loadTopo(topoPath string) (*topology.Topology, error) {
	tf, err := os.Open(topoPath)
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	return topology.ReadJSON(tf)
}

func printAnalysis(stdout io.Writer, report *llmprism.Report, topo *topology.Topology, alertsOnly bool) error {
	if !alertsOnly {
		fmt.Fprintf(stdout, "recognized %d training jobs\n\n", len(report.Jobs))
		for i, job := range report.Jobs {
			var pp, dp int
			for _, t := range job.Types {
				if t == llmprism.TypeDP {
					dp++
				} else {
					pp++
				}
			}
			kind := "DP-only"
			if pp > 0 {
				kind = "PP+DP"
			}
			var meanStep time.Duration
			var n int
			for _, tl := range job.Timelines {
				if d := timeline.MeanStepDuration(tl); d > 0 {
					meanStep += d
					n++
				}
			}
			if n > 0 {
				meanStep /= time.Duration(n)
			}
			fmt.Fprintf(stdout, "job %d: %d GPUs on %d servers, %s, %d DP groups, %d DP pairs, %d PP pairs, mean step %v\n",
				i, len(job.Cluster.Endpoints), len(job.Cluster.Servers), kind,
				len(job.DPGroups), dp, pp, meanStep.Round(time.Millisecond))
		}
		fmt.Fprintln(stdout)
	}
	alerts := report.Alerts()
	fmt.Fprintf(stdout, "alerts (%d):\n", len(alerts))
	fmt.Fprint(stdout, viz.AlertList(alerts))
	return nil
}

func printTimeline(stdout io.Writer, report *llmprism.Report, jobIdx, nRanks, width int) error {
	if jobIdx < 0 || jobIdx >= len(report.Jobs) {
		return fmt.Errorf("job index %d out of range (have %d jobs)", jobIdx, len(report.Jobs))
	}
	job := report.Jobs[jobIdx]
	ranks := make([]flow.Addr, 0, len(job.Timelines))
	for r, tl := range job.Timelines {
		if len(tl.Steps) > 0 {
			ranks = append(ranks, r)
		}
	}
	if len(ranks) == 0 {
		return fmt.Errorf("job %d has no reconstructed steps", jobIdx)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	if len(ranks) > nRanks {
		ranks = ranks[:nRanks]
	}
	tl := job.Timelines[ranks[0]]
	mid := len(tl.Steps) / 2
	from := tl.Steps[mid].Start
	span := 2 * timeline.MeanStepDuration(tl)
	if span <= 0 {
		span = 2 * tl.Steps[mid].Duration()
	}
	if span <= 0 {
		return fmt.Errorf("job %d has empty reconstructed steps", jobIdx)
	}
	fmt.Fprint(stdout, viz.TimelineSwimlanes(job.Timelines, ranks, from, from.Add(span), width))
	return nil
}
