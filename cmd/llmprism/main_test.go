package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"github.com/llmprism/llmprism"
)

// writeTrace simulates a tiny two-job platform and writes the flows + topo
// files the CLI consumes.
func writeTrace(t *testing.T) (flowsPath, topoPath string) {
	t.Helper()
	dir := t.TempDir()
	topoSpec := llmprism.TopologySpec{Nodes: 8, NodesPerLeaf: 4, Spines: 2}
	jobs, err := llmprism.PlanJobs(topoSpec, []llmprism.JobPlan{
		{Nodes: 4, TargetStep: 2 * time.Second},
		{Nodes: 4, TargetStep: 2 * time.Second},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := llmprism.Simulate(llmprism.Scenario{
		Name: "cli-smoke", Topo: topoSpec, Jobs: jobs, Horizon: 12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	flowsPath = filepath.Join(dir, "flows.csv")
	ff, err := os.Create(flowsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ff.Close()
	if err := llmprism.WriteFlowsCSV(ff, res.Records); err != nil {
		t.Fatal(err)
	}
	topoPath = filepath.Join(dir, "topo.json")
	tf, err := os.Create(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if err := res.Topo.WriteJSON(tf); err != nil {
		t.Fatal(err)
	}
	return flowsPath, topoPath
}

func TestRunAnalyze(t *testing.T) {
	flows, topo := writeTrace(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"analyze", "-flows", flows, "-topo", topo, "-workers", "4",
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recognized 2 training jobs") {
		t.Errorf("analyze output missing job count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "alerts (") {
		t.Errorf("analyze output missing alert section:\n%s", out.String())
	}
}

func TestRunDiagnose(t *testing.T) {
	flows, topo := writeTrace(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"diagnose", "-flows", flows, "-topo", topo, "-bucket", "5s", "-workers", "2",
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alerts (") {
		t.Errorf("diagnose output missing alert section:\n%s", out.String())
	}
	if strings.Contains(out.String(), "root-cause suspects") {
		t.Errorf("suspects printed without -localize:\n%s", out.String())
	}

	out.Reset()
	err = run(context.Background(), []string{
		"diagnose", "-flows", flows, "-topo", topo, "-bucket", "5s", "-localize",
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "root-cause suspects") {
		t.Errorf("diagnose -localize output missing suspects section:\n%s", out.String())
	}
}

func TestRunSwitches(t *testing.T) {
	flows, topo := writeTrace(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"switches", "-flows", flows, "-topo", topo, "-bucket", "5s",
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "switch-level alerts:") {
		t.Errorf("switches output missing alert section:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), nil, &out, &out); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run(context.Background(), []string{"frobnicate"}, &out, &out); err == nil ||
		!strings.Contains(err.Error(), "flows.csv") && !strings.Contains(err.Error(), "frobnicate") {
		// The unknown command fails at load time (default -flows path) or
		// at dispatch; either way run must error.
		t.Errorf("unknown command: err = %v", err)
	}
	flows, topo := writeTrace(t)
	if err := run(context.Background(), []string{
		"timeline", "-flows", flows, "-topo", topo, "-job", "99",
	}, &out, &out); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range job index: err = %v", err)
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"analyze", "-h"}, &out, &errOut); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
	if !strings.Contains(errOut.String(), "-workers") {
		t.Errorf("usage text missing from stderr:\n%s", errOut.String())
	}
}

func TestRunCanceled(t *testing.T) {
	flows, topo := writeTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	if err := run(ctx, []string{"analyze", "-flows", flows, "-topo", topo}, &out, &out); err == nil {
		t.Error("canceled context did not abort analysis")
	}
}

func TestRunMonitor(t *testing.T) {
	flows, topo := writeTrace(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"monitor", "-flows", flows, "-topo", topo,
		"-window", "4s", "-lateness", "1s", "-batch", "2s", "-depth", "2", "-workers", "2",
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "window 0 [") || !strings.Contains(got, "window 2 [") {
		t.Errorf("monitor output missing per-window lines:\n%s", got)
	}
	if !strings.Contains(got, "late drops (record-window assignments): 0") {
		t.Errorf("monitor output missing late-record summary:\n%s", got)
	}
}

// windowLines extracts the per-window report block of a monitor/record/
// replay run — every "window N [..." line plus its indented incident lines
// and the trailing late-drop summary — the part that must be identical
// between a recorded session and its replay.
func windowLines(out string) []string {
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "window ") || strings.HasPrefix(line, "  ") ||
			strings.HasPrefix(line, "late drops") {
			lines = append(lines, line)
		}
	}
	return lines
}

// TestRunRecordReplay is the CLI acceptance gate for the archive path:
// record persists the monitored windows, replay reopens them — no flow
// file — and the two sessions' window reports must match line for line.
func TestRunRecordReplay(t *testing.T) {
	flows, topo := writeTrace(t)
	arch := filepath.Join(filepath.Dir(flows), "trace.llpa")

	var recOut strings.Builder
	err := run(context.Background(), []string{
		"record", "-flows", flows, "-topo", topo, "-archive", arch,
		"-window", "4s", "-lateness", "1s", "-batch", "2s", "-depth", "2", "-bucket", "2s",
		"-localize",
	}, &recOut, &recOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(recOut.String(), "archived ") {
		t.Errorf("record output missing archive summary:\n%s", recOut.String())
	}
	if _, err := os.Stat(arch); err != nil {
		t.Fatalf("archive not written: %v", err)
	}

	// Replay with the same detector settings (including -localize, so the
	// per-window suspect lines are compared too).
	var repOut strings.Builder
	err = run(context.Background(), []string{
		"replay", "-archive", arch, "-topo", topo, "-depth", "3", "-bucket", "2s",
		"-localize",
	}, &repOut, &repOut)
	if err != nil {
		t.Fatal(err)
	}
	rec, rep := windowLines(recOut.String()), windowLines(repOut.String())
	if len(rec) == 0 {
		t.Fatalf("record emitted no window lines:\n%s", recOut.String())
	}
	if !slices.Equal(rec, rep) {
		t.Errorf("replay diverges from recorded session:\nrecord:\n%s\nreplay:\n%s",
			strings.Join(rec, "\n"), strings.Join(rep, "\n"))
	}
}

// TestRunRecordReplaySuppress extends the record/replay line-compare gate
// to the incident-centric path: with -suppress-chronic and -localize the
// replayed session must reproduce the recorded chronic classification,
// suppressed alert surface and fused suspect lines bit for bit.
func TestRunRecordReplaySuppress(t *testing.T) {
	flows, topo := writeTrace(t)
	arch := filepath.Join(filepath.Dir(flows), "trace.llpa")

	var recOut strings.Builder
	err := run(context.Background(), []string{
		"record", "-flows", flows, "-topo", topo, "-archive", arch,
		"-window", "4s", "-lateness", "1s", "-batch", "2s", "-depth", "2", "-bucket", "2s",
		"-localize", "-suppress-chronic",
	}, &recOut, &recOut)
	if err != nil {
		t.Fatal(err)
	}

	var repOut strings.Builder
	err = run(context.Background(), []string{
		"replay", "-archive", arch, "-topo", topo, "-depth", "3", "-bucket", "2s",
		"-localize", "-suppress-chronic",
	}, &repOut, &repOut)
	if err != nil {
		t.Fatal(err)
	}
	rec, rep := windowLines(recOut.String()), windowLines(repOut.String())
	if len(rec) == 0 {
		t.Fatalf("record emitted no window lines:\n%s", recOut.String())
	}
	if !slices.Equal(rec, rep) {
		t.Errorf("suppressed replay diverges from recorded session:\nrecord:\n%s\nreplay:\n%s",
			strings.Join(rec, "\n"), strings.Join(rep, "\n"))
	}
}

func TestRunRecordRequiresArchive(t *testing.T) {
	flows, topo := writeTrace(t)
	var out strings.Builder
	if err := run(context.Background(), []string{
		"record", "-flows", flows, "-topo", topo,
	}, &out, &out); err == nil || !strings.Contains(err.Error(), "-archive") {
		t.Errorf("record without -archive: err = %v", err)
	}
	if err := run(context.Background(), []string{
		"replay", "-topo", topo,
	}, &out, &out); err == nil || !strings.Contains(err.Error(), "-archive") {
		t.Errorf("replay without -archive: err = %v", err)
	}
}

func TestRunReplayRejectsGarbage(t *testing.T) {
	_, topo := writeTrace(t)
	bad := filepath.Join(t.TempDir(), "bad.llpa")
	if err := os.WriteFile(bad, []byte("not an archive at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(context.Background(), []string{
		"replay", "-archive", bad, "-topo", topo,
	}, &out, &out); err == nil {
		t.Error("garbage archive accepted")
	}
}

func TestRunMonitorHopped(t *testing.T) {
	flows, topo := writeTrace(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"monitor", "-flows", flows, "-topo", topo,
		"-window", "6s", "-hop", "3s", "-batch", "3s",
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hop 3s") {
		t.Errorf("monitor output missing hop configuration:\n%s", out.String())
	}
}

// TestRunRecordAtomicAndReplayRecover is the CLI crash-safety gate: record
// must land the archive atomically (no leftover temporary), strict replay
// must reject a torn copy, and replay -recover must salvage the torn
// copy's intact window prefix with output line-identical to a clean
// replay of the same windows — the recovery note going to stderr only.
func TestRunRecordAtomicAndReplayRecover(t *testing.T) {
	flows, topo := writeTrace(t)
	arch := filepath.Join(filepath.Dir(flows), "trace.llpa")

	var recOut strings.Builder
	err := run(context.Background(), []string{
		"record", "-flows", flows, "-topo", topo, "-archive", arch,
		"-window", "4s", "-lateness", "1s", "-batch", "2s", "-depth", "2", "-bucket", "2s",
		"-localize",
	}, &recOut, &recOut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(arch); err != nil {
		t.Fatalf("archive not renamed into place: %v", err)
	}
	if _, err := os.Stat(arch + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temporary archive left behind: stat err = %v", err)
	}

	var cleanOut strings.Builder
	err = run(context.Background(), []string{
		"replay", "-archive", arch, "-topo", topo, "-depth", "2", "-bucket", "2s", "-localize",
	}, &cleanOut, &cleanOut)
	if err != nil {
		t.Fatal(err)
	}
	want := windowLines(cleanOut.String())
	if len(want) == 0 {
		t.Fatalf("clean replay emitted no window lines:\n%s", cleanOut.String())
	}

	// Tear the trailer off a copy: strict replay must refuse it, -recover
	// must salvage every archived window and reproduce the clean replay.
	data, err := os.ReadFile(arch)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(filepath.Dir(flows), "torn.llpa")
	if err := os.WriteFile(torn, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(context.Background(), []string{
		"replay", "-archive", torn, "-topo", topo, "-depth", "2", "-bucket", "2s", "-localize",
	}, &out, &out); err == nil {
		t.Error("strict replay accepted a torn archive")
	}
	var gotOut, gotErr strings.Builder
	err = run(context.Background(), []string{
		"replay", "-recover", "-archive", torn, "-topo", topo, "-depth", "2", "-bucket", "2s", "-localize",
	}, &gotOut, &gotErr)
	if err != nil {
		t.Fatalf("replay -recover: %v\nstderr:\n%s", err, gotErr.String())
	}
	if !strings.Contains(gotErr.String(), "recovered archive") {
		t.Errorf("recovery note missing from stderr:\n%s", gotErr.String())
	}
	if got := windowLines(gotOut.String()); !slices.Equal(got, want) {
		t.Errorf("trailer-torn recovery diverges from clean replay:\nclean:\n%s\nrecovered:\n%s",
			strings.Join(want, "\n"), strings.Join(got, "\n"))
	}

	// Cut mid-archive: the salvaged prefix must replay as a line-for-line
	// prefix of the clean replay (late-drop summaries excluded — the
	// recovered session closes earlier).
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	gotOut.Reset()
	gotErr.Reset()
	err = run(context.Background(), []string{
		"replay", "-recover", "-archive", torn, "-topo", topo, "-depth", "2", "-bucket", "2s", "-localize",
	}, &gotOut, &gotErr)
	if err != nil {
		t.Fatalf("replay -recover (half): %v\nstderr:\n%s", err, gotErr.String())
	}
	drop := func(lines []string) []string {
		var kept []string
		for _, l := range lines {
			if !strings.HasPrefix(l, "late drops") {
				kept = append(kept, l)
			}
		}
		return kept
	}
	got, ref := drop(windowLines(gotOut.String())), drop(want)
	if len(got) > len(ref) || !slices.Equal(got, ref[:len(got)]) {
		t.Errorf("mid-cut recovery is not a prefix of the clean replay:\nclean:\n%s\nrecovered:\n%s",
			strings.Join(ref, "\n"), strings.Join(got, "\n"))
	}
}

// TestRunRecordStoreReplayScan is the CLI acceptance gate for the
// multi-segment store: record -store rotates per window, replay accepts
// the store directory and reproduces the recorded reports line for line,
// and scan both lists matching flows and re-analyzes a selected slice.
func TestRunRecordStoreReplayScan(t *testing.T) {
	flows, topo := writeTrace(t)
	store := filepath.Join(filepath.Dir(flows), "trace.llps")

	var recOut strings.Builder
	err := run(context.Background(), []string{
		"record", "-flows", flows, "-topo", topo, "-store", store,
		"-rotate-windows", "1",
		"-window", "4s", "-lateness", "1s", "-batch", "2s", "-depth", "2", "-bucket", "2s",
		"-localize",
	}, &recOut, &recOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(recOut.String(), "archived ") || !strings.Contains(recOut.String(), "to store ") {
		t.Errorf("record output missing store summary:\n%s", recOut.String())
	}
	segs, err := filepath.Glob(filepath.Join(store, "seg-*.llpa"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("store rotated into %d segments, want ≥ 2", len(segs))
	}

	var repOut strings.Builder
	err = run(context.Background(), []string{
		"replay", "-archive", store, "-topo", topo, "-depth", "3", "-bucket", "2s",
		"-localize",
	}, &repOut, &repOut)
	if err != nil {
		t.Fatal(err)
	}
	rec, rep := windowLines(recOut.String()), windowLines(repOut.String())
	if len(rec) == 0 {
		t.Fatalf("record emitted no window lines:\n%s", recOut.String())
	}
	if !slices.Equal(rec, rep) {
		t.Errorf("store replay diverges from recorded session:\nrecord:\n%s\nreplay:\n%s",
			strings.Join(rec, "\n"), strings.Join(rep, "\n"))
	}

	// Unbounded scan lists every archived flow.
	var scanOut strings.Builder
	if err := run(context.Background(), []string{
		"scan", "-archive", store,
	}, &scanOut, &scanOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(scanOut.String(), "\n"), "\n")
	summary := lines[len(lines)-1]
	if !strings.HasPrefix(summary, "matched ") || strings.HasPrefix(summary, "matched 0 flows") {
		t.Fatalf("scan summary = %q, want non-zero match count", summary)
	}

	// Pair-bounded scan: the first listed flow's endpoints must match
	// themselves; an address pair outside the topology matches nothing.
	fields := strings.Fields(lines[0])
	if len(fields) < 4 || fields[2] != "->" {
		t.Fatalf("unexpected scan line %q", lines[0])
	}
	scanOut.Reset()
	if err := run(context.Background(), []string{
		"scan", "-archive", store, "-pair", fields[1] + "," + fields[3],
	}, &scanOut, &scanOut); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(scanOut.String(), "matched 0 flows") {
		t.Errorf("pair scan of a recorded pair matched nothing:\n%s", scanOut.String())
	}
	scanOut.Reset()
	if err := run(context.Background(), []string{
		"scan", "-archive", store, "-pair", "10.254.254.1,10.254.254.2",
	}, &scanOut, &scanOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scanOut.String(), "matched 0 flows in 0 windows") {
		t.Errorf("pair scan of an absent pair matched flows:\n%s", scanOut.String())
	}

	// scan -replay with no bounds re-analyzes the whole store: its window
	// lines must equal the recorded session's.
	var qrepOut strings.Builder
	if err := run(context.Background(), []string{
		"scan", "-replay", "-archive", store, "-topo", topo, "-depth", "2", "-bucket", "2s",
		"-localize",
	}, &qrepOut, &qrepOut); err != nil {
		t.Fatal(err)
	}
	if got := windowLines(qrepOut.String()); !slices.Equal(got, rec) {
		t.Errorf("scan -replay over the whole store diverges from recorded session:\nrecord:\n%s\nscan:\n%s",
			strings.Join(rec, "\n"), strings.Join(got, "\n"))
	}

	// Time-bounded scan -replay prunes segments and analyzes a strict
	// subset of windows (the simulated platform starts 2026-01-01T12:00Z).
	var sliceOut strings.Builder
	if err := run(context.Background(), []string{
		"scan", "-replay", "-archive", store, "-topo", topo, "-bucket", "2s",
		"-to", "2026-01-01T12:00:06Z",
	}, &sliceOut, &sliceOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sliceOut.String(), fmt.Sprintf("2 of %d segments", len(segs))) {
		t.Errorf("time-bounded scan -replay did not prune to 2 segments:\n%s", sliceOut.String())
	}
	var sliceWindows int
	for _, l := range windowLines(sliceOut.String()) {
		if strings.HasPrefix(l, "window ") {
			sliceWindows++
		}
	}
	if sliceWindows == 0 || sliceWindows >= len(segs) {
		t.Errorf("time-bounded scan -replay analyzed %d windows, want a non-empty strict subset of %d", sliceWindows, len(segs))
	}
}

func TestRunScanErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"scan"}, &out, &out); err == nil ||
		!strings.Contains(err.Error(), "-archive") {
		t.Errorf("scan without -archive: err = %v", err)
	}
	if err := run(context.Background(), []string{
		"scan", "-archive", "x", "-from", "yesterday",
	}, &out, &out); err == nil || !strings.Contains(err.Error(), "-from") {
		t.Errorf("scan with bad -from: err = %v", err)
	}
	if err := run(context.Background(), []string{
		"scan", "-archive", "x", "-pair", "nonsense",
	}, &out, &out); err == nil || !strings.Contains(err.Error(), "-pair") {
		t.Errorf("scan with bad -pair: err = %v", err)
	}
	if err := run(context.Background(), []string{
		"scan", "-archive", "x", "-switch", "leaf!",
	}, &out, &out); err == nil || !strings.Contains(err.Error(), "-switch") {
		t.Errorf("scan with bad -switch: err = %v", err)
	}
}
