package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-exp", "a2", "-scale", "0.5", "-seed", "3", "-workers", "2",
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "A2: step-splitter ablation") {
		t.Errorf("output missing experiment header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BOCD") {
		t.Errorf("output missing report body:\n%s", out.String())
	}
}

func TestRunExperimentSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two experiments")
	}
	var out strings.Builder
	err := run(context.Background(), []string{
		"-exp", "a2,fig3", "-scale", "0.1", "-seed", "3", "-workers", "2",
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	// Registry order, not flag order: fig3 prints before a2.
	fig3At := strings.Index(out.String(), "E1: job recognition")
	a2At := strings.Index(out.String(), "A2: step-splitter ablation")
	if fig3At < 0 || a2At < 0 || a2At < fig3At {
		t.Errorf("subset output wrong or misordered (fig3@%d, a2@%d):\n%s", fig3At, a2At, out.String())
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-h"}, &out, &errOut); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
	if !strings.Contains(errOut.String(), "-workers") {
		t.Errorf("usage text missing from stderr:\n%s", errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("usage text leaked to stdout:\n%s", out.String())
	}
}

func TestRunFlagAndNameErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-exp", "nope"}, &out, &out); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown experiment: err = %v", err)
	}
	if err := run(context.Background(), []string{"-scale", "huge"}, &out, &out); err == nil {
		t.Error("unparsable -scale accepted")
	}
}
