// Command repro regenerates every table and figure of the LLMPrism paper's
// evaluation (plus this reproduction's ablations) on the simulated
// platform, printing the same rows/series the paper reports.
//
// Usage:
//
//	repro                  # run everything at paper scale
//	repro -exp table1      # one experiment: fig3|table1|fig4|fig5|diagnosis|localize|a1|a2|a3
//	repro -exp fig3,fig5   # a comma-separated subset
//	repro -scale 0.25      # reduced scale for quick runs
//	repro -seed 7
//	repro -workers 8       # experiment fan-out (0 = GOMAXPROCS)
//
// Paper-scale runs simulate hundreds of millions of bytes of flow records
// and take minutes per experiment; -scale trades fidelity for time and
// -workers runs independent experiments (and their internal simulations)
// concurrently, the budget shared between the two levels. Results are
// bit-identical for any -workers value; only the wall-clock lines differ.
// Reports print in a fixed order as experiments complete.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment(s), comma-separated: all|"+strings.Join(experiments.Names(), "|"))
		scale   = fs.Float64("scale", 1, "scenario scale in (0, 1]")
		seed    = fs.Int64("seed", 1, "simulation seed")
		workers = fs.Int("workers", 0, "concurrent experiments and per-experiment simulations (0 = GOMAXPROCS)")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	opts := experiments.Options{Scale: *scale, Seed: *seed}

	var names []string
	if !strings.EqualFold(*exp, "all") {
		for _, name := range strings.Split(*exp, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}

	start := time.Now()
	var firstErr error
	err := experiments.RunStream(ctx, names, opts, *workers, func(o experiments.Outcome) {
		fmt.Fprintf(stdout, "=== %s ===\n", o.Spec.Desc)
		if o.Err != nil {
			fmt.Fprintf(stdout, "FAILED: %v\n\n", o.Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", o.Spec.Name, o.Err)
			}
			return
		}
		fmt.Fprintln(stdout, o.Result.Report())
		fmt.Fprintf(stdout, "(experiment %v, total elapsed %v)\n\n",
			o.Wall.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	})
	if err != nil {
		return err
	}
	return firstErr
}
