// Command repro regenerates every table and figure of the LLMPrism paper's
// evaluation (plus this reproduction's ablations) on the simulated
// platform, printing the same rows/series the paper reports.
//
// Usage:
//
//	repro                  # run everything at paper scale
//	repro -exp table1      # one experiment: fig3|table1|fig4|fig5|diagnosis|a1|a2|a3
//	repro -scale 0.25      # reduced scale for quick runs
//	repro -seed 7
//
// Paper-scale runs simulate hundreds of millions of bytes of flow records
// and take minutes per experiment; -scale trades fidelity for time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/experiments"
)

type runner struct {
	name string
	desc string
	run  func(experiments.Options) (fmt.Stringer, error)
}

// stringerFunc adapts a Report() method to fmt.Stringer.
type report struct{ text string }

func (r report) String() string { return r.text }

func wrap[T interface{ Report() string }](f func(experiments.Options) (T, error)) func(experiments.Options) (fmt.Stringer, error) {
	return func(o experiments.Options) (fmt.Stringer, error) {
		res, err := f(o)
		if err != nil {
			return nil, err
		}
		return report{res.Report()}, nil
	}
}

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: all|fig3|table1|fig4|fig5|diagnosis|a1|a2|a3")
		scale = flag.Float64("scale", 1, "scenario scale in (0, 1]")
		seed  = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	opts := experiments.Options{Scale: *scale, Seed: *seed}

	runners := []runner{
		{"fig3", "E1: job recognition (Fig. 3)", wrap(experiments.Fig3)},
		{"table1", "E2: parallelism identification (Table I)", wrap(func(o experiments.Options) (*experiments.Table1Result, error) {
			return experiments.Table1(experiments.Table1Config{}, o)
		})},
		{"fig4", "E3: timeline reconstruction (§V-C, Fig. 4)", wrap(experiments.Fig4)},
		{"fig5", "E4: switch-level diagnosis (Fig. 5)", wrap(experiments.Fig5)},
		{"diagnosis", "E5: cross-step / cross-group diagnosis (§V-D)", wrap(experiments.Diagnosis)},
		{"a1", "A1: netsim mode ablation", wrap(experiments.AblationNetsimMode)},
		{"a2", "A2: step-splitter ablation", wrap(experiments.AblationStepSplitter)},
		{"a3", "A3: ring-count ablation", wrap(experiments.AblationRingCount)},
	}

	ran := 0
	for _, r := range runners {
		if *exp != "all" && !strings.EqualFold(*exp, r.name) {
			continue
		}
		ran++
		fmt.Printf("=== %s ===\n", r.desc)
		start := time.Now()
		res, err := r.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(res)
		fmt.Printf("(total %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}
