package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesFlowsAndTopo(t *testing.T) {
	dir := t.TempDir()
	flows := filepath.Join(dir, "flows.csv")
	topo := filepath.Join(dir, "topo.json")
	var out strings.Builder
	err := run([]string{
		"-nodes", "8", "-nodes-per-leaf", "4", "-spines", "2",
		"-jobs", "4,4", "-minutes", "0.15", "-step", "2", "-seed", "7",
		"-flows", flows, "-topo", topo,
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "simulated 2 jobs") {
		t.Errorf("output missing job summary: %q", out.String())
	}
	for _, path := range []string{flows, topo} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("output file missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestRunDegradeSwitchFlag(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{
		"-nodes", "8", "-nodes-per-leaf", "4", "-spines", "2",
		"-jobs", "8", "-minutes", "0.15", "-step", "2",
		"-flows", filepath.Join(dir, "f.csv"), "-topo", filepath.Join(dir, "t.json"),
		"-degrade-switch", "spine:1:0.2",
	}, &out, &out)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
	if !strings.Contains(errOut.String(), "-nodes") {
		t.Errorf("usage text missing from stderr:\n%s", errOut.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-jobs", "four"}, &out, &out); err == nil {
		t.Error("unparsable -jobs accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-degrade-switch", "bogus"}, &out, &out); err == nil {
		t.Error("malformed -degrade-switch accepted")
	}
}
