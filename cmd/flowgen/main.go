// Command flowgen generates a synthetic multi-tenant LLM training platform
// trace: ERSPAN-style flow records plus the topology needed to analyze
// them, standing in for a production collector export.
//
// Usage:
//
//	flowgen -nodes 48 -jobs 16,16,8 -minutes 3 -seed 7 \
//	        -flows flows.csv -topo topo.json
//
// The flows file can then be analyzed with `llmprism analyze`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/erspan"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flowgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flowgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes     = fs.Int("nodes", 48, "fabric size in servers (8 GPUs each)")
		perLeaf   = fs.Int("nodes-per-leaf", 8, "servers per leaf switch")
		spines    = fs.Int("spines", 8, "spine switch count")
		jobsSpec  = fs.String("jobs", "16,16,8", "comma-separated node counts of tenant jobs")
		minutes   = fs.Float64("minutes", 3, "simulated duration in minutes")
		stepSec   = fs.Float64("step", 10, "target training-step duration in seconds")
		seed      = fs.Int64("seed", 1, "simulation seed")
		loss      = fs.Float64("loss", 0.001, "collector record loss probability")
		flowsPath = fs.String("flows", "flows.csv", "output flow records (CSV, or .jsonl)")
		topoPath  = fs.String("topo", "topo.json", "output topology spec (JSON)")
		degrade   = fs.String("degrade-switch", "", "inject a mid-run switch degradation, e.g. 'spine:1:0.2'")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	var plans []platform.JobPlan
	for _, part := range strings.Split(*jobsSpec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("parse -jobs %q: %w", *jobsSpec, err)
		}
		plans = append(plans, platform.JobPlan{
			Nodes:      n,
			TargetStep: time.Duration(*stepSec * float64(time.Second)),
		})
	}
	topoSpec := topology.Spec{Nodes: *nodes, NodesPerLeaf: *perLeaf, Spines: *spines}
	jobs, err := platform.PlanJobs(topoSpec, plans, *seed)
	if err != nil {
		return err
	}

	horizon := time.Duration(*minutes * float64(time.Minute))
	var sched faults.Schedule
	if *degrade != "" {
		fault, err := parseDegrade(*degrade, topoSpec, horizon)
		if err != nil {
			return err
		}
		sched.Faults = append(sched.Faults, fault)
	}

	res, err := platform.Run(platform.Scenario{
		Name:      "flowgen",
		Topo:      topoSpec,
		Jobs:      jobs,
		Faults:    sched,
		Collector: erspan.Config{LossProb: *loss, Seed: *seed},
		Horizon:   horizon,
	})
	if err != nil {
		return err
	}

	if err := writeFlows(*flowsPath, res.Records); err != nil {
		return err
	}
	topoFile, err := os.Create(*topoPath)
	if err != nil {
		return err
	}
	defer topoFile.Close()
	if err := res.Topo.WriteJSON(topoFile); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "simulated %d jobs on %d GPUs for %v\n",
		len(res.Truth.Jobs), res.Topo.Endpoints(), horizon)
	fmt.Fprintf(stdout, "wrote %d flow records to %s (%d lost by collector), topology to %s\n",
		len(res.Records), *flowsPath, res.Lost, *topoPath)
	return nil
}

func parseDegrade(spec string, topoSpec topology.Spec, horizon time.Duration) (faults.Fault, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return faults.Fault{}, fmt.Errorf("parse -degrade-switch %q: want kind:index:factor", spec)
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil {
		return faults.Fault{}, fmt.Errorf("parse -degrade-switch index: %w", err)
	}
	factor, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return faults.Fault{}, fmt.Errorf("parse -degrade-switch factor: %w", err)
	}
	topo, err := topology.New(topoSpec)
	if err != nil {
		return faults.Fault{}, err
	}
	var sw flow.SwitchID
	switch parts[0] {
	case "spine":
		sw = topo.SpineSwitch(idx)
	case "leaf":
		sw = topo.LeafSwitch(idx)
	default:
		return faults.Fault{}, fmt.Errorf("parse -degrade-switch kind %q: want spine or leaf", parts[0])
	}
	return faults.Fault{
		Kind:   faults.KindSwitchDegrade,
		Switch: sw,
		At:     horizon / 3,
		Until:  2 * horizon / 3,
		Factor: factor,
	}, nil
}

func writeFlows(path string, records []flow.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return flow.WriteJSONL(f, records)
	}
	return flow.WriteCSV(f, records)
}
