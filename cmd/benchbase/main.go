// Command benchbase records and checks benchmark baselines. It reads `go
// test -bench -benchmem` output on stdin and either writes a baseline
// JSON file (-update) or diffs the run against one (-check).
//
// The check gates allocs/op — allocation counts are deterministic for a
// deterministic code path, so a regression there is a code change, not
// machine noise — and reports ns/op and B/op movements informationally.
// A benchmark present in the baseline but absent from the run fails the
// check (a silently deleted benchmark is a lost regression gate); extra
// benchmarks in the run are reported and ignored so new benchmarks can
// land before their baseline does.
//
// Regenerate the committed baselines with (3x matches CI; multiple
// iterations smooth one-shot warmup allocations such as lazily built
// intern indexes):
//
//	go test -run - -bench 'Analyze|Frame' -benchtime=3x -benchmem . | benchbase -update BENCH_analyze.json
//	go test -run - -bench Monitor -benchtime=3x -benchmem . | benchbase -update BENCH_monitor.json
//	go test -run - -bench Localize -benchtime=3x -benchmem ./internal/core/localize | benchbase -update BENCH_localize.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured costs.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the committed benchmark baseline file.
type Baseline struct {
	// Note documents how the baseline was produced.
	Note string `json:"note,omitempty"`
	// Benchmarks maps normalized benchmark name to its measured costs.
	Benchmarks map[string]Result `json:"benchmarks"`
}

// cpuSuffix matches the GOMAXPROCS suffix go test appends to benchmark
// names (BenchmarkAnalyze-8); baselines must compare across machines with
// different core counts, so it is stripped.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark results from `go test -bench` output.
// Lines that are not benchmark results (PASS, ok, logs) are skipped.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := cpuSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
		var res Result
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchbase: %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp, seen = v, true
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		if seen {
			out[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchbase: no benchmark results on stdin (did the bench run with -benchmem?)")
	}
	return out, nil
}

func update(path, note string, results map[string]Result) error {
	data, err := json.MarshalIndent(Baseline{Note: note, Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// check diffs results against the baseline at path. It returns an error
// listing every gate violation; informational drifts go to w.
func check(w io.Writer, path string, results map[string]Result, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchbase: %s: %w", path, err)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run", name))
			continue
		}
		limit := float64(want.AllocsPerOp) * (1 + tol)
		if float64(got.AllocsPerOp) > limit {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d exceeds baseline %d by more than %.0f%%",
				name, got.AllocsPerOp, want.AllocsPerOp, tol*100))
		} else {
			fmt.Fprintf(w, "ok   %s: allocs/op %d (baseline %d), ns/op %.0f (baseline %.0f), B/op %d (baseline %d)\n",
				name, got.AllocsPerOp, want.AllocsPerOp, got.NsPerOp, want.NsPerOp, got.BytesPerOp, want.BytesPerOp)
		}
	}
	extra := make([]string, 0)
	for name := range results {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "new  %s: not in baseline (run -update to record it)\n", name)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchbase: %s", strings.Join(failures, "; "))
	}
	return nil
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchbase", flag.ContinueOnError)
	fs.SetOutput(stdout)
	updatePath := fs.String("update", "", "write the parsed results as a new baseline to this file")
	checkPath := fs.String("check", "", "diff the parsed results against the baseline in this file")
	tol := fs.Float64("tol", 0.25, "allowed fractional allocs/op growth before -check fails")
	note := fs.String("note", "go test -bench -benchtime=3x -benchmem", "provenance note stored with -update")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*updatePath == "") == (*checkPath == "") {
		return fmt.Errorf("benchbase: exactly one of -update or -check is required")
	}
	results, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if *updatePath != "" {
		return update(*updatePath, *note, results)
	}
	return check(stdout, *checkPath, results, *tol)
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
