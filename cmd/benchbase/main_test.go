package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: github.com/llmprism/llmprism
BenchmarkAnalyze-8                	       1	 52314021 ns/op	18273645 B/op	  120034 allocs/op
BenchmarkAnalyzePipeline/depth=2-8	       1	 31220010 ns/op	 9273645 B/op	   60034 allocs/op
PASS
ok  	github.com/llmprism/llmprism	2.013s
`

func TestParseBenchNormalizesNames(t *testing.T) {
	results, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	got, ok := results["Analyze"]
	if !ok {
		t.Fatalf("missing Analyze (cpu suffix not stripped?): %v", results)
	}
	if got.AllocsPerOp != 120034 || got.BytesPerOp != 18273645 || got.NsPerOp != 52314021 {
		t.Fatalf("Analyze = %+v", got)
	}
	if _, ok := results["AnalyzePipeline/depth=2"]; !ok {
		t.Fatalf("sub-benchmark name mangled: %v", results)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok  \tpkg\t0.1s\n")); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}

func TestUpdateThenCheckRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	results, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := update(path, "test", results); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := check(&out, path, results, 0.25); err != nil {
		t.Fatalf("identical run must pass the check: %v", err)
	}
	if !strings.Contains(out.String(), "ok   Analyze:") {
		t.Fatalf("check output missing ok line:\n%s", out.String())
	}
}

func TestCheckGatesAllocGrowth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	results, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := update(path, "test", results); err != nil {
		t.Fatal(err)
	}
	grown := map[string]Result{}
	for name, r := range results {
		r.AllocsPerOp = r.AllocsPerOp * 2
		grown[name] = r
	}
	var out strings.Builder
	err = check(&out, path, grown, 0.25)
	if err == nil {
		t.Fatal("doubled allocs/op must fail the check")
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("failure should name the gated metric: %v", err)
	}
}

func TestCheckNsDriftIsInformational(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	results, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := update(path, "test", results); err != nil {
		t.Fatal(err)
	}
	slower := map[string]Result{}
	for name, r := range results {
		r.NsPerOp *= 10 // machine noise must not gate
		slower[name] = r
	}
	var out strings.Builder
	if err := check(&out, path, slower, 0.25); err != nil {
		t.Fatalf("ns/op drift alone must not fail the check: %v", err)
	}
}

func TestCheckMissingBaselineEntryFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	results, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := update(path, "test", results); err != nil {
		t.Fatal(err)
	}
	partial := map[string]Result{"Analyze": results["Analyze"]}
	var out strings.Builder
	if err := check(&out, path, partial, 0.25); err == nil {
		t.Fatal("baseline entry missing from the run must fail the check")
	}
}

func TestCheckExtraBenchmarkIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	results, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := update(path, "test", results); err != nil {
		t.Fatal(err)
	}
	results["BrandNew"] = Result{NsPerOp: 1, AllocsPerOp: 1}
	var out strings.Builder
	if err := check(&out, path, results, 0.25); err != nil {
		t.Fatalf("extra benchmark must not fail the check: %v", err)
	}
	if !strings.Contains(out.String(), "new  BrandNew") {
		t.Fatalf("extra benchmark should be reported:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(nil, strings.NewReader(benchOutput), &strings.Builder{}); err == nil {
		t.Fatal("want error when neither -update nor -check given")
	}
	if err := run([]string{"-update", "a", "-check", "b"}, strings.NewReader(benchOutput), &strings.Builder{}); err == nil {
		t.Fatal("want error when both -update and -check given")
	}
}

func TestMainUpdateWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := run([]string{"-update", path}, strings.NewReader(benchOutput), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Analyze"`) {
		t.Fatalf("baseline file missing benchmark entry:\n%s", data)
	}
}
