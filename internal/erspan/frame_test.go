package erspan

import (
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// TestCollectorInternsPaths pins the collector's storage contract: however
// many records a route exports, its switch path is stored once.
func TestCollectorInternsPaths(t *testing.T) {
	c := New(epoch, Config{})
	for i := 0; i < 1000; i++ {
		at := time.Duration(i) * time.Millisecond
		cp := comp(1, 2, 1000, at, at+time.Millisecond)
		if i%2 == 1 {
			cp.Switches = []flow.SwitchID{3, 7, 4}
		}
		c.Observe(cp)
	}
	f := c.Frame()
	if f.Len() != 1000 {
		t.Fatalf("rows = %d, want 1000", f.Len())
	}
	if got := f.PathTable().NumPaths(); got != 2 {
		t.Errorf("interned paths = %d, want 2", got)
	}
}

// TestCollectorFrameMatchesRecords verifies the two output forms agree.
func TestCollectorFrameMatchesRecords(t *testing.T) {
	build := func() *Collector {
		c := New(epoch, Config{LossProb: 0.2, DuplicateProb: 0.1, TimeJitter: time.Microsecond,
			AggregateGap: 2 * time.Millisecond, Seed: 42})
		for i := 0; i < 500; i++ {
			at := time.Duration(i) * 3 * time.Millisecond
			c.Observe(comp(flow.Addr(i%4), flow.Addr(4+i%4), int64(1000+i), at, at+2*time.Millisecond))
		}
		return c
	}
	recs := build().Records()
	frame := build().Frame()
	if !reflect.DeepEqual(recs, frame.RecordsByStart()) {
		t.Error("Records and Frame materialization diverge for the same seed")
	}
}
