// Package erspan models the switch-level flow collection pipeline
// (ERSPAN-style port mirroring plus a netflow aggregation server, §II-B of
// the paper). It converts simulated network transmissions into the flow
// records the LLMPrism analysis consumes, injecting the collection
// imperfections that production systems exhibit: lost records, duplicated
// records from retransmission, timestamp jitter, and active-timeout record
// splitting. Intra-node (NVLink) traffic never reaches a switch and is
// silently invisible, exactly as in production.
package erspan

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/netsim"
)

// Config parameterizes collection noise. The zero value collects perfectly.
type Config struct {
	// LossProb is the probability a flow record is lost entirely
	// (mirroring drop or collector overload).
	LossProb float64
	// DuplicateProb is the probability a record is exported twice
	// (retransmitted export datagrams).
	DuplicateProb float64
	// TimeJitter is the standard deviation of collector timestamp noise.
	TimeJitter time.Duration
	// ActiveTimeout splits flows longer than this into multiple records,
	// as netflow-style exporters do. Zero disables splitting.
	ActiveTimeout time.Duration
	// AggregateGap merges back-to-back transmissions of the same endpoint
	// pair and switch path into one flow record when the idle gap between
	// them is below this value — how real collectors see a queue pair's
	// chunk stream (one record per collective phase, not one per chunk).
	// Zero disables aggregation. Loss applies to aggregated records
	// (export datagrams carry whole records).
	AggregateGap time.Duration
	// Seed drives the noise randomness.
	Seed int64
	// Blackouts model per-switch mirror outages (a mirror session torn
	// down, a collector losing one switch's export stream): every record
	// whose path crosses the switch during the interval is dropped,
	// deterministically — no RNG draw, so an empty list leaves the noise
	// stream byte-identical.
	Blackouts []Blackout
}

// Blackout is one switch mirror outage: records whose path crosses Switch
// and whose flow starts in [From, Until) — sim-time offsets from the
// collector epoch — are lost.
type Blackout struct {
	Switch      flow.SwitchID
	From, Until time.Duration
}

// pendingKey identifies an aggregation stream: endpoint pair + path. The
// path component stays a content hash (not the interned PathID) so the
// deterministic flush order — and with it every downstream RNG draw — is
// identical to the historical record-slice collector's.
type pendingKey struct {
	src, dst flow.Addr
	path     uint64
}

// pending is a flow record being assembled from consecutive transmissions.
type pending struct {
	start, end time.Duration
	bytes      int64
	path       flow.PathID
}

// Collector accumulates flow records from network completions. Records are
// emitted straight into a columnar flow.FrameBuilder: each distinct switch
// path is interned exactly once, so per-record path copies — previously one
// heap slice per exported record — no longer exist.
type Collector struct {
	cfg    Config
	epoch  time.Time
	rng    *rand.Rand
	nextID uint64
	fb     *flow.FrameBuilder
	agg    map[pendingKey]*pending

	observed uint64
	lost     uint64
	blacked  uint64
	drained  int
}

// New returns a Collector anchoring sim-time offsets at epoch.
func New(epoch time.Time, cfg Config) *Collector {
	return &Collector{
		cfg:   cfg,
		epoch: epoch,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x3ade68b1)),
		fb:    flow.NewFrameBuilder(),
		agg:   make(map[pendingKey]*pending),
	}
}

// Observe ingests one completed transmission.
func (c *Collector) Observe(comp netsim.Completion) {
	if comp.IntraNode {
		return // invisible to switches
	}
	c.observed++
	if c.cfg.AggregateGap <= 0 {
		c.export(comp.Src, comp.Dst, c.fb.InternPath(comp.Switches), comp.Start, comp.End, comp.Bytes)
		return
	}
	key := pendingKey{src: comp.Src, dst: comp.Dst, path: pathKey(comp.Switches)}
	p, ok := c.agg[key]
	if ok && comp.Start-p.end <= c.cfg.AggregateGap {
		p.bytes += comp.Bytes
		if comp.End > p.end {
			p.end = comp.End
		}
		return
	}
	if ok {
		c.export(comp.Src, comp.Dst, p.path, p.start, p.end, p.bytes)
	}
	c.agg[key] = &pending{
		start: comp.Start, end: comp.End,
		bytes: comp.Bytes, path: c.fb.InternPath(comp.Switches),
	}
}

func pathKey(switches []flow.SwitchID) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, s := range switches {
		h = (h ^ uint64(s)) * prime
	}
	return h
}

// export runs the per-record noise pipeline (blackout, loss, splitting,
// duplication) on one assembled flow record. The blackout check precedes
// the loss draw and consumes no randomness, so enabling blackouts does
// not shift the RNG stream of the other knobs.
func (c *Collector) export(src, dst flow.Addr, path flow.PathID, start, end time.Duration, bytes int64) {
	if len(c.cfg.Blackouts) > 0 && c.inBlackout(path, start) {
		c.lost++
		c.blacked++
		return
	}
	if c.cfg.LossProb > 0 && c.rng.Float64() < c.cfg.LossProb {
		c.lost++
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	if c.cfg.ActiveTimeout > 0 && dur > c.cfg.ActiveTimeout {
		c.emitSplit(src, dst, path, start, dur, bytes)
	} else {
		c.emit(src, dst, path, start, dur, bytes)
	}
	if c.cfg.DuplicateProb > 0 && c.rng.Float64() < c.cfg.DuplicateProb {
		c.emit(src, dst, path, start, dur, bytes)
	}
}

// emitSplit exports a long flow as consecutive records of at most
// ActiveTimeout each, with proportional byte counts.
func (c *Collector) emitSplit(src, dst flow.Addr, path flow.PathID, start, dur time.Duration, bytes int64) {
	timeout := c.cfg.ActiveTimeout
	remainingBytes := bytes
	for off := time.Duration(0); off < dur; off += timeout {
		sliceDur := timeout
		if off+sliceDur > dur {
			sliceDur = dur - off
		}
		sliceBytes := int64(float64(bytes) * float64(sliceDur) / float64(dur))
		if off+timeout >= dur {
			sliceBytes = remainingBytes // last slice takes the remainder
		}
		remainingBytes -= sliceBytes
		c.emit(src, dst, path, start+off, sliceDur, sliceBytes)
	}
}

func (c *Collector) emit(src, dst flow.Addr, path flow.PathID, start, dur time.Duration, bytes int64) {
	if c.cfg.TimeJitter > 0 {
		start += time.Duration(c.rng.NormFloat64() * float64(c.cfg.TimeJitter))
		if start < 0 {
			start = 0
		}
	}
	c.nextID++
	c.fb.Append(c.nextID, c.epoch.Add(start), dur, src, dst, bytes, path)
}

// flush exports pending aggregations in deterministic key order.
func (c *Collector) flush() { c.flushBefore(-1) }

// flushBefore exports, in deterministic key order, every pending
// aggregation whose stream has been idle since before horizon — i.e. that
// no future in-order transmission can extend. A negative horizon flushes
// everything.
func (c *Collector) flushBefore(horizon time.Duration) {
	keys := make([]pendingKey, 0, len(c.agg))
	for k := range c.agg {
		if horizon < 0 || c.agg[k].end+c.cfg.AggregateGap < horizon {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		if keys[i].dst != keys[j].dst {
			return keys[i].dst < keys[j].dst
		}
		return keys[i].path < keys[j].path
	})
	for _, k := range keys {
		p := c.agg[k]
		c.export(k.src, k.dst, p.path, p.start, p.end, p.bytes)
		delete(c.agg, k)
	}
}

// DrainRecords is the streaming bridge between collection and the monitor:
// it flushes aggregation streams that have been idle past the aggregation
// gap as of sim-time now (so later in-order transmissions cannot extend
// them) and returns the records exported since the previous drain, in
// export order — ready to push into a Monitor stream while collection
// continues. Switch paths alias the collector's interned table and must be
// treated as read-only. Note the record content matches a single final
// Records() call only up to collection noise: loss/duplication random
// draws follow export order, which interleaving drains with observation
// changes.
func (c *Collector) DrainRecords(now time.Duration) []flow.Record {
	c.flushBefore(now)
	total := c.fb.Len()
	if total == c.drained {
		return nil
	}
	out := make([]flow.Record, 0, total-c.drained)
	for i := c.drained; i < total; i++ {
		out = append(out, c.fb.RecordAt(i))
	}
	c.drained = total
	return out
}

// Frame flushes any pending aggregations and builds the columnar frame of
// everything collected so far.
func (c *Collector) Frame() *flow.Frame {
	c.flush()
	return c.fb.Build()
}

// Records flushes any pending aggregations and returns the collected
// records sorted by start time. The records' switch paths alias the
// collector's interned path table and must be treated as read-only.
func (c *Collector) Records() []flow.Record {
	return c.Frame().RecordsByStart()
}

// WriteArchive is the collector → archive bridge: it flushes any pending
// aggregations and persists everything collected so far as a one-segment
// binary trace archive — the collector's columnar frame written directly,
// no text codec in between. The archive is marked as an unwindowed capture
// (zero window geometry, no grid anchor); replaying it through a monitor
// windows it like any live stream. The segment's bounds are the collected
// records' time span (an empty capture uses the collector's epoch, never
// the zero time — zero-time UnixNano is undefined and would bake garbage
// bounds into the file).
func (c *Collector) WriteArchive(w io.Writer) error {
	f := c.Frame()
	start, end := c.epoch, c.epoch
	if n := f.Len(); n > 0 {
		// Rows are sorted by (pair, start, id); scan for the span.
		start, end = f.Start(0), f.End(0)
		for i := 1; i < n; i++ {
			if s := f.Start(i); s.Before(start) {
				start = s
			}
			if e := f.End(i); e.After(end) {
				end = e
			}
		}
	}
	aw, err := archive.NewWriter(w, archive.Meta{})
	if err != nil {
		return fmt.Errorf("erspan: archive capture: %w", err)
	}
	if err := aw.Append(0, start, end, f); err != nil {
		return fmt.Errorf("erspan: archive capture: %w", err)
	}
	if err := aw.Close(); err != nil {
		return fmt.Errorf("erspan: archive capture: %w", err)
	}
	return nil
}

// inBlackout reports whether a record starting at start whose path is the
// interned id crosses any switch currently in a mirror blackout.
func (c *Collector) inBlackout(path flow.PathID, start time.Duration) bool {
	var switches []flow.SwitchID
	for _, b := range c.cfg.Blackouts {
		if start < b.From || start >= b.Until {
			continue
		}
		if switches == nil {
			switches = c.fb.Path(path)
		}
		for _, s := range switches {
			if s == b.Switch {
				return true
			}
		}
	}
	return false
}

// Observed returns how many fabric flows reached the collector
// (pre-noise, excluding intra-node traffic).
func (c *Collector) Observed() uint64 { return c.observed }

// Lost returns how many records the loss model dropped (blackout losses
// included).
func (c *Collector) Lost() uint64 { return c.lost }

// BlackedOut returns how many records a switch mirror blackout dropped.
func (c *Collector) BlackedOut() uint64 { return c.blacked }
