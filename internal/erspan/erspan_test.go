package erspan

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/netsim"
)

var epoch = time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)

func comp(src, dst flow.Addr, bytes int64, start, end time.Duration) netsim.Completion {
	return netsim.Completion{
		Src: src, Dst: dst, Bytes: bytes,
		Start: start, End: end,
		Switches: []flow.SwitchID{1, 9, 2},
	}
}

func TestPerfectCollection(t *testing.T) {
	c := New(epoch, Config{})
	c.Observe(comp(1, 2, 1000, 0, time.Millisecond))
	c.Observe(comp(3, 4, 2000, time.Second, time.Second+time.Millisecond))
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r := recs[0]
	if !r.Start.Equal(epoch) || r.Duration != time.Millisecond || r.Bytes != 1000 {
		t.Errorf("record 0 wrong: %+v", r)
	}
	if len(r.Switches) != 3 {
		t.Errorf("switch path lost: %+v", r.Switches)
	}
	if recs[0].ID == recs[1].ID {
		t.Error("record IDs must be unique")
	}
	if c.Observed() != 2 || c.Lost() != 0 {
		t.Errorf("Observed/Lost = %d/%d", c.Observed(), c.Lost())
	}
}

// TestWriteArchiveCapture exercises the collector → archive bridge: the
// capture must reopen as a one-segment unwindowed archive whose frame is
// bit-identical to the collector's own, with the record time span as the
// segment bounds.
func TestWriteArchiveCapture(t *testing.T) {
	c := New(epoch, Config{})
	c.Observe(comp(1, 2, 1000, 0, time.Millisecond))
	c.Observe(comp(3, 4, 2000, time.Second, time.Second+5*time.Millisecond))

	var buf bytes.Buffer
	if err := c.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	ar, err := archive.OpenReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ar.NumSegments() != 1 {
		t.Fatalf("segments = %d, want 1", ar.NumSegments())
	}
	if meta := ar.Meta(); meta != (archive.Meta{}) {
		t.Errorf("capture meta = %+v, want zero (unwindowed)", meta)
	}
	if !ar.Anchor().IsZero() {
		t.Errorf("capture anchor = %v, want zero", ar.Anchor())
	}
	seg := ar.Segment(0)
	if !seg.Start.Equal(epoch) || !seg.End.Equal(epoch.Add(time.Second+5*time.Millisecond)) {
		t.Errorf("segment bounds = [%v, %v)", seg.Start, seg.End)
	}
	got, err := ar.Frame(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Frame(), got) {
		t.Error("archived capture frame differs from collector frame")
	}
}

func TestIntraNodeInvisible(t *testing.T) {
	c := New(epoch, Config{})
	ic := comp(1, 2, 1000, 0, time.Millisecond)
	ic.IntraNode = true
	ic.Switches = nil
	c.Observe(ic)
	if len(c.Records()) != 0 || c.Observed() != 0 {
		t.Error("intra-node flow should be invisible")
	}
}

func TestLoss(t *testing.T) {
	c := New(epoch, Config{LossProb: 0.5, Seed: 1})
	const n = 2000
	for i := 0; i < n; i++ {
		c.Observe(comp(1, 2, 1000, time.Duration(i)*time.Millisecond, time.Duration(i+1)*time.Millisecond))
	}
	got := len(c.Records())
	if got < n/2-150 || got > n/2+150 {
		t.Errorf("with 50%% loss, kept %d of %d", got, n)
	}
	if c.Lost()+uint64(got) != n {
		t.Errorf("Lost + kept = %d, want %d", c.Lost()+uint64(got), n)
	}
}

func TestDuplicates(t *testing.T) {
	c := New(epoch, Config{DuplicateProb: 1, Seed: 2})
	c.Observe(comp(1, 2, 1000, 0, time.Millisecond))
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records with certain duplication, want 2", len(recs))
	}
	if recs[0].Bytes != recs[1].Bytes {
		t.Error("duplicate must carry the same size")
	}
}

func TestTimeJitterBounded(t *testing.T) {
	c := New(epoch, Config{TimeJitter: time.Microsecond, Seed: 3})
	for i := 0; i < 100; i++ {
		c.Observe(comp(1, 2, 1000, time.Second, time.Second+time.Millisecond))
	}
	for _, r := range c.Records() {
		off := r.Start.Sub(epoch.Add(time.Second))
		if off < -10*time.Microsecond || off > 10*time.Microsecond {
			t.Fatalf("jitter too large: %v", off)
		}
	}
}

func TestActiveTimeoutSplitsConserveBytes(t *testing.T) {
	c := New(epoch, Config{ActiveTimeout: time.Second})
	const bytes = 10_000_000
	c.Observe(comp(1, 2, bytes, 0, 3500*time.Millisecond))
	recs := c.Records()
	if len(recs) != 4 {
		t.Fatalf("3.5s flow with 1s timeout: %d records, want 4", len(recs))
	}
	var total int64
	for i, r := range recs {
		total += r.Bytes
		if i < 3 && r.Duration != time.Second {
			t.Errorf("slice %d duration = %v, want 1s", i, r.Duration)
		}
	}
	if total != bytes {
		t.Errorf("split bytes = %d, want %d", total, bytes)
	}
	if recs[3].Duration != 500*time.Millisecond {
		t.Errorf("last slice duration = %v, want 500ms", recs[3].Duration)
	}
}

func TestShortFlowNotSplit(t *testing.T) {
	c := New(epoch, Config{ActiveTimeout: time.Second})
	c.Observe(comp(1, 2, 1000, 0, 900*time.Millisecond))
	if len(c.Records()) != 1 {
		t.Error("sub-timeout flow should not split")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	build := func() []flow.Record {
		c := New(epoch, Config{LossProb: 0.3, DuplicateProb: 0.2, TimeJitter: time.Microsecond, Seed: 77})
		for i := 0; i < 500; i++ {
			c.Observe(comp(flow.Addr(i%8), flow.Addr(8+i%8), int64(1000+i),
				time.Duration(i)*time.Millisecond, time.Duration(i+2)*time.Millisecond))
		}
		return c.Records()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Start.Equal(b[i].Start) || a[i].Bytes != b[i].Bytes {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestRecordsSorted(t *testing.T) {
	c := New(epoch, Config{})
	c.Observe(comp(1, 2, 10, 5*time.Second, 6*time.Second))
	c.Observe(comp(1, 2, 10, time.Second, 2*time.Second))
	recs := c.Records()
	if !recs[0].Start.Before(recs[1].Start) {
		t.Error("records not sorted by start")
	}
}

func TestDrainRecordsStreams(t *testing.T) {
	c := New(epoch, Config{})
	c.Observe(comp(1, 2, 1000, 0, time.Millisecond))
	c.Observe(comp(3, 4, 2000, time.Second, time.Second+time.Millisecond))
	got := c.DrainRecords(2 * time.Second)
	if len(got) != 2 {
		t.Fatalf("first drain = %d records, want 2", len(got))
	}
	if got[0].Bytes != 1000 || got[1].Bytes != 2000 {
		t.Errorf("drained records wrong: %+v", got)
	}
	if extra := c.DrainRecords(3 * time.Second); extra != nil {
		t.Errorf("idle drain = %d records, want none", len(extra))
	}
	// Later observations reach only later drains.
	c.Observe(comp(5, 6, 3000, 4*time.Second, 4*time.Second+time.Millisecond))
	got = c.DrainRecords(5 * time.Second)
	if len(got) != 1 || got[0].Bytes != 3000 {
		t.Errorf("second drain = %+v, want the new record only", got)
	}
	// The full frame still covers everything collected.
	if n := c.Frame().Len(); n != 3 {
		t.Errorf("frame rows = %d, want 3", n)
	}
}

func TestDrainRecordsHoldsOpenAggregations(t *testing.T) {
	c := New(epoch, Config{AggregateGap: 10 * time.Millisecond})
	c.Observe(chunk(1, 2, 1000, 0, 5*time.Millisecond))
	// Within the gap horizon the stream may still be extended: no export.
	if got := c.DrainRecords(8 * time.Millisecond); got != nil {
		t.Fatalf("drain exported a still-open aggregation: %+v", got)
	}
	c.Observe(chunk(1, 2, 1000, 7*time.Millisecond, 12*time.Millisecond))
	// Past the horizon the merged record flushes.
	got := c.DrainRecords(30 * time.Millisecond)
	if len(got) != 1 || got[0].Bytes != 2000 {
		t.Fatalf("drain = %+v, want one 2000-byte aggregate", got)
	}
	if got[0].Duration != 12*time.Millisecond {
		t.Errorf("aggregate duration = %v, want 12ms", got[0].Duration)
	}
}

func TestBlackoutDropsCrossingRecords(t *testing.T) {
	cfg := Config{Blackouts: []Blackout{{Switch: 9, From: time.Second, Until: 3 * time.Second}}}
	c := New(epoch, cfg)
	// Path {1, 9, 2} crosses the blacked-out switch 9.
	c.Observe(comp(1, 2, 1000, 500*time.Millisecond, 600*time.Millisecond))    // before: kept
	c.Observe(comp(1, 2, 1000, time.Second, time.Second+time.Millisecond))     // inside: dropped
	c.Observe(comp(1, 2, 1000, 2*time.Second, 2*time.Second+time.Millisecond)) // inside: dropped
	c.Observe(comp(1, 2, 1000, 3*time.Second, 3*time.Second+time.Millisecond)) // at Until: kept
	// A path avoiding switch 9 sails through the interval.
	c.Observe(netsim.Completion{
		Src: 5, Dst: 6, Bytes: 700,
		Start: 1500 * time.Millisecond, End: 1501 * time.Millisecond,
		Switches: []flow.SwitchID{3, 7, 4},
	})
	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if c.Lost() != 2 || c.BlackedOut() != 2 {
		t.Errorf("Lost/BlackedOut = %d/%d, want 2/2", c.Lost(), c.BlackedOut())
	}
}

// TestBlackoutDoesNotShiftNoiseRNG pins the determinism contract: the
// blackout check consumes no randomness, so a noisy collector with
// blackouts produces, for records outside the blackout, exactly the
// records the same collector produces without blackouts.
func TestBlackoutDoesNotShiftNoiseRNG(t *testing.T) {
	noisy := Config{LossProb: 0.3, DuplicateProb: 0.3, TimeJitter: time.Millisecond, Seed: 42}
	blk := noisy
	blk.Blackouts = []Blackout{{Switch: 9, From: 10 * time.Minute, Until: 11 * time.Minute}}

	feed := func(c *Collector) []flow.Record {
		for i := 0; i < 200; i++ {
			at := time.Duration(i) * 10 * time.Millisecond
			c.Observe(comp(flow.Addr(i%8), flow.Addr(i%8+8), 1000, at, at+time.Millisecond))
		}
		return c.Records()
	}
	a := feed(New(epoch, noisy))
	b := feed(New(epoch, blk)) // no record starts inside the blackout
	if !reflect.DeepEqual(a, b) {
		t.Error("an inert blackout changed the noise stream")
	}
}
