package erspan

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/netsim"
)

// chunk builds one chunk transmission of a chain.
func chunk(src, dst flow.Addr, bytes int64, start, end time.Duration) netsim.Completion {
	return netsim.Completion{
		Src: src, Dst: dst, Bytes: bytes,
		Start: start, End: end,
		Switches: []flow.SwitchID{1, 5, 2},
	}
}

func TestAggregateMergesChunkStream(t *testing.T) {
	c := New(epoch, Config{AggregateGap: 2 * time.Millisecond})
	// Four back-to-back chunks of one chain: one record.
	cursor := time.Duration(0)
	for i := 0; i < 4; i++ {
		c.Observe(chunk(1, 2, 1000, cursor, cursor+5*time.Millisecond))
		cursor += 5 * time.Millisecond
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1 aggregated record", len(recs))
	}
	r := recs[0]
	if r.Bytes != 4000 {
		t.Errorf("aggregated bytes = %d, want 4000", r.Bytes)
	}
	if r.Duration != 20*time.Millisecond {
		t.Errorf("aggregated duration = %v, want 20ms", r.Duration)
	}
}

func TestAggregateSplitsOnLargeGap(t *testing.T) {
	c := New(epoch, Config{AggregateGap: 2 * time.Millisecond})
	c.Observe(chunk(1, 2, 1000, 0, 5*time.Millisecond))
	// 25ms gap (an optimizer pause): a separate record.
	c.Observe(chunk(1, 2, 2000, 30*time.Millisecond, 35*time.Millisecond))
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Bytes != 1000 || recs[1].Bytes != 2000 {
		t.Errorf("record bytes = %d,%d want 1000,2000", recs[0].Bytes, recs[1].Bytes)
	}
}

func TestAggregateKeysOnPairAndPath(t *testing.T) {
	c := New(epoch, Config{AggregateGap: 2 * time.Millisecond})
	c.Observe(chunk(1, 2, 1000, 0, time.Millisecond))
	// Same pair, different path (different ECMP label): no merge.
	other := chunk(1, 2, 1000, time.Millisecond, 2*time.Millisecond)
	other.Switches = []flow.SwitchID{1, 6, 2}
	c.Observe(other)
	// Different pair: no merge.
	c.Observe(chunk(3, 4, 1000, time.Millisecond, 2*time.Millisecond))
	if recs := c.Records(); len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (no cross-stream merge)", len(recs))
	}
}

func TestAggregateLossDropsWholeRecords(t *testing.T) {
	// With aggregation, loss applies to assembled records: a dropped
	// record removes the whole phase, never a chunk out of the middle.
	c := New(epoch, Config{AggregateGap: 2 * time.Millisecond, LossProb: 1})
	for i := 0; i < 4; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		c.Observe(chunk(1, 2, 1000, at, at+5*time.Millisecond))
	}
	if recs := c.Records(); len(recs) != 0 {
		t.Fatalf("records = %d, want 0 with certain loss", len(recs))
	}
	if c.Lost() != 1 {
		t.Errorf("Lost = %d, want 1 (one aggregated record)", c.Lost())
	}
}

func TestAggregateDisabledByDefault(t *testing.T) {
	c := New(epoch, Config{})
	c.Observe(chunk(1, 2, 1000, 0, time.Millisecond))
	c.Observe(chunk(1, 2, 1000, time.Millisecond, 2*time.Millisecond))
	if recs := c.Records(); len(recs) != 2 {
		t.Fatalf("records = %d, want 2 without aggregation", len(recs))
	}
}
