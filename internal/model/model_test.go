package model

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Spec{Name: "bad"}).Validate(); err == nil {
		t.Error("zero spec should fail validation")
	}
	if err := Llama7B.Validate(); err != nil {
		t.Errorf("Llama7B should validate: %v", err)
	}
}

func TestTotalParamsMagnitudes(t *testing.T) {
	tests := []struct {
		spec Spec
		loB  float64 // billions
		hiB  float64
	}{
		{Llama7B, 5, 9},
		{Llama13B, 11, 16},
		{Llama33B, 28, 38},
		{Llama70B, 62, 78},
	}
	for _, tt := range tests {
		t.Run(tt.spec.Name, func(t *testing.T) {
			b := float64(tt.spec.TotalParams()) / 1e9
			if b < tt.loB || b > tt.hiB {
				t.Errorf("TotalParams = %.1fB, want within [%v, %v]B", b, tt.loB, tt.hiB)
			}
		})
	}
}

func TestStageLayersSumsToLayers(t *testing.T) {
	f := func(rawLayers, rawPP uint8) bool {
		layers := 1 + int(rawLayers)%96
		pp := 1 + int(rawPP)%16
		s := Spec{Name: "t", Layers: layers, Hidden: 128}
		total := 0
		for stage := 0; stage < pp; stage++ {
			total += s.StageLayers(pp, stage)
		}
		return total == layers
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStageParamsSumToTotal(t *testing.T) {
	for _, pp := range []int{1, 2, 4, 8} {
		var sum int64
		for stage := 0; stage < pp; stage++ {
			sum += Llama13B.StageParams(pp, stage)
		}
		if sum != Llama13B.TotalParams() {
			t.Errorf("pp=%d: stage params sum %d != total %d", pp, sum, Llama13B.TotalParams())
		}
	}
}

func TestActivationBytes(t *testing.T) {
	s := Spec{Name: "t", Layers: 2, Hidden: 1024, SeqLen: 2048, DTypeBytes: 2}
	want := int64(1) * 2048 * 1024 * 2
	if got := s.ActivationBytes(1); got != want {
		t.Errorf("ActivationBytes(1) = %d, want %d", got, want)
	}
	if got := s.ActivationBytes(4); got != 4*want {
		t.Errorf("ActivationBytes(4) = %d, want %d", got, 4*want)
	}
	if got := s.ActivationBytes(0); got != want {
		t.Errorf("ActivationBytes(0) should default to micro-batch 1, got %d", got)
	}
}

func TestStageGradBytesDividedByTP(t *testing.T) {
	full := Llama7B.StageGradBytes(4, 1, 1)
	tp8 := Llama7B.StageGradBytes(4, 1, 8)
	if full/8 != tp8 {
		t.Errorf("tp=8 grad bytes %d, want %d", tp8, full/8)
	}
}

func TestFwdFLOPsScaling(t *testing.T) {
	f1 := Llama7B.FwdFLOPs(4, 1, 1, 1)
	f2 := Llama7B.FwdFLOPs(4, 1, 1, 2)
	if f2 <= f1 || f2 != 2*f1 {
		t.Errorf("FLOPs should scale linearly with micro-batch: %v vs %v", f1, f2)
	}
	tp := Llama7B.FwdFLOPs(4, 1, 8, 1)
	if tp*8 != f1 {
		t.Errorf("FLOPs should divide by tp: %v*8 != %v", tp, f1)
	}
}

func TestBuckets(t *testing.T) {
	tests := []struct {
		name  string
		total int64
		cap   int64
		want  []int64
	}{
		{"zero", 0, 10, nil},
		{"no cap", 100, 0, []int64{100}},
		{"cap above total", 100, 1000, []int64{100}},
		{"exact", 100, 50, []int64{50, 50}},
		{"remainder", 120, 50, []int64{50, 50, 20}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Buckets(tt.total, tt.cap)
			if len(got) != len(tt.want) {
				t.Fatalf("Buckets = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("Buckets = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// Property: buckets conserve total bytes and no bucket exceeds cap.
func TestBucketsConservation(t *testing.T) {
	f := func(rawTotal, rawCap uint32) bool {
		total := int64(rawTotal % 1e6)
		cap := int64(rawCap%1e4) + 1
		var sum int64
		for _, b := range Buckets(total, cap) {
			if b <= 0 || b > cap && cap < total {
				return false
			}
			sum += b
		}
		return sum == total || total <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
