// Package model computes the communication-relevant sizes of transformer
// LLM training: parameter counts, per-microbatch activation message sizes
// (what pipeline parallelism sends between stages), per-stage gradient and
// parameter bytes (what data parallelism reduces and gathers), and the
// DeepSpeed-style gradient bucketing that shapes DP flow sizes.
//
// The simulator does not execute any math — it only needs byte counts and
// FLOP counts with the right relative magnitudes, because the LLMPrism
// analysis consumes nothing but flow sizes and timings.
package model

import "fmt"

// Spec describes a dense decoder-only transformer.
type Spec struct {
	// Name is a human-readable label, e.g. "llama-13b".
	Name string `json:"name"`
	// Layers is the number of transformer blocks.
	Layers int `json:"layers"`
	// Hidden is the model width.
	Hidden int `json:"hidden"`
	// Vocab is the vocabulary size. Default 32000.
	Vocab int `json:"vocab"`
	// SeqLen is the training sequence length. Default 4096.
	SeqLen int `json:"seq_len"`
	// DTypeBytes is the bytes per element of activations/grads/params on
	// the wire. Default 2 (bf16).
	DTypeBytes int `json:"dtype_bytes"`
}

func (s Spec) withDefaults() Spec {
	if s.Vocab <= 0 {
		s.Vocab = 32000
	}
	if s.SeqLen <= 0 {
		s.SeqLen = 4096
	}
	if s.DTypeBytes <= 0 {
		s.DTypeBytes = 2
	}
	return s
}

// Validate checks that the spec is usable.
func (s Spec) Validate() error {
	if s.Layers <= 0 || s.Hidden <= 0 {
		return fmt.Errorf("model: %q needs positive Layers and Hidden, got %d/%d", s.Name, s.Layers, s.Hidden)
	}
	return nil
}

// ParamsPerLayer returns the parameter count of one transformer block:
// 4h² attention + 8h² MLP + biases/norms ≈ 12h² + 13h.
func (s Spec) ParamsPerLayer() int64 {
	h := int64(s.Hidden)
	return 12*h*h + 13*h
}

// EmbeddingParams returns the token embedding parameter count.
func (s Spec) EmbeddingParams() int64 {
	s = s.withDefaults()
	return int64(s.Vocab) * int64(s.Hidden)
}

// TotalParams returns the total parameter count (blocks + embedding +
// final norm; the unembedding is tied).
func (s Spec) TotalParams() int64 {
	return int64(s.Layers)*s.ParamsPerLayer() + s.EmbeddingParams() + int64(s.Hidden)
}

// StageLayers returns how many transformer blocks stage (0-based) holds
// when the model is split into ppStages pipeline stages. Remainder layers
// go to the earliest stages.
func (s Spec) StageLayers(ppStages, stage int) int {
	if ppStages <= 0 {
		ppStages = 1
	}
	base := s.Layers / ppStages
	if stage < s.Layers%ppStages {
		return base + 1
	}
	return base
}

// StageParams returns the parameter count held by one pipeline stage.
// The embedding lives on the first stage; the final norm on the last.
func (s Spec) StageParams(ppStages, stage int) int64 {
	s = s.withDefaults()
	params := int64(s.StageLayers(ppStages, stage)) * s.ParamsPerLayer()
	if stage == 0 {
		params += s.EmbeddingParams()
	}
	if stage == ppStages-1 {
		params += int64(s.Hidden)
	}
	return params
}

// ActivationBytes returns the bytes of the activation tensor sent between
// adjacent pipeline stages for one micro-batch of the given size, per
// tensor-parallel rank (Megatron sends the full hidden activation from each
// TP rank to its peer on the next stage, so TP does not divide this).
func (s Spec) ActivationBytes(microBatch int) int64 {
	s = s.withDefaults()
	if microBatch <= 0 {
		microBatch = 1
	}
	return int64(microBatch) * int64(s.SeqLen) * int64(s.Hidden) * int64(s.DTypeBytes)
}

// StageGradBytes returns the gradient bytes one (pp stage, tp rank) shard
// contributes to data-parallel reduction: stage params / tp, times dtype.
func (s Spec) StageGradBytes(ppStages, stage, tp int) int64 {
	s = s.withDefaults()
	if tp <= 0 {
		tp = 1
	}
	return s.StageParams(ppStages, stage) / int64(tp) * int64(s.DTypeBytes)
}

// FwdFLOPs returns the forward FLOPs of one micro-batch on one pipeline
// stage per tensor-parallel rank (≈ 2 · params · tokens / tp).
func (s Spec) FwdFLOPs(ppStages, stage, tp, microBatch int) float64 {
	s = s.withDefaults()
	if tp <= 0 {
		tp = 1
	}
	tokens := float64(microBatch) * float64(s.SeqLen)
	return 2 * float64(s.StageParams(ppStages, stage)) * tokens / float64(tp)
}

// Buckets splits total into DeepSpeed-style gradient buckets of at most cap
// bytes each: full buckets first, remainder last. cap <= 0 yields one
// bucket. The distinct bucket sizes (cap and the remainder) are what give
// DP flows their multiple distinct sizes in collected flow records.
func Buckets(total, cap int64) []int64 {
	if total <= 0 {
		return nil
	}
	if cap <= 0 || cap >= total {
		return []int64{total}
	}
	n := total / cap
	buckets := make([]int64, 0, n+1)
	for i := int64(0); i < n; i++ {
		buckets = append(buckets, cap)
	}
	if rem := total - n*cap; rem > 0 {
		buckets = append(buckets, rem)
	}
	return buckets
}

// Predefined model specs used by the experiments (sizes follow the LLaMA
// family, which the paper names as a workload on Platform-X).
var (
	Llama7B  = Spec{Name: "llama-7b", Layers: 32, Hidden: 4096}
	Llama13B = Spec{Name: "llama-13b", Layers: 40, Hidden: 5120}
	Llama33B = Spec{Name: "llama-33b", Layers: 60, Hidden: 6656}
	Llama70B = Spec{Name: "llama-70b", Layers: 80, Hidden: 8192}
)
