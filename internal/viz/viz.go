// Package viz renders the LLMPrism analysis results as plain-text views:
// the job-recognition cluster grid (the paper's Fig. 3), per-rank timeline
// swimlanes (Fig. 4), and per-switch bandwidth series (Fig. 5). The
// renderings target terminals and monospace report files.
package viz

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

// clusterGlyphs label up to 62 clusters; further clusters reuse '#'.
const clusterGlyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

func glyph(i int) byte {
	if i < len(clusterGlyphs) {
		return clusterGlyphs[i]
	}
	return '#'
}

// ClusterGrid renders one row per server and one column per GPU; each cell
// shows the cluster owning that GPU ('.' = no observed traffic). Passing
// the phase-1 cross-machine clusters gives the paper's Fig. 3 middle panel;
// passing job-level clusters gives the right panel.
func ClusterGrid(topo *topology.Topology, clusters [][]flow.Addr) string {
	owner := make(map[flow.Addr]int)
	for i, c := range clusters {
		for _, a := range c {
			owner[a] = i + 1
		}
	}
	var sb strings.Builder
	gpn := topo.Spec().GPUsPerNode
	fmt.Fprintf(&sb, "%-8s", "node")
	for g := 0; g < gpn; g++ {
		fmt.Fprintf(&sb, "%d", g%10)
	}
	sb.WriteByte('\n')
	for n := 0; n < topo.Nodes(); n++ {
		fmt.Fprintf(&sb, "%-8d", n)
		for g := 0; g < gpn; g++ {
			if i := owner[topo.AddrOf(topology.NodeID(n), g)]; i > 0 {
				sb.WriteByte(glyph(i - 1))
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// JobClusterGrid is ClusterGrid for recognized job clusters.
func JobClusterGrid(topo *topology.Topology, jobs []jobrec.Cluster) string {
	clusters := make([][]flow.Addr, len(jobs))
	for i, j := range jobs {
		clusters[i] = j.Endpoints
	}
	return ClusterGrid(topo, clusters)
}

// TimelineSwimlanes renders one lane per rank over [from, to): 'F'/'B'
// would require op knowledge the black-box view lacks, so communication is
// drawn as 'p' (PP) and 'D' (DP), idle/compute as '·', and step boundaries
// as '|'. Width is the number of character cells for the time axis.
func TimelineSwimlanes(tls map[flow.Addr]*timeline.Timeline, ranks []flow.Addr, from, to time.Time, width int) string {
	if width <= 0 {
		width = 100
	}
	span := to.Sub(from)
	if span <= 0 {
		return ""
	}
	cell := span / time.Duration(width)
	var sb strings.Builder
	fmt.Fprintf(&sb, "window %s .. %s  ('p'=PP 'D'=DP '·'=compute/idle '|'=step end)\n",
		from.Format("15:04:05.000"), to.Format("15:04:05.000"))
	for _, rank := range ranks {
		tl, ok := tls[rank]
		if !ok {
			continue
		}
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		paint := func(start, end time.Time, ch byte) {
			if end.Before(from) || !start.Before(to) {
				return
			}
			lo := int(start.Sub(from) / cell)
			hi := int(end.Sub(from) / cell)
			if lo < 0 {
				lo = 0
			}
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				// Do not let PP overwrite DP paint.
				if ch == 'p' && lane[i] == 'D' {
					continue
				}
				lane[i] = ch
			}
		}
		for _, e := range tl.Events {
			ch := byte('p')
			if e.Kind == timeline.EventDP {
				ch = 'D'
			}
			paint(e.Start, e.End, ch)
		}
		for _, s := range tl.Steps {
			if !s.End.Before(from) && s.End.Before(to) {
				if i := int(s.End.Sub(from) / cell); i >= 0 && i < width {
					lane[i] = '|'
				}
			}
		}
		out := strings.ReplaceAll(string(lane), ".", "·")
		fmt.Fprintf(&sb, "%-14s %s\n", rank.String(), out)
	}
	return sb.String()
}

// BandwidthSeries renders per-switch DP bandwidth over time as rows of
// bucket values (the paper's Fig. 5 as a table), with a trailing sparkline.
func BandwidthSeries(series map[flow.SwitchID][]diagnose.SwitchPoint, name func(flow.SwitchID) string) string {
	switches := make([]flow.SwitchID, 0, len(series))
	for sw := range series {
		switches = append(switches, sw)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	if len(switches) == 0 {
		return "no DP traffic observed\n"
	}

	// Collect the union of buckets for the header.
	bucketSet := make(map[time.Time]struct{})
	for _, pts := range series {
		for _, p := range pts {
			bucketSet[p.Bucket] = struct{}{}
		}
	}
	buckets := make([]time.Time, 0, len(bucketSet))
	for b := range bucketSet {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Before(buckets[j]) })

	var maxBW float64
	for _, pts := range series {
		for _, p := range pts {
			if p.MeanGbps > maxBW {
				maxBW = p.MeanGbps
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", "switch")
	for _, b := range buckets {
		fmt.Fprintf(&sb, "%8s", b.Format("15:04:05"))
	}
	sb.WriteString("  trend\n")
	spark := []rune("▁▂▃▄▅▆▇█")
	for _, sw := range switches {
		label := sw.String()
		if name != nil {
			label = name(sw)
		}
		fmt.Fprintf(&sb, "%-12s", label)
		byBucket := make(map[time.Time]diagnose.SwitchPoint, len(series[sw]))
		for _, p := range series[sw] {
			byBucket[p.Bucket] = p
		}
		var trend []rune
		for _, b := range buckets {
			p, ok := byBucket[b]
			if !ok {
				fmt.Fprintf(&sb, "%8s", "-")
				trend = append(trend, ' ')
				continue
			}
			fmt.Fprintf(&sb, "%8.1f", p.MeanGbps)
			idx := 0
			if maxBW > 0 {
				idx = int(p.MeanGbps / maxBW * float64(len(spark)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(spark) {
				idx = len(spark) - 1
			}
			trend = append(trend, spark[idx])
		}
		fmt.Fprintf(&sb, "  %s\n", string(trend))
	}
	return sb.String()
}

// AlertList renders alerts one per line, sorted by time.
func AlertList(alerts []diagnose.Alert) string {
	sorted := make([]diagnose.Alert, len(alerts))
	copy(sorted, alerts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	var sb strings.Builder
	for _, a := range sorted {
		fmt.Fprintf(&sb, "[%s] %-17s %s\n", a.Time.Format("15:04:05.000"), a.Kind, a.Detail)
	}
	if len(sorted) == 0 {
		sb.WriteString("no alerts\n")
	}
	return sb.String()
}
