package viz

import (
	"strings"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

var epoch = time.Date(2026, 5, 1, 0, 0, 0, 0, time.UTC)

func vizTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Spec{Nodes: 4, GPUsPerNode: 4, NodesPerLeaf: 2, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestClusterGrid(t *testing.T) {
	topo := vizTopo(t)
	clusters := [][]flow.Addr{
		{topo.AddrOf(0, 0), topo.AddrOf(1, 0)},
		{topo.AddrOf(2, 3), topo.AddrOf(3, 3)},
	}
	grid := ClusterGrid(topo, clusters)
	lines := strings.Split(strings.TrimRight(grid, "\n"), "\n")
	if len(lines) != 5 { // header + 4 nodes
		t.Fatalf("grid has %d lines, want 5:\n%s", len(lines), grid)
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[3], "B") {
		t.Errorf("cluster glyphs missing:\n%s", grid)
	}
	if !strings.Contains(grid, ".") {
		t.Errorf("idle GPUs should render as dots:\n%s", grid)
	}
}

func TestJobClusterGrid(t *testing.T) {
	topo := vizTopo(t)
	jobs := []jobrec.Cluster{{Endpoints: []flow.Addr{topo.AddrOf(0, 0), topo.AddrOf(1, 1)}}}
	grid := JobClusterGrid(topo, jobs)
	if !strings.Contains(grid, "A") {
		t.Errorf("job grid missing glyph:\n%s", grid)
	}
}

func TestGlyphOverflow(t *testing.T) {
	if glyph(0) != 'A' || glyph(61) != '9' || glyph(62) != '#' || glyph(1000) != '#' {
		t.Error("glyph mapping wrong")
	}
}

func testTimeline(rank flow.Addr) *timeline.Timeline {
	tl := &timeline.Timeline{Rank: rank}
	tl.Events = []timeline.Event{
		{Kind: timeline.EventPP, Start: epoch.Add(1 * time.Second), End: epoch.Add(2 * time.Second), Peer: 9},
		{Kind: timeline.EventDP, Start: epoch.Add(8 * time.Second), End: epoch.Add(9 * time.Second), Peer: 9},
	}
	tl.Steps = []timeline.Step{{
		Index: 0, Start: epoch, End: epoch.Add(9 * time.Second),
		DPStart: epoch.Add(8 * time.Second), DPEnd: epoch.Add(9 * time.Second),
	}}
	return tl
}

func TestTimelineSwimlanes(t *testing.T) {
	tls := map[flow.Addr]*timeline.Timeline{1: testTimeline(1)}
	out := TimelineSwimlanes(tls, []flow.Addr{1}, epoch, epoch.Add(10*time.Second), 50)
	if !strings.Contains(out, "p") || !strings.Contains(out, "D") {
		t.Errorf("swimlane missing event paint:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Errorf("swimlane missing step boundary:\n%s", out)
	}
	if !strings.Contains(out, "10.0.0.1") {
		t.Errorf("swimlane missing rank label:\n%s", out)
	}
	// Unknown ranks are skipped, zero span yields empty output.
	if got := TimelineSwimlanes(tls, []flow.Addr{42}, epoch, epoch.Add(time.Second), 50); strings.Count(got, "\n") != 1 {
		t.Errorf("unknown rank should yield header only:\n%q", got)
	}
	if got := TimelineSwimlanes(tls, []flow.Addr{1}, epoch, epoch, 50); got != "" {
		t.Errorf("zero span should yield empty string, got %q", got)
	}
}

func TestBandwidthSeries(t *testing.T) {
	series := map[flow.SwitchID][]diagnose.SwitchPoint{
		1: {{Bucket: epoch, Flows: 10, MeanGbps: 150}, {Bucket: epoch.Add(time.Minute), Flows: 12, MeanGbps: 40}},
		2: {{Bucket: epoch, Flows: 8, MeanGbps: 145}},
	}
	out := BandwidthSeries(series, nil)
	if !strings.Contains(out, "150.0") || !strings.Contains(out, "40.0") {
		t.Errorf("bandwidth values missing:\n%s", out)
	}
	if !strings.Contains(out, "sw-1") || !strings.Contains(out, "sw-2") {
		t.Errorf("switch labels missing:\n%s", out)
	}
	// Missing buckets render as '-'.
	if !strings.Contains(out, "-") {
		t.Errorf("missing bucket placeholder absent:\n%s", out)
	}
	named := BandwidthSeries(series, func(sw flow.SwitchID) string { return "leaf-x" })
	if !strings.Contains(named, "leaf-x") {
		t.Error("name function ignored")
	}
	if got := BandwidthSeries(nil, nil); !strings.Contains(got, "no DP traffic") {
		t.Errorf("empty series message wrong: %q", got)
	}
}

func TestAlertList(t *testing.T) {
	alerts := []diagnose.Alert{
		{Kind: diagnose.AlertCrossGroup, Time: epoch.Add(time.Minute), Detail: "second"},
		{Kind: diagnose.AlertCrossStep, Time: epoch, Detail: "first"},
	}
	out := AlertList(alerts)
	if strings.Index(out, "first") > strings.Index(out, "second") {
		t.Errorf("alerts not sorted by time:\n%s", out)
	}
	if !strings.Contains(out, "cross-step") || !strings.Contains(out, "cross-group") {
		t.Errorf("alert kinds missing:\n%s", out)
	}
	if got := AlertList(nil); !strings.Contains(got, "no alerts") {
		t.Errorf("empty alert list message wrong: %q", got)
	}
}
