package truth

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

func TestPairTypeString(t *testing.T) {
	if PairPP.String() != "PP" || PairDP.String() != "DP" || PairType(9).String() == "" {
		t.Error("PairType.String labels wrong")
	}
}

func TestSpanDuration(t *testing.T) {
	s := Span{Step: 1, Start: time.Second, End: 3 * time.Second}
	if s.Duration() != 2*time.Second {
		t.Errorf("Duration = %v, want 2s", s.Duration())
	}
}

func twoJobs() []Job {
	return []Job{
		{ID: 1, Addrs: []flow.Addr{1, 2, 3, 4}},
		{ID: 2, Addrs: []flow.Addr{10, 11}},
	}
}

func TestJobOf(t *testing.T) {
	p := Platform{Jobs: twoJobs()}
	if j := p.JobOf(3); j == nil || j.ID != 1 {
		t.Error("JobOf(3) should find job 1")
	}
	if j := p.JobOf(11); j == nil || j.ID != 2 {
		t.Error("JobOf(11) should find job 2")
	}
	if p.JobOf(99) != nil {
		t.Error("JobOf(99) should be nil")
	}
}

func TestScoreRecognitionPerfect(t *testing.T) {
	predicted := [][]flow.Addr{{4, 3, 2, 1}, {11, 10}}
	score := ScoreRecognition(predicted, twoJobs())
	if !score.Perfect() || score.ExactMatches != 2 {
		t.Errorf("score = %+v, want perfect", score)
	}
}

func TestScoreRecognitionPartial(t *testing.T) {
	// First cluster is missing an endpoint; second matches.
	predicted := [][]flow.Addr{{1, 2, 3}, {10, 11}}
	score := ScoreRecognition(predicted, twoJobs())
	if score.Perfect() || score.ExactMatches != 1 {
		t.Errorf("score = %+v, want 1 exact match and not perfect", score)
	}
	// A merged cluster matches nothing.
	merged := [][]flow.Addr{{1, 2, 3, 4, 10, 11}}
	score = ScoreRecognition(merged, twoJobs())
	if score.ExactMatches != 0 {
		t.Errorf("merged cluster matched: %+v", score)
	}
}

func TestScorePairs(t *testing.T) {
	job := Job{Pairs: map[flow.Pair]PairType{
		flow.MakePair(1, 2): PairDP,
		flow.MakePair(2, 3): PairPP,
		flow.MakePair(3, 4): PairDP,
	}}
	predicted := map[flow.Pair]PairType{
		flow.MakePair(1, 2): PairDP,
		flow.MakePair(2, 3): PairDP, // wrong
	}
	score := ScorePairs(predicted, job)
	if score.Total != 2 || score.Correct != 1 || score.MissingFromPrediction != 1 {
		t.Errorf("score = %+v, want total 2 correct 1 missing 1", score)
	}
	if acc := score.Accuracy(); acc != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", acc)
	}
	if (PairScore{}).Accuracy() != 1 {
		t.Error("empty score should have accuracy 1")
	}
}

func TestScoreTimeline(t *testing.T) {
	job := Job{Steps: map[flow.Addr][]Span{
		1: {
			{Step: 0, Start: 0, End: 10 * time.Second},
			{Step: 1, Start: 10 * time.Second, End: 20 * time.Second},
		},
	}}
	recon := map[flow.Addr][]time.Duration{
		1: {10*time.Second + 20*time.Millisecond, 20*time.Second - 10*time.Millisecond},
	}
	score := ScoreTimeline(recon, job)
	if score.MatchedSteps != 2 {
		t.Fatalf("matched = %d, want 2", score.MatchedSteps)
	}
	// Errors: 20ms/10s = 0.2% and 10ms/10s = 0.1% → mean 0.15%, max 0.2%.
	if score.MeanRelError < 0.0014 || score.MeanRelError > 0.0016 {
		t.Errorf("mean error = %v, want ≈ 0.0015", score.MeanRelError)
	}
	if score.MaxRelError < 0.0019 || score.MaxRelError > 0.0021 {
		t.Errorf("max error = %v, want ≈ 0.002", score.MaxRelError)
	}
}

func TestScoreTimelineSkipsFarBoundaries(t *testing.T) {
	job := Job{Steps: map[flow.Addr][]Span{
		1: {{Step: 0, Start: 0, End: 10 * time.Second}},
	}}
	// Nearest reconstructed end is 8s away — more than half a step.
	recon := map[flow.Addr][]time.Duration{1: {18 * time.Second}}
	score := ScoreTimeline(recon, job)
	if score.MatchedSteps != 0 {
		t.Errorf("far boundary should not match: %+v", score)
	}
}

func TestScoreTimelineMissingRank(t *testing.T) {
	job := Job{Steps: map[flow.Addr][]Span{
		1: {{Step: 0, Start: 0, End: 10 * time.Second}},
	}}
	score := ScoreTimeline(map[flow.Addr][]time.Duration{}, job)
	if score.MatchedSteps != 0 || score.MeanRelError != 0 {
		t.Errorf("missing rank should score zero: %+v", score)
	}
}
