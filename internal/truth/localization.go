package truth

import (
	"fmt"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/localize"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

// LocalizedWindow is one analysis window's localization output: the
// window's event-time bounds, the alerts the detectors raised, and the
// ranked suspect list the localizer produced (empty when no alert fired).
type LocalizedWindow struct {
	Start, End time.Time
	// Alerts are the window's alerts (all jobs plus switch-level);
	// scoring attributes a fault to the localizer only in windows where
	// an alert corresponding to that fault fired.
	Alerts   []diagnose.Alert
	Suspects []localize.Suspect
	// Fused, when non-nil, is the incident-centric cross-window fused
	// ranking as of this window (localize.Tracker.Fused); scoring prefers
	// it over the single-window Suspects list.
	Fused []localize.Suspect
}

// Ranked returns the suspect list the window should be scored on: the
// cross-window fused ranking when present, the per-window list otherwise.
func (w LocalizedWindow) Ranked() []localize.Suspect {
	if w.Fused != nil {
		return w.Fused
	}
	return w.Suspects
}

// FaultComponent maps an injected fault to the fabric component the
// localizer is expected to name: a degraded switch to its switch, a rank
// slowdown to the rank's host NIC, a degraded NIC link likewise to the
// host (the NIC and its access link are indistinguishable from flow
// records), and a degraded fabric link to the directed leaf→spine or
// spine→leaf link. ok is false for link ids outside the topology.
func FaultComponent(topo *topology.Topology, f faults.Fault) (localize.Component, bool) {
	switch f.Kind {
	case faults.KindSwitchDegrade:
		return localize.SwitchComponent(f.Switch), true
	case faults.KindRankSlowdown:
		return localize.HostComponent(f.Addr), true
	case faults.KindLinkDegrade:
		info, ok := topo.LinkInfo(f.Link)
		if !ok {
			return localize.Component{}, false
		}
		switch info.Kind {
		case topology.LinkNICUp, topology.LinkNICDown:
			return localize.HostComponent(info.Addr), true
		case topology.LinkLeafToSpine:
			return localize.LinkComponent(info.Leaf, info.Spine), true
		default:
			return localize.LinkComponent(info.Spine, info.Leaf), true
		}
	default:
		return localize.Component{}, false
	}
}

// FaultDetected reports whether one of the window's alerts corresponds to
// the fault — the precondition for attributing the window to the
// localizer. A window where the corresponding detector stayed quiet is a
// detection miss (e.g. a rank that has been slow since before the window
// opened self-normalizes its own cross-step baseline), not a localization
// error.
//
//   - Switch degrades correspond to switch-level alerts on that switch.
//   - Rank slowdowns correspond to cross-step alerts on a rank of the
//     same server (TP synchronization throttles the whole server).
//   - NIC-link degrades correspond to cross-group alerts (the host's DP
//     group crawls) or same-server cross-step alerts.
//   - Fabric-link degrades correspond to cross-group alerts or
//     switch-level alerts on either endpoint switch.
func FaultDetected(topo *topology.Topology, f faults.Fault, alerts []diagnose.Alert) bool {
	switchAlertOn := func(sw flow.SwitchID) bool {
		for _, a := range alerts {
			if (a.Kind == diagnose.AlertSwitchBandwidth || a.Kind == diagnose.AlertSwitchFlowCount) &&
				a.Switch == sw {
				return true
			}
		}
		return false
	}
	crossStepOnNode := func(n topology.NodeID) bool {
		for _, a := range alerts {
			if a.Kind == diagnose.AlertCrossStep && topo.NodeOf(a.Rank) == n {
				return true
			}
		}
		return false
	}
	crossGroup := func() bool {
		for _, a := range alerts {
			if a.Kind == diagnose.AlertCrossGroup {
				return true
			}
		}
		return false
	}
	switch f.Kind {
	case faults.KindSwitchDegrade:
		return switchAlertOn(f.Switch)
	case faults.KindRankSlowdown:
		return crossStepOnNode(topo.NodeOf(f.Addr))
	case faults.KindLinkDegrade:
		info, ok := topo.LinkInfo(f.Link)
		if !ok {
			return false
		}
		switch info.Kind {
		case topology.LinkNICUp, topology.LinkNICDown:
			return crossGroup() || crossStepOnNode(topo.NodeOf(info.Addr))
		default:
			return crossGroup() || switchAlertOn(info.Leaf) || switchAlertOn(info.Spine)
		}
	default:
		return false
	}
}

// LocalizationScore aggregates localization accuracy over the windows of
// one scenario. A (window, fault) pair is scored when the fault was active
// inside the window, the localizer produced suspects, and one of the
// fault's corresponding alert kinds fired; windows outside fault activity,
// and fault windows whose corresponding detectors stayed quiet, are
// detection territory and are not attributed to the localizer.
type LocalizationScore struct {
	// K is the ranked-list depth the TopK/precision/recall figures use.
	K int
	// Windows counts scored windows.
	Windows int
	// FaultWindows counts (window, active fault) pairs over scored
	// windows — the denominator of the hit rates.
	FaultWindows int
	// Top1 and TopK count fault-window pairs whose expected component
	// ranked first / within the top K suspects.
	Top1, TopK int
	// Suspected counts the top-K suspects examined over scored windows;
	// TruePositives the ones matching an active fault's component.
	Suspected, TruePositives int
}

// Top1Rate is the fraction of fault-window pairs localized at rank 1.
func (s LocalizationScore) Top1Rate() float64 { return ratio(s.Top1, s.FaultWindows) }

// TopKRate is the fraction of fault-window pairs localized within top K.
func (s LocalizationScore) TopKRate() float64 { return ratio(s.TopK, s.FaultWindows) }

// Precision is the fraction of emitted top-K suspects that match an
// active fault.
func (s LocalizationScore) Precision() float64 { return ratio(s.TruePositives, s.Suspected) }

// Recall is the fraction of active faults recovered within top K —
// identical to TopKRate, named for the table.
func (s LocalizationScore) Recall() float64 { return s.TopKRate() }

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// String renders the score as one compact table cell.
func (s LocalizationScore) String() string {
	return fmt.Sprintf("top1 %.0f%% top%d %.0f%% prec %.0f%% (%d windows)",
		100*s.Top1Rate(), s.K, 100*s.TopKRate(), 100*s.Precision(), s.Windows)
}

// ScoreLocalization scores per-window suspect lists against the injected
// fault schedule. epoch anchors the schedule's offsets to the windows'
// wall-clock bounds; a fault is active in a window when their intervals
// overlap. k bounds the ranked-list depth (default 3 when <= 0).
func ScoreLocalization(topo *topology.Topology, sched faults.Schedule, epoch time.Time, windows []LocalizedWindow, k int) LocalizationScore {
	if k <= 0 {
		k = 3
	}
	score := LocalizationScore{K: k}
	for _, w := range windows {
		var active []localize.Component
		for _, f := range sched.Faults {
			from, until := epoch.Add(f.At), epoch.Add(f.Until)
			if !from.Before(w.End) || !until.After(w.Start) {
				continue
			}
			if !FaultDetected(topo, f, w.Alerts) {
				continue
			}
			if comp, ok := FaultComponent(topo, f); ok {
				active = append(active, comp)
			}
		}
		ranked := w.Ranked()
		if len(active) == 0 || len(ranked) == 0 {
			continue
		}
		score.Windows++
		top := ranked
		if len(top) > k {
			top = top[:k]
		}
		score.Suspected += len(top)
		for _, s := range top {
			for _, comp := range active {
				if s.Component == comp {
					score.TruePositives++
					break
				}
			}
		}
		for _, comp := range active {
			score.FaultWindows++
			if ranked[0].Component == comp {
				score.Top1++
			}
			for _, s := range top {
				if s.Component == comp {
					score.TopK++
					break
				}
			}
		}
	}
	return score
}
