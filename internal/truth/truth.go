// Package truth holds the ground-truth records a platform simulation emits
// alongside its flow trace, plus the scoring used by the experiments.
//
// It substitutes for the paper's evaluation references: tenant-provided job
// configurations (job membership, parallelism strategy) and PyTorch
// Profiler timelines (true step boundaries). The analysis pipeline never
// sees this package's data — only the experiment harness does, to score the
// reconstruction.
package truth

import (
	"fmt"
	"math"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// PairType is the true communication type of an endpoint pair.
type PairType uint8

// Pair types.
const (
	PairPP PairType = iota + 1
	PairDP
)

func (p PairType) String() string {
	switch p {
	case PairPP:
		return "PP"
	case PairDP:
		return "DP"
	default:
		return fmt.Sprintf("PairType(%d)", uint8(p))
	}
}

// Span is one training step's true time extent on one rank.
type Span struct {
	Step       int
	Start, End time.Duration
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Job is the ground truth for one training job.
type Job struct {
	ID         int
	Name       string
	TP, PP, DP int
	// Addrs lists every rank's NIC address.
	Addrs []flow.Addr
	// Pairs maps each cross-node communicating pair to its true type.
	Pairs map[flow.Pair]PairType
	// Steps maps each rank to its true step spans, in step order.
	Steps map[flow.Addr][]Span
}

// Platform is the full ground truth of one simulated trace.
type Platform struct {
	// Epoch anchors simulation time offsets to wall-clock flow timestamps.
	Epoch time.Time
	Jobs  []Job
}

// JobOf returns the ground-truth job owning addr, or nil.
func (p *Platform) JobOf(addr flow.Addr) *Job {
	for i := range p.Jobs {
		for _, a := range p.Jobs[i].Addrs {
			if a == addr {
				return &p.Jobs[i]
			}
		}
	}
	return nil
}

// RecognitionScore compares predicted job clusters against the true jobs.
type RecognitionScore struct {
	// TrueJobs is the number of ground-truth jobs.
	TrueJobs int
	// PredictedClusters is the number of clusters the recognizer output.
	PredictedClusters int
	// ExactMatches counts true jobs whose full address set equals one
	// predicted cluster exactly.
	ExactMatches int
}

// Perfect reports whether recognition recovered every job exactly with no
// spurious clusters.
func (s RecognitionScore) Perfect() bool {
	return s.ExactMatches == s.TrueJobs && s.PredictedClusters == s.TrueJobs
}

// ScoreRecognition scores predicted clusters (each a set of addresses)
// against the platform ground truth. Only jobs with at least one observed
// member are expected; callers pass the truth restricted to the window if
// needed.
func ScoreRecognition(predicted [][]flow.Addr, jobs []Job) RecognitionScore {
	score := RecognitionScore{
		TrueJobs:          len(jobs),
		PredictedClusters: len(predicted),
	}
	predSets := make([]map[flow.Addr]struct{}, len(predicted))
	for i, cluster := range predicted {
		predSets[i] = make(map[flow.Addr]struct{}, len(cluster))
		for _, a := range cluster {
			predSets[i][a] = struct{}{}
		}
	}
	for _, job := range jobs {
		for _, set := range predSets {
			if len(set) != len(job.Addrs) {
				continue
			}
			match := true
			for _, a := range job.Addrs {
				if _, ok := set[a]; !ok {
					match = false
					break
				}
			}
			if match {
				score.ExactMatches++
				break
			}
		}
	}
	return score
}

// PairScore is the result of scoring pair-type classification.
type PairScore struct {
	// Correct and Total count evaluated pairs (pairs present in both the
	// prediction and the truth).
	Correct, Total int
	// MissingFromPrediction counts true pairs the classifier never saw
	// (no flows in the window).
	MissingFromPrediction int
}

// Accuracy returns Correct/Total (1 when no pairs were evaluated).
func (s PairScore) Accuracy() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(s.Correct) / float64(s.Total)
}

// ScorePairs compares predicted pair types against the true types of one
// job.
func ScorePairs(predicted map[flow.Pair]PairType, job Job) PairScore {
	var score PairScore
	for pair, want := range job.Pairs {
		got, ok := predicted[pair]
		if !ok {
			score.MissingFromPrediction++
			continue
		}
		score.Total++
		if got == want {
			score.Correct++
		}
	}
	return score
}

// TimelineScore summarizes reconstruction error against true step spans.
type TimelineScore struct {
	// MatchedSteps counts (rank, step) pairs with both a true span and a
	// reconstructed boundary.
	MatchedSteps int
	// MeanRelError is the mean of |reconstructed end − true end| / true
	// step duration over matched steps.
	MeanRelError float64
	// MaxRelError is the maximum relative error observed.
	MaxRelError float64
}

// ScoreTimeline scores reconstructed per-rank step end times against the
// truth. recon maps each rank to reconstructed step end offsets (sorted).
// For each true span, the nearest reconstructed end is matched if it falls
// within half a step of the true end; the relative error is the offset
// divided by the true step duration, matching the paper's "reconstruction
// error within 0.3%" metric (§V-C).
func ScoreTimeline(recon map[flow.Addr][]time.Duration, job Job) TimelineScore {
	var score TimelineScore
	var sum float64
	for addr, spans := range job.Steps {
		ends := recon[addr]
		if len(ends) == 0 {
			continue
		}
		for _, span := range spans {
			best := time.Duration(math.MaxInt64)
			for _, e := range ends {
				if d := absDur(e - span.End); d < best {
					best = d
				}
			}
			if span.Duration() <= 0 || best > span.Duration()/2 {
				continue
			}
			rel := float64(best) / float64(span.Duration())
			sum += rel
			if rel > score.MaxRelError {
				score.MaxRelError = rel
			}
			score.MatchedSteps++
		}
	}
	if score.MatchedSteps > 0 {
		score.MeanRelError = sum / float64(score.MatchedSteps)
	}
	return score
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
