package truth

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/localize"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/topology"
)

func scoreTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Spec{Nodes: 32, NodesPerLeaf: 4, Spines: 4})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestFaultComponentMapping(t *testing.T) {
	topo := scoreTopo(t)
	spine := topo.SpineSwitch(1)

	if c, ok := FaultComponent(topo, faults.Fault{Kind: faults.KindSwitchDegrade, Switch: spine}); !ok || c != localize.SwitchComponent(spine) {
		t.Errorf("switch fault component = %v ok=%v", c, ok)
	}
	if c, ok := FaultComponent(topo, faults.Fault{Kind: faults.KindRankSlowdown, Addr: 17}); !ok || c != localize.HostComponent(17) {
		t.Errorf("rank fault component = %v ok=%v", c, ok)
	}
	// A NIC-up link degrade is attributed to the host.
	if c, ok := FaultComponent(topo, faults.Fault{Kind: faults.KindLinkDegrade, Link: topology.LinkID(9)}); !ok || c != localize.HostComponent(9) {
		t.Errorf("NIC link fault component = %v ok=%v", c, ok)
	}
	// A fabric link degrade is attributed to the canonical leaf<->spine link.
	fabric := topology.LinkID(2*topo.Endpoints() + 0*topo.Spines() + 1) // leaf 0 -> spine 1
	want := localize.LinkComponent(topo.LeafSwitch(0), spine)
	if c, ok := FaultComponent(topo, faults.Fault{Kind: faults.KindLinkDegrade, Link: fabric}); !ok || c != want {
		t.Errorf("fabric link fault component = %v ok=%v, want %v", c, ok, want)
	}
	if _, ok := FaultComponent(topo, faults.Fault{Kind: faults.KindLinkDegrade, Link: -1}); ok {
		t.Error("invalid link id produced a component")
	}
}

func TestScoreLocalization(t *testing.T) {
	topo := scoreTopo(t)
	epoch := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	spine := topo.SpineSwitch(2)
	sched := faults.Schedule{Faults: []faults.Fault{{
		Kind: faults.KindSwitchDegrade, Switch: spine,
		At: 30 * time.Second, Until: 90 * time.Second, Factor: 0.1,
	}}}

	win := func(fromSec, toSec int, comps ...localize.Component) LocalizedWindow {
		w := LocalizedWindow{
			Start: epoch.Add(time.Duration(fromSec) * time.Second),
			End:   epoch.Add(time.Duration(toSec) * time.Second),
		}
		for i, c := range comps {
			w.Suspects = append(w.Suspects, localize.Suspect{Component: c, Score: float64(len(comps) - i)})
		}
		if len(comps) > 0 {
			w.Alerts = []diagnose.Alert{{Kind: diagnose.AlertSwitchBandwidth, Switch: spine}}
		}
		return w
	}
	windows := []LocalizedWindow{
		win(0, 30), // pre-fault, quiet: not scored
		win(30, 60, localize.SwitchComponent(spine), localize.HostComponent(3)), // top-1 hit
		win(60, 90, localize.HostComponent(3), localize.SwitchComponent(spine)), // top-3 hit only
		win(90, 120, localize.HostComponent(3)),                                 // post-fault: not scored
	}

	s := ScoreLocalization(topo, sched, epoch, windows, 3)
	if s.Windows != 2 || s.FaultWindows != 2 {
		t.Fatalf("scored windows = %d faultWindows = %d, want 2 and 2", s.Windows, s.FaultWindows)
	}
	if s.Top1 != 1 || s.TopK != 2 {
		t.Errorf("top1 = %d topK = %d, want 1 and 2", s.Top1, s.TopK)
	}
	if got := s.Top1Rate(); got != 0.5 {
		t.Errorf("Top1Rate = %v, want 0.5", got)
	}
	if got := s.TopKRate(); got != 1 {
		t.Errorf("TopKRate = %v, want 1", got)
	}
	// 4 suspects examined in scored windows, 2 matching the fault.
	if s.Suspected != 4 || s.TruePositives != 2 {
		t.Errorf("suspected = %d truePositives = %d, want 4 and 2", s.Suspected, s.TruePositives)
	}
	if got := s.Precision(); got != 0.5 {
		t.Errorf("Precision = %v, want 0.5", got)
	}

	// Zero denominators degrade to 0, not NaN.
	empty := ScoreLocalization(topo, sched, epoch, nil, 0)
	if empty.K != 3 || empty.Top1Rate() != 0 || empty.Precision() != 0 {
		t.Errorf("empty score = %+v (rates %v %v)", empty, empty.Top1Rate(), empty.Precision())
	}
}
