package topology

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/llmprism/llmprism/internal/flow"
)

func testTopo(t *testing.T, spec Spec) *Topology {
	t.Helper()
	topo, err := New(spec)
	if err != nil {
		t.Fatalf("New(%+v): %v", spec, err)
	}
	return topo
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Spec{}); err == nil {
		t.Error("New with zero nodes should fail")
	}
	if _, err := New(Spec{Nodes: 1 << 22, GPUsPerNode: 8}); err == nil {
		t.Error("New exceeding address space should fail")
	}
}

func TestDefaults(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 4})
	spec := topo.Spec()
	if spec.GPUsPerNode != 8 || spec.NodesPerLeaf != 16 || spec.Spines != 8 {
		t.Errorf("defaults not applied: %+v", spec)
	}
	if topo.Endpoints() != 32 {
		t.Errorf("Endpoints = %d, want 32", topo.Endpoints())
	}
	if topo.Leaves() != 1 {
		t.Errorf("Leaves = %d, want 1", topo.Leaves())
	}
}

func TestAddrMappingRoundTrip(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 360})
	f := func(rawNode, rawGPU uint16) bool {
		node := NodeID(int(rawNode) % 360)
		gpu := int(rawGPU) % 8
		a := topo.AddrOf(node, gpu)
		return topo.NodeOf(a) == node && topo.GPUOf(a) == gpu && topo.Valid(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeafAssignment(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 48, NodesPerLeaf: 16})
	if topo.Leaves() != 3 {
		t.Fatalf("Leaves = %d, want 3", topo.Leaves())
	}
	if topo.LeafOf(0) != 0 || topo.LeafOf(15) != 0 || topo.LeafOf(16) != 1 || topo.LeafOf(47) != 2 {
		t.Error("LeafOf boundaries wrong")
	}
}

func TestSwitchNaming(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 48, NodesPerLeaf: 16, Spines: 4})
	if got := topo.SwitchName(topo.LeafSwitch(2)); got != "leaf-2" {
		t.Errorf("SwitchName leaf = %q", got)
	}
	if got := topo.SwitchName(topo.SpineSwitch(1)); got != "spine-1" {
		t.Errorf("SwitchName spine = %q", got)
	}
	if topo.IsSpine(topo.LeafSwitch(0)) || !topo.IsSpine(topo.SpineSwitch(0)) {
		t.Error("IsSpine misclassifies")
	}
	if topo.SwitchCount() != 7 {
		t.Errorf("SwitchCount = %d, want 7", topo.SwitchCount())
	}
}

func TestRouteIntraNode(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 4})
	p := topo.Route(topo.AddrOf(1, 0), topo.AddrOf(1, 7), 0)
	if !p.IntraNode || len(p.Switches) != 0 || len(p.Links) != 0 {
		t.Errorf("intra-node path should be empty, got %+v", p)
	}
}

func TestRouteSameLeaf(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 32, NodesPerLeaf: 16})
	src, dst := topo.AddrOf(0, 0), topo.AddrOf(1, 0)
	p := topo.Route(src, dst, 0)
	if p.IntraNode {
		t.Fatal("cross-node path marked intra-node")
	}
	if len(p.Switches) != 1 || p.Switches[0] != topo.LeafSwitch(0) {
		t.Errorf("same-leaf path switches = %v, want [leaf-0]", p.Switches)
	}
	if len(p.Links) != 2 {
		t.Errorf("same-leaf path links = %v, want 2 links", p.Links)
	}
}

func TestRouteCrossLeaf(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 64, NodesPerLeaf: 16, Spines: 4})
	src, dst := topo.AddrOf(0, 3), topo.AddrOf(40, 3)
	p := topo.Route(src, dst, 0)
	if len(p.Switches) != 3 {
		t.Fatalf("cross-leaf path switches = %v, want 3 entries", p.Switches)
	}
	if p.Switches[0] != topo.LeafSwitch(0) || p.Switches[2] != topo.LeafSwitch(2) {
		t.Errorf("cross-leaf endpoints wrong: %v", p.Switches)
	}
	if !topo.IsSpine(p.Switches[1]) {
		t.Errorf("middle switch %v is not a spine", p.Switches[1])
	}
	if len(p.Links) != 4 {
		t.Errorf("cross-leaf path has %d links, want 4", len(p.Links))
	}
}

func TestRouteECMPDeterministicAndSpreading(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 64, NodesPerLeaf: 16, Spines: 8})
	src, dst := topo.AddrOf(0, 0), topo.AddrOf(32, 0)
	p1 := topo.Route(src, dst, 7)
	p2 := topo.Route(src, dst, 7)
	if p1.Switches[1] != p2.Switches[1] {
		t.Error("ECMP is not deterministic for identical label")
	}
	spines := make(map[flow.SwitchID]bool)
	for label := uint32(0); label < 64; label++ {
		spines[topo.Route(src, dst, label).Switches[1]] = true
	}
	if len(spines) < 4 {
		t.Errorf("ECMP spread %d spines over 64 labels, want >= 4", len(spines))
	}
}

// Property: every routed link exists and the path charges NIC-up of src and
// NIC-down of dst.
func TestRouteLinksValid(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 96, NodesPerLeaf: 16, Spines: 4})
	links := topo.Links()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		src := flow.Addr(rng.Intn(topo.Endpoints()))
		dst := flow.Addr(rng.Intn(topo.Endpoints()))
		if topo.NodeOf(src) == topo.NodeOf(dst) {
			continue
		}
		p := topo.Route(src, dst, uint32(i))
		if links[p.Links[0]].Kind != LinkNICUp || LinkID(int(src)) != p.Links[0] {
			t.Fatalf("path %v does not start at src NIC-up", p.Links)
		}
		last := p.Links[len(p.Links)-1]
		if links[last].Kind != LinkNICDown {
			t.Fatalf("path %v does not end at NIC-down", p.Links)
		}
		for _, l := range p.Links {
			if int(l) >= len(links) || links[l].ID != l {
				t.Fatalf("link %d not in table", l)
			}
		}
	}
}

// TestLinkInfoInvertsRouting: every link a routed path charges resolves,
// via LinkInfo, back to the endpoints/switches the route actually used.
func TestLinkInfoInvertsRouting(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 96, NodesPerLeaf: 16, Spines: 4})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		src := flow.Addr(rng.Intn(topo.Endpoints()))
		dst := flow.Addr(rng.Intn(topo.Endpoints()))
		if topo.NodeOf(src) == topo.NodeOf(dst) {
			continue
		}
		p := topo.Route(src, dst, uint32(i))
		first, ok := topo.LinkInfo(p.Links[0])
		if !ok || first.Kind != LinkNICUp || first.Addr != src {
			t.Fatalf("first link info = %+v ok=%v, want NIC-up of %v", first, ok, src)
		}
		last, ok := topo.LinkInfo(p.Links[len(p.Links)-1])
		if !ok || last.Kind != LinkNICDown || last.Addr != dst {
			t.Fatalf("last link info = %+v ok=%v, want NIC-down of %v", last, ok, dst)
		}
		if len(p.Switches) == 3 { // cross-leaf: leaf, spine, leaf
			up, ok := topo.LinkInfo(p.Links[1])
			if !ok || up.Kind != LinkLeafToSpine || up.Leaf != p.Switches[0] || up.Spine != p.Switches[1] {
				t.Fatalf("uplink info = %+v ok=%v, want leaf %v -> spine %v", up, ok, p.Switches[0], p.Switches[1])
			}
			down, ok := topo.LinkInfo(p.Links[2])
			if !ok || down.Kind != LinkSpineToLeaf || down.Spine != p.Switches[1] || down.Leaf != p.Switches[2] {
				t.Fatalf("downlink info = %+v ok=%v, want spine %v -> leaf %v", down, ok, p.Switches[1], p.Switches[2])
			}
		}
	}
	if _, ok := topo.LinkInfo(-1); ok {
		t.Error("negative link id resolved")
	}
	if _, ok := topo.LinkInfo(LinkID(len(topo.Links()))); ok {
		t.Error("out-of-range link id resolved")
	}
}

func TestLinkTableLayout(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 32, NodesPerLeaf: 16, Spines: 4})
	links := topo.Links()
	wantLen := 2*32*8 + 2*2*4
	if len(links) != wantLen {
		t.Fatalf("link table length = %d, want %d", len(links), wantLen)
	}
	counts := make(map[LinkKind]int)
	for i, l := range links {
		if int(l.ID) != i {
			t.Fatalf("link %d has ID %d", i, l.ID)
		}
		if l.Capacity <= 0 {
			t.Fatalf("link %d has non-positive capacity", i)
		}
		counts[l.Kind]++
	}
	if counts[LinkNICUp] != 256 || counts[LinkNICDown] != 256 ||
		counts[LinkLeafToSpine] != 8 || counts[LinkSpineToLeaf] != 8 {
		t.Errorf("link kind counts = %v", counts)
	}
}

func TestServerSet(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 8})
	addrs := []flow.Addr{
		topo.AddrOf(3, 0), topo.AddrOf(3, 5), topo.AddrOf(1, 2), topo.AddrOf(7, 7),
	}
	got := topo.ServerSet(addrs)
	want := []NodeID{1, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("ServerSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ServerSet = %v, want %v", got, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	topo := testTopo(t, Spec{Nodes: 100, GPUsPerNode: 4, NodesPerLeaf: 10, Spines: 6, NICGbps: 100, UplinkGbps: 400})
	var buf bytes.Buffer
	if err := topo.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.Spec() != topo.Spec() {
		t.Errorf("round trip spec = %+v, want %+v", got.Spec(), topo.Spec())
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{garbage")); err == nil {
		t.Error("ReadJSON of garbage should fail")
	}
}

func TestLinkKindString(t *testing.T) {
	if LinkNICUp.String() != "nic-up" || LinkKind(99).String() == "" {
		t.Error("LinkKind.String misbehaves")
	}
}

func BenchmarkRoute(b *testing.B) {
	topo, err := New(Spec{Nodes: 360})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.Route(flow.Addr(i%2880), flow.Addr((i*7+13)%2880), uint32(i))
	}
}
