// Package topology models the physical training fabric: servers with one
// RDMA NIC per GPU, a two-tier leaf–spine (Clos) switch network with ECMP
// routing, and the address mapping that lets the platform provider resolve
// a flow endpoint to its physical server.
//
// The topology plays two roles in the reproduction:
//
//   - The platform side (simulator) routes every transfer over it, yielding
//     the per-flow switch lists and shared-link contention that the collected
//     flow records expose.
//   - The analysis side (Algorithm 1 of the paper) only uses the
//     address→server mapping, which is exactly the information a provider
//     has about rented machines.
package topology

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"github.com/llmprism/llmprism/internal/flow"
)

// NodeID identifies a physical server.
type NodeID int32

// LinkID indexes a directed link in the fabric.
type LinkID int32

// LinkKind classifies fabric links.
type LinkKind uint8

// Link kinds. NIC links connect a GPU NIC to its leaf switch; fabric links
// connect leaves and spines.
const (
	LinkNICUp LinkKind = iota + 1
	LinkNICDown
	LinkLeafToSpine
	LinkSpineToLeaf
)

func (k LinkKind) String() string {
	switch k {
	case LinkNICUp:
		return "nic-up"
	case LinkNICDown:
		return "nic-down"
	case LinkLeafToSpine:
		return "leaf-to-spine"
	case LinkSpineToLeaf:
		return "spine-to-leaf"
	default:
		return fmt.Sprintf("LinkKind(%d)", uint8(k))
	}
}

// Link is a directed fabric link with a nominal capacity.
type Link struct {
	ID       LinkID
	Kind     LinkKind
	Capacity float64 // bytes per second
	// Switch is the switch this link is attached to (the leaf for NIC
	// links, the spine for leaf-to-spine, the destination leaf for
	// spine-to-leaf).
	Switch flow.SwitchID
}

// Spec describes a fabric. Zero fields take the documented defaults.
type Spec struct {
	// Nodes is the number of servers. Required.
	Nodes int `json:"nodes"`
	// GPUsPerNode is the number of GPUs (and NICs) per server. Default 8.
	GPUsPerNode int `json:"gpus_per_node"`
	// NodesPerLeaf is the number of servers attached to one leaf switch.
	// Default 16.
	NodesPerLeaf int `json:"nodes_per_leaf"`
	// Spines is the number of spine switches. Default 8.
	Spines int `json:"spines"`
	// NICGbps is the NIC line rate in Gb/s. Default 200.
	NICGbps float64 `json:"nic_gbps"`
	// UplinkGbps is the capacity of each leaf<->spine link in Gb/s.
	// Default 800.
	UplinkGbps float64 `json:"uplink_gbps"`
}

func (s Spec) withDefaults() Spec {
	if s.GPUsPerNode <= 0 {
		s.GPUsPerNode = 8
	}
	if s.NodesPerLeaf <= 0 {
		s.NodesPerLeaf = 16
	}
	if s.Spines <= 0 {
		s.Spines = 8
	}
	if s.NICGbps <= 0 {
		s.NICGbps = 200
	}
	if s.UplinkGbps <= 0 {
		s.UplinkGbps = 800
	}
	return s
}

// Topology is an immutable fabric instance.
type Topology struct {
	spec   Spec
	leaves int
	links  []Link
	// Link index layout:
	//   [0, n)                 NIC up, addr a -> leaf
	//   [n, 2n)                NIC down, leaf -> addr a
	//   [2n, 2n+L*S)           leaf l -> spine s at 2n + l*S + s
	//   [2n+L*S, 2n+2*L*S)     spine s -> leaf l at 2n+L*S + l*S + s
	nAddrs int
}

// New validates the spec and builds the fabric.
func New(spec Spec) (*Topology, error) {
	spec = spec.withDefaults()
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("topology: spec.Nodes must be positive, got %d", spec.Nodes)
	}
	if spec.Nodes*spec.GPUsPerNode > 1<<24 {
		return nil, fmt.Errorf("topology: %d endpoints exceed the 2^24 address space", spec.Nodes*spec.GPUsPerNode)
	}
	t := &Topology{
		spec:   spec,
		leaves: (spec.Nodes + spec.NodesPerLeaf - 1) / spec.NodesPerLeaf,
		nAddrs: spec.Nodes * spec.GPUsPerNode,
	}
	nicBps := spec.NICGbps * 1e9 / 8
	upBps := spec.UplinkGbps * 1e9 / 8
	t.links = make([]Link, 0, 2*t.nAddrs+2*t.leaves*spec.Spines)
	for a := 0; a < t.nAddrs; a++ {
		leaf := t.LeafOf(t.NodeOfIndex(a))
		t.links = append(t.links, Link{ID: LinkID(a), Kind: LinkNICUp, Capacity: nicBps, Switch: leaf})
	}
	for a := 0; a < t.nAddrs; a++ {
		leaf := t.LeafOf(t.NodeOfIndex(a))
		t.links = append(t.links, Link{ID: LinkID(t.nAddrs + a), Kind: LinkNICDown, Capacity: nicBps, Switch: leaf})
	}
	for l := 0; l < t.leaves; l++ {
		for s := 0; s < spec.Spines; s++ {
			id := LinkID(2*t.nAddrs + l*spec.Spines + s)
			t.links = append(t.links, Link{ID: id, Kind: LinkLeafToSpine, Capacity: upBps, Switch: t.SpineSwitch(s)})
		}
	}
	for l := 0; l < t.leaves; l++ {
		for s := 0; s < spec.Spines; s++ {
			id := LinkID(2*t.nAddrs + t.leaves*spec.Spines + l*spec.Spines + s)
			t.links = append(t.links, Link{ID: id, Kind: LinkSpineToLeaf, Capacity: upBps, Switch: t.LeafSwitch(l)})
		}
	}
	return t, nil
}

// Spec returns the (defaulted) spec the topology was built from.
func (t *Topology) Spec() Spec { return t.spec }

// Nodes returns the number of servers.
func (t *Topology) Nodes() int { return t.spec.Nodes }

// Endpoints returns the total number of NIC endpoints.
func (t *Topology) Endpoints() int { return t.nAddrs }

// Leaves returns the number of leaf switches.
func (t *Topology) Leaves() int { return t.leaves }

// Spines returns the number of spine switches.
func (t *Topology) Spines() int { return t.spec.Spines }

// Links returns the full directed link table. The returned slice must not
// be modified.
func (t *Topology) Links() []Link { return t.links }

// AddrOf returns the NIC address of (node, gpu).
func (t *Topology) AddrOf(node NodeID, gpu int) flow.Addr {
	return flow.Addr(int(node)*t.spec.GPUsPerNode + gpu)
}

// NodeOf resolves a NIC address to its server. This is the provider-visible
// mapping used by Algorithm 1.
func (t *Topology) NodeOf(a flow.Addr) NodeID {
	return NodeID(int(a) / t.spec.GPUsPerNode)
}

// NodeOfIndex is NodeOf for a raw integer endpoint index.
func (t *Topology) NodeOfIndex(a int) NodeID {
	return NodeID(a / t.spec.GPUsPerNode)
}

// GPUOf resolves a NIC address to the GPU index within its server.
func (t *Topology) GPUOf(a flow.Addr) int {
	return int(a) % t.spec.GPUsPerNode
}

// Valid reports whether a is an endpoint of this fabric.
func (t *Topology) Valid(a flow.Addr) bool { return int(a) < t.nAddrs }

// LeafOf returns the leaf switch of a server.
func (t *Topology) LeafOf(n NodeID) flow.SwitchID {
	return flow.SwitchID(int(n) / t.spec.NodesPerLeaf)
}

// LeafSwitch returns the switch ID of leaf l.
func (t *Topology) LeafSwitch(l int) flow.SwitchID { return flow.SwitchID(l) }

// SpineSwitch returns the switch ID of spine s.
func (t *Topology) SpineSwitch(s int) flow.SwitchID {
	return flow.SwitchID(t.leaves + s)
}

// IsSpine reports whether sw is a spine switch.
func (t *Topology) IsSpine(sw flow.SwitchID) bool {
	return int(sw) >= t.leaves && int(sw) < t.leaves+t.spec.Spines
}

// SwitchCount returns the total number of switches (leaves + spines).
func (t *Topology) SwitchCount() int { return t.leaves + t.spec.Spines }

// SwitchName renders a human-readable switch name ("leaf-3", "spine-1").
func (t *Topology) SwitchName(sw flow.SwitchID) string {
	if t.IsSpine(sw) {
		return fmt.Sprintf("spine-%d", int(sw)-t.leaves)
	}
	return fmt.Sprintf("leaf-%d", int(sw))
}

// LinkInfo locates one directed link in the fabric: its kind plus either
// the NIC endpoint it serves (NIC links) or the leaf and spine switches it
// connects (fabric links). It is the inverse of the link index layout the
// router charges, letting a fault on a raw LinkID be mapped back to the
// physical component it degrades.
type LinkInfo struct {
	Kind LinkKind
	// Addr is the NIC endpoint of NIC up/down links.
	Addr flow.Addr
	// Leaf and Spine are the switches a leaf<->spine link connects.
	Leaf, Spine flow.SwitchID
}

// LinkInfo resolves a link id; ok is false for ids outside the fabric.
func (t *Topology) LinkInfo(id LinkID) (LinkInfo, bool) {
	i := int(id)
	n := t.nAddrs
	ls := t.leaves * t.spec.Spines
	switch {
	case i < 0:
		return LinkInfo{}, false
	case i < n:
		return LinkInfo{Kind: LinkNICUp, Addr: flow.Addr(i)}, true
	case i < 2*n:
		return LinkInfo{Kind: LinkNICDown, Addr: flow.Addr(i - n)}, true
	case i < 2*n+ls:
		j := i - 2*n
		return LinkInfo{
			Kind:  LinkLeafToSpine,
			Leaf:  t.LeafSwitch(j / t.spec.Spines),
			Spine: t.SpineSwitch(j % t.spec.Spines),
		}, true
	case i < 2*n+2*ls:
		j := i - 2*n - ls
		return LinkInfo{
			Kind:  LinkSpineToLeaf,
			Leaf:  t.LeafSwitch(j / t.spec.Spines),
			Spine: t.SpineSwitch(j % t.spec.Spines),
		}, true
	default:
		return LinkInfo{}, false
	}
}

// Path is a routed fabric path between two endpoints.
type Path struct {
	// Switches in traversal order (what ERSPAN collection records).
	Switches []flow.SwitchID
	// Links in traversal order (what the network simulator charges).
	Links []LinkID
	// IntraNode is true for endpoint pairs on the same server: the
	// traffic rides NVLink and never reaches the fabric.
	IntraNode bool
}

// Route computes the ECMP path from src to dst. label differentiates flows
// of the same endpoint pair (e.g. collective channels) so they can hash
// onto different spines, like distinct RoCE queue pairs would.
func (t *Topology) Route(src, dst flow.Addr, label uint32) Path {
	srcNode, dstNode := t.NodeOf(src), t.NodeOf(dst)
	if srcNode == dstNode {
		return Path{IntraNode: true}
	}
	srcLeaf, dstLeaf := t.LeafOf(srcNode), t.LeafOf(dstNode)
	nicUp := LinkID(int(src))
	nicDown := LinkID(t.nAddrs + int(dst))
	if srcLeaf == dstLeaf {
		return Path{
			Switches: []flow.SwitchID{srcLeaf},
			Links:    []LinkID{nicUp, nicDown},
		}
	}
	spine := t.ecmpSpine(src, dst, label)
	up := LinkID(2*t.nAddrs + int(srcLeaf)*t.spec.Spines + spine)
	down := LinkID(2*t.nAddrs + t.leaves*t.spec.Spines + int(dstLeaf)*t.spec.Spines + spine)
	return Path{
		Switches: []flow.SwitchID{srcLeaf, t.SpineSwitch(spine), dstLeaf},
		Links:    []LinkID{nicUp, up, down, nicDown},
	}
}

func (t *Topology) ecmpSpine(src, dst flow.Addr, label uint32) int {
	h := fnv.New32a()
	var buf [12]byte
	put32 := func(off int, v uint32) {
		buf[off] = byte(v >> 24)
		buf[off+1] = byte(v >> 16)
		buf[off+2] = byte(v >> 8)
		buf[off+3] = byte(v)
	}
	put32(0, uint32(src))
	put32(4, uint32(dst))
	put32(8, label)
	_, _ = h.Write(buf[:])
	return int(h.Sum32() % uint32(t.spec.Spines))
}

// ServerSet returns the sorted, deduplicated server list of a set of
// endpoint addresses — the quantity Algorithm 1 compares with Jaccard
// similarity when merging cross-machine clusters.
func (t *Topology) ServerSet(addrs []flow.Addr) []NodeID {
	seen := make(map[NodeID]struct{}, len(addrs))
	for _, a := range addrs {
		seen[t.NodeOf(a)] = struct{}{}
	}
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteJSON persists the topology spec.
func (t *Topology) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t.spec); err != nil {
		return fmt.Errorf("topology: encode spec: %w", err)
	}
	return nil
}

// ReadJSON loads a topology from a spec written by WriteJSON.
func ReadJSON(r io.Reader) (*Topology, error) {
	var spec Spec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("topology: decode spec: %w", err)
	}
	return New(spec)
}
