package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/netsim"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/trainsim"
	"github.com/llmprism/llmprism/internal/truth"
	"github.com/llmprism/llmprism/internal/viz"
)

// Fig4Result is the timeline-reconstruction experiment outcome.
type Fig4Result struct {
	GPUs         int
	Score        truth.TimelineScore
	MeanStep     time.Duration
	RanksWithTL  int
	Render       string
	SimWall      time.Duration
	AnalysisWall time.Duration
}

// Fig4 reproduces §V-C and Fig. 4: reconstruct per-GPU training timelines
// of a 1,024-GPU ZeRO job and score the step boundaries against the
// simulator's ground truth (standing in for the paper's PyTorch Profiler
// reference). The paper reports reconstruction error within 0.3%.
func Fig4(ctx context.Context, opts Options) (*Fig4Result, error) {
	return fig4WithMode(ctx, opts, netsim.Config{})
}

func fig4WithMode(ctx context.Context, opts Options, netCfg netsim.Config) (*Fig4Result, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nodes := scaleInt(128, opts.Scale, 16)
	horizon := scaleDur(6*time.Minute, opts.Scale, 2*time.Minute)
	topoSpec := topology.Spec{Nodes: nodes, NodesPerLeaf: 8, Spines: 8}
	jobs, err := platform.PlanJobs(topoSpec, []platform.JobPlan{{
		Nodes:      nodes,
		TargetStep: 10 * time.Second,
		Style:      trainsim.StyleZeRO,
		StyleSet:   true,
	}}, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4: %w", err)
	}
	simStart := time.Now()
	res, err := platform.Run(platform.Scenario{
		Name:    "fig4",
		Topo:    topoSpec,
		Jobs:    jobs,
		Net:     netCfg,
		Horizon: horizon,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4: %w", err)
	}
	simWall := time.Since(simStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	anStart := time.Now()
	records := res.Records
	perJob := jobrec.SplitRecords(records, jobrec.Recognize(records, res.Topo, jobrec.Config{}))
	if len(perJob) == 0 {
		return nil, fmt.Errorf("experiments: fig4: job not recognized")
	}
	jobRecs := perJob[0]
	cls := parallel.Identify(jobRecs, parallel.Config{})
	tls := timeline.Reconstruct(jobRecs, cls.Types, timeline.Config{})
	anWall := time.Since(anStart)

	tj := res.Truth.Jobs[0]
	score := truth.ScoreTimeline(timeline.AllStepEnds(tls, res.Truth.Epoch), tj)

	// Render the first 8 ranks over roughly two steps for the figure.
	ranks := make([]flow.Addr, 0, len(tls))
	for r := range tls {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	var meanStep time.Duration
	var withTL int
	for _, r := range ranks {
		if d := timeline.MeanStepDuration(tls[r]); d > 0 {
			meanStep += d
			withTL++
		}
	}
	if withTL > 0 {
		meanStep /= time.Duration(withTL)
	}
	var render string
	if len(ranks) > 0 && meanStep > 0 {
		show := ranks
		if len(show) > 8 {
			show = show[:8]
		}
		from := res.Truth.Epoch.Add(horizon / 2)
		render = viz.TimelineSwimlanes(tls, show, from, from.Add(2*meanStep+meanStep/2), 110)
	}

	return &Fig4Result{
		GPUs:         res.Topo.Endpoints(),
		Score:        score,
		MeanStep:     meanStep,
		RanksWithTL:  withTL,
		Render:       render,
		SimWall:      simWall,
		AnalysisWall: anWall,
	}, nil
}

// Report renders the experiment outcome.
func (r *Fig4Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "E3 (§V-C, Fig. 4) — training timeline reconstruction\n")
	fmt.Fprintf(&sb, "  job: %d GPUs, mean step %v, %d ranks reconstructed\n",
		r.GPUs, r.MeanStep.Round(time.Millisecond), r.RanksWithTL)
	fmt.Fprintf(&sb, "  matched steps: %d\n", r.Score.MatchedSteps)
	fmt.Fprintf(&sb, "  reconstruction error: mean %s, max %s (paper: within 0.3%%)\n",
		fmtPct(r.Score.MeanRelError), fmtPct(r.Score.MaxRelError))
	fmt.Fprintf(&sb, "  wall: sim %v, analysis %v\n", r.SimWall.Round(time.Millisecond), r.AnalysisWall.Round(time.Millisecond))
	if r.Render != "" {
		sb.WriteString("\n  reconstructed timeline sample:\n")
		for _, line := range strings.Split(strings.TrimRight(r.Render, "\n"), "\n") {
			sb.WriteString("  " + line + "\n")
		}
	}
	return sb.String()
}
