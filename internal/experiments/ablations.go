package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/bocd"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/erspan"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/netsim"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/pool"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/truth"
)

// NetsimModeResult compares fluid fair-share against analytic rate
// assignment (ablation A1).
type NetsimModeResult struct {
	FairShareError, AnalyticError float64
	FairShareWall, AnalyticWall   time.Duration
}

// AblationNetsimMode runs the Fig. 4 reconstruction under both network
// models. The analytic mode ignores contention from later arrivals, which
// perturbs flow timings; the experiment quantifies the effect on timeline
// accuracy and simulation cost.
func AblationNetsimMode(ctx context.Context, opts Options) (*NetsimModeResult, error) {
	opts = opts.withDefaults()
	if opts.Scale > 0.5 {
		opts.Scale = 0.5 // A1 never needs the full 1,024-GPU job
	}
	// The two network modes re-run the same scenario independently, so
	// they fan out to the worker pool.
	runs, err := pool.Map(ctx, opts.Workers,
		[]netsim.Mode{netsim.ModeFairShare, netsim.ModeAnalytic},
		func(ctx context.Context, _ int, mode netsim.Mode) (*Fig4Result, error) {
			return fig4WithMode(ctx, opts, netsim.Config{Mode: mode})
		})
	if err != nil {
		return nil, err
	}
	fair, analytic := runs[0], runs[1]
	return &NetsimModeResult{
		FairShareError: fair.Score.MeanRelError,
		AnalyticError:  analytic.Score.MeanRelError,
		FairShareWall:  fair.SimWall,
		AnalyticWall:   analytic.SimWall,
	}, nil
}

// Report renders A1.
func (r *NetsimModeResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "A1 — netsim fluid fair-share vs analytic mode (Fig. 4 workload)\n")
	fmt.Fprintf(&sb, "  %-12s %-18s %s\n", "mode", "timeline error", "sim wall")
	fmt.Fprintf(&sb, "  %-12s %-18s %v\n", "fair-share", fmtPct(r.FairShareError), r.FairShareWall.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %-12s %-18s %v\n", "analytic", fmtPct(r.AnalyticError), r.AnalyticWall.Round(time.Millisecond))
	return sb.String()
}

// SplitterResult compares BOCD against the naive gap-threshold splitter
// (ablation A2).
type SplitterResult struct {
	PairsEvaluated int
	// Mean absolute relative error of the detected step count per DP pair.
	BOCDStepCountErr, NaiveStepCountErr float64
}

// AblationStepSplitter simulates one job and, for every DP pair, compares
// the number of steps found by the BOCD splitter and by a naive
// 5×-median-gap threshold against the true step count in the window.
// The naive splitter fragments DP bursts (bucket chains pause longer than
// the median gap) while BOCD's run-length posterior plus the separation
// guard track the two-regime structure.
func AblationStepSplitter(ctx context.Context, opts Options) (*SplitterResult, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nodes := scaleInt(16, opts.Scale, 8)
	topoSpec := topology.Spec{Nodes: nodes, NodesPerLeaf: 8, Spines: 4}
	jobs, err := platform.PlanJobs(topoSpec, []platform.JobPlan{
		{Nodes: nodes, TargetStep: 5 * time.Second},
	}, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: A2: %w", err)
	}
	res, err := platform.Run(platform.Scenario{
		Name: "a2", Topo: topoSpec, Jobs: jobs, Horizon: 60 * time.Second,
		Collector: erspan.Config{TimeJitter: 2 * time.Microsecond, Seed: opts.Seed},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: A2: %w", err)
	}
	tj := res.Truth.Jobs[0]

	// True complete steps within the horizon (per stage; use rank 0's).
	trueSteps := len(tj.Steps[tj.Addrs[0]])
	if trueSteps == 0 {
		return nil, fmt.Errorf("experiments: A2: no true steps")
	}

	byPair := flow.GroupByPair(res.Records)
	// Fold pairs in sorted order so the float error sums are reproducible
	// run to run (map iteration order is not).
	pairs := make([]flow.Pair, 0, len(byPair))
	for pair := range byPair {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	out := &SplitterResult{}
	for _, pair := range pairs {
		recs := byPair[pair]
		if tj.Pairs[pair] != truth.PairDP || len(recs) < 8 {
			continue
		}
		times := make([]time.Time, len(recs))
		for i, r := range recs {
			times[i] = r.Start
		}
		nBOCD := len(bocd.SplitTimes(times, bocd.SplitConfig{}))
		nNaive := len(bocd.NaiveSplitTimes(times, 5))
		out.PairsEvaluated++
		out.BOCDStepCountErr += relErr(nBOCD, trueSteps)
		out.NaiveStepCountErr += relErr(nNaive, trueSteps)
	}
	if out.PairsEvaluated > 0 {
		out.BOCDStepCountErr /= float64(out.PairsEvaluated)
		out.NaiveStepCountErr /= float64(out.PairsEvaluated)
	}
	return out, nil
}

func relErr(got, want int) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(want)
}

// Report renders A2.
func (r *SplitterResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "A2 — BOCD vs naive gap-threshold step splitting (%d DP pairs)\n", r.PairsEvaluated)
	fmt.Fprintf(&sb, "  %-22s %s\n", "splitter", "mean step-count error")
	fmt.Fprintf(&sb, "  %-22s %s\n", "BOCD (+sep. guard)", fmtPct(r.BOCDStepCountErr))
	fmt.Fprintf(&sb, "  %-22s %s\n", "naive 5x median", fmtPct(r.NaiveStepCountErr))
	return sb.String()
}

// RingCountResult compares refinement repair across collective ring counts
// (ablation A3).
type RingCountResult struct {
	Rows []RingCountRow
}

// RingCountRow is one ring-count configuration's accuracy.
type RingCountRow struct {
	Rings               int
	AccWithout, AccWith float64
	PairsEvaluated      int
}

// AblationRingCount measures pair-classification accuracy with and without
// refinement for jobs using 1, 2 and 4 collective rings, under a short
// truncating window. A single ring leaves each DP group a bare cycle:
// correlated misclassifications can disconnect it and the transitive
// refinement cannot repair the lost pairs; multi-ring collectives densify
// the DP graph and keep refinement at 100%.
func AblationRingCount(ctx context.Context, opts Options) (*RingCountResult, error) {
	opts = opts.withDefaults()
	nodes := scaleInt(32, opts.Scale, 16)
	ringCounts := []int{1, 2, 4}
	const runs = 3

	// Every (ring count, run) cell is an independent simulation, so the
	// whole grid fans out to the worker pool; the per-ring fold below sums
	// run results in run order, matching the sequential nesting exactly.
	type cellResult struct {
		accWith, accWithout float64
		pairs               int
		evaluated           bool
	}
	type cellSpec struct{ rings, run int }
	var cells []cellSpec
	for _, rings := range ringCounts {
		for run := 0; run < runs; run++ {
			cells = append(cells, cellSpec{rings, run})
		}
	}
	results, err := pool.Map(ctx, opts.Workers, cells,
		func(ctx context.Context, _ int, cell cellSpec) (cellResult, error) {
			topoSpec := topology.Spec{Nodes: nodes, NodesPerLeaf: 8, Spines: 4}
			jobs, err := platform.PlanJobs(topoSpec, []platform.JobPlan{
				{Nodes: nodes, TargetStep: 20 * time.Second},
			}, opts.Seed+int64(cell.run)*31)
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: A3: %w", err)
			}
			jobs[0].Rings = cell.rings
			jobs[0].FP32GradReduce = true
			res, err := platform.Run(platform.Scenario{
				Name: "a3", Topo: topoSpec, Jobs: jobs, Horizon: 2 * time.Minute,
				Collector: erspan.Config{
					LossProb:     0.06,
					AggregateGap: 2 * time.Millisecond,
					Seed:         opts.Seed + int64(cell.run),
				},
			})
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: A3: %w", err)
			}
			records := res.Window(40*time.Second, time.Minute)
			perJob := jobrec.SplitRecords(records, jobrec.Recognize(records, res.Topo, jobrec.Config{}))
			if len(perJob) == 0 {
				return cellResult{}, nil
			}
			tj := res.Truth.Jobs[0]
			with := pairAccuracy(parallel.Identify(perJob[0], parallel.Config{}).Types, tj)
			without := pairAccuracy(parallel.Identify(perJob[0], parallel.Config{DisableRefinement: true}).Types, tj)
			return cellResult{
				accWith:    with.Accuracy(),
				accWithout: without.Accuracy(),
				pairs:      with.Total,
				evaluated:  true,
			}, nil
		})
	if err != nil {
		return nil, err
	}

	out := &RingCountResult{}
	for ri, rings := range ringCounts {
		var accWith, accWithout float64
		var pairs int
		for run := 0; run < runs; run++ {
			cell := results[ri*runs+run]
			if !cell.evaluated {
				continue
			}
			accWith += cell.accWith
			accWithout += cell.accWithout
			pairs += cell.pairs
		}
		out.Rows = append(out.Rows, RingCountRow{
			Rings:          rings,
			AccWith:        accWith / runs,
			AccWithout:     accWithout / runs,
			PairsEvaluated: pairs,
		})
	}
	return out, nil
}

// Report renders A3.
func (r *RingCountResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "A3 — collective ring count vs refinement repair (1-min truncating window)\n")
	fmt.Fprintf(&sb, "  %-8s %-16s %-16s %s\n", "rings", "w/o refinement", "with refinement", "pairs")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-8d %-16s %-16s %d\n",
			row.Rings, fmtPct(row.AccWithout), fmtPct(row.AccWith), row.PairsEvaluated)
	}
	return sb.String()
}
