package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/erspan"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/pool"
	"github.com/llmprism/llmprism/internal/topology"
)

// Table1Config parameterizes the parallelism-identification experiment.
type Table1Config struct {
	// Jobs is the number of independent 1,024-GPU jobs to average over
	// (the paper uses 5).
	Jobs int
	// NodesPerJob is the servers per job (128 = 1,024 GPUs).
	NodesPerJob int
	// Windows are the flow-window lengths of the table columns.
	Windows []time.Duration
	// TargetStep is the per-job training step duration; the paper-scale
	// jobs take tens of seconds per step, which is what makes 1-minute
	// windows hold only a handful of steps.
	TargetStep time.Duration
}

func defaultTable1Config(opts Options) Table1Config {
	return Table1Config{
		Jobs:        scaleInt(5, opts.Scale, 1),
		NodesPerJob: scaleInt(128, opts.Scale, 16),
		Windows: []time.Duration{
			time.Minute, 3 * time.Minute, 5 * time.Minute, 10 * time.Minute,
		},
		TargetStep: 20 * time.Second,
	}
}

// Table1Row is one window-length column of Table I.
type Table1Row struct {
	Window         time.Duration
	AccWithout     float64 // LLMPrism w/o refinement
	AccWith        float64 // full LLMPrism
	PairsEvaluated int
}

// Table1Result is the full table.
type Table1Result struct {
	Config  Table1Config
	Rows    []Table1Row
	SimWall time.Duration
}

// Table1 reproduces the paper's Table I: classification accuracy of
// communication pairs (DP vs PP) over windows of increasing length, with
// and without the DP-transitivity noise refinement. Jobs are simulated
// independently (matching the paper's five tenant jobs) and accuracies are
// averaged.
//
// The dominant error source is window truncation: a window edge that cuts
// through a DP collective leaves a step whose surviving flows show a
// single distinct size, voting the pair toward PP. Short windows hold few
// steps, so the per-pair mode is fragile; refinement repairs every such
// pair through the DP graph's connected components.
func Table1(ctx context.Context, cfg Table1Config, opts Options) (*Table1Result, error) {
	opts = opts.withDefaults()
	if cfg.Jobs == 0 {
		cfg = defaultTable1Config(opts)
	}
	maxWindow := cfg.Windows[len(cfg.Windows)-1]
	const offset = 45 * time.Second
	horizon := offset + maxWindow + 30*time.Second

	result := &Table1Result{Config: cfg}
	simStart := time.Now()

	// The tenant jobs are simulated independently with per-job seeds, so
	// they fan out to the worker pool; each returns its per-window rows and
	// the fold below sums them in job order, bit-identical to a sequential
	// loop.
	jobIdx := make([]int, cfg.Jobs)
	for i := range jobIdx {
		jobIdx[i] = i
	}
	perJobRows, err := pool.Map(ctx, opts.Workers, jobIdx,
		func(ctx context.Context, _ int, job int) ([]Table1Row, error) {
			topoSpec := topology.Spec{Nodes: cfg.NodesPerJob, NodesPerLeaf: 8, Spines: 8}
			jobs, err := platform.PlanJobs(topoSpec, []platform.JobPlan{
				{Nodes: cfg.NodesPerJob, TargetStep: cfg.TargetStep},
			}, opts.Seed+int64(job)*101)
			if err != nil {
				return nil, fmt.Errorf("experiments: table1: %w", err)
			}
			// Production collection regime: the collector aggregates each
			// queue pair's chunk stream into per-phase records, gradients
			// reduce at fp32 (so the two phase records differ in size), and
			// export datagrams are occasionally lost. Losing one of a step's
			// two phase records leaves a single distinct size — the DP→PP
			// noise the refinement pass exists to repair (§IV-B).
			for i := range jobs {
				jobs[i].FP32GradReduce = true
			}
			res, err := platform.Run(platform.Scenario{
				Name:    fmt.Sprintf("table1-job%d", job),
				Topo:    topoSpec,
				Jobs:    jobs,
				Horizon: horizon,
				Collector: erspan.Config{
					LossProb:     0.06,
					TimeJitter:   2 * time.Microsecond,
					AggregateGap: 2 * time.Millisecond,
					Seed:         opts.Seed + int64(job),
				},
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: table1: %w", err)
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			tj := res.Truth.Jobs[0]

			rows := make([]Table1Row, len(cfg.Windows))
			for wi, window := range cfg.Windows {
				records := res.Window(offset, window)
				perJob := jobrec.SplitRecords(records, jobrec.Recognize(records, res.Topo, jobrec.Config{}))
				if len(perJob) == 0 {
					continue
				}
				jobRecs := perJob[0]

				with := parallel.Identify(jobRecs, parallel.Config{})
				without := parallel.Identify(jobRecs, parallel.Config{DisableRefinement: true})
				sWith := pairAccuracy(with.Types, tj)
				sWithout := pairAccuracy(without.Types, tj)

				rows[wi].Window = window
				rows[wi].AccWith = sWith.Accuracy()
				rows[wi].AccWithout = sWithout.Accuracy()
				rows[wi].PairsEvaluated = sWith.Total
			}
			return rows, nil
		})
	if err != nil {
		return nil, err
	}

	sums := make([]Table1Row, len(cfg.Windows))
	for _, rows := range perJobRows {
		for wi, row := range rows {
			if row.Window != 0 {
				sums[wi].Window = row.Window
			}
			sums[wi].AccWith += row.AccWith
			sums[wi].AccWithout += row.AccWithout
			sums[wi].PairsEvaluated += row.PairsEvaluated
		}
	}
	result.SimWall = time.Since(simStart)
	for _, row := range sums {
		row.AccWith /= float64(cfg.Jobs)
		row.AccWithout /= float64(cfg.Jobs)
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// Report renders the table in the paper's layout.
func (r *Table1Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "E2 (Table I) — parallelism identification accuracy (%d jobs × %d GPUs)\n",
		r.Config.Jobs, r.Config.NodesPerJob*8)
	fmt.Fprintf(&sb, "  %-28s", "Method")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%12s", fmt.Sprintf("%v Acc.", row.Window))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  %-28s", "LLMPrism w/o refinement")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%12s", fmtPct(row.AccWithout))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  %-28s", "LLMPrism")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%12s", fmtPct(row.AccWith))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  pairs evaluated per window: ")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%d ", row.PairsEvaluated)
	}
	fmt.Fprintf(&sb, "\n  wall: %v\n", r.SimWall.Round(time.Millisecond))
	return sb.String()
}
