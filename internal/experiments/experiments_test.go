package experiments

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The fast experiments run unconditionally (they are the -short coverage);
// the multi-second ones skip under -short and are exercised at full small
// scale by the default `go test ./...` run and by cmd/repro at paper scale.

func TestFig3SmallScale(t *testing.T) {
	res, err := Fig3(context.Background(), Options{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueJobs < 2 {
		t.Fatalf("too few jobs simulated: %d", res.TrueJobs)
	}
	if !res.Recognition.Perfect() {
		t.Errorf("recognition not perfect: %+v", res.Recognition)
	}
	if res.CrossMachineClusters <= res.JobClusters {
		t.Errorf("expected more rail clusters (%d) than job clusters (%d)",
			res.CrossMachineClusters, res.JobClusters)
	}
	if !strings.Contains(res.Report(), "perfect=true") {
		t.Error("report should state perfect recognition")
	}
}

func TestTable1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	// 32 nodes → PP=4, DP=8: with DP=4 the two collective rings share the
	// same undirected edges (stride 3 is the reverse of stride 1) and the
	// DP graph is a bare cycle that correlated noise can disconnect — the
	// A3 ablation's subject. DP=8 gives the refinement the density the
	// paper's 1,024-GPU jobs have.
	cfg := Table1Config{
		Jobs:        2,
		NodesPerJob: 32,
		Windows:     []time.Duration{75 * time.Second, 150 * time.Second},
		TargetStep:  8 * time.Second,
	}
	res, err := Table1(context.Background(), cfg, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PairsEvaluated == 0 {
			t.Errorf("window %v evaluated no pairs", row.Window)
		}
		if row.AccWith < row.AccWithout-1e-9 {
			t.Errorf("window %v: refinement hurt accuracy (%.4f < %.4f)",
				row.Window, row.AccWith, row.AccWithout)
		}
		if row.AccWith < 0.93 {
			t.Errorf("window %v: refined accuracy %.4f, want ~1", row.Window, row.AccWith)
		}
	}
	if !strings.Contains(res.Report(), "LLMPrism w/o refinement") {
		t.Error("report missing baseline row")
	}
}

// TestTable1TinyConcurrentMatchesSequential is the -short equivalent of the
// Table I test: a tiny two-job configuration whose per-job simulations fan
// out, asserting the concurrent rows are bit-identical to the sequential
// ones.
func TestTable1TinyConcurrentMatchesSequential(t *testing.T) {
	cfg := Table1Config{
		Jobs:        2,
		NodesPerJob: 16,
		Windows:     []time.Duration{45 * time.Second},
		TargetStep:  5 * time.Second,
	}
	seq, err := Table1(context.Background(), cfg, Options{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table1(context.Background(), cfg, Options{Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Errorf("concurrent rows diverge from sequential:\nseq %+v\npar %+v", seq.Rows, par.Rows)
	}
	if len(seq.Rows) != 1 || seq.Rows[0].PairsEvaluated == 0 {
		t.Errorf("degenerate tiny run: %+v", seq.Rows)
	}
}

func TestFig4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := Fig4(context.Background(), Options{Scale: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score.MatchedSteps == 0 {
		t.Fatal("no steps matched")
	}
	// At 10s steps the invisible tail is ~12ms → ~0.12% expected.
	if res.Score.MeanRelError > 0.003 {
		t.Errorf("mean reconstruction error %.4f%%, want <= 0.3%%", 100*res.Score.MeanRelError)
	}
	if res.Render == "" || !strings.Contains(res.Render, "D") {
		t.Error("timeline render missing DP paint")
	}
}

func TestFig5SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := Fig5(context.Background(), Options{Scale: 0.4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectedFlagged != len(res.Injected) {
		t.Errorf("injected flagged %d/%d; flagged set %v",
			res.InjectedFlagged, len(res.Injected), res.Flagged)
	}
	if res.DegradedP90 >= res.NormalP10 {
		t.Errorf("degraded band [%0.f, %0.f] not below healthy band [%0.f, %0.f]",
			res.DegradedP10, res.DegradedP90, res.NormalP10, res.NormalP90)
	}
	if !strings.Contains(res.Report(), "per-switch mean DP bandwidth") {
		t.Error("report missing series table")
	}
}

func TestDiagnosisSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := Diagnosis(context.Background(), Options{Scale: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StragglerJobDetected {
		t.Errorf("straggler not detected: %+v", res)
	}
	if !res.SlowGroupDetected {
		t.Errorf("slow DP group not detected: %+v", res)
	}
}

func TestAblationNetsimMode(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := AblationNetsimMode(context.Background(), Options{Scale: 0.15, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.FairShareError <= 0 || res.AnalyticError <= 0 {
		t.Errorf("degenerate errors: %+v", res)
	}
}

func TestAblationStepSplitter(t *testing.T) {
	res, err := AblationStepSplitter(context.Background(), Options{Scale: 1, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsEvaluated == 0 {
		t.Fatal("no pairs evaluated")
	}
	if res.BOCDStepCountErr > res.NaiveStepCountErr {
		t.Errorf("BOCD (%.4f) worse than naive (%.4f)", res.BOCDStepCountErr, res.NaiveStepCountErr)
	}
}

func TestAblationRingCount(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := AblationRingCount(context.Background(), Options{Scale: 0.5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AccWith < row.AccWithout-1e-9 {
			t.Errorf("rings=%d: refinement hurt accuracy", row.Rings)
		}
	}
}

// TestLocalizationMatrixShortGrid runs the localization scenario matrix on
// the reduced grid (the -short configuration: every scenario at 1x load,
// plus the historically weakest cell, fabric-link-degrade at 2x) and holds
// the fused cross-window ranking to the acceptance bar: every single-fault
// scenario must place the injected component at rank 1 in at least 80% of
// the windows where its corresponding alert fired, the multi-fault
// scenarios must recover at least half their faults within the top K, and
// the 2x fabric-link-degrade cell must beat the 67% top-1 the per-window
// ranking plateaued at before localization fusion. Unlike the paper-figure
// experiments this is not skipped in -short — it is the regression gate
// for the localization engine.
func TestLocalizationMatrixShortGrid(t *testing.T) {
	res, err := Localization(context.Background(), Options{Scale: 0.3, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("reduced grid rows = %d, want 8 (7 scenarios at 1x + fabric-link-degrade at 2x)", len(res.Rows))
	}
	var sawWeakestCell bool
	for _, row := range res.Rows {
		if row.Load != "1x" {
			if row.Scenario != "fabric-link-degrade" || row.Load != "2x" {
				t.Errorf("%s: reduced grid ran unexpected cell at load %s", row.Scenario, row.Load)
			}
		}
		if row.Score.Windows == 0 {
			t.Errorf("%s/%s: no window was scored (detectors never fired during the fault)", row.Scenario, row.Load)
			continue
		}
		if row.Scenario == "fabric-link-degrade" && row.Load == "2x" {
			sawWeakestCell = true
			if got := row.Score.Top1Rate(); got <= 0.67 {
				t.Errorf("fabric-link-degrade/2x: fused top-1 rate %.0f%% has regressed to the pre-fusion plateau (want > 67%%)", 100*got)
			}
		}
		if row.SingleFault {
			if got := row.Score.Top1Rate(); got < 0.8 {
				t.Errorf("%s/%s: top-1 rate %.0f%% < 80%% over %d scored windows",
					row.Scenario, row.Load, 100*got, row.Score.Windows)
			}
		} else if got := row.Score.Recall(); got < 0.5 {
			t.Errorf("%s/%s: top-%d recall %.0f%% < 50%%", row.Scenario, row.Load, res.K, 100*got)
		}
	}
	if !sawWeakestCell {
		t.Error("reduced grid missing the fabric-link-degrade 2x cell")
	}
	if !strings.Contains(res.Report(), "root-cause localization") {
		t.Error("report missing the localization table")
	}
}

func TestRunnerRegistryComplete(t *testing.T) {
	want := []string{"fig3", "table1", "fig4", "fig5", "diagnosis", "localize", "loss", "a1", "a2", "a3"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("registry names = %v, want %v", got, want)
	}
	for _, s := range All() {
		if s.Run == nil || s.Desc == "" {
			t.Errorf("spec %q incomplete", s.Name)
		}
	}
}

func TestRunnerUnknownName(t *testing.T) {
	if _, err := Run(context.Background(), []string{"fig3", "nope"}, Options{}, 2); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown name not rejected: %v", err)
	}
}

func TestRunnerCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, []string{"fig3"}, Options{Scale: 0.1}, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestRunnerConcurrentMatchesSequential runs a cheap experiment subset
// through the concurrent runner and asserts the outcomes are bit-identical
// to the sequential (workers=1) pass — the determinism guarantee the
// -workers flag of cmd/repro relies on. Wall-clock fields are zeroed before
// comparison; everything else must match exactly.
func TestRunnerConcurrentMatchesSequential(t *testing.T) {
	names := []string{"fig3", "a2"}
	opts := Options{Scale: 0.1, Seed: 21}
	seq, err := Run(context.Background(), names, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), names, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 || len(par) != 2 {
		t.Fatalf("outcomes = %d/%d, want 2/2", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("experiment %s failed: seq=%v par=%v", seq[i].Spec.Name, seq[i].Err, par[i].Err)
		}
		if seq[i].Spec.Name != par[i].Spec.Name {
			t.Fatalf("outcome order diverged: %s vs %s", seq[i].Spec.Name, par[i].Spec.Name)
		}
	}
	seqFig3 := *seq[0].Result.(*Fig3Result)
	parFig3 := *par[0].Result.(*Fig3Result)
	seqFig3.SimWall, seqFig3.AnalysisWall = 0, 0
	parFig3.SimWall, parFig3.AnalysisWall = 0, 0
	if !reflect.DeepEqual(seqFig3, parFig3) {
		t.Errorf("fig3 outcomes diverge:\nseq %+v\npar %+v", seqFig3, parFig3)
	}
	if !reflect.DeepEqual(seq[1].Result, par[1].Result) {
		t.Errorf("a2 outcomes diverge:\nseq %+v\npar %+v", seq[1].Result, par[1].Result)
	}
}
