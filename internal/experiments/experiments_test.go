package experiments

import (
	"strings"
	"testing"
	"time"
)

// Small scales keep these end-to-end experiment tests fast; the paper-scale
// numbers are produced by cmd/repro and the root benchmarks.

func TestFig3SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := Fig3(Options{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueJobs < 2 {
		t.Fatalf("too few jobs simulated: %d", res.TrueJobs)
	}
	if !res.Recognition.Perfect() {
		t.Errorf("recognition not perfect: %+v", res.Recognition)
	}
	if res.CrossMachineClusters <= res.JobClusters {
		t.Errorf("expected more rail clusters (%d) than job clusters (%d)",
			res.CrossMachineClusters, res.JobClusters)
	}
	if !strings.Contains(res.Report(), "perfect=true") {
		t.Error("report should state perfect recognition")
	}
}

func TestTable1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	// 32 nodes → PP=4, DP=8: with DP=4 the two collective rings share the
	// same undirected edges (stride 3 is the reverse of stride 1) and the
	// DP graph is a bare cycle that correlated noise can disconnect — the
	// A3 ablation's subject. DP=8 gives the refinement the density the
	// paper's 1,024-GPU jobs have.
	cfg := Table1Config{
		Jobs:        2,
		NodesPerJob: 32,
		Windows:     []time.Duration{75 * time.Second, 150 * time.Second},
		TargetStep:  8 * time.Second,
	}
	res, err := Table1(cfg, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PairsEvaluated == 0 {
			t.Errorf("window %v evaluated no pairs", row.Window)
		}
		if row.AccWith < row.AccWithout-1e-9 {
			t.Errorf("window %v: refinement hurt accuracy (%.4f < %.4f)",
				row.Window, row.AccWith, row.AccWithout)
		}
		if row.AccWith < 0.93 {
			t.Errorf("window %v: refined accuracy %.4f, want ~1", row.Window, row.AccWith)
		}
	}
	if !strings.Contains(res.Report(), "LLMPrism w/o refinement") {
		t.Error("report missing baseline row")
	}
}

func TestFig4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := Fig4(Options{Scale: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score.MatchedSteps == 0 {
		t.Fatal("no steps matched")
	}
	// At 10s steps the invisible tail is ~12ms → ~0.12% expected.
	if res.Score.MeanRelError > 0.003 {
		t.Errorf("mean reconstruction error %.4f%%, want <= 0.3%%", 100*res.Score.MeanRelError)
	}
	if res.Render == "" || !strings.Contains(res.Render, "D") {
		t.Error("timeline render missing DP paint")
	}
}

func TestFig5SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := Fig5(Options{Scale: 0.4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectedFlagged != len(res.Injected) {
		t.Errorf("injected flagged %d/%d; flagged set %v",
			res.InjectedFlagged, len(res.Injected), res.Flagged)
	}
	if res.DegradedP90 >= res.NormalP10 {
		t.Errorf("degraded band [%0.f, %0.f] not below healthy band [%0.f, %0.f]",
			res.DegradedP10, res.DegradedP90, res.NormalP10, res.NormalP90)
	}
	if !strings.Contains(res.Report(), "per-switch mean DP bandwidth") {
		t.Error("report missing series table")
	}
}

func TestDiagnosisSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := Diagnosis(Options{Scale: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StragglerJobDetected {
		t.Errorf("straggler not detected: %+v", res)
	}
	if !res.SlowGroupDetected {
		t.Errorf("slow DP group not detected: %+v", res)
	}
}

func TestAblationNetsimMode(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := AblationNetsimMode(Options{Scale: 0.15, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.FairShareError <= 0 || res.AnalyticError <= 0 {
		t.Errorf("degenerate errors: %+v", res)
	}
}

func TestAblationStepSplitter(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := AblationStepSplitter(Options{Scale: 1, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsEvaluated == 0 {
		t.Fatal("no pairs evaluated")
	}
	if res.BOCDStepCountErr > res.NaiveStepCountErr {
		t.Errorf("BOCD (%.4f) worse than naive (%.4f)", res.BOCDStepCountErr, res.NaiveStepCountErr)
	}
}

func TestAblationRingCount(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res, err := AblationRingCount(Options{Scale: 0.5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AccWith < row.AccWithout-1e-9 {
			t.Errorf("rings=%d: refinement hurt accuracy", row.Rings)
		}
	}
}
