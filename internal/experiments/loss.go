package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/erspan"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/pool"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/truth"
)

// Collector-loss geometry: the sweep reuses the localization matrix's
// window/fault layout so its cells are comparable to L1's, and places the
// leaf mirror blackout after the coverage baseline has formed (the guard's
// MinBaseline healthy windows).
const (
	lossBlackoutFrom  = 60 * time.Second
	lossBlackoutUntil = 120 * time.Second
	// lossBlackoutLeaves is how many of the fabric's 8 leaves lose their
	// mirror session: 6 leaves cover two full tenants plus part of the
	// third, collapsing the affected windows' flow volume well below the
	// guard's degraded threshold.
	lossBlackoutLeaves = 6
)

// LossRow is one scenario × loss-level cell of the collector-loss sweep.
type LossRow struct {
	// Scenario names the cell's fault layout: "no-fault", "spine-degrade"
	// or "leaf-blackout".
	Scenario string
	// Loss is the i.i.d. record-loss probability (duplication runs at the
	// same rate, as retransmitting exporters do under congestion).
	Loss float64
	// SingleFault marks cells with one injected root cause — the rows the
	// top-1 acceptance bar applies to.
	SingleFault bool
	// Windows counts the monitor's emitted windows; Degraded the ones the
	// coverage guard flagged.
	Windows, Degraded int
	// DegradedAlerts counts alerts surfaced on degraded windows — the
	// guard's contract makes this zero.
	DegradedAlerts int
	// AlertKinds is the sorted distinct set of alert kinds that fired
	// across the cell's windows.
	AlertKinds []diagnose.AlertKind
	// Observed and Lost count collector activity (Lost includes Blacked).
	Observed, Lost, Blacked uint64
	// Score is the fused localization accuracy against the injected
	// schedule (zero-valued on no-fault and blackout cells).
	Score truth.LocalizationScore
}

// LossResult is the collector-loss sweep outcome.
type LossResult struct {
	K       int
	Rows    []LossRow
	SimWall time.Duration
}

// lossCellSpec declares one cell of the sweep matrix.
type lossCellSpec struct {
	scenario string
	loss     float64
	single   bool
	faults   func(*topology.Topology) faults.Schedule
	blackout bool
}

// CollectorLoss is the robustness experiment: the same multi-tenant
// platform and spine-degrade fault as the localization matrix, swept across
// collector imperfection levels — i.i.d. record loss with matching
// duplication, and a multi-leaf mirror blackout — analyzed through the
// deployed monitor path (chronic suppression, coverage guard, fused
// localization). It scores what degrades and what must not: detection and
// localization hold at small loss, a no-fault platform gains no new alert
// kinds from loss alone, and a mirror blackout surfaces as degraded-window
// coverage instead of false alerts. Scale < 1 drops the middle loss level
// (the -short grid).
func CollectorLoss(ctx context.Context, opts Options) (*LossResult, error) {
	opts = opts.withDefaults()
	spineDegrade := func(topo *topology.Topology) faults.Schedule {
		return faults.Schedule{Faults: []faults.Fault{{
			Kind: faults.KindSwitchDegrade, Switch: topo.SpineSwitch(2),
			At: locFaultFrom, Until: locFaultUntil, Factor: 0.07,
		}}}
	}
	levels := []float64{0, 0.02, 0.05}
	if opts.Scale < 1 {
		levels = []float64{0, 0.05}
	}
	var cells []lossCellSpec
	for _, scenario := range []string{"no-fault", "spine-degrade"} {
		for _, p := range levels {
			c := lossCellSpec{scenario: scenario, loss: p}
			if scenario == "spine-degrade" {
				c.single = true
				c.faults = spineDegrade
			}
			cells = append(cells, c)
		}
	}
	cells = append(cells, lossCellSpec{scenario: "leaf-blackout", blackout: true})

	start := time.Now()
	rows, err := pool.Map(ctx, opts.Workers, cells,
		func(ctx context.Context, i int, c lossCellSpec) (LossRow, error) {
			return lossCell(ctx, c, i, opts)
		})
	if err != nil {
		return nil, err
	}
	return &LossResult{K: locTopK, Rows: rows, SimWall: time.Since(start)}, nil
}

// lossCell simulates and scores one cell. All randomness derives from
// opts.Seed and the cell index, so the sweep is bit-identical for any
// worker count.
func lossCell(ctx context.Context, c lossCellSpec, idx int, opts Options) (LossRow, error) {
	row := LossRow{Scenario: c.scenario, Loss: c.loss, SingleFault: c.single}
	if err := ctx.Err(); err != nil {
		return row, err
	}
	spec := topology.Spec{Nodes: 24, NodesPerLeaf: 3, Spines: 8}
	var plans []platform.JobPlan
	for used := 0; used+8 <= spec.Nodes; used += 8 {
		plans = append(plans, platform.JobPlan{Nodes: 8, TargetStep: locStep})
	}
	jobs, err := platform.PlanJobs(spec, plans, opts.Seed+int64(idx)*104729)
	if err != nil {
		return row, fmt.Errorf("experiments: loss %s/%g: %w", c.scenario, c.loss, err)
	}
	collector := erspan.Config{
		LossProb:      c.loss,
		DuplicateProb: c.loss,
		Seed:          opts.Seed + int64(idx)*7919,
	}
	if c.blackout {
		topo, err := topology.New(spec)
		if err != nil {
			return row, fmt.Errorf("experiments: loss %s: %w", c.scenario, err)
		}
		for l := 0; l < lossBlackoutLeaves; l++ {
			collector.Blackouts = append(collector.Blackouts, erspan.Blackout{
				Switch: topo.LeafSwitch(l),
				From:   lossBlackoutFrom, Until: lossBlackoutUntil,
			})
		}
	}
	sched := faults.Schedule{}
	if c.faults != nil {
		topo, err := topology.New(spec)
		if err != nil {
			return row, fmt.Errorf("experiments: loss %s: %w", c.scenario, err)
		}
		sched = c.faults(topo)
	}
	res, err := platform.Run(platform.Scenario{
		Name: "loss-" + c.scenario, Topo: spec, Jobs: jobs,
		Faults: sched, Horizon: locHorizon, Collector: collector,
	})
	if err != nil {
		return row, fmt.Errorf("experiments: loss %s/%g: %w", c.scenario, c.loss, err)
	}
	row.Observed, row.Lost, row.Blacked = res.Observed, res.Lost, res.Blacked

	// The deployed analysis path, not the record-path mirror: the monitor
	// carries chronic suppression, the coverage guard and fused
	// localization across the cell's windows exactly as production would.
	analyzer := llmprism.New(
		llmprism.WithSigmaK(locSigmaK),
		llmprism.WithSwitchBucket(locBucket),
		llmprism.WithSwitchTiers(func(sw flow.SwitchID) int {
			if res.Topo.IsSpine(sw) {
				return 1
			}
			return 0
		}),
		llmprism.WithGroupRails(func(a flow.Addr) int {
			if res.Topo.GPUOf(a) == res.Topo.Spec().GPUsPerNode-1 {
				return 1
			}
			return 0
		}),
		llmprism.WithLocalization(llmprism.LocalizationConfig{}),
		llmprism.WithLossTolerantDiagnosis(3),
	)
	m, err := llmprism.NewMonitor(analyzer, res.Topo, locWindow,
		llmprism.WithAnchor(res.Truth.Epoch),
		llmprism.WithChronicSuppression(llmprism.IncidentConfig{}),
		llmprism.WithCoverageGuard(llmprism.CoverageConfig{}))
	if err != nil {
		return row, fmt.Errorf("experiments: loss %s/%g: %w", c.scenario, c.loss, err)
	}
	var reports []*llmprism.Report
	for off := time.Duration(0); off+locWindow <= locHorizon; off += locWindow {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		got, err := m.FeedContext(ctx, res.Window(off, locWindow))
		if err != nil {
			return row, fmt.Errorf("experiments: loss %s/%g: %w", c.scenario, c.loss, err)
		}
		reports = append(reports, got...)
	}
	tail, err := m.Flush()
	if err != nil {
		return row, fmt.Errorf("experiments: loss %s/%g: %w", c.scenario, c.loss, err)
	}
	reports = append(reports, tail...)

	kinds := make(map[diagnose.AlertKind]bool)
	var windows []truth.LocalizedWindow
	for _, r := range reports {
		row.Windows++
		var alerts []diagnose.Alert
		for _, j := range r.Jobs {
			alerts = append(alerts, j.Alerts...)
		}
		alerts = append(alerts, r.SwitchAlerts...)
		for _, a := range alerts {
			kinds[a.Kind] = true
		}
		if r.Coverage.Degraded {
			row.Degraded++
			row.DegradedAlerts += len(alerts)
			continue // degraded windows carry no diagnosis to score
		}
		windows = append(windows, truth.LocalizedWindow{
			Start:    r.Window.Start,
			End:      r.Window.End,
			Alerts:   alerts,
			Suspects: r.Suspects,
			Fused:    r.FusedSuspects,
		})
	}
	for k := range kinds {
		row.AlertKinds = append(row.AlertKinds, k)
	}
	sort.Slice(row.AlertKinds, func(i, j int) bool { return row.AlertKinds[i] < row.AlertKinds[j] })
	if len(sched.Faults) > 0 {
		row.Score = truth.ScoreLocalization(res.Topo, sched, res.Truth.Epoch, windows, locTopK)
	}
	return row, nil
}

// Report renders the sweep as the collector-robustness table.
func (r *LossResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "R1 — diagnosis under collector loss (top-%d)\n", r.K)
	fmt.Fprintf(&sb, "  %-13s %5s %4s %4s %6s %6s %6s  %s\n",
		"scenario", "loss", "win", "degr", "lost", "top1", "top-k", "alert kinds")
	for _, row := range r.Rows {
		lostFrac := 0.0
		if row.Observed > 0 {
			lostFrac = float64(row.Lost) / float64(row.Observed)
		}
		top1, topk := "-", "-"
		if row.Score.FaultWindows > 0 {
			top1 = fmt.Sprintf("%.0f%%", 100*row.Score.Top1Rate())
			topk = fmt.Sprintf("%.0f%%", 100*row.Score.TopKRate())
		}
		var kinds []string
		for _, k := range row.AlertKinds {
			kinds = append(kinds, k.String())
		}
		fmt.Fprintf(&sb, "  %-13s %4.0f%% %4d %4d %5.1f%% %6s %6s  %s\n",
			row.Scenario, 100*row.Loss, row.Windows, row.Degraded,
			100*lostFrac, top1, topk, strings.Join(kinds, ", "))
	}
	fmt.Fprintf(&sb, "  (degr = coverage-degraded windows: alerts withheld, trackers frozen; bar: single-fault top1 >= 80%% per loss level)\n")
	fmt.Fprintf(&sb, "  wall: sim+analysis %v\n", r.SimWall.Round(time.Millisecond))
	return sb.String()
}
