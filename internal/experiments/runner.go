package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/pool"
)

// Result is the common reporting surface of every experiment outcome.
type Result interface {
	// Report renders the outcome as the paper-style text table/series.
	Report() string
}

// Spec is one runnable experiment of the registry.
type Spec struct {
	// Name is the CLI-facing identifier (fig3, table1, ..., a3).
	Name string
	// Desc is the one-line description shown above the report.
	Desc string
	// Run executes the experiment. It must derive all randomness from
	// Options.Seed so concurrent runs reproduce sequential ones.
	Run func(context.Context, Options) (Result, error)
}

// All returns the experiment registry in presentation order (E1–E5, then
// the ablations A1–A3).
func All() []Spec {
	return []Spec{
		{"fig3", "E1: job recognition (Fig. 3)",
			func(ctx context.Context, o Options) (Result, error) { return Fig3(ctx, o) }},
		{"table1", "E2: parallelism identification (Table I)",
			func(ctx context.Context, o Options) (Result, error) { return Table1(ctx, Table1Config{}, o) }},
		{"fig4", "E3: timeline reconstruction (§V-C, Fig. 4)",
			func(ctx context.Context, o Options) (Result, error) { return Fig4(ctx, o) }},
		{"fig5", "E4: switch-level diagnosis (Fig. 5)",
			func(ctx context.Context, o Options) (Result, error) { return Fig5(ctx, o) }},
		{"diagnosis", "E5: cross-step / cross-group diagnosis (§V-D)",
			func(ctx context.Context, o Options) (Result, error) { return Diagnosis(ctx, o) }},
		{"localize", "L1: root-cause localization vs injected faults",
			func(ctx context.Context, o Options) (Result, error) { return Localization(ctx, o) }},
		{"loss", "R1: diagnosis under collector loss and mirror blackouts",
			func(ctx context.Context, o Options) (Result, error) { return CollectorLoss(ctx, o) }},
		{"a1", "A1: netsim mode ablation",
			func(ctx context.Context, o Options) (Result, error) { return AblationNetsimMode(ctx, o) }},
		{"a2", "A2: step-splitter ablation",
			func(ctx context.Context, o Options) (Result, error) { return AblationStepSplitter(ctx, o) }},
		{"a3", "A3: ring-count ablation",
			func(ctx context.Context, o Options) (Result, error) { return AblationRingCount(ctx, o) }},
	}
}

// Names lists the registry's experiment names in order.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Outcome is one experiment's result within a Run.
type Outcome struct {
	Spec   Spec
	Result Result
	// Err is the experiment's own failure, if any; Run reports it here
	// instead of aborting the sibling experiments.
	Err error
	// Wall is the experiment's wall-clock time inside the pool (it
	// overlaps with other experiments' when workers > 1).
	Wall time.Duration
}

// resolve maps experiment names (empty = all) to registry specs, in
// registry order and deduplicated. Unknown names error.
func resolve(names []string) ([]Spec, error) {
	registry := All()
	if len(names) == 0 {
		return registry, nil
	}
	byName := make(map[string]Spec, len(registry))
	for _, s := range registry {
		byName[strings.ToLower(s.Name)] = s
	}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		s, ok := byName[strings.ToLower(name)]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %s)",
				name, strings.Join(Names(), ", "))
		}
		seen[s.Name] = true
	}
	var selected []Spec
	for _, s := range registry {
		if seen[s.Name] {
			selected = append(selected, s)
		}
	}
	return selected, nil
}

// innerBudget divides the worker budget between the experiment-level pool
// and each experiment's internal fan-out so total concurrency stays within
// workers rather than multiplying to workers².
func innerBudget(workers, experiments int) int {
	if experiments <= 1 {
		return workers
	}
	inner := pool.Clamp(workers) / experiments
	if inner < 1 {
		inner = 1
	}
	return inner
}

// RunStream executes the named experiments (empty names = the full
// registry) concurrently on up to workers goroutines, invoking handle once
// per outcome in registry order as soon as that outcome and all before it
// have finished — so a long tail experiment doesn't hold completed reports
// hostage. The worker budget is shared between the experiment-level pool
// and each experiment's internal fan-out (Options.Workers is derived from
// it; any caller-set value is overridden).
//
// The experiments are mutually independent and seeded only from opts.Seed,
// so the outcomes are bit-identical to a sequential pass; only the Wall
// fields vary. Unknown names fail before anything runs. A canceled ctx
// stops scheduling and returns ctx.Err() after handling the completed
// prefix.
func RunStream(ctx context.Context, names []string, opts Options, workers int, handle func(Outcome)) error {
	selected, err := resolve(names)
	if err != nil {
		return err
	}
	opts.Workers = innerBudget(workers, len(selected))

	outcomes := make([]Outcome, len(selected))
	done := make([]chan struct{}, len(selected))
	for i := range done {
		done[i] = make(chan struct{})
	}
	poolErr := make(chan error, 1)
	go func() {
		_, err := pool.Map(ctx, workers, selected,
			func(ctx context.Context, i int, s Spec) (struct{}, error) {
				start := time.Now()
				res, rerr := s.Run(ctx, opts)
				outcomes[i] = Outcome{Spec: s, Result: res, Err: rerr, Wall: time.Since(start)}
				close(done[i])
				return struct{}{}, nil
			})
		poolErr <- err
	}()

	next := 0
	var runErr error
	for next < len(selected) {
		select {
		case <-done[next]:
			handle(outcomes[next])
			next++
		case runErr = <-poolErr:
			// Pool stopped (cancellation); hand over whatever contiguous
			// prefix still completed, then stop.
			for ; next < len(selected); next++ {
				select {
				case <-done[next]:
					handle(outcomes[next])
					continue
				default:
				}
				break
			}
			return runErr
		}
	}
	return <-poolErr
}

// Run is RunStream collecting the outcomes into a slice. On cancellation
// it returns the completed prefix alongside ctx's error.
func Run(ctx context.Context, names []string, opts Options, workers int) ([]Outcome, error) {
	var out []Outcome
	err := RunStream(ctx, names, opts, workers, func(o Outcome) { out = append(out, o) })
	return out, err
}
