package experiments

import (
	"context"
	"strings"
	"testing"

	"github.com/llmprism/llmprism/internal/core/diagnose"
)

// TestCollectorLossSweepShortGrid runs the collector-robustness sweep on
// the reduced grid (loss levels 0% and 5%) and holds it to the acceptance
// bars: the spine-degrade cells keep fused top-1 localization at >= 80%
// through 5% i.i.d. loss, loss alone introduces no alert kind the
// loss-free no-fault cell did not already show, and the leaf mirror
// blackout surfaces as coverage-degraded windows carrying zero alerts —
// suppressed evidence, not false diagnosis. Like the localization matrix,
// this is a regression gate and not skipped under -short.
func TestCollectorLossSweepShortGrid(t *testing.T) {
	res, err := CollectorLoss(context.Background(), Options{Scale: 0.3, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("reduced grid rows = %d, want 5 (2 scenarios x 2 loss levels + blackout)", len(res.Rows))
	}

	rows := make(map[string]LossRow)
	baseKinds := make(map[diagnose.AlertKind]bool)
	for _, row := range res.Rows {
		rows[row.Scenario+"@"+trimFloat(row.Loss)] = row
		if row.Windows == 0 {
			t.Errorf("%s/%g: no windows analyzed", row.Scenario, row.Loss)
		}
		if row.DegradedAlerts != 0 {
			t.Errorf("%s/%g: %d alerts surfaced on degraded windows", row.Scenario, row.Loss, row.DegradedAlerts)
		}
		if row.Scenario == "no-fault" && row.Loss == 0 {
			for _, k := range row.AlertKinds {
				baseKinds[k] = true
			}
		}
	}

	// Loss must not invent alert kinds on a healthy platform.
	for _, key := range []string{"no-fault@0.05"} {
		row, ok := rows[key]
		if !ok {
			t.Fatalf("missing cell %s", key)
		}
		for _, k := range row.AlertKinds {
			if !baseKinds[k] {
				t.Errorf("%s: loss introduced new false-positive alert kind %v", key, k)
			}
		}
	}

	// Detection and localization hold through the swept loss levels.
	for _, key := range []string{"spine-degrade@0", "spine-degrade@0.05"} {
		row, ok := rows[key]
		if !ok {
			t.Fatalf("missing cell %s", key)
		}
		if row.Score.Windows == 0 {
			t.Errorf("%s: no window was scored (detectors never fired during the fault)", key)
			continue
		}
		if got := row.Score.Top1Rate(); got < 0.8 {
			t.Errorf("%s: fused top-1 rate %.0f%% < 80%% over %d scored windows", key, 100*got, row.Score.Windows)
		}
	}

	// The mirror blackout must be flagged by coverage, silently to the
	// alerting surface.
	blk, ok := rows["leaf-blackout@0"]
	if !ok {
		t.Fatal("missing blackout cell")
	}
	if blk.Degraded < 2 {
		t.Errorf("blackout degraded windows = %d, want >= 2", blk.Degraded)
	}
	if blk.Blacked == 0 {
		t.Error("blackout cell dropped no records")
	}

	if !strings.Contains(res.Report(), "collector loss") {
		t.Error("report missing the loss table")
	}
}

func trimFloat(f float64) string {
	switch f {
	case 0:
		return "0"
	case 0.02:
		return "0.02"
	case 0.05:
		return "0.05"
	}
	return "?"
}
