package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/pool"
	"github.com/llmprism/llmprism/internal/topology"
)

// DiagnosisResult is the cross-step / cross-group diagnosis experiment
// outcome.
type DiagnosisResult struct {
	// Straggler detection (cross-step).
	StragglerAddr        flow.Addr
	CrossStepAlerts      int
	CrossStepInWindow    int
	StragglerJobDetected bool

	// Slow-group detection (cross-group) via a degraded member NIC.
	DegradedMember    flow.Addr
	CrossGroupAlerts  int
	SlowGroupDetected bool

	SimWall time.Duration
}

// Diagnosis reproduces §V-D's cross-step and cross-group detection: a
// thermally-throttled straggler rank must surface as step-duration
// anomalies, and a DP group communicating over a degraded NIC must surface
// as a collective-duration outlier against its peer groups.
func Diagnosis(ctx context.Context, opts Options) (*DiagnosisResult, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nodes := scaleInt(32, opts.Scale, 24)
	topoSpec := topology.Spec{Nodes: nodes, NodesPerLeaf: 4, Spines: 4}
	topo, err := topology.New(topoSpec)
	if err != nil {
		return nil, fmt.Errorf("experiments: diagnosis: %w", err)
	}

	// Job A (straggler victim) on the first half, job B (slow group
	// victim) on the second half.
	half := nodes / 2
	jobs, err := platform.PlanJobs(topoSpec, []platform.JobPlan{
		{Nodes: half, TargetStep: 2 * time.Second},
		{Nodes: nodes - half, TargetStep: 2 * time.Second},
	}, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: diagnosis: %w", err)
	}

	straggler := topo.AddrOf(2, 5)                      // a GPU of job A
	degraded := topo.AddrOf(topology.NodeID(half+1), 0) // a NIC of job B
	horizon := 60 * time.Second
	sched := faults.Schedule{Faults: []faults.Fault{
		{
			Kind: faults.KindRankSlowdown, Addr: straggler,
			At: 20 * time.Second, Until: 40 * time.Second, Factor: 4,
		},
		{
			Kind: faults.KindLinkDegrade, Link: topology.LinkID(int(degraded)),
			At: 20 * time.Second, Until: 40 * time.Second, Factor: 0.10,
		},
	}}

	simStart := time.Now()
	res, err := platform.Run(platform.Scenario{
		Name: "diagnosis", Topo: topoSpec, Jobs: jobs,
		Faults: sched, Horizon: horizon,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: diagnosis: %w", err)
	}
	out := &DiagnosisResult{
		StragglerAddr:  straggler,
		DegradedMember: degraded,
		SimWall:        time.Since(simStart),
	}

	clusters := jobrec.Recognize(res.Records, res.Topo, jobrec.Config{})
	perJob := jobrec.SplitRecords(res.Records, clusters)

	// Analyze the two victim jobs on the worker pool; folding the per-job
	// partial counts in job order keeps the outcome identical to a
	// sequential pass.
	type jobDiag struct {
		stepAlerts, stepInWindow int
		groupAlerts              int
		stragglerJob, slowGroup  bool
	}
	diags, err := pool.Map(ctx, opts.Workers, perJob,
		func(ctx context.Context, i int, jobRecs []flow.Record) (jobDiag, error) {
			cls := parallel.Identify(jobRecs, parallel.Config{})
			tls := timeline.Reconstruct(jobRecs, cls.Types, timeline.Config{})
			stepAlerts := diagnose.CrossStep(tls, diagnose.Config{})
			groupAlerts := diagnose.CrossGroup(tls, cls.DPGroups, diagnose.Config{})

			var d jobDiag
			for _, a := range clusters[i].Endpoints {
				if a == straggler {
					d.stragglerJob = true
				}
			}
			if d.stragglerJob {
				d.stepAlerts = len(stepAlerts)
				for _, a := range stepAlerts {
					off := a.Time.Sub(res.Truth.Epoch)
					if off >= 18*time.Second && off <= 42*time.Second {
						d.stepInWindow++
					}
				}
				return d, nil
			}
			d.groupAlerts = len(groupAlerts)
			for _, a := range groupAlerts {
				if a.Group < len(cls.DPGroups) {
					for _, member := range cls.DPGroups[a.Group] {
						if member == degraded {
							d.slowGroup = true
						}
					}
				}
			}
			return d, nil
		})
	if err != nil {
		return nil, err
	}
	for _, d := range diags {
		if d.stragglerJob {
			out.CrossStepAlerts += d.stepAlerts
			out.CrossStepInWindow += d.stepInWindow
			out.StragglerJobDetected = out.StragglerJobDetected || d.stepInWindow > 0
			continue
		}
		out.CrossGroupAlerts += d.groupAlerts
		out.SlowGroupDetected = out.SlowGroupDetected || d.slowGroup
	}
	return out, nil
}

// Report renders the experiment outcome.
func (r *DiagnosisResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "E5 (§V-D) — cross-step and cross-group diagnosis\n")
	fmt.Fprintf(&sb, "  straggler %v (4x compute, 20s-40s): %d cross-step alerts, %d inside fault window, detected=%v\n",
		r.StragglerAddr, r.CrossStepAlerts, r.CrossStepInWindow, r.StragglerJobDetected)
	fmt.Fprintf(&sb, "  degraded NIC %v (10%% capacity, 20s-40s): %d cross-group alerts, slow group named=%v\n",
		r.DegradedMember, r.CrossGroupAlerts, r.SlowGroupDetected)
	fmt.Fprintf(&sb, "  wall: sim %v\n", r.SimWall.Round(time.Millisecond))
	return sb.String()
}
