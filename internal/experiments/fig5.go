package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/pool"
	"github.com/llmprism/llmprism/internal/stats"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/viz"
)

// Fig5Result is the switch-level diagnosis experiment outcome.
type Fig5Result struct {
	Switches                 int
	Injected                 []flow.SwitchID
	Flagged                  []flow.SwitchID
	InjectedFlagged          int
	FalselyFlagged           int
	NormalP10, NormalP90     float64
	DegradedP10, DegradedP90 float64
	Table                    string
	Alerts                   []diagnose.Alert
	SimWall                  time.Duration
}

// Fig5 reproduces the paper's Fig. 5/§V-D switch-level diagnosis: a
// multi-tenant platform runs for an hour while a subset of spine switches
// degrades mid-run; per-switch average DP flow bandwidth is aggregated per
// bucket and k-sigma detection flags the degraded switches. In the paper,
// healthy switches average 100–180 Gb/s and the degraded subset drops to
// 30–60 Gb/s.
func Fig5(ctx context.Context, opts Options) (*Fig5Result, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nodes := scaleInt(64, opts.Scale, 24)
	horizon := scaleDur(time.Hour, opts.Scale, 10*time.Minute)
	// 3 nodes per leaf: every pipeline stage (DP group) spans leaves, so
	// DP collectives traverse the spine layer under test.
	topoSpec := topology.Spec{Nodes: nodes, NodesPerLeaf: 3, Spines: 8}
	topo, err := topology.New(topoSpec)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5: %w", err)
	}

	var plans []platform.JobPlan
	for used := 0; used+16 <= nodes; used += 16 {
		plans = append(plans, platform.JobPlan{Nodes: 16, TargetStep: 15 * time.Second})
	}
	jobs, err := platform.PlanJobs(topoSpec, plans, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5: %w", err)
	}

	injected := []flow.SwitchID{topo.SpineSwitch(1), topo.SpineSwitch(4)}
	faultFrom := horizon / 3
	faultUntil := 2 * horizon / 3
	var sched faults.Schedule
	for _, sw := range injected {
		sched.Faults = append(sched.Faults, faults.Fault{
			Kind: faults.KindSwitchDegrade, Switch: sw,
			At: faultFrom, Until: faultUntil, Factor: 0.07,
		})
	}

	simStart := time.Now()
	res, err := platform.Run(platform.Scenario{
		Name:    "fig5",
		Topo:    topoSpec,
		Jobs:    jobs,
		Faults:  sched,
		Horizon: horizon,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5: %w", err)
	}
	simWall := time.Since(simStart)

	// Classify each job's DP traffic on the worker pool, accumulating a
	// per-job partial switch series; merging the partials in job order
	// keeps the platform-wide series bit-identical for any worker count.
	records := res.Records
	clusters := jobrec.Recognize(records, res.Topo, jobrec.Config{})
	perJob := jobrec.SplitRecords(records, clusters)
	bucket := horizon / 12
	diagCfg := diagnose.Config{Bucket: bucket}
	partials, err := pool.Map(ctx, opts.Workers, perJob,
		func(ctx context.Context, _ int, jobRecs []flow.Record) (*diagnose.SeriesAccum, error) {
			cls := parallel.Identify(jobRecs, parallel.Config{})
			accum := diagnose.NewSeriesAccum(diagCfg)
			accum.Add(jobRecs, cls.Types)
			return accum, nil
		})
	if err != nil {
		return nil, err
	}
	merged := diagnose.NewSeriesAccum(diagCfg)
	for _, p := range partials {
		merged.Merge(p)
	}
	series := merged.Series()
	alerts := diagnose.SwitchDiagnose(series, diagCfg)

	out := &Fig5Result{
		Switches: len(series),
		Injected: injected,
		Alerts:   alerts,
		SimWall:  simWall,
		Table:    viz.BandwidthSeries(series, func(sw flow.SwitchID) string { return res.Topo.SwitchName(sw) }),
	}

	flagged := make(map[flow.SwitchID]bool)
	for _, a := range alerts {
		if a.Kind == diagnose.AlertSwitchBandwidth {
			flagged[a.Switch] = true
		}
	}
	for sw := range flagged {
		out.Flagged = append(out.Flagged, sw)
	}
	sort.Slice(out.Flagged, func(i, j int) bool { return out.Flagged[i] < out.Flagged[j] })
	injectedSet := make(map[flow.SwitchID]bool)
	for _, sw := range injected {
		injectedSet[sw] = true
	}
	for sw := range flagged {
		if injectedSet[sw] {
			out.InjectedFlagged++
		} else {
			out.FalselyFlagged++
		}
	}

	// Bandwidth distributions inside the fault window: injected spines vs
	// healthy spines (matching the figure's healthy vs degraded bands).
	epoch := res.Truth.Epoch
	var normal, degraded []float64
	for sw, pts := range series {
		if !res.Topo.IsSpine(sw) {
			continue
		}
		for _, p := range pts {
			off := p.Bucket.Sub(epoch)
			if off < faultFrom || off >= faultUntil {
				continue
			}
			if injectedSet[sw] {
				degraded = append(degraded, p.MeanGbps)
			} else {
				normal = append(normal, p.MeanGbps)
			}
		}
	}
	out.NormalP10, out.NormalP90 = stats.Percentile(normal, 10), stats.Percentile(normal, 90)
	out.DegradedP10, out.DegradedP90 = stats.Percentile(degraded, 10), stats.Percentile(degraded, 90)
	return out, nil
}

// Report renders the experiment outcome.
func (r *Fig5Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "E4 (Fig. 5) — switch-level diagnosis under spine degradation\n")
	fmt.Fprintf(&sb, "  switches with DP traffic: %d, injected degradations: %v\n", r.Switches, r.Injected)
	fmt.Fprintf(&sb, "  flagged: %v (injected flagged %d/%d, false flags %d)\n",
		r.Flagged, r.InjectedFlagged, len(r.Injected), r.FalselyFlagged)
	fmt.Fprintf(&sb, "  spine DP bandwidth during fault: healthy P10-P90 %.0f-%.0f Gb/s, degraded %.0f-%.0f Gb/s\n",
		r.NormalP10, r.NormalP90, r.DegradedP10, r.DegradedP90)
	fmt.Fprintf(&sb, "  (paper: healthy 100-180 Gb/s, degraded 30-60 Gb/s)\n")
	fmt.Fprintf(&sb, "  wall: sim %v\n", r.SimWall.Round(time.Millisecond))
	sb.WriteString("\n  per-switch mean DP bandwidth (Gb/s) over time:\n")
	for _, line := range strings.Split(strings.TrimRight(r.Table, "\n"), "\n") {
		sb.WriteString("  " + line + "\n")
	}
	return sb.String()
}
