package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/truth"
	"github.com/llmprism/llmprism/internal/viz"
)

// fig3JobNodeCounts is the tenant mix of the paper's Fig. 3 cluster:
// 19 jobs over a 360-node (2,880-GPU) fabric, leaving some nodes idle.
var fig3JobNodeCounts = []int{
	32, 32, 24, 24, 24, 16, 16, 16, 16, 16, 16, 16, 16, 16, 12, 12, 12, 8, 8,
}

// Fig3Result is the outcome of the job-recognition experiment.
type Fig3Result struct {
	GPUs                 int
	TrueJobs             int
	CrossMachineClusters int
	JobClusters          int
	Recognition          truth.RecognitionScore
	WindowFlows          int
	// GridBefore/GridAfter are Fig. 3-style renderings of the
	// cross-machine and job-level cluster views.
	GridBefore, GridAfter string
	SimWall, AnalysisWall time.Duration
}

// Fig3 reproduces the paper's Fig. 3/§V-A: recognize every training job on
// a multi-tenant cluster from a one-minute flow window.
func Fig3(ctx context.Context, opts Options) (*Fig3Result, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nodes := scaleInt(360, opts.Scale, 24)
	topoSpec := topology.Spec{Nodes: nodes, NodesPerLeaf: 15, Spines: 8}

	var plans []platform.JobPlan
	used := 0
	for _, count := range fig3JobNodeCounts {
		c := scaleInt(count, opts.Scale, 4)
		if used+c > nodes {
			break
		}
		plans = append(plans, platform.JobPlan{Nodes: c, TargetStep: 10 * time.Second})
		used += c
	}

	jobs, err := platform.PlanJobs(topoSpec, plans, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3: %w", err)
	}
	simStart := time.Now()
	res, err := platform.Run(platform.Scenario{
		Name:    "fig3",
		Topo:    topoSpec,
		Jobs:    jobs,
		Horizon: 95 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3: %w", err)
	}
	simWall := time.Since(simStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Analyze a one-minute window, as in the paper.
	window := res.Window(30*time.Second, time.Minute)
	anStart := time.Now()
	cross := jobrec.CrossMachineClusters(window)
	clusters := jobrec.Recognize(window, res.Topo, jobrec.Config{})
	anWall := time.Since(anStart)

	predicted := make([][]flow.Addr, len(clusters))
	for i, c := range clusters {
		predicted[i] = c.Endpoints
	}
	out := &Fig3Result{
		GPUs:                 res.Topo.Endpoints(),
		TrueJobs:             len(res.Truth.Jobs),
		CrossMachineClusters: len(cross),
		JobClusters:          len(clusters),
		Recognition:          truth.ScoreRecognition(predicted, res.Truth.Jobs),
		WindowFlows:          len(window),
		SimWall:              simWall,
		AnalysisWall:         anWall,
	}
	// Render compact grids only for small fabrics (full grids are huge).
	if nodes <= 64 {
		out.GridBefore = viz.ClusterGrid(res.Topo, cross)
		out.GridAfter = viz.JobClusterGrid(res.Topo, clusters)
	}
	return out, nil
}

// Report renders the experiment outcome as text.
func (r *Fig3Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "E1 (Fig. 3) — LLM training job recognition\n")
	fmt.Fprintf(&sb, "  cluster: %d GPUs, %d true jobs, %d flows in 1-min window\n",
		r.GPUs, r.TrueJobs, r.WindowFlows)
	fmt.Fprintf(&sb, "  phase 1 cross-machine clusters: %d (NIC rails, pre-merge)\n", r.CrossMachineClusters)
	fmt.Fprintf(&sb, "  phase 2 job-level clusters:     %d\n", r.JobClusters)
	fmt.Fprintf(&sb, "  exact matches: %d/%d  perfect=%v\n",
		r.Recognition.ExactMatches, r.Recognition.TrueJobs, r.Recognition.Perfect())
	fmt.Fprintf(&sb, "  wall: sim %v, analysis %v\n", r.SimWall.Round(time.Millisecond), r.AnalysisWall.Round(time.Millisecond))
	return sb.String()
}
