package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/localize"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/pool"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/truth"
)

// Localization geometry: every scenario runs the same windowed analysis so
// the matrix cells are comparable.
const (
	locHorizon = 2 * time.Minute
	locWindow  = 20 * time.Second
	locBucket  = 5 * time.Second
	// Faults run window-aligned so every affected window is fully
	// degraded: the detectors the matrix leans on (switch-bandwidth and
	// cross-group) are within-window peer comparisons and need no healthy
	// history.
	locFaultFrom  = 40 * time.Second
	locFaultUntil = 100 * time.Second
	// locStep is the tenants' target step duration: ~10 steps per window,
	// enough for the per-rank baselines without the scheduling noise very
	// short steps exhibit.
	locStep = 2 * time.Second
	// locSigmaK runs the windowed detectors at k=4: the matrix evaluates
	// hundreds of leave-one-out tests per window, where k=3 still passes
	// occasional heavy-tail noise whose spurious alerts would poison the
	// implicated-flow sets.
	locSigmaK = 4
	locTopK   = 3
)

// LocalizationRow is one scenario × load cell of the localization matrix.
type LocalizationRow struct {
	Scenario string
	Load     string
	// SingleFault marks scenarios whose schedule names one root-cause
	// component (a flapping fault is one cause injected twice) — the rows
	// the top-1 acceptance bar applies to.
	SingleFault bool
	// Windows counts analyzed (non-empty) windows; Alerted the ones whose
	// detectors fired and produced suspects.
	Windows, Alerted int
	// Score is the localization accuracy against the injected schedule.
	Score truth.LocalizationScore
	// Faults names the injected components, for the table.
	Faults []string
}

// LocalizationResult is the L1 experiment outcome: the full scenario
// matrix plus wall-clock accounting.
type LocalizationResult struct {
	K       int
	Rows    []LocalizationRow
	SimWall time.Duration
}

// locScenario declares one matrix row family: how to lay out tenants and
// which faults to inject, given the fabric built for a load level.
type locScenario struct {
	name   string
	single bool
	// plans returns the tenant jobs filling a fabric of the given size.
	plans func(nodes int) []platform.JobPlan
	// faults returns the injected schedule on the built fabric.
	faults func(topo *topology.Topology) faults.Schedule
}

// locLoad is one load level of the matrix: a fabric size and tenant
// density multiplier.
type locLoad struct {
	name  string
	nodes int
}

func locScenarios() []locScenario {
	spineDegrade := func(spine int) func(*topology.Topology) faults.Schedule {
		return func(topo *topology.Topology) faults.Schedule {
			return faults.Schedule{Faults: []faults.Fault{{
				Kind: faults.KindSwitchDegrade, Switch: topo.SpineSwitch(spine),
				At: locFaultFrom, Until: locFaultUntil, Factor: 0.07,
			}}}
		}
	}
	// Three 8-node tenants per 24 nodes (PP=2, DP=4, 16 DP groups each).
	tenants8 := func(nodes int) []platform.JobPlan {
		var plans []platform.JobPlan
		for used := 0; used+8 <= nodes; used += 8 {
			plans = append(plans, platform.JobPlan{Nodes: 8, TargetStep: locStep})
		}
		return plans
	}
	// One leaf-0 uplink at 3% capacity: the ECMP share of the first
	// tenant's DP rings that hashes onto it crawls.
	leaf0Uplink := func(topo *topology.Topology) topology.LinkID {
		return topology.LinkID(2*topo.Endpoints() + 0*topo.Spines() + 3)
	}
	return []locScenario{
		{
			name: "switch-degrade", single: true,
			plans:  tenants8,
			faults: spineDegrade(2),
		},
		{
			name: "fabric-link-degrade", single: true,
			plans: tenants8,
			faults: func(topo *topology.Topology) faults.Schedule {
				return faults.Schedule{Faults: []faults.Fault{{
					Kind: faults.KindLinkDegrade, Link: leaf0Uplink(topo),
					At: locFaultFrom, Until: locFaultUntil, Factor: 0.03,
				}}}
			},
		},
		{
			// The same fabric link degraded in two bursts with a healthy
			// window between them: one root cause flapping, not two
			// incidents. The cross-window fused ranking (and the suspect
			// tracker's one-window grace) must carry the component across
			// the quiet gap instead of restarting its run.
			name: "flapping-fault", single: true,
			plans: tenants8,
			faults: func(topo *topology.Topology) faults.Schedule {
				link := leaf0Uplink(topo)
				return faults.Schedule{Faults: []faults.Fault{
					{
						Kind: faults.KindLinkDegrade, Link: link,
						At: locFaultFrom, Until: locFaultFrom + locWindow, Factor: 0.03,
					},
					{
						Kind: faults.KindLinkDegrade, Link: link,
						At: locFaultUntil - locWindow, Until: locFaultUntil, Factor: 0.03,
					},
				}}
			},
		},
		{
			// A straggler rank, injected as its NIC's access link crawling
			// (failing optics): the rank's own flows carry the slowness.
			// A pure compute slowdown is deliberately not used here: under
			// barrier-synchronized training every rank of the job stalls
			// identically, so switch-level flow records hold no signal
			// below job granularity for it (verified empirically — the
			// per-rank flow pacing of the straggler's server differs from
			// its peers' by under 0.2%); compute stragglers stay a
			// detection scenario (E5), not a localization one.
			name: "straggler", single: true,
			plans: tenants8,
			faults: func(topo *topology.Topology) faults.Schedule {
				// GPU 3 of the second tenant's third server: its transmit
				// path collapses to 2 Gb/s.
				return faults.Schedule{Faults: []faults.Fault{{
					Kind: faults.KindLinkDegrade, Link: topology.LinkID(int(topo.AddrOf(10, 3))),
					At: locFaultFrom, Until: locFaultUntil, Factor: 0.01,
				}}}
			},
		},
		{
			name: "multi-fault", single: false,
			plans: tenants8,
			faults: func(topo *topology.Topology) faults.Schedule {
				// A straggler NIC in the first tenant and a degraded
				// spine, concurrently: both must surface in the top-K.
				return faults.Schedule{Faults: []faults.Fault{
					{
						Kind: faults.KindLinkDegrade, Link: topology.LinkID(int(topo.AddrOf(10, 3))),
						At: locFaultFrom, Until: locFaultUntil, Factor: 0.01,
					},
					{
						Kind: faults.KindSwitchDegrade, Switch: topo.SpineSwitch(5),
						At: locFaultFrom, Until: locFaultUntil, Factor: 0.07,
					},
				}}
			},
		},
		{
			// Two faults whose activity windows overlap but do not
			// coincide: the spine degrade is already an ongoing incident
			// when the straggler NIC joins, and it resolves first. The
			// fused ranking must keep both components ranked through the
			// overlap instead of letting the newer fault evict the older.
			name: "overlapping-fault-window", single: false,
			plans: tenants8,
			faults: func(topo *topology.Topology) faults.Schedule {
				return faults.Schedule{Faults: []faults.Fault{
					{
						Kind: faults.KindSwitchDegrade, Switch: topo.SpineSwitch(5),
						At: locFaultFrom, Until: locFaultUntil - locWindow, Factor: 0.07,
					},
					{
						Kind: faults.KindLinkDegrade, Link: topology.LinkID(int(topo.AddrOf(10, 3))),
						At: locFaultFrom + locWindow, Until: locFaultUntil, Factor: 0.01,
					},
				}}
			},
		},
		{
			name: "interference", single: true,
			// Twice the tenant count at half the size: more jobs share
			// every spine, so misattribution across tenants gets cheaper.
			plans: func(nodes int) []platform.JobPlan {
				var plans []platform.JobPlan
				for used := 0; used+4 <= nodes; used += 4 {
					plans = append(plans, platform.JobPlan{Nodes: 4, TargetStep: locStep})
				}
				return plans
			},
			faults: spineDegrade(2),
		},
	}
}

// Localization is this reproduction's L1 experiment: a scenario matrix
// (switch degrade, fabric-link degrade, flapping fabric link, straggler
// rank, concurrent multi-fault, overlapping fault windows, multi-job
// interference — each × load levels) scoring topology-aware root-cause
// localization against the injected fault schedule. Each cell simulates a
// multi-tenant platform and analyzes the trace window by window exactly as
// the monitor would — tier-stratified switch diagnosis, rail-stratified
// cross-group diagnosis, chronic-anomaly suppression, spectrum
// localization over the surviving alerts, and cross-window score fusion —
// scoring the fused ranking with truth.ScoreLocalization. Scale < 1 runs
// the reduced grid (every scenario at the first load level, plus the
// historically weakest cell, fabric-link-degrade at 2x) — the -short
// configuration CI uses.
func Localization(ctx context.Context, opts Options) (*LocalizationResult, error) {
	opts = opts.withDefaults()
	loads := []locLoad{{"1x", 24}, {"2x", 48}}

	type cell struct {
		sc   locScenario
		load locLoad
	}
	var cells []cell
	for _, sc := range locScenarios() {
		for _, load := range loads {
			if opts.Scale < 1 && load.name != "1x" && sc.name != "fabric-link-degrade" {
				continue // reduced grid
			}
			cells = append(cells, cell{sc, load})
		}
	}

	start := time.Now()
	rows, err := pool.Map(ctx, opts.Workers, cells,
		func(ctx context.Context, i int, c cell) (LocalizationRow, error) {
			return localizationCell(ctx, c.sc, c.load, i, opts)
		})
	if err != nil {
		return nil, err
	}
	return &LocalizationResult{K: locTopK, Rows: rows, SimWall: time.Since(start)}, nil
}

// localizationCell simulates and scores one scenario × load cell. All
// randomness derives from opts.Seed and the cell index, so the matrix is
// bit-identical for any worker count.
func localizationCell(ctx context.Context, sc locScenario, load locLoad, idx int, opts Options) (LocalizationRow, error) {
	row := LocalizationRow{Scenario: sc.name, Load: load.name, SingleFault: sc.single}
	if err := ctx.Err(); err != nil {
		return row, err
	}
	// 3 nodes per leaf keeps every DP group crossing the spine layer under
	// test; 8 spines keep the stratified spine tier above MinSamples.
	spec := topology.Spec{Nodes: load.nodes, NodesPerLeaf: 3, Spines: 8}
	topo, err := topology.New(spec)
	if err != nil {
		return row, fmt.Errorf("experiments: localization %s/%s: %w", sc.name, load.name, err)
	}
	jobs, err := platform.PlanJobs(spec, sc.plans(load.nodes), opts.Seed+int64(idx)*104729)
	if err != nil {
		return row, fmt.Errorf("experiments: localization %s/%s: %w", sc.name, load.name, err)
	}
	sched := sc.faults(topo)
	for _, f := range sched.Faults {
		if comp, ok := truth.FaultComponent(topo, f); ok {
			row.Faults = append(row.Faults, comp.String())
		}
	}

	res, err := platform.Run(platform.Scenario{
		Name: "localization-" + sc.name, Topo: spec, Jobs: jobs,
		Faults: sched, Horizon: locHorizon,
	})
	if err != nil {
		return row, fmt.Errorf("experiments: localization %s/%s: %w", sc.name, load.name, err)
	}

	diagCfg := diagnose.Config{
		K:      locSigmaK,
		Bucket: locBucket,
		SwitchTier: func(sw flow.SwitchID) int {
			if res.Topo.IsSpine(sw) {
				return 1
			}
			return 0
		},
		// The deployment rail classifier: the trailing TP rail hosts each
		// group's collective serialization tail and is structurally slower
		// than rails 0..n-2, so it is its own comparison class (which, at 2
		// groups per stage pair, stays below MinSamples and is skipped —
		// exactly the population that used to fire chronic false alerts).
		GroupRail: func(a flow.Addr) int {
			if res.Topo.GPUOf(a) == spec.GPUsPerNode-1 {
				return 1
			}
			return 0
		},
	}

	// Incident-centric state carried across the cell's windows, exactly as
	// the monitor does: chronic anomalies drop out of the localization
	// evidence and the truth view, and per-window suspect scores fuse into
	// the cross-window ranking the cell is scored on.
	incidents := diagnose.NewIncidentTracker(diagnose.IncidentConfig{})
	tracker := localize.NewTracker(localize.TrackerConfig{})
	var windows []truth.LocalizedWindow
	for off := time.Duration(0); off+locWindow <= locHorizon; off += locWindow {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		recs := res.Window(off, locWindow)
		if len(recs) == 0 {
			continue
		}
		row.Windows++
		jobs, jobAlerts, switchAlerts := diagnoseWindow(recs, res.Topo, diagCfg)
		chronic := make(map[diagnose.IncidentKey]bool)
		for _, inc := range incidents.Observe(jobAlerts) {
			if inc.Chronic && inc.StillFiring {
				chronic[inc.Key] = true
			}
		}
		locCfg := localize.Config{}
		if len(chronic) > 0 {
			locCfg.Filter = func(job int, a diagnose.Alert) bool {
				return !chronic[diagnose.KeyOf(job, a)]
			}
		}
		suspects := localize.Localize(jobs, switchAlerts, locCfg)
		if len(suspects) > 0 {
			row.Alerted++
		}
		wallStart := res.Truth.Epoch.Add(off)
		tracker.Observe(wallStart, suspects)
		var effective []diagnose.Alert
		for _, ja := range jobAlerts {
			if !chronic[diagnose.KeyOf(ja.Job, ja.Alert)] {
				effective = append(effective, ja.Alert)
			}
		}
		windows = append(windows, truth.LocalizedWindow{
			Start:    wallStart,
			End:      wallStart.Add(locWindow),
			Alerts:   effective,
			Suspects: suspects,
			Fused:    tracker.Fused(),
		})
	}
	row.Score = truth.ScoreLocalization(res.Topo, sched, res.Truth.Epoch, windows, locTopK)
	return row, nil
}

// diagnoseWindow runs the per-window diagnosis pipeline on a record slice
// — the record-path mirror of one monitor window's analysis — returning
// the localization inputs: per-job evidence (with stable ids; the tenant
// layout is fixed, and Recognize orders clusters by smallest endpoint, so
// index i is the same tenant in every window), every alert paired with the
// job it fired against (switch-level alerts carry job 0), and the
// fabric-level switch alerts.
func diagnoseWindow(recs []flow.Record, topo *topology.Topology, diagCfg diagnose.Config) ([]localize.Job, []diagnose.JobAlert, []diagnose.Alert) {
	clusters := jobrec.Recognize(recs, topo, jobrec.Config{})
	perJob := jobrec.SplitRecords(recs, clusters)
	merged := diagnose.NewSeriesAccum(diagCfg)
	jobs := make([]localize.Job, len(perJob))
	var all []diagnose.JobAlert
	for i, jobRecs := range perJob {
		cls := parallel.Identify(jobRecs, parallel.Config{})
		tls := timeline.Reconstruct(jobRecs, cls.Types, timeline.Config{})
		var alerts []diagnose.Alert
		alerts = append(alerts, diagnose.CrossStep(tls, diagCfg)...)
		alerts = append(alerts, diagnose.CrossGroup(tls, cls.DPGroups, diagCfg)...)
		for _, a := range alerts {
			all = append(all, diagnose.JobAlert{Job: i + 1, Alert: a})
		}
		accum := diagnose.NewSeriesAccum(diagCfg)
		accum.Add(jobRecs, cls.Types)
		merged.Merge(accum)
		jobs[i] = localize.Job{
			ID:       i + 1,
			Records:  jobRecs,
			Types:    cls.Types,
			DPGroups: cls.DPGroups,
			Alerts:   alerts,
		}
	}
	switchAlerts := diagnose.SwitchDiagnose(merged.Series(), diagCfg)
	for _, a := range switchAlerts {
		all = append(all, diagnose.JobAlert{Alert: a})
	}
	return jobs, all, switchAlerts
}

// Report renders the matrix as the localization accuracy table.
func (r *LocalizationResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "L1 — topology-aware root-cause localization vs injected faults (top-%d)\n", r.K)
	fmt.Fprintf(&sb, "  %-15s %-4s %4s %5s %6s %6s %6s %6s  %s\n",
		"scenario", "load", "win", "alert", "top1", "top-k", "prec", "recall", "injected")
	for _, row := range r.Rows {
		s := row.Score
		fmt.Fprintf(&sb, "  %-15s %-4s %4d %5d %5.0f%% %5.0f%% %5.0f%% %5.0f%%  %s\n",
			row.Scenario, row.Load, row.Windows, s.Windows,
			100*s.Top1Rate(), 100*s.TopKRate(), 100*s.Precision(), 100*s.Recall(),
			strings.Join(row.Faults, ", "))
	}
	fmt.Fprintf(&sb, "  (alert = windows scored: fault active and detectors fired; single-fault bar: top1 >= 80%%)\n")
	fmt.Fprintf(&sb, "  wall: sim+analysis %v\n", r.SimWall.Round(time.Millisecond))
	return sb.String()
}
