// Package experiments implements the paper's evaluation (one function per
// table/figure) plus this reproduction's ablations, on top of the platform
// simulator and the analysis pipeline. cmd/repro runs them at paper scale;
// the root bench_test.go runs them at reduced scale.
//
// Experiment index (see DESIGN.md):
//
//	E1  Fig. 3   job recognition on a 2,880-GPU cluster with 19 jobs
//	E2  Table I  parallelism identification accuracy vs window length
//	E3  §V-C/Fig. 4  timeline reconstruction error + rendered timeline
//	E4  Fig. 5   switch-level diagnosis under spine degradation
//	E5  §V-D     cross-step and cross-group diagnosis
//	A1  ablation netsim fluid vs analytic mode
//	A2  ablation BOCD vs naive gap-threshold step splitting
//	A3  ablation collective ring count vs refinement repair
//
// The experiments are mutually independent and each derives all of its
// randomness from Options.Seed, so Run executes any subset of them
// concurrently with results bit-identical to a sequential pass. Every
// experiment takes a context and aborts between its simulation and
// analysis phases when canceled.
package experiments

import (
	"fmt"
	"time"

	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/truth"
)

// Options tunes experiment scale. The zero value runs at paper scale.
type Options struct {
	// Scale in (0, 1] shrinks cluster sizes and horizons for quick runs.
	// Default 1 (paper scale).
	Scale float64
	// Seed drives all scenario randomness. Default 1.
	Seed int64
	// Workers bounds intra-experiment fan-out: the independent simulations
	// an experiment averages over (Table1's jobs, A1's network modes, A3's
	// ring configurations) run on up to Workers goroutines. Every
	// simulation derives its randomness from Seed alone and partial
	// results are folded in a fixed order, so outcomes are bit-identical
	// for any worker count. Zero or negative means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// scaleInt scales n, keeping at least min.
func scaleInt(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		return min
	}
	return v
}

// scaleDur scales d, keeping at least min.
func scaleDur(d time.Duration, scale float64, min time.Duration) time.Duration {
	v := time.Duration(float64(d) * scale)
	if v < min {
		return min
	}
	return v
}

// predToTruth converts inferred pair types to the ground-truth enum.
func predToTruth(types map[flow.Pair]parallel.Type) map[flow.Pair]truth.PairType {
	out := make(map[flow.Pair]truth.PairType, len(types))
	for p, t := range types {
		if t == parallel.TypeDP {
			out[p] = truth.PairDP
		} else {
			out[p] = truth.PairPP
		}
	}
	return out
}

// pairAccuracy scores inferred types against one job's truth.
func pairAccuracy(types map[flow.Pair]parallel.Type, job truth.Job) truth.PairScore {
	return truth.ScorePairs(predToTruth(types), job)
}

// fmtPct renders a ratio as a percentage.
func fmtPct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
