package trainsim

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/model"
	"github.com/llmprism/llmprism/internal/netsim"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/truth"
)

var tinyModel = model.Spec{Name: "tiny", Layers: 4, Hidden: 512, SeqLen: 2048}

func testTopo(t *testing.T, nodes int) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Spec{Nodes: nodes, NodesPerLeaf: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func nodeRange(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

// --- buildOps ---

func TestBuildOpsCounts(t *testing.T) {
	for _, tc := range []struct{ pp, stages, m int }{
		{0, 4, 8}, {3, 4, 8}, {0, 1, 4}, {1, 2, 2}, {2, 8, 4},
	} {
		ops := buildOps(tc.pp, tc.stages, tc.m)
		if len(ops) != 2*tc.m {
			t.Fatalf("pp=%d stages=%d m=%d: %d ops, want %d", tc.pp, tc.stages, tc.m, len(ops), 2*tc.m)
		}
		fwds, bwds := 0, 0
		for _, o := range ops {
			if o.fwd {
				fwds++
			} else {
				bwds++
			}
		}
		if fwds != tc.m || bwds != tc.m {
			t.Fatalf("pp=%d: %d fwds %d bwds, want %d each", tc.pp, fwds, bwds, tc.m)
		}
	}
}

func TestBuildOpsOrdering(t *testing.T) {
	// fwd(i) must precede bwd(i); micro-batch order must be ascending per kind.
	ops := buildOps(1, 4, 8)
	fwdAt := make(map[int]int)
	for i, o := range ops {
		if o.fwd {
			fwdAt[o.mb] = i
		} else if fi, ok := fwdAt[o.mb]; !ok || fi > i {
			t.Fatalf("bwd(%d) at %d has no preceding fwd", o.mb, i)
		}
	}
	// Last stage runs strict 1F1B: fwd0,bwd0,fwd1,bwd1,...
	last := buildOps(3, 4, 4)
	for i, o := range last {
		wantFwd := i%2 == 0
		wantMB := i / 2
		if o.fwd != wantFwd || o.mb != wantMB {
			t.Fatalf("last stage op %d = %+v, want fwd=%v mb=%d", i, o, wantFwd, wantMB)
		}
	}
	// First stage warms up with stages-1 forwards.
	first := buildOps(0, 4, 8)
	for i := 0; i < 3; i++ {
		if !first[i].fwd || first[i].mb != i {
			t.Fatalf("first stage warmup op %d = %+v", i, first[i])
		}
	}
}

// --- end-to-end small jobs ---

func dpOnlyJob(nodes []topology.NodeID) JobConfig {
	return JobConfig{
		ID: 1, Name: "dp-only", Model: tinyModel,
		TP: 8, PP: 1, DP: len(nodes),
		MicroBatches: 4, Nodes: nodes,
		GPUFLOPS: 10e12, Seed: 42,
	}
}

func pipelineJob(nodes []topology.NodeID, pp int) JobConfig {
	return JobConfig{
		ID: 2, Name: "pipeline", Model: tinyModel,
		TP: 8, PP: pp, DP: len(nodes) / pp,
		MicroBatches: 8, Nodes: nodes,
		GPUFLOPS: 10e12, Seed: 43,
	}
}

func runCluster(t *testing.T, topo *topology.Topology, cfgs []JobConfig, sched faults.Schedule, horizon time.Duration) (*Cluster, []netsim.Completion) {
	t.Helper()
	var comps []netsim.Completion
	c, err := NewCluster(topo, cfgs, sched, netsim.Config{}, func(comp netsim.Completion) {
		comps = append(comps, comp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return c, comps
}

func TestDPOnlyJobMakesProgress(t *testing.T) {
	topo := testTopo(t, 2)
	c, comps := runCluster(t, topo, []JobConfig{dpOnlyJob(nodeRange(2))}, faults.Schedule{}, 5*time.Second)
	st := c.Stats()
	if st.StepEnds < 10 {
		t.Fatalf("StepEnds = %d, want >= 10", st.StepEnds)
	}
	if st.Ops == 0 || st.Flows == 0 || len(comps) == 0 {
		t.Fatalf("no activity: %+v", st)
	}
	tr := c.Truth(time.Unix(0, 0).UTC())
	if len(tr.Jobs) != 1 {
		t.Fatalf("truth jobs = %d", len(tr.Jobs))
	}
	job := tr.Jobs[0]
	if len(job.Addrs) != 16 {
		t.Fatalf("truth addrs = %d, want 16", len(job.Addrs))
	}
	for addr, spans := range job.Steps {
		for i, span := range spans {
			if span.Step != i {
				t.Fatalf("addr %v span %d has step %d", addr, i, span.Step)
			}
			if span.End <= span.Start {
				t.Fatalf("addr %v span %d non-positive: %+v", addr, i, span)
			}
			if i > 0 && span.Start != spans[i-1].End {
				t.Fatalf("addr %v spans not contiguous at %d", addr, i)
			}
		}
	}
}

func TestPipelineJobMakesProgress(t *testing.T) {
	topo := testTopo(t, 4)
	c, comps := runCluster(t, topo, []JobConfig{pipelineJob(nodeRange(4), 2)}, faults.Schedule{}, 5*time.Second)
	if c.Stats().StepEnds < 4 {
		t.Fatalf("StepEnds = %d, want >= 4", c.Stats().StepEnds)
	}
	// PP activations must appear as fixed-size cross-node flows.
	actBytes := tinyModel.ActivationBytes(1)
	seenAct := false
	for _, comp := range comps {
		if comp.Bytes == actBytes && !comp.IntraNode {
			seenAct = true
			break
		}
	}
	if !seenAct {
		t.Error("no activation-sized PP flow observed")
	}
	// Truth must contain both PP and DP pairs.
	job := c.Truth(time.Unix(0, 0).UTC()).Jobs[0]
	var nPP, nDP int
	for _, pt := range job.Pairs {
		switch pt {
		case truth.PairPP:
			nPP++
		case truth.PairDP:
			nDP++
		}
	}
	if nPP != 16 { // (PP-1)·DP·TP = 1·2·8
		t.Errorf("truth PP pairs = %d, want 16", nPP)
	}
	if nDP != 16 { // PP·TP·(1 undirected ring edge for DP=2) = 2·8·1
		t.Errorf("truth DP pairs = %d, want 16", nDP)
	}
}

func TestStepSpansConsistentAcrossStageRanks(t *testing.T) {
	topo := testTopo(t, 4)
	c, _ := runCluster(t, topo, []JobConfig{pipelineJob(nodeRange(4), 2)}, faults.Schedule{}, 3*time.Second)
	job := c.Truth(time.Unix(0, 0).UTC()).Jobs[0]
	g := newGrid(c.jobs[0].cfg, topo)
	// All ranks of the same pipeline stage share identical spans.
	for pp := 0; pp < 2; pp++ {
		ref := job.Steps[g.addr(pp, 0, 0)]
		if len(ref) == 0 {
			t.Fatalf("no spans for stage %d", pp)
		}
		for dp := 0; dp < 2; dp++ {
			for tp := 0; tp < 8; tp++ {
				spans := job.Steps[g.addr(pp, dp, tp)]
				if len(spans) != len(ref) {
					t.Fatalf("stage %d rank (%d,%d) has %d spans, ref %d", pp, dp, tp, len(spans), len(ref))
				}
				for i := range spans {
					if spans[i] != ref[i] {
						t.Fatalf("stage %d rank (%d,%d) span %d = %+v, ref %+v", pp, dp, tp, i, spans[i], ref[i])
					}
				}
			}
		}
	}
}

func TestStragglerSlowsSteps(t *testing.T) {
	topo := testTopo(t, 2)
	cfg := dpOnlyJob(nodeRange(2))
	victim := flow.Addr(0) // node 0, gpu 0
	sched := faults.Schedule{Faults: []faults.Fault{{
		Kind: faults.KindRankSlowdown, Addr: victim,
		At: 2 * time.Second, Until: 4 * time.Second, Factor: 6,
	}}}
	c, _ := runCluster(t, topo, []JobConfig{cfg}, sched, 6*time.Second)
	job := c.Truth(time.Unix(0, 0).UTC()).Jobs[0]
	spans := job.Steps[victim]
	if len(spans) < 10 {
		t.Fatalf("too few spans: %d", len(spans))
	}
	var normal, slow []float64
	for _, s := range spans {
		mid := s.Start + s.Duration()/2
		switch {
		case mid > 2*time.Second && mid < 4*time.Second:
			slow = append(slow, s.Duration().Seconds())
		case mid < 2*time.Second:
			normal = append(normal, s.Duration().Seconds())
		}
	}
	if len(normal) == 0 || len(slow) == 0 {
		t.Fatalf("insufficient spans in both regimes: %d/%d", len(normal), len(slow))
	}
	meanOf := func(xs []float64) float64 {
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	if ratio := meanOf(slow) / meanOf(normal); ratio < 1.5 {
		t.Errorf("straggler step-duration ratio = %.2f, want >= 1.5", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	topo := testTopo(t, 4)
	run := func() (Stats, []truth.Span) {
		c, _ := runCluster(t, topo, []JobConfig{pipelineJob(nodeRange(4), 2)}, faults.Schedule{}, 2*time.Second)
		job := c.Truth(time.Unix(0, 0).UTC()).Jobs[0]
		return c.Stats(), job.Steps[job.Addrs[0]]
	}
	s1, spans1 := run()
	s2, spans2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	if len(spans1) != len(spans2) {
		t.Fatalf("span counts differ: %d vs %d", len(spans1), len(spans2))
	}
	for i := range spans1 {
		if spans1[i] != spans2[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, spans1[i], spans2[i])
		}
	}
}

func TestMultiJobIsolation(t *testing.T) {
	topo := testTopo(t, 8)
	jobA := dpOnlyJob(nodeRange(4))
	jobA.ID = 10
	jobB := JobConfig{
		ID: 20, Name: "b", Model: tinyModel,
		TP: 8, PP: 2, DP: 2, MicroBatches: 4,
		Nodes:    []topology.NodeID{4, 5, 6, 7},
		GPUFLOPS: 10e12, Seed: 99,
	}
	c, comps := runCluster(t, topo, []JobConfig{jobA, jobB}, faults.Schedule{}, 3*time.Second)
	tr := c.Truth(time.Unix(0, 0).UTC())
	if len(tr.Jobs) != 2 {
		t.Fatalf("truth jobs = %d, want 2", len(tr.Jobs))
	}
	// No flow may cross job boundaries.
	inJob := make(map[flow.Addr]int)
	for ji, j := range tr.Jobs {
		for _, a := range j.Addrs {
			inJob[a] = ji
		}
	}
	for _, comp := range comps {
		if inJob[comp.Src] != inJob[comp.Dst] {
			t.Fatalf("cross-job flow %v -> %v", comp.Src, comp.Dst)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	topo := testTopo(t, 4)
	base := pipelineJob(nodeRange(4), 2)
	tests := []struct {
		name   string
		mutate func(*JobConfig)
	}{
		{"dp=1", func(c *JobConfig) { c.PP = 4; c.DP = 1 }},
		{"tp too large", func(c *JobConfig) { c.TP = 16; c.PP = 1 }},
		{"rank mismatch", func(c *JobConfig) { c.DP = 4 }},
		{"node out of range", func(c *JobConfig) { c.Nodes = []topology.NodeID{0, 1, 2, 99} }},
		{"duplicate node", func(c *JobConfig) { c.Nodes = []topology.NodeID{0, 1, 2, 2} }},
		{"bad model", func(c *JobConfig) { c.Model = model.Spec{Name: "x"} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := NewCluster(topo, []JobConfig{cfg}, faults.Schedule{}, netsim.Config{}, nil); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGridLayout(t *testing.T) {
	topo := testTopo(t, 4)
	cfg := pipelineJob(nodeRange(4), 2).withDefaults()
	g := newGrid(cfg, topo)
	// TP=8 fills a node: rank (pp,dp,tp) lives on node dp + DP*pp at gpu tp.
	for pp := 0; pp < 2; pp++ {
		for dp := 0; dp < 2; dp++ {
			for tp := 0; tp < 8; tp++ {
				a := g.addr(pp, dp, tp)
				wantNode := topology.NodeID(dp + 2*pp)
				if topo.NodeOf(a) != wantNode || topo.GPUOf(a) != tp {
					t.Fatalf("addr(%d,%d,%d) on node %d gpu %d, want node %d gpu %d",
						pp, dp, tp, topo.NodeOf(a), topo.GPUOf(a), wantNode, tp)
				}
			}
		}
	}
	if got := len(g.addrs()); got != 32 {
		t.Fatalf("addrs() len = %d, want 32", got)
	}
	if got := len(g.stageAddrs(1, 1)); got != 8 {
		t.Fatalf("stageAddrs len = %d, want 8", got)
	}
}

func BenchmarkSmallClusterSecond(b *testing.B) {
	topo, err := topology.New(topology.Spec{Nodes: 8, NodesPerLeaf: 4, Spines: 2})
	if err != nil {
		b.Fatal(err)
	}
	cfg := JobConfig{
		ID: 1, Name: "bench", Model: tinyModel,
		TP: 8, PP: 2, DP: 4, MicroBatches: 8,
		Nodes: nodeRange(8), GPUFLOPS: 10e12, Seed: 7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(topo, []JobConfig{cfg}, faults.Schedule{}, netsim.Config{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
