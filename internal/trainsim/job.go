package trainsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/llmprism/llmprism/internal/collective"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/model"
	"github.com/llmprism/llmprism/internal/truth"
)

// op is one compute operation in a stage's per-step schedule.
type op struct {
	fwd bool
	mb  int
}

// buildOps returns the 1F1B (PipeDream-flush) op order for stage pp of a
// depth-`stages` pipeline running m micro-batches: warmup forwards, a
// steady one-forward-one-backward phase, then cooldown backwards.
func buildOps(pp, stages, m int) []op {
	warmup := stages - 1 - pp
	if warmup > m {
		warmup = m
	}
	ops := make([]op, 0, 2*m)
	for i := 0; i < warmup; i++ {
		ops = append(ops, op{fwd: true, mb: i})
	}
	for i := 0; i < m-warmup; i++ {
		ops = append(ops, op{fwd: true, mb: warmup + i})
		ops = append(ops, op{fwd: false, mb: i})
	}
	for i := m - warmup; i < m; i++ {
		ops = append(ops, op{fwd: false, mb: i})
	}
	return ops
}

// stageSim is the compute state of one (pp, dp) stage instance. All TP
// ranks of the stage operate in lockstep (tensor-parallel synchronization),
// so one stageSim drives the whole server.
type stageSim struct {
	pp, dp    int
	step      int
	opIdx     int
	running   bool
	stepStart time.Duration
	nextStart time.Duration
	ops       []op
	// fwdRecv/bwdRecv count per-micro-batch rail arrivals, double-buffered
	// by step parity: a neighbour stage may begin step k+1 and start
	// sending while this stage is still finishing step k.
	fwdRecv [2][]int
	bwdRecv [2][]int
}

func (s *stageSim) resetSlot(parity int) {
	for i := range s.fwdRecv[parity] {
		s.fwdRecv[parity][i] = 0
	}
	for i := range s.bwdRecv[parity] {
		s.bwdRecv[parity][i] = 0
	}
}

// dpGroup coordinates the data-parallel collective of one pipeline stage
// (all DP replicas, all TP rails).
type dpGroup struct {
	pp          int
	joined      int
	outstanding int
	phase       collective.Phase
}

// chainFlow is one network transfer in a sequential per-edge bucket chain.
type chainFlow struct {
	src, dst flow.Addr
	bytes    int64
	label    uint32
}

// jobSim simulates one training job.
type jobSim struct {
	idx     int // index within the cluster
	cfg     JobConfig
	g       grid
	cluster *Cluster
	rng     *rand.Rand

	stages [][]*stageSim // [pp][dp]
	groups []*dpGroup    // [pp]

	fwdDur   []time.Duration // [pp], per micro-batch
	bwdDur   []time.Duration // [pp]
	actBytes int64
	// chains[pp] holds the per-(tp, ring, member) sequential bucket chains
	// of one DP collective phase for that stage (RS and AG share shape).
	chains [][][]chainFlow

	pairs map[flow.Pair]truth.PairType
	spans map[flow.Addr][]truth.Span
}

func newJobSim(idx int, cfg JobConfig, c *Cluster) (*jobSim, error) {
	cfg = cfg.withDefaults()
	j := &jobSim{
		idx:     idx,
		cfg:     cfg,
		g:       newGrid(cfg, c.topo),
		cluster: c,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5f3759df)),
		pairs:   make(map[flow.Pair]truth.PairType),
		spans:   make(map[flow.Addr][]truth.Span),
	}
	m := cfg.MicroBatches
	j.stages = make([][]*stageSim, cfg.PP)
	for pp := 0; pp < cfg.PP; pp++ {
		j.stages[pp] = make([]*stageSim, cfg.DP)
		for dp := 0; dp < cfg.DP; dp++ {
			st := &stageSim{pp: pp, dp: dp, ops: buildOps(pp, cfg.PP, m)}
			for parity := 0; parity < 2; parity++ {
				st.fwdRecv[parity] = make([]int, m)
				st.bwdRecv[parity] = make([]int, m)
			}
			j.stages[pp][dp] = st
		}
	}
	j.groups = make([]*dpGroup, cfg.PP)
	for pp := range j.groups {
		j.groups[pp] = &dpGroup{pp: pp}
	}

	j.actBytes = cfg.Model.ActivationBytes(cfg.MicroBatchSize)
	j.fwdDur = make([]time.Duration, cfg.PP)
	j.bwdDur = make([]time.Duration, cfg.PP)
	for pp := 0; pp < cfg.PP; pp++ {
		flops := cfg.Model.FwdFLOPs(cfg.PP, pp, cfg.TP, cfg.MicroBatchSize)
		fwd := flops / cfg.GPUFLOPS
		j.fwdDur[pp] = time.Duration(fwd * float64(time.Second))
		j.bwdDur[pp] = time.Duration(2 * fwd * float64(time.Second))
	}

	rings, err := collective.Rings(cfg.DP, cfg.Rings)
	if err != nil {
		return nil, fmt.Errorf("trainsim: job %d: %w", cfg.ID, err)
	}
	if err := j.buildChains(rings); err != nil {
		return nil, err
	}
	j.buildTruthPairs(rings)
	return j, nil
}

// buildChains precomputes, per pipeline stage, the sequential bucket chains
// of one DP collective phase: one chain per (tp rail, ring, member), each a
// series of bucket transfers on the same edge and queue pair.
func (j *jobSim) buildChains(rings [][]int) error {
	cfg := j.cfg
	j.chains = make([][][]chainFlow, cfg.PP)
	for pp := 0; pp < cfg.PP; pp++ {
		gradBytes := cfg.Model.StageGradBytes(cfg.PP, pp, cfg.TP)
		buckets := model.Buckets(gradBytes, cfg.BucketBytes)
		transfers := collective.ReduceScatter(cfg.DP, buckets, rings)
		// Group transfers by (ring, from) preserving bucket order.
		byEdge := make(map[int][]collective.Transfer)
		for _, tr := range transfers {
			key := tr.Ring*cfg.DP + tr.From
			byEdge[key] = append(byEdge[key], tr)
		}
		var stageChains [][]chainFlow
		for tp := 0; tp < cfg.TP; tp++ {
			for ring := range rings {
				for from := 0; from < cfg.DP; from++ {
					seq := byEdge[ring*cfg.DP+from]
					if len(seq) == 0 {
						continue
					}
					chain := make([]chainFlow, len(seq))
					for i, tr := range seq {
						chain[i] = chainFlow{
							src:   j.g.addr(pp, tr.From, tp),
							dst:   j.g.addr(pp, tr.To, tp),
							bytes: tr.Bytes,
							label: uint32(tr.Ring*cfg.TP + tp + 1),
						}
					}
					stageChains = append(stageChains, chain)
				}
			}
		}
		j.chains[pp] = stageChains
	}
	return nil
}

// buildTruthPairs records the true type of every cross-node communicating
// pair of the job.
func (j *jobSim) buildTruthPairs(rings [][]int) {
	cfg := j.cfg
	crossNode := func(a, b flow.Addr) bool {
		return j.g.topo.NodeOf(a) != j.g.topo.NodeOf(b)
	}
	for pp := 0; pp+1 < cfg.PP; pp++ {
		for dp := 0; dp < cfg.DP; dp++ {
			for tp := 0; tp < cfg.TP; tp++ {
				a, b := j.g.addr(pp, dp, tp), j.g.addr(pp+1, dp, tp)
				if crossNode(a, b) {
					j.pairs[flow.MakePair(a, b)] = truth.PairPP
				}
			}
		}
	}
	for pp := 0; pp < cfg.PP; pp++ {
		for tp := 0; tp < cfg.TP; tp++ {
			for _, succ := range rings {
				for from := 0; from < cfg.DP; from++ {
					a, b := j.g.addr(pp, from, tp), j.g.addr(pp, succ[from], tp)
					if crossNode(a, b) {
						j.pairs[flow.MakePair(a, b)] = truth.PairDP
					}
				}
			}
		}
	}
}

// start schedules the first step of every stage.
func (j *jobSim) start() {
	for pp := range j.stages {
		for dp := range j.stages[pp] {
			st := j.stages[pp][dp]
			st.stepStart = j.cfg.StartOffset
			st.nextStart = j.cfg.StartOffset
			j.cluster.schedule(event{
				at: st.nextStart, kind: evStageReady,
				job: j.idx, pp: pp, dp: dp,
			})
		}
	}
}

// ready reports whether the stage's next op has its inputs.
func (j *jobSim) ready(st *stageSim) bool {
	if st.opIdx >= len(st.ops) {
		return false
	}
	o := st.ops[st.opIdx]
	parity := st.step % 2
	if o.fwd {
		if st.pp == 0 {
			return true
		}
		return st.fwdRecv[parity][o.mb] >= j.cfg.TP
	}
	if st.pp == j.cfg.PP-1 {
		return true // own forward precedes in op order
	}
	return st.bwdRecv[parity][o.mb] >= j.cfg.TP
}

// maybeRun starts the stage's next op if it is idle, gated for the next
// step, and its dependencies have arrived.
func (j *jobSim) maybeRun(st *stageSim, at time.Duration) {
	if st.running || at < st.nextStart || !j.ready(st) {
		return
	}
	o := st.ops[st.opIdx]
	base := j.fwdDur[st.pp]
	if !o.fwd {
		base = j.bwdDur[st.pp]
	}
	dur := time.Duration(float64(base) * j.jitterFactor() * j.slowdown(st, at))
	st.running = true
	j.cluster.schedule(event{
		at: at + dur, kind: evOpDone,
		job: j.idx, pp: st.pp, dp: st.dp,
	})
}

func (j *jobSim) jitterFactor() float64 {
	if j.cfg.Jitter <= 0 {
		return 1
	}
	return math.Exp(j.rng.NormFloat64() * j.cfg.Jitter)
}

// slowdown returns the active compute multiplier for the stage: TP
// synchronization means the whole server runs at its slowest rank's pace.
func (j *jobSim) slowdown(st *stageSim, at time.Duration) float64 {
	factor := 1.0
	for tp := 0; tp < j.cfg.TP; tp++ {
		f := j.cluster.faults.ActiveSlowdown(j.g.addr(st.pp, st.dp, tp), at)
		if f > factor {
			factor = f
		}
	}
	return factor
}

// onOpDone handles a finished compute op.
func (j *jobSim) onOpDone(pp, dp int, at time.Duration) error {
	st := j.stages[pp][dp]
	st.running = false
	o := st.ops[st.opIdx]
	st.opIdx++

	if o.fwd && pp+1 < j.cfg.PP {
		if err := j.sendPP(pp, dp, pp+1, o.mb, st.step, true, at); err != nil {
			return err
		}
	}
	if !o.fwd && pp > 0 {
		if err := j.sendPP(pp, dp, pp-1, o.mb, st.step, false, at); err != nil {
			return err
		}
	}
	if st.opIdx >= len(st.ops) {
		// Stage finished its backwards: join the DP collective.
		grp := j.groups[pp]
		grp.joined++
		if grp.joined == j.cfg.DP {
			grp.joined = 0
			if err := j.startDPPhase(grp, collective.PhaseReduceScatter, at); err != nil {
				return err
			}
		}
		return nil
	}
	j.maybeRun(st, at)
	return nil
}

// sendPP emits the per-rail pipeline transfers from stage (fromPP, dp) to
// stage (toPP, dp).
func (j *jobSim) sendPP(fromPP, dp, toPP, mb, step int, fwd bool, at time.Duration) error {
	kind := ctxPPFwd
	if !fwd {
		kind = ctxPPBwd
	}
	for tp := 0; tp < j.cfg.TP; tp++ {
		ctx := j.cluster.allocCtx()
		c := &j.cluster.ctxs[ctx]
		c.job = j.idx
		c.kind = kind
		c.pp = toPP
		c.dp = dp
		c.mb = mb
		c.step = step
		src := j.g.addr(fromPP, dp, tp)
		dst := j.g.addr(toPP, dp, tp)
		if err := j.cluster.startFlow(src, dst, j.actBytes, 0, ctx, at); err != nil {
			return err
		}
	}
	return nil
}

// onPPArrive handles the delivery of one rail's pipeline transfer.
func (j *jobSim) onPPArrive(c *flowCtx, at time.Duration) {
	st := j.stages[c.pp][c.dp]
	parity := c.step % 2
	if c.kind == ctxPPFwd {
		st.fwdRecv[parity][c.mb]++
	} else {
		st.bwdRecv[parity][c.mb]++
	}
	j.maybeRun(st, at)
}

// dpBytes scales a chain template's payload for the phase: fp32 gradient
// reduction doubles reduce-scatter bytes relative to the bf16 all-gather.
func (j *jobSim) dpBytes(base int64, phase collective.Phase) int64 {
	if j.cfg.FP32GradReduce && phase == collective.PhaseReduceScatter {
		return 2 * base
	}
	return base
}

// startDPPhase launches every bucket chain of one collective phase for the
// stage group.
func (j *jobSim) startDPPhase(grp *dpGroup, phase collective.Phase, at time.Duration) error {
	grp.phase = phase
	grp.outstanding = len(j.chains[grp.pp])
	for _, chain := range j.chains[grp.pp] {
		ctx := j.cluster.allocCtx()
		c := &j.cluster.ctxs[ctx]
		c.job = j.idx
		c.kind = ctxDP
		c.pp = grp.pp
		c.phase = phase
		c.chain = chain
		c.chainIdx = 0
		f := chain[0]
		if err := j.cluster.startFlow(f.src, f.dst, j.dpBytes(f.bytes, phase), f.label, ctx, at); err != nil {
			return err
		}
	}
	return nil
}

// onDPFlowDone advances a collective bucket chain, and drives the
// RS → optimizer → AG → step-end progression when the last chain drains.
func (j *jobSim) onDPFlowDone(ctxIdx uint32, at time.Duration) error {
	c := &j.cluster.ctxs[ctxIdx]
	c.chainIdx++
	if c.chainIdx < len(c.chain) {
		f := c.chain[c.chainIdx]
		return j.cluster.startFlow(f.src, f.dst, j.dpBytes(f.bytes, c.phase), f.label, ctxIdx, at)
	}
	grp := j.groups[c.pp]
	pp := c.pp
	phase := c.phase
	j.cluster.freeCtx(ctxIdx)
	grp.outstanding--
	if grp.outstanding > 0 {
		return nil
	}
	switch {
	case phase == collective.PhaseReduceScatter && j.cfg.Style == StyleZeRO:
		j.cluster.schedule(event{
			at: at + j.cfg.OptimizerTime, kind: evOptimizerDone,
			job: j.idx, pp: pp,
		})
	case phase == collective.PhaseReduceScatter:
		return j.startDPPhase(grp, collective.PhaseAllGather, at)
	default: // all-gather done: the step ends.
		tail := j.cfg.PostStepTime
		if j.cfg.Style == StyleAllReduce {
			tail += j.cfg.OptimizerTime
		}
		j.endStep(pp, at+tail)
	}
	return nil
}

// onOptimizerDone launches the all-gather after the ZeRO optimizer.
func (j *jobSim) onOptimizerDone(pp int, at time.Duration) error {
	return j.startDPPhase(j.groups[pp], collective.PhaseAllGather, at)
}

// endStep records true step spans for every rank of the stage and arms the
// next step.
func (j *jobSim) endStep(pp int, nextStart time.Duration) {
	j.cluster.stats.StepEnds++
	for dp := 0; dp < j.cfg.DP; dp++ {
		st := j.stages[pp][dp]
		for tp := 0; tp < j.cfg.TP; tp++ {
			addr := j.g.addr(pp, dp, tp)
			j.spans[addr] = append(j.spans[addr], truth.Span{
				Step: st.step, Start: st.stepStart, End: nextStart,
			})
		}
		st.step++
		st.opIdx = 0
		st.stepStart = nextStart
		st.nextStart = nextStart
		// Prepare the slot for step+1 (last used by step-1, now finished;
		// see the double-buffering note on stageSim).
		st.resetSlot((st.step + 1) % 2)
		j.cluster.schedule(event{
			at: nextStart, kind: evStageReady,
			job: j.idx, pp: pp, dp: dp,
		})
	}
}

// truthJob assembles the job's ground truth.
func (j *jobSim) truthJob() truth.Job {
	return truth.Job{
		ID:    j.cfg.ID,
		Name:  j.cfg.Name,
		TP:    j.cfg.TP,
		PP:    j.cfg.PP,
		DP:    j.cfg.DP,
		Addrs: j.g.addrs(),
		Pairs: j.pairs,
		Steps: j.spans,
	}
}
