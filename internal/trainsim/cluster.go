package trainsim

import (
	"container/heap"
	"fmt"
	"time"

	"github.com/llmprism/llmprism/internal/collective"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/netsim"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/truth"
)

type eventKind uint8

const (
	evStageReady eventKind = iota + 1
	evOpDone
	evOptimizerDone
	evFault
)

type event struct {
	at     time.Duration
	seq    uint64
	kind   eventKind
	job    int
	pp, dp int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type ctxKind uint8

const (
	ctxPPFwd ctxKind = iota + 1
	ctxPPBwd
	ctxDP
)

// flowCtx carries the simulation context of one in-flight network transfer.
type flowCtx struct {
	inUse    bool
	job      int
	kind     ctxKind
	pp, dp   int // pp is the RECEIVER stage for PP transfers
	mb, step int
	phase    collective.Phase
	chain    []chainFlow
	chainIdx int
}

// Stats counts simulation activity.
type Stats struct {
	Ops      int64 // compute operations executed
	Flows    int64 // network transfers started
	StepEnds int64 // stage-group step completions
}

// Observer receives every network flow completion (including intra-node
// ones, which carry IntraNode=true and are invisible to real collectors).
type Observer func(netsim.Completion)

// Cluster co-simulates a set of training jobs over a shared fabric.
type Cluster struct {
	topo   *topology.Topology
	net    *netsim.Network
	jobs   []*jobSim
	faults faults.Schedule

	events eventHeap
	seq    uint64
	ctxs   []flowCtx
	free   []uint32

	observer Observer
	now      time.Duration
	stats    Stats
}

// NewCluster validates the jobs and builds the co-simulation.
func NewCluster(topo *topology.Topology, jobCfgs []JobConfig, schedule faults.Schedule, netCfg netsim.Config, obs Observer) (*Cluster, error) {
	if err := schedule.Validate(); err != nil {
		return nil, fmt.Errorf("trainsim: %w", err)
	}
	c := &Cluster{
		topo:     topo,
		net:      netsim.New(topo, netCfg),
		faults:   schedule,
		observer: obs,
	}
	for i, cfg := range jobCfgs {
		if err := cfg.Validate(topo); err != nil {
			return nil, err
		}
		j, err := newJobSim(i, cfg, c)
		if err != nil {
			return nil, err
		}
		c.jobs = append(c.jobs, j)
	}
	return c, nil
}

// Stats returns activity counters.
func (c *Cluster) Stats() Stats { return c.stats }

// Network exposes the underlying network (read-only use in tests).
func (c *Cluster) Network() *netsim.Network { return c.net }

func (c *Cluster) schedule(e event) {
	c.seq++
	e.seq = c.seq
	heap.Push(&c.events, e)
}

func (c *Cluster) allocCtx() uint32 {
	if k := len(c.free); k > 0 {
		idx := c.free[k-1]
		c.free = c.free[:k-1]
		c.ctxs[idx] = flowCtx{inUse: true}
		return idx
	}
	c.ctxs = append(c.ctxs, flowCtx{inUse: true})
	return uint32(len(c.ctxs) - 1)
}

func (c *Cluster) freeCtx(idx uint32) {
	c.ctxs[idx] = flowCtx{}
	c.free = append(c.free, idx)
}

func (c *Cluster) startFlow(src, dst flow.Addr, bytes int64, label uint32, ctx uint32, at time.Duration) error {
	if _, err := c.net.Start(src, dst, bytes, label, uint64(ctx), at); err != nil {
		return err
	}
	c.stats.Flows++
	return nil
}

// Run executes the co-simulation until no activity remains or the horizon
// is reached, whichever comes first.
func (c *Cluster) Run(horizon time.Duration) error {
	for _, j := range c.jobs {
		j.start()
	}
	// One heap entry per distinct fault transition instant; applyFaultAt
	// re-resolves the transitions for that instant.
	seen := make(map[time.Duration]struct{})
	for _, fe := range c.faults.Events() {
		if _, dup := seen[fe.At]; dup {
			continue
		}
		seen[fe.At] = struct{}{}
		c.schedule(event{at: fe.At, kind: evFault})
	}

	for {
		var next time.Duration
		haveEvent := len(c.events) > 0
		tFlow, haveFlow := c.net.NextEventTime()
		switch {
		case !haveEvent && !haveFlow:
			return nil
		case haveEvent && (!haveFlow || c.events[0].at < tFlow):
			next = c.events[0].at
		default:
			next = tFlow
		}
		if next > horizon {
			return nil
		}
		if haveFlow && tFlow <= next {
			// Flows first on ties: completions unblock compute.
			comps := c.net.AdvanceTo(tFlow)
			c.now = tFlow
			for _, comp := range comps {
				if err := c.onFlowComplete(comp); err != nil {
					return err
				}
			}
			continue
		}
		e := heap.Pop(&c.events).(event)
		c.now = e.at
		if err := c.dispatch(e); err != nil {
			return err
		}
	}
}

func (c *Cluster) dispatch(e event) error {
	switch e.kind {
	case evStageReady:
		j := c.jobs[e.job]
		j.maybeRun(j.stages[e.pp][e.dp], e.at)
		return nil
	case evOpDone:
		c.stats.Ops++
		return c.jobs[e.job].onOpDone(e.pp, e.dp, e.at)
	case evOptimizerDone:
		return c.jobs[e.job].onOptimizerDone(e.pp, e.at)
	case evFault:
		return c.applyFaultAt(e.at)
	default:
		return fmt.Errorf("trainsim: unknown event kind %d", e.kind)
	}
}

// applyFaultAt applies every fault transition scheduled at exactly `at`.
// (Multiple heap entries at the same instant apply idempotently.)
func (c *Cluster) applyFaultAt(at time.Duration) error {
	for _, fe := range c.faults.Events() {
		if fe.At != at {
			continue
		}
		f := fe.Fault
		switch f.Kind {
		case faults.KindSwitchDegrade:
			scale := f.Factor
			if fe.Revert {
				scale = 1
			}
			c.net.SetSwitchScale(f.Switch, scale, at)
		case faults.KindLinkDegrade:
			scale := f.Factor
			if fe.Revert {
				scale = 1
			}
			c.net.SetLinkScale(f.Link, scale, at)
		case faults.KindRankSlowdown:
			// Polled by jobSim.slowdown at op start; nothing to apply.
		}
	}
	return nil
}

func (c *Cluster) onFlowComplete(comp netsim.Completion) error {
	if c.observer != nil {
		c.observer(comp)
	}
	idx := uint32(comp.Tag)
	ctx := &c.ctxs[idx]
	if !ctx.inUse {
		return fmt.Errorf("trainsim: completion for free ctx %d", idx)
	}
	j := c.jobs[ctx.job]
	switch ctx.kind {
	case ctxPPFwd, ctxPPBwd:
		j.onPPArrive(ctx, comp.End)
		c.freeCtx(idx)
		return nil
	case ctxDP:
		return j.onDPFlowDone(idx, comp.End)
	default:
		return fmt.Errorf("trainsim: unknown ctx kind %d", ctx.kind)
	}
}

// Truth assembles the platform ground truth after Run.
func (c *Cluster) Truth(epoch time.Time) truth.Platform {
	p := truth.Platform{Epoch: epoch}
	for _, j := range c.jobs {
		p.Jobs = append(p.Jobs, j.truthJob())
	}
	return p
}
