// Package trainsim simulates multi-tenant distributed LLM training at the
// communication level: Megatron-style 3D parallel jobs (TP within a node,
// PP and DP across nodes) running 1F1B pipeline schedules with ZeRO-style
// bucketed data-parallel collectives, co-simulated against the fluid
// network model of package netsim.
//
// The simulator produces exactly the observables the LLMPrism paper's
// platform exposes — network flows with sizes, timings and switch paths —
// plus the ground truth (job membership, pair types, true step spans) the
// experiments score against.
package trainsim

import (
	"fmt"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/model"
	"github.com/llmprism/llmprism/internal/topology"
)

// CommStyle selects the data-parallel synchronization pattern.
type CommStyle uint8

// Communication styles.
const (
	// StyleZeRO reduce-scatters gradients, runs the optimizer on the
	// shard, then all-gathers updated parameters (DeepSpeed ZeRO).
	StyleZeRO CommStyle = iota
	// StyleAllReduce ring-all-reduces gradients then runs the optimizer
	// (classic DDP).
	StyleAllReduce
)

func (s CommStyle) String() string {
	switch s {
	case StyleZeRO:
		return "zero"
	case StyleAllReduce:
		return "all-reduce"
	default:
		return fmt.Sprintf("CommStyle(%d)", uint8(s))
	}
}

// JobConfig describes one tenant training job.
type JobConfig struct {
	// ID is the job identifier (unique within a platform run).
	ID int
	// Name is a human-readable label.
	Name string
	// Model is the transformer being trained.
	Model model.Spec
	// TP, PP, DP are the tensor/pipeline/data parallel degrees.
	// TP×PP×DP must equal len(Nodes) × GPUs per node. DP must be >= 2
	// (LLMPrism's timeline reconstruction anchors on DP traffic).
	TP, PP, DP int
	// MicroBatches is the number of micro-batches per training step.
	// Default max(PP, 4).
	MicroBatches int
	// MicroBatchSize is the number of sequences per micro-batch. Default 1.
	MicroBatchSize int
	// Nodes are the servers assigned to the job.
	Nodes []topology.NodeID
	// GPUFLOPS is the effective per-GPU compute rate (FLOPs/s, already
	// discounted for utilization). Default 120e12.
	GPUFLOPS float64
	// BucketBytes caps DP gradient buckets. Default 128 MiB.
	BucketBytes int64
	// Rings is the number of collective channels. Default 2.
	Rings int
	// OptimizerTime is the per-step optimizer latency between
	// reduce-scatter and all-gather (ZeRO) or after all-reduce (DDP).
	// Default 25ms.
	OptimizerTime time.Duration
	// PostStepTime is the network-invisible tail after DP communication
	// finishes (logging, dataloader, kernel launches) before the next
	// step starts. Default 12ms. This is the irreducible timeline
	// reconstruction error source.
	PostStepTime time.Duration
	// Style selects ZeRO or DDP communication. Default StyleZeRO.
	Style CommStyle
	// FP32GradReduce reduce-scatters gradients at fp32 (2× the wire bytes
	// of the bf16 parameter all-gather), as mixed-precision recipes that
	// accumulate gradients in fp32 do. It gives the two DP phases distinct
	// flow sizes, which matters when collectors aggregate chunk streams
	// into per-phase records.
	FP32GradReduce bool
	// Jitter is the lognormal sigma of compute-time noise. Default 0.02.
	Jitter float64
	// Seed drives the job's private randomness.
	Seed int64
	// StartOffset delays the job's first step relative to simulation
	// start, staggering tenants.
	StartOffset time.Duration
}

func (c JobConfig) withDefaults() JobConfig {
	if c.MicroBatches <= 0 {
		c.MicroBatches = c.PP
		if c.MicroBatches < 4 {
			c.MicroBatches = 4
		}
	}
	if c.MicroBatchSize <= 0 {
		c.MicroBatchSize = 1
	}
	if c.GPUFLOPS <= 0 {
		c.GPUFLOPS = 120e12
	}
	if c.BucketBytes <= 0 {
		c.BucketBytes = 128 << 20
	}
	if c.Rings <= 0 {
		c.Rings = 2
	}
	if c.OptimizerTime <= 0 {
		c.OptimizerTime = 25 * time.Millisecond
	}
	if c.PostStepTime <= 0 {
		c.PostStepTime = 12 * time.Millisecond
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	} else if c.Jitter == 0 {
		c.Jitter = 0.02
	}
	return c
}

// Ranks returns the total GPU count of the job.
func (c JobConfig) Ranks() int { return c.TP * c.PP * c.DP }

// Validate checks the job against the fabric.
func (c JobConfig) Validate(topo *topology.Topology) error {
	if err := c.Model.Validate(); err != nil {
		return fmt.Errorf("trainsim: job %d: %w", c.ID, err)
	}
	if c.TP <= 0 || c.PP <= 0 || c.DP <= 0 {
		return fmt.Errorf("trainsim: job %d: parallel degrees must be positive (tp=%d pp=%d dp=%d)", c.ID, c.TP, c.PP, c.DP)
	}
	if c.DP < 2 {
		return fmt.Errorf("trainsim: job %d: DP must be >= 2, got %d", c.ID, c.DP)
	}
	gpn := topo.Spec().GPUsPerNode
	if c.TP > gpn {
		return fmt.Errorf("trainsim: job %d: TP %d exceeds GPUs per node %d (TP is intra-node)", c.ID, c.TP, gpn)
	}
	if gpn%c.TP != 0 {
		return fmt.Errorf("trainsim: job %d: TP %d must divide GPUs per node %d", c.ID, c.TP, gpn)
	}
	if want := len(c.Nodes) * gpn; c.Ranks() != want {
		return fmt.Errorf("trainsim: job %d: tp*pp*dp = %d but %d nodes provide %d GPUs", c.ID, c.Ranks(), len(c.Nodes), want)
	}
	seen := make(map[topology.NodeID]struct{}, len(c.Nodes))
	for _, n := range c.Nodes {
		if int(n) < 0 || int(n) >= topo.Nodes() {
			return fmt.Errorf("trainsim: job %d: node %d outside fabric", c.ID, n)
		}
		if _, dup := seen[n]; dup {
			return fmt.Errorf("trainsim: job %d: node %d assigned twice", c.ID, n)
		}
		seen[n] = struct{}{}
	}
	cfg := c.withDefaults()
	if cfg.MicroBatches < 1 {
		return fmt.Errorf("trainsim: job %d: needs at least one micro-batch", c.ID)
	}
	return nil
}

// grid maps between Megatron rank coordinates and fabric addresses.
// Rank order is tp-fastest, then dp, then pp:
//
//	rank = tp + TP·(dp + DP·pp)
//
// With TP equal to the node size, every (pp, dp) coordinate occupies one
// full server and all PP/DP traffic is cross-node and rail-aligned, which
// is the production layout the paper's observations rely on.
type grid struct {
	tp, pp, dp int
	gpn        int
	nodes      []topology.NodeID
	topo       *topology.Topology
}

func newGrid(cfg JobConfig, topo *topology.Topology) grid {
	return grid{
		tp: cfg.TP, pp: cfg.PP, dp: cfg.DP,
		gpn:   topo.Spec().GPUsPerNode,
		nodes: cfg.Nodes,
		topo:  topo,
	}
}

// rank returns the global rank of grid coordinates.
func (g grid) rank(pp, dp, tp int) int {
	return tp + g.tp*(dp+g.dp*pp)
}

// addr returns the NIC address of grid coordinates.
func (g grid) addr(pp, dp, tp int) flow.Addr {
	r := g.rank(pp, dp, tp)
	return g.topo.AddrOf(g.nodes[r/g.gpn], r%g.gpn)
}

// addrs returns every rank address in rank order.
func (g grid) addrs() []flow.Addr {
	out := make([]flow.Addr, 0, g.tp*g.pp*g.dp)
	for pp := 0; pp < g.pp; pp++ {
		for dp := 0; dp < g.dp; dp++ {
			for tp := 0; tp < g.tp; tp++ {
				out = append(out, g.addr(pp, dp, tp))
			}
		}
	}
	return out
}

// stageAddrs returns the TP rail addresses of one (pp, dp) stage instance.
func (g grid) stageAddrs(pp, dp int) []flow.Addr {
	out := make([]flow.Addr, g.tp)
	for tp := 0; tp < g.tp; tp++ {
		out[tp] = g.addr(pp, dp, tp)
	}
	return out
}
