// Package collective decomposes data-parallel collective operations into
// the pairwise network transfers they place on the fabric.
//
// Production collectives (NCCL/HCCL) run ring algorithms over multiple
// "channels" — rings with different member permutations — to use several
// network paths at once. Each ring edge carries a contiguous stream of
// chunks on one queue pair, which a flow collector observes as a single
// flow per (edge, bucket, phase). The multi-ring structure matters to
// LLMPrism: it makes the DP communication graph denser than a single cycle,
// which is what lets Algorithm 2's transitive refinement repair every
// misclassified DP pair.
package collective

import "fmt"

// Phase identifies the collective phase a transfer belongs to.
type Phase uint8

// Collective phases. ZeRO-style data parallelism reduce-scatters gradients,
// runs the optimizer on the shard, then all-gathers updated parameters.
const (
	PhaseReduceScatter Phase = iota + 1
	PhaseAllGather
)

func (p Phase) String() string {
	switch p {
	case PhaseReduceScatter:
		return "reduce-scatter"
	case PhaseAllGather:
		return "all-gather"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Transfer is one pairwise send within a collective: the aggregate chunk
// stream member From sends to member To on one ring for one bucket.
type Transfer struct {
	// From and To are member indices within the group (not global ranks).
	From, To int
	// Bytes is the total payload of the transfer.
	Bytes int64
	// Ring is the channel index, used as an ECMP label so different rings
	// can take different spine paths.
	Ring int
	// Bucket is the gradient-bucket index the transfer belongs to.
	Bucket int
	// Phase is the collective phase.
	Phase Phase
}

// Rings returns `count` ring successor permutations over n members.
// Ring r uses stride step[r] (odd strides, coprime with any power-of-two
// group size); rings[r][i] is the successor of member i on ring r.
// Strides that would not generate a single cycle for this n are skipped in
// favour of the next coprime stride.
func Rings(n, count int) ([][]int, error) {
	if n <= 1 {
		return nil, fmt.Errorf("collective: ring needs >= 2 members, got %d", n)
	}
	if count <= 0 {
		count = 1
	}
	rings := make([][]int, 0, count)
	stride := 1
	for len(rings) < count {
		for stride < 2*n && gcd(stride, n) != 1 {
			stride += 2
		}
		if stride >= 2*n {
			// No more distinct coprime strides below 2n; reuse stride 1.
			stride = 1
		}
		ring := make([]int, n)
		for i := 0; i < n; i++ {
			ring[i] = (i + stride) % n
		}
		rings = append(rings, ring)
		stride += 2
	}
	return rings, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ReduceScatter decomposes a bucketed ring reduce-scatter over n members
// into transfers. Each bucket is split evenly across rings; on each ring
// every member streams (n-1)/n of its ring share to its successor.
func ReduceScatter(n int, buckets []int64, rings [][]int) []Transfer {
	return phaseTransfers(n, buckets, rings, PhaseReduceScatter)
}

// AllGather decomposes a bucketed ring all-gather over n members into
// transfers. The wire volume is identical in shape to reduce-scatter.
func AllGather(n int, buckets []int64, rings [][]int) []Transfer {
	return phaseTransfers(n, buckets, rings, PhaseAllGather)
}

// AllReduce is a ring all-reduce: reduce-scatter followed by all-gather of
// the same buffer (classic DDP gradient synchronization).
func AllReduce(n int, buckets []int64, rings [][]int) []Transfer {
	out := phaseTransfers(n, buckets, rings, PhaseReduceScatter)
	return append(out, phaseTransfers(n, buckets, rings, PhaseAllGather)...)
}

func phaseTransfers(n int, buckets []int64, rings [][]int, phase Phase) []Transfer {
	if n <= 1 || len(rings) == 0 {
		return nil
	}
	r := len(rings)
	out := make([]Transfer, 0, n*r*len(buckets))
	for b, bucket := range buckets {
		if bucket <= 0 {
			continue
		}
		ringShare := bucket / int64(r)
		if ringShare == 0 {
			ringShare = 1
		}
		// Every member forwards n-1 of the n chunks of its ring share.
		edgeBytes := ringShare * int64(n-1) / int64(n)
		if edgeBytes == 0 {
			edgeBytes = 1
		}
		for ring, succ := range rings {
			for from := 0; from < n; from++ {
				out = append(out, Transfer{
					From:   from,
					To:     succ[from],
					Bytes:  edgeBytes,
					Ring:   ring,
					Bucket: b,
					Phase:  phase,
				})
			}
		}
	}
	return out
}

// EdgeSet returns the distinct undirected member pairs used by the rings,
// encoded as from*n+to with from < to.
func EdgeSet(n int, rings [][]int) map[int]struct{} {
	edges := make(map[int]struct{})
	for _, succ := range rings {
		for from := 0; from < n; from++ {
			a, b := from, succ[from]
			if a > b {
				a, b = b, a
			}
			edges[a*n+b] = struct{}{}
		}
	}
	return edges
}

// TotalBytes sums the payload of transfers.
func TotalBytes(ts []Transfer) int64 {
	var sum int64
	for _, t := range ts {
		sum += t.Bytes
	}
	return sum
}
