package collective

import (
	"testing"
	"testing/quick"
)

func TestRingsValidation(t *testing.T) {
	if _, err := Rings(1, 2); err == nil {
		t.Error("Rings(1, _) should fail")
	}
	rings, err := Rings(8, 0)
	if err != nil || len(rings) != 1 {
		t.Errorf("Rings(8, 0) = %v, %v; want 1 default ring", rings, err)
	}
}

// ringIsSingleCycle checks the successor permutation visits all members.
func ringIsSingleCycle(succ []int) bool {
	n := len(succ)
	seen := make([]bool, n)
	cur := 0
	for i := 0; i < n; i++ {
		if seen[cur] {
			return false
		}
		seen[cur] = true
		cur = succ[cur]
	}
	return cur == 0
}

func TestRingsAreSingleCycles(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16, 15, 32, 64} {
		for _, count := range []int{1, 2, 4} {
			rings, err := Rings(n, count)
			if err != nil {
				t.Fatalf("Rings(%d,%d): %v", n, count, err)
			}
			if len(rings) != count {
				t.Fatalf("Rings(%d,%d) returned %d rings", n, count, len(rings))
			}
			for r, succ := range rings {
				if !ringIsSingleCycle(succ) {
					t.Errorf("Rings(%d,%d) ring %d is not a single cycle: %v", n, count, r, succ)
				}
			}
		}
	}
}

func TestRingsProperty(t *testing.T) {
	f := func(rawN, rawCount uint8) bool {
		n := 2 + int(rawN)%64
		count := 1 + int(rawCount)%4
		rings, err := Rings(n, count)
		if err != nil || len(rings) != count {
			return false
		}
		for _, succ := range rings {
			if !ringIsSingleCycle(succ) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiRingEdgeDiversity(t *testing.T) {
	// For power-of-two group sizes, different odd strides must produce
	// disjoint undirected edge sets, densifying the DP graph.
	rings, err := Rings(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	edges := EdgeSet(16, rings)
	if len(edges) != 32 {
		t.Errorf("2 rings over 16 members produced %d distinct undirected edges, want 32", len(edges))
	}
}

func TestReduceScatterShape(t *testing.T) {
	rings, _ := Rings(4, 2)
	buckets := []int64{1 << 20, 1 << 18}
	ts := ReduceScatter(4, buckets, rings)
	// n members × 2 rings × 2 buckets.
	if len(ts) != 16 {
		t.Fatalf("len(transfers) = %d, want 16", len(ts))
	}
	for _, tr := range ts {
		if tr.Phase != PhaseReduceScatter {
			t.Fatalf("phase = %v, want reduce-scatter", tr.Phase)
		}
		if tr.From == tr.To {
			t.Fatalf("self transfer %+v", tr)
		}
		if tr.Bytes <= 0 {
			t.Fatalf("non-positive transfer size %+v", tr)
		}
	}
}

func TestTransferVolumeMatchesRingAlgebra(t *testing.T) {
	// Ring reduce-scatter puts (n-1)/n × bytes on the wire per member,
	// so total volume ≈ (n-1) × bucket bytes.
	const n = 8
	rings, _ := Rings(n, 2)
	bucket := int64(1 << 24)
	ts := ReduceScatter(n, []int64{bucket}, rings)
	got := TotalBytes(ts)
	want := bucket * (n - 1)
	tolerance := int64(n * len(rings) * 2) // integer division slack
	if got < want-tolerance || got > want+tolerance {
		t.Errorf("total wire bytes = %d, want ≈ %d", got, want)
	}
}

func TestAllReduceIsBothPhases(t *testing.T) {
	rings, _ := Rings(4, 1)
	ts := AllReduce(4, []int64{1000}, rings)
	counts := make(map[Phase]int)
	for _, tr := range ts {
		counts[tr.Phase]++
	}
	if counts[PhaseReduceScatter] != 4 || counts[PhaseAllGather] != 4 {
		t.Errorf("phase counts = %v, want 4 of each", counts)
	}
}

func TestDistinctSizesAcrossBuckets(t *testing.T) {
	// Uneven buckets must produce multiple distinct transfer sizes —
	// the signature Algorithm 2 uses to classify a pair as DP.
	rings, _ := Rings(8, 2)
	ts := AllReduce(8, []int64{1 << 26, 1 << 26, 1 << 22}, rings)
	sizes := make(map[int64]struct{})
	for _, tr := range ts {
		sizes[tr.Bytes] = struct{}{}
	}
	if len(sizes) < 2 {
		t.Errorf("distinct transfer sizes = %d, want >= 2", len(sizes))
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	rings, _ := Rings(4, 1)
	if got := ReduceScatter(1, []int64{100}, rings); got != nil {
		t.Error("n=1 should produce no transfers")
	}
	if got := ReduceScatter(4, nil, rings); len(got) != 0 {
		t.Error("no buckets should produce no transfers")
	}
	if got := ReduceScatter(4, []int64{0, -5}, rings); len(got) != 0 {
		t.Error("non-positive buckets should be skipped")
	}
	if got := ReduceScatter(4, []int64{100}, nil); got != nil {
		t.Error("no rings should produce no transfers")
	}
}

// Property: every member sends exactly rings×buckets transfers per phase
// and every directed edge matches the ring successor.
func TestTransferEdgeConsistency(t *testing.T) {
	f := func(rawN, rawRings, rawBuckets uint8) bool {
		n := 2 + int(rawN)%32
		nRings := 1 + int(rawRings)%3
		nBuckets := 1 + int(rawBuckets)%4
		rings, err := Rings(n, nRings)
		if err != nil {
			return false
		}
		buckets := make([]int64, nBuckets)
		for i := range buckets {
			buckets[i] = int64(1+i) << 16
		}
		ts := ReduceScatter(n, buckets, rings)
		perMember := make([]int, n)
		for _, tr := range ts {
			if rings[tr.Ring][tr.From] != tr.To {
				return false
			}
			perMember[tr.From]++
		}
		for _, c := range perMember {
			if c != nRings*nBuckets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllReduceDecomposition(b *testing.B) {
	rings, _ := Rings(16, 2)
	buckets := []int64{1 << 28, 1 << 28, 1 << 28, 1 << 26}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllReduce(16, buckets, rings)
	}
}
