package session_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/session"
)

// wireFrame builds a small deterministic frame for wire tests.
func wireFrame(t testing.TB, seed, n int) *flow.Frame {
	t.Helper()
	base := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	records := make([]flow.Record, n)
	for i := range records {
		records[i] = flow.Record{
			ID:       uint64(seed*1000 + i),
			Start:    base.Add(time.Duration(seed*int(time.Second)) + time.Duration(i)*50*time.Millisecond),
			Duration: 20 * time.Millisecond,
			Src:      flow.Addr(uint32(i % 7)),
			Dst:      flow.Addr(uint32(i%7 + 8)),
			Bytes:    int64(1000 + i),
			Switches: []flow.SwitchID{flow.SwitchID(i % 3), 9},
		}
	}
	return flow.NewFrame(records)
}

// encodeFrame renders a frame's canonical LPF1 bytes.
func encodeFrame(t testing.TB, f *flow.Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWireRoundTrip(t *testing.T) {
	frames := []*flow.Frame{wireFrame(t, 0, 5), wireFrame(t, 1, 0), wireFrame(t, 2, 33)}
	var buf bytes.Buffer
	if err := session.WriteHello(&buf, "cluster-a.prod_1"); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := session.WriteFrameMessage(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := session.WriteEndOfStream(&buf); err != nil {
		t.Fatal(err)
	}

	r := bytes.NewReader(buf.Bytes())
	cluster, err := session.ReadHello(r)
	if err != nil {
		t.Fatal(err)
	}
	if cluster != "cluster-a.prod_1" {
		t.Fatalf("cluster = %q", cluster)
	}
	for i := 0; ; i++ {
		f, err := session.ReadFrameMessage(r)
		if err == io.EOF {
			if i != len(frames) {
				t.Fatalf("end-of-stream after %d frames, want %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got, want := encodeFrame(t, f), encodeFrame(t, frames[i]); !bytes.Equal(got, want) {
			t.Fatalf("frame %d decoded to a different encoding (%d vs %d bytes)", i, len(got), len(want))
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left after end-of-stream", r.Len())
	}
}

func TestValidateClusterID(t *testing.T) {
	for _, id := range []string{"a", "A9", "prod-eu.west_2", "0cluster", strings.Repeat("x", session.MaxClusterIDLen)} {
		if err := session.ValidateClusterID(id); err != nil {
			t.Errorf("ValidateClusterID(%q) = %v, want nil", id, err)
		}
	}
	for _, id := range []string{"", "-a", ".a", "_a", "a/b", "a b", "a\x00b", "ünïcode", strings.Repeat("x", session.MaxClusterIDLen+1)} {
		if err := session.ValidateClusterID(id); err == nil {
			t.Errorf("ValidateClusterID(%q) = nil, want error", id)
		}
	}
}

func TestReadHelloRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":        nil,
		"short magic":  []byte("LPW"),
		"wrong magic":  []byte("LPX1\x01a"),
		"old version":  []byte("LPW0\x01a"),
		"zero id len":  []byte("LPW1\x00"),
		"truncated id": []byte("LPW1\x05ab"),
		"bad id byte":  []byte("LPW1\x03a/b"),
		"bad first":    []byte("LPW1\x02-a"),
	}
	for name, data := range cases {
		if _, err := session.ReadHello(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadHello accepted %q", name, data)
		}
	}
}

func TestReadFrameMessageStrict(t *testing.T) {
	f := wireFrame(t, 3, 4)
	enc := encodeFrame(t, f)
	prefix := func(n uint32) []byte {
		return []byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)}
	}

	// Stream ending without the sentinel is an unexpected EOF, not a clean
	// end.
	_, err := session.ReadFrameMessage(bytes.NewReader(nil))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("missing sentinel: err = %v, want ErrUnexpectedEOF", err)
	}

	// Declared length below the minimum frame size.
	if _, err := session.ReadFrameMessage(bytes.NewReader(prefix(flow.FrameOverhead - 1))); err == nil {
		t.Fatal("undersized length accepted")
	}
	// Declared length above the wire cap.
	if _, err := session.ReadFrameMessage(bytes.NewReader(prefix(session.MaxWireFrameLen + 1))); err == nil {
		t.Fatal("oversized length accepted")
	}
	// Truncated payload.
	data := append(prefix(uint32(len(enc))), enc[:len(enc)-3]...)
	if _, err := session.ReadFrameMessage(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Payload shorter than its declared length: the extra byte must be
	// flagged, never silently consumed or resynced past.
	data = append(prefix(uint32(len(enc)+1)), enc...)
	data = append(data, 0xEE)
	if _, err := session.ReadFrameMessage(bytes.NewReader(data)); err == nil {
		t.Fatal("frame message with trailing byte accepted")
	}
	// Corrupted payload fails the frame codec's own validation.
	mut := append([]byte(nil), enc...)
	mut[len(mut)-1] ^= 0xFF // CRC trailer
	data = append(prefix(uint32(len(mut))), mut...)
	if _, err := session.ReadFrameMessage(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// The exact encoding still decodes.
	got, err := session.ReadFrameMessage(bytes.NewReader(append(prefix(uint32(len(enc))), enc...)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeFrame(t, got), enc) {
		t.Fatal("decoded frame re-encodes differently")
	}
}

// FuzzSessionWire drives the wire decoder with arbitrary connection bytes:
// a hello followed by frame messages. It must never panic, and any frame
// it accepts must re-encode to a message the decoder accepts again,
// byte-identically (the canonical-form property the LPF1 codec guarantees,
// carried through the wire framing).
func FuzzSessionWire(f *testing.F) {
	valid := func(cluster string, frames ...*flow.Frame) []byte {
		var buf bytes.Buffer
		if err := session.WriteHello(&buf, cluster); err != nil {
			f.Fatal(err)
		}
		for _, fr := range frames {
			if err := session.WriteFrameMessage(&buf, fr); err != nil {
				f.Fatal(err)
			}
		}
		if err := session.WriteEndOfStream(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid("a"))
	f.Add(valid("cluster-b", wireFrame(f, 1, 3)))
	f.Add(valid("c.0", wireFrame(f, 2, 0), wireFrame(f, 3, 17)))
	if seed := valid("trunc", wireFrame(f, 4, 9)); len(seed) > 10 {
		f.Add(seed[:len(seed)/2])
		mut := append([]byte(nil), seed...)
		mut[7] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte("LPW1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		cluster, err := session.ReadHello(r)
		if err != nil {
			return
		}
		if err := session.ValidateClusterID(cluster); err != nil {
			t.Fatalf("ReadHello returned invalid cluster id %q: %v", cluster, err)
		}
		for {
			fr, err := session.ReadFrameMessage(r)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := session.WriteFrameMessage(&buf, fr); err != nil {
				t.Fatalf("accepted frame failed to re-encode: %v", err)
			}
			back, err := session.ReadFrameMessage(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-encoded frame message rejected: %v", err)
			}
			if !bytes.Equal(encodeFrame(t, back), encodeFrame(t, fr)) {
				t.Fatal("frame changed across wire round-trip")
			}
		}
	})
}
