package session_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/session"
	"github.com/llmprism/llmprism/internal/topology"
)

// storeConfig is baseConfig on a tighter grid: 2s windows over the 15s
// trace give enough windows that some release (and checkpoint) mid-push,
// which the crash-resume and dead-session tests depend on.
func storeConfig(topo *topology.Topology) session.Config {
	cfg := baseConfig(topo)
	cfg.Window = 2 * time.Second
	cfg.Lateness = time.Second
	return cfg
}

// runSession opens a session from cfg, pushes records in batches and
// closes it, returning every released report in window order.
func runSession(t *testing.T, cfg session.Config, records []flow.Record, batch int) []*llmprism.Report {
	t.Helper()
	s, err := session.Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()
	var out []*llmprism.Report
	for lo := 0; lo < len(records); lo += batch {
		hi := min(lo+batch, len(records))
		reports, err := s.Push(records[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, reports...)
	}
	reports, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	return append(out, reports...)
}

// replayText replays a recorded trace path and renders its reports with
// PrintReports — the bit-identity currency every equivalence check uses.
func replayText(t *testing.T, cfg session.Config, path string, salvage bool) string {
	t.Helper()
	rep, err := session.OpenReplay(context.Background(), cfg, path, salvage)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Release()
	var text strings.Builder
	if err := rep.Run(func(reports []*llmprism.Report) {
		session.PrintReports(&text, reports)
	}); err != nil {
		t.Fatal(err)
	}
	return text.String()
}

// TestSessionStoreMatchesSingleFileArchive is the store's session-level
// equivalence gate: the same trace captured into a rotating multi-segment
// store and into a single-file archive must deliver identical live
// reports, and replaying either capture must reproduce them bit for bit.
func TestSessionStoreMatchesSingleFileArchive(t *testing.T) {
	records, topo := managerTrace(t)
	dir := t.TempDir()

	fileCfg := baseConfig(topo)
	fileCfg.ArchivePath = filepath.Join(dir, "trace.llpa")
	fileReports := runSession(t, fileCfg, records, 400)
	if len(fileReports) < 2 {
		t.Fatalf("reference run released %d windows, want ≥ 2", len(fileReports))
	}

	storeCfg := baseConfig(topo)
	storeCfg.StoreDir = filepath.Join(dir, "trace.llps")
	storeCfg.Rotate = archive.StorePolicy{RotateWindows: 1}
	storeReports := runSession(t, storeCfg, records, 400)

	if !reflect.DeepEqual(storeReports, fileReports) {
		t.Fatalf("store-backed session reports differ from single-file session (%d vs %d windows)",
			len(storeReports), len(fileReports))
	}

	var want strings.Builder
	session.PrintReports(&want, fileReports)
	if got := replayText(t, baseConfig(topo), fileCfg.ArchivePath, false); got != want.String() {
		t.Error("single-file replay differs from live reports")
	}
	if got := replayText(t, baseConfig(topo), storeCfg.StoreDir, false); got != want.String() {
		t.Error("store replay differs from live reports")
	}

	// The rotation policy actually rotated: one segment per window.
	rep, err := session.OpenReplay(context.Background(), baseConfig(topo), storeCfg.StoreDir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Abort()
	if rep.NumSegments() != len(fileReports) {
		t.Errorf("store segments = %d, want one per window (%d)", rep.NumSegments(), len(fileReports))
	}
	if rep.NumWindows() != len(fileReports) {
		t.Errorf("store windows = %d, want %d", rep.NumWindows(), len(fileReports))
	}
}

// TestSessionStoreResumeMatchesUninterrupted kills a store-backed capture
// at several points mid-ingest (checkpoint written, open segment left as a
// torn .tmp) and resumes it from the checkpoint. The resumed session must
// re-emit from the checkpoint boundary, and the final store must replay
// bit-identically to one captured without any interruption.
func TestSessionStoreResumeMatchesUninterrupted(t *testing.T) {
	records, topo := managerTrace(t)
	dir := t.TempDir()

	refCfg := storeConfig(topo)
	refCfg.StoreDir = filepath.Join(dir, "ref.llps")
	refCfg.Rotate = archive.StorePolicy{RotateWindows: 2}
	refCfg.CheckpointPath = filepath.Join(dir, "ref.llpk")
	refReports := runSession(t, refCfg, records, 200)
	if len(refReports) < 4 {
		t.Fatalf("reference run released %d windows, want ≥ 4", len(refReports))
	}
	var want strings.Builder
	session.PrintReports(&want, refReports)

	// Crash as soon as the session has released (and so checkpointed and
	// archived) at least wantCrashed windows — different crash points land
	// on different rotation phases of the 2-window segments.
	for _, wantCrashed := range []int{1, 3} {
		t.Run(fmt.Sprintf("crashAfter%dWindows", wantCrashed), func(t *testing.T) {
			sub := t.TempDir()
			cfg := storeConfig(topo)
			cfg.StoreDir = filepath.Join(sub, "trace.llps")
			cfg.Rotate = archive.StorePolicy{RotateWindows: 2}
			cfg.CheckpointPath = filepath.Join(sub, "trace.llpk")

			s, err := session.Open(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var crashed []*llmprism.Report
			for lo := 0; lo < len(records) && len(crashed) < wantCrashed; lo += 200 {
				hi := min(lo+200, len(records))
				reports, err := s.Push(records[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				crashed = append(crashed, reports...)
			}
			if len(crashed) < wantCrashed {
				t.Fatalf("whole trace released only %d windows mid-push, want ≥ %d to crash after", len(crashed), wantCrashed)
			}
			s.Abort() // the kill: no finalize, open segment stays a .tmp

			// A strict open must refuse the crashed store.
			if _, err := session.OpenReplay(context.Background(), baseConfig(topo), cfg.StoreDir, false); err == nil {
				t.Fatal("strict replay opened a crashed store")
			}

			// Resume from the checkpoint and re-push the whole trace:
			// records before the resume point are dropped late harmlessly.
			rcfg := cfg
			rcfg.Resume = true
			rs, err := session.Open(context.Background(), rcfg)
			if err != nil {
				t.Fatal(err)
			}
			defer rs.Abort()
			if rec := rs.StoreRecovery(); rec == nil {
				t.Error("resumed session reports no store reconciliation")
			}
			var resumed []*llmprism.Report
			for lo := 0; lo < len(records); lo += 200 {
				hi := min(lo+200, len(records))
				reports, err := rs.Push(records[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				resumed = append(resumed, reports...)
			}
			tail, err := rs.Close()
			if err != nil {
				t.Fatal(err)
			}
			resumed = append(resumed, tail...)

			// The pre-crash reports plus the resumed session's re-emission
			// must re-assemble the uninterrupted sequence exactly. The
			// resumed run may re-emit windows the crashed run had already
			// released (those at or past the checkpoint's resume seq).
			if len(resumed) == 0 {
				t.Fatal("resumed session released no windows")
			}
			firstSeq := resumed[0].Window.Seq
			var joined []*llmprism.Report
			for _, r := range crashed {
				if r.Window.Seq < firstSeq {
					joined = append(joined, r)
				}
			}
			joined = append(joined, resumed...)
			if !reflect.DeepEqual(joined, refReports) {
				t.Errorf("crashed+resumed reports differ from uninterrupted run (%d vs %d windows)",
					len(joined), len(refReports))
			}

			// And the store on disk replays bit-identically to the
			// uninterrupted capture.
			if got := replayText(t, baseConfig(topo), cfg.StoreDir, false); got != want.String() {
				t.Error("replay of resumed store differs from uninterrupted run")
			}
		})
	}
}

// TestSessionResumeValidation pins the Resume precondition errors.
func TestSessionResumeValidation(t *testing.T) {
	_, topo := managerTrace(t)
	dir := t.TempDir()
	cfg := baseConfig(topo)
	cfg.Resume = true
	if _, err := session.Open(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "CheckpointPath") {
		t.Errorf("Resume without checkpoint: err = %v, want CheckpointPath error", err)
	}
	cfg.CheckpointPath = filepath.Join(dir, "x.llpk")
	cfg.ArchivePath = filepath.Join(dir, "x.llpa")
	if _, err := session.Open(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "single-file") {
		t.Errorf("Resume with ArchivePath: err = %v, want single-file refusal", err)
	}
	// First boot under resume: no checkpoint yet means a fresh start, not
	// an error — the daemon passes Resume unconditionally at boot.
	cfg.ArchivePath = ""
	cfg.StoreDir = filepath.Join(dir, "x.llps")
	s, err := session.Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Resume with no checkpoint yet (first boot): %v", err)
	}
	if s.StoreRecovery() != nil {
		t.Error("first boot under resume reported a store recovery")
	}
	s.Abort()

	both := baseConfig(topo)
	both.ArchivePath = filepath.Join(dir, "y.llpa")
	both.StoreDir = filepath.Join(dir, "y.llps")
	if _, err := session.Open(context.Background(), both); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("ArchivePath+StoreDir: err = %v, want mutual-exclusion error", err)
	}
}

// TestManagerCloseMixedHealthyAndDeadSessions drives a manager holding
// both healthy sessions (one archive-backed, one store-backed) and a
// session killed mid-stream by a push error (its checkpoint directory
// does not exist, so the first released window fails to persist). Close
// must finalize the healthy captures, report the dead cluster's error,
// and leave the dead session's capture temporary on disk — salvageable.
func TestManagerCloseMixedHealthyAndDeadSessions(t *testing.T) {
	records, topo := managerTrace(t)
	dir := t.TempDir()
	mgr, err := session.NewManager(session.ManagerConfig{
		Config: func(cluster string) (session.Config, error) {
			c := storeConfig(topo)
			switch cluster {
			case "healthy":
				c.ArchivePath = filepath.Join(dir, "healthy.llpa")
			case "healthystore":
				c.StoreDir = filepath.Join(dir, "healthystore.llps")
				c.Rotate = archive.StorePolicy{RotateWindows: 2}
			case "dead":
				c.ArchivePath = filepath.Join(dir, "dead.llpa")
				// Checkpoint saves into a directory that does not exist:
				// the first released window's save fails, after the window
				// was already appended to the archive temporary.
				c.CheckpointPath = filepath.Join(dir, "no-such-dir", "dead.llpk")
			}
			return c, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, cluster := range []string{"healthy", "healthystore", "dead"} {
		cs, err := mgr.Session(ctx, cluster)
		if err != nil {
			t.Fatal(err)
		}
		var pushErr error
		for lo := 0; lo < len(records); lo += 400 {
			hi := min(lo+400, len(records))
			if pushErr = cs.Push(records[lo:hi]); pushErr != nil {
				break
			}
		}
		if cluster == "dead" {
			if pushErr == nil {
				t.Fatal("dead cluster's pushes all succeeded; checkpoint failure did not surface")
			}
			// The session is dead: every later push returns the same error.
			if err := cs.Push(records[:1]); err == nil {
				t.Fatal("dead session accepted another push")
			}
		} else if pushErr != nil {
			t.Fatalf("cluster %s: %v", cluster, pushErr)
		}
	}

	err = mgr.Close()
	if err == nil || !strings.Contains(err.Error(), `cluster "dead"`) {
		t.Fatalf("Close: err = %v, want dead cluster's error", err)
	}

	// Healthy captures finalized and replayable.
	for _, path := range []string{filepath.Join(dir, "healthy.llpa"), filepath.Join(dir, "healthystore.llps")} {
		if got := replayText(t, baseConfig(topo), path, false); got == "" {
			t.Errorf("replay of %s produced no reports", filepath.Base(path))
		}
	}

	// The dead session's archive was never finalized; its temporary holds
	// the windows that were archived before the checkpoint failure, and a
	// salvage open recovers them.
	if _, err := os.Stat(filepath.Join(dir, "dead.llpa")); !os.IsNotExist(err) {
		t.Fatalf("dead cluster's archive was finalized (err=%v)", err)
	}
	tmp := filepath.Join(dir, "dead.llpa.tmp")
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("dead cluster's archive temporary missing: %v", err)
	}
	rep, err := session.OpenReplay(ctx, baseConfig(topo), tmp, true)
	if err != nil {
		t.Fatalf("salvage replay of dead temporary: %v", err)
	}
	defer rep.Release()
	if rep.Recovery == nil {
		t.Error("salvage open of torn temporary reports no recovery")
	}
	if rep.NumWindows() < 1 {
		t.Errorf("salvaged %d windows from dead temporary, want ≥ 1", rep.NumWindows())
	}
	var text strings.Builder
	if err := rep.Run(func(reports []*llmprism.Report) {
		session.PrintReports(&text, reports)
	}); err != nil {
		t.Fatal(err)
	}
	if text.Len() == 0 {
		t.Error("salvaged replay produced no reports")
	}
}
