// Package session extracts the monitor-session lifecycle out of the CLI
// into a reusable manager, so the same wiring serves one-shot commands
// (llmprism monitor/record/replay) and the long-running multi-tenant fleet
// daemon (llmprismd) without re-assembling analyzer options, archive
// writers and checkpoint plumbing at every call site.
//
// The package has three layers:
//
//   - Config + Session: one options struct describing a monitor session —
//     window geometry, analyzer knobs (bucket, workers, localization,
//     chronic suppression), archive and checkpoint paths — and the session
//     built from it. Open assembles the tier-stratified analyzer, the
//     monitor options and the capture sink once: either a single-file
//     archive (written to .tmp, renamed atomically on a clean Close) or,
//     with StoreDir set, a rotating multi-segment archive.Store whose
//     closed segments finalize atomically mid-run. With Resume, Open
//     restarts from the checkpoint and reconciles the store to the resume
//     point, so a killed capture continues bit-identically. OpenReplay is
//     the inverse: it reopens a recorded archive or store directory —
//     strictly, or salvaging what a torn capture left — restores the
//     recorded window grid and anchor, and replays every archived frame
//     through a fresh Session, reproducing the recorded reports bit for
//     bit. OpenScan runs time/pair/switch-bounded queries over a store
//     without building a session at all.
//
//   - Manager: a multi-tenant session registry keyed by cluster ID.
//     Sessions are created lazily on first use from a per-cluster Config
//     builder, bounded by MaxSessions, and rejected with a precise error
//     when two clusters would write the same archive or checkpoint path.
//     Each ClusterSession serializes its pushes behind a mutex, so many
//     collector connections can feed the manager concurrently while every
//     cluster's window pipeline stays strictly ordered; completed reports
//     are delivered, in window order, through the OnReports callback.
//     Close checkpoints and finalizes every session in deterministic
//     (sorted cluster) order.
//
//   - Wire framing (wire.go): the minimal length-prefixed LPF1 stream
//     framing llmprismd ingests — an LPW1 hello naming the cluster, then
//     u32-length-prefixed binary frames, then an end-of-stream marker —
//     with a strict decoder matching the rest of the repo's wire surfaces
//     (bounded allocations, exact-length validation, loud failure on
//     garbage). See wire.go for the byte layout and version policy.
//
// Determinism discipline carries through every layer: a session fed the
// same frames yields bit-identical reports whether it runs under the CLI,
// the manager, or the daemon, for any worker count, pipeline depth, or
// interleaving of other clusters' connections.
package session

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

// Config describes one monitor session: the analysis knobs and window
// geometry that cmd/llmprism's monitor, record and replay subcommands (and
// every daemon cluster session) build their monitors from. The zero value
// of each field keeps the corresponding library default.
type Config struct {
	// Topo is the fabric topology; it doubles as the endpoint→server
	// mapper and as the leaf/spine classifier for tier-stratified switch
	// diagnosis. Required.
	Topo *topology.Topology
	// Bucket is the switch-level aggregation bucket width (0 = library
	// default).
	Bucket time.Duration
	// Workers bounds the per-job analysis fan-out (0 = GOMAXPROCS).
	Workers int
	// Localize enables root-cause localization (ranked suspects plus the
	// monitor's fused cross-window ranking).
	Localize bool
	// Suppress enables chronic-anomaly suppression (the incident-centric
	// alert surface).
	Suppress bool

	// Window, Hop and Lateness set the event-time window geometry
	// (Hop 0 = tumbling).
	Window, Hop, Lateness time.Duration
	// Depth bounds how many closed windows analyze concurrently.
	Depth int

	// ArchivePath, when non-empty, records every completed window into a
	// binary trace archive at this path. The capture is written to
	// ArchivePath+".tmp" and renamed into place only on a clean Close, so
	// a crashed session never leaves a torn file under the final name
	// (the .tmp remains for salvage). Mutually exclusive with StoreDir.
	ArchivePath string
	// StoreDir, when non-empty, records every completed window into a
	// rotating multi-segment store rooted at this directory instead of a
	// single file. Segments rotate at window boundaries per Rotate, and
	// each closed segment is finalized atomically as the capture runs, so
	// a crashed session loses at most the open segment's temporary — and
	// even that stays salvageable. Mutually exclusive with ArchivePath.
	StoreDir string
	// Rotate bounds when the store rotates to a new segment and how much
	// history it retains; the zero policy writes one unbounded segment and
	// keeps everything. Only meaningful with StoreDir.
	Rotate archive.StorePolicy
	// Resume makes Open restart from the CheckpointPath checkpoint instead
	// of starting fresh: the monitor restores the recorded grid and
	// continuity state, and the StoreDir store (if any) is reconciled to
	// the checkpoint's resume point — a crashed open-segment temporary is
	// salvaged up to it — before new windows append. When the checkpoint
	// does not exist yet the session starts fresh (first boot under
	// resume), reconciling any store the previous start left behind to
	// resume point zero. Requires CheckpointPath and is incompatible with
	// ArchivePath: a single-file archive cannot be reopened for append.
	Resume bool
	// CheckpointPath, when non-empty, persists the session's continuity
	// state there after every released window (atomic save), enabling
	// crash-resume.
	CheckpointPath string
	// Anchor pre-sets the event-time grid origin; replay uses it to
	// restore a recorded session's exact window grid. Zero anchors at the
	// first record.
	Anchor time.Time
}

// AnalyzerOptions returns the analyzer option set the config describes —
// built once, shared by every subcommand, instead of the three hand-rolled
// assemblies the CLI used to carry.
func (c Config) AnalyzerOptions() []llmprism.Option {
	opts := []llmprism.Option{llmprism.WithWorkers(c.Workers)}
	if c.Bucket > 0 {
		opts = append(opts, llmprism.WithSwitchBucket(c.Bucket))
	}
	if c.Localize {
		opts = append(opts, llmprism.WithLocalization(llmprism.LocalizationConfig{}))
	}
	return opts
}

// Analyzer builds the plain (tier-pooled) analyzer — the historical
// comparison the analyze/timeline/switches subcommands keep.
func (c Config) Analyzer() *llmprism.Analyzer {
	return llmprism.New(c.AnalyzerOptions()...)
}

// TieredAnalyzer builds the topology-aware analyzer the monitoring paths
// use: the switch-bandwidth peer comparison is stratified by tier, so
// leaves are judged against leaves and spines against spines.
func (c Config) TieredAnalyzer() *llmprism.Analyzer {
	topo := c.Topo
	return llmprism.New(append(c.AnalyzerOptions(), llmprism.WithSwitchTiers(func(sw llmprism.SwitchID) int {
		if topo.IsSpine(sw) {
			return 1
		}
		return 0
	}))...)
}

// monitorOptions assembles the monitor option set (everything but the
// archive sink, which needs the opened temporary file).
func (c Config) monitorOptions() []llmprism.MonitorOption {
	opts := []llmprism.MonitorOption{
		llmprism.WithLateness(c.Lateness),
		llmprism.WithPipelineDepth(c.Depth),
	}
	if c.Hop > 0 {
		opts = append(opts, llmprism.WithHop(c.Hop))
	}
	if c.Suppress {
		opts = append(opts, llmprism.WithChronicSuppression(llmprism.IncidentConfig{}))
	}
	if !c.Anchor.IsZero() {
		opts = append(opts, llmprism.WithAnchor(c.Anchor))
	}
	if c.CheckpointPath != "" {
		opts = append(opts, llmprism.WithCheckpoint(c.CheckpointPath))
	}
	return opts
}

// Session is one open monitor-stream session built from a Config. It owns
// the full lifecycle the CLI subcommands used to hand-roll: the streaming
// monitor, the archive capture file (created as .tmp, finalized atomically
// on Close) and the checkpoint plumbing. A Session is single-goroutine,
// like the MonitorStream underneath; the Manager adds the per-cluster
// serialization the daemon needs.
type Session struct {
	cfg      Config
	monitor  *llmprism.Monitor
	stream   *llmprism.MonitorStream
	af       *os.File
	tmpPath  string
	store    *archive.StoreWriter
	storeRec *archive.StoreRecovery
	windows  int
	closed   bool
}

// Open builds the session the config describes and starts its monitor
// stream. ctx bounds every analysis the session runs. On error nothing is
// left open, except that a created archive temporary stays on disk (the
// same crash-salvage contract a mid-session failure has).
func Open(ctx context.Context, cfg Config) (*Session, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("session: nil topology")
	}
	if cfg.ArchivePath != "" && cfg.StoreDir != "" {
		return nil, fmt.Errorf("session: ArchivePath and StoreDir are mutually exclusive")
	}
	if cfg.Resume {
		if cfg.CheckpointPath == "" {
			return nil, fmt.Errorf("session: Resume requires CheckpointPath")
		}
		if cfg.ArchivePath != "" {
			return nil, fmt.Errorf("session: Resume cannot append to a single-file archive; use StoreDir")
		}
	}
	s := &Session{cfg: cfg}
	opts := cfg.monitorOptions()
	if cfg.ArchivePath != "" {
		s.tmpPath = cfg.ArchivePath + ".tmp"
		af, err := os.Create(s.tmpPath)
		if err != nil {
			return nil, err
		}
		s.af = af
		opts = append(opts, llmprism.WithArchive(af))
	}
	if cfg.StoreDir != "" {
		opts = append(opts, llmprism.WithArchiveSink(s.openStore))
	}
	var monitor *llmprism.Monitor
	var err error
	if cfg.Resume {
		monitor, err = resumeMonitor(cfg, opts)
	} else {
		monitor, err = llmprism.NewMonitor(cfg.TieredAnalyzer(), cfg.Topo, cfg.Window, opts...)
	}
	if err != nil {
		s.Abort()
		return nil, err
	}
	// The monitor must be visible before Stream runs: Stream invokes the
	// openStore factory, which reads the resumed checkpoint's seq off it.
	s.monitor = monitor
	stream, err := monitor.Stream(ctx)
	if err != nil {
		s.Abort()
		return nil, err
	}
	s.stream = stream
	return s, nil
}

// resumeMonitor rebuilds the monitor from the config's checkpoint; the
// checkpoint's window geometry and grid state are authoritative over the
// config's. A checkpoint that does not exist yet means the previous run
// (if any) never released a window: the monitor starts fresh.
func resumeMonitor(cfg Config, opts []llmprism.MonitorOption) (*llmprism.Monitor, error) {
	f, err := os.Open(cfg.CheckpointPath)
	if errors.Is(err, fs.ErrNotExist) {
		return llmprism.NewMonitor(cfg.TieredAnalyzer(), cfg.Topo, cfg.Window, opts...)
	}
	if err != nil {
		return nil, fmt.Errorf("session: resume: %w", err)
	}
	defer f.Close()
	return llmprism.ResumeMonitor(cfg.TieredAnalyzer(), cfg.Topo, f, opts...)
}

// openStore is the archive-sink factory Stream invokes with the session's
// resolved window geometry. A fresh session claims StoreDir as a new
// store; a resumed one reconciles the existing store with the checkpoint
// — salvaging a crashed open-segment temporary up to the resume boundary
// — and continues appending after it.
func (s *Session) openStore(am llmprism.ArchiveMeta) (llmprism.ArchiveSink, error) {
	meta := archive.Meta{Width: am.Width, Hop: am.Hop, Lateness: am.Lateness}
	if s.cfg.Resume {
		// First boot under resume: nothing was claimed yet, so create the
		// store rather than reconcile one.
		if _, err := os.Stat(filepath.Join(s.cfg.StoreDir, archive.StoreManifestName)); errors.Is(err, fs.ErrNotExist) {
			sw, err := archive.CreateStoreWriter(s.cfg.StoreDir, meta, s.cfg.Rotate)
			if err != nil {
				return nil, err
			}
			s.store = sw
			return sw, nil
		}
		sw, rec, err := archive.ResumeStoreWriter(s.cfg.StoreDir, meta, s.cfg.Rotate, s.monitor.ResumeSeq())
		if err != nil {
			return nil, err
		}
		s.store, s.storeRec = sw, rec
		return sw, nil
	}
	sw, err := archive.CreateStoreWriter(s.cfg.StoreDir, meta, s.cfg.Rotate)
	if err != nil {
		return nil, err
	}
	s.store = sw
	return sw, nil
}

// StoreRecovery reports what reconciling the store with the checkpoint
// found and repaired when the session was opened with Resume (nil on a
// fresh session, or when no store is configured).
func (s *Session) StoreRecovery() *archive.StoreRecovery { return s.storeRec }

// Window returns the session's resolved window width.
func (s *Session) Window() time.Duration { return s.monitor.Window() }

// Hop returns the session's resolved window stride.
func (s *Session) Hop() time.Duration { return s.monitor.Hop() }

// Lateness returns the session's allowed out-of-orderness.
func (s *Session) Lateness() time.Duration { return s.monitor.Lateness() }

// Windows returns how many window reports the session has released so far.
func (s *Session) Windows() int { return s.windows }

// Late returns how many record-to-window assignments were dropped for
// arriving past the lateness bound.
func (s *Session) Late() uint64 { return s.stream.Late() }

// Pending returns the number of record-to-window assignments buffered in
// open windows.
func (s *Session) Pending() int { return s.stream.Pending() }

// Watermark returns the session's current event-time watermark.
func (s *Session) Watermark() time.Time { return s.stream.Watermark() }

// Checkpoint serializes the session's continuity state as of the most
// recently released window to w — the explicit counterpart of
// Config.CheckpointPath for callers that manage persistence themselves.
func (s *Session) Checkpoint(w io.Writer) error { return s.stream.Checkpoint(w) }

// Push ingests one batch of records and returns every report that became
// ready, in window order.
func (s *Session) Push(records []flow.Record) ([]*llmprism.Report, error) {
	reports, err := s.stream.Push(records)
	s.windows += len(reports)
	return reports, err
}

// PushFrame ingests one already-columnar frame — the bulk counterpart of
// Push used by archive replay and the daemon's wire ingest, so a decoded
// window never materializes per-record structs.
func (s *Session) PushFrame(f *flow.Frame) ([]*llmprism.Report, error) {
	reports, err := s.stream.PushFrame(f)
	s.windows += len(reports)
	return reports, err
}

// Close flushes every remaining window, returns the trailing reports in
// window order and — on a clean close with an archive configured — syncs
// the capture temporary and renames it into its final path. A store is
// finalized by the stream itself (last segment renamed, manifest
// rewritten) before Close returns. On error the temporary stays on disk
// for salvage and the final path is never touched.
func (s *Session) Close() ([]*llmprism.Report, error) {
	if s.closed {
		return nil, fmt.Errorf("session: already closed")
	}
	s.closed = true
	reports, err := s.stream.Close()
	s.windows += len(reports)
	if err != nil {
		s.releaseArchive()
		return reports, err
	}
	// The stream finalized the store sink on its way out.
	s.store = nil
	if s.af != nil {
		af := s.af
		s.af = nil
		if err := af.Sync(); err != nil {
			return reports, err
		}
		if err := af.Close(); err != nil {
			return reports, err
		}
		if err := os.Rename(s.tmpPath, s.cfg.ArchivePath); err != nil {
			return reports, err
		}
	}
	return reports, nil
}

// Abort releases the session's file handles without finalizing anything:
// a single-file archive temporary is closed but left on disk (salvageable
// with replay -recover), a store keeps its finalized segments and
// manifest as last persisted with the open segment's .tmp left for
// salvage, and no final archive path is ever created. Abort after a clean
// Close is a no-op, so callers can defer it.
func (s *Session) Abort() {
	s.closed = true
	s.releaseArchive()
}

// releaseArchive closes the capture temporary or store writer (if still
// open) without finalizing either.
func (s *Session) releaseArchive() {
	if s.af != nil {
		s.af.Close()
		s.af = nil
	}
	if s.store != nil {
		s.store.Abort()
		s.store = nil
	}
}

// PrintReports writes the per-window summary lines every monitoring
// surface emits — the monitor/record/replay subcommands and the daemon's
// query endpoint share it, so a recorded session, its replay and its
// daemon-ingested twin can be compared line for line.
func PrintReports(w io.Writer, reports []*llmprism.Report) {
	for _, r := range reports {
		alerts := r.Alerts()
		fmt.Fprintf(w, "window %d [%s..%s): %d jobs, %d alerts, %d incidents\n",
			r.Window.Seq,
			r.Window.Start.Format(time.TimeOnly), r.Window.End.Format(time.TimeOnly),
			len(r.Jobs), len(alerts), len(r.Incidents))
		for _, inc := range r.Incidents {
			state := fmt.Sprintf("firing %d windows, first seen %s",
				inc.Windows, inc.FirstSeen.Format(time.TimeOnly))
			if inc.Chronic {
				state = "chronic, " + state
			}
			if !inc.StillFiring {
				state = "resolved"
			}
			fmt.Fprintf(w, "  job %d %v: %s — %s\n", inc.Key.Job, inc.Key.Kind, state, inc.Detail)
		}
		for i, s := range r.Suspects {
			if i == 3 {
				fmt.Fprintf(w, "  … and %d more suspects\n", len(r.Suspects)-i)
				break
			}
			fmt.Fprintf(w, "  suspect #%d %v: score %.2f, suspect for %d windows since %s\n",
				i+1, s.Component, s.Score, s.Windows, s.FirstSeen.Format(time.TimeOnly))
		}
		for i, s := range r.FusedSuspects {
			if i == 3 {
				fmt.Fprintf(w, "  … and %d more fused suspects\n", len(r.FusedSuspects)-i)
				break
			}
			fmt.Fprintf(w, "  fused #%d %v: fused %.2f over %d windows since %s\n",
				i+1, s.Component, s.Fused, s.Windows, s.FirstSeen.Format(time.TimeOnly))
		}
	}
}
