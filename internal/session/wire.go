package session

// Wire framing: the minimal length-prefixed LPF1 stream framing llmprismd
// ingests from collector connections. A connection carries exactly one
// cluster's flow stream:
//
//	hello:  magic "LPW1" | idLen u8 | cluster id (idLen bytes)
//	frame:  len u32 (little-endian) | LPF1 frame encoding (len bytes)
//	...     (any number of frame messages, in event-time order)
//	end:    len u32 == 0
//
// The cluster id names the tenant session the frames route into; it is
// restricted to 1..128 bytes of [A-Za-z0-9._-] starting with an
// alphanumeric, because the daemon derives per-cluster archive and
// checkpoint file names from it. The frame payload is exactly the binary
// columnar layout flow.Frame.WriteTo produces (magic "LPF1", CRC-trailed),
// so the wire format inherits the frame codec's strict validation: the
// decoder additionally requires the payload to consume its declared length
// exactly — a frame shorter or longer than its prefix is a protocol error,
// never a silent resync.
//
// Version policy: the "LPW1" magic carries the framing version, exactly
// like the LPF/LPA/LPK magics of the other wire surfaces. Any incompatible
// change to the hello or message layout bumps the digit; the decoder
// accepts only the version it was built for, and a frame payload whose own
// LPF version the decoder does not understand fails in flow.ReadFrame.
// Decoding is bounded: the id length is one byte, frame lengths are capped
// at MaxWireFrameLen, and the frame decoder's allocation growth is bounded
// by bytes actually read, so a forged header cannot commit memory it never
// sends.

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/llmprism/llmprism/internal/flow"
)

// wireMagic identifies version 1 of the collector stream framing.
var wireMagic = [4]byte{'L', 'P', 'W', '1'}

const (
	// MaxClusterIDLen bounds the cluster id carried in a hello.
	MaxClusterIDLen = 128
	// MaxWireFrameLen bounds one frame message's declared payload length
	// (1 GiB — far above any real window, far below an allocation bomb).
	MaxWireFrameLen = 1 << 30
)

// ValidateClusterID checks a cluster id against the wire (and file-name)
// constraints: 1..128 bytes of [A-Za-z0-9._-], starting alphanumeric.
func ValidateClusterID(id string) error {
	if id == "" {
		return fmt.Errorf("session: empty cluster id")
	}
	if len(id) > MaxClusterIDLen {
		return fmt.Errorf("session: cluster id %q exceeds %d bytes", id, MaxClusterIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			continue
		}
		if i > 0 && (c == '-' || c == '_' || c == '.') {
			continue
		}
		return fmt.Errorf("session: cluster id %q: byte %d (%q) outside [A-Za-z0-9._-] (first byte must be alphanumeric)", id, i, c)
	}
	return nil
}

// WriteHello writes the connection hello naming the cluster the stream's
// frames belong to.
func WriteHello(w io.Writer, cluster string) error {
	if err := ValidateClusterID(cluster); err != nil {
		return err
	}
	buf := make([]byte, 0, len(wireMagic)+1+len(cluster))
	buf = append(buf, wireMagic[:]...)
	buf = append(buf, byte(len(cluster)))
	buf = append(buf, cluster...)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("session: write hello: %w", err)
	}
	return nil
}

// ReadHello reads and validates a connection hello, returning the cluster
// id the stream's frames route to.
func ReadHello(r io.Reader) (string, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", fmt.Errorf("session: read hello: %w", err)
	}
	if [4]byte(hdr[:4]) != wireMagic {
		return "", fmt.Errorf("session: bad hello magic %q (want %q)", hdr[:4], wireMagic[:])
	}
	n := int(hdr[4])
	if n == 0 {
		return "", fmt.Errorf("session: empty cluster id")
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(r, id); err != nil {
		return "", fmt.Errorf("session: read cluster id: %w", err)
	}
	cluster := string(id)
	if err := ValidateClusterID(cluster); err != nil {
		return "", err
	}
	return cluster, nil
}

// WriteFrameMessage writes one length-prefixed frame message. The prefix
// is computed from the frame's closed-form encoded length, so the frame
// streams straight to the wire without buffering.
func WriteFrameMessage(w io.Writer, f *flow.Frame) error {
	n := f.EncodedLen()
	if n > MaxWireFrameLen {
		return fmt.Errorf("session: frame encoding %d bytes exceeds wire limit %d", n, MaxWireFrameLen)
	}
	var p [4]byte
	binary.LittleEndian.PutUint32(p[:], uint32(n))
	if _, err := w.Write(p[:]); err != nil {
		return fmt.Errorf("session: write frame length: %w", err)
	}
	m, err := f.WriteTo(w)
	if err != nil {
		return fmt.Errorf("session: write frame: %w", err)
	}
	if m != n {
		return fmt.Errorf("session: frame encoded %d bytes, length prefix said %d", m, n)
	}
	return nil
}

// WriteEndOfStream writes the zero-length sentinel that cleanly terminates
// a connection's frame stream.
func WriteEndOfStream(w io.Writer) error {
	var p [4]byte
	if _, err := w.Write(p[:]); err != nil {
		return fmt.Errorf("session: write end-of-stream: %w", err)
	}
	return nil
}

// ReadFrameMessage reads one frame message. It returns (nil, io.EOF) on
// the clean end-of-stream sentinel; every other failure — including the
// connection ending without the sentinel — is a real error. The payload
// must decode as a canonical LPF1 frame and consume its declared length
// exactly.
func ReadFrameMessage(r io.Reader) (*flow.Frame, error) {
	var p [4]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("session: stream ended without end-of-stream marker: %w", io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("session: read frame length: %w", err)
	}
	n := binary.LittleEndian.Uint32(p[:])
	if n == 0 {
		return nil, io.EOF
	}
	if n < flow.FrameOverhead {
		return nil, fmt.Errorf("session: frame length %d below minimum frame size %d", n, flow.FrameOverhead)
	}
	if n > MaxWireFrameLen {
		return nil, fmt.Errorf("session: frame length %d exceeds wire limit %d", n, MaxWireFrameLen)
	}
	lr := &io.LimitedReader{R: r, N: int64(n)}
	f, err := flow.ReadFrame(lr)
	if err != nil {
		return nil, fmt.Errorf("session: decode frame: %w", err)
	}
	if lr.N != 0 {
		return nil, fmt.Errorf("session: frame message carries %d bytes past the encoded frame", lr.N)
	}
	return f, nil
}
