package session

import (
	"context"
	"fmt"
	"os"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/flow"
)

// Replay is a Session driven from a recorded binary trace archive instead
// of live records: the archive's window geometry and grid anchor override
// the config's, so the replayed session reproduces the recorded reports
// bit for bit.
type Replay struct {
	*Session
	f  *os.File
	ar *archive.Reader
	// Recovery describes what a salvage open of a torn or unclosed
	// archive kept and discarded. It is nil when the archive opened
	// cleanly (including a clean open under salvage mode).
	Recovery *archive.RecoveryReport
}

// OpenReplay reopens a recorded trace archive and builds a fresh session
// on the recorded window grid. The config's Window and Lateness are used
// only for archives from unwindowed captures (zero recorded width); its
// ArchivePath and Anchor are ignored — a replay never re-records itself,
// and the grid anchor comes from the archive. With salvage set, a torn or
// unclosed archive is recovered to its intact whole-window prefix
// (Recovery then says what was lost); otherwise such archives are
// rejected. Archives recorded with overlapping windows (hop < width) are
// refused: their records would be duplicated across windows.
func OpenReplay(ctx context.Context, cfg Config, path string, salvage bool) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var ar *archive.Reader
	var recovery *archive.RecoveryReport
	if salvage {
		var rep *archive.RecoveryReport
		ar, rep, err = archive.OpenReaderRecovering(f, st.Size())
		if err != nil {
			f.Close()
			return nil, err
		}
		if !rep.Clean {
			recovery = rep
		}
	} else {
		ar, err = archive.OpenReader(f, st.Size())
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	meta := ar.Meta()
	if meta.Width == 0 {
		// Unwindowed capture: the config supplies the grid.
		meta.Width, meta.Hop, meta.Lateness = cfg.Window, cfg.Window, cfg.Lateness
	}
	if meta.Hop > 0 && meta.Hop < meta.Width {
		f.Close()
		return nil, fmt.Errorf("replay: archive recorded overlapping windows (hop %v < width %v); records would be duplicated across windows", meta.Hop, meta.Width)
	}
	cfg.Window, cfg.Hop, cfg.Lateness = meta.Width, meta.Hop, meta.Lateness
	cfg.Anchor = ar.Anchor()
	cfg.ArchivePath = ""
	s, err := Open(ctx, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Replay{Session: s, f: f, ar: ar, Recovery: recovery}, nil
}

// NumSegments returns the number of archived windows the replay covers.
func (r *Replay) NumSegments() int { return r.ar.NumSegments() }

// Run pushes every archived window's frame through the session via the
// bulk columnar path, then closes it. emit receives each batch of released
// reports in window order (possibly empty), including the trailing reports
// Close flushes — the same interleaving the recording session printed, so
// the emitted stream compares line for line.
func (r *Replay) Run(emit func([]*llmprism.Report)) error {
	if err := r.ar.Replay(func(_ archive.Segment, fr *flow.Frame) error {
		reports, err := r.PushFrame(fr)
		emit(reports)
		return err
	}); err != nil {
		return err
	}
	reports, err := r.Close()
	emit(reports)
	return err
}

// Release closes the archive file. It does not touch the session; call
// Close (or let Run do it) first.
func (r *Replay) Release() error { return r.f.Close() }
