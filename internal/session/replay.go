package session

import (
	"context"
	"fmt"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/flow"
)

// Replay is a Session driven from a recorded binary trace — a single-file
// LPA1 archive or a rotated multi-segment store directory — instead of
// live records: the recording's window geometry and grid anchor override
// the config's, so the replayed session reproduces the recorded reports
// bit for bit, however the capture was cut into segments.
type Replay struct {
	*Session
	st *archive.Store
	// Recovery describes what a salvage open of a torn or unclosed
	// capture had to reconcile. It is nil when the trace opened cleanly
	// (including a clean open under salvage mode).
	Recovery *archive.StoreRecovery
}

// OpenReplay reopens a recorded trace — a store directory or a plain
// archive file — and builds a fresh session on the recorded window grid.
// The config's Window and Lateness are used only for archives from
// unwindowed captures (zero recorded width); its capture and resume
// fields are ignored — a replay never re-records itself, and the grid
// anchor comes from the recording. With salvage set, a torn or unclosed
// capture is recovered to what its intact windows allow (Recovery then
// says what was reconciled); otherwise such captures are rejected.
// Captures recorded with overlapping windows (hop < width) are refused:
// their records would be duplicated across windows.
func OpenReplay(ctx context.Context, cfg Config, path string, salvage bool) (*Replay, error) {
	st, recovery, err := openTrace(path, salvage)
	if err != nil {
		return nil, err
	}
	meta := st.Meta()
	if meta.Width == 0 {
		// Unwindowed capture: the config supplies the grid.
		meta.Width, meta.Hop, meta.Lateness = cfg.Window, cfg.Window, cfg.Lateness
	}
	if meta.Hop > 0 && meta.Hop < meta.Width {
		return nil, fmt.Errorf("replay: archive recorded overlapping windows (hop %v < width %v); records would be duplicated across windows", meta.Hop, meta.Width)
	}
	cfg.Window, cfg.Hop, cfg.Lateness = meta.Width, meta.Hop, meta.Lateness
	cfg.Anchor = st.Anchor()
	cfg.ArchivePath, cfg.StoreDir, cfg.Resume = "", "", false
	s, err := Open(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Replay{Session: s, st: st, Recovery: recovery}, nil
}

// openTrace opens a recorded trace path strictly or leniently, returning
// a recovery report only when something had to be reconciled.
func openTrace(path string, salvage bool) (*archive.Store, *archive.StoreRecovery, error) {
	if !salvage {
		st, err := archive.OpenPath(path)
		return st, nil, err
	}
	st, rec, err := archive.OpenPathRecovering(path)
	if err != nil {
		return nil, nil, err
	}
	if rec.Clean {
		rec = nil
	}
	return st, rec, nil
}

// Store exposes the opened trace view, for callers that want to inspect
// segments or run manifest-pruned queries beside the replay.
func (r *Replay) Store() *archive.Store { return r.st }

// NumSegments returns how many store segments the replay covers (one for
// a single-file archive).
func (r *Replay) NumSegments() int { return r.st.NumSegments() }

// NumWindows returns the number of archived windows the replay covers.
func (r *Replay) NumWindows() int { return r.st.NumWindows() }

// Run pushes every archived window's frame through the session via the
// bulk columnar path, then closes it. emit receives each batch of released
// reports in window order (possibly empty), including the trailing reports
// Close flushes — the same interleaving the recording session printed, so
// the emitted stream compares line for line.
func (r *Replay) Run(emit func([]*llmprism.Report)) error {
	if err := r.st.Replay(func(_ archive.Segment, fr *flow.Frame) error {
		reports, err := r.PushFrame(fr)
		emit(reports)
		return err
	}); err != nil {
		return err
	}
	reports, err := r.Close()
	emit(reports)
	return err
}

// RunSelected is Run restricted to the query's slice of the trace:
// segments the store manifest cannot prune, and within them only windows
// overlapping the query's time bounds — re-analysis of a time/pair/switch
// slice under this session's (possibly different) configuration.
func (r *Replay) RunSelected(q archive.Query, emit func([]*llmprism.Report)) error {
	if err := r.st.ReplaySelected(q, func(_ archive.Segment, fr *flow.Frame) error {
		reports, err := r.PushFrame(fr)
		emit(reports)
		return err
	}); err != nil {
		return err
	}
	reports, err := r.Close()
	emit(reports)
	return err
}

// Release exists for symmetry with earlier file-backed replays; a store
// view holds no open files, so it is a no-op. It does not touch the
// session; call Close (or let Run do it) first.
func (r *Replay) Release() error { return nil }

// Scan is a session-free query over a recorded trace: it opens path like
// OpenReplay, prunes segments through the store manifest, and visits every
// record matching q in global event-time order. fn receives each matching
// row's window bounds and its frame row. The store's recovery note (nil
// when clean) is returned alongside any error.
func Scan(path string, salvage bool, q archive.Query, fn func(start, end time.Time, f *flow.Frame, i int) error) (*archive.StoreRecovery, error) {
	st, recovery, err := openTrace(path, salvage)
	if err != nil {
		return nil, err
	}
	return recovery, st.Scan(q, func(s archive.Segment, f *flow.Frame, i int) error {
		return fn(s.Start, s.End, f, i)
	})
}
