package session_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/session"
	"github.com/llmprism/llmprism/internal/topology"
)

// managerTrace simulates a multi-job window once per test binary.
var (
	traceOnce    sync.Once
	traceRecords []flow.Record
	traceTopo    *topology.Topology
	traceErr     error
)

func managerTrace(t testing.TB) ([]flow.Record, *topology.Topology) {
	t.Helper()
	traceOnce.Do(func() {
		spec := llmprism.TopologySpec{Nodes: 24, NodesPerLeaf: 8, Spines: 4}
		jobs, err := llmprism.PlanJobs(spec, []llmprism.JobPlan{
			{Nodes: 8, TargetStep: 2 * time.Second},
			{Nodes: 8, TargetStep: 3 * time.Second},
		}, 41)
		if err != nil {
			traceErr = err
			return
		}
		res, err := llmprism.Simulate(llmprism.Scenario{
			Name: "manager", Topo: spec, Jobs: jobs, Horizon: 15 * time.Second,
		})
		if err != nil {
			traceErr = err
			return
		}
		records := make([]flow.Record, len(res.Records))
		copy(records, res.Records)
		flow.SortByStart(records)
		traceRecords, traceTopo = records, res.Topo
	})
	if traceErr != nil {
		t.Fatal(traceErr)
	}
	return traceRecords, traceTopo
}

// permuteWithinLateness shuffles records within consecutive time chunks of
// the given span, keeping the first record pinned so the event-time grid
// anchors identically — the same admissible disorder the monitor's
// permutation-invariance tests use.
func permuteWithinLateness(records []flow.Record, span time.Duration, seed int64) []flow.Record {
	out := make([]flow.Record, len(records))
	copy(out, records)
	if len(out) < 3 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	lo := 1
	for lo < len(out) {
		cut := out[lo].Start.Add(span)
		hi := lo
		for hi < len(out) && out[hi].Start.Before(cut) {
			hi++
		}
		rng.Shuffle(hi-lo, func(i, j int) {
			out[lo+i], out[lo+j] = out[lo+j], out[lo+i]
		})
		lo = hi
	}
	return out
}

func baseConfig(topo *topology.Topology) session.Config {
	return session.Config{
		Topo:     topo,
		Workers:  2,
		Localize: true,
		Suppress: true,
		Window:   5 * time.Second,
		Lateness: 2 * time.Second,
		Depth:    2,
	}
}

// directStreamReports runs the reference path the manager must match: a
// bare Monitor.Stream assembled by hand, no session or manager layer.
func directStreamReports(t testing.TB, cfg session.Config, records []flow.Record, batch int) []*llmprism.Report {
	t.Helper()
	opts := []llmprism.MonitorOption{
		llmprism.WithLateness(cfg.Lateness),
		llmprism.WithPipelineDepth(cfg.Depth),
	}
	if cfg.Suppress {
		opts = append(opts, llmprism.WithChronicSuppression(llmprism.IncidentConfig{}))
	}
	mon, err := llmprism.NewMonitor(cfg.TieredAnalyzer(), cfg.Topo, cfg.Window, opts...)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := mon.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var out []*llmprism.Report
	for lo := 0; lo < len(records); lo += batch {
		hi := min(lo+batch, len(records))
		reports, err := stream.Push(records[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, reports...)
	}
	reports, err := stream.Close()
	if err != nil {
		t.Fatal(err)
	}
	return append(out, reports...)
}

// TestManagerConcurrentSessionsMatchDirectStream is the manager's
// determinism gate: N cluster sessions fed concurrently, each with its own
// permutation-within-lateness of the same trace, must all produce reports
// DeepEqual to a direct Monitor.Stream run — the manager adds multi-tenancy,
// never drift. Run under -race this also exercises the per-cluster
// serialization and concurrent OnReports delivery. Each session records an
// archive; after Close every archive must be finalized (no .tmp left) and
// replay bit-identically.
func TestManagerConcurrentSessionsMatchDirectStream(t *testing.T) {
	records, topo := managerTrace(t)
	cfg := baseConfig(topo)
	want := directStreamReports(t, cfg, records, 400)
	if len(want) == 0 {
		t.Fatal("reference run released no windows")
	}

	const n = 3
	dir := t.TempDir()
	got := make([][]*llmprism.Report, n)
	mgr, err := session.NewManager(session.ManagerConfig{
		Config: func(cluster string) (session.Config, error) {
			c := cfg
			c.ArchivePath = filepath.Join(dir, cluster+".llpa")
			c.CheckpointPath = filepath.Join(dir, cluster+".llpk")
			return c, nil
		},
		MaxSessions: n,
		OnReports: func(cluster string, reports []*llmprism.Report) {
			var i int
			fmt.Sscanf(cluster, "c%d", &i)
			got[i] = append(got[i], reports...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			perm := permuteWithinLateness(records, cfg.Lateness/2, int64(100+13*i))
			cs, err := mgr.Session(context.Background(), fmt.Sprintf("c%d", i))
			if err != nil {
				errs[i] = err
				return
			}
			for lo := 0; lo < len(perm); lo += 400 {
				hi := min(lo+400, len(perm))
				if err := cs.Push(perm[lo:hi]); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cluster %d: %v", i, err)
		}
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("cluster %d: managed reports differ from direct Monitor.Stream (%d vs %d windows)",
				i, len(got[i]), len(want))
		}
	}

	// Every archive finalized, no temporaries, and a replay of each
	// reproduces the delivered reports line for line.
	var wantText strings.Builder
	session.PrintReports(&wantText, want)
	for i := 0; i < n; i++ {
		archivePath := filepath.Join(dir, fmt.Sprintf("c%d.llpa", i))
		if _, err := os.Stat(archivePath); err != nil {
			t.Fatalf("cluster %d archive not finalized: %v", i, err)
		}
		if _, err := os.Stat(archivePath + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("cluster %d archive temporary still present (err=%v)", i, err)
		}
		rep, err := session.OpenReplay(context.Background(), baseConfig(topo), archivePath, false)
		if err != nil {
			t.Fatal(err)
		}
		var gotText strings.Builder
		if err := rep.Run(func(reports []*llmprism.Report) {
			session.PrintReports(&gotText, reports)
		}); err != nil {
			t.Fatal(err)
		}
		rep.Release()
		if gotText.String() != wantText.String() {
			t.Errorf("cluster %d: replay of managed archive differs from direct stream text", i)
		}
	}
}

func TestManagerRejectsPathCollisions(t *testing.T) {
	_, topo := managerTrace(t)
	dir := t.TempDir()
	shared := filepath.Join(dir, "shared.llpa")
	mgr, err := session.NewManager(session.ManagerConfig{
		Config: func(cluster string) (session.Config, error) {
			c := baseConfig(topo)
			switch cluster {
			case "alpha", "beta":
				c.ArchivePath = shared // both claim the same archive
			case "gamma":
				c.ArchivePath = filepath.Join(dir, "gamma.llpa")
				c.CheckpointPath = shared // crosses roles with alpha's archive
			case "delta":
				c.ArchivePath = filepath.Join(dir, "delta.llpa")
				c.CheckpointPath = filepath.Join(dir, "sub", "..", "delta.llpa") // same file, uncleaned spelling
			}
			return c, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	ctx := context.Background()
	if _, err := mgr.Session(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Session(ctx, "beta"); err == nil || !strings.Contains(err.Error(), "already in use") {
		t.Fatalf("beta sharing alpha's archive: err = %v, want path-collision error", err)
	}
	if _, err := mgr.Session(ctx, "gamma"); err == nil || !strings.Contains(err.Error(), `cluster "alpha" archive`) {
		t.Fatalf("gamma checkpoint over alpha archive: err = %v, want cross-role collision naming alpha", err)
	}
	if _, err := mgr.Session(ctx, "delta"); err == nil || !strings.Contains(err.Error(), "already in use") {
		t.Fatalf("delta archive/checkpoint self-collision: err = %v, want path-collision error", err)
	}
	// A rejected cluster holds no claims: its non-colliding path must be
	// free for a later cluster.
	mgrClusters := mgr.Clusters()
	if len(mgrClusters) != 1 || mgrClusters[0] != "alpha" {
		t.Fatalf("clusters after rejections = %v, want [alpha]", mgrClusters)
	}
}

func TestManagerBoundsSessionsAndValidatesIDs(t *testing.T) {
	_, topo := managerTrace(t)
	mgr, err := session.NewManager(session.ManagerConfig{
		Config:      func(string) (session.Config, error) { return baseConfig(topo), nil },
		MaxSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := mgr.Session(ctx, "bad/cluster"); err == nil {
		t.Fatal("invalid cluster id accepted")
	}
	if _, err := mgr.Session(ctx, "one"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Session(ctx, "two"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Session(ctx, "three"); err == nil || !strings.Contains(err.Error(), "limit 2") {
		t.Fatalf("over-limit session: err = %v, want limit error", err)
	}
	// Existing sessions stay reachable at the bound.
	if _, err := mgr.Session(ctx, "one"); err != nil {
		t.Fatalf("existing session at bound: %v", err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Session(ctx, "one"); err == nil {
		t.Fatal("closed manager still creates sessions")
	}
	if _, ok := mgr.Lookup("one"); !ok {
		t.Fatal("Lookup lost sessions after Close")
	}
	if err := mgr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
