package session

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"github.com/llmprism/llmprism"
	"github.com/llmprism/llmprism/internal/flow"
)

// ManagerConfig parameterizes a session Manager.
type ManagerConfig struct {
	// Config builds the session config for a cluster on first use.
	// Required. The builder decides per-cluster archive and checkpoint
	// paths; the manager rejects a config whose paths collide with
	// another cluster's (or with each other).
	Config func(cluster string) (Config, error)
	// MaxSessions bounds how many cluster sessions may be open at once;
	// creating one past the bound fails. 0 means unbounded.
	MaxSessions int
	// OnReports, when non-nil, receives every batch of completed window
	// reports a cluster session releases — pushes and the final flush at
	// Close alike — in strict window order per cluster. It is called with
	// the owning cluster session's lock held, so implementations must not
	// call back into that session; calls for different clusters may be
	// concurrent.
	OnReports func(cluster string, reports []*llmprism.Report)
}

// Manager is a multi-tenant session registry keyed by cluster ID — the
// heart of the fleet daemon, usable by any embedder. Sessions are created
// lazily on first use, bounded by MaxSessions, and closed together:
// Close checkpoints and finalizes every session's archive in deterministic
// (sorted cluster) order. Manager is safe for concurrent use.
type Manager struct {
	cfg ManagerConfig

	mu       sync.Mutex
	sessions map[string]*ClusterSession
	paths    map[string]pathOwner
	closed   bool
}

// pathOwner records which cluster claimed an output path, and as what.
type pathOwner struct {
	cluster string
	role    string
}

// NewManager returns an empty Manager.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Config == nil {
		return nil, fmt.Errorf("session: manager requires a Config builder")
	}
	return &Manager{
		cfg:      cfg,
		sessions: make(map[string]*ClusterSession),
		paths:    make(map[string]pathOwner),
	}, nil
}

// Session returns the cluster's session, creating it on first use. ctx
// bounds every analysis the new session will run (use the manager's
// lifetime context, not a per-connection one: the session outlives the
// connection that first touched it).
func (m *Manager) Session(ctx context.Context, cluster string) (*ClusterSession, error) {
	if err := ValidateClusterID(cluster); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("session: manager is closed")
	}
	if cs, ok := m.sessions[cluster]; ok {
		return cs, nil
	}
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		return nil, fmt.Errorf("session: cluster %q rejected: %d sessions already open (limit %d)",
			cluster, len(m.sessions), m.cfg.MaxSessions)
	}
	cfg, err := m.cfg.Config(cluster)
	if err != nil {
		return nil, fmt.Errorf("session: cluster %q config: %w", cluster, err)
	}
	claimed, err := m.claimPaths(cluster, cfg)
	if err != nil {
		return nil, err
	}
	s, err := Open(ctx, cfg)
	if err != nil {
		for _, p := range claimed {
			delete(m.paths, p)
		}
		return nil, fmt.Errorf("session: cluster %q: %w", cluster, err)
	}
	cs := &ClusterSession{mgr: m, cluster: cluster, s: s}
	m.sessions[cluster] = cs
	return cs, nil
}

// claimPaths registers the config's output paths, rejecting any that an
// earlier session (or the same config, under another role) already owns:
// two sessions writing one archive would silently interleave — and
// corrupt — it. Called with m.mu held; returns the claimed keys so a
// failed open can release them.
func (m *Manager) claimPaths(cluster string, cfg Config) ([]string, error) {
	var claimed []string
	for _, out := range []struct{ role, path string }{
		{"archive", cfg.ArchivePath},
		{"store", cfg.StoreDir},
		{"checkpoint", cfg.CheckpointPath},
	} {
		if out.path == "" {
			continue
		}
		key := filepath.Clean(out.path)
		if owner, ok := m.paths[key]; ok {
			for _, p := range claimed {
				delete(m.paths, p)
			}
			return nil, fmt.Errorf("session: cluster %q %s path %q already in use as cluster %q %s path",
				cluster, out.role, out.path, owner.cluster, owner.role)
		}
		m.paths[key] = pathOwner{cluster: cluster, role: out.role}
		claimed = append(claimed, key)
	}
	return claimed, nil
}

// Lookup returns the cluster's session if one exists, without creating
// it. Unlike Session it keeps answering after Close, so shutdown paths can
// still read final statistics.
func (m *Manager) Lookup(cluster string) (*ClusterSession, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cs, ok := m.sessions[cluster]
	return cs, ok
}

// Clusters returns the open clusters, sorted.
func (m *Manager) Clusters() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sessions))
	for c := range m.sessions {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Close shuts every session down in sorted cluster order: each flushes its
// remaining windows (delivering the final reports through OnReports),
// writes its last checkpoint, and finalizes its archive atomically. The
// manager accepts no new sessions afterwards. Sessions that already died
// of a push error are released without finalizing (their archive
// temporary stays salvageable). Close is idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	clusters := make([]string, 0, len(m.sessions))
	for c := range m.sessions {
		clusters = append(clusters, c)
	}
	sort.Strings(clusters)
	sessions := make([]*ClusterSession, len(clusters))
	for i, c := range clusters {
		sessions[i] = m.sessions[c]
	}
	m.mu.Unlock()

	var errs []error
	for i, cs := range sessions {
		if err := cs.close(); err != nil {
			errs = append(errs, fmt.Errorf("cluster %q: %w", clusters[i], err))
		}
	}
	return errors.Join(errs...)
}

// ClusterSession is one cluster's managed session. All methods serialize
// behind the session's lock, so any number of collector connections (or
// goroutines) may feed one cluster — their pushes interleave atomically,
// and reports reach OnReports in strict window order. For deterministic
// replayability, frames for one cluster must still arrive in event-time
// order across that interleaving (one collector per cluster, or
// within-lateness disorder, which the watermark absorbs).
type ClusterSession struct {
	mgr     *Manager
	cluster string

	mu     sync.Mutex
	s      *Session
	err    error
	closed bool
}

// Cluster returns the session's cluster ID.
func (cs *ClusterSession) Cluster() string { return cs.cluster }

// Push ingests one batch of records; completed reports go to OnReports.
// After an error the session is dead: every later call returns the same
// error, and Manager.Close will not finalize its archive.
func (cs *ClusterSession) Push(records []flow.Record) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if err := cs.usable(); err != nil {
		return err
	}
	reports, err := cs.s.Push(records)
	cs.deliver(reports)
	if err != nil {
		cs.err = err
	}
	return err
}

// PushFrame ingests one decoded wire frame; completed reports go to
// OnReports. Error semantics match Push.
func (cs *ClusterSession) PushFrame(f *flow.Frame) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if err := cs.usable(); err != nil {
		return err
	}
	reports, err := cs.s.PushFrame(f)
	cs.deliver(reports)
	if err != nil {
		cs.err = err
	}
	return err
}

// Stats returns the session's released-window and late-drop counters.
func (cs *ClusterSession) Stats() (windows int, late uint64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.s == nil {
		return 0, 0
	}
	return cs.s.Windows(), cs.s.Late()
}

func (cs *ClusterSession) usable() error {
	if cs.closed {
		return fmt.Errorf("session: cluster %q session is closed", cs.cluster)
	}
	if cs.err != nil {
		return cs.err
	}
	return nil
}

func (cs *ClusterSession) deliver(reports []*llmprism.Report) {
	if len(reports) > 0 && cs.mgr.cfg.OnReports != nil {
		cs.mgr.cfg.OnReports(cs.cluster, reports)
	}
}

// close finalizes the session (Manager.Close calls it).
func (cs *ClusterSession) close() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return nil
	}
	cs.closed = true
	if cs.err != nil {
		// The session already died mid-stream; release the handles and
		// keep the archive temporary for salvage instead of pretending
		// the capture finished.
		cs.s.Abort()
		return cs.err
	}
	reports, err := cs.s.Close()
	cs.deliver(reports)
	return err
}
