package localize

import (
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/flow"
)

var epoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// rec builds one flow record with the given bandwidth (Gb/s) and path.
func rec(id uint64, src, dst flow.Addr, gbps float64, switches ...flow.SwitchID) flow.Record {
	dur := time.Second
	return flow.Record{
		ID: id, Start: epoch.Add(time.Duration(id) * time.Millisecond), Duration: dur,
		Src: src, Dst: dst, Bytes: int64(gbps * 1e9 / 8 * dur.Seconds()),
		Switches: switches,
	}
}

func dpTypes(pairs ...flow.Pair) map[flow.Pair]parallel.Type {
	out := make(map[flow.Pair]parallel.Type, len(pairs))
	for _, p := range pairs {
		out[p] = parallel.TypeDP
	}
	return out
}

// TestLocalizeSwitchAlertNamesSwitch: a switch-bandwidth alert implicates
// exactly the switch's rows, so the flagged switch covers every implicated
// flow and no healthy one — Ochiai 1, strict top-1.
func TestLocalizeSwitchAlertNamesSwitch(t *testing.T) {
	job := Job{Records: []flow.Record{
		rec(1, 1, 2, 20, 10, 20, 11), // through degraded 20
		rec(2, 3, 4, 20, 12, 20, 13), // through degraded 20
		rec(3, 5, 6, 150, 10, 21, 11),
		rec(4, 7, 8, 150, 12, 21, 13),
	}}
	alert := diagnose.Alert{Kind: diagnose.AlertSwitchBandwidth, Switch: 20}
	suspects := Localize([]Job{job}, []diagnose.Alert{alert}, Config{})
	if len(suspects) == 0 {
		t.Fatal("no suspects")
	}
	top := suspects[0]
	if top.Component != SwitchComponent(20) {
		t.Fatalf("top suspect = %v, want switch sw-20 (list %+v)", top.Component, suspects)
	}
	if top.Coverage != 1 || top.Implicated != 2 || top.Healthy != 0 {
		t.Errorf("top = %+v, want coverage 1 over 2 implicated, 0 healthy", top)
	}
}

// TestLocalizeCrossStepNamesRank: cross-step alerts implicate the rank's
// flows; its NIC covers all of them and nothing else does without picking
// up healthy flows.
func TestLocalizeCrossStepNamesRank(t *testing.T) {
	job := Job{
		Records: []flow.Record{
			rec(1, 1, 2, 100, 10, 20, 11),
			rec(2, 1, 4, 100, 10, 21, 12),
			rec(3, 3, 4, 100, 12, 20, 11), // healthy, shares switches
			rec(4, 5, 2, 100, 10, 22, 11), // healthy, shares host 2's leaf
		},
		Alerts: []diagnose.Alert{
			{Kind: diagnose.AlertCrossStep, Rank: 1, Step: 3},
			{Kind: diagnose.AlertCrossStep, Rank: 1, Step: 4}, // dedup: same rank
		},
	}
	suspects := Localize([]Job{job}, nil, Config{})
	if len(suspects) == 0 {
		t.Fatal("no suspects")
	}
	if suspects[0].Component != HostComponent(1) {
		t.Fatalf("top suspect = %v, want host 10.0.0.1 (list %+v)", suspects[0].Component, suspects)
	}
}

// TestLocalizeCrossGroupContrastFindsSlowMember: a cross-group alert
// implicates every member's DP flows symmetrically; coverage cannot
// separate them, but the member behind the degraded NIC is the one whose
// flows are slow — the bandwidth contrast singles it out.
func TestLocalizeCrossGroupContrastFindsSlowMember(t *testing.T) {
	group := []flow.Addr{1, 2, 3}
	job := Job{
		Records: []flow.Record{
			rec(1, 1, 2, 1, 10),   // member 1 degraded: slow
			rec(2, 2, 3, 100, 10), // healthy ring segment
			rec(3, 3, 1, 1, 10),   // slow (touches member 1)
		},
		Types:    dpTypes(flow.MakePair(1, 2), flow.MakePair(2, 3), flow.MakePair(3, 1)),
		DPGroups: [][]flow.Addr{group},
		Alerts:   []diagnose.Alert{{Kind: diagnose.AlertCrossGroup, Group: 0, GroupAnchor: 1}},
	}
	suspects := Localize([]Job{job}, nil, Config{})
	if len(suspects) == 0 {
		t.Fatal("no suspects")
	}
	if suspects[0].Component != HostComponent(1) {
		t.Fatalf("top suspect = %v, want host of degraded member 1 (list %+v)",
			suspects[0].Component, suspects)
	}
	if suspects[0].Contrast <= 1 {
		t.Errorf("degraded member contrast = %v, want > 1", suspects[0].Contrast)
	}
}

// TestLocalizeLinkFromConsecutiveHops: when the slow implicated flows
// share one inter-switch edge, that link outranks the switches at either
// end (which also carry healthy or fast implicated traffic).
func TestLocalizeLinkFromConsecutiveHops(t *testing.T) {
	group := []flow.Addr{1, 2, 3, 4, 5, 6}
	job := Job{
		Records: []flow.Record{
			rec(1, 1, 2, 1, 10, 20, 11),   // over degraded link 10-20: slow
			rec(2, 3, 4, 100, 10, 21, 11), // same leaf, healthy spine
			rec(3, 5, 6, 100, 12, 20, 13), // same spine, healthy leaf
		},
		Types:    dpTypes(flow.MakePair(1, 2), flow.MakePair(3, 4), flow.MakePair(5, 6)),
		DPGroups: [][]flow.Addr{group},
		Alerts:   []diagnose.Alert{{Kind: diagnose.AlertCrossGroup, Group: 0, GroupAnchor: 1}},
	}
	suspects := Localize([]Job{job}, nil, Config{})
	if len(suspects) == 0 {
		t.Fatal("no suspects")
	}
	if want := LinkComponent(10, 20); suspects[0].Component != want {
		t.Fatalf("top suspect = %v, want %v (list %+v)", suspects[0].Component, want, suspects)
	}
}

// TestLocalizeSwitchAlertInsideJob: a switch-kind alert arriving through a
// job's alert list (not the fabric-level parameter) must still implicate
// the switch's rows — regression for the early nil return that ignored it.
func TestLocalizeSwitchAlertInsideJob(t *testing.T) {
	job := Job{
		Records: []flow.Record{
			rec(1, 1, 2, 20, 10, 20, 11),
			rec(2, 3, 4, 150, 10, 21, 11),
		},
		Alerts: []diagnose.Alert{{Kind: diagnose.AlertSwitchBandwidth, Switch: 20}},
	}
	suspects := Localize([]Job{job}, nil, Config{})
	if len(suspects) == 0 {
		t.Fatal("job-carried switch alert produced no suspects")
	}
	if suspects[0].Component != SwitchComponent(20) {
		t.Errorf("top suspect = %v, want switch sw-20", suspects[0].Component)
	}
}

// TestLocalizeFilterExcludesEvidence: a Filter rejecting an alert removes
// it from the implication evidence — with every alert filtered the window
// localizes to nothing, and a selective filter changes which rows are
// implicated exactly as if the alert had not fired.
func TestLocalizeFilterExcludesEvidence(t *testing.T) {
	job := Job{
		ID: 4,
		Records: []flow.Record{
			rec(1, 1, 2, 20, 10, 20, 11),
			rec(2, 1, 4, 20, 10, 21, 12),
			rec(3, 3, 4, 150, 12, 20, 11),
		},
		Alerts: []diagnose.Alert{{Kind: diagnose.AlertCrossStep, Rank: 1}},
	}
	swAlert := []diagnose.Alert{{Kind: diagnose.AlertSwitchBandwidth, Switch: 20}}

	drop := Config{Filter: func(jobID int, a diagnose.Alert) bool { return false }}
	if s := Localize([]Job{job}, swAlert, drop); s != nil {
		t.Errorf("all-rejecting filter still produced suspects: %+v", s)
	}

	// Filter out only the fabric-level switch alert, keyed on the job id
	// the filter receives (0 for fabric alerts): the result must equal a
	// run where that alert never fired.
	var sawJob bool
	keepJob := Config{Filter: func(jobID int, a diagnose.Alert) bool {
		if jobID == 4 {
			sawJob = true
		}
		return jobID != 0
	}}
	got := Localize([]Job{job}, swAlert, keepJob)
	want := Localize([]Job{job}, nil, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("filtered run diverges from alert-free run:\ngot  %+v\nwant %+v", got, want)
	}
	if !sawJob {
		t.Error("filter never saw the job's stable id")
	}
}

// TestLocalizeNoAlertsNoSuspects: a quiet window localizes to nothing.
func TestLocalizeNoAlertsNoSuspects(t *testing.T) {
	job := Job{Records: []flow.Record{rec(1, 1, 2, 100, 10)}}
	if s := Localize([]Job{job}, nil, Config{}); s != nil {
		t.Errorf("suspects = %+v, want nil without alerts", s)
	}
}

// TestLocalizeDeterministicRanking: the suspect list is identical across
// repeated runs (map iteration must not leak into scores or order).
func TestLocalizeDeterministicRanking(t *testing.T) {
	var records []flow.Record
	for i := uint64(1); i <= 40; i++ {
		src := flow.Addr(i % 8)
		dst := flow.Addr((i + 3) % 8)
		if src == dst {
			dst++
		}
		gbps := 100.0
		if i%5 == 0 {
			gbps = 2
		}
		records = append(records, rec(i, src, dst, gbps,
			flow.SwitchID(10+i%3), flow.SwitchID(20+i%4), flow.SwitchID(10+(i+1)%3)))
	}
	job := Job{
		Records: records,
		Alerts: []diagnose.Alert{
			{Kind: diagnose.AlertCrossStep, Rank: 2},
			{Kind: diagnose.AlertCrossStep, Rank: 5},
		},
	}
	alert := []diagnose.Alert{{Kind: diagnose.AlertSwitchBandwidth, Switch: 21}}
	want := Localize([]Job{job}, alert, Config{})
	if len(want) < 3 {
		t.Fatalf("suspects = %d, want a populated list", len(want))
	}
	for i := 0; i < 10; i++ {
		if got := Localize([]Job{job}, alert, Config{}); !reflect.DeepEqual(want, got) {
			t.Fatalf("run %d diverged:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestLocalizeLimits: MaxSuspects truncates and MinScore filters.
func TestLocalizeLimits(t *testing.T) {
	job := Job{
		Records: []flow.Record{
			rec(1, 1, 2, 100, 10, 20, 11),
			rec(2, 1, 4, 100, 12, 21, 13),
		},
		Alerts: []diagnose.Alert{{Kind: diagnose.AlertCrossStep, Rank: 1}},
	}
	all := Localize([]Job{job}, nil, Config{})
	if len(all) < 2 {
		t.Fatalf("suspects = %d, want several", len(all))
	}
	if got := Localize([]Job{job}, nil, Config{MaxSuspects: 1}); len(got) != 1 {
		t.Errorf("MaxSuspects=1 returned %d suspects", len(got))
	}
	if got := Localize([]Job{job}, nil, Config{MinScore: 99}); got != nil {
		t.Errorf("MinScore=99 returned %+v, want nil", got)
	}
}

func TestTrackerContinuity(t *testing.T) {
	// Grace disabled: the historical strict semantics — one missed window
	// forgets the suspect.
	tr := NewTracker(TrackerConfig{Grace: -1})
	at := epoch
	w0 := []Suspect{{Component: SwitchComponent(7)}, {Component: HostComponent(3)}}
	tr.Observe(at, w0)
	if w0[0].Windows != 1 || !w0[0].FirstSeen.Equal(at) {
		t.Fatalf("window 0 suspect = %+v, want windows 1 first seen %v", w0[0], at)
	}

	// Switch 7 persists, host 3 disappears.
	w1 := []Suspect{{Component: SwitchComponent(7)}}
	tr.Observe(at.Add(time.Minute), w1)
	if w1[0].Windows != 2 || !w1[0].FirstSeen.Equal(at) {
		t.Errorf("window 1 suspect = %+v, want windows 2 first seen %v", w1[0], at)
	}
	if tr.Open() != 1 {
		t.Errorf("open = %d, want 1 (host suspect forgotten)", tr.Open())
	}

	// Host 3 reappears: a fresh run.
	w2 := []Suspect{{Component: HostComponent(3)}}
	tr.Observe(at.Add(2*time.Minute), w2)
	if w2[0].Windows != 1 || !w2[0].FirstSeen.Equal(at.Add(2*time.Minute)) {
		t.Errorf("reappeared suspect = %+v, want a new run", w2[0])
	}
}

// TestTrackerFlappingFaultKeepsRun is the regression test for the
// historical forget-on-first-miss bug: a flapping fault — suspect in
// alternating windows — reset FirstSeen, Windows and the fused score on
// every reappearance, so a fault flapping for an hour looked like a
// never-ending parade of brand-new one-window suspects. With the default
// one-window grace the run survives the gaps.
func TestTrackerFlappingFaultKeepsRun(t *testing.T) {
	// Decay 1 (pure sum) keeps the expected fused values exact.
	tr := NewTracker(TrackerConfig{Decay: 1})
	at := epoch
	sw := SwitchComponent(4)
	for i := 0; i < 6; i++ {
		var w []Suspect
		if i%2 == 0 { // fires in windows 0, 2, 4
			w = []Suspect{{Component: sw, Score: 0.5}}
		}
		tr.Observe(at.Add(time.Duration(i)*time.Minute), w)
		if i%2 == 0 {
			s := w[0]
			if !s.FirstSeen.Equal(at) {
				t.Fatalf("window %d: FirstSeen = %v, want %v (run must survive one-window gaps)", i, s.FirstSeen, at)
			}
			if want := i/2 + 1; s.Windows != want {
				t.Fatalf("window %d: Windows = %d, want %d", i, s.Windows, want)
			}
			if want := 0.5 * float64(i/2+1); s.Fused != want {
				t.Fatalf("window %d: Fused = %v, want %v (score keeps accumulating)", i, s.Fused, want)
			}
		}
		if tr.Open() != 1 {
			t.Fatalf("window %d: open = %d, want 1 (grace keeps the suspect)", i, tr.Open())
		}
	}
	// Two consecutive misses exceed the grace: the run ends.
	tr.Observe(at.Add(6*time.Minute), nil)
	tr.Observe(at.Add(7*time.Minute), nil)
	if tr.Open() != 0 {
		t.Errorf("open = %d, want 0 after two consecutive misses", tr.Open())
	}
	w := []Suspect{{Component: sw, Score: 0.5}}
	tr.Observe(at.Add(8*time.Minute), w)
	if w[0].Windows != 1 || w[0].Fused != 0.5 {
		t.Errorf("post-forget reappearance = %+v, want a fresh run", w[0])
	}
}

// TestTrackerFusedRanking: the fused list ranks by the decayed running
// score across windows, not the latest window's snapshot — a component
// that keeps scoring overtakes a one-window spike, whose stale evidence
// fades — and survivors inside their grace window stay listed.
func TestTrackerFusedRanking(t *testing.T) {
	tr := NewTracker(TrackerConfig{}) // default Decay 0.5
	at := epoch
	steady := SwitchComponent(1) // scores 0.75 every window
	spike := HostComponent(9)    // scores 1.25 once
	tr.Observe(at, []Suspect{{Component: spike, Score: 1.25}, {Component: steady, Score: 0.75}})
	tr.Observe(at.Add(time.Minute), []Suspect{{Component: steady, Score: 0.75}})

	fused := tr.Fused()
	if len(fused) != 2 {
		t.Fatalf("fused = %d entries, want 2 (spike still inside grace)", len(fused))
	}
	if fused[0].Component != steady || fused[0].Fused != 1.125 { // 0.75*0.5 + 0.75
		t.Errorf("top fused = %+v, want the steady switch at 1.125", fused[0])
	}
	if fused[1].Component != spike || fused[1].Fused != 0.625 { // 1.25 decayed across the miss
		t.Errorf("second fused = %+v, want the faded spike at 0.625", fused[1])
	}
	if fused[0].Windows != 2 || !fused[0].FirstSeen.Equal(at) {
		t.Errorf("steady continuity = windows %d first seen %v", fused[0].Windows, fused[0].FirstSeen)
	}

	// MaxFused bounds the list.
	small := NewTracker(TrackerConfig{MaxFused: 1})
	small.Observe(at, []Suspect{{Component: spike, Score: 1.0}, {Component: steady, Score: 0.4}})
	if got := small.Fused(); len(got) != 1 || got[0].Component != spike {
		t.Errorf("MaxFused=1 fused = %+v, want just the spike", got)
	}
}

func TestComponentString(t *testing.T) {
	cases := map[string]Component{
		"switch sw-3":     SwitchComponent(3),
		"link sw-9->sw-2": LinkComponent(9, 2),
		"host 10.0.0.5":   HostComponent(5),
	}
	for want, c := range cases {
		if got := c.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", c, got, want)
		}
	}
}
