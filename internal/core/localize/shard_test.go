package localize

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/flow"
)

// shardTestJobs builds a window big enough to clear shardMinRows, with a
// degraded switch, a slow rank and plenty of healthy traffic over a small
// leaf/spine fabric — evidence of every component kind.
func shardTestJobs(n int) ([]Job, []diagnose.Alert) {
	rng := rand.New(rand.NewSource(42))
	spines := []flow.SwitchID{100, 101, 102, 103}
	records := make([]flow.Record, 0, n)
	for i := 0; i < n; i++ {
		src := flow.Addr(rng.Intn(32))
		dst := flow.Addr(rng.Intn(32))
		leafS := flow.SwitchID(int64(src)/8 + 1)
		leafD := flow.SwitchID(int64(dst)/8 + 1)
		spine := spines[rng.Intn(len(spines))]
		gbps := 100 + 50*rng.Float64()
		if spine == 100 || src == 3 {
			gbps /= 10 // degraded spine and slow rank
		}
		records = append(records, rec(uint64(i+1), src, dst, gbps, leafS, spine, leafD))
	}
	// Localize requires (start, id) order within a job.
	flow.SortByStart(records)
	jobs := []Job{{ID: 1, Records: records}}
	alerts := []diagnose.Alert{{Kind: diagnose.AlertSwitchBandwidth, Switch: 100}}
	jobs[0].Alerts = []diagnose.Alert{{Kind: diagnose.AlertCrossStep, Rank: 3, Step: 2}}
	return jobs, alerts
}

// TestLocalizeShardInvariance is the determinism gate for the sharded
// accumulators: every shard count must produce the exact suspect list the
// serial reference path (Shards: 1) produces — scores bit-identical, not
// just rankings.
func TestLocalizeShardInvariance(t *testing.T) {
	jobs, alerts := shardTestJobs(shardMinRows + 500)
	want := Localize(jobs, alerts, Config{Shards: 1, MaxSuspects: 32})
	if len(want) == 0 {
		t.Fatal("reference run produced no suspects")
	}
	for _, shards := range []int{0, 2, 3, 4, 7, 8} {
		got := Localize(jobs, alerts, Config{Shards: shards, MaxSuspects: 32})
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Shards=%d diverges from serial reference:\nwant %+v\ngot  %+v", shards, want, got)
		}
	}
}

// TestLocalizeSmallWindowStaysSerial: windows under shardMinRows take the
// serial path regardless of Shards — and still match it exactly when
// forced through the sharded machinery sizes can't reach here. (The
// equivalence itself is what matters; the fallback is a perf guard.)
func TestLocalizeSmallWindowShardEquivalence(t *testing.T) {
	jobs, alerts := shardTestJobs(600)
	want := Localize(jobs, alerts, Config{Shards: 1})
	for _, shards := range []int{0, 4} {
		if got := Localize(jobs, alerts, Config{Shards: shards}); !reflect.DeepEqual(want, got) {
			t.Fatalf("Shards=%d diverges on a small window", shards)
		}
	}
}

// TestComponentShardPartition: the hash must place every component in
// exactly one shard, stably.
func TestComponentShardPartition(t *testing.T) {
	comps := []Component{
		SwitchComponent(1), SwitchComponent(100),
		LinkComponent(1, 100), LinkComponent(100, 1),
		HostComponent(3), HostComponent(31),
	}
	for _, n := range []int{1, 2, 5, 8} {
		for _, c := range comps {
			s := componentShard(c, n)
			if s < 0 || s >= n {
				t.Fatalf("componentShard(%v, %d) = %d out of range", c, n, s)
			}
			if s2 := componentShard(c, n); s2 != s {
				t.Fatalf("componentShard(%v, %d) unstable: %d then %d", c, n, s, s2)
			}
		}
	}
}
