package localize

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/flow"
)

// BenchmarkLocalize scores a realistic window: 3 jobs × 16 ranks, 30k
// flows over 3-hop paths on a 12-leaf/8-spine fabric, one degraded spine
// implicating roughly a third of the traffic via a switch alert plus two
// rank alerts.
func BenchmarkLocalize(b *testing.B) {
	const (
		jobs     = 3
		ranks    = 16
		perPair  = 40
		leaves   = 12
		spines   = 8
		badSpine = flow.SwitchID(leaves + 2)
	)
	start := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	var inputs []Job
	id := uint64(0)
	for j := 0; j < jobs; j++ {
		var job Job
		job.Types = make(map[flow.Pair]parallel.Type)
		base := flow.Addr(j * ranks)
		for r := 0; r < ranks; r++ {
			src := base + flow.Addr(r)
			dst := base + flow.Addr((r+1)%ranks)
			job.Types[flow.MakePair(src, dst)] = parallel.TypeDP
			srcLeaf := flow.SwitchID(int(src) % leaves)
			dstLeaf := flow.SwitchID(int(dst) % leaves)
			for k := 0; k < perPair; k++ {
				id++
				spine := flow.SwitchID(leaves + (int(id) % spines))
				gbps := 120.0
				if spine == badSpine {
					gbps = 15
				}
				job.Records = append(job.Records, flow.Record{
					ID: id, Start: start.Add(time.Duration(id) * time.Millisecond),
					Duration: time.Second, Src: src, Dst: dst,
					Bytes:    int64(gbps * 1e9 / 8),
					Switches: []flow.SwitchID{srcLeaf, spine, dstLeaf},
				})
			}
		}
		job.DPGroups = [][]flow.Addr{nil}
		for r := 0; r < ranks; r++ {
			job.DPGroups[0] = append(job.DPGroups[0], base+flow.Addr(r))
		}
		job.Alerts = []diagnose.Alert{
			{Kind: diagnose.AlertCrossStep, Rank: base},
			{Kind: diagnose.AlertCrossStep, Rank: base + 5},
		}
		inputs = append(inputs, job)
	}
	switchAlerts := []diagnose.Alert{{Kind: diagnose.AlertSwitchBandwidth, Switch: badSpine}}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := Localize(inputs, switchAlerts, Config{}); len(s) == 0 {
			b.Fatal("no suspects")
		}
	}
}
