package localize

import (
	"sort"
	"time"
)

// TrackerSnapshot is the suspect tracker's serializable continuity state:
// per-component fused sums, miss counters and the last per-window suspect
// each Fused entry is rebuilt from. Configuration is not part of it — a
// snapshot restores into a tracker constructed with the session's config.
type TrackerSnapshot struct {
	// Tracks are the open suspect tracks, ordered by component identity.
	Tracks []TrackSnapshot
}

// TrackSnapshot is one component's continuity state.
type TrackSnapshot struct {
	Component Component
	FirstSeen time.Time
	Windows   int
	Fused     float64
	Missed    int
	// Last is the most recent per-window Suspect observed for the
	// component (its Component/continuity fields as stamped then).
	Last Suspect
}

// Snapshot captures the tracker's state. The result shares nothing with
// the tracker and stays valid across further Observe calls.
func (t *Tracker) Snapshot() TrackerSnapshot {
	s := TrackerSnapshot{Tracks: make([]TrackSnapshot, 0, len(t.open))}
	for c, tr := range t.open {
		s.Tracks = append(s.Tracks, TrackSnapshot{
			Component: c,
			FirstSeen: tr.firstSeen,
			Windows:   tr.windows,
			Fused:     tr.fused,
			Missed:    tr.missed,
			Last:      tr.last,
		})
	}
	sort.Slice(s.Tracks, func(i, j int) bool {
		return s.Tracks[i].Component.less(s.Tracks[j].Component)
	})
	return s
}

// Restore replaces the tracker's open tracks with the snapshot's, keeping
// the tracker's own configuration.
func (t *Tracker) Restore(s TrackerSnapshot) {
	t.open = make(map[Component]*track, len(s.Tracks))
	for _, ts := range s.Tracks {
		t.open[ts.Component] = &track{
			firstSeen: ts.FirstSeen,
			windows:   ts.Windows,
			fused:     ts.Fused,
			missed:    ts.Missed,
			last:      ts.Last,
		}
	}
}
