// Package localize turns one analysis window's multi-dimensional alerts
// into a ranked list of suspect fabric components — the step from "which
// symptom" to "which switch, link or host", the answer a platform operator
// actually needs.
//
// # Evidence model
//
// The detectors name symptoms, not causes: a cross-step alert names a slow
// rank, a cross-group alert a slow DP group, a switch-bandwidth alert a
// switch whose per-flow mean dipped. Each alert implicates a set of flow
// records — the rank's flows, the group members' DP flows, the switch's
// rows — and every flow covers a set of physical components: the switches
// on its recorded path, the links between consecutive path hops, and its
// two endpoint NICs. Localization is spectrum-style suspiciousness scoring
// over that coverage matrix (the program-spectrum technique FLARE-class
// systems apply to cluster telemetry): a component covered by many
// implicated flows and few healthy ones is suspicious.
//
// Two sub-scores multiply into Suspect.Score:
//
//   - Coverage, the Ochiai coefficient ef/sqrt(F·(ef+ep)) where ef counts
//     implicated flows covering the component, F all implicated flows and
//     ep healthy flows covering it. It is 1 exactly when the component
//     covers every implicated flow and no healthy one.
//   - Contrast, the bandwidth ratio between the implicated flows that
//     avoid the component and those that cover it, clamped to
//     [1/MaxContrast, MaxContrast]. Coverage alone cannot separate the
//     members of a slow DP group (a group alert implicates them all
//     symmetrically); the member whose flows are actually slow is the one
//     behind the degraded NIC or link. Link components additionally
//     contrast against their endpoint switches' implicated flows: a
//     switch-bandwidth alert implicates exactly the switch's rows, so a
//     degraded link under a healthy-but-flagged switch is distinguishable
//     only by its flows being slow relative to the switch's other edges —
//     while under a genuinely degraded switch every edge is equally slow
//     and the switch keeps the higher score; conversely, a link that is
//     not anomalous relative to a higher-scoring endpoint switch is
//     dropped from the ranking — the switch already explains it. Host
//     components likewise contrast each direction separately — a failing
//     transmit optic slows only outgoing flows, and averaging them with
//     the host's healthy receives hides it — with a discount on the
//     receive direction, so the transmitting end of a slow flow outranks
//     its receiver, which observes the very same flow.
//
// # Determinism discipline
//
// Localization runs on the merged report, after the per-job fan-out has
// been folded back in job order: flows are visited in (job, start, id)
// order and each flow's components in path order, so every per-component
// float accumulator receives its contributions in one fixed sequence, and
// the final ranking sorts by (score, kind, identity). Config.Shards
// parallelizes the accumulation by component hash: each shard scans all
// flows in that same order but owns a disjoint component set, so every
// accumulator still sees the serial sequence. The suspect list is
// therefore bit-identical for any analysis worker count, any shard count,
// any within-lateness arrival permutation, and any archive replay of the
// same window.
package localize

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/flow"
)

// ComponentKind classifies a suspect component.
type ComponentKind uint8

// Component kinds. The order is also the ranking tie-break order:
// switches before links before hosts.
const (
	ComponentSwitch ComponentKind = iota + 1
	ComponentLink
	ComponentHost
)

func (k ComponentKind) String() string {
	switch k {
	case ComponentSwitch:
		return "switch"
	case ComponentLink:
		return "link"
	case ComponentHost:
		return "host"
	default:
		return fmt.Sprintf("ComponentKind(%d)", uint8(k))
	}
}

// Component identifies one physical fabric element a fault can live on: a
// switch, a directed inter-switch link (a consecutive switch-path edge —
// directed because fabrics degrade per direction: a failing transmit optic
// slows leaf→spine while spine→leaf stays clean, and folding the healthy
// reverse direction into the component would dilute its slowness
// evidence), or a host NIC. Only the fields of the Kind are set; the
// struct is comparable and keys cross-window continuity.
type Component struct {
	Kind ComponentKind
	// Switch is the switch identity for ComponentSwitch.
	Switch flow.SwitchID
	// A, B are the link's switch endpoints for ComponentLink, in
	// traversal order (A → B).
	A, B flow.SwitchID
	// Host is the NIC endpoint for ComponentHost.
	Host flow.Addr
}

// SwitchComponent returns the component of one switch.
func SwitchComponent(sw flow.SwitchID) Component {
	return Component{Kind: ComponentSwitch, Switch: sw}
}

// LinkComponent returns the component of the directed link from a to b.
func LinkComponent(a, b flow.SwitchID) Component {
	return Component{Kind: ComponentLink, A: a, B: b}
}

// HostComponent returns the component of one endpoint NIC/host.
func HostComponent(a flow.Addr) Component {
	return Component{Kind: ComponentHost, Host: a}
}

func (c Component) String() string {
	switch c.Kind {
	case ComponentSwitch:
		return "switch " + c.Switch.String()
	case ComponentLink:
		return "link " + c.A.String() + "->" + c.B.String()
	case ComponentHost:
		return "host " + c.Host.String()
	default:
		return c.Kind.String()
	}
}

// less orders components by (kind, identity) — the deterministic ranking
// tie-break.
func (c Component) less(o Component) bool {
	if c.Kind != o.Kind {
		return c.Kind < o.Kind
	}
	switch c.Kind {
	case ComponentSwitch:
		return c.Switch < o.Switch
	case ComponentLink:
		if c.A != o.A {
			return c.A < o.A
		}
		return c.B < o.B
	default:
		return c.Host < o.Host
	}
}

// Suspect is one ranked root-cause candidate.
type Suspect struct {
	Component Component
	// Score is Coverage × Contrast; suspects are ranked by it, ties
	// broken by (kind, identity).
	Score float64
	// Coverage is the Ochiai spectrum score of the component over
	// implicated vs healthy flows.
	Coverage float64
	// Contrast is the clamped bandwidth ratio of implicated flows
	// avoiding the component to implicated flows covering it (> 1 means
	// the covering flows are slower than their implicated peers).
	Contrast float64
	// Implicated and Healthy count the alert-implicated and healthy
	// flows covering the component.
	Implicated, Healthy int
	// FirstSeen and Windows are cross-window continuity, stamped by the
	// monitor's suspect tracker (zero outside the monitor): the window
	// start at which this component first became a suspect and the count
	// of windows it has been one (missed windows inside the tracker's
	// grace do not reset the run).
	FirstSeen time.Time
	Windows   int
	// Fused is the component's cross-window fused suspiciousness — the
	// running sum of its per-window Score over the windows of its current
	// run, stamped by the tracker (zero outside the monitor). Brief noise
	// contributes one window's score; a real fault keeps accumulating, so
	// ranking by Fused washes the noise out.
	Fused float64
}

// Config tunes localization.
type Config struct {
	// MaxSuspects bounds the ranked list. Default 8.
	MaxSuspects int
	// MinScore drops components scoring below it. Default 0.02.
	MinScore float64
	// MaxContrast clamps the bandwidth-contrast factor (and its
	// reciprocal). Default 16.
	MaxContrast float64
	// Filter, when non-nil, gates which alerts count as localization
	// evidence: an alert for which it returns false implicates no flows.
	// job is the alert's Job.ID (0 for fabric-level switch alerts). The
	// monitor uses it to exclude chronic-baseline incidents — an anomaly
	// firing since window 0 is a structural property whose evidence would
	// only drag suspicion toward healthy components.
	Filter func(job int, a diagnose.Alert) bool
	// Shards parallelizes the per-component evidence accumulation. Each of
	// Shards workers scans every flow in the same fixed (job, start, id)
	// order but folds only the components it owns (by component hash), so
	// every per-component float accumulator still receives its
	// contributions in exactly the serial sequence — the suspect list is
	// bit-identical for every shard count. 0 picks GOMAXPROCS (capped at
	// maxAutoShards); 1 is the serial reference path. Windows smaller than
	// shardMinRows run serially regardless.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.MaxSuspects <= 0 {
		c.MaxSuspects = 8
	}
	if c.MinScore <= 0 {
		c.MinScore = 0.02
	}
	if c.MaxContrast <= 1 {
		c.MaxContrast = 16
	}
	return c
}

// receiveDiscount scales the receive-direction host contrast: receiving a
// slow flow is weaker evidence of a local fault than sending one (the
// sender's transmit path, or the fabric between, is the likelier culprit).
const receiveDiscount = 0.6

// linkDominanceContrast is the minimum sibling contrast a link suspect
// must show against a higher-scoring endpoint switch to stay in the
// ranking: below it, the link's flows are no slower than the switch's
// other edges, so the switch is the better explanation.
const linkDominanceContrast = 2

// Job is one recognized job's analysis output, the per-job slice of the
// report the localizer consumes.
type Job struct {
	// ID is the job's stable cross-window identity (the monitor's JobID),
	// passed to Config.Filter. Zero outside the monitor.
	ID int
	// Records are the job's flow records in (start, id) order, switch
	// paths included.
	Records []flow.Record
	// Types classifies the job's pairs (PP vs DP).
	Types map[flow.Pair]parallel.Type
	// DPGroups are the job's DP groups; cross-group alerts index them.
	DPGroups [][]flow.Addr
	// Alerts are the job-scoped alerts (cross-step, cross-group).
	Alerts []diagnose.Alert
}

// compStat accumulates one component's spectrum counters.
type compStat struct {
	implicated int     // implicated flows covering the component
	healthy    int     // healthy flows covering the component
	implSum    float64 // Gbps sum of measurable implicated covering flows
	implBW     int     // count behind implSum
	// Directional splits of (implSum, implBW), tracked for host
	// components: outgoing = the host is the flow's source.
	outSum, inSum float64
	outBW, inBW   int
}

// Localize converts one window's alerts plus its flows' switch paths into
// a ranked suspect list. jobs must be in report order (smallest endpoint
// first) with records in (start, id) order — Localize preserves that order
// in its float accumulation, which is what makes the result bit-identical
// across worker counts. switchAlerts are the window's fabric-level alerts.
// It returns nil when no alert implicates any flow.
func Localize(jobs []Job, switchAlerts []diagnose.Alert, cfg Config) []Suspect {
	cfg = cfg.withDefaults()

	// Deduplicate alerts into implication targets: a rank slow in ten
	// steps implicates its flows once, not ten times. The evidence filter
	// runs here, before any implication is recorded, so a filtered alert
	// contributes nothing anywhere downstream.
	keep := func(job int, a diagnose.Alert) bool {
		return cfg.Filter == nil || cfg.Filter(job, a)
	}
	flaggedSwitches := make(map[flow.SwitchID]bool)
	for _, a := range switchAlerts {
		switch a.Kind {
		case diagnose.AlertSwitchBandwidth, diagnose.AlertSwitchFlowCount:
			if keep(0, a) {
				flaggedSwitches[a.Switch] = true
			}
		}
	}
	targets := make([]jobTargets, len(jobs))
	any := len(flaggedSwitches) > 0
	for ji, job := range jobs {
		t := jobTargets{ranks: make(map[flow.Addr]bool), members: make(map[flow.Addr]bool)}
		for _, a := range job.Alerts {
			if !keep(job.ID, a) {
				continue
			}
			switch a.Kind {
			case diagnose.AlertCrossStep:
				t.ranks[a.Rank] = true
			case diagnose.AlertCrossGroup:
				if a.Group >= 0 && a.Group < len(job.DPGroups) {
					for _, m := range job.DPGroups[a.Group] {
						t.members[m] = true
					}
				}
			case diagnose.AlertSwitchBandwidth, diagnose.AlertSwitchFlowCount:
				flaggedSwitches[a.Switch] = true
				any = true
			}
		}
		if len(t.ranks) > 0 || len(t.members) > 0 {
			any = true
		}
		targets[ji] = t
	}
	if !any {
		return nil
	}

	// Accumulate the per-component spectrum counters — serial reference
	// path for one shard, component-hash-sharded workers otherwise (see
	// accumulate for the determinism argument). Shard 0 owns the global
	// totals either way.
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > maxAutoShards {
			shards = maxAutoShards
		}
	}
	total := 0
	for i := range jobs {
		total += len(jobs[i].Records)
	}
	if total < shardMinRows {
		shards = 1
	}
	accs := make([]accumulator, shards)
	if shards == 1 {
		accs[0] = accumulate(jobs, targets, flaggedSwitches, 0, 1)
	} else {
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				accs[s] = accumulate(jobs, targets, flaggedSwitches, s, shards)
			}(s)
		}
		wg.Wait()
	}
	implRows, implSum, implBW := accs[0].implRows, accs[0].implSum, accs[0].implBW
	lookup := func(c Component) *compStat {
		if shards == 1 {
			return accs[0].stats[c]
		}
		return accs[componentShard(c, shards)].stats[c]
	}
	if implRows == 0 {
		return nil
	}

	// Score the components touched by implicated flows, in (kind,
	// identity) order — each component's score depends only on its own
	// counters and the global totals, but the fixed fold order keeps the
	// pipeline reproducible end to end. Shards are drained in fixed index
	// order; the sort below canonicalizes regardless.
	var ordered []Component
	for s := range accs {
		for c, st := range accs[s].stats {
			if st.implicated > 0 {
				ordered = append(ordered, c)
			}
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].less(ordered[j]) })

	// contrastOf is the slowness ratio of a reference flow set's mean
	// bandwidth to the component's covering mean (1 when either side is
	// empty; MaxContrast when the covering flows are fully stalled).
	contrastOf := func(coverSum float64, coverN int, restSum float64, restN int) float64 {
		if coverN == 0 || restN <= 0 {
			return 1
		}
		cover := coverSum / float64(coverN)
		if cover <= 0 {
			return cfg.MaxContrast
		}
		return (restSum / float64(restN)) / cover
	}
	suspects := make([]Suspect, 0, len(ordered))
	scores := make(map[Component]float64, len(ordered))
	sibling := make(map[Component][2]float64) // link → per-endpoint sibling contrast
	for _, c := range ordered {
		s := lookup(c)
		coverage := float64(s.implicated) /
			math.Sqrt(float64(implRows)*float64(s.implicated+s.healthy))
		contrast := contrastOf(s.implSum, s.implBW, implSum-s.implSum, implBW-s.implBW)
		switch c.Kind {
		case ComponentLink:
			// Sibling contrast: compare the link's flows against the
			// other implicated flows of each endpoint switch.
			var sib [2]float64
			for i, sw := range [2]flow.SwitchID{c.A, c.B} {
				sib[i] = 1
				if p := lookup(SwitchComponent(sw)); p != nil {
					sib[i] = contrastOf(s.implSum, s.implBW, p.implSum-s.implSum, p.implBW-s.implBW)
				}
				if sib[i] > contrast {
					contrast = sib[i]
				}
			}
			sibling[c] = sib
		case ComponentHost:
			// Directional contrast, receive side discounted (the sending
			// end of a slow flow is the likelier culprit).
			rest, restN := implSum-s.implSum, implBW-s.implBW
			if out := contrastOf(s.outSum, s.outBW, rest, restN); out > contrast {
				contrast = out
			}
			if in := receiveDiscount * contrastOf(s.inSum, s.inBW, rest, restN); in > contrast {
				contrast = in
			}
		}
		if contrast > cfg.MaxContrast {
			contrast = cfg.MaxContrast
		}
		if contrast < 1/cfg.MaxContrast {
			contrast = 1 / cfg.MaxContrast
		}
		score := coverage * contrast
		if score < cfg.MinScore {
			continue
		}
		scores[c] = score
		suspects = append(suspects, Suspect{
			Component:  c,
			Score:      score,
			Coverage:   coverage,
			Contrast:   contrast,
			Implicated: s.implicated,
			Healthy:    s.healthy,
		})
	}
	// Dominance: a link that is no slower than a switch's other edges,
	// under that switch scoring higher, adds nothing over the switch —
	// every flow of the link is one of the switch's flows.
	kept := suspects[:0]
	for _, s := range suspects {
		if s.Component.Kind == ComponentLink {
			sib := sibling[s.Component]
			dominated := false
			for i, sw := range [2]flow.SwitchID{s.Component.A, s.Component.B} {
				if sib[i] >= linkDominanceContrast {
					continue
				}
				if swScore, ok := scores[SwitchComponent(sw)]; ok && swScore > s.Score {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
		}
		kept = append(kept, s)
	}
	suspects = kept
	sort.SliceStable(suspects, func(i, j int) bool {
		if suspects[i].Score != suspects[j].Score {
			return suspects[i].Score > suspects[j].Score
		}
		return suspects[i].Component.less(suspects[j].Component)
	})
	if len(suspects) > cfg.MaxSuspects {
		suspects = suspects[:cfg.MaxSuspects]
	}
	if len(suspects) == 0 {
		return nil
	}
	return suspects
}

// maxAutoShards caps Shards == 0 auto-selection: the accumulation is
// memory-bound well before this, and every shard re-scans every flow.
const maxAutoShards = 8

// shardMinRows is the total record count below which accumulation always
// runs serially — fan-out overhead exceeds the win on small windows, and
// unit-test-sized inputs stay on the reference path.
const shardMinRows = 4096

// jobTargets is one job's implication targets, derived from its kept
// alerts.
type jobTargets struct {
	ranks   map[flow.Addr]bool
	members map[flow.Addr]bool // union of flagged DP groups' members
}

// accumulator is one shard's accumulation output. Shard 0 additionally
// carries the global implicated-flow totals.
type accumulator struct {
	stats    map[Component]*compStat
	implRows int     // F: all implicated flows
	implSum  float64 // Gbps sum of measurable implicated flows
	implBW   int
}

// componentShard assigns c to one of n accumulation shards by a
// splitmix64-style hash of its identity. The hash decides only which shard
// owns a component's accumulator, never any ordering.
func componentShard(c Component, n int) int {
	var x uint64
	switch c.Kind {
	case ComponentSwitch:
		x = uint64(c.Switch)
	case ComponentLink:
		x = uint64(c.A)*0x9e3779b97f4a7c15 + uint64(c.B)
	default:
		x = uint64(c.Host)
	}
	x = x*8 + uint64(c.Kind)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// accumulate folds every flow, in (job, start, id) order, into the
// components owned by shard (every component when nShards == 1).
//
// Sharding discipline: each shard scans all flows — the implication test is
// cheap map lookups — but folds a component only if the component hash maps
// it to this shard. A component is owned by exactly one shard, so its float
// accumulator receives contributions in exactly the sequence the serial
// pass produces; nothing is ever folded across shards, so there is no shard
// fold whose order could vary. Shard 0 also accumulates the global totals,
// in the same serial flow order. The inputs (targets, flagged, jobs) are
// read-only across shards.
func accumulate(jobs []Job, targets []jobTargets, flagged map[flow.SwitchID]bool, shard, nShards int) accumulator {
	acc := accumulator{stats: make(map[Component]*compStat)}
	owns := func(c Component) bool {
		return nShards == 1 || componentShard(c, nShards) == shard
	}
	stat := func(c Component) *compStat {
		s := acc.stats[c]
		if s == nil {
			s = &compStat{}
			acc.stats[c] = s
		}
		return s
	}
	var comps []Component // scratch, per flow
	for ji := range jobs {
		job := &jobs[ji]
		t := targets[ji]
		for _, r := range job.Records {
			implicated := t.ranks[r.Src] || t.ranks[r.Dst]
			if !implicated && len(t.members) > 0 && t.members[r.Src] && t.members[r.Dst] &&
				job.Types[r.Pair()] == parallel.TypeDP {
				implicated = true
			}
			if !implicated && len(flagged) > 0 {
				for _, sw := range r.Switches {
					if flagged[sw] {
						implicated = true
						break
					}
				}
			}

			comps = comps[:0]
			for i, sw := range r.Switches {
				comps = append(comps, SwitchComponent(sw))
				if i > 0 {
					comps = append(comps, LinkComponent(r.Switches[i-1], sw))
				}
			}

			gbps := r.Gbps()
			measurable := r.Duration > 0 && r.Bytes > 0
			if implicated && shard == 0 {
				acc.implRows++
				if measurable {
					acc.implSum += gbps
					acc.implBW++
				}
			}
			fold := func(s *compStat) {
				if implicated {
					s.implicated++
					if measurable {
						s.implSum += gbps
						s.implBW++
					}
				} else {
					s.healthy++
				}
			}
			for _, c := range dedupComponents(comps) {
				if owns(c) {
					fold(stat(c))
				}
			}
			if c := HostComponent(r.Src); owns(c) {
				src := stat(c)
				fold(src)
				if implicated && measurable {
					src.outSum += gbps
					src.outBW++
				}
			}
			if r.Dst != r.Src {
				if c := HostComponent(r.Dst); owns(c) {
					dst := stat(c)
					fold(dst)
					if implicated && measurable {
						dst.inSum += gbps
						dst.inBW++
					}
				}
			}
		}
	}
	return acc
}

// dedupComponents removes duplicates in place, preserving first-seen
// order. Paths are short (a handful of hops), so the quadratic scan beats
// a map.
func dedupComponents(comps []Component) []Component {
	out := comps[:0]
	for _, c := range comps {
		dup := false
		for _, seen := range out {
			if seen == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}
