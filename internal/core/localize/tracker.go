package localize

import "time"

// Tracker carries suspect identity across analysis windows, the
// localization counterpart of diagnose.IncidentTracker: a component that
// stays suspect window after window is one ongoing root-cause hypothesis,
// keyed on its physical identity, not a fresh finding per window. It is
// not safe for concurrent use; the monitor drives it from the in-order
// report emission path, so its output is deterministic regardless of how
// many windows analyze in parallel.
type Tracker struct {
	open map[Component]track
}

type track struct {
	firstSeen time.Time
	windows   int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{open: make(map[Component]track)}
}

// Observe folds one window's ranked suspects (at is the window start) into
// the tracker and stamps each suspect's FirstSeen and Windows continuity
// fields in place. Components absent from this window's list are
// forgotten — a reappearance starts a new run.
func (t *Tracker) Observe(at time.Time, suspects []Suspect) {
	seen := make(map[Component]bool, len(suspects))
	for i := range suspects {
		c := suspects[i].Component
		tr, ok := t.open[c]
		if !ok {
			tr = track{firstSeen: at}
		}
		tr.windows++
		t.open[c] = tr
		suspects[i].FirstSeen = tr.firstSeen
		suspects[i].Windows = tr.windows
		seen[c] = true
	}
	for c := range t.open {
		if !seen[c] {
			delete(t.open, c)
		}
	}
}

// Open returns the number of components currently suspect.
func (t *Tracker) Open() int { return len(t.open) }
