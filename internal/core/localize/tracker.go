package localize

import (
	"sort"
	"time"
)

// TrackerConfig tunes cross-window suspect continuity and fusion.
type TrackerConfig struct {
	// Grace is how many consecutive windows a suspect may miss before the
	// tracker forgets it. The historical behavior — forget on the first
	// miss — turned every flapping fault into a parade of fresh suspects,
	// resetting FirstSeen/Windows and the fused score on each
	// reappearance. Default 1 (one missed window tolerated); negative
	// disables the grace entirely.
	Grace int
	// MaxFused bounds the list Fused returns. Default 8.
	MaxFused int
	// Decay is the retention factor applied to a component's fused sum on
	// every observed window — hit or miss — before the window's score (0
	// on a miss) is added. It bounds how long stale evidence outranks
	// fresh: without it, two pre-fault windows of accumulated noise top
	// the fused list in a real fault's first window. 1 disables decay
	// (pure running sum); 0 applies the default 0.5.
	Decay float64
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	if c.Grace == 0 {
		c.Grace = 1
	}
	if c.Grace < 0 {
		c.Grace = 0
	}
	if c.MaxFused <= 0 {
		c.MaxFused = 8
	}
	if c.Decay <= 0 || c.Decay > 1 {
		c.Decay = 0.5
	}
	return c
}

// Tracker carries suspect identity across analysis windows, the
// localization counterpart of diagnose.IncidentTracker: a component that
// stays suspect window after window is one ongoing root-cause hypothesis,
// keyed on its physical identity, not a fresh finding per window. Beyond
// continuity stamping it fuses suspiciousness across windows — each
// observed window adds the component's per-window Score to an
// exponentially decayed running sum — so the Fused ranking is the
// incident-centric view: brief noise contributes once and fades, a real
// fault keeps accumulating faster than it decays, and concurrent faults
// separate by how consistently each component scores. It is not safe for
// concurrent use; the monitor drives it from the in-order report emission
// path, so its output is deterministic regardless of how many windows
// analyze in parallel.
type Tracker struct {
	cfg  TrackerConfig
	open map[Component]*track
}

type track struct {
	firstSeen time.Time
	windows   int
	fused     float64
	missed    int
	// last is the most recent per-window Suspect observed for the
	// component, the basis of its entry in the Fused ranking.
	last Suspect
}

// NewTracker returns an empty tracker. The zero cfg applies the documented
// defaults (one window of grace).
func NewTracker(cfg TrackerConfig) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), open: make(map[Component]*track)}
}

// Observe folds one window's ranked suspects (at is the window start) into
// the tracker and stamps each suspect's FirstSeen, Windows and Fused
// continuity fields in place. Per-component fused sums decay by cfg.Decay
// and accumulate independently, in window order, so the result is
// deterministic for deterministic input. A component absent from this
// window's list survives up to Grace consecutive misses — its run resumes
// on reappearance, with the fused score decayed across the gap — and is
// forgotten beyond that.
func (t *Tracker) Observe(at time.Time, suspects []Suspect) {
	seen := make(map[Component]bool, len(suspects))
	for i := range suspects {
		c := suspects[i].Component
		tr, ok := t.open[c]
		if !ok {
			tr = &track{firstSeen: at}
			t.open[c] = tr
		}
		tr.windows++
		tr.fused = tr.fused*t.cfg.Decay + suspects[i].Score
		tr.missed = 0
		suspects[i].FirstSeen = tr.firstSeen
		suspects[i].Windows = tr.windows
		suspects[i].Fused = tr.fused
		tr.last = suspects[i]
		seen[c] = true
	}
	for c, tr := range t.open {
		if seen[c] {
			continue
		}
		tr.fused *= t.cfg.Decay
		tr.missed++
		if tr.missed > t.cfg.Grace {
			delete(t.open, c)
		}
	}
}

// Fused returns the cross-window fused ranking over every component the
// tracker currently holds — including ones inside their grace window —
// ordered by (fused score desc, kind, identity) and bounded by
// cfg.MaxFused. Each entry is the component's most recent per-window
// suspect with the continuity fields brought up to date; the slice is
// freshly allocated.
func (t *Tracker) Fused() []Suspect {
	out := make([]Suspect, 0, len(t.open))
	for c, tr := range t.open {
		s := tr.last
		s.Component = c
		s.FirstSeen = tr.firstSeen
		s.Windows = tr.windows
		s.Fused = tr.fused
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fused != out[j].Fused {
			return out[i].Fused > out[j].Fused
		}
		return out[i].Component.less(out[j].Component)
	})
	if len(out) > t.cfg.MaxFused {
		out = out[:t.cfg.MaxFused]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Open returns the number of components currently suspect (grace-window
// survivors included).
func (t *Tracker) Open() int { return len(t.open) }
