// Package jobrec implements LLM training job recognition (Algorithm 1 of
// the LLMPrism paper): starting from a black-box view of tens of thousands
// of GPUs, it clusters NIC endpoints that exchange network flows into
// cross-machine clusters with a disjoint-set union, then merges clusters
// whose physical server sets are identical (Jaccard similarity 1) —
// tensor-parallel traffic never crosses the fabric, so the several NIC
// rails of one job appear as separate cross-machine clusters that only the
// topology can reunite.
package jobrec

import (
	"sort"

	"github.com/llmprism/llmprism/internal/dsu"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/stats"
	"github.com/llmprism/llmprism/internal/topology"
)

// ServerMapper resolves a NIC endpoint to its physical server — the only
// topology knowledge the provider needs (and has).
type ServerMapper interface {
	NodeOf(flow.Addr) topology.NodeID
}

// Cluster is one recognized training job.
type Cluster struct {
	// Endpoints are the member NICs/GPUs, sorted.
	Endpoints []flow.Addr
	// Servers is the deduplicated sorted server set of the endpoints.
	Servers []topology.NodeID
}

// Config tunes recognition.
type Config struct {
	// MergeJaccard is the server-set similarity at or above which two
	// cross-machine clusters are merged. The paper uses exactly 1
	// (identical sets); values below 1 tolerate partially-observed rails.
	// Default 1.
	MergeJaccard float64
}

func (c Config) withDefaults() Config {
	if c.MergeJaccard <= 0 || c.MergeJaccard > 1 {
		c.MergeJaccard = 1
	}
	return c
}

// CrossMachineClusters returns the phase-1 clusters: endpoints connected by
// observed flows, before the topology merge. Cluster and member order is
// deterministic (sorted by smallest endpoint).
func CrossMachineClusters(records []flow.Record) [][]flow.Addr {
	u := dsu.NewSparse[flow.Addr]()
	for _, r := range records {
		if r.Src == r.Dst {
			continue
		}
		u.Union(r.Src, r.Dst)
	}
	return sortedGroups(u)
}

// CrossMachineClustersFrame is CrossMachineClusters over a columnar frame.
// It unions the frame's distinct pairs rather than every record — one DSU
// operation per pair instead of per flow — and yields the same clusters.
func CrossMachineClustersFrame(f *flow.Frame) [][]flow.Addr {
	u := dsu.NewSparse[flow.Addr]()
	for _, p := range f.Pairs() {
		if p.A == p.B {
			continue
		}
		u.Union(p.A, p.B)
	}
	return sortedGroups(u)
}

func sortedGroups(u *dsu.Sparse[flow.Addr]) [][]flow.Addr {
	clusters := u.Groups()
	for _, c := range clusters {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	return clusters
}

// Recognize runs the full Algorithm 1: cross-machine clustering followed by
// the topology-based server-set merge, yielding job-level clusters.
func Recognize(records []flow.Record, mapper ServerMapper, cfg Config) []Cluster {
	return mergeClusters(CrossMachineClusters(records), mapper, cfg)
}

// RecognizeFrame is Recognize over a columnar frame; the phase-1 clustering
// walks the pair index instead of the rows.
func RecognizeFrame(f *flow.Frame, mapper ServerMapper, cfg Config) []Cluster {
	return mergeClusters(CrossMachineClustersFrame(f), mapper, cfg)
}

// mergeClusters runs the topology-based server-set merge over the phase-1
// clusters.
func mergeClusters(raw [][]flow.Addr, mapper ServerMapper, cfg Config) []Cluster {
	cfg = cfg.withDefaults()

	servers := make([][]topology.NodeID, len(raw))
	for i, members := range raw {
		servers[i] = serverSet(members, mapper)
	}

	// Merge clusters with sufficiently similar server sets. For the
	// default threshold of 1 this is an exact-set grouping; below 1 it is
	// a transitive pairwise merge.
	merge := dsu.New(len(raw))
	if cfg.MergeJaccard == 1 {
		byKey := make(map[string]int)
		for i, set := range servers {
			key := fingerprint(set)
			if j, ok := byKey[key]; ok {
				merge.Union(i, j)
			} else {
				byKey[key] = i
			}
		}
	} else {
		for i := 0; i < len(raw); i++ {
			for j := i + 1; j < len(raw); j++ {
				if stats.Jaccard(servers[i], servers[j]) >= cfg.MergeJaccard {
					merge.Union(i, j)
				}
			}
		}
	}

	byRoot := make(map[int][]int)
	for i := range raw {
		r := merge.Find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	clusters := make([]Cluster, 0, len(byRoot))
	for _, members := range byRoot {
		var c Cluster
		for _, i := range members {
			c.Endpoints = append(c.Endpoints, raw[i]...)
		}
		sort.Slice(c.Endpoints, func(i, j int) bool { return c.Endpoints[i] < c.Endpoints[j] })
		c.Servers = serverSet(c.Endpoints, mapper)
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Endpoints[0] < clusters[j].Endpoints[0] })
	return clusters
}

// SelectJobs partitions a frame into one view per recognized cluster,
// without copying any records: each view is the cluster's pair spans plus
// a start-ordered row permutation. Rows whose endpoints belong to no
// cluster appear in no view, exactly like SplitRecords drops them.
func SelectJobs(f *flow.Frame, clusters []Cluster) []flow.View {
	groups := make([][]flow.Addr, len(clusters))
	for i, c := range clusters {
		groups[i] = c.Endpoints
	}
	return f.SelectMany(groups)
}

// SplitRecords partitions records by recognized cluster, dropping records
// whose endpoints belong to no cluster. The i-th result slice corresponds
// to clusters[i].
func SplitRecords(records []flow.Record, clusters []Cluster) [][]flow.Record {
	owner := make(map[flow.Addr]int)
	for i, c := range clusters {
		for _, a := range c.Endpoints {
			owner[a] = i + 1
		}
	}
	out := make([][]flow.Record, len(clusters))
	for _, r := range records {
		if i := owner[r.Src]; i > 0 && owner[r.Dst] == i {
			out[i-1] = append(out[i-1], r)
		}
	}
	return out
}

func serverSet(addrs []flow.Addr, mapper ServerMapper) []topology.NodeID {
	seen := make(map[topology.NodeID]struct{}, len(addrs))
	for _, a := range addrs {
		seen[mapper.NodeOf(a)] = struct{}{}
	}
	out := make([]topology.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// fingerprint encodes a sorted server set as a compact map key.
func fingerprint(set []topology.NodeID) string {
	buf := make([]byte, 0, len(set)*4)
	for _, n := range set {
		buf = append(buf, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
	return string(buf)
}
