package jobrec

import (
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// Snapshot is the registry's serializable continuity state: everything a
// restarted monitor needs to keep assigning the same JobIDs to the same
// tenants. Configuration is not part of it — a snapshot restores into a
// registry constructed with the session's config.
type Snapshot struct {
	// Next is the last JobID handed out.
	Next JobID
	// Jobs are the tracked jobs in tracking order (ascending id — the
	// order matching and expiry iterate).
	Jobs []JobSnapshot
}

// JobSnapshot is one tracked job's state.
type JobSnapshot struct {
	ID JobID
	// Endpoints is the last observed membership, ascending.
	Endpoints []flow.Addr
	// FirstSeen is the window start at which the id was assigned.
	FirstSeen time.Time
	// LastSeq is the emission index of the last window that matched.
	LastSeq int
}

// Snapshot captures the registry's state. The result shares nothing with
// the registry and stays valid across further Assign calls.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Next: r.next, Jobs: make([]JobSnapshot, len(r.jobs))}
	for i, j := range r.jobs {
		s.Jobs[i] = JobSnapshot{
			ID:        j.id,
			Endpoints: append([]flow.Addr(nil), j.endpoints...),
			FirstSeen: j.firstSeen,
			LastSeq:   j.lastSeq,
		}
	}
	return s
}

// Restore replaces the registry's tracked jobs and id counter with the
// snapshot's, keeping the registry's own configuration. Endpoint slices
// are copied; the snapshot stays usable.
func (r *Registry) Restore(s Snapshot) {
	r.next = s.Next
	r.jobs = make([]registryJob, len(s.Jobs))
	for i, j := range s.Jobs {
		r.jobs[i] = registryJob{
			id:        j.ID,
			endpoints: append([]flow.Addr(nil), j.Endpoints...),
			firstSeen: j.FirstSeen,
			lastSeq:   j.LastSeq,
		}
	}
}
