package jobrec

import (
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// JobID is a stable cross-window training-job identity assigned by a
// Registry. IDs start at 1; 0 means "not assigned" (e.g. a report produced
// outside the monitor).
type JobID int

// RegistryConfig tunes cross-window job matching.
type RegistryConfig struct {
	// MatchJaccard is the minimum endpoint-set Jaccard similarity for a
	// window's cluster to inherit a tracked job's identity. Recognition is
	// per-window and sees only the endpoints that communicated inside the
	// window, so the observed membership of one job fluctuates; a
	// similarity threshold below 1 absorbs that. Default 0.5.
	MatchJaccard float64
	// ExpireAfter is the number of consecutive windows a tracked job may go
	// unmatched before it is forgotten (a later reappearance gets a fresh
	// identity). Default 8.
	ExpireAfter int
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.MatchJaccard <= 0 || c.MatchJaccard > 1 {
		c.MatchJaccard = 0.5
	}
	if c.ExpireAfter <= 0 {
		c.ExpireAfter = 8
	}
	return c
}

// Registry assigns stable JobIDs to the per-window clusters the recognizer
// emits, by matching each window's endpoint sets against the jobs tracked
// from previous windows. It is the continuity anchor of the streaming
// monitor: per-job state (change-point detectors, incident history) is
// keyed by JobID rather than by cluster index, so a job keeps its identity
// while other tenants come and go around it.
//
// Matching is deterministic and globally best-first: every
// (cluster, tracked job) pair at or above the similarity threshold is a
// candidate, candidates are taken in descending similarity order (ties
// broken by lowest cluster index, then lowest JobID), and each cluster and
// job is claimed at most once. Processing clusters in recognition order
// instead used to let an early cluster steal a job that a later cluster
// matched strictly better, permanently swapping the two identities. A
// Registry is not safe for concurrent use; the monitor drives it from the
// in-order report emission path.
type Registry struct {
	cfg  RegistryConfig
	next JobID
	jobs []registryJob
}

type registryJob struct {
	id        JobID
	endpoints []flow.Addr // sorted, last observed membership
	firstSeen time.Time
	lastSeq   int
}

// NewRegistry returns an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	return &Registry{cfg: cfg.withDefaults()}
}

// Len returns the number of jobs currently tracked.
func (r *Registry) Len() int { return len(r.jobs) }

// FirstSeen returns the window start time at which id was first assigned,
// or the zero time when id is unknown (expired or never assigned).
func (r *Registry) FirstSeen(id JobID) time.Time {
	for i := range r.jobs {
		if r.jobs[i].id == id {
			return r.jobs[i].firstSeen
		}
	}
	return time.Time{}
}

// Assign matches one window's recognized clusters against the tracked jobs
// and returns their JobIDs, parallel to clusters. seq is the window's
// emission index (strictly increasing across calls) and at its start time;
// both feed the expiry clock and first-seen bookkeeping. Matched jobs have
// their endpoint sets refreshed to the window's observation; unmatched
// clusters open new jobs; tracked jobs unmatched for ExpireAfter windows
// are dropped.
func (r *Registry) Assign(seq int, at time.Time, clusters []Cluster) []JobID {
	ids := make([]JobID, len(clusters))
	// Globally best-first matching: rank every above-threshold
	// (cluster, job) candidate by similarity and claim pairs in that
	// order, so a weak early cluster can never steal a job from a later
	// cluster that matches it strictly better.
	type candidate struct {
		sim    float64
		ci, ji int
	}
	var cands []candidate
	for ci, c := range clusters {
		for ji := range r.jobs {
			if sim := sortedJaccard(c.Endpoints, r.jobs[ji].endpoints); sim >= r.cfg.MatchJaccard {
				cands = append(cands, candidate{sim, ci, ji})
			}
		}
	}
	sort.Slice(cands, func(x, y int) bool {
		a, b := cands[x], cands[y]
		if a.sim != b.sim {
			return a.sim > b.sim
		}
		if a.ci != b.ci {
			return a.ci < b.ci
		}
		// r.jobs is ascending by id (append order, order-preserving
		// expiry), so index order keeps the lowest id on full ties.
		return a.ji < b.ji
	})
	matched := make([]bool, len(clusters))
	claimed := make([]bool, len(r.jobs))
	for _, cd := range cands {
		if matched[cd.ci] || claimed[cd.ji] {
			continue
		}
		matched[cd.ci] = true
		claimed[cd.ji] = true
		j := &r.jobs[cd.ji]
		j.endpoints = append(j.endpoints[:0], clusters[cd.ci].Endpoints...)
		j.lastSeq = seq
		ids[cd.ci] = j.id
	}
	for ci, c := range clusters {
		if matched[ci] {
			continue
		}
		r.next++
		r.jobs = append(r.jobs, registryJob{
			id:        r.next,
			endpoints: append([]flow.Addr(nil), c.Endpoints...),
			firstSeen: at,
			lastSeq:   seq,
		})
		ids[ci] = r.next
	}
	// Expire jobs that have gone unmatched too long.
	kept := r.jobs[:0]
	for _, j := range r.jobs {
		if seq-j.lastSeq < r.cfg.ExpireAfter {
			kept = append(kept, j)
		}
	}
	r.jobs = kept
	return ids
}

// TrackedIDs returns the ids of all tracked jobs, ascending.
func (r *Registry) TrackedIDs() []JobID {
	out := make([]JobID, 0, len(r.jobs))
	for i := range r.jobs {
		out = append(out, r.jobs[i].id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedJaccard is the Jaccard similarity of two ascending-sorted,
// duplicate-free endpoint slices, computed with a linear merge (the
// recognizer sorts and dedups cluster endpoints, and the registry stores
// them that way).
func sortedJaccard(a, b []flow.Addr) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
