package jobrec

import (
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

func cl(endpoints ...flow.Addr) Cluster {
	return Cluster{Endpoints: endpoints}
}

func TestRegistryStableIdentity(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	at := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)

	ids := r.Assign(0, at, []Cluster{cl(1, 2, 3, 4), cl(10, 11, 12)})
	if !reflect.DeepEqual(ids, []JobID{1, 2}) {
		t.Fatalf("window 0 ids = %v, want [1 2]", ids)
	}
	// Same jobs, one with a fluctuating membership (3 of 4 endpoints seen).
	ids = r.Assign(1, at.Add(time.Minute), []Cluster{cl(1, 2, 4), cl(10, 11, 12)})
	if !reflect.DeepEqual(ids, []JobID{1, 2}) {
		t.Errorf("window 1 ids = %v, want [1 2] (fluctuating membership kept identity)", ids)
	}
	// A disjoint newcomer gets a fresh id; the firsts persist.
	ids = r.Assign(2, at.Add(2*time.Minute), []Cluster{cl(1, 2, 3, 4), cl(20, 21), cl(10, 11, 12)})
	if !reflect.DeepEqual(ids, []JobID{1, 3, 2}) {
		t.Errorf("window 2 ids = %v, want [1 3 2]", ids)
	}
	if got := r.FirstSeen(1); !got.Equal(at) {
		t.Errorf("FirstSeen(1) = %v, want %v", got, at)
	}
}

func TestRegistryExpiry(t *testing.T) {
	r := NewRegistry(RegistryConfig{ExpireAfter: 2})
	at := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	ids := r.Assign(0, at, []Cluster{cl(1, 2)})
	if ids[0] != 1 {
		t.Fatalf("ids = %v", ids)
	}
	// Two empty windows expire the job; its reappearance is a new job.
	r.Assign(1, at, nil)
	r.Assign(2, at, nil)
	if r.Len() != 0 {
		t.Fatalf("tracked jobs = %d, want 0 after expiry", r.Len())
	}
	ids = r.Assign(3, at, []Cluster{cl(1, 2)})
	if ids[0] != 2 {
		t.Errorf("reappeared job id = %v, want fresh id 2", ids[0])
	}
}

func TestRegistryBelowThresholdIsNewJob(t *testing.T) {
	r := NewRegistry(RegistryConfig{MatchJaccard: 0.5})
	at := time.Now()
	r.Assign(0, at, []Cluster{cl(1, 2, 3, 4)})
	// Jaccard 1/7 < 0.5: treated as a different job.
	ids := r.Assign(1, at, []Cluster{cl(4, 5, 6, 7)})
	if ids[0] != 2 {
		t.Errorf("dissimilar cluster id = %v, want 2", ids[0])
	}
}

func TestRegistryDeterministicTieBreak(t *testing.T) {
	// Two tracked jobs, one window cluster equally similar to both: the
	// lowest JobID wins, every time.
	for i := 0; i < 5; i++ {
		r := NewRegistry(RegistryConfig{MatchJaccard: 0.4})
		at := time.Now()
		r.Assign(0, at, []Cluster{cl(1, 2), cl(3, 4)})
		ids := r.Assign(1, at, []Cluster{cl(1, 3)}) // Jaccard 1/3 with both... below threshold
		if ids[0] != 3 {
			t.Fatalf("ids = %v, want [3] (similarity below threshold)", ids)
		}
		r2 := NewRegistry(RegistryConfig{MatchJaccard: 0.3})
		r2.Assign(0, at, []Cluster{cl(1, 2), cl(3, 4)})
		ids = r2.Assign(1, at, []Cluster{cl(1, 3)})
		if ids[0] != 1 {
			t.Fatalf("tie ids = %v, want [1] (lowest id wins)", ids)
		}
	}
}

// TestRegistryNoMatchSteal is the regression for greedy in-order matching:
// an early cluster with a weak above-threshold similarity must not claim a
// tracked job that a later cluster matches strictly better — that swapped
// the two identities permanently.
func TestRegistryNoMatchSteal(t *testing.T) {
	r := NewRegistry(RegistryConfig{MatchJaccard: 0.15})
	at := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	ids := r.Assign(0, at, []Cluster{cl(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)})
	if !reflect.DeepEqual(ids, []JobID{1}) {
		t.Fatalf("window 0 ids = %v, want [1]", ids)
	}
	// Window 1 splits: cluster 0 keeps 3 of job 1's endpoints plus
	// newcomers (Jaccard 3/17 ≈ 0.18, above threshold); cluster 1 holds
	// the other 7 (Jaccard 7/10 = 0.7). Greedy in-order matching let
	// cluster 0 steal job 1.
	ids = r.Assign(1, at.Add(time.Minute), []Cluster{
		cl(1, 2, 3, 30, 31, 32, 33, 34, 35, 36),
		cl(4, 5, 6, 7, 8, 9, 10),
	})
	if !reflect.DeepEqual(ids, []JobID{2, 1}) {
		t.Errorf("window 1 ids = %v, want [2 1] (best match keeps the identity)", ids)
	}
}

// TestRegistryUnambiguousMatchesUnchanged: when every cluster's only
// above-threshold match is its own tracked job, best-first matching
// assigns exactly what the old per-cluster greedy pass did, across
// several windows of fluctuating membership.
func TestRegistryUnambiguousMatchesUnchanged(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	at := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	windows := [][]Cluster{
		{cl(1, 2, 3, 4), cl(10, 11, 12, 13), cl(20, 21, 22)},
		{cl(1, 2, 3), cl(10, 12, 13), cl(20, 21, 22)},    // partial observations
		{cl(1, 2, 3, 4), cl(20, 22), cl(10, 11, 12, 13)}, // reordered clusters
		{cl(5, 6, 7), cl(1, 2, 4), cl(10, 11, 12, 13)},   // newcomer, one job absent
	}
	want := [][]JobID{
		{1, 2, 3},
		{1, 2, 3},
		{1, 3, 2},
		{4, 1, 2},
	}
	for w, clusters := range windows {
		ids := r.Assign(w, at.Add(time.Duration(w)*time.Minute), clusters)
		if !reflect.DeepEqual(ids, want[w]) {
			t.Fatalf("window %d ids = %v, want %v", w, ids, want[w])
		}
	}
}

func TestSortedJaccard(t *testing.T) {
	cases := []struct {
		a, b []flow.Addr
		want float64
	}{
		{nil, nil, 1},
		{[]flow.Addr{1}, nil, 0},
		{[]flow.Addr{1, 2, 3}, []flow.Addr{1, 2, 3}, 1},
		{[]flow.Addr{1, 2, 3, 4}, []flow.Addr{3, 4, 5, 6}, 1.0 / 3},
	}
	for _, c := range cases {
		if got := sortedJaccard(c.a, c.b); got != c.want {
			t.Errorf("sortedJaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
