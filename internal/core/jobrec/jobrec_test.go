package jobrec

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

var epoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New(topology.Spec{Nodes: 8, NodesPerLeaf: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func rec(id uint64, src, dst flow.Addr) flow.Record {
	return flow.Record{ID: id, Start: epoch, Src: src, Dst: dst, Bytes: 1000}
}

// railFlows builds flows connecting `nodes` on the given GPU rail (one
// cross-machine cluster in the black-box view).
func railFlows(t *testing.T, topo *topology.Topology, nodes []topology.NodeID, rail int, idBase uint64) []flow.Record {
	t.Helper()
	var out []flow.Record
	for i := 0; i+1 < len(nodes); i++ {
		src := topo.AddrOf(nodes[i], rail)
		dst := topo.AddrOf(nodes[i+1], rail)
		out = append(out, rec(idBase+uint64(i), src, dst))
	}
	return out
}

func TestCrossMachineClusters(t *testing.T) {
	topo := testTopo(t)
	// Job A occupies nodes 0-3 on rails 0 and 1 (two disjoint rail
	// clusters); job B occupies nodes 4-7 on rail 0.
	var records []flow.Record
	records = append(records, railFlows(t, topo, []topology.NodeID{0, 1, 2, 3}, 0, 100)...)
	records = append(records, railFlows(t, topo, []topology.NodeID{0, 1, 2, 3}, 1, 200)...)
	records = append(records, railFlows(t, topo, []topology.NodeID{4, 5, 6, 7}, 0, 300)...)

	clusters := CrossMachineClusters(records)
	if len(clusters) != 3 {
		t.Fatalf("cross-machine clusters = %d, want 3 (two rails of A, one of B)", len(clusters))
	}
	for _, c := range clusters {
		if len(c) != 4 {
			t.Errorf("cluster size = %d, want 4", len(c))
		}
	}
}

func TestRecognizeMergesRails(t *testing.T) {
	topo := testTopo(t)
	var records []flow.Record
	records = append(records, railFlows(t, topo, []topology.NodeID{0, 1, 2, 3}, 0, 100)...)
	records = append(records, railFlows(t, topo, []topology.NodeID{0, 1, 2, 3}, 1, 200)...)
	records = append(records, railFlows(t, topo, []topology.NodeID{4, 5, 6, 7}, 0, 300)...)

	jobs := Recognize(records, topo, Config{})
	if len(jobs) != 2 {
		t.Fatalf("job-level clusters = %d, want 2", len(jobs))
	}
	// Job A: 8 endpoints (4 nodes × 2 rails), servers {0,1,2,3}.
	a := jobs[0]
	if len(a.Endpoints) != 8 {
		t.Errorf("job A endpoints = %d, want 8", len(a.Endpoints))
	}
	if len(a.Servers) != 4 || a.Servers[0] != 0 || a.Servers[3] != 3 {
		t.Errorf("job A servers = %v, want [0 1 2 3]", a.Servers)
	}
	b := jobs[1]
	if len(b.Endpoints) != 4 || len(b.Servers) != 4 {
		t.Errorf("job B endpoints/servers = %d/%d, want 4/4", len(b.Endpoints), len(b.Servers))
	}
}

func TestRecognizeDoesNotMergeDifferentServerSets(t *testing.T) {
	topo := testTopo(t)
	// Two clusters sharing 3 of 4 servers: Jaccard 3/5 < 1 — distinct jobs.
	var records []flow.Record
	records = append(records, railFlows(t, topo, []topology.NodeID{0, 1, 2, 3}, 0, 100)...)
	records = append(records, railFlows(t, topo, []topology.NodeID{1, 2, 3, 4}, 1, 200)...)
	jobs := Recognize(records, topo, Config{})
	if len(jobs) != 2 {
		t.Fatalf("overlapping-but-different clusters merged: got %d jobs, want 2", len(jobs))
	}
	// With a lenient threshold they do merge.
	jobs = Recognize(records, topo, Config{MergeJaccard: 0.5})
	if len(jobs) != 1 {
		t.Fatalf("lenient threshold should merge: got %d jobs, want 1", len(jobs))
	}
}

func TestRecognizeIgnoresSelfFlows(t *testing.T) {
	topo := testTopo(t)
	a := topo.AddrOf(0, 0)
	records := []flow.Record{rec(1, a, a)}
	if got := CrossMachineClusters(records); len(got) != 0 {
		t.Errorf("self-flow produced clusters: %v", got)
	}
}

func TestSplitRecords(t *testing.T) {
	topo := testTopo(t)
	var records []flow.Record
	records = append(records, railFlows(t, topo, []topology.NodeID{0, 1, 2, 3}, 0, 100)...)
	records = append(records, railFlows(t, topo, []topology.NodeID{4, 5, 6, 7}, 0, 300)...)
	jobs := Recognize(records, topo, Config{})
	split := SplitRecords(records, jobs)
	if len(split) != len(jobs) {
		t.Fatalf("split buckets = %d, want %d", len(split), len(jobs))
	}
	total := 0
	for i, bucket := range split {
		total += len(bucket)
		for _, r := range bucket {
			found := false
			for _, e := range jobs[i].Endpoints {
				if r.Src == e {
					found = true
				}
			}
			if !found {
				t.Fatalf("record %d assigned to wrong job", r.ID)
			}
		}
	}
	if total != len(records) {
		t.Errorf("split lost records: %d of %d", total, len(records))
	}
}

func TestSplitRecordsDropsUnknown(t *testing.T) {
	topo := testTopo(t)
	records := railFlows(t, topo, []topology.NodeID{0, 1}, 0, 1)
	jobs := Recognize(records, topo, Config{})
	stray := rec(99, topo.AddrOf(6, 6), topo.AddrOf(7, 6))
	split := SplitRecords(append(records, stray), jobs)
	for _, bucket := range split {
		for _, r := range bucket {
			if r.ID == 99 {
				t.Fatal("stray record assigned to a job")
			}
		}
	}
}

func TestRecognizeDeterministicOrder(t *testing.T) {
	topo := testTopo(t)
	var records []flow.Record
	records = append(records, railFlows(t, topo, []topology.NodeID{4, 5, 6, 7}, 0, 300)...)
	records = append(records, railFlows(t, topo, []topology.NodeID{0, 1, 2, 3}, 0, 100)...)
	j1 := Recognize(records, topo, Config{})
	j2 := Recognize(records, topo, Config{})
	if len(j1) != len(j2) {
		t.Fatal("non-deterministic cluster count")
	}
	for i := range j1 {
		if j1[i].Endpoints[0] != j2[i].Endpoints[0] {
			t.Fatal("non-deterministic cluster order")
		}
	}
	if j1[0].Endpoints[0] > j1[1].Endpoints[0] {
		t.Error("clusters not sorted by first endpoint")
	}
}

func BenchmarkRecognize10kFlows(b *testing.B) {
	topo, err := topology.New(topology.Spec{Nodes: 360})
	if err != nil {
		b.Fatal(err)
	}
	var records []flow.Record
	id := uint64(0)
	for job := 0; job < 19; job++ {
		base := topology.NodeID(job * 18)
		for rail := 0; rail < 8; rail++ {
			for i := 0; i < 17; i++ {
				for rep := 0; rep < 4; rep++ {
					id++
					records = append(records, flow.Record{
						ID: id, Start: epoch, Bytes: 1 << 20,
						Src: topo.AddrOf(base+topology.NodeID(i), rail),
						Dst: topo.AddrOf(base+topology.NodeID(i+1), rail),
					})
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Recognize(records, topo, Config{})
	}
}
