package jobrec

import (
	"reflect"
	"testing"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

// multiJobTrace builds two rail-split jobs plus an unclustered stray
// endpoint talking to itself (dropped by recognition).
func multiJobTrace(t *testing.T, topo *topology.Topology) []flow.Record {
	t.Helper()
	var records []flow.Record
	records = append(records, railFlows(t, topo, []topology.NodeID{0, 1, 2, 3}, 0, 100)...)
	records = append(records, railFlows(t, topo, []topology.NodeID{0, 1, 2, 3}, 1, 200)...)
	records = append(records, railFlows(t, topo, []topology.NodeID{4, 5, 6, 7}, 0, 300)...)
	self := topo.AddrOf(4, 1)
	records = append(records, flow.Record{ID: 999, Start: epoch, Src: self, Dst: self, Bytes: 1})
	return records
}

func TestRecognizeFrameMatchesRecognize(t *testing.T) {
	topo := testTopo(t)
	records := multiJobTrace(t, topo)
	f := flow.NewFrame(records)

	if got, want := CrossMachineClustersFrame(f), CrossMachineClusters(records); !reflect.DeepEqual(got, want) {
		t.Errorf("CrossMachineClustersFrame = %v, want %v", got, want)
	}
	got := RecognizeFrame(f, topo, Config{})
	want := Recognize(records, topo, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RecognizeFrame = %+v, want %+v", got, want)
	}
}

func TestSelectJobsMatchesSplitRecords(t *testing.T) {
	topo := testTopo(t)
	records := multiJobTrace(t, topo)
	sorted := make([]flow.Record, len(records))
	copy(sorted, records)
	flow.SortByStart(sorted)

	f := flow.NewFrame(records)
	clusters := RecognizeFrame(f, topo, Config{})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	views := SelectJobs(f, clusters)
	perJob := SplitRecords(sorted, clusters)
	for i := range clusters {
		got := views[i].Records()
		want := perJob[i]
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("job %d: view records diverge from SplitRecords (%d vs %d records)",
				i, len(got), len(want))
		}
	}
	// The self-flow of an unclustered endpoint lands in no view.
	total := 0
	for _, v := range views {
		total += v.Len()
	}
	if total != len(records)-1 {
		t.Errorf("views cover %d rows, want %d (stray self-flow dropped)", total, len(records)-1)
	}
}
