package timeline

import (
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

func TestReconstructViewMatchesReconstruct(t *testing.T) {
	records, types := jobTrace(8, time.Second, 100*time.Millisecond)
	want := Reconstruct(records, types, Config{})
	got := ReconstructView(flow.NewFrame(records).All(), types, Config{})
	if len(got) != len(want) {
		t.Fatalf("ranks = %d, want %d", len(got), len(want))
	}
	for rank, wtl := range want {
		gtl, ok := got[rank]
		if !ok {
			t.Fatalf("rank %v missing from view reconstruction", rank)
		}
		if !reflect.DeepEqual(wtl, gtl) {
			t.Errorf("rank %v: view timeline diverges:\n got %+v\nwant %+v", rank, gtl, wtl)
		}
	}
}

func TestReconstructViewSparseDP(t *testing.T) {
	// Below MinDPFlows no steps are reconstructed, matching the record path.
	records, types := jobTrace(1, time.Second, 100*time.Millisecond)
	want := Reconstruct(records, types, Config{MinDPFlows: 100})
	got := ReconstructView(flow.NewFrame(records).All(), types, Config{MinDPFlows: 100})
	if !reflect.DeepEqual(want, got) {
		t.Error("sparse-DP view reconstruction diverges from record path")
	}
}
