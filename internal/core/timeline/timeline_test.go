package timeline

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/flow"
)

var epoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// jobTrace builds a synthetic 2-rank job: rank 1 exchanges DP bursts with
// rank 2 every stepGap, plus PP flows from rank 0 to rank 1 between bursts.
func jobTrace(nSteps int, stepGap, dpLen time.Duration) ([]flow.Record, map[flow.Pair]parallel.Type) {
	var records []flow.Record
	id := uint64(0)
	for s := 0; s < nSteps; s++ {
		stepStart := epoch.Add(time.Duration(s) * stepGap)
		// PP flows during the "compute" phase.
		for i := 0; i < 4; i++ {
			id++
			records = append(records, flow.Record{
				ID:       id,
				Start:    stepStart.Add(time.Duration(i+1) * stepGap / 8),
				Duration: 5 * time.Millisecond,
				Src:      0,
				Dst:      1,
				Bytes:    1 << 20,
			})
		}
		// DP burst at the end of the step.
		dpStart := stepStart.Add(stepGap - dpLen)
		for i := 0; i < 6; i++ {
			id++
			size := int64(1 << 22)
			if i%3 == 2 {
				size = 1 << 20
			}
			records = append(records, flow.Record{
				ID:       id,
				Start:    dpStart.Add(time.Duration(i) * dpLen / 8),
				Duration: dpLen / 8,
				Src:      1,
				Dst:      2,
				Bytes:    size,
			})
		}
	}
	flow.SortByStart(records)
	types := map[flow.Pair]parallel.Type{
		flow.MakePair(0, 1): parallel.TypePP,
		flow.MakePair(1, 2): parallel.TypeDP,
	}
	return records, types
}

func TestReconstructStepCount(t *testing.T) {
	records, types := jobTrace(8, time.Second, 100*time.Millisecond)
	tls := Reconstruct(records, types, Config{})
	tl := tls[1]
	if tl == nil {
		t.Fatal("no timeline for rank 1")
	}
	if len(tl.Steps) != 8 {
		t.Fatalf("steps = %d, want 8", len(tl.Steps))
	}
	for i, s := range tl.Steps {
		if s.Index != i {
			t.Errorf("step %d has index %d", i, s.Index)
		}
		if !s.DPEnd.After(s.DPStart) {
			t.Errorf("step %d DP segment empty", i)
		}
		if s.End != s.DPEnd {
			t.Errorf("step %d End %v != DPEnd %v", i, s.End, s.DPEnd)
		}
		if i > 0 && s.Start != tl.Steps[i-1].End {
			t.Errorf("step %d not contiguous", i)
		}
	}
}

func TestReconstructStepEndAccuracy(t *testing.T) {
	const stepGap = time.Second
	const dpLen = 100 * time.Millisecond
	records, types := jobTrace(6, stepGap, dpLen)
	tls := Reconstruct(records, types, Config{})
	tl := tls[1]
	// True step ends: stepStart + stepGap - dpLen + 5/8·dpLen + dpLen/8
	// (last DP flow start + its duration).
	for i, s := range tl.Steps {
		wantEnd := epoch.Add(time.Duration(i)*stepGap + stepGap - dpLen + 5*dpLen/8 + dpLen/8)
		if diff := s.End.Sub(wantEnd); diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("step %d end off by %v", i, diff)
		}
	}
}

func TestReconstructEventKinds(t *testing.T) {
	records, types := jobTrace(4, time.Second, 100*time.Millisecond)
	tls := Reconstruct(records, types, Config{})
	tl := tls[1]
	var pp, dp int
	for _, e := range tl.Events {
		switch e.Kind {
		case EventPP:
			pp++
			if e.Peer != 0 {
				t.Errorf("PP event peer = %v, want 0", e.Peer)
			}
		case EventDP:
			dp++
			if e.Peer != 2 {
				t.Errorf("DP event peer = %v, want 2", e.Peer)
			}
		}
	}
	if pp != 16 || dp != 24 {
		t.Errorf("events PP/DP = %d/%d, want 16/24", pp, dp)
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Start.Before(tl.Events[i-1].Start) {
			t.Fatal("events not chronological")
		}
	}
}

func TestRankWithoutDPHasNoSteps(t *testing.T) {
	records, types := jobTrace(4, time.Second, 100*time.Millisecond)
	tls := Reconstruct(records, types, Config{})
	tl := tls[0] // rank 0 only has PP traffic
	if tl == nil {
		t.Fatal("rank 0 should still get a timeline")
	}
	if len(tl.Steps) != 0 {
		t.Errorf("rank without DP flows got %d steps", len(tl.Steps))
	}
	if len(tl.Events) == 0 {
		t.Error("rank 0 should have PP events")
	}
}

func TestMinDPFlowsRespected(t *testing.T) {
	records := []flow.Record{
		{ID: 1, Start: epoch, Src: 1, Dst: 2, Bytes: 100},
		{ID: 2, Start: epoch.Add(time.Second), Src: 1, Dst: 2, Bytes: 200},
	}
	types := map[flow.Pair]parallel.Type{flow.MakePair(1, 2): parallel.TypeDP}
	tls := Reconstruct(records, types, Config{MinDPFlows: 4})
	if len(tls[1].Steps) != 0 {
		t.Error("below MinDPFlows should not reconstruct steps")
	}
}

func TestStepEndsAndAllStepEnds(t *testing.T) {
	records, types := jobTrace(5, time.Second, 100*time.Millisecond)
	tls := Reconstruct(records, types, Config{})
	ends := StepEnds(tls[1], epoch)
	if len(ends) != 5 {
		t.Fatalf("StepEnds = %d entries, want 5", len(ends))
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatal("step ends not increasing")
		}
	}
	all := AllStepEnds(tls, epoch)
	if len(all[1]) != 5 {
		t.Errorf("AllStepEnds missing rank 1")
	}
	if _, ok := all[0]; ok {
		t.Error("AllStepEnds should omit ranks without steps")
	}
}

func TestMeanStepDuration(t *testing.T) {
	records, types := jobTrace(6, time.Second, 100*time.Millisecond)
	tls := Reconstruct(records, types, Config{})
	mean := MeanStepDuration(tls[1])
	if mean < 900*time.Millisecond || mean > 1100*time.Millisecond {
		t.Errorf("mean step duration = %v, want ≈ 1s", mean)
	}
	if MeanStepDuration(&Timeline{}) != 0 {
		t.Error("empty timeline should have 0 mean duration")
	}
}

func TestEventKindString(t *testing.T) {
	if EventPP.String() != "PP" || EventDP.String() != "DP" {
		t.Error("EventKind.String labels wrong")
	}
}

func BenchmarkReconstruct(b *testing.B) {
	records, types := jobTrace(30, time.Second, 100*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reconstruct(records, types, Config{})
	}
}
