// Package timeline reconstructs per-GPU training timelines from classified
// network flows (§IV-C of the LLMPrism paper).
//
// Every training step concludes with a burst of data-parallel collective
// traffic, whatever compute/communication overlap optimizations the tenant
// uses. The reconstructor therefore divides each rank's DP flows into steps
// with the same BOCD splitter used for classification; the end of a step's
// DP segment marks the end of the step. PP and DP flows are then laid out
// chronologically per rank, with the gaps between communication events
// approximating compute.
package timeline

import (
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/bocd"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/flow"
)

// EventKind classifies a timeline event.
type EventKind uint8

// Event kinds.
const (
	EventPP EventKind = iota + 1
	EventDP
)

func (k EventKind) String() string {
	if k == EventPP {
		return "PP"
	}
	return "DP"
}

// Event is one communication event on a rank's timeline.
type Event struct {
	Kind  EventKind
	Start time.Time
	End   time.Time
	Peer  flow.Addr
	Bytes int64
}

// Duration returns the event length.
func (e Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// Step is one reconstructed training step on a rank.
type Step struct {
	// Index numbers steps within the analysis window, starting at 0.
	// (The absolute step counter of the job is not observable.)
	Index int
	// Start is the step's begin time: the end of the previous step, or
	// the first observed event for the window's first step.
	Start time.Time
	// End is the reconstructed step end: the conclusion of the step's DP
	// traffic.
	End time.Time
	// DPStart and DPEnd delimit the step's DP collective segment.
	DPStart, DPEnd time.Time
	// Events counts the rank's communication events inside the step.
	Events int
}

// Duration returns the step length.
func (s Step) Duration() time.Duration { return s.End.Sub(s.Start) }

// DPDuration returns the length of the DP segment.
func (s Step) DPDuration() time.Duration { return s.DPEnd.Sub(s.DPStart) }

// Timeline is the reconstructed schedule of one GPU rank.
type Timeline struct {
	Rank flow.Addr
	// Events lists every communication event chronologically.
	Events []Event
	// Steps lists reconstructed steps. The window's leading partial step
	// (before the first complete DP boundary) is included as step 0 when
	// it contains DP traffic.
	Steps []Step
}

// Config tunes reconstruction.
type Config struct {
	// Split configures the BOCD step division over DP flows.
	Split bocd.SplitConfig
	// MinDPFlows is the minimum number of DP flows a rank needs for
	// step reconstruction. Default 4.
	MinDPFlows int
}

func (c Config) withDefaults() Config {
	if c.MinDPFlows <= 0 {
		c.MinDPFlows = 4
	}
	return c
}

// Reconstruct builds timelines for every rank of one job. records must be
// the job's flows sorted by start time; types is the pair classification
// from package parallel.
func Reconstruct(records []flow.Record, types map[flow.Pair]parallel.Type, cfg Config) map[flow.Addr]*Timeline {
	cfg = cfg.withDefaults()
	perRank := flow.ByEndpoint(records)
	out := make(map[flow.Addr]*Timeline, len(perRank))
	for rank, recs := range perRank {
		out[rank] = reconstructRank(rank, recs, types, cfg)
	}
	return out
}

// ReconstructView is Reconstruct over one job's frame view. Instead of
// bucketing copied records per endpoint, it streams the view's rows (in
// start order) once, appending each row's event to its source and
// destination ranks' exactly-sized event buffers. Results are bit-identical
// to Reconstruct over the equivalent record slice.
func ReconstructView(v flow.View, types map[flow.Pair]parallel.Type, cfg Config) map[flow.Addr]*Timeline {
	cfg = cfg.withDefaults()
	f := v.Frame()
	rows := v.Rows()

	// Exact per-rank event counts, so every events slice allocates once.
	counts := make(map[flow.Addr]int)
	for _, r := range rows {
		src, dst := f.Src(int(r)), f.Dst(int(r))
		counts[src]++
		if dst != src {
			counts[dst]++
		}
	}
	type rankBuild struct {
		tl       *Timeline
		dpStarts []time.Time
		dpEnds   []time.Time
	}
	builds := make(map[flow.Addr]*rankBuild, len(counts))
	for rank, n := range counts {
		builds[rank] = &rankBuild{tl: &Timeline{Rank: rank, Events: make([]Event, 0, n)}}
	}

	add := func(b *rankBuild, rank flow.Addr, p flow.Pair, kind EventKind, start, end time.Time, bytes int64) {
		if kind == EventDP {
			b.dpStarts = append(b.dpStarts, start)
			b.dpEnds = append(b.dpEnds, end)
		}
		b.tl.Events = append(b.tl.Events, Event{
			Kind:  kind,
			Start: start,
			End:   end,
			Peer:  p.Other(rank),
			Bytes: bytes,
		})
	}
	for _, ri := range rows {
		r := int(ri)
		p := f.PairOf(r)
		kind := EventPP
		if types[p] == parallel.TypeDP {
			kind = EventDP
		}
		start, end, bytes := f.Start(r), f.End(r), f.Bytes(r)
		src, dst := f.Src(r), f.Dst(r)
		add(builds[src], src, p, kind, start, end, bytes)
		if dst != src {
			add(builds[dst], dst, p, kind, start, end, bytes)
		}
	}

	out := make(map[flow.Addr]*Timeline, len(builds))
	for rank, b := range builds {
		reconstructSteps(b.tl, b.dpStarts, b.dpEnds, cfg)
		out[rank] = b.tl
	}
	return out
}

func reconstructRank(rank flow.Addr, recs []flow.Record, types map[flow.Pair]parallel.Type, cfg Config) *Timeline {
	tl := &Timeline{Rank: rank}
	var dpStarts, dpEnds []time.Time
	for _, r := range recs {
		kind := EventPP
		if types[r.Pair()] == parallel.TypeDP {
			kind = EventDP
			dpStarts = append(dpStarts, r.Start)
			dpEnds = append(dpEnds, r.End())
		}
		tl.Events = append(tl.Events, Event{
			Kind:  kind,
			Start: r.Start,
			End:   r.End(),
			Peer:  r.Pair().Other(rank),
			Bytes: r.Bytes,
		})
	}
	reconstructSteps(tl, dpStarts, dpEnds, cfg)
	return tl
}

// reconstructSteps is the shared step-division core: events are the rank's
// communication events in flow order, dpStarts/dpEnds the start and end
// times of its DP flows in that same order. It sorts the events
// chronologically and appends the reconstructed steps to tl.
func reconstructSteps(tl *Timeline, dpStarts, dpEnds []time.Time, cfg Config) {
	sort.Slice(tl.Events, func(i, j int) bool { return tl.Events[i].Start.Before(tl.Events[j].Start) })

	if len(dpStarts) < cfg.MinDPFlows {
		return
	}
	segments := bocd.SplitTimes(dpStarts, cfg.Split)

	var prevEnd time.Time
	if len(tl.Events) > 0 {
		prevEnd = tl.Events[0].Start
	}
	for i, seg := range segments {
		dpStart := dpStarts[seg.Lo]
		dpEnd := dpEnds[seg.Lo]
		for k := seg.Lo; k < seg.Hi; k++ {
			if e := dpEnds[k]; e.After(dpEnd) {
				dpEnd = e
			}
		}
		step := Step{
			Index:   i,
			Start:   prevEnd,
			End:     dpEnd,
			DPStart: dpStart,
			DPEnd:   dpEnd,
		}
		step.Events = countEventsIn(tl.Events, step.Start, step.End)
		tl.Steps = append(tl.Steps, step)
		prevEnd = dpEnd
	}
}

func countEventsIn(events []Event, from, to time.Time) int {
	n := 0
	for _, e := range events {
		if !e.Start.Before(from) && e.Start.Before(to) {
			n++
		}
	}
	return n
}

// StepEnds returns the reconstructed step end offsets of one timeline
// relative to epoch, for scoring against ground truth.
func StepEnds(tl *Timeline, epoch time.Time) []time.Duration {
	out := make([]time.Duration, len(tl.Steps))
	for i, s := range tl.Steps {
		out[i] = s.End.Sub(epoch)
	}
	return out
}

// AllStepEnds maps every rank to its reconstructed step end offsets.
func AllStepEnds(timelines map[flow.Addr]*Timeline, epoch time.Time) map[flow.Addr][]time.Duration {
	out := make(map[flow.Addr][]time.Duration, len(timelines))
	for rank, tl := range timelines {
		if len(tl.Steps) > 0 {
			out[rank] = StepEnds(tl, epoch)
		}
	}
	return out
}

// MeanStepDuration returns the mean of complete step durations across the
// timeline, skipping the window-truncated first step.
func MeanStepDuration(tl *Timeline) time.Duration {
	if len(tl.Steps) <= 1 {
		return 0
	}
	var sum time.Duration
	for _, s := range tl.Steps[1:] {
		sum += s.Duration()
	}
	return sum / time.Duration(len(tl.Steps)-1)
}
