package parallel

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

var epoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// stepFlows appends, for each of nSteps bursts spaced stepGap apart, one
// flow per entry of sizes (spaced 2ms apart within the burst).
func stepFlows(records []flow.Record, a, b flow.Addr, nSteps int, stepGap time.Duration, sizes []int64) []flow.Record {
	id := uint64(len(records)) * 1000
	for s := 0; s < nSteps; s++ {
		base := epoch.Add(time.Duration(s) * stepGap)
		for i, size := range sizes {
			id++
			records = append(records, flow.Record{
				ID:       id,
				Start:    base.Add(time.Duration(i) * 2 * time.Millisecond),
				Duration: time.Millisecond,
				Src:      a,
				Dst:      b,
				Bytes:    size,
			})
		}
	}
	return records
}

func sorted(records []flow.Record) []flow.Record {
	flow.SortByStart(records)
	return records
}

func TestClassifyPPConstantSizes(t *testing.T) {
	records := stepFlows(nil, 1, 2, 10, time.Second, []int64{1 << 20, 1 << 20, 1 << 20})
	cls := Identify(sorted(records), Config{})
	if got := cls.Types[flow.MakePair(1, 2)]; got != TypePP {
		t.Errorf("constant-size pair classified %v, want PP", got)
	}
}

func TestClassifyDPMultipleSizes(t *testing.T) {
	records := stepFlows(nil, 1, 2, 10, time.Second, []int64{1 << 20, 1 << 20, 1 << 18})
	cls := Identify(sorted(records), Config{})
	if got := cls.Types[flow.MakePair(1, 2)]; got != TypeDP {
		t.Errorf("multi-size pair classified %v, want DP", got)
	}
	if steps := cls.StepsPerPair[flow.MakePair(1, 2)]; steps < 8 || steps > 12 {
		t.Errorf("steps per pair = %d, want ≈ 10", steps)
	}
}

func TestRefinementRepairsNoisyDPPair(t *testing.T) {
	// Ring 1-2-3-1: pairs (1,2) and (2,3) look DP; (1,3) lost its small
	// chunks to collection noise and looks PP. Transitivity must repair it.
	var records []flow.Record
	records = stepFlows(records, 1, 2, 8, time.Second, []int64{1 << 20, 1 << 18})
	records = stepFlows(records, 2, 3, 8, time.Second, []int64{1 << 20, 1 << 18})
	records = stepFlows(records, 1, 3, 8, time.Second, []int64{1 << 20, 1 << 20})

	noRefine := Identify(sorted(records), Config{DisableRefinement: true})
	if got := noRefine.Types[flow.MakePair(1, 3)]; got != TypePP {
		t.Fatalf("w/o refinement pair (1,3) = %v, want PP (the injected error)", got)
	}
	refined := Identify(sorted(records), Config{})
	if got := refined.Types[flow.MakePair(1, 3)]; got != TypeDP {
		t.Errorf("refined pair (1,3) = %v, want DP", got)
	}
}

func TestRefinementDoesNotCorruptPPAcrossGroups(t *testing.T) {
	// Two DP groups {1,2} and {3,4} joined by a true PP pair (2,3):
	// 2 and 3 are in different components, so (2,3) must stay PP.
	var records []flow.Record
	records = stepFlows(records, 1, 2, 8, time.Second, []int64{1 << 20, 1 << 18})
	records = stepFlows(records, 3, 4, 8, time.Second, []int64{1 << 20, 1 << 18})
	records = stepFlows(records, 2, 3, 8, time.Second, []int64{1 << 16})
	cls := Identify(sorted(records), Config{})
	if got := cls.Types[flow.MakePair(2, 3)]; got != TypePP {
		t.Errorf("true PP pair refined to %v", got)
	}
	if len(cls.DPGroups) != 2 {
		t.Errorf("DP groups = %d, want 2", len(cls.DPGroups))
	}
}

func TestDPGroupsSortedAndComplete(t *testing.T) {
	var records []flow.Record
	records = stepFlows(records, 5, 6, 6, time.Second, []int64{100, 200})
	records = stepFlows(records, 6, 7, 6, time.Second, []int64{100, 200})
	records = stepFlows(records, 1, 2, 6, time.Second, []int64{100, 200})
	cls := Identify(sorted(records), Config{})
	if len(cls.DPGroups) != 2 {
		t.Fatalf("DP groups = %d, want 2", len(cls.DPGroups))
	}
	if cls.DPGroups[0][0] != 1 {
		t.Errorf("groups not sorted: first group starts at %v", cls.DPGroups[0][0])
	}
	if len(cls.DPGroups[1]) != 3 {
		t.Errorf("second group size = %d, want 3", len(cls.DPGroups[1]))
	}
}

func TestMinFlowsSkipsSparsePairs(t *testing.T) {
	records := []flow.Record{
		{ID: 1, Start: epoch, Src: 1, Dst: 2, Bytes: 100},
	}
	cls := Identify(records, Config{})
	if _, ok := cls.Types[flow.MakePair(1, 2)]; ok {
		t.Error("single-flow pair should not be classified")
	}
}

func TestDPRecordsFilter(t *testing.T) {
	var records []flow.Record
	records = stepFlows(records, 1, 2, 4, time.Second, []int64{100, 200}) // DP
	records = stepFlows(records, 2, 3, 4, time.Second, []int64{300})      // PP
	records = sorted(records)
	cls := Identify(records, Config{})
	dp := DPRecords(records, cls.Types)
	if len(dp) != 8 {
		t.Fatalf("DP records = %d, want 8", len(dp))
	}
	for _, r := range dp {
		if r.Pair() != flow.MakePair(1, 2) {
			t.Fatalf("non-DP record in filter: %+v", r)
		}
	}
}

func TestTypeString(t *testing.T) {
	if TypePP.String() != "PP" || TypeDP.String() != "DP" || Type(9).String() == "" {
		t.Error("Type.String labels wrong")
	}
}

func TestIdentifyEmptyInput(t *testing.T) {
	cls := Identify(nil, Config{})
	if len(cls.Types) != 0 || len(cls.DPGroups) != 0 {
		t.Error("empty input should produce empty classification")
	}
}

func BenchmarkIdentify(b *testing.B) {
	var records []flow.Record
	for pair := 0; pair < 32; pair++ {
		a := flow.Addr(pair * 2)
		c := flow.Addr(pair*2 + 1)
		sizes := []int64{1 << 20, 1 << 18}
		if pair%2 == 0 {
			sizes = []int64{1 << 20}
		}
		records = stepFlows(records, a, c, 10, time.Second, sizes)
	}
	records = sorted(records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Identify(records, Config{})
	}
}
