// Package parallel implements communication-type identification
// (Algorithm 2 of the LLMPrism paper): within one recognized job, every
// communicating endpoint pair is classified as pipeline-parallel (PP) or
// data-parallel (DP).
//
// The signal is the per-step distinct-flow-size count: PP pairs carry one
// fixed-size activation/gradient message shape, while DP collectives split
// into bucketed chunk streams with several distinct sizes. Steps are
// delimited with Bayesian online change-point detection over inter-flow
// gaps, the per-step counts are reduced with a mode to resist noise, and a
// final transitive-closure pass over the DP graph repairs DP pairs that
// noise made look like PP (if u–v and v–w are DP, u and w are in one DP
// group, so any observed u–w traffic is DP).
package parallel

import (
	"fmt"
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/bocd"
	"github.com/llmprism/llmprism/internal/dsu"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/stats"
)

// Type is the inferred communication type of a pair.
type Type uint8

// Communication types.
const (
	TypePP Type = iota + 1
	TypeDP
)

func (t Type) String() string {
	switch t {
	case TypePP:
		return "PP"
	case TypeDP:
		return "DP"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Config tunes identification.
type Config struct {
	// Split configures step division over each pair's flow sequence.
	Split bocd.SplitConfig
	// DisableRefinement skips the DP transitive-closure pass — the
	// "LLMPrism w/o refinement" baseline of Table I.
	DisableRefinement bool
	// MinFlows is the minimum number of flows a pair needs to be
	// classified at all. Default 2.
	MinFlows int
}

func (c Config) withDefaults() Config {
	if c.MinFlows <= 0 {
		c.MinFlows = 2
	}
	return c
}

// Classification is the result of identification over one job.
type Classification struct {
	// Types maps every classified pair to its inferred type.
	Types map[flow.Pair]Type
	// DPGroups are the connected components of the DP graph after
	// refinement — each is one data-parallel group (per pipeline stage
	// and NIC rail), sorted for determinism.
	DPGroups [][]flow.Addr
	// StepsPerPair reports how many steps the splitter found per pair
	// (diagnostic; short windows yield few steps and noisier modes).
	StepsPerPair map[flow.Pair]int
}

// Identify classifies every communicating pair within one job's records.
// Records must be sorted by start time.
func Identify(records []flow.Record, cfg Config) Classification {
	cfg = cfg.withDefaults()
	byPair := flow.GroupByPair(records)
	out := Classification{
		Types:        make(map[flow.Pair]Type, len(byPair)),
		StepsPerPair: make(map[flow.Pair]int, len(byPair)),
	}

	// Deterministic pair order.
	pairs := make([]flow.Pair, 0, len(byPair))
	for p := range byPair {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})

	for _, p := range pairs {
		recs := byPair[p]
		if len(recs) < cfg.MinFlows {
			continue
		}
		t, steps := classifyPair(recs, cfg)
		out.Types[p] = t
		out.StepsPerPair[p] = steps
	}

	if !cfg.DisableRefinement {
		refine(&out)
	}
	out.DPGroups = dpComponents(out.Types)
	return out
}

// IdentifyView classifies every communicating pair of one job's frame view.
// It walks the view's pair spans — each already contiguous and sorted by
// start — so no per-pair grouping maps or record copies are built; the
// start-time and size columns stream through two reused scratch buffers.
// The result is bit-identical to Identify over the equivalent record slice.
func IdentifyView(v flow.View, cfg Config) Classification {
	cfg = cfg.withDefaults()
	f := v.Frame()
	out := Classification{
		Types:        make(map[flow.Pair]Type, v.NumPairs()),
		StepsPerPair: make(map[flow.Pair]int, v.NumPairs()),
	}
	var times []time.Time
	var sizes []int64
	for i, n := 0, v.NumPairs(); i < n; i++ {
		lo, hi := v.PairSpan(i)
		if hi-lo < cfg.MinFlows {
			continue
		}
		times = times[:0]
		sizes = sizes[:0]
		for r := lo; r < hi; r++ {
			times = append(times, f.Start(r))
			sizes = append(sizes, f.Bytes(r))
		}
		t, steps := classifySpan(times, sizes, cfg)
		p := v.PairAt(i)
		out.Types[p] = t
		out.StepsPerPair[p] = steps
	}

	if !cfg.DisableRefinement {
		refine(&out)
	}
	out.DPGroups = dpComponents(out.Types)
	return out
}

// classifyPair divides one pair's flows into steps and applies the
// distinct-size mode rule.
func classifyPair(recs []flow.Record, cfg Config) (Type, int) {
	times := make([]time.Time, len(recs))
	sizes := make([]int64, len(recs))
	for i, r := range recs {
		times[i] = r.Start
		sizes[i] = r.Bytes
	}
	return classifySpan(times, sizes, cfg)
}

// classifySpan is the shared classification core over one pair's start
// times and flow sizes (parallel slices, sorted by start).
func classifySpan(times []time.Time, sizes []int64, cfg Config) (Type, int) {
	segments := bocd.SplitTimes(times, cfg.Split)
	counts := make([]int, 0, len(segments))
	for _, seg := range segments {
		counts = append(counts, stats.DistinctCount(sizes[seg.Lo:seg.Hi]))
	}
	mode, _ := stats.Mode(counts)
	if mode == 1 {
		return TypePP, len(segments)
	}
	return TypeDP, len(segments)
}

// refine applies the DP transitivity rule: every pair whose endpoints land
// in the same connected component of the DP graph must itself be DP.
func refine(c *Classification) {
	comp := dsu.NewSparse[flow.Addr]()
	for p, t := range c.Types {
		if t == TypeDP {
			comp.Union(p.A, p.B)
		}
	}
	for p, t := range c.Types {
		if t == TypePP && comp.Same(p.A, p.B) {
			c.Types[p] = TypeDP
		}
	}
}

// dpComponents extracts the connected components of the (final) DP graph.
func dpComponents(types map[flow.Pair]Type) [][]flow.Addr {
	comp := dsu.NewSparse[flow.Addr]()
	for p, t := range types {
		if t == TypeDP {
			comp.Union(p.A, p.B)
		}
	}
	groups := comp.Groups()
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i]) == 0 || len(groups[j]) == 0 {
			return len(groups[j]) == 0
		}
		return groups[i][0] < groups[j][0]
	})
	return groups
}

// DPRecords filters a job's records to those between DP-classified pairs.
// Records must be sorted; order is preserved.
func DPRecords(records []flow.Record, types map[flow.Pair]Type) []flow.Record {
	out := make([]flow.Record, 0, len(records))
	for _, r := range records {
		if types[r.Pair()] == TypeDP {
			out = append(out, r)
		}
	}
	return out
}
