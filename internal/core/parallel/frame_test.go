package parallel

import (
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// mixedJob builds one job with a DP ring 1-2-3-1, a PP pair (3,4), and a
// too-sparse pair (4,5) that stays unclassified.
func mixedJob() []flow.Record {
	var records []flow.Record
	records = stepFlows(records, 1, 2, 8, time.Second, []int64{1 << 20, 1 << 18})
	records = stepFlows(records, 2, 3, 8, time.Second, []int64{1 << 20, 1 << 18})
	records = stepFlows(records, 1, 3, 8, time.Second, []int64{1 << 20, 1 << 20})
	records = stepFlows(records, 3, 4, 8, time.Second, []int64{1 << 19})
	records = append(records, flow.Record{ID: 999999, Start: epoch, Src: 4, Dst: 5, Bytes: 7})
	return records
}

func TestIdentifyViewMatchesIdentify(t *testing.T) {
	records := mixedJob()
	for _, cfg := range []Config{{}, {DisableRefinement: true}, {MinFlows: 4}} {
		want := Identify(sorted(records), cfg)
		got := IdentifyView(flow.NewFrame(records).All(), cfg)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("cfg %+v: IdentifyView diverges from Identify:\n got %+v\nwant %+v", cfg, got, want)
		}
	}
}

func TestIdentifyViewEmpty(t *testing.T) {
	got := IdentifyView(flow.View{}, Config{})
	if len(got.Types) != 0 || len(got.DPGroups) != 0 {
		t.Errorf("empty view produced %+v", got)
	}
}
