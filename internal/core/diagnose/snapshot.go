package diagnose

import "sort"

// TrackerSnapshot is the incident tracker's serializable continuity
// state: open incidents with the bookkeeping (opening observation, global
// observation counter, baseline origin) that the chronic classification
// depends on. Configuration is not part of it — a snapshot restores into
// a tracker constructed with the session's config.
type TrackerSnapshot struct {
	// Seq is the number of Observe calls made.
	Seq int
	// FirstAlertSeq is the observation index of the first window that
	// carried any alert (-1 if none yet) — the baseline origin.
	FirstAlertSeq int
	// Open are the currently firing incidents, ordered by key.
	Open []OpenIncident
}

// OpenIncident pairs one open incident with the observation index at
// which it opened.
type OpenIncident struct {
	Incident  Incident
	OpenedSeq int
}

// Snapshot captures the tracker's state. The result shares nothing with
// the tracker and stays valid across further Observe calls.
func (t *IncidentTracker) Snapshot() TrackerSnapshot {
	s := TrackerSnapshot{Seq: t.seq, FirstAlertSeq: t.firstAlertSeq}
	s.Open = make([]OpenIncident, 0, len(t.open))
	for key, inc := range t.open {
		s.Open = append(s.Open, OpenIncident{Incident: *inc, OpenedSeq: t.openedSeq[key]})
	}
	sort.Slice(s.Open, func(i, j int) bool {
		return keyLess(s.Open[i].Incident.Key, s.Open[j].Incident.Key)
	})
	return s
}

// Restore replaces the tracker's open incidents and counters with the
// snapshot's, keeping the tracker's own configuration.
func (t *IncidentTracker) Restore(s TrackerSnapshot) {
	t.seq = s.Seq
	t.firstAlertSeq = s.FirstAlertSeq
	t.open = make(map[IncidentKey]*Incident, len(s.Open))
	t.openedSeq = make(map[IncidentKey]int, len(s.Open))
	for _, o := range s.Open {
		inc := o.Incident
		t.open[inc.Key] = &inc
		t.openedSeq[inc.Key] = o.OpenedSeq
	}
}

func keyLess(a, b IncidentKey) bool {
	if a.Job != b.Job {
		return a.Job < b.Job
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.Switch < b.Switch
}
