package diagnose

import (
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// IncidentKey identifies one logical anomaly across analysis windows: the
// per-window Step/Time/Value dimensions of an Alert are stripped, so a rank
// that is slow in every window maps to one key, not one per step and
// window. Job is the monitor's stable cross-window job id (0 for
// switch-level alerts, which belong to the fabric, not a job); of the
// location fields only the ones the Kind uses are set. Every location
// field is a physical identity: cross-group alerts key on the group's
// anchor endpoint (its smallest member), never on the window-relative
// group index, which renumbers whenever a window's DP graph changes.
type IncidentKey struct {
	Job  int
	Kind AlertKind
	// Rank is the slow rank for cross-step alerts and the group's anchor
	// endpoint for cross-group alerts.
	Rank   flow.Addr
	Switch flow.SwitchID
}

// KeyOf derives the continuity key of one alert raised against job.
func KeyOf(job int, a Alert) IncidentKey {
	k := IncidentKey{Job: job, Kind: a.Kind}
	switch a.Kind {
	case AlertCrossStep:
		k.Rank = a.Rank
	case AlertCrossGroup:
		k.Rank = a.GroupAnchor
	default:
		k.Switch = a.Switch
	}
	return k
}

// Incident is the cross-window continuity view of one anomaly: a rank that
// throttles for five consecutive windows is one incident observed five
// times, not five independent alerts.
type Incident struct {
	Key IncidentKey
	// FirstSeen is the time of the earliest alert that opened the incident.
	FirstSeen time.Time
	// LastSeen is the time of the most recent alert of the incident.
	LastSeen time.Time
	// Windows counts the consecutive windows the incident has fired in.
	Windows int
	// StillFiring is true while the incident fired in the current window;
	// an incident is reported once more with StillFiring false in the
	// first window where it stopped, then forgotten.
	StillFiring bool
	// Chronic marks a baseline property rather than an event: the anomaly
	// has fired in every window since monitoring effectively began (it
	// opened within IncidentConfig.BaselineWindows of the first alert the
	// tracker ever saw) and has persisted for at least
	// IncidentConfig.ChronicAfter windows. A structurally slow DP group —
	// the trailing-rail collective segment — is chronic; a fault injected
	// mid-run is not, because its incident opens after the baseline
	// learning period. Chronic is sticky for the incident's lifetime.
	Chronic bool
	// Detail carries the latest alert's human-readable explanation.
	Detail string
}

// JobAlert pairs one alert with the stable job id it was raised against
// (0 for switch-level alerts).
type JobAlert struct {
	Job   int
	Alert Alert
}

// IncidentConfig tunes the tracker's chronic-baseline classification.
type IncidentConfig struct {
	// ChronicAfter is how many consecutive windows a baseline-eligible
	// incident must fire before it is classified chronic. Default 3.
	ChronicAfter int
	// BaselineWindows is the length of the baseline learning period, in
	// windows, starting at the first observation that carried any alert:
	// only incidents opening inside it can become chronic (anything
	// appearing later is an event, however long it persists). Default 2.
	BaselineWindows int
}

func (c IncidentConfig) withDefaults() IncidentConfig {
	if c.ChronicAfter <= 0 {
		c.ChronicAfter = 3
	}
	if c.BaselineWindows <= 0 {
		c.BaselineWindows = 2
	}
	return c
}

// IncidentTracker folds each window's alerts into ongoing incidents. It is
// not safe for concurrent use; the monitor drives it from the in-order
// report emission path, so its output is deterministic regardless of how
// many windows are analyzed in parallel.
type IncidentTracker struct {
	cfg  IncidentConfig
	open map[IncidentKey]*Incident
	// openedSeq remembers the observation at which each open incident
	// opened, the input to the chronic-baseline test.
	openedSeq map[IncidentKey]int
	// seq counts Observe calls; firstAlertSeq is the seq of the first
	// observation that carried any alert (-1 until then) — the start of
	// the baseline learning period. Leading empty windows (a monitor
	// session anchoring mid-grid) therefore do not consume the baseline.
	seq           int
	firstAlertSeq int
}

// NewIncidentTracker returns an empty tracker. The zero cfg applies the
// documented chronic-classification defaults.
func NewIncidentTracker(cfg IncidentConfig) *IncidentTracker {
	return &IncidentTracker{
		cfg:           cfg.withDefaults(),
		open:          make(map[IncidentKey]*Incident),
		openedSeq:     make(map[IncidentKey]int),
		firstAlertSeq: -1,
	}
}

// Observe folds one window's alerts (in report order) into the tracker and
// returns the window's continuity view: every incident that fired this
// window (new or continuing, StillFiring true), followed by every incident
// that fired last window but not this one (StillFiring false, reported
// once as a resolution notice). Both groups are ordered by key, so the
// output is deterministic for deterministic input.
//
// Each call is one window. An open incident has, by construction, fired in
// every window since it opened (a missed window deletes it), so the
// chronic test reduces to: opened inside the baseline learning period and
// still alive after ChronicAfter windows.
func (t *IncidentTracker) Observe(alerts []JobAlert) []Incident {
	seq := t.seq
	t.seq++
	if t.firstAlertSeq < 0 && len(alerts) > 0 {
		t.firstAlertSeq = seq
	}
	fired := make(map[IncidentKey]bool, len(alerts))
	for _, ja := range alerts {
		key := KeyOf(ja.Job, ja.Alert)
		inc, ok := t.open[key]
		if !ok {
			inc = &Incident{Key: key, FirstSeen: ja.Alert.Time}
			t.open[key] = inc
			t.openedSeq[key] = seq
		}
		if !fired[key] {
			// First alert of this key in this window.
			fired[key] = true
			inc.Windows++
		}
		// LastSeen only moves forward: with overlapping windows, a later
		// window can re-fire a key from alerts that are older than ones a
		// previous window already reported.
		if inc.LastSeen.IsZero() || ja.Alert.Time.After(inc.LastSeen) {
			inc.LastSeen = ja.Alert.Time
			inc.Detail = ja.Alert.Detail
		}
		inc.StillFiring = true
	}

	out := make([]Incident, 0, len(t.open))
	var resolved []Incident
	for key, inc := range t.open {
		if fired[key] {
			if !inc.Chronic && inc.Windows >= t.cfg.ChronicAfter &&
				t.openedSeq[key] < t.firstAlertSeq+t.cfg.BaselineWindows {
				inc.Chronic = true
			}
			out = append(out, *inc)
			continue
		}
		inc.StillFiring = false
		resolved = append(resolved, *inc)
		delete(t.open, key)
		delete(t.openedSeq, key)
	}
	sortIncidents(out)
	sortIncidents(resolved)
	return append(out, resolved...)
}

// Open returns the number of incidents currently firing.
func (t *IncidentTracker) Open() int { return len(t.open) }

func sortIncidents(incs []Incident) {
	sort.Slice(incs, func(i, j int) bool {
		a, b := incs[i].Key, incs[j].Key
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Switch < b.Switch
	})
}
