package diagnose

import (
	"testing"
	"time"
)

func TestIncidentContinuity(t *testing.T) {
	tr := NewIncidentTracker(IncidentConfig{})
	t0 := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	alert := func(at time.Time, step int) JobAlert {
		return JobAlert{Job: 1, Alert: Alert{
			Kind: AlertCrossStep, Rank: 7, Step: step, Time: at, Detail: "slow",
		}}
	}

	// Window 0: two alerts of the same rank collapse into one incident.
	incs := tr.Observe([]JobAlert{alert(t0, 3), alert(t0.Add(time.Second), 4)})
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1 (same rank, one incident)", len(incs))
	}
	if incs[0].Windows != 1 || !incs[0].StillFiring || !incs[0].FirstSeen.Equal(t0) {
		t.Errorf("window 0 incident = %+v", incs[0])
	}
	if !incs[0].LastSeen.Equal(t0.Add(time.Second)) {
		t.Errorf("LastSeen = %v, want the later alert's time", incs[0].LastSeen)
	}

	// Window 1: still firing — same incident, second window.
	t1 := t0.Add(time.Minute)
	incs = tr.Observe([]JobAlert{alert(t1, 9)})
	if len(incs) != 1 || incs[0].Windows != 2 || !incs[0].FirstSeen.Equal(t0) {
		t.Fatalf("window 1 incident = %+v, want windows=2 firstSeen=t0", incs[0])
	}

	// Window 2: quiet — the incident resolves, reported once more.
	incs = tr.Observe(nil)
	if len(incs) != 1 || incs[0].StillFiring {
		t.Fatalf("window 2 = %+v, want one resolved incident", incs)
	}
	if tr.Open() != 0 {
		t.Errorf("open = %d, want 0", tr.Open())
	}

	// Window 3: reappearance opens a fresh incident.
	incs = tr.Observe([]JobAlert{alert(t0.Add(3*time.Minute), 2)})
	if len(incs) != 1 || incs[0].Windows != 1 {
		t.Errorf("window 3 = %+v, want a fresh incident", incs)
	}
}

// TestIncidentChronicClassification pins the baseline learner: an anomaly
// firing from (effectively) the first observed window onward is a property
// of the deployment — chronic — while one appearing after the baseline
// period is an event, however long it persists.
func TestIncidentChronicClassification(t *testing.T) {
	tr := NewIncidentTracker(IncidentConfig{ChronicAfter: 3, BaselineWindows: 2})
	t0 := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	chronicAlert := func(w int) JobAlert {
		return JobAlert{Job: 1, Alert: Alert{
			Kind: AlertCrossGroup, GroupAnchor: 7, Time: t0.Add(time.Duration(w) * time.Minute),
		}}
	}
	eventAlert := func(w int) JobAlert {
		return JobAlert{Job: 1, Alert: Alert{
			Kind: AlertCrossStep, Rank: 3, Time: t0.Add(time.Duration(w) * time.Minute),
		}}
	}

	// Leading empty windows must not consume the baseline period: the
	// monitor can anchor its grid well before the first alert.
	tr.Observe(nil)
	tr.Observe(nil)

	find := func(incs []Incident, kind AlertKind) *Incident {
		for i := range incs {
			if incs[i].Key.Kind == kind {
				return &incs[i]
			}
		}
		return nil
	}

	var incs []Incident
	for w := 0; w < 6; w++ {
		alerts := []JobAlert{chronicAlert(w)}
		if w >= 4 { // the event fault appears after the baseline period
			alerts = append(alerts, eventAlert(w))
		}
		incs = tr.Observe(alerts)
		cg := find(incs, AlertCrossGroup)
		if cg == nil {
			t.Fatalf("window %d: cross-group incident missing", w)
		}
		if wantChronic := w >= 2; cg.Chronic != wantChronic { // ChronicAfter=3 windows reached at w=2
			t.Errorf("window %d: baseline incident Chronic = %v, want %v", w, cg.Chronic, wantChronic)
		}
	}
	// The late-opening incident has fired 2 windows; run it past
	// ChronicAfter: it must stay non-chronic — it opened after the
	// baseline learning period.
	for w := 6; w < 10; w++ {
		incs = tr.Observe([]JobAlert{chronicAlert(w), eventAlert(w)})
		ev := find(incs, AlertCrossStep)
		if ev == nil {
			t.Fatalf("window %d: cross-step incident missing", w)
		}
		if ev.Chronic {
			t.Fatalf("window %d: post-baseline incident classified chronic: %+v", w, *ev)
		}
		if cg := find(incs, AlertCrossGroup); !cg.Chronic {
			t.Errorf("window %d: chronic flag must be sticky", w)
		}
	}
}

func TestIncidentKeysSeparateDimensions(t *testing.T) {
	tr := NewIncidentTracker(IncidentConfig{})
	at := time.Now()
	incs := tr.Observe([]JobAlert{
		{Job: 2, Alert: Alert{Kind: AlertCrossStep, Rank: 5, Time: at}},
		{Job: 1, Alert: Alert{Kind: AlertCrossGroup, Group: 3, GroupAnchor: 40, Time: at}},
		{Job: 1, Alert: Alert{Kind: AlertCrossStep, Rank: 5, Time: at}},
		{Alert: Alert{Kind: AlertSwitchBandwidth, Switch: 9, Time: at}},
	})
	if len(incs) != 4 {
		t.Fatalf("incidents = %d, want 4 distinct keys", len(incs))
	}
	// Deterministic order: by job, then kind, then location.
	want := []IncidentKey{
		{Job: 0, Kind: AlertSwitchBandwidth, Switch: 9},
		{Job: 1, Kind: AlertCrossStep, Rank: 5},
		{Job: 1, Kind: AlertCrossGroup, Rank: 40},
		{Job: 2, Kind: AlertCrossStep, Rank: 5},
	}
	for i, w := range want {
		if incs[i].Key != w {
			t.Errorf("incident %d key = %+v, want %+v", i, incs[i].Key, w)
		}
	}
}

func TestKeyOfStripsPerWindowFields(t *testing.T) {
	a := Alert{Kind: AlertCrossStep, Rank: 4, Step: 17, Time: time.Now(), Value: 2.5}
	b := Alert{Kind: AlertCrossStep, Rank: 4, Step: 99, Time: time.Now().Add(time.Hour), Value: 9.9}
	if KeyOf(3, a) != KeyOf(3, b) {
		t.Error("same rank, different steps should share a key")
	}
	if KeyOf(3, a) == KeyOf(4, a) {
		t.Error("different jobs must not share a key")
	}
}

func TestCrossGroupKeyIsPositionIndependent(t *testing.T) {
	// The same physical DP group renumbers from index 2 to index 1 when a
	// sibling group carries no traffic in the next window; the incident
	// must continue, keyed on the group's anchor endpoint.
	tr := NewIncidentTracker(IncidentConfig{})
	at := time.Now()
	a := Alert{Kind: AlertCrossGroup, Group: 2, GroupAnchor: 30, Time: at}
	b := Alert{Kind: AlertCrossGroup, Group: 1, GroupAnchor: 30, Time: at.Add(time.Minute)}
	if KeyOf(1, a) != KeyOf(1, b) {
		t.Fatal("same anchor, different positional index should share a key")
	}
	tr.Observe([]JobAlert{{Job: 1, Alert: a}})
	incs := tr.Observe([]JobAlert{{Job: 1, Alert: b}})
	if len(incs) != 1 || incs[0].Windows != 2 {
		t.Errorf("incident = %+v, want one incident spanning 2 windows", incs)
	}
	// A different physical group landing at the old index is a new key.
	c := Alert{Kind: AlertCrossGroup, Group: 2, GroupAnchor: 77, Time: at}
	if KeyOf(1, a) == KeyOf(1, c) {
		t.Error("different anchors must not share a key")
	}
}
