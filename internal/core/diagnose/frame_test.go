package diagnose

import (
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/flow"
)

// switchTrace builds DP and PP flows over two switch paths across several
// buckets, with sub-second jitter so per-cell float sums exercise order.
func switchTrace() ([]flow.Record, map[flow.Pair]parallel.Type) {
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	var records []flow.Record
	id := uint64(0)
	for i := 0; i < 240; i++ {
		id++
		src, dst := flow.Addr(1+i%3), flow.Addr(4+i%2)
		path := []flow.SwitchID{1, 5, 2}
		if i%2 == 1 {
			path = []flow.SwitchID{1, 6, 2}
		}
		records = append(records, flow.Record{
			ID:       id,
			Start:    base.Add(time.Duration(i) * 700 * time.Millisecond),
			Duration: time.Duration(100+i%7*31) * time.Millisecond,
			Src:      src,
			Dst:      dst,
			Bytes:    int64(1<<20 + i*1000),
			Switches: path,
		})
	}
	flow.SortByStart(records)
	types := make(map[flow.Pair]parallel.Type)
	for _, r := range records {
		p := r.Pair()
		// Alternate DP and PP pairs deterministically.
		if (uint32(p.A)+uint32(p.B))%2 == 0 {
			types[p] = parallel.TypeDP
		} else {
			types[p] = parallel.TypePP
		}
	}
	return records, types
}

// TestAddViewMatchesAdd pins the float summation order contract: the view
// path must fold exactly the same records into exactly the same cells in
// exactly the same order as the record path, so the materialized series —
// including MeanGbps floats — are deep-equal.
func TestAddViewMatchesAdd(t *testing.T) {
	records, types := switchTrace()
	cfg := Config{Bucket: 2 * time.Second}

	ref := NewSeriesAccum(cfg)
	ref.Add(records, types)

	got := NewSeriesAccum(cfg)
	got.AddView(flow.NewFrame(records).All(), types)

	if !reflect.DeepEqual(ref.Series(), got.Series()) {
		t.Error("AddView series diverges from Add series")
	}
}

func TestAddViewEmpty(t *testing.T) {
	a := NewSeriesAccum(Config{})
	a.AddView(flow.View{}, nil)
	if len(a.Series()) != 0 {
		t.Error("empty view produced series cells")
	}
}
