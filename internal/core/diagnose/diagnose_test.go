package diagnose

import (
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
)

var epoch = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// makeTimeline builds a synthetic timeline with the given step durations
// (step 0 is a truncated stub, as Reconstruct produces).
func makeTimeline(rank flow.Addr, durs []time.Duration, dpDurs []time.Duration) *timeline.Timeline {
	tl := &timeline.Timeline{Rank: rank}
	cursor := epoch
	for i, d := range durs {
		dp := 50 * time.Millisecond
		if dpDurs != nil {
			dp = dpDurs[i]
		}
		end := cursor.Add(d)
		tl.Steps = append(tl.Steps, timeline.Step{
			Index:   i,
			Start:   cursor,
			End:     end,
			DPStart: end.Add(-dp),
			DPEnd:   end,
		})
		cursor = end
	}
	return tl
}

func uniformDurs(n int, d time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

func TestCrossStepFlagsSlowStep(t *testing.T) {
	durs := uniformDurs(12, time.Second)
	durs[7] = 3 * time.Second
	tls := map[flow.Addr]*timeline.Timeline{
		1: makeTimeline(1, durs, nil),
	}
	alerts := CrossStep(tls, Config{})
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Kind != AlertCrossStep || a.Rank != 1 || a.Step != 7 {
		t.Errorf("alert = %+v, want cross-step rank 1 step 7", a)
	}
	if a.Value < 2.9 || a.Value > 3.1 {
		t.Errorf("alert value = %v, want ≈ 3", a.Value)
	}
}

func TestCrossStepQuietOnUniformSteps(t *testing.T) {
	tls := map[flow.Addr]*timeline.Timeline{
		1: makeTimeline(1, uniformDurs(12, time.Second), nil),
	}
	if alerts := CrossStep(tls, Config{}); len(alerts) != 0 {
		t.Errorf("uniform steps raised %d alerts", len(alerts))
	}
}

func TestCrossStepRespectsMinSamples(t *testing.T) {
	durs := uniformDurs(4, time.Second)
	durs[2] = 5 * time.Second
	tls := map[flow.Addr]*timeline.Timeline{1: makeTimeline(1, durs, nil)}
	if alerts := CrossStep(tls, Config{MinSamples: 10}); len(alerts) != 0 {
		t.Error("too few samples should suppress alerts")
	}
}

func TestCrossGroupFlagsSlowGroup(t *testing.T) {
	// 8 groups of one rank each; group 5's DP segments are 4x longer.
	tls := make(map[flow.Addr]*timeline.Timeline)
	var groups [][]flow.Addr
	for g := 0; g < 8; g++ {
		rank := flow.Addr(g + 1)
		dp := uniformDurs(10, 50*time.Millisecond)
		if g == 5 {
			dp = uniformDurs(10, 200*time.Millisecond)
		}
		tls[rank] = makeTimeline(rank, uniformDurs(10, time.Second), dp)
		groups = append(groups, []flow.Addr{rank})
	}
	alerts := CrossGroup(tls, groups, Config{})
	if len(alerts) == 0 {
		t.Fatal("slow group not flagged")
	}
	for _, a := range alerts {
		if a.Kind != AlertCrossGroup || a.Group != 5 {
			t.Errorf("unexpected alert %+v", a)
		}
	}
}

// TestCrossGroupRailStratification pins the per-rail split: with
// GroupRail set, each rail class is its own comparison population. A rail
// that is structurally slower than the rest — the trailing-rail collective
// segment — stops polluting the pooled baseline: it raises no alert when
// its class is too small to compare, and a genuinely slow group inside the
// majority class is still flagged against its own rail's baseline.
func TestCrossGroupRailStratification(t *testing.T) {
	// 16 groups, the shape of the real deployment: anchors 1..14 are rail
	// 0 (group 5 is the genuine fault at 4x), anchors 101,102 are rail 1
	// and structurally 16x slower — the trailing-rail collective segment.
	tls := make(map[flow.Addr]*timeline.Timeline)
	var groups [][]flow.Addr
	for g := 0; g < 14; g++ {
		rank := flow.Addr(g + 1)
		dp := uniformDurs(10, 50*time.Millisecond)
		if g == 5 {
			dp = uniformDurs(10, 200*time.Millisecond)
		}
		tls[rank] = makeTimeline(rank, uniformDurs(10, time.Second), dp)
		groups = append(groups, []flow.Addr{rank})
	}
	for _, rank := range []flow.Addr{101, 102} {
		tls[rank] = makeTimeline(rank, uniformDurs(10, time.Second), uniformDurs(10, 800*time.Millisecond))
		groups = append(groups, []flow.Addr{rank})
	}
	rail := func(a flow.Addr) int {
		if a >= 100 {
			return 1
		}
		return 0
	}

	// Pooled baseline (no GroupRail): the slow rail's two groups read as
	// outliers of the combined population — the chronic false alert.
	pooled := CrossGroup(tls, groups, Config{})
	var pooledSlowRail bool
	for _, a := range pooled {
		if rail(a.GroupAnchor) == 1 {
			pooledSlowRail = true
		}
	}
	if !pooledSlowRail {
		t.Fatal("fixture too weak: pooled population does not flag the structurally slow rail")
	}

	stratified := CrossGroup(tls, groups, Config{GroupRail: rail})
	var flagged []flow.Addr
	for _, a := range stratified {
		if a.Kind != AlertCrossGroup {
			t.Fatalf("unexpected alert kind %v", a.Kind)
		}
		flagged = append(flagged, a.GroupAnchor)
	}
	for _, anchor := range flagged {
		if rail(anchor) == 1 {
			t.Errorf("slow-rail group %v flagged despite stratification", anchor)
		}
		if anchor != 6 {
			t.Errorf("flagged anchor %v, want only the genuine fault (anchor 6)", anchor)
		}
	}
	if len(flagged) == 0 {
		t.Error("stratification silenced the genuine fault in the majority rail")
	}
}

func TestCrossGroupNeedsEnoughGroups(t *testing.T) {
	tls := map[flow.Addr]*timeline.Timeline{
		1: makeTimeline(1, uniformDurs(10, time.Second), nil),
		2: makeTimeline(2, uniformDurs(10, time.Second), uniformDurs(10, time.Second)),
	}
	groups := [][]flow.Addr{{1}, {2}}
	if alerts := CrossGroup(tls, groups, Config{}); len(alerts) != 0 {
		t.Error("two groups are below MinSamples; no alerts expected")
	}
}

func dpRecord(id uint64, at time.Duration, gbps float64, switches ...flow.SwitchID) flow.Record {
	dur := time.Second
	bytes := int64(gbps * 1e9 / 8 * dur.Seconds())
	return flow.Record{
		ID: id, Start: epoch.Add(at), Duration: dur,
		Src: 1, Dst: 2, Bytes: bytes, Switches: switches,
	}
}

func dpTypes() map[flow.Pair]parallel.Type {
	return map[flow.Pair]parallel.Type{flow.MakePair(1, 2): parallel.TypeDP}
}

func TestSwitchSeriesAggregation(t *testing.T) {
	records := []flow.Record{
		dpRecord(1, 0, 100, 3),
		dpRecord(2, 10*time.Second, 120, 3),
		dpRecord(3, 70*time.Second, 80, 3),
		dpRecord(4, 0, 100, 4),
	}
	series := SwitchSeries(records, dpTypes(), Config{Bucket: time.Minute})
	if len(series) != 2 {
		t.Fatalf("series switches = %d, want 2", len(series))
	}
	s3 := series[3]
	if len(s3) != 2 {
		t.Fatalf("switch 3 buckets = %d, want 2", len(s3))
	}
	if s3[0].Flows != 2 || s3[0].MeanGbps < 109 || s3[0].MeanGbps > 111 {
		t.Errorf("bucket 0 = %+v, want 2 flows at ≈ 110 Gb/s", s3[0])
	}
	if s3[1].Flows != 1 || s3[1].MeanGbps < 79 || s3[1].MeanGbps > 81 {
		t.Errorf("bucket 1 = %+v, want 1 flow at ≈ 80 Gb/s", s3[1])
	}
}

// TestSeriesAccumMergeMatchesSingleShot is the merge-safety contract the
// concurrent analyzer relies on: sharding records across accumulators and
// merging the partials must reproduce the single-shot aggregation exactly.
func TestSeriesAccumMergeMatchesSingleShot(t *testing.T) {
	records := []flow.Record{
		dpRecord(1, 0, 100, 3),
		dpRecord(2, 10*time.Second, 120, 3),
		dpRecord(3, 70*time.Second, 80, 3),
		dpRecord(4, 0, 100, 4),
		dpRecord(5, 30*time.Second, 60, 3, 4),
	}
	cfg := Config{Bucket: time.Minute}
	want := SwitchSeries(records, dpTypes(), cfg)

	merged := NewSeriesAccum(cfg)
	shardA := NewSeriesAccum(cfg)
	shardA.Add(records[:2], dpTypes())
	shardB := NewSeriesAccum(cfg)
	shardB.Add(records[2:], dpTypes())
	merged.Merge(shardA)
	merged.Merge(shardB)
	merged.Merge(nil) // nil shard is a no-op
	got := merged.Series()

	if !reflect.DeepEqual(want, got) {
		t.Errorf("merged series diverges from single-shot:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestSwitchSeriesIgnoresPP(t *testing.T) {
	records := []flow.Record{dpRecord(1, 0, 100, 3)}
	types := map[flow.Pair]parallel.Type{flow.MakePair(1, 2): parallel.TypePP}
	if got := SwitchSeries(records, types, Config{}); len(got) != 0 {
		t.Error("PP flows must not enter switch series")
	}
}

func TestSwitchDiagnoseFlagsDegradedSwitch(t *testing.T) {
	// 8 switches at ~150 Gb/s, switch 7 at 40 Gb/s.
	var records []flow.Record
	id := uint64(0)
	for sw := flow.SwitchID(0); sw < 8; sw++ {
		gbps := 150.0
		if sw == 7 {
			gbps = 40
		}
		for k := 0; k < 5; k++ {
			id++
			records = append(records, dpRecord(id, time.Duration(k)*time.Second, gbps+float64(k), sw))
		}
	}
	series := SwitchSeries(records, dpTypes(), Config{})
	alerts := SwitchDiagnose(series, Config{})
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Kind != AlertSwitchBandwidth || alerts[0].Switch != 7 {
		t.Errorf("alert = %+v, want switch-bandwidth on switch 7", alerts[0])
	}
}

func TestSwitchDiagnoseFlowCountLimit(t *testing.T) {
	var records []flow.Record
	for i := 0; i < 20; i++ {
		records = append(records, dpRecord(uint64(i+1), time.Duration(i)*time.Second, 100, 1))
	}
	series := SwitchSeries(records, dpTypes(), Config{})
	alerts := SwitchDiagnose(series, Config{MaxConcurrentDPFlows: 10})
	found := false
	for _, a := range alerts {
		if a.Kind == AlertSwitchFlowCount && a.Switch == 1 && a.Value == 20 {
			found = true
		}
	}
	if !found {
		t.Errorf("flow-count limit not flagged: %+v", alerts)
	}
}

func TestSwitchDiagnoseNeedsPopulation(t *testing.T) {
	records := []flow.Record{dpRecord(1, 0, 10, 1), dpRecord(2, 0, 150, 2)}
	series := SwitchSeries(records, dpTypes(), Config{})
	if alerts := SwitchDiagnose(series, Config{}); len(alerts) != 0 {
		t.Error("two switches are below MinSamples; no alerts expected")
	}
}

func TestKSigmaOutlierLOO(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 1, 1.05, 0.95, 5}
	if bad, _ := kSigmaOutlierLOO(xs, 6, 3, +1); !bad {
		t.Error("obvious upper outlier not detected")
	}
	if bad, _ := kSigmaOutlierLOO(xs, 0, 3, +1); bad {
		t.Error("normal point flagged")
	}
	low := []float64{100, 101, 99, 100, 102, 98, 20}
	if bad, _ := kSigmaOutlierLOO(low, 6, 3, -1); !bad {
		t.Error("obvious lower outlier not detected")
	}
	// Zero-variance population: any deviation is an outlier.
	flat := []float64{1, 1, 1, 1, 2}
	if bad, _ := kSigmaOutlierLOO(flat, 4, 3, +1); !bad {
		t.Error("outlier against zero-variance population not detected")
	}
}

// TestKSigmaFloorAppliesToTinyVariance is the regression for the
// inconsistent sigma floor: a near-constant population with tiny *nonzero*
// variance used to skip the 1%-of-mean floor (it applied only when
// sd < 1e-12) and alert on sub-percent noise.
func TestKSigmaFloorAppliesToTinyVariance(t *testing.T) {
	xs := []float64{100, 100 + 1e-6, 100 - 1e-6, 100, 100 + 2e-6, 100 - 2e-6, 99.9}
	if bad, _ := kSigmaOutlierLOO(xs, 6, 3, -1); bad {
		t.Error("0.1% deviation against a near-constant baseline flagged (sigma floor not applied)")
	}
	// A real degradation still clears the floored threshold.
	xs[6] = 90
	if bad, _ := kSigmaOutlierLOO(xs, 6, 3, -1); !bad {
		t.Error("10% degradation not flagged with floored sigma")
	}
}

// TestSwitchDiagnoseQuietOnNearConstantBandwidth drives the floor fix
// through SwitchDiagnose: eight switches within ±0.05% of each other must
// not raise bandwidth alerts.
func TestSwitchDiagnoseQuietOnNearConstantBandwidth(t *testing.T) {
	var records []flow.Record
	id := uint64(0)
	for sw := flow.SwitchID(0); sw < 8; sw++ {
		id++
		gbps := 150 + float64(sw)*0.01 // 150.00 .. 150.07
		records = append(records, dpRecord(id, time.Duration(sw)*time.Millisecond, gbps, sw))
	}
	series := SwitchSeries(records, dpTypes(), Config{})
	if alerts := SwitchDiagnose(series, Config{}); len(alerts) != 0 {
		t.Errorf("near-constant switch population raised %d alerts: %+v", len(alerts), alerts)
	}
}

// zeroDurRecord is a degenerate collector export: a flow observed with no
// measurable duration (single packet), carrying bytes but Gbps() == 0.
func zeroDurRecord(id uint64, at time.Duration, switches ...flow.SwitchID) flow.Record {
	return flow.Record{
		ID: id, Start: epoch.Add(at), Duration: 0,
		Src: 1, Dst: 2, Bytes: 1500, Switches: switches,
	}
}

// TestSwitchSeriesExcludesZeroDurationFromMean is the regression for the
// bandwidth-mean skew: zero-duration records count as flows but must not
// enter the bandwidth mean.
func TestSwitchSeriesExcludesZeroDurationFromMean(t *testing.T) {
	records := []flow.Record{
		dpRecord(1, 0, 100, 3),
		dpRecord(2, time.Second, 120, 3),
		zeroDurRecord(3, 2*time.Second, 3),
		zeroDurRecord(4, 3*time.Second, 3),
	}
	series := SwitchSeries(records, dpTypes(), Config{Bucket: time.Minute})
	pt := series[3][0]
	if pt.Flows != 4 || pt.BWFlows != 2 {
		t.Errorf("point = %+v, want 4 flows of which 2 measurable", pt)
	}
	if pt.MeanGbps < 109 || pt.MeanGbps > 111 {
		t.Errorf("MeanGbps = %v, want ≈ 110 (zero-duration rows excluded)", pt.MeanGbps)
	}

	// The frame path must apply the identical rule.
	accum := NewSeriesAccum(Config{Bucket: time.Minute})
	accum.AddView(flow.NewFrame(records).All(), dpTypes())
	if got := accum.Series()[3][0]; got != pt {
		t.Errorf("AddView point = %+v, want %+v (Add/AddView drifted)", got, pt)
	}
}

// TestSwitchDiagnoseHealthyWithZeroDurationRows: a healthy switch whose
// bucket contains some zero-duration rows used to see its mean dragged
// toward zero and get falsely flagged as degraded.
func TestSwitchDiagnoseHealthyWithZeroDurationRows(t *testing.T) {
	var records []flow.Record
	id := uint64(0)
	for sw := flow.SwitchID(0); sw < 8; sw++ {
		for k := 0; k < 4; k++ {
			id++
			records = append(records, dpRecord(id, time.Duration(k)*time.Second, 150+float64(k), sw))
		}
	}
	// Switch 7 additionally carries single-packet exports; its true
	// per-flow bandwidth matches its peers.
	for k := 0; k < 12; k++ {
		id++
		records = append(records, zeroDurRecord(id, time.Duration(k)*time.Second, 7))
	}
	series := SwitchSeries(records, dpTypes(), Config{})
	if alerts := SwitchDiagnose(series, Config{}); len(alerts) != 0 {
		t.Errorf("healthy switch with zero-duration rows flagged: %+v", alerts)
	}
}

// TestSwitchDiagnoseStratifiedByTier is the regression for the tier-blind
// peer comparison: a small low-bandwidth tier (leaves) pooled with a large
// high-bandwidth tier (spines) reads as degraded, even though every leaf
// is healthy. A tier classifier keeps the comparison within tiers.
func TestSwitchDiagnoseStratifiedByTier(t *testing.T) {
	// Switches 0-1 are leaves at ~40 Gb/s per flow; 10-19 are spines at
	// ~150 Gb/s. All healthy for their tier.
	var records []flow.Record
	id := uint64(0)
	add := func(sw flow.SwitchID, gbps float64) {
		id++
		records = append(records, dpRecord(id, time.Duration(id)*time.Millisecond, gbps, sw))
	}
	for sw := flow.SwitchID(0); sw < 2; sw++ {
		add(sw, 40+float64(sw))
	}
	for sw := flow.SwitchID(10); sw < 20; sw++ {
		add(sw, 150+float64(sw-10))
	}
	series := SwitchSeries(records, dpTypes(), Config{})

	pooled := SwitchDiagnose(series, Config{})
	leafFlagged := false
	for _, a := range pooled {
		if a.Switch < 2 {
			leafFlagged = true
		}
	}
	if !leafFlagged {
		t.Fatal("fixture too weak: pooled comparison no longer misflags the leaf tier")
	}

	tier := func(sw flow.SwitchID) int {
		if sw >= 10 {
			return 1
		}
		return 0
	}
	if alerts := SwitchDiagnose(series, Config{SwitchTier: tier}); len(alerts) != 0 {
		t.Errorf("stratified comparison still alerts: %+v", alerts)
	}

	// A genuinely degraded spine is still caught inside its tier.
	add(15, 30) // second flow on spine 15, dragging its mean to ~92
	series = SwitchSeries(records, dpTypes(), Config{})
	var degraded []Alert
	for _, a := range SwitchDiagnose(series, Config{SwitchTier: tier}) {
		if a.Kind == AlertSwitchBandwidth {
			degraded = append(degraded, a)
		}
	}
	if len(degraded) != 1 || degraded[0].Switch != 15 {
		t.Errorf("degraded spine alerts = %+v, want exactly switch 15", degraded)
	}
}

func TestAlertKindString(t *testing.T) {
	kinds := map[AlertKind]string{
		AlertCrossStep:       "cross-step",
		AlertCrossGroup:      "cross-group",
		AlertSwitchFlowCount: "switch-flow-count",
		AlertSwitchBandwidth: "switch-bandwidth",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if AlertKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func BenchmarkSwitchSeries(b *testing.B) {
	var records []flow.Record
	for i := 0; i < 50_000; i++ {
		records = append(records, dpRecord(uint64(i), time.Duration(i)*time.Millisecond, 100,
			flow.SwitchID(i%24), flow.SwitchID(24+i%8), flow.SwitchID((i+7)%24)))
	}
	types := dpTypes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SwitchSeries(records, types, Config{})
	}
}

// TestCrossStepMinPersist pins the persistence bar: one anomalous step is
// the signature of a lost boundary record (two steps merged into one
// doubled duration), so MinPersist 2 keeps it off the alert surface,
// while a rank that is slow twice in the window still fires — and every
// one of its anomalous steps is reported once it clears the bar.
func TestCrossStepMinPersist(t *testing.T) {
	spike := uniformDurs(12, time.Second)
	spike[7] = 3 * time.Second
	tls := map[flow.Addr]*timeline.Timeline{1: makeTimeline(1, spike, nil)}
	if alerts := CrossStep(tls, Config{MinPersist: 2}); len(alerts) != 0 {
		t.Errorf("isolated spike survived MinPersist 2: %+v", alerts)
	}

	double := uniformDurs(24, time.Second)
	double[10] = 3 * time.Second
	double[15] = 3 * time.Second
	tls = map[flow.Addr]*timeline.Timeline{1: makeTimeline(1, double, nil)}
	alerts := CrossStep(tls, Config{MinPersist: 2})
	if len(alerts) != 2 {
		t.Fatalf("persistent slowdown: alerts = %d, want 2", len(alerts))
	}
	for _, a := range alerts {
		if a.Step != 10 && a.Step != 15 {
			t.Errorf("unexpected step %d in %+v", a.Step, a)
		}
	}
}

// TestCrossGroupMedianIgnoresSingleMemberArtifact pins the median
// aggregation: with four ranks per group, one member's doubled DP
// duration (a merged step from record loss) drags the group mean far
// enough to fire, but leaves the median untouched — while a slowdown
// across the whole group still moves the median and fires.
func TestCrossGroupMedianIgnoresSingleMemberArtifact(t *testing.T) {
	build := func(slowRanks map[flow.Addr]bool) (map[flow.Addr]*timeline.Timeline, [][]flow.Addr) {
		tls := make(map[flow.Addr]*timeline.Timeline)
		var groups [][]flow.Addr
		for g := 0; g < 8; g++ {
			var members []flow.Addr
			for m := 0; m < 4; m++ {
				rank := flow.Addr(g*4 + m + 1)
				dp := uniformDurs(10, 50*time.Millisecond)
				if slowRanks[rank] {
					dp = uniformDurs(10, 400*time.Millisecond)
				}
				tls[rank] = makeTimeline(rank, uniformDurs(10, time.Second), dp)
				members = append(members, rank)
			}
			groups = append(groups, members)
		}
		return tls, groups
	}

	// One artifact member in group 5 (ranks 21-24): mean fires, median is
	// quiet.
	tls, groups := build(map[flow.Addr]bool{21: true})
	if alerts := CrossGroup(tls, groups, Config{}); len(alerts) == 0 {
		t.Error("mean aggregation should fire on a single-member artifact (the hazard GroupMedian exists for)")
	}
	if alerts := CrossGroup(tls, groups, Config{GroupMedian: true}); len(alerts) != 0 {
		t.Errorf("median aggregation fired on a single-member artifact: %+v", alerts)
	}

	// The whole of group 5 slow: median fires too.
	tls, groups = build(map[flow.Addr]bool{21: true, 22: true, 23: true, 24: true})
	alerts := CrossGroup(tls, groups, Config{GroupMedian: true})
	if len(alerts) == 0 {
		t.Fatal("median aggregation missed a genuinely slow group")
	}
	for _, a := range alerts {
		if a.Group != 5 {
			t.Errorf("unexpected alert %+v, want group 5", a)
		}
	}
}

// TestCrossGroupMinPersist pins the group-level persistence bar: a group
// anomalous in a single step stays quiet at MinPersist 2, a group slow in
// two steps keeps both its alerts.
func TestCrossGroupMinPersist(t *testing.T) {
	build := func(slowSteps ...int) (map[flow.Addr]*timeline.Timeline, [][]flow.Addr) {
		tls := make(map[flow.Addr]*timeline.Timeline)
		var groups [][]flow.Addr
		for g := 0; g < 8; g++ {
			rank := flow.Addr(g + 1)
			dp := uniformDurs(10, 50*time.Millisecond)
			if g == 5 {
				for _, s := range slowSteps {
					dp[s] = 400 * time.Millisecond
				}
			}
			tls[rank] = makeTimeline(rank, uniformDurs(10, time.Second), dp)
			groups = append(groups, []flow.Addr{rank})
		}
		return tls, groups
	}

	tls, groups := build(4)
	if alerts := CrossGroup(tls, groups, Config{MinPersist: 2}); len(alerts) != 0 {
		t.Errorf("single-step group anomaly survived MinPersist 2: %+v", alerts)
	}
	tls, groups = build(4, 7)
	alerts := CrossGroup(tls, groups, Config{MinPersist: 2})
	if len(alerts) != 2 {
		t.Fatalf("two-step group anomaly: alerts = %d, want 2", len(alerts))
	}
	for _, a := range alerts {
		if a.Group != 5 {
			t.Errorf("unexpected alert %+v, want group 5", a)
		}
	}
}
