// Package diagnose implements LLMPrism's multi-dimensional performance
// degradation detection (§IV-D of the paper) on top of reconstructed
// timelines:
//
//   - cross-step: a rank's step durations should be stable; longer steps
//     indicate compute or communication slowdown (stragglers, throttling).
//   - cross-group: DP groups of the same job should spend similar time in
//     their collectives each step; a slow group points at its network path.
//   - switch-level: per-switch concurrent DP flow counts (configuration-
//     induced congestion) and per-switch average DP flow bandwidth
//     (degraded or congested switches, the paper's Fig. 5).
//
// All detectors use the k-sigma rule with k = 3 by default. (The paper's σ
// formula is a typo — as printed it is identically zero — so the standard
// deviation is used.)
package diagnose

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/stats"
)

// AlertKind classifies an alert.
type AlertKind uint8

// Alert kinds.
const (
	AlertCrossStep AlertKind = iota + 1
	AlertCrossGroup
	AlertSwitchFlowCount
	AlertSwitchBandwidth
)

func (k AlertKind) String() string {
	switch k {
	case AlertCrossStep:
		return "cross-step"
	case AlertCrossGroup:
		return "cross-group"
	case AlertSwitchFlowCount:
		return "switch-flow-count"
	case AlertSwitchBandwidth:
		return "switch-bandwidth"
	default:
		return fmt.Sprintf("AlertKind(%d)", uint8(k))
	}
}

// Alert is one detected anomaly.
type Alert struct {
	Kind AlertKind
	// Rank is set for cross-step alerts.
	Rank flow.Addr
	// Group indexes the job's DP group list for cross-group alerts. The
	// index is window-relative (groups are recomputed per window), so
	// cross-window continuity keys on GroupAnchor instead.
	Group int
	// GroupAnchor is the smallest member endpoint of the DP group for
	// cross-group alerts — a stable cross-window identity for the
	// positional Group index.
	GroupAnchor flow.Addr
	// Step is the window-relative step index (cross-step, cross-group).
	Step int
	// Switch is set for switch-level alerts.
	Switch flow.SwitchID
	// Time locates the anomaly.
	Time time.Time
	// Value is the anomalous measurement; Baseline the healthy reference
	// (seconds for durations, Gb/s for bandwidth, count for flows).
	Value, Baseline float64
	// Detail is a human-readable explanation.
	Detail string
}

// Config tunes the detectors.
type Config struct {
	// K is the k-sigma multiplier. Default 3.
	K float64
	// MinSamples is the minimum population for a k-sigma decision.
	// Default 6.
	MinSamples int
	// MaxConcurrentDPFlows alerts switches carrying more distinct DP
	// flows than this within a bucket. Zero disables the check.
	MaxConcurrentDPFlows int
	// Bucket is the time-bucket width for switch-level series.
	// Default 1 minute.
	Bucket time.Duration
	// SwitchTier classifies switches into comparison tiers for the
	// switch-bandwidth detector: the k-sigma peer population is formed
	// within each tier separately, because leaf and spine switches carry
	// structurally different per-flow bandwidth (a leaf sees every local
	// flow once, a spine only the ECMP share that hashed onto it), and
	// pooling them makes the low tier look degraded against the high one.
	// Nil (the default) compares all switches in a single population.
	SwitchTier func(flow.SwitchID) int
	// GroupRail classifies DP-group anchor endpoints into comparison
	// rails for the cross-group detector, the group-side mirror of
	// SwitchTier: the per-step k-sigma peer population is formed within
	// each rail class separately, because rails carry structurally
	// different collective-segment durations (the trailing rail absorbs
	// the collective's serialization tail every step), and pooling them
	// makes the slow rail's groups fire in every window of a fault-free
	// trace. Rails below MinSamples groups are skipped, not pooled — a
	// two-group rail has no peer baseline to judge against. Nil (the
	// default) compares all of a job's groups in a single population.
	GroupRail func(flow.Addr) int
	// GroupMedian aggregates a DP group's per-step duration as the median
	// of its members' instead of the mean. Record loss corrupts individual
	// ranks' step segmentation — a lost boundary record merges two steps,
	// doubling one member's apparent duration — and the mean inherits the
	// artifact; the median discards it, while a genuinely slow group
	// (every member delayed by the same fault) moves median and mean
	// alike.
	GroupMedian bool
	// MinPersist is the minimum number of anomalous steps a rank
	// (cross-step) or group (cross-group) must show within one window
	// before its alerts surface. Collection noise corrupts isolated
	// steps; real faults hold for the whole window. Default 1 (every
	// anomaly alerts).
	MinPersist int
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 6
	}
	if c.Bucket <= 0 {
		c.Bucket = time.Minute
	}
	if c.MinPersist <= 0 {
		c.MinPersist = 1
	}
	return c
}

// kSigmaOutlierLOO reports whether xs[i] is a k-sigma outlier against the
// leave-one-out mean and deviation of the remaining samples, on the given
// side (+1 upper, -1 lower). Returns the baseline mean.
func kSigmaOutlierLOO(xs []float64, i int, k float64, side int) (bool, float64) {
	rest := make([]float64, 0, len(xs)-1)
	for j, x := range xs {
		if j != i {
			rest = append(rest, x)
		}
	}
	mean := stats.Mean(rest)
	sd := stats.StdDev(rest)
	// The 1%-of-mean floor applies always, not only to zero-variance
	// populations — the same discipline CrossStep uses. A near-constant
	// baseline with tiny nonzero variance (sampling noise) must not turn
	// sub-percent deviations into k-sigma outliers.
	if floor := 0.01 * math.Abs(mean); sd < floor {
		sd = floor
	}
	if sd < 1e-12 {
		sd = 1e-12
	}
	if side >= 0 {
		return xs[i] > mean+k*sd, mean
	}
	return xs[i] < mean-k*sd, mean
}

// CrossStep flags steps whose duration is a k-sigma upper outlier against
// the rank's trailing history, mirroring the online deployment: each step
// is judged against the steps seen before it, and anomalous steps are kept
// out of the baseline so a long-running incident keeps alerting instead of
// normalizing itself. The window-truncated first step is skipped.
func CrossStep(timelines map[flow.Addr]*timeline.Timeline, cfg Config) []Alert {
	cfg = cfg.withDefaults()
	var alerts []Alert
	ranks := sortedRanks(timelines)
	for _, rank := range ranks {
		tl := timelines[rank]
		if len(tl.Steps) < cfg.MinSamples+1 {
			continue
		}
		var w stats.Welford
		var rankAlerts []Alert
		for _, s := range tl.Steps[1:] {
			dur := s.Duration().Seconds()
			if w.N() >= cfg.MinSamples {
				mean := w.Mean()
				sd := w.StdDev()
				if floor := 0.01 * mean; sd < floor {
					sd = floor
				}
				if dur > mean+cfg.K*sd {
					rankAlerts = append(rankAlerts, Alert{
						Kind:     AlertCrossStep,
						Rank:     rank,
						Step:     s.Index,
						Time:     s.Start,
						Value:    dur,
						Baseline: mean,
						Detail: fmt.Sprintf("rank %v step %d took %.3fs vs baseline %.3fs",
							rank, s.Index, dur, mean),
					})
					continue // keep the anomaly out of the baseline
				}
			}
			w.Add(dur)
		}
		// A rank below the persistence bar shows isolated spikes — the
		// step-segmentation artifacts record loss leaves — not slowness.
		if len(rankAlerts) >= cfg.MinPersist {
			alerts = append(alerts, rankAlerts...)
		}
	}
	return alerts
}

// CrossGroup compares the DP segment durations of a job's DP groups step by
// step and flags groups that are k-sigma slower than their peers. With
// Config.GroupRail set, the per-step peer population is stratified by the
// rail class of each group's anchor endpoint, so structurally slow rails
// are never judged against fast ones.
func CrossGroup(timelines map[flow.Addr]*timeline.Timeline, groups [][]flow.Addr, cfg Config) []Alert {
	cfg = cfg.withDefaults()
	if len(groups) < cfg.MinSamples {
		return nil
	}
	railOf := func(anchor flow.Addr) int { return 0 }
	if cfg.GroupRail != nil {
		railOf = cfg.GroupRail
	}
	// groupDur[g][step] = mean DP duration of group g's members at step.
	maxSteps := 0
	for _, tl := range timelines {
		if n := len(tl.Steps); n > maxSteps {
			maxSteps = n
		}
	}
	// Per-step scratch, partitioned by rail class. Groups are visited in
	// index order, so each rail's population keeps a fixed order too.
	type railPop struct {
		durs  []float64
		times []time.Time
		idx   []int
	}
	var alerts []Alert
	for step := 1; step < maxSteps; step++ { // skip truncated step 0
		byRail := make(map[int]*railPop)
		rails := make([]int, 0, 2)
		for g, members := range groups {
			var durs []float64
			var at time.Time
			for _, rank := range members {
				tl, ok := timelines[rank]
				if !ok || step >= len(tl.Steps) {
					continue
				}
				durs = append(durs, tl.Steps[step].DPDuration().Seconds())
				at = tl.Steps[step].DPStart
			}
			if len(durs) == 0 {
				continue
			}
			var anchor flow.Addr
			if len(members) > 0 {
				anchor = members[0] // members are sorted ascending
			}
			rail := railOf(anchor)
			pop, ok := byRail[rail]
			if !ok {
				pop = &railPop{}
				byRail[rail] = pop
				rails = append(rails, rail)
			}
			pop.durs = append(pop.durs, groupDuration(durs, cfg.GroupMedian))
			pop.times = append(pop.times, at)
			pop.idx = append(pop.idx, g)
		}
		sort.Ints(rails)
		for _, rail := range rails {
			pop := byRail[rail]
			if len(pop.durs) < cfg.MinSamples {
				continue
			}
			for i := range pop.durs {
				if bad, base := kSigmaOutlierLOO(pop.durs, i, cfg.K, +1); bad {
					g := pop.idx[i]
					var anchor flow.Addr
					if members := groups[g]; len(members) > 0 {
						anchor = members[0]
					}
					alerts = append(alerts, Alert{
						Kind:        AlertCrossGroup,
						Group:       g,
						GroupAnchor: anchor,
						Step:        step,
						Time:        pop.times[i],
						Value:       pop.durs[i],
						Baseline:    base,
						Detail: fmt.Sprintf("DP group %d step %d collective took %.3fs vs peer baseline %.3fs",
							g, step, pop.durs[i], base),
					})
				}
			}
		}
	}
	if cfg.MinPersist > 1 {
		// Drop groups anomalous in fewer than MinPersist steps of the
		// window — isolated spikes, not sustained slowness. The surviving
		// alerts keep their original (step, rail, group) order.
		perGroup := make(map[int]int)
		for _, a := range alerts {
			perGroup[a.Group]++
		}
		kept := alerts[:0]
		for _, a := range alerts {
			if perGroup[a.Group] >= cfg.MinPersist {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			return nil
		}
		alerts = kept
	}
	return alerts
}

// groupDuration folds one group's member DP durations into the group's
// per-step duration: the mean, or with median set the member median (robust
// to loss-corrupted individual ranks). Ties split like sort order; the
// input is scratch and may be reordered.
func groupDuration(durs []float64, median bool) float64 {
	if !median {
		var sum float64
		for _, d := range durs {
			sum += d
		}
		return sum / float64(len(durs))
	}
	sort.Float64s(durs)
	n := len(durs)
	if n%2 == 1 {
		return durs[n/2]
	}
	return (durs[n/2-1] + durs[n/2]) / 2
}

// SwitchPoint is one time bucket of one switch's DP traffic.
type SwitchPoint struct {
	Bucket time.Time
	// Flows is the number of distinct DP flow records traversing the
	// switch in the bucket.
	Flows int
	// BWFlows is the number of those records with a measurable bandwidth
	// (positive duration and byte count). Collectors export degenerate
	// zero-duration/zero-byte records (single-packet or clipped flows)
	// whose Gbps reads 0; counting them into the mean would fabricate
	// bandwidth degradation on healthy switches.
	BWFlows int
	// MeanGbps is the average per-flow bandwidth over the BWFlows
	// measurable records (0 when there are none).
	MeanGbps float64
}

// SeriesAccum incrementally aggregates DP flows per switch into time-bucket
// cells. It lets each analysis shard (one job, one goroutine) build a
// private partial aggregation that is later merged into the platform-wide
// series: per-cell counters and bandwidth sums combine exactly, and merging
// shards in a fixed order fixes the floating-point summation order, so the
// merged series is identical for any worker count.
//
// A SeriesAccum is not safe for concurrent use; build one per goroutine and
// Merge them afterwards.
type SeriesAccum struct {
	cfg       Config
	perSwitch map[flow.SwitchID]map[time.Time]*seriesCell
}

type seriesCell struct {
	flows int
	bw    int
	sum   float64
}

// NewSeriesAccum returns an empty accumulator using cfg's bucket width.
func NewSeriesAccum(cfg Config) *SeriesAccum {
	return &SeriesAccum{
		cfg:       cfg.withDefaults(),
		perSwitch: make(map[flow.SwitchID]map[time.Time]*seriesCell),
	}
}

// Add folds the DP-classified records into the accumulator.
func (a *SeriesAccum) Add(records []flow.Record, types map[flow.Pair]parallel.Type) {
	for _, r := range records {
		if types[r.Pair()] != parallel.TypeDP {
			continue
		}
		bucket := r.Start.Truncate(a.cfg.Bucket)
		gbps := r.Gbps()
		bw := 0
		if r.Duration > 0 && r.Bytes > 0 {
			bw = 1
		}
		for _, sw := range r.Switches {
			a.cell(sw, bucket).add(1, bw, gbps)
		}
	}
}

// AddView folds the DP-classified rows of one job's frame view into the
// accumulator. The DP test runs once per pair (over the view's pair list)
// instead of once per record, and rows stream in (start, id) order — the
// same order Add visits a sorted record slice — so per-cell float sums are
// bit-identical to the record path's.
func (a *SeriesAccum) AddView(v flow.View, types map[flow.Pair]parallel.Type) {
	f := v.Frame()
	dp := make([]bool, v.NumPairs())
	for i := range dp {
		dp[i] = types[v.PairAt(i)] == parallel.TypeDP
	}
	rows := v.Rows()
	rowPairs := v.RowPairs()
	for k, ri := range rows {
		if !dp[rowPairs[k]] {
			continue
		}
		r := int(ri)
		bucket := f.Start(r).Truncate(a.cfg.Bucket)
		gbps := f.Gbps(r)
		bw := 0
		if f.Duration(r) > 0 && f.Bytes(r) > 0 {
			bw = 1
		}
		for _, sw := range f.Switches(r) {
			a.cell(sw, bucket).add(1, bw, gbps)
		}
	}
}

// Merge folds b's cells into a. b may be nil or empty; it is not modified.
// Each (switch, bucket) cell combines independently, so the map iteration
// order inside a single Merge cannot affect the result — only the order of
// Merge calls does, and callers keep that fixed (job index order).
func (a *SeriesAccum) Merge(b *SeriesAccum) {
	if b == nil {
		return
	}
	for sw, cells := range b.perSwitch {
		for bucket, c := range cells {
			a.cell(sw, bucket).add(c.flows, c.bw, c.sum)
		}
	}
}

func (a *SeriesAccum) cell(sw flow.SwitchID, bucket time.Time) *seriesCell {
	m := a.perSwitch[sw]
	if m == nil {
		m = make(map[time.Time]*seriesCell)
		a.perSwitch[sw] = m
	}
	c := m[bucket]
	if c == nil {
		c = &seriesCell{}
		m[bucket] = c
	}
	return c
}

func (c *seriesCell) add(flows, bw int, sum float64) {
	c.flows += flows
	c.bw += bw
	c.sum += sum
}

// Series materializes the accumulated per-switch series, each sorted by
// bucket.
func (a *SeriesAccum) Series() map[flow.SwitchID][]SwitchPoint {
	out := make(map[flow.SwitchID][]SwitchPoint, len(a.perSwitch))
	for sw, buckets := range a.perSwitch {
		points := make([]SwitchPoint, 0, len(buckets))
		for b, c := range buckets {
			mean := 0.0
			if c.bw > 0 {
				mean = c.sum / float64(c.bw)
			}
			points = append(points, SwitchPoint{
				Bucket:   b,
				Flows:    c.flows,
				BWFlows:  c.bw,
				MeanGbps: mean,
			})
		}
		sort.Slice(points, func(i, j int) bool { return points[i].Bucket.Before(points[j].Bucket) })
		out[sw] = points
	}
	return out
}

// SwitchSeries aggregates DP flows per switch into time-bucket series —
// the quantity plotted in the paper's Fig. 5.
func SwitchSeries(records []flow.Record, types map[flow.Pair]parallel.Type, cfg Config) map[flow.SwitchID][]SwitchPoint {
	a := NewSeriesAccum(cfg)
	a.Add(records, types)
	return a.Series()
}

// SwitchDiagnose inspects switch series bucket by bucket: bandwidth
// degradation (k-sigma lower outlier across switches) and concurrent DP
// flow limits. The bandwidth comparison covers only cells with measurable
// bandwidth (BWFlows > 0) and, when Config.SwitchTier is set, runs within
// each tier separately so leaves are never judged against spines.
func SwitchDiagnose(series map[flow.SwitchID][]SwitchPoint, cfg Config) []Alert {
	cfg = cfg.withDefaults()
	// Re-index by bucket.
	type cell struct {
		sw    flow.SwitchID
		point SwitchPoint
	}
	byBucket := make(map[time.Time][]cell)
	for sw, points := range series {
		for _, p := range points {
			byBucket[p.Bucket] = append(byBucket[p.Bucket], cell{sw, p})
		}
	}
	buckets := make([]time.Time, 0, len(byBucket))
	for b := range byBucket {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Before(buckets[j]) })

	var alerts []Alert
	for _, b := range buckets {
		cells := byBucket[b]
		sort.Slice(cells, func(i, j int) bool { return cells[i].sw < cells[j].sw })
		if cfg.MaxConcurrentDPFlows > 0 {
			for _, c := range cells {
				if c.point.Flows > cfg.MaxConcurrentDPFlows {
					alerts = append(alerts, Alert{
						Kind:     AlertSwitchFlowCount,
						Switch:   c.sw,
						Time:     b,
						Value:    float64(c.point.Flows),
						Baseline: float64(cfg.MaxConcurrentDPFlows),
						Detail: fmt.Sprintf("switch %v carried %d DP flows in bucket %s (limit %d)",
							c.sw, c.point.Flows, b.Format(time.TimeOnly), cfg.MaxConcurrentDPFlows),
					})
				}
			}
		}
		// Partition the bucket's measurable cells into comparison tiers
		// (one tier when no classifier is set), keeping the per-tier cell
		// order sorted by switch id.
		tierOf := func(sw flow.SwitchID) int { return 0 }
		if cfg.SwitchTier != nil {
			tierOf = cfg.SwitchTier
		}
		byTier := make(map[int][]cell)
		tiers := make([]int, 0, 2)
		for _, c := range cells {
			if c.point.BWFlows == 0 {
				continue // no measurable bandwidth to compare
			}
			tier := tierOf(c.sw)
			if _, ok := byTier[tier]; !ok {
				tiers = append(tiers, tier)
			}
			byTier[tier] = append(byTier[tier], c)
		}
		sort.Ints(tiers)
		for _, tier := range tiers {
			peers := byTier[tier]
			if len(peers) < cfg.MinSamples {
				continue
			}
			bws := make([]float64, len(peers))
			for i, c := range peers {
				bws[i] = c.point.MeanGbps
			}
			for i, c := range peers {
				if bad, base := kSigmaOutlierLOO(bws, i, cfg.K, -1); bad {
					alerts = append(alerts, Alert{
						Kind:     AlertSwitchBandwidth,
						Switch:   c.sw,
						Time:     b,
						Value:    bws[i],
						Baseline: base,
						Detail: fmt.Sprintf("switch %v DP bandwidth %.1f Gb/s vs peer baseline %.1f Gb/s",
							c.sw, bws[i], base),
					})
				}
			}
		}
	}
	return alerts
}

func sortedRanks(timelines map[flow.Addr]*timeline.Timeline) []flow.Addr {
	ranks := make([]flow.Addr, 0, len(timelines))
	for r := range timelines {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	return ranks
}
