package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{42}, 42},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, 2, -4, 4}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min,Max = %v,%v want -1,7", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty should be 0")
	}
}

func TestMedianPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := Percentile([]float64{1, 2}, 50); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("P50 of {1,2} = %v, want 1.5", got)
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Error("Percentile modified its input")
	}
}

func TestMode(t *testing.T) {
	tests := []struct {
		name      string
		xs        []int
		wantValue int
		wantCount int
	}{
		{"empty", nil, 0, 0},
		{"single", []int{7}, 7, 1},
		{"clear mode", []int{1, 2, 2, 3, 2}, 2, 3},
		{"tie breaks low", []int{4, 4, 1, 1}, 1, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, c := Mode(tt.xs)
			if v != tt.wantValue || c != tt.wantCount {
				t.Errorf("Mode(%v) = (%d,%d), want (%d,%d)", tt.xs, v, c, tt.wantValue, tt.wantCount)
			}
		})
	}
}

func TestDistinctCount(t *testing.T) {
	if got := DistinctCount([]int64{1, 1, 2, 3, 3, 3}); got != 3 {
		t.Errorf("DistinctCount = %d, want 3", got)
	}
	if got := DistinctCount(nil); got != 0 {
		t.Errorf("DistinctCount(nil) = %d, want 0", got)
	}
}

func TestJaccard(t *testing.T) {
	tests := []struct {
		name string
		a, b []string
		want float64
	}{
		{"identical", []string{"x", "y"}, []string{"y", "x"}, 1},
		{"disjoint", []string{"a"}, []string{"b"}, 0},
		{"half", []string{"a", "b"}, []string{"b", "c"}, 1.0 / 3},
		{"both empty", nil, nil, 1},
		{"one empty", []string{"a"}, nil, 0},
		{"duplicates ignored", []string{"a", "a", "b"}, []string{"a", "b", "b"}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Jaccard(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Jaccard(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

// Property: Welford matches the batch mean/variance.
func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			w.Add(xs[i])
		}
		return almostEqual(w.Mean(), Mean(xs), 1e-9) &&
			almostEqual(w.Variance(), Variance(xs), 1e-9) &&
			w.N() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Jaccard is symmetric and bounded in [0,1].
func TestJaccardProperties(t *testing.T) {
	f := func(a, b []uint8) bool {
		j1 := Jaccard(a, b)
		j2 := Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-9 || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Error("EWMA initial value should be 0")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first Add should seed value, got %v", e.Value())
	}
	e.Add(20)
	if !almostEqual(e.Value(), 15, 1e-12) {
		t.Errorf("EWMA = %v, want 15", e.Value())
	}
	// Invalid alpha falls back to a sane default rather than panicking.
	e2 := NewEWMA(-1)
	e2.Add(1)
	e2.Add(2)
	if v := e2.Value(); v <= 1 || v >= 2 {
		t.Errorf("EWMA with fallback alpha out of range: %v", v)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 9, 10, -5, 15}
	counts := Histogram(xs, 0, 10, 5)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram total = %d, want %d", total, len(xs))
	}
	if counts[0] == 0 || counts[4] == 0 {
		t.Error("edge buckets should have absorbed clamped values")
	}
	if Histogram(xs, 0, 10, 0) != nil {
		t.Error("zero buckets should return nil")
	}
	degenerate := Histogram(xs, 5, 5, 3)
	if degenerate[0] != len(xs) {
		t.Error("degenerate range should place all values in bucket 0")
	}
}

func BenchmarkWelford(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
	_ = w.Variance()
}

func BenchmarkMode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int, 1024)
	for i := range xs {
		xs[i] = rng.Intn(8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mode(xs)
	}
}
