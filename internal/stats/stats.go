// Package stats provides the small statistical toolkit used across the
// LLMPrism pipeline: summary statistics, mode estimation (used to classify
// communication pairs), Jaccard similarity (used to merge job clusters),
// percentiles, and online (Welford/EWMA) accumulators used by the
// continuous monitors.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or 0 for an empty slice.
// xs is not modified.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mode returns the most frequent value in xs and its count. Ties are broken
// toward the smallest value so the result is deterministic. For an empty
// slice it returns (0, 0).
//
// Algorithm 2 of the paper takes the mode of per-step distinct-size counts
// to suppress noisy steps.
func Mode(xs []int) (value, count int) {
	if len(xs) == 0 {
		return 0, 0
	}
	freq := make(map[int]int, len(xs))
	for _, x := range xs {
		freq[x]++
	}
	first := true
	for v, c := range freq {
		if first || c > count || (c == count && v < value) {
			value, count = v, c
			first = false
		}
	}
	return value, count
}

// DistinctCount returns the number of distinct values in xs.
func DistinctCount(xs []int64) int {
	if len(xs) == 0 {
		return 0
	}
	seen := make(map[int64]struct{}, len(xs))
	for _, x := range xs {
		seen[x] = struct{}{}
	}
	return len(seen)
}

// Jaccard returns the Jaccard similarity |a∩b| / |a∪b| of two sets given as
// slices (duplicates are ignored). Two empty sets have similarity 1.
func Jaccard[K comparable](a, b []K) float64 {
	setA := make(map[K]struct{}, len(a))
	for _, x := range a {
		setA[x] = struct{}{}
	}
	setB := make(map[K]struct{}, len(b))
	for _, x := range b {
		setB[x] = struct{}{}
	}
	if len(setA) == 0 && len(setB) == 0 {
		return 1
	}
	inter := 0
	for x := range setA {
		if _, ok := setB[x]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

// Welford accumulates mean and variance online in a numerically stable way.
// The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// EWMA is an exponentially weighted moving average. The zero value is not
// usable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates x and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Histogram builds a fixed-width histogram of xs over [min, max] with the
// given number of buckets. Values outside the range are clamped into the
// edge buckets. It returns the per-bucket counts.
func Histogram(xs []float64, min, max float64, buckets int) []int {
	if buckets <= 0 {
		return nil
	}
	counts := make([]int, buckets)
	if max <= min {
		counts[0] = len(xs)
		return counts
	}
	width := (max - min) / float64(buckets)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	return counts
}
