package archive

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

const segSalvageSuffix = ".llpa.salvage"

// StoreWriter appends a session's windows to a rotating multi-segment
// store. Construct with CreateStoreWriter (fresh store) or
// ResumeStoreWriter (continue a crashed or cleanly stopped one), append
// windows in emission order, then Close. Like archive.Writer it latches
// the first error: a writer that failed mid-segment leaves its .tmp on
// disk for salvage and refuses further work.
type StoreWriter struct {
	dir    string
	meta   Meta
	policy StorePolicy
	anchor int64
	next   int            // index the next segment file will take
	segs   []StoreSegment // finalized, manifest order
	cur    *segWriter
	expect int // next window seq Append accepts (-1: any first seq)
	closed bool
	err    error
}

// segWriter is the open (current) segment: an archive.Writer on a .tmp
// file plus the manifest-entry state accumulated append by append.
type segWriter struct {
	index       int
	path, tmp   string
	f           *os.File
	aw          *Writer
	first, last int
	minStart    time.Time
	maxEnd      time.Time
	sum         segSummary
}

// segSummary accumulates a segment's distinct pair/switch keys; a nil map
// marks overflow past MaxStoreSummary (the segment then matches every
// query).
type segSummary struct {
	pairs, switches map[uint64]struct{}
}

func newSegSummary() segSummary {
	return segSummary{
		pairs:    make(map[uint64]struct{}),
		switches: make(map[uint64]struct{}),
	}
}

func (s *segSummary) add(f *flow.Frame) {
	if s.pairs != nil {
		for _, p := range f.Pairs() {
			s.pairs[PairKey(p)] = struct{}{}
		}
		if len(s.pairs) > MaxStoreSummary {
			s.pairs = nil
		}
	}
	if s.switches != nil {
		t := f.PathTable()
		for id := 0; id < t.NumPaths(); id++ {
			for _, sw := range t.Path(flow.PathID(id)) {
				s.switches[uint64(sw)] = struct{}{}
			}
		}
		if len(s.switches) > MaxStoreSummary {
			s.switches = nil
		}
	}
}

func (s *segSummary) finish() (pairs, switches []uint64, pairOver, switchOver bool) {
	return sortedKeys(s.pairs), sortedKeys(s.switches), s.pairs == nil, s.switches == nil
}

func sortedKeys(m map[uint64]struct{}) []uint64 {
	if m == nil || len(m) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func segFileName(index int, suffix string) string {
	return fmt.Sprintf("%s%08d%s", segFilePrefix, index, suffix)
}

func validateStoreMeta(meta Meta) error {
	if meta.Width <= 0 || meta.Hop <= 0 || meta.Hop > meta.Width || meta.Lateness < 0 {
		return fmt.Errorf("archive: store requires windowed geometry, got %+v", meta)
	}
	return nil
}

// CreateStoreWriter claims dir (created if missing) as a fresh store:
// writes an empty manifest and returns a writer whose first Append opens
// segment 1. A directory already holding store state is refused.
func CreateStoreWriter(dir string, meta Meta, policy StorePolicy) (*StoreWriter, error) {
	if err := policy.validate(); err != nil {
		return nil, err
	}
	if err := validateStoreMeta(meta); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("archive: create store: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, StoreManifestName)); err == nil {
		return nil, fmt.Errorf("archive: store already exists in %s", dir)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("archive: create store: %w", err)
	}
	sd, err := listStoreDir(dir)
	if err != nil {
		return nil, err
	}
	if n := len(sd.finalized) + len(sd.tmps) + len(sd.salvages); n > 0 {
		return nil, fmt.Errorf("archive: directory %s holds %d stray segment files (no manifest)", dir, n)
	}
	sw := &StoreWriter{dir: dir, meta: meta, policy: policy, next: 1, expect: -1}
	if err := sw.writeManifest(); err != nil {
		return nil, err
	}
	return sw, nil
}

// SetAnchor records the session's event-time grid origin; it is persisted
// into every finalized segment's trailer and every manifest rewrite, so a
// crash never loses it once the first segment finalized.
func (sw *StoreWriter) SetAnchor(t time.Time) {
	if t.IsZero() {
		sw.anchor = 0
		return
	}
	sw.anchor = t.UnixNano()
}

// Segments returns how many segments are finalized (the open one excluded).
func (sw *StoreWriter) Segments() int { return len(sw.segs) }

// Append archives one window, rotating first when the previous Append left
// the current segment past a rotation bound. Rotating before the new
// window (never after) keeps finalization aligned with the session
// checkpoint: a segment only ever finalizes after its last window was
// checkpointed, so crash salvage never needs to un-write a finalized file.
func (sw *StoreWriter) Append(seq int, start, end time.Time, f *flow.Frame) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return sw.fail(fmt.Errorf("archive: append to closed store writer"))
	}
	if sw.expect >= 0 && seq != sw.expect {
		return sw.fail(fmt.Errorf("archive: store append seq %d, expected %d", seq, sw.expect))
	}
	if sw.cur != nil && sw.shouldRotate() {
		if err := sw.finalizeCurrent(); err != nil {
			return err
		}
	}
	if sw.cur == nil {
		if err := sw.openSegment(); err != nil {
			return err
		}
	}
	c := sw.cur
	if err := c.aw.Append(seq, start, end, f); err != nil {
		return sw.fail(err)
	}
	if c.aw.Segments() == 1 {
		c.first = seq
		c.minStart = start.UTC()
		c.maxEnd = end.UTC()
	} else {
		if start.Before(c.minStart) {
			c.minStart = start.UTC()
		}
		if end.After(c.maxEnd) {
			c.maxEnd = end.UTC()
		}
	}
	c.last = seq
	c.sum.add(f)
	sw.expect = seq + 1
	return nil
}

func (sw *StoreWriter) shouldRotate() bool {
	c, p := sw.cur, sw.policy
	if c.aw.Segments() == 0 {
		return false
	}
	return (p.RotateWindows > 0 && c.aw.Segments() >= p.RotateWindows) ||
		(p.RotateBytes > 0 && c.aw.Bytes() >= p.RotateBytes) ||
		(p.RotateSpan > 0 && c.maxEnd.Sub(c.minStart) >= p.RotateSpan)
}

func (sw *StoreWriter) openSegment() error {
	idx := sw.next
	final := filepath.Join(sw.dir, segFileName(idx, segFileSuffix))
	tmp := filepath.Join(sw.dir, segFileName(idx, segTmpSuffix))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
	if err != nil {
		return sw.fail(fmt.Errorf("archive: open segment: %w", err))
	}
	aw, err := NewWriter(f, sw.meta)
	if err != nil {
		f.Close()
		return sw.fail(err)
	}
	sw.cur = &segWriter{index: idx, path: final, tmp: tmp, f: f, aw: aw, sum: newSegSummary()}
	return nil
}

// finalizeCurrent closes the open segment atomically — archive manifest +
// trailer, fsync, rename .tmp to final, directory fsync — then rewrites
// the store manifest and applies retention.
func (sw *StoreWriter) finalizeCurrent() error {
	c := sw.cur
	c.aw.SetAnchor(nanosTime(sw.anchor))
	if err := c.aw.Close(); err != nil {
		c.f.Close()
		return sw.fail(err)
	}
	size := c.aw.Bytes()
	if err := c.f.Sync(); err != nil {
		c.f.Close()
		return sw.fail(fmt.Errorf("archive: sync segment: %w", err))
	}
	if err := c.f.Close(); err != nil {
		return sw.fail(fmt.Errorf("archive: close segment: %w", err))
	}
	if err := os.Rename(c.tmp, c.path); err != nil {
		return sw.fail(fmt.Errorf("archive: finalize segment: %w", err))
	}
	if err := syncDir(sw.dir); err != nil {
		return sw.fail(err)
	}
	pairs, switches, pOver, sOver := c.sum.finish()
	sw.segs = append(sw.segs, StoreSegment{
		Index:          c.index,
		Windows:        c.aw.Segments(),
		FirstSeq:       c.first,
		LastSeq:        c.last,
		MinStart:       c.minStart,
		MaxEnd:         c.maxEnd,
		Bytes:          size,
		PairOverflow:   pOver,
		SwitchOverflow: sOver,
		Pairs:          pairs,
		Switches:       switches,
	})
	sw.cur = nil
	sw.next = c.index + 1
	if err := sw.writeManifest(); err != nil {
		return err
	}
	return sw.prune()
}

// prune drops the oldest finalized segments past the retention bounds —
// manifest rewritten first (so a crash leaves extra files, never dangling
// manifest entries), files deleted after. The newest finalized segment is
// never pruned.
func (sw *StoreWriter) prune() error {
	p := sw.policy
	if p.RetainSegments == 0 && p.RetainBytes == 0 {
		return nil
	}
	var total int64
	for i := range sw.segs {
		total += sw.segs[i].Bytes
	}
	drop := 0
	for drop < len(sw.segs)-1 {
		over := (p.RetainSegments > 0 && len(sw.segs)-drop > p.RetainSegments) ||
			(p.RetainBytes > 0 && total > p.RetainBytes)
		if !over {
			break
		}
		total -= sw.segs[drop].Bytes
		drop++
	}
	if drop == 0 {
		return nil
	}
	doomed := append([]StoreSegment(nil), sw.segs[:drop]...)
	sw.segs = append([]StoreSegment(nil), sw.segs[drop:]...)
	if err := sw.writeManifest(); err != nil {
		return err
	}
	for i := range doomed {
		if err := os.Remove(filepath.Join(sw.dir, doomed[i].File())); err != nil {
			return sw.fail(fmt.Errorf("archive: prune segment: %w", err))
		}
	}
	return sw.fail2(syncDir(sw.dir))
}

// Close finalizes the open segment (if any) and persists the manifest.
// Idempotent and sticky, like archive.Writer.Close.
func (sw *StoreWriter) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	if sw.err != nil {
		return sw.err
	}
	if sw.cur != nil {
		return sw.finalizeCurrent()
	}
	return sw.writeManifest()
}

// Abort releases the writer without finalizing: the open segment's .tmp
// stays on disk for salvage, finalized segments and the manifest stay as
// last persisted.
func (sw *StoreWriter) Abort() {
	sw.closed = true
	if sw.cur != nil {
		sw.cur.f.Close()
		sw.cur = nil
	}
}

func (sw *StoreWriter) fail(err error) error {
	if sw.err == nil {
		sw.err = err
	}
	return sw.err
}

func (sw *StoreWriter) fail2(err error) error {
	if err == nil {
		return nil
	}
	return sw.fail(err)
}

func (sw *StoreWriter) writeManifest() error {
	b := encodeStoreManifest(sw.meta, sw.anchor, sw.next, sw.segs)
	return sw.fail2(writeFileAtomic(filepath.Join(sw.dir, StoreManifestName), b))
}

func writeFileAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("archive: write %s: %w", filepath.Base(path), err)
	}
	_, werr := f.Write(b)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("archive: write %s: %w", filepath.Base(path), werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("archive: write %s: %w", filepath.Base(path), err)
	}
	return syncDir(filepath.Dir(path))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("archive: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("archive: sync dir: %w", err)
	}
	return nil
}

// storeDir is a parse of a store directory's entries by role.
type storeDir struct {
	finalized   []int // sorted seg-*.llpa indices
	tmps        []int // sorted seg-*.llpa.tmp indices
	salvages    []int // sorted seg-*.llpa.salvage indices
	manifestTmp bool
}

func listStoreDir(dir string) (*storeDir, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: list store: %w", err)
	}
	sd := &storeDir{}
	for _, e := range ents {
		name := e.Name()
		if name == StoreManifestName+".tmp" {
			sd.manifestTmp = true
			continue
		}
		if !strings.HasPrefix(name, segFilePrefix) {
			continue
		}
		var suffix string
		var list *[]int
		switch {
		case strings.HasSuffix(name, segSalvageSuffix):
			suffix, list = segSalvageSuffix, &sd.salvages
		case strings.HasSuffix(name, segTmpSuffix):
			suffix, list = segTmpSuffix, &sd.tmps
		case strings.HasSuffix(name, segFileSuffix):
			suffix, list = segFileSuffix, &sd.finalized
		default:
			continue
		}
		idx, err := strconv.Atoi(name[len(segFilePrefix) : len(name)-len(suffix)])
		if err != nil || idx < 1 {
			continue // stray file that merely resembles a segment
		}
		*list = append(*list, idx)
	}
	sort.Ints(sd.finalized)
	sort.Ints(sd.tmps)
	sort.Ints(sd.salvages)
	return sd, nil
}

// ResumeStoreWriter reopens a store for continued appending after a crash
// or clean stop. resumeSeq is the session checkpoint's next window seq —
// the first window the resumed monitor will re-emit. The store's state is
// reconciled from the files themselves (the manifest may be one finalize
// or prune behind), the open segment's .tmp is salvaged up to (excluding)
// resumeSeq into a finalized segment, and anything at or past resumeSeq is
// discarded because the resumed session re-emits it. A store whose
// archived windows end before resumeSeq-1 lost synced data and is refused
// loudly. meta must equal the store's recorded geometry.
func ResumeStoreWriter(dir string, meta Meta, policy StorePolicy, resumeSeq int) (*StoreWriter, *StoreRecovery, error) {
	if err := policy.validate(); err != nil {
		return nil, nil, err
	}
	if err := validateStoreMeta(meta); err != nil {
		return nil, nil, err
	}
	if resumeSeq < 0 {
		return nil, nil, fmt.Errorf("archive: negative resume seq %d", resumeSeq)
	}
	rec := &StoreRecovery{Clean: true}
	note := func(format string, args ...any) {
		rec.Clean = false
		rec.Notes = append(rec.Notes, fmt.Sprintf(format, args...))
	}
	b, err := os.ReadFile(filepath.Join(dir, StoreManifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("archive: resume store: %w", err)
	}
	mmeta, anchor, next, segs, err := decodeStoreManifest(b)
	if err != nil {
		return nil, nil, fmt.Errorf("archive: resume store: %w", err)
	}
	if mmeta != meta {
		return nil, nil, fmt.Errorf("archive: store geometry %+v does not match checkpoint %+v", mmeta, meta)
	}
	sd, err := listStoreDir(dir)
	if err != nil {
		return nil, nil, err
	}
	if sd.manifestTmp {
		os.Remove(filepath.Join(dir, StoreManifestName+".tmp"))
		note("removed torn manifest temporary")
	}
	for _, idx := range sd.salvages {
		os.Remove(filepath.Join(dir, segFileName(idx, segSalvageSuffix)))
		note("removed interrupted salvage of segment %d", idx)
	}

	onDisk := make(map[int]bool, len(sd.finalized))
	for _, idx := range sd.finalized {
		onDisk[idx] = true
	}
	known := make(map[int]bool, len(segs))
	for i := range segs {
		if !onDisk[segs[i].Index] {
			return nil, nil, fmt.Errorf("archive: manifested segment %s missing from store", segs[i].File())
		}
		known[segs[i].Index] = true
	}
	prevLast := -1
	if len(segs) > 0 {
		prevLast = segs[len(segs)-1].LastSeq
	}
	for _, idx := range sd.finalized {
		if known[idx] {
			continue
		}
		switch {
		case len(segs) > 0 && idx < segs[0].Index:
			// A prune wrote the manifest, crashed before deleting the file.
			if err := os.Remove(filepath.Join(dir, segFileName(idx, segFileSuffix))); err != nil {
				return nil, nil, fmt.Errorf("archive: resume store: %w", err)
			}
			note("removed segment %d already pruned from manifest", idx)
		case idx == next:
			// A finalize renamed the file, crashed before the manifest.
			entry, emeta, err := readFinalizedEntry(dir, idx)
			if err != nil {
				return nil, nil, fmt.Errorf("archive: resume store: adopt segment %d: %w", idx, err)
			}
			if emeta != meta {
				return nil, nil, fmt.Errorf("archive: segment %d geometry %+v differs from store %+v", idx, emeta, meta)
			}
			if prevLast >= 0 && entry.FirstSeq != prevLast+1 {
				return nil, nil, fmt.Errorf("archive: segment %d starts at window %d, store ends at %d", idx, entry.FirstSeq, prevLast)
			}
			segs = append(segs, entry)
			prevLast = entry.LastSeq
			next = idx + 1
			note("adopted finalized segment %d missing from manifest (%d windows)", idx, entry.Windows)
		default:
			return nil, nil, fmt.Errorf("archive: unexpected segment file %s in store", segFileName(idx, segFileSuffix))
		}
	}
	if prevLast >= resumeSeq {
		return nil, nil, fmt.Errorf("archive: checkpoint resumes at window %d but store already finalized through %d", resumeSeq, prevLast)
	}

	for _, idx := range sd.tmps {
		tmpName := segFileName(idx, segTmpSuffix)
		tmpPath := filepath.Join(dir, tmpName)
		if idx < next {
			// The salvage's rename landed but the torn original was not yet
			// removed; everything it held at or past resumeSeq re-emits.
			if err := os.Remove(tmpPath); err != nil {
				return nil, nil, fmt.Errorf("archive: resume store: %w", err)
			}
			note("removed stale segment temporary %s", tmpName)
			continue
		}
		if idx > next {
			return nil, nil, fmt.Errorf("archive: segment temporary %s is not the store's open segment %d", tmpName, next)
		}
		entry, kept, discarded, err := salvageTmp(dir, idx, meta, nanosTime(anchor), prevLast, resumeSeq)
		if err != nil {
			return nil, nil, err
		}
		if kept == 0 {
			note("segment temporary %s held no pre-checkpoint windows; removed (%d windows re-emit)", tmpName, discarded)
			continue
		}
		segs = append(segs, entry)
		prevLast = entry.LastSeq
		next = idx + 1
		note("salvaged %d windows from %s into segment %d (%d past-checkpoint windows re-emit)", kept, tmpName, idx, discarded)
	}

	if prevLast != resumeSeq-1 {
		return nil, nil, fmt.Errorf("archive: store ends at window %d but checkpoint resumes at %d: archived windows lost", prevLast, resumeSeq)
	}
	sw := &StoreWriter{
		dir: dir, meta: meta, policy: policy,
		anchor: anchor, next: next, segs: segs, expect: resumeSeq,
	}
	if err := sw.writeManifest(); err != nil {
		return nil, nil, err
	}
	return sw, rec, nil
}

// readFinalizedEntry strictly opens one finalized segment file and rebuilds
// its manifest entry, recomputing the pair/switch summaries by decoding
// every frame — the resume path for a segment the store manifest never
// recorded.
func readFinalizedEntry(dir string, idx int) (StoreSegment, Meta, error) {
	path := filepath.Join(dir, segFileName(idx, segFileSuffix))
	f, err := os.Open(path)
	if err != nil {
		return StoreSegment{}, Meta{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return StoreSegment{}, Meta{}, err
	}
	r, err := OpenReader(f, st.Size())
	if err != nil {
		return StoreSegment{}, Meta{}, err
	}
	entry, err := readerEntry(r, idx, st.Size())
	return entry, r.Meta(), err
}

// readerEntry builds a store manifest entry from an opened segment reader.
func readerEntry(r *Reader, idx int, size int64) (StoreSegment, error) {
	if r.NumSegments() == 0 {
		return StoreSegment{}, fmt.Errorf("segment holds no windows")
	}
	sum := newSegSummary()
	entry := StoreSegment{Index: idx, Windows: r.NumSegments(), Bytes: size}
	for i := 0; i < r.NumSegments(); i++ {
		s := r.Segment(i)
		if i == 0 {
			entry.FirstSeq, entry.LastSeq = s.Seq, s.Seq
			entry.MinStart, entry.MaxEnd = s.Start, s.End
		} else {
			entry.FirstSeq = min(entry.FirstSeq, s.Seq)
			entry.LastSeq = max(entry.LastSeq, s.Seq)
			if s.Start.Before(entry.MinStart) {
				entry.MinStart = s.Start
			}
			if s.End.After(entry.MaxEnd) {
				entry.MaxEnd = s.End
			}
		}
		f, err := r.Frame(i)
		if err != nil {
			return StoreSegment{}, err
		}
		sum.add(f)
	}
	entry.Pairs, entry.Switches, entry.PairOverflow, entry.SwitchOverflow = sum.finish()
	return entry, nil
}

// salvageTmp recovers the torn open segment's intact windows below
// resumeSeq into a finalized segment file with the same index. Windows at
// or past resumeSeq are discarded (the resumed session re-emits them); a
// gap below resumeSeq means synced data was lost and is an error.
func salvageTmp(dir string, idx int, meta Meta, anchor time.Time, prevLast, resumeSeq int) (StoreSegment, int, int, error) {
	tmpPath := filepath.Join(dir, segFileName(idx, segTmpSuffix))
	tf, err := os.Open(tmpPath)
	if err != nil {
		return StoreSegment{}, 0, 0, fmt.Errorf("archive: resume store: %w", err)
	}
	defer tf.Close()
	st, err := tf.Stat()
	if err != nil {
		return StoreSegment{}, 0, 0, fmt.Errorf("archive: resume store: %w", err)
	}
	r, rep, err := Recover(tf, st.Size())
	if err != nil {
		return StoreSegment{}, 0, 0, fmt.Errorf("archive: resume store: salvage %s: %w", filepath.Base(tmpPath), err)
	}
	// Emission (seq) order; Recover exposes event-time order.
	order := make([]int, r.NumSegments())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return r.Segment(order[a]).Seq < r.Segment(order[b]).Seq })
	kept := 0
	for _, i := range order {
		if r.Segment(i).Seq < resumeSeq {
			kept++
		}
	}
	discarded := r.NumSegments() - kept
	if kept == 0 {
		if err := os.Remove(tmpPath); err != nil {
			return StoreSegment{}, 0, 0, fmt.Errorf("archive: resume store: %w", err)
		}
		return StoreSegment{}, 0, discarded, nil
	}
	for k, i := range order[:kept] {
		if want := prevLast + 1 + k; r.Segment(i).Seq != want {
			return StoreSegment{}, 0, 0, fmt.Errorf("archive: salvage of %s: window %d where %d expected (checkpointed windows lost)",
				filepath.Base(tmpPath), r.Segment(i).Seq, want)
		}
	}

	salvagePath := filepath.Join(dir, segFileName(idx, segSalvageSuffix))
	finalPath := filepath.Join(dir, segFileName(idx, segFileSuffix))
	out, err := os.OpenFile(salvagePath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return StoreSegment{}, 0, 0, fmt.Errorf("archive: resume store: %w", err)
	}
	aw, err := NewWriter(out, meta)
	if err != nil {
		out.Close()
		return StoreSegment{}, 0, 0, err
	}
	sum := newSegSummary()
	entry := StoreSegment{Index: idx, Windows: kept}
	for k, i := range order[:kept] {
		s := r.Segment(i)
		f, err := r.Frame(i)
		if err != nil {
			out.Close()
			return StoreSegment{}, 0, 0, err
		}
		if err := aw.Append(s.Seq, s.Start, s.End, f); err != nil {
			out.Close()
			return StoreSegment{}, 0, 0, err
		}
		if k == 0 {
			entry.FirstSeq, entry.MinStart, entry.MaxEnd = s.Seq, s.Start, s.End
		} else {
			if s.Start.Before(entry.MinStart) {
				entry.MinStart = s.Start
			}
			if s.End.After(entry.MaxEnd) {
				entry.MaxEnd = s.End
			}
		}
		entry.LastSeq = s.Seq
		sum.add(f)
	}
	if anchor.IsZero() {
		anchor = rep.Anchor
	}
	aw.SetAnchor(anchor)
	err = aw.Close()
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(salvagePath, finalPath)
	}
	if err == nil {
		err = os.Remove(tmpPath)
	}
	if err == nil {
		err = syncDir(dir)
	}
	if err != nil {
		return StoreSegment{}, 0, 0, fmt.Errorf("archive: resume store: salvage %s: %w", filepath.Base(tmpPath), err)
	}
	entry.Bytes = aw.Bytes()
	entry.Pairs, entry.Switches, entry.PairOverflow, entry.SwitchOverflow = sum.finish()
	return entry, kept, discarded, nil
}
