package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// StoreRecovery describes what a lenient store open or resume had to
// reconcile. Clean means the store opened strictly with nothing to note.
type StoreRecovery struct {
	Clean bool
	Notes []string
}

func (r *StoreRecovery) String() string {
	if r.Clean {
		return "store clean"
	}
	return "store recovered: " + strings.Join(r.Notes, "; ")
}

// Store is a read view of a multi-segment store (or of a single-file LPA1
// archive presented as a one-segment store). It holds no open files;
// Replay/Scan open the segment files they visit.
type Store struct {
	dir    string
	meta   Meta
	anchor time.Time
	segs   []StoreSegment // index order
}

// OpenStore strictly opens a store directory: a valid manifest, every
// manifested segment present at its recorded size, no unmanifested
// segments, and no write temporaries (a leftover .tmp means a crashed
// writer — use OpenStoreRecovering or ResumeStoreWriter, which would
// otherwise be silently omitted data).
func OpenStore(dir string) (*Store, error) {
	b, err := os.ReadFile(filepath.Join(dir, StoreManifestName))
	if err != nil {
		return nil, fmt.Errorf("archive: open store: %w", err)
	}
	meta, anchor, _, segs, err := decodeStoreManifest(b)
	if err != nil {
		return nil, err
	}
	sd, err := listStoreDir(dir)
	if err != nil {
		return nil, err
	}
	if n := len(sd.tmps) + len(sd.salvages); n > 0 || sd.manifestTmp {
		return nil, fmt.Errorf("archive: store %s holds write temporaries (crashed writer?); open with recovery", dir)
	}
	onDisk := make(map[int]bool, len(sd.finalized))
	for _, idx := range sd.finalized {
		onDisk[idx] = true
	}
	known := make(map[int]bool, len(segs))
	for i := range segs {
		s := &segs[i]
		known[s.Index] = true
		if !onDisk[s.Index] {
			return nil, fmt.Errorf("archive: manifested segment %s missing from store", s.File())
		}
		st, err := os.Stat(filepath.Join(dir, s.File()))
		if err != nil {
			return nil, fmt.Errorf("archive: open store: %w", err)
		}
		if st.Size() != s.Bytes {
			return nil, fmt.Errorf("archive: segment %s is %d bytes, manifest says %d", s.File(), st.Size(), s.Bytes)
		}
	}
	for _, idx := range sd.finalized {
		if !known[idx] {
			return nil, fmt.Errorf("archive: unmanifested segment %s in store", segFileName(idx, segFileSuffix))
		}
	}
	return newStore(dir, meta, nanosTime(anchor), segs), nil
}

// OpenStoreRecovering opens a store leniently, reconciling the manifest
// against the files: a manifest one step behind its directory (finalize or
// prune interrupted mid-crash) is repaired in memory, an unreadable or
// missing manifest is rebuilt from the segment files, intact finalized
// segments missing from the manifest are adopted, and a leftover open
// segment's .tmp is salvage-scanned and replayed as a trailing segment.
// Every segment file is opened leniently at replay time. The view is
// read-only: nothing on disk is modified.
func OpenStoreRecovering(dir string) (*Store, *StoreRecovery, error) {
	rec := &StoreRecovery{Clean: true}
	note := func(format string, args ...any) {
		rec.Clean = false
		rec.Notes = append(rec.Notes, fmt.Sprintf(format, args...))
	}
	sd, err := listStoreDir(dir)
	if err != nil {
		return nil, nil, err
	}
	if sd.manifestTmp {
		note("ignoring torn manifest temporary")
	}
	var (
		meta     Meta
		haveMeta bool
		anchor   time.Time
		segs     []StoreSegment
	)
	if b, rerr := os.ReadFile(filepath.Join(dir, StoreManifestName)); rerr != nil {
		note("manifest unreadable (%v); rebuilding from segment files", rerr)
	} else if m, a, _, s, derr := decodeStoreManifest(b); derr != nil {
		note("manifest invalid (%v); rebuilding from segment files", derr)
	} else {
		meta, anchor, segs, haveMeta = m, nanosTime(a), s, true
	}

	onDisk := make(map[int]bool, len(sd.finalized))
	for _, idx := range sd.finalized {
		onDisk[idx] = true
	}
	keptSegs := segs[:0]
	known := make(map[int]bool, len(segs))
	for i := range segs {
		if !onDisk[segs[i].Index] {
			note("manifested segment %s missing; dropped", segs[i].File())
			continue
		}
		if st, serr := os.Stat(filepath.Join(dir, segs[i].File())); serr == nil && st.Size() != segs[i].Bytes {
			note("segment %s is %d bytes, manifest says %d; will salvage", segs[i].File(), st.Size(), segs[i].Bytes)
		}
		known[segs[i].Index] = true
		keptSegs = append(keptSegs, segs[i])
	}
	segs = keptSegs

	for _, idx := range sd.finalized {
		if known[idx] {
			continue
		}
		entry, emeta, ferr := readFinalizedEntry(dir, idx)
		if ferr != nil {
			// Not strictly openable: salvage-scan it at replay time.
			entry, emeta, ferr = recoverEntry(dir, segFileName(idx, segFileSuffix), idx)
			if ferr != nil {
				note("segment %s unreadable (%v); skipped", segFileName(idx, segFileSuffix), ferr)
				continue
			}
			entry.salvage = true
		}
		if haveMeta && emeta != meta {
			note("segment %s geometry %+v differs from manifest %+v; skipped", segFileName(idx, segFileSuffix), emeta, meta)
			continue
		}
		if !haveMeta {
			meta, haveMeta = emeta, true
		}
		note("adopted unmanifested segment %s (%d windows)", segFileName(idx, segFileSuffix), entry.Windows)
		segs = append(segs, entry)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Index < segs[j].Index })

	maxIdx := 0
	if len(segs) > 0 {
		maxIdx = segs[len(segs)-1].Index
	}
	for _, idx := range sd.salvages {
		note("ignoring interrupted salvage of segment %d", idx)
	}
	for _, idx := range sd.tmps {
		name := segFileName(idx, segTmpSuffix)
		if idx <= maxIdx {
			// A finished salvage whose torn original was not yet removed;
			// its surviving windows are already in the finalized file.
			note("ignoring stale segment temporary %s", name)
			continue
		}
		entry, emeta, ferr := recoverEntry(dir, name, idx)
		if ferr != nil {
			note("segment temporary %s unreadable (%v); skipped", name, ferr)
			continue
		}
		if entry.Windows == 0 {
			note("segment temporary %s held no intact windows", name)
			continue
		}
		if haveMeta && emeta != meta {
			note("segment temporary %s geometry differs from manifest; skipped", name)
			continue
		}
		if !haveMeta {
			meta, haveMeta = emeta, true
		}
		entry.file = name
		entry.salvage = true
		note("salvaged %d windows from open segment %s", entry.Windows, name)
		segs = append(segs, entry)
	}
	if !haveMeta {
		return nil, nil, fmt.Errorf("archive: %s holds no readable store manifest or segments", dir)
	}
	return newStore(dir, meta, anchor, segs), rec, nil
}

// recoverEntry salvage-scans one segment file (finalized or .tmp) into an
// in-memory entry. Summaries are not recomputed — the entry matches every
// query.
func recoverEntry(dir, name string, idx int) (StoreSegment, Meta, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return StoreSegment{}, Meta{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return StoreSegment{}, Meta{}, err
	}
	r, _, err := Recover(f, st.Size())
	if err != nil {
		return StoreSegment{}, Meta{}, err
	}
	entry := StoreSegment{Index: idx, Windows: r.NumSegments(), Bytes: st.Size(), PairOverflow: true, SwitchOverflow: true}
	for i := 0; i < r.NumSegments(); i++ {
		s := r.Segment(i)
		if i == 0 {
			entry.FirstSeq, entry.LastSeq = s.Seq, s.Seq
			entry.MinStart, entry.MaxEnd = s.Start, s.End
		} else {
			entry.FirstSeq = min(entry.FirstSeq, s.Seq)
			entry.LastSeq = max(entry.LastSeq, s.Seq)
			if s.Start.Before(entry.MinStart) {
				entry.MinStart = s.Start
			}
			if s.End.After(entry.MaxEnd) {
				entry.MaxEnd = s.End
			}
		}
	}
	return entry, r.Meta(), nil
}

// FileStore presents a single-file LPA1 archive as a strict one-segment
// store — the compatibility path keeping every pre-store archive readable.
func FileStore(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	r, err := OpenReader(f, st.Size())
	if err != nil {
		return nil, err
	}
	return fileStore(path, r, st.Size(), false), nil
}

// FileStoreRecovering presents a single-file archive leniently: strict
// open first, salvage scan on failure, mirroring OpenReaderRecovering.
func FileStoreRecovering(path string) (*Store, *StoreRecovery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	r, rep, err := OpenReaderRecovering(f, st.Size())
	if err != nil {
		return nil, nil, err
	}
	rec := &StoreRecovery{Clean: rep.Clean}
	if !rep.Clean {
		rec.Notes = []string{rep.String()}
	}
	return fileStore(path, r, st.Size(), !rep.Clean), rec, nil
}

func fileStore(path string, r *Reader, size int64, salvage bool) *Store {
	var segs []StoreSegment
	if r.NumSegments() > 0 {
		entry := StoreSegment{Index: 1, Windows: r.NumSegments(), Bytes: size, PairOverflow: true, SwitchOverflow: true}
		for i := 0; i < r.NumSegments(); i++ {
			s := r.Segment(i)
			if i == 0 {
				entry.FirstSeq, entry.LastSeq = s.Seq, s.Seq
				entry.MinStart, entry.MaxEnd = s.Start, s.End
			} else {
				entry.FirstSeq = min(entry.FirstSeq, s.Seq)
				entry.LastSeq = max(entry.LastSeq, s.Seq)
				if s.Start.Before(entry.MinStart) {
					entry.MinStart = s.Start
				}
				if s.End.After(entry.MaxEnd) {
					entry.MaxEnd = s.End
				}
			}
		}
		entry.file = filepath.Base(path)
		entry.salvage = salvage
		segs = []StoreSegment{entry}
	}
	return newStore(filepath.Dir(path), r.Meta(), r.Anchor(), segs)
}

// OpenPath opens either archive layout strictly: a directory is a store, a
// plain file a one-segment store.
func OpenPath(path string) (*Store, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		return OpenStore(path)
	}
	return FileStore(path)
}

// OpenPathRecovering opens either archive layout leniently.
func OpenPathRecovering(path string) (*Store, *StoreRecovery, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, nil, err
	}
	if st.IsDir() {
		return OpenStoreRecovering(path)
	}
	return FileStoreRecovering(path)
}

func newStore(dir string, meta Meta, anchor time.Time, segs []StoreSegment) *Store {
	st := &Store{dir: dir, meta: meta, anchor: anchor, segs: segs}
	if st.anchor.IsZero() && meta.Width > 0 && len(segs) > 0 {
		// The recorded anchor went down with a crash; the earliest window
		// start lies on the original grid, which is all replay needs.
		min := segs[0].MinStart
		for i := 1; i < len(segs); i++ {
			if segs[i].MinStart.Before(min) {
				min = segs[i].MinStart
			}
		}
		st.anchor = min
	}
	return st
}

// Meta returns the recorded monitor window geometry.
func (st *Store) Meta() Meta { return st.meta }

// Anchor returns the replay grid origin: the recorded anchor, or (after a
// crash that lost it) the earliest archived window start, which lies on
// the same grid.
func (st *Store) Anchor() time.Time { return st.anchor }

// NumSegments returns the number of segments in the view.
func (st *Store) NumSegments() int { return len(st.segs) }

// NumWindows returns the total archived window count across segments.
func (st *Store) NumWindows() int {
	n := 0
	for i := range st.segs {
		n += st.segs[i].Windows
	}
	return n
}

// Segments returns the segment index entries in index order.
func (st *Store) Segments() []StoreSegment { return st.segs }

// Select returns the segments the query cannot prune — the manifest-level
// candidate set, computed without opening any file.
func (st *Store) Select(q Query) []StoreSegment {
	var sel []StoreSegment
	for i := range st.segs {
		if q.MatchSegment(st.segs[i]) {
			sel = append(sel, st.segs[i])
		}
	}
	return sel
}

// Replay decodes every archived window across all segments in global
// event-time order — ascending (Start, Seq) over the whole store, exactly
// the order a single-file Reader.Replay visits — and hands each to fn.
// Pushing the frames in this order reproduces the recorded session's
// reports bit for bit, however the windows were cut into segments.
func (st *Store) Replay(fn func(Segment, *flow.Frame) error) error {
	return st.replay(st.segs, nil, fn)
}

// ReplaySelected replays only query-matching segments and, within them,
// only windows overlapping the query's time bounds — the corpus for
// re-analyzing a time/pair/switch slice under a new configuration.
func (st *Store) ReplaySelected(q Query, fn func(Segment, *flow.Frame) error) error {
	return st.replay(st.Select(q), q.OverlapsWindow, fn)
}

// Scan visits individual matching rows: manifest pruning, then window
// time-bounds, then the exact per-row predicate. fn receives the window's
// segment, its frame, and the row index.
func (st *Store) Scan(q Query, fn func(Segment, *flow.Frame, int) error) error {
	return st.replay(st.Select(q), q.OverlapsWindow, func(s Segment, f *flow.Frame) error {
		for i := 0; i < f.Len(); i++ {
			if !q.MatchRow(f, i) {
				continue
			}
			if err := fn(s, f, i); err != nil {
				return err
			}
		}
		return nil
	})
}

func (st *Store) replay(sel []StoreSegment, keep func(Segment) bool, fn func(Segment, *flow.Frame) error) error {
	type win struct {
		r *Reader
		i int
	}
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	var wins []win
	for si := range sel {
		sg := &sel[si]
		path := filepath.Join(st.dir, sg.File())
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("archive: replay store: %w", err)
		}
		files = append(files, f)
		fi, err := f.Stat()
		if err != nil {
			return fmt.Errorf("archive: replay store: %w", err)
		}
		var r *Reader
		if sg.salvage {
			r, _, err = OpenReaderRecovering(f, fi.Size())
		} else {
			r, err = OpenReader(f, fi.Size())
		}
		if err != nil {
			return fmt.Errorf("archive: segment %s: %w", sg.File(), err)
		}
		if r.Meta() != st.meta {
			return fmt.Errorf("archive: segment %s geometry %+v differs from store %+v", sg.File(), r.Meta(), st.meta)
		}
		for i := 0; i < r.NumSegments(); i++ {
			if keep == nil || keep(r.Segment(i)) {
				wins = append(wins, win{r, i})
			}
		}
	}
	// Global event-time order across segment files. Within one session the
	// seqs are globally unique, so the order is total; a pre-anchor
	// straggler window in a later segment interleaves here exactly as it
	// does in a single-file archive's manifest sort.
	sort.SliceStable(wins, func(a, b int) bool {
		sa, sb := wins[a].r.Segment(wins[a].i), wins[b].r.Segment(wins[b].i)
		if !sa.Start.Equal(sb.Start) {
			return sa.Start.Before(sb.Start)
		}
		return sa.Seq < sb.Seq
	})
	for _, w := range wins {
		f, err := w.r.Frame(w.i)
		if err != nil {
			return err
		}
		if err := fn(w.r.Segment(w.i), f); err != nil {
			return err
		}
	}
	return nil
}
