package archive

// Store: a rotating, indexed, multi-segment archive — a directory of
// time/size-rotated LPA1 segment files plus a CRC'd manifest, turning a
// recorded monitor session from a one-shot replay tape into a queryable,
// retention-bounded telemetry lake.
//
// # Directory layout
//
//	<dir>/store.llps          store manifest (atomic rewrite on every change)
//	<dir>/seg-00000001.llpa   finalized LPA1 segment archives, index order
//	<dir>/seg-00000002.llpa
//	<dir>/seg-00000003.llpa.tmp   the open (current) segment, if a writer is live
//
// Each segment file is a complete, independently-openable LPA1 archive (the
// exact format archive.Writer produces), holding a contiguous run of the
// session's windows; a plain single-file LPA1 archive is readable as a
// one-segment store via FileStore. The manifest carries, per segment, the
// window seq range, the event-time range, the byte size, and sorted
// distinct pair/switch summaries so time/pair/switch-bounded queries can
// prune whole segment files without opening them.
//
// # Manifest layout (LPS1)
//
// All integers little-endian:
//
//	magic "LPS1" | flags u32 (0)
//	width i64 | hop i64 | lateness i64 | anchor i64
//	next u32 (next segment file index) | count u32
//	count × entry:
//	  index u32 | windows u32
//	  firstSeq i64 | lastSeq i64 | minStart i64 | maxEnd i64 | bytes i64
//	  sumFlags u8 (bit0 pair overflow, bit1 switch overflow) | pad u8×3 (0)
//	  pairCount u32 | switchCount u32
//	  pairCount × pairKey u64 (sorted ascending, distinct; hi 32 bits = A,
//	  lo 32 = B of the canonical unordered pair, A <= B)
//	  switchCount × switch u64 (sorted ascending, distinct)
//	crc u32 (IEEE over everything before it)
//
// The decoder is strict and canonical: exact length consumption, bounded
// counts, windows == lastSeq-firstSeq+1, contiguous seq ranges across
// entries, sorted-distinct summaries, an overflow flag forcing an empty
// list, and a whole-payload CRC. An accepted manifest re-encodes to the
// identical bytes (fuzzed in CI next to the other wire surfaces). The
// magic carries the version digit; an incompatible layout bumps it, and
// unknown versions are rejected outright — the same policy as LPF/LPA/LPK.
//
// # Rotation, retention, durability
//
// StoreWriter appends windows to the current segment's .tmp file and
// rotates lazily: when an Append finds the current segment already past a
// rotation bound (windows, bytes, or event-time span), it finalizes that
// segment first — manifest + trailer written, file fsynced, renamed to its
// final name, directory fsynced, store manifest rewritten atomically —
// and starts a fresh one. Rotating before the new append (rather than
// after) keeps the crash contract aligned with the session checkpoint: a
// segment is only ever finalized between the checkpoint of its last window
// and the append of the next, so salvage-at-resume never has to un-write a
// finalized file. Retention prunes the oldest finalized segments (never
// the newest) once the finalized count or byte total exceeds the policy.
//
// A crashed writer leaves finalized segments, a possibly stale manifest
// (at most one finalize or prune behind the files), and the torn .tmp.
// ResumeStoreWriter reconciles all three from the files themselves,
// salvages the .tmp's intact windows below the session checkpoint's resume
// seq into a finalized segment, and continues appending — so a resumed
// store holds exactly the uninterrupted session's window sequence.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

var storeMagic = [4]byte{'L', 'P', 'S', '1'}

const (
	// StoreManifestName is the manifest file's name inside a store
	// directory.
	StoreManifestName = "store.llps"
	// MaxStoreSummary bounds each per-segment pair/switch summary list; a
	// segment with more distinct keys is marked overflow and matches every
	// query (pruning is an optimization, never a filter).
	MaxStoreSummary = 4096
	// maxStoreSegments bounds the manifest entry count a decoder accepts.
	maxStoreSegments = 1 << 20

	storeHeaderSize   = 4 + 4 + 8 + 8 + 8 + 8 + 4 + 4
	storeEntryFixed   = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 1 + 3 + 4 + 4
	storeTrailerSize  = 4
	segFilePrefix     = "seg-"
	segFileSuffix     = ".llpa"
	segTmpSuffix      = ".llpa.tmp"
	sumFlagPairOver   = 1 << 0
	sumFlagSwitchOver = 1 << 1
)

// StorePolicy sets a store's rotation and retention bounds. The zero value
// never rotates (one segment until Close) and never prunes.
type StorePolicy struct {
	// RotateWindows closes the current segment once it holds this many
	// windows (0 = no window bound).
	RotateWindows int
	// RotateBytes closes the current segment once its file reaches this
	// many bytes (0 = no size bound).
	RotateBytes int64
	// RotateSpan closes the current segment once its windows cover this
	// much event time (0 = no time bound).
	RotateSpan time.Duration
	// RetainSegments keeps at most this many finalized segments, pruning
	// the oldest (0 = keep all). The newest finalized segment is never
	// pruned.
	RetainSegments int
	// RetainBytes keeps the finalized segments within this byte total,
	// pruning the oldest (0 = unbounded). The newest finalized segment is
	// never pruned.
	RetainBytes int64
}

func (p StorePolicy) validate() error {
	if p.RotateWindows < 0 || p.RotateBytes < 0 || p.RotateSpan < 0 ||
		p.RetainSegments < 0 || p.RetainBytes < 0 {
		return fmt.Errorf("archive: negative store policy %+v", p)
	}
	return nil
}

// PairKey packs a canonical flow pair into the manifest's summary key.
func PairKey(p flow.Pair) uint64 { return uint64(p.A)<<32 | uint64(p.B) }

// StoreSegment describes one segment file of a store, as indexed by the
// manifest: which windows it holds, what event-time range they cover, and
// the pair/switch summaries queries prune on.
type StoreSegment struct {
	// Index is the segment file's number (seg-%08d.llpa), strictly
	// increasing across the store's life — retention pruning never reuses
	// an index.
	Index int
	// Windows is how many archived windows the segment holds.
	Windows int
	// FirstSeq and LastSeq bound the contiguous window seq range.
	FirstSeq, LastSeq int
	// MinStart and MaxEnd bound the segment's event-time coverage.
	MinStart, MaxEnd time.Time
	// Bytes is the finalized segment file's exact size.
	Bytes int64
	// PairOverflow / SwitchOverflow mark a summary that exceeded
	// MaxStoreSummary distinct keys; an overflowed summary matches every
	// query.
	PairOverflow, SwitchOverflow bool
	// Pairs and Switches are the sorted distinct summary keys (nil when
	// the corresponding overflow flag is set).
	Pairs, Switches []uint64

	// file overrides the index-derived file name (single-file stores and
	// salvaged temporaries); salvage marks a file that must be opened with
	// the salvage scanner rather than the strict reader.
	file    string
	salvage bool
}

// File returns the segment's file name within the store directory.
func (s *StoreSegment) File() string {
	if s.file != "" {
		return s.file
	}
	return fmt.Sprintf("%s%08d%s", segFilePrefix, s.Index, segFileSuffix)
}

// MayContainPair reports whether the segment's summary admits the pair.
func (s *StoreSegment) MayContainPair(p flow.Pair) bool {
	if s.PairOverflow {
		return true
	}
	return containsKey(s.Pairs, PairKey(p))
}

// MayContainSwitch reports whether the segment's summary admits the switch.
func (s *StoreSegment) MayContainSwitch(sw flow.SwitchID) bool {
	if s.SwitchOverflow {
		return true
	}
	return containsKey(s.Switches, uint64(sw))
}

func containsKey(keys []uint64, k uint64) bool {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	return i < len(keys) && keys[i] == k
}

// Query bounds a store scan. Zero-value fields are unbounded; a segment is
// selected when every set bound may match it.
type Query struct {
	// From and To bound event time: windows (and rows) whose start falls
	// in [From, To). A zero time leaves that side open.
	From, To time.Time
	// Pair restricts to flows between this canonical endpoint pair.
	Pair *flow.Pair
	// Switch restricts to flows whose path traverses this switch.
	Switch *flow.SwitchID
}

// MatchSegment reports whether the segment may hold matching rows — the
// manifest-level pruning test. False means the segment file can be skipped
// without opening it.
func (q Query) MatchSegment(s StoreSegment) bool {
	if s.Windows == 0 {
		return false
	}
	if !q.From.IsZero() && !s.MaxEnd.After(q.From) {
		return false
	}
	if !q.To.IsZero() && !s.MinStart.Before(q.To) {
		return false
	}
	if q.Pair != nil && !s.MayContainPair(*q.Pair) {
		return false
	}
	if q.Switch != nil && !s.MayContainSwitch(*q.Switch) {
		return false
	}
	return true
}

// OverlapsWindow reports whether the query's time bounds overlap the
// archived window.
func (q Query) OverlapsWindow(s Segment) bool {
	if !q.From.IsZero() && !s.End.After(q.From) {
		return false
	}
	if !q.To.IsZero() && !s.Start.Before(q.To) {
		return false
	}
	return true
}

// MatchRow reports whether row i of f satisfies every set bound — the
// exact row-level test behind the summary pruning.
func (q Query) MatchRow(f *flow.Frame, i int) bool {
	if !q.From.IsZero() && f.StartNanos(i) < q.From.UnixNano() {
		return false
	}
	if !q.To.IsZero() && f.StartNanos(i) >= q.To.UnixNano() {
		return false
	}
	if q.Pair != nil && flow.MakePair(f.Src(i), f.Dst(i)) != *q.Pair {
		return false
	}
	if q.Switch != nil {
		found := false
		for _, sw := range f.Switches(i) {
			if sw == *q.Switch {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// encodeStoreManifest serializes the manifest; the layout is documented at
// the top of this file.
func encodeStoreManifest(meta Meta, anchor int64, next int, segs []StoreSegment) []byte {
	n := storeHeaderSize + storeTrailerSize
	for i := range segs {
		n += storeEntryFixed + 8*len(segs[i].Pairs) + 8*len(segs[i].Switches)
	}
	b := make([]byte, 0, n)
	b = append(b, storeMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, 0)
	b = binary.LittleEndian.AppendUint64(b, uint64(meta.Width))
	b = binary.LittleEndian.AppendUint64(b, uint64(meta.Hop))
	b = binary.LittleEndian.AppendUint64(b, uint64(meta.Lateness))
	b = binary.LittleEndian.AppendUint64(b, uint64(anchor))
	b = binary.LittleEndian.AppendUint32(b, uint32(next))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(segs)))
	for i := range segs {
		s := &segs[i]
		b = binary.LittleEndian.AppendUint32(b, uint32(s.Index))
		b = binary.LittleEndian.AppendUint32(b, uint32(s.Windows))
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(s.FirstSeq)))
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(s.LastSeq)))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.MinStart.UnixNano()))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.MaxEnd.UnixNano()))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Bytes))
		var flags byte
		if s.PairOverflow {
			flags |= sumFlagPairOver
		}
		if s.SwitchOverflow {
			flags |= sumFlagSwitchOver
		}
		b = append(b, flags, 0, 0, 0)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Pairs)))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Switches)))
		for _, k := range s.Pairs {
			b = binary.LittleEndian.AppendUint64(b, k)
		}
		for _, k := range s.Switches {
			b = binary.LittleEndian.AppendUint64(b, k)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// decodeStoreManifest parses and validates a manifest strictly; every
// accepted input re-encodes to the identical bytes.
func decodeStoreManifest(b []byte) (meta Meta, anchor int64, next int, segs []StoreSegment, err error) {
	fail := func(format string, args ...any) (Meta, int64, int, []StoreSegment, error) {
		return Meta{}, 0, 0, nil, fmt.Errorf("archive: store manifest: "+format, args...)
	}
	if len(b) < storeHeaderSize+storeTrailerSize {
		return fail("%d bytes is too small", len(b))
	}
	if [4]byte(b[:4]) != storeMagic {
		return fail("bad magic %q", b[:4])
	}
	if flags := binary.LittleEndian.Uint32(b[4:]); flags != 0 {
		return fail("unknown flags %#x", flags)
	}
	payload, tail := b[:len(b)-storeTrailerSize], b[len(b)-storeTrailerSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(tail); got != want {
		return fail("checksum mismatch: file %08x, computed %08x", want, got)
	}
	meta = Meta{
		Width:    time.Duration(binary.LittleEndian.Uint64(b[8:])),
		Hop:      time.Duration(binary.LittleEndian.Uint64(b[16:])),
		Lateness: time.Duration(binary.LittleEndian.Uint64(b[24:])),
	}
	if meta.Width <= 0 || meta.Hop <= 0 || meta.Hop > meta.Width || meta.Lateness < 0 {
		return fail("invalid window geometry %+v", meta)
	}
	anchor = int64(binary.LittleEndian.Uint64(b[32:]))
	next = int(binary.LittleEndian.Uint32(b[40:]))
	count := int(binary.LittleEndian.Uint32(b[44:]))
	if next < 1 {
		return fail("next segment index %d below 1", next)
	}
	if count > maxStoreSegments {
		return fail("entry count %d exceeds limit %d", count, maxStoreSegments)
	}
	rest := payload[storeHeaderSize:]
	segs = make([]StoreSegment, 0, min(count, len(rest)/storeEntryFixed+1))
	for e := 0; e < count; e++ {
		if len(rest) < storeEntryFixed {
			return fail("truncated entry %d", e)
		}
		s := StoreSegment{
			Index:    int(binary.LittleEndian.Uint32(rest[0:])),
			Windows:  int(binary.LittleEndian.Uint32(rest[4:])),
			FirstSeq: int(int64(binary.LittleEndian.Uint64(rest[8:]))),
			LastSeq:  int(int64(binary.LittleEndian.Uint64(rest[16:]))),
			MinStart: time.Unix(0, int64(binary.LittleEndian.Uint64(rest[24:]))).UTC(),
			MaxEnd:   time.Unix(0, int64(binary.LittleEndian.Uint64(rest[32:]))).UTC(),
			Bytes:    int64(binary.LittleEndian.Uint64(rest[40:])),
		}
		flags := rest[48]
		if flags&^byte(sumFlagPairOver|sumFlagSwitchOver) != 0 {
			return fail("entry %d: unknown summary flags %#x", e, flags)
		}
		if rest[49] != 0 || rest[50] != 0 || rest[51] != 0 {
			return fail("entry %d: nonzero padding", e)
		}
		s.PairOverflow = flags&sumFlagPairOver != 0
		s.SwitchOverflow = flags&sumFlagSwitchOver != 0
		pairCount := int(binary.LittleEndian.Uint32(rest[52:]))
		switchCount := int(binary.LittleEndian.Uint32(rest[56:]))
		rest = rest[storeEntryFixed:]
		switch {
		case s.Index < 1:
			return fail("entry %d: segment index %d below 1", e, s.Index)
		case len(segs) > 0 && s.Index <= segs[len(segs)-1].Index:
			return fail("entry %d: segment index %d not after previous %d", e, s.Index, segs[len(segs)-1].Index)
		case s.Windows < 1:
			return fail("entry %d: empty segment", e)
		case s.FirstSeq < 0 || s.LastSeq-s.FirstSeq+1 != s.Windows:
			return fail("entry %d: seq range %d..%d inconsistent with %d windows", e, s.FirstSeq, s.LastSeq, s.Windows)
		case len(segs) > 0 && s.FirstSeq != segs[len(segs)-1].LastSeq+1:
			return fail("entry %d: seq %d not contiguous with previous segment's %d", e, s.FirstSeq, segs[len(segs)-1].LastSeq)
		case !s.MinStart.Before(s.MaxEnd):
			return fail("entry %d: empty event-time range", e)
		case s.Bytes < int64(headerSize+trailerSize):
			return fail("entry %d: implausible segment size %d", e, s.Bytes)
		case s.PairOverflow && pairCount != 0, s.SwitchOverflow && switchCount != 0:
			return fail("entry %d: overflowed summary carries keys", e)
		case pairCount > MaxStoreSummary || switchCount > MaxStoreSummary:
			return fail("entry %d: summary counts %d/%d exceed limit %d", e, pairCount, switchCount, MaxStoreSummary)
		}
		if len(rest) < 8*(pairCount+switchCount) {
			return fail("entry %d: truncated summaries", e)
		}
		s.Pairs, rest, err = decodeKeys(rest, pairCount, e, "pair")
		if err != nil {
			return fail("%v", err)
		}
		for _, k := range s.Pairs {
			if k>>32 > k&0xffffffff {
				return fail("entry %d: non-canonical pair key %#x", e, k)
			}
		}
		s.Switches, rest, err = decodeKeys(rest, switchCount, e, "switch")
		if err != nil {
			return fail("%v", err)
		}
		segs = append(segs, s)
	}
	if len(rest) != 0 {
		return fail("%d trailing bytes after %d entries", len(rest), count)
	}
	if len(segs) > 0 && next <= segs[len(segs)-1].Index {
		return fail("next segment index %d not past last entry's %d", next, segs[len(segs)-1].Index)
	}
	return meta, anchor, next, segs, nil
}

func decodeKeys(b []byte, n, entry int, kind string) ([]uint64, []byte, error) {
	if n == 0 {
		return nil, b, nil
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(b[8*i:])
		if i > 0 && keys[i] <= keys[i-1] {
			return nil, nil, fmt.Errorf("entry %d: %s summary not sorted-distinct", entry, kind)
		}
	}
	return keys, b[8*n:], nil
}

// ReadStoreManifest reads and strictly decodes a store directory's
// manifest, without checking the segment files behind it — the cheap
// metadata view the daemon's query surface serves while a writer is live
// (the manifest only ever describes finalized segments).
func ReadStoreManifest(dir string) (Meta, time.Time, []StoreSegment, error) {
	b, err := os.ReadFile(filepath.Join(dir, StoreManifestName))
	if err != nil {
		return Meta{}, time.Time{}, nil, err
	}
	meta, anchor, _, segs, err := decodeStoreManifest(b)
	if err != nil {
		return Meta{}, time.Time{}, nil, err
	}
	return meta, nanosTime(anchor), segs, nil
}

func nanosTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}
