package archive

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// RecoveryReport describes what a salvage scan kept and what it discarded.
type RecoveryReport struct {
	// Clean is true when the archive opened strictly (valid manifest and
	// trailer) and no salvage was needed.
	Clean bool
	// Segments is the number of intact prefix segments salvaged (or, when
	// Clean, the number of manifested segments).
	Segments int
	// SalvagedBytes is the length of the valid prefix, including the
	// 32-byte header. LostBytes is the discarded tail; the two sum to the
	// file size.
	SalvagedBytes, LostBytes int64
	// Reason says why the scan stopped (empty when Clean, "end of data"
	// when the file ends exactly on a segment boundary with no trailer).
	Reason string
	// Anchor is the replay grid origin: the recorded trailer anchor when
	// Clean, otherwise reconstructed from the first salvaged segment's
	// window start (which lies on the original grid). Zero when nothing
	// was salvaged or the capture is unwindowed.
	Anchor time.Time
}

func (rep *RecoveryReport) String() string {
	if rep.Clean {
		return fmt.Sprintf("archive clean: %d segments, %d bytes", rep.Segments, rep.SalvagedBytes)
	}
	return fmt.Sprintf("archive recovered: %d segments salvaged (%d bytes), %d bytes discarded: %s",
		rep.Segments, rep.SalvagedBytes, rep.LostBytes, rep.Reason)
}

// Recover salvages the intact prefix of an unclosed or torn archive. It
// validates the header strictly, then scans segments front to back; each
// segment must carry a plausible header (seq strictly increasing, blob
// length within the file), its blob must begin with the frame magic and
// decode with a valid checksum, and the decoded row count must match the
// segment header. The scan stops at the first violation — everything
// before it is trustworthy, everything after is discarded — and the
// rebuilt manifest is returned as a Reader alongside a report of what was
// lost. Only a corrupt header is an error; a file holding zero intact
// segments recovers to an empty reader.
func Recover(r io.ReaderAt, size int64) (*Reader, *RecoveryReport, error) {
	if size < headerSize {
		return nil, nil, fmt.Errorf("archive: %d bytes is too small for an archive header", size)
	}
	hdr := make([]byte, headerSize)
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, nil, fmt.Errorf("archive: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != headerMagic {
		return nil, nil, fmt.Errorf("archive: bad magic %q", hdr[:4])
	}
	meta := Meta{
		Width:    time.Duration(binary.LittleEndian.Uint64(hdr[8:])),
		Hop:      time.Duration(binary.LittleEndian.Uint64(hdr[16:])),
		Lateness: time.Duration(binary.LittleEndian.Uint64(hdr[24:])),
	}
	if meta.Width < 0 || meta.Hop < 0 || meta.Lateness < 0 {
		return nil, nil, fmt.Errorf("archive: negative window geometry in header")
	}

	var (
		segs    []Segment
		off     = int64(headerSize)
		lastSeq = int64(math.MinInt64)
		reason  = "end of data"
	)
	var sh [segHeaderSize]byte
scan:
	for {
		if size-off < segHeaderSize {
			if off != size {
				reason = fmt.Sprintf("truncated segment header at offset %d", off)
			}
			break
		}
		if _, err := r.ReadAt(sh[:], off); err != nil {
			reason = fmt.Sprintf("read segment header at offset %d: %v", off, err)
			break
		}
		seq := int64(binary.LittleEndian.Uint64(sh[0:]))
		start := int64(binary.LittleEndian.Uint64(sh[8:]))
		end := int64(binary.LittleEndian.Uint64(sh[16:]))
		rows := int64(binary.LittleEndian.Uint32(sh[24:]))
		frameLen := int64(binary.LittleEndian.Uint64(sh[32:]))
		switch {
		case seq <= lastSeq:
			// Also what a manifest entry or trailer parses as after the
			// last segment of a cleanly closed file: the scan stops there
			// rather than misreading bookkeeping bytes as a segment.
			reason = fmt.Sprintf("segment seq %d not after previous at offset %d", seq, off)
			break scan
		case frameLen < int64(flow.FrameOverhead):
			reason = fmt.Sprintf("implausible frame length %d at offset %d", frameLen, off)
			break scan
		case frameLen > size-off-segHeaderSize:
			reason = fmt.Sprintf("segment at offset %d claims %d frame bytes, only %d remain", off, frameLen, size-off-segHeaderSize)
			break scan
		}
		var magic [4]byte
		if _, err := r.ReadAt(magic[:], off+segHeaderSize); err != nil || magic != flow.FrameMagic {
			reason = fmt.Sprintf("segment at offset %d does not hold a frame blob", off)
			break
		}
		f, err := flow.ReadFrame(io.NewSectionReader(r, off+segHeaderSize, frameLen))
		if err != nil {
			reason = fmt.Sprintf("segment at offset %d: %v", off, err)
			break
		}
		if int64(f.Len()) != rows {
			reason = fmt.Sprintf("segment at offset %d holds %d rows, header says %d", off, f.Len(), rows)
			break
		}
		segs = append(segs, Segment{
			Seq:    int(seq),
			Start:  time.Unix(0, start).UTC(),
			End:    time.Unix(0, end).UTC(),
			Rows:   int(rows),
			offset: off + segHeaderSize,
			length: frameLen,
		})
		lastSeq = seq
		off += segHeaderSize + frameLen
	}

	rep := &RecoveryReport{
		Segments:      len(segs),
		SalvagedBytes: off,
		LostBytes:     size - off,
		Reason:        reason,
	}
	// The trailer's anchor went down with the tail; the first salvaged
	// window's start is on the same grid (anchor + k·hop), which is all a
	// replayed monitor needs to lay windows identically.
	if len(segs) > 0 && meta.Width > 0 {
		rep.Anchor = segs[0].Start
	}
	sort.SliceStable(segs, func(i, j int) bool {
		if !segs[i].Start.Equal(segs[j].Start) {
			return segs[i].Start.Before(segs[j].Start)
		}
		return segs[i].Seq < segs[j].Seq
	})
	return &Reader{r: r, meta: meta, anchor: rep.Anchor, segs: segs}, rep, nil
}

// OpenReaderRecovering opens an archive leniently: a strict OpenReader
// first, and on any manifest/trailer failure a Recover salvage scan. The
// report says which path was taken and, for a salvage, what was lost.
func OpenReaderRecovering(r io.ReaderAt, size int64) (*Reader, *RecoveryReport, error) {
	if ar, err := OpenReader(r, size); err == nil {
		return ar, &RecoveryReport{
			Clean:         true,
			Segments:      ar.NumSegments(),
			SalvagedBytes: size,
			Anchor:        ar.Anchor(),
		}, nil
	}
	return Recover(r, size)
}
