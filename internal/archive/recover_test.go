package archive

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// segmentBoundaries returns the file offset just past each segment of the
// test archive (boundary[0] is the header end, boundary[k] the end of
// segment k-1), plus the manifest offset.
func segmentBoundaries(t *testing.T, data []byte) (bounds []int64, manifestOff int64) {
	t.Helper()
	ar, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	bounds = append(bounds, headerSize)
	for i := 0; i < ar.NumSegments(); i++ {
		s := ar.Segment(i)
		bounds = append(bounds, s.offset+s.length)
	}
	manifestOff = int64(binary.LittleEndian.Uint64(data[len(data)-trailerSize+8:]))
	return bounds, manifestOff
}

func recoverBytes(t *testing.T, b []byte) (*Reader, *RecoveryReport) {
	t.Helper()
	ar, rep, err := Recover(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return ar, rep
}

// assertSalvagedPrefix checks the recovered reader holds exactly the first
// k reference frames, bit-identical.
func assertSalvagedPrefix(t *testing.T, ar *Reader, frames []*flow.Frame, k int) {
	t.Helper()
	if ar.NumSegments() != k {
		t.Fatalf("salvaged %d segments, want %d", ar.NumSegments(), k)
	}
	for i := 0; i < k; i++ {
		got, err := ar.Frame(i)
		if err != nil {
			t.Fatalf("salvaged segment %d: %v", i, err)
		}
		if !reflect.DeepEqual(frames[i], got) {
			t.Errorf("salvaged segment %d differs from original", i)
		}
	}
}

func TestRecoverTruncationAtSegmentBoundaries(t *testing.T) {
	data, frames := writeTestArchive(t)
	bounds, _ := segmentBoundaries(t, data)
	for k := 0; k <= len(frames); k++ {
		b := data[:bounds[k]]
		ar, rep := recoverBytes(t, b)
		assertSalvagedPrefix(t, ar, frames, k)
		if rep.Clean {
			t.Errorf("k=%d: reported clean", k)
		}
		if rep.Segments != k || rep.SalvagedBytes != bounds[k] || rep.LostBytes != 0 {
			t.Errorf("k=%d: report %+v", k, rep)
		}
		if k > 0 {
			// The trailer anchor is gone; the first salvaged window start
			// stands in for it (same grid).
			if !rep.Anchor.Equal(epoch) || !ar.Anchor().Equal(epoch) {
				t.Errorf("k=%d: anchor %v, want %v", k, rep.Anchor, epoch)
			}
		} else if !rep.Anchor.IsZero() {
			t.Errorf("k=0: anchor %v from nothing", rep.Anchor)
		}
	}
}

func TestRecoverTruncationMidStructure(t *testing.T) {
	data, frames := writeTestArchive(t)
	bounds, manifestOff := segmentBoundaries(t, data)
	cases := []struct {
		name   string
		cut    int64
		want   int // salvaged segments
		reason string
	}{
		{"mid segment header", bounds[1] + 10, 1, "truncated segment header"},
		{"mid frame blob", bounds[1] + segHeaderSize + 5, 1, "only"},
		{"one byte short of boundary", bounds[2] - 1, 1, "only"},
		{"early in manifest", manifestOff + 10, 4, "truncated segment header"},
		{"mid manifest", manifestOff + manifestedSize + 10, 4, "seq"},
		{"mid trailer", int64(len(data)) - trailerSize/2, 4, "seq"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := data[:tc.cut]
			if _, err := OpenReader(bytes.NewReader(b), int64(len(b))); err == nil {
				t.Fatal("strict open accepted a truncated archive")
			}
			ar, rep := recoverBytes(t, b)
			assertSalvagedPrefix(t, ar, frames, tc.want)
			if rep.LostBytes != tc.cut-rep.SalvagedBytes {
				t.Errorf("lost %d bytes, want %d", rep.LostBytes, tc.cut-rep.SalvagedBytes)
			}
			if !strings.Contains(rep.Reason, tc.reason) {
				t.Errorf("reason %q does not mention %q", rep.Reason, tc.reason)
			}
		})
	}
}

func TestRecoverCorruptSegment(t *testing.T) {
	data, frames := writeTestArchive(t)
	bounds, _ := segmentBoundaries(t, data)

	t.Run("bit-flipped frame byte", func(t *testing.T) {
		b := append([]byte(nil), data[:bounds[3]]...)
		b[bounds[1]+segHeaderSize+20] ^= 0x04 // inside segment 1's blob
		ar, rep := recoverBytes(t, b)
		assertSalvagedPrefix(t, ar, frames, 1)
		if !strings.Contains(rep.Reason, "offset") {
			t.Errorf("reason %q names no offset", rep.Reason)
		}
	})
	t.Run("frame magic clobbered", func(t *testing.T) {
		b := append([]byte(nil), data[:bounds[2]]...)
		b[bounds[1]+segHeaderSize] = 'X'
		ar, rep := recoverBytes(t, b)
		assertSalvagedPrefix(t, ar, frames, 1)
		if !strings.Contains(rep.Reason, "frame blob") {
			t.Errorf("reason = %q", rep.Reason)
		}
	})
	t.Run("row count mismatch", func(t *testing.T) {
		b := append([]byte(nil), data[:bounds[2]]...)
		binary.LittleEndian.PutUint32(b[bounds[1]+24:], 7) // segment 1 claims 7 rows
		ar, rep := recoverBytes(t, b)
		assertSalvagedPrefix(t, ar, frames, 1)
		if !strings.Contains(rep.Reason, "rows") {
			t.Errorf("reason = %q", rep.Reason)
		}
	})
	t.Run("absurd frame length", func(t *testing.T) {
		b := append([]byte(nil), data[:bounds[2]]...)
		binary.LittleEndian.PutUint64(b[bounds[1]+32:], 1<<60)
		ar, rep := recoverBytes(t, b)
		assertSalvagedPrefix(t, ar, frames, 1)
		if !strings.Contains(rep.Reason, "remain") {
			t.Errorf("reason = %q", rep.Reason)
		}
	})
}

func TestRecoverRejectsBadHeader(t *testing.T) {
	data, _ := writeTestArchive(t)
	if _, _, err := Recover(bytes.NewReader(data[:20]), 20); err == nil {
		t.Error("truncated header recovered")
	}
	b := append([]byte(nil), data...)
	b[0] = 'X'
	if _, _, err := Recover(bytes.NewReader(b), int64(len(b))); err == nil {
		t.Error("bad magic recovered")
	}
}

func TestRecoverHeaderOnly(t *testing.T) {
	data, _ := writeTestArchive(t)
	ar, rep := recoverBytes(t, data[:headerSize])
	if ar.NumSegments() != 0 || rep.Segments != 0 || rep.LostBytes != 0 {
		t.Errorf("header-only salvage: %d segments, report %+v", ar.NumSegments(), rep)
	}
	if rep.Reason != "end of data" {
		t.Errorf("reason = %q", rep.Reason)
	}
}

func TestOpenReaderRecovering(t *testing.T) {
	data, frames := writeTestArchive(t)
	bounds, _ := segmentBoundaries(t, data)

	t.Run("clean archive takes the strict path", func(t *testing.T) {
		ar, rep, err := OpenReaderRecovering(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean || rep.Segments != len(frames) || rep.SalvagedBytes != int64(len(data)) || rep.LostBytes != 0 {
			t.Errorf("report %+v", rep)
		}
		if !ar.Anchor().Equal(epoch) {
			t.Errorf("anchor = %v", ar.Anchor())
		}
		assertSalvagedPrefix(t, ar, frames, len(frames))
	})
	t.Run("manifest offset past EOF falls back to salvage", func(t *testing.T) {
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(b[len(b)-trailerSize+8:], uint64(len(b)+4096))
		if _, err := OpenReader(bytes.NewReader(b), int64(len(b))); err == nil {
			t.Fatal("strict open accepted manifest offset past EOF")
		}
		ar, rep, err := OpenReaderRecovering(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean {
			t.Error("reported clean")
		}
		assertSalvagedPrefix(t, ar, frames, len(frames))
	})
	t.Run("torn tail falls back to salvage", func(t *testing.T) {
		b := data[:bounds[2]+segHeaderSize+9]
		ar, rep, err := OpenReaderRecovering(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean || rep.Segments != 2 {
			t.Errorf("report %+v", rep)
		}
		assertSalvagedPrefix(t, ar, frames, 2)
	})
}

// FuzzRecover holds recovery to the strict-decoder bar: arbitrary bytes
// either fail with an error or salvage a reader whose every frame decodes,
// and the byte accounting always balances.
func FuzzRecover(f *testing.F) {
	data := func() []byte {
		var buf bytes.Buffer
		aw, err := NewWriter(&buf, Meta{Width: 10 * time.Second, Hop: 10 * time.Second, Lateness: 2 * time.Second})
		if err != nil {
			f.Fatal(err)
		}
		for seq := 0; seq < 3; seq++ {
			start := epoch.Add(time.Duration(seq) * 10 * time.Second)
			fr := flow.NewFrame(windowRecords(int64(seq+1), 8, time.Duration(seq)*10*time.Second))
			if err := aw.Append(seq, start, start.Add(10*time.Second), fr); err != nil {
				f.Fatal(err)
			}
		}
		aw.SetAnchor(epoch)
		if err := aw.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add(data[:headerSize])
	f.Add([]byte("LPA1"))
	f.Fuzz(func(t *testing.T, b []byte) {
		ar, rep, err := Recover(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			return
		}
		if rep.SalvagedBytes+rep.LostBytes != int64(len(b)) {
			t.Fatalf("bytes do not balance: %d + %d != %d", rep.SalvagedBytes, rep.LostBytes, len(b))
		}
		if rep.Segments != ar.NumSegments() {
			t.Fatalf("report says %d segments, reader holds %d", rep.Segments, ar.NumSegments())
		}
		for i := 0; i < ar.NumSegments(); i++ {
			if _, err := ar.Frame(i); err != nil {
				t.Fatalf("salvaged segment %d does not decode: %v", i, err)
			}
		}
	})
}
