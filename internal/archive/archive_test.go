package archive

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

var errDiskFull = errors.New("disk full")

func windowRecords(seed int64, n int, base time.Duration) []flow.Record {
	rng := rand.New(rand.NewSource(seed))
	records := make([]flow.Record, n)
	for i := range records {
		var switches []flow.SwitchID
		for k := 0; k < rng.Intn(4); k++ {
			switches = append(switches, flow.SwitchID(rng.Intn(64)))
		}
		records[i] = flow.Record{
			ID:       uint64(seed)<<20 + uint64(i+1),
			Start:    epoch.Add(base + time.Duration(rng.Int63n(int64(10*time.Second)))),
			Duration: time.Duration(rng.Int63n(int64(time.Second))),
			Src:      flow.Addr(rng.Intn(1 << 10)),
			Dst:      flow.Addr(rng.Intn(1 << 10)),
			Bytes:    rng.Int63n(1 << 30),
			Switches: switches,
		}
	}
	return records
}

// writeTestArchive builds a 4-window archive (window 2 deliberately empty)
// and returns its bytes plus the frames written.
func writeTestArchive(t *testing.T) ([]byte, []*flow.Frame) {
	t.Helper()
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, Meta{Width: 10 * time.Second, Hop: 10 * time.Second, Lateness: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var frames []*flow.Frame
	for seq := 0; seq < 4; seq++ {
		var f *flow.Frame
		if seq == 2 {
			f = flow.NewFrame(nil)
		} else {
			f = flow.NewFrame(windowRecords(int64(seq+1), 50, time.Duration(seq)*10*time.Second))
		}
		start := epoch.Add(time.Duration(seq) * 10 * time.Second)
		if err := aw.Append(seq, start, start.Add(10*time.Second), f); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	aw.SetAnchor(epoch)
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), frames
}

func TestArchiveRoundTrip(t *testing.T) {
	data, frames := writeTestArchive(t)
	ar, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got := ar.Meta(); got.Width != 10*time.Second || got.Hop != 10*time.Second || got.Lateness != 2*time.Second {
		t.Errorf("meta = %+v", got)
	}
	if !ar.Anchor().Equal(epoch) {
		t.Errorf("anchor = %v, want %v", ar.Anchor(), epoch)
	}
	if ar.NumSegments() != len(frames) {
		t.Fatalf("segments = %d, want %d", ar.NumSegments(), len(frames))
	}
	for i := range frames {
		seg := ar.Segment(i)
		if seg.Seq != i || seg.Rows != frames[i].Len() {
			t.Errorf("segment %d = %+v, want seq %d rows %d", i, seg, i, frames[i].Len())
		}
		wantStart := epoch.Add(time.Duration(i) * 10 * time.Second)
		if !seg.Start.Equal(wantStart) || !seg.End.Equal(wantStart.Add(10*time.Second)) {
			t.Errorf("segment %d bounds = [%v, %v)", i, seg.Start, seg.End)
		}
		got, err := ar.Frame(i)
		if err != nil {
			t.Fatal(err)
		}
		// Bit-identical: columns, path table and indexes all survive.
		if !reflect.DeepEqual(frames[i], got) {
			t.Errorf("segment %d frame differs after round trip", i)
		}
	}
}

func TestArchiveReplayOrder(t *testing.T) {
	data, frames := writeTestArchive(t)
	ar, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int
	var rows int
	if err := ar.Replay(func(s Segment, f *flow.Frame) error {
		seqs = append(seqs, s.Seq)
		rows += f.Len()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, []int{0, 1, 2, 3}) {
		t.Errorf("replay order = %v", seqs)
	}
	want := 0
	for _, f := range frames {
		want += f.Len()
	}
	if rows != want {
		t.Errorf("replayed rows = %d, want %d", rows, want)
	}
}

func TestArchiveRejectsUnclosed(t *testing.T) {
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, Meta{Width: time.Second, Hop: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Append(0, epoch, epoch.Add(time.Second), flow.NewFrame(windowRecords(1, 10, 0))); err != nil {
		t.Fatal(err)
	}
	// No Close: the manifest is missing and the archive must not open.
	if _, err := OpenReader(bytes.NewReader(buf.Bytes()), int64(buf.Len())); err == nil {
		t.Error("unclosed archive opened")
	}
}

func TestArchiveRejectsCorruption(t *testing.T) {
	data, _ := writeTestArchive(t)
	open := func(b []byte) error {
		_, err := OpenReader(bytes.NewReader(b), int64(len(b)))
		return err
	}
	t.Run("bad header magic", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[0] = 'X'
		if open(b) == nil {
			t.Error("accepted")
		}
	})
	t.Run("manifest bit flip", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[len(b)-trailerSize-10] ^= 0x01
		if open(b) == nil {
			t.Error("accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if open(data[:len(data)/2]) == nil {
			t.Error("accepted")
		}
	})
	t.Run("segment blob bit flip fails at Frame", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[headerSize+segHeaderSize+20] ^= 0x10
		ar, err := OpenReader(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			t.Fatalf("manifest untouched, open should succeed: %v", err)
		}
		if _, err := ar.Frame(0); err == nil {
			t.Error("corrupt segment frame decoded")
		}
	})
}

func TestWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, Meta{Width: time.Second, Hop: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	f := flow.NewFrame(nil)
	if err := aw.Append(3, epoch, epoch.Add(time.Second), f); err != nil {
		t.Fatal(err)
	}
	if err := aw.Append(3, epoch, epoch.Add(time.Second), f); err == nil {
		t.Error("non-increasing seq accepted")
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := aw.Append(4, epoch, epoch.Add(time.Second), f); err == nil {
		t.Error("append after Close accepted")
	}
	sealed := buf.Len()
	if err := aw.Close(); err != nil {
		t.Errorf("second Close after success = %v, want nil", err)
	}
	if buf.Len() != sealed {
		t.Errorf("second Close wrote %d bytes", buf.Len()-sealed)
	}
	if _, err := NewWriter(&buf, Meta{Width: -time.Second}); err == nil {
		t.Error("negative width accepted")
	}
}

// failAfterWriter fails every write once n bytes have been accepted.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriterCloseStickyOnError(t *testing.T) {
	sink := &failAfterWriter{n: headerSize + segHeaderSize + 10, err: errDiskFull}
	aw, err := NewWriter(sink, Meta{Width: time.Second, Hop: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	f := flow.NewFrame(windowRecords(1, 10, 0))
	if err := aw.Append(0, epoch, epoch.Add(time.Second), f); err == nil {
		t.Fatal("append over a full disk succeeded")
	}
	first := aw.Close()
	if first == nil {
		t.Fatal("Close after failed write reported success")
	}
	// Idempotent and sticky: the second Close reports the same failure and
	// writes nothing — in particular no trailer that would make the torn
	// file look cleanly closed.
	if second := aw.Close(); second != first {
		t.Errorf("second Close = %v, want latched %v", second, first)
	}
}

func TestArchiveEmpty(t *testing.T) {
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	ar, err := OpenReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if ar.NumSegments() != 0 || !ar.Anchor().IsZero() || ar.Meta() != (Meta{}) {
		t.Errorf("empty archive: %d segments, anchor %v, meta %+v", ar.NumSegments(), ar.Anchor(), ar.Meta())
	}
}
