// Package archive implements the binary trace archive: a segmented,
// append-only container of flow.Frame snapshots with a manifest that lets a
// recorded monitor session be reopened and replayed deterministically.
//
// # Why a binary archive
//
// LLMPrism's diagnoses are only as trustworthy as the persisted traces they
// are recomputed from; the CSV/JSONL record codecs pay text parsing plus a
// full columnar rebuild (sort + path interning) on every load. An archive
// instead stores each monitor window's already-built frame in the binary
// columnar layout of flow.Frame.WriteTo — the interned path table written
// once per segment rather than once per row — so reopening a trace is a
// validated column copy. Replaying an archive through the streaming monitor
// reproduces the original reports bit for bit.
//
// # File layout
//
// All integers are little-endian. A version-1 archive is:
//
//	header (32 bytes):
//	  magic "LPA1" | flags u32 (0) | width i64 | hop i64 | lateness i64
//	segments (back to back, one per archived window):
//	  seq i64 | start i64 | end i64 | rows u32 | reserved u32 | frameLen u64
//	  frame bytes (flow.Frame binary layout, self-checksummed)
//	manifest (written by Close, one 48-byte entry per segment):
//	  seq i64 | start i64 | end i64 | rows u32 | reserved u32 |
//	  offset u64 | frameLen u64
//	trailer (32 bytes):
//	  anchor i64 | manifestOff u64 | segments u32 | manifestCRC u32 |
//	  reserved u32 | magic "LPAX"
//
// The header's width/hop/lateness record the monitor configuration the
// trace was windowed with (zero width marks an unwindowed capture, e.g. a
// collector dump); the trailer's anchor records the event-time grid origin
// so a replayed session lays its windows on exactly the original grid —
// including windows before the anchor that out-of-order stragglers opened.
// The magic carries the version digit; an incompatible layout bumps it.
//
// # Durability and recovery
//
// Segments are self-contained and self-checksummed: each frame blob
// carries its own CRC, the manifest carries one over its entries, and the
// reader verifies both plus every manifest offset before use. A truncated
// or bit-flipped archive fails to open loudly instead of replaying a
// silently different trace.
//
// Strict rejection is the right default for a file that claims to be
// complete, but captures cut off mid-write (a crashed recorder, a full
// disk, a copied-while-writing file) are the production norm, and their
// intact prefix is still trustworthy: every fully-written segment carries
// its own checksum. Recover rebuilds the manifest by scanning segments
// front to back — each segment header is sanity-checked, its frame blob
// must begin with the LPF1 magic and decode with a valid CRC, and segment
// seqs must increase — salvaging the longest valid prefix and reporting
// exactly where and why the scan stopped plus how many tail bytes were
// discarded. The trailer (and with it the recorded grid anchor) is lost on
// an unclosed archive; the salvage reconstructs the replay anchor from the
// first salvaged segment's start time, which lies on the original grid
// (every emitted window start is the anchor plus a whole number of hops),
// so a recovered prefix replays bit-identical to the same windows of the
// uninterrupted session. OpenReaderRecovering is the lenient entry point:
// strict open first, salvage scan on failure.
package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

var (
	headerMagic  = [4]byte{'L', 'P', 'A', '1'}
	trailerMagic = [4]byte{'L', 'P', 'A', 'X'}
)

const (
	headerSize     = 4 + 4 + 8 + 8 + 8
	segHeaderSize  = 8 + 8 + 8 + 4 + 4 + 8
	manifestedSize = 8 + 8 + 8 + 4 + 4 + 8 + 8
	trailerSize    = 8 + 8 + 4 + 4 + 4 + 4
)

// Meta is the monitor configuration a trace was windowed with. Zero Width
// marks an unwindowed capture (a collector dump that has not been through
// the monitor grid).
type Meta struct {
	// Width, Hop and Lateness mirror the recording monitor's window
	// geometry; replay reconstructs a monitor from them.
	Width, Hop, Lateness time.Duration
}

// Segment locates one archived window.
type Segment struct {
	// Seq is the window's emission index in the recorded session.
	Seq int
	// Start and End bound the window: records with Start in [Start, End).
	Start, End time.Time
	// Rows is the number of flow records the window held (0 for an empty
	// window, archived to keep sequence numbers aligned).
	Rows int

	offset int64
	length int64
}

// Writer appends segments to an archive. Construct with NewWriter, append
// one segment per window in emission order, then Close to persist the
// manifest; an unclosed archive has no manifest and will not open.
type Writer struct {
	w      io.Writer
	n      int64
	segs   []Segment
	anchor int64
	closed bool
	err    error
}

// NewWriter writes the archive header and returns a writer appending to w.
// The caller keeps ownership of w (and closes any underlying file after
// Close).
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	if meta.Width < 0 || meta.Hop < 0 || meta.Lateness < 0 {
		return nil, fmt.Errorf("archive: negative window geometry %+v", meta)
	}
	hdr := make([]byte, headerSize)
	copy(hdr, headerMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(meta.Width))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(meta.Hop))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(meta.Lateness))
	aw := &Writer{w: w}
	if err := aw.write(hdr); err != nil {
		return nil, err
	}
	return aw, nil
}

func (aw *Writer) write(p []byte) error {
	if aw.err != nil {
		return aw.err
	}
	n, err := aw.w.Write(p)
	aw.n += int64(n)
	if err != nil {
		aw.err = fmt.Errorf("archive: write: %w", err)
	}
	return aw.err
}

// Append archives one window's frame. Windows must be appended in emission
// (seq) order — the order MonitorStream releases them.
func (aw *Writer) Append(seq int, start, end time.Time, f *flow.Frame) error {
	if aw.err != nil {
		return aw.err
	}
	if aw.closed {
		return fmt.Errorf("archive: append to closed writer")
	}
	if n := len(aw.segs); n > 0 && seq <= aw.segs[n-1].Seq {
		return fmt.Errorf("archive: segment seq %d not after previous %d", seq, aw.segs[n-1].Seq)
	}
	hdrAt := aw.n
	frameLen := f.EncodedLen()
	hdr := make([]byte, segHeaderSize)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(int64(seq)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(start.UnixNano()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(end.UnixNano()))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(f.Len()))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(frameLen))
	if err := aw.write(hdr); err != nil {
		return err
	}
	// The encoded length is a closed-form function of the frame, so the
	// blob streams straight to the sink — no per-window buffering of the
	// serialized frame.
	wrote, err := f.WriteTo(sinkWriter{aw})
	if err != nil {
		if aw.err == nil {
			aw.err = err
		}
		return aw.err
	}
	if wrote != frameLen {
		aw.err = fmt.Errorf("archive: frame encoded %d bytes, EncodedLen said %d", wrote, frameLen)
		return aw.err
	}
	aw.segs = append(aw.segs, Segment{
		Seq:    seq,
		Start:  start.UTC(),
		End:    end.UTC(),
		Rows:   f.Len(),
		offset: hdrAt + segHeaderSize,
		length: frameLen,
	})
	return nil
}

// sinkWriter adapts the writer's error-latching write for Frame.WriteTo.
type sinkWriter struct{ aw *Writer }

func (s sinkWriter) Write(p []byte) (int, error) {
	if err := s.aw.write(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// SetAnchor records the event-time grid origin of the recorded session, so
// replay can pre-anchor its window grid instead of re-deriving it from the
// first replayed record (which diverges when a pre-anchor straggler window
// was archived first). The zero time means no anchor.
func (aw *Writer) SetAnchor(t time.Time) {
	if t.IsZero() {
		aw.anchor = 0
		return
	}
	aw.anchor = t.UnixNano()
}

// Segments returns how many segments have been appended.
func (aw *Writer) Segments() int { return len(aw.segs) }

// Bytes returns how many bytes have been written so far (header and
// appended segments; the manifest and trailer only after Close). The store
// layer's size-based rotation policy reads it.
func (aw *Writer) Bytes() int64 { return aw.n }

// Close writes the manifest and trailer. It does not close the underlying
// writer. A writer whose Close fails (or is never called) leaves an archive
// without a manifest, which OpenReader rejects and Recover salvages.
//
// Close is idempotent and sticky: the first call decides the outcome, and
// every later call returns that same outcome without writing anything —
// a writer that has latched an error never emits a trailer and never
// reports spurious success, and a successfully closed writer never emits
// a second trailer.
func (aw *Writer) Close() error {
	if aw.closed {
		return aw.err
	}
	aw.closed = true
	if aw.err != nil {
		return aw.err
	}
	manifestOff := aw.n
	manifest := make([]byte, 0, len(aw.segs)*manifestedSize)
	for _, s := range aw.segs {
		var e [manifestedSize]byte
		binary.LittleEndian.PutUint64(e[0:], uint64(int64(s.Seq)))
		binary.LittleEndian.PutUint64(e[8:], uint64(s.Start.UnixNano()))
		binary.LittleEndian.PutUint64(e[16:], uint64(s.End.UnixNano()))
		binary.LittleEndian.PutUint32(e[24:], uint32(s.Rows))
		binary.LittleEndian.PutUint64(e[32:], uint64(s.offset))
		binary.LittleEndian.PutUint64(e[40:], uint64(s.length))
		manifest = append(manifest, e[:]...)
	}
	if err := aw.write(manifest); err != nil {
		return err
	}
	trailer := make([]byte, trailerSize)
	binary.LittleEndian.PutUint64(trailer[0:], uint64(aw.anchor))
	binary.LittleEndian.PutUint64(trailer[8:], uint64(manifestOff))
	binary.LittleEndian.PutUint32(trailer[16:], uint32(len(aw.segs)))
	binary.LittleEndian.PutUint32(trailer[20:], crc32.ChecksumIEEE(manifest))
	copy(trailer[28:], trailerMagic[:])
	return aw.write(trailer)
}

// Reader reads an archive written by Writer. Construct with OpenReader.
type Reader struct {
	r      io.ReaderAt
	meta   Meta
	anchor time.Time
	segs   []Segment // event-time order: (Start, Seq)
}

// OpenReader parses and validates the archive's header, manifest and
// trailer. r must cover the whole archive (size bytes). Segments are
// exposed in event-time order — ascending (Start, Seq) — which is the
// order a deterministic replay pushes them.
func OpenReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size < headerSize+trailerSize {
		return nil, fmt.Errorf("archive: %d bytes is too small for an archive", size)
	}
	hdr := make([]byte, headerSize)
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("archive: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != headerMagic {
		return nil, fmt.Errorf("archive: bad magic %q", hdr[:4])
	}
	meta := Meta{
		Width:    time.Duration(binary.LittleEndian.Uint64(hdr[8:])),
		Hop:      time.Duration(binary.LittleEndian.Uint64(hdr[16:])),
		Lateness: time.Duration(binary.LittleEndian.Uint64(hdr[24:])),
	}
	if meta.Width < 0 || meta.Hop < 0 || meta.Lateness < 0 {
		return nil, fmt.Errorf("archive: negative window geometry in header")
	}

	trailer := make([]byte, trailerSize)
	if _, err := r.ReadAt(trailer, size-trailerSize); err != nil {
		return nil, fmt.Errorf("archive: read trailer: %w", err)
	}
	if [4]byte(trailer[28:]) != trailerMagic {
		return nil, fmt.Errorf("archive: missing trailer (archive not closed?)")
	}
	anchorNS := int64(binary.LittleEndian.Uint64(trailer[0:]))
	manifestOff := int64(binary.LittleEndian.Uint64(trailer[8:]))
	count := int64(binary.LittleEndian.Uint32(trailer[16:]))
	wantCRC := binary.LittleEndian.Uint32(trailer[20:])
	if manifestOff < headerSize || manifestOff+count*manifestedSize != size-trailerSize {
		return nil, fmt.Errorf("archive: manifest bounds [%d, %d) inconsistent with size %d", manifestOff, size-trailerSize, size)
	}
	manifest := make([]byte, count*manifestedSize)
	if _, err := r.ReadAt(manifest, manifestOff); err != nil {
		return nil, fmt.Errorf("archive: read manifest: %w", err)
	}
	if got := crc32.ChecksumIEEE(manifest); got != wantCRC {
		return nil, fmt.Errorf("archive: manifest checksum mismatch: file %08x, computed %08x", wantCRC, got)
	}
	segs := make([]Segment, count)
	for i := range segs {
		e := manifest[i*manifestedSize:]
		segs[i] = Segment{
			Seq:    int(int64(binary.LittleEndian.Uint64(e[0:]))),
			Start:  time.Unix(0, int64(binary.LittleEndian.Uint64(e[8:]))).UTC(),
			End:    time.Unix(0, int64(binary.LittleEndian.Uint64(e[16:]))).UTC(),
			Rows:   int(binary.LittleEndian.Uint32(e[24:])),
			offset: int64(binary.LittleEndian.Uint64(e[32:])),
			length: int64(binary.LittleEndian.Uint64(e[40:])),
		}
		s := &segs[i]
		if s.offset < headerSize+segHeaderSize || s.length < 0 || s.offset+s.length > manifestOff {
			return nil, fmt.Errorf("archive: segment %d blob [%d, %d) outside data region", i, s.offset, s.offset+s.length)
		}
		if i > 0 && s.Seq <= segs[i-1].Seq {
			return nil, fmt.Errorf("archive: segment seqs not increasing at %d", i)
		}
	}
	// Event-time order. Emission order already is event-time order for
	// tumbling and hopped grids alike (window k starts before window k+1),
	// so this is a stable identity in practice — but the manifest, not the
	// write order, is the contract.
	sort.SliceStable(segs, func(i, j int) bool {
		if !segs[i].Start.Equal(segs[j].Start) {
			return segs[i].Start.Before(segs[j].Start)
		}
		return segs[i].Seq < segs[j].Seq
	})
	var anchor time.Time
	if anchorNS != 0 {
		anchor = time.Unix(0, anchorNS).UTC()
	}
	return &Reader{r: r, meta: meta, anchor: anchor, segs: segs}, nil
}

// Meta returns the recorded monitor window geometry.
func (ar *Reader) Meta() Meta { return ar.meta }

// Anchor returns the recorded event-time grid origin (zero when the
// archive carries none, e.g. an unwindowed capture).
func (ar *Reader) Anchor() time.Time { return ar.anchor }

// NumSegments returns the number of archived windows.
func (ar *Reader) NumSegments() int { return len(ar.segs) }

// Segment returns the i-th segment in event-time order.
func (ar *Reader) Segment(i int) Segment { return ar.segs[i] }

// Frame decodes the i-th segment's frame. Every decode re-verifies the
// blob's checksum and invariants; the row count must match the manifest.
func (ar *Reader) Frame(i int) (*flow.Frame, error) {
	s := ar.segs[i]
	f, err := flow.ReadFrame(io.NewSectionReader(ar.r, s.offset, s.length))
	if err != nil {
		return nil, fmt.Errorf("archive: segment %d (window seq %d): %w", i, s.Seq, err)
	}
	if f.Len() != s.Rows {
		return nil, fmt.Errorf("archive: segment %d holds %d rows, manifest says %d", i, f.Len(), s.Rows)
	}
	return f, nil
}

// Replay decodes every segment in event-time order and hands it to fn,
// stopping at the first error. It is the deterministic replay source for
// the streaming monitor: pushing each frame's records in this order
// reproduces the recorded session's reports bit for bit.
func (ar *Reader) Replay(fn func(Segment, *flow.Frame) error) error {
	for i := range ar.segs {
		f, err := ar.Frame(i)
		if err != nil {
			return err
		}
		if err := fn(ar.segs[i], f); err != nil {
			return err
		}
	}
	return nil
}
