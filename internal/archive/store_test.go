package archive

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

var storeMeta = Meta{Width: 10 * time.Second, Hop: 10 * time.Second, Lateness: 2 * time.Second}

// storeWindows builds n sequential windows (window 2 empty, like the
// single-file fixtures) on the storeMeta grid.
type testWindow struct {
	seq        int
	start, end time.Time
	frame      *flow.Frame
}

func storeWindows(t *testing.T, n int) []testWindow {
	t.Helper()
	wins := make([]testWindow, n)
	for seq := 0; seq < n; seq++ {
		f := flow.NewFrame(nil)
		if seq != 2 {
			f = flow.NewFrame(windowRecords(int64(seq+1), 50, time.Duration(seq)*10*time.Second))
		}
		start := epoch.Add(time.Duration(seq) * 10 * time.Second)
		wins[seq] = testWindow{seq: seq, start: start, end: start.Add(10 * time.Second), frame: f}
	}
	return wins
}

// winDump is one replayed window reduced to comparable form (the frame in
// its canonical encoding).
type winDump struct {
	seq        int
	start, end int64
	data       []byte
}

func dumpStore(t *testing.T, st *Store) []winDump {
	t.Helper()
	var dump []winDump
	if err := st.Replay(func(s Segment, f *flow.Frame) error {
		var b bytes.Buffer
		if _, err := f.WriteTo(&b); err != nil {
			return err
		}
		dump = append(dump, winDump{s.Seq, s.Start.UnixNano(), s.End.UnixNano(), b.Bytes()})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return dump
}

func buildStore(t *testing.T, dir string, policy StorePolicy, wins []testWindow) {
	t.Helper()
	sw, err := CreateStoreWriter(dir, storeMeta, policy)
	if err != nil {
		t.Fatal(err)
	}
	sw.SetAnchor(epoch)
	for _, w := range wins {
		if err := sw.Append(w.seq, w.start, w.end, w.frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreReplayMatchesSingleFile is the container-level half of the
// tentpole's equivalence claim: a rotated multi-segment store replays the
// identical window sequence — same seqs, bounds, and canonical frame bytes
// — as the equivalent single-file archive.
func TestStoreReplayMatchesSingleFile(t *testing.T) {
	wins := storeWindows(t, 9)

	single := filepath.Join(t.TempDir(), "single.llpa")
	f, err := os.Create(single)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := NewWriter(f, storeMeta)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range wins {
		if err := aw.Append(w.seq, w.start, w.end, w.frame); err != nil {
			t.Fatal(err)
		}
	}
	aw.SetAnchor(epoch)
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fileView, err := FileStore(single)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "store")
	buildStore(t, dir, StorePolicy{RotateWindows: 4}, wins)
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSegments() != 3 {
		t.Fatalf("segments = %d, want 3 (9 windows, rotate at 4)", st.NumSegments())
	}
	if st.NumWindows() != 9 {
		t.Fatalf("windows = %d, want 9", st.NumWindows())
	}
	if !st.Anchor().Equal(epoch) {
		t.Errorf("anchor = %v, want %v", st.Anchor(), epoch)
	}
	if st.Meta() != storeMeta {
		t.Errorf("meta = %+v", st.Meta())
	}
	for i, sg := range st.Segments() {
		if sg.Index != i+1 {
			t.Errorf("segment %d has index %d", i, sg.Index)
		}
		fi, err := os.Stat(filepath.Join(dir, sg.File()))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != sg.Bytes {
			t.Errorf("segment %s: %d bytes on disk, manifest says %d", sg.File(), fi.Size(), sg.Bytes)
		}
	}

	got, want := dumpStore(t, st), dumpStore(t, fileView)
	if len(want) != 9 {
		t.Fatalf("single-file replay yielded %d windows", len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("multi-segment store replay differs from single-file archive replay")
	}
}

func TestStoreRotationByBytesAndSpan(t *testing.T) {
	wins := storeWindows(t, 6)
	byBytes := filepath.Join(t.TempDir(), "bybytes")
	buildStore(t, byBytes, StorePolicy{RotateBytes: 1}, wins) // every window past the first rotates
	st, err := OpenStore(byBytes)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSegments() != 6 {
		t.Errorf("RotateBytes=1: segments = %d, want one per window", st.NumSegments())
	}

	bySpan := filepath.Join(t.TempDir(), "byspan")
	buildStore(t, bySpan, StorePolicy{RotateSpan: 20 * time.Second}, wins) // two 10s windows per segment
	st, err = OpenStore(bySpan)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSegments() != 3 {
		t.Errorf("RotateSpan=20s: segments = %d, want 3", st.NumSegments())
	}
	for _, sg := range st.Segments() {
		if sg.Windows != 2 {
			t.Errorf("segment %d holds %d windows, want 2", sg.Index, sg.Windows)
		}
	}
}

func TestStoreRetention(t *testing.T) {
	wins := storeWindows(t, 10)
	dir := filepath.Join(t.TempDir(), "store")
	buildStore(t, dir, StorePolicy{RotateWindows: 2, RetainSegments: 3}, wins)
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSegments() != 3 {
		t.Fatalf("segments = %d, want 3 retained", st.NumSegments())
	}
	segs := st.Segments()
	if segs[0].Index != 3 || segs[0].FirstSeq != 4 {
		t.Errorf("oldest retained segment = index %d firstSeq %d, want 3/4", segs[0].Index, segs[0].FirstSeq)
	}
	// Pruned files really are gone; retained windows replay in order.
	if _, err := os.Stat(filepath.Join(dir, segFileName(1, segFileSuffix))); !os.IsNotExist(err) {
		t.Errorf("pruned segment 1 still on disk (err=%v)", err)
	}
	dump := dumpStore(t, st)
	if len(dump) != 6 || dump[0].seq != 4 || dump[5].seq != 9 {
		t.Errorf("retained replay covers wrong windows: %d windows, first %d", len(dump), dump[0].seq)
	}

	byBytes := filepath.Join(t.TempDir(), "bybytes")
	buildStore(t, byBytes, StorePolicy{RotateWindows: 2, RetainBytes: 1}, wins)
	st, err = OpenStore(byBytes)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSegments() != 1 {
		t.Errorf("RetainBytes=1: segments = %d, want only the newest survivor", st.NumSegments())
	}
}

func TestStoreQueryPruningMatchesScan(t *testing.T) {
	wins := storeWindows(t, 9)
	dir := filepath.Join(t.TempDir(), "store")
	buildStore(t, dir, StorePolicy{RotateWindows: 3}, wins)
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth for a query: brute force over every row of every window.
	truth := func(q Query) map[uint64]bool {
		rows := make(map[uint64]bool)
		for _, w := range wins {
			for i := 0; i < w.frame.Len(); i++ {
				if q.MatchRow(w.frame, i) {
					rows[w.frame.ID(i)] = true
				}
			}
		}
		return rows
	}
	scan := func(q Query) map[uint64]bool {
		rows := make(map[uint64]bool)
		if err := st.Scan(q, func(_ Segment, f *flow.Frame, i int) error {
			rows[f.ID(i)] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return rows
	}

	f0 := wins[0].frame
	pair := f0.PairOf(0)
	sw := flow.SwitchID(7)
	queries := []Query{
		{Pair: &pair},
		{Switch: &sw},
		{From: epoch.Add(25 * time.Second), To: epoch.Add(55 * time.Second)},
		{From: epoch.Add(25 * time.Second), To: epoch.Add(55 * time.Second), Switch: &sw},
		{To: epoch.Add(5 * time.Second), Pair: &pair},
	}
	for qi, q := range queries {
		want, got := truth(q), scan(q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("query %d: scan found %d rows, brute force %d", qi, len(got), len(want))
		}
	}

	// Pruning actually prunes: a time bound covering only the last
	// segment's windows must not select the earlier segments.
	sel := st.Select(Query{From: epoch.Add(65 * time.Second)})
	if len(sel) != 1 || sel[0].Index != 3 {
		t.Errorf("time-bounded Select = %d segments (first index %v), want just segment 3", len(sel), sel)
	}
	// An absent pair prunes every segment.
	absent := flow.MakePair(flow.Addr(1<<20), flow.Addr(1<<20+1))
	if sel := st.Select(Query{Pair: &absent}); len(sel) != 0 {
		t.Errorf("absent pair selected %d segments", len(sel))
	}
}

func TestStoreSummaryOverflowMatchesAll(t *testing.T) {
	records := make([]flow.Record, MaxStoreSummary+100)
	for i := range records {
		records[i] = flow.Record{
			ID:    uint64(i + 1),
			Start: epoch.Add(time.Duration(i) * time.Millisecond),
			Src:   flow.Addr(i),
			Dst:   flow.Addr(i + 1 + len(records)),
			Bytes: 1,
		}
	}
	dir := filepath.Join(t.TempDir(), "store")
	win := testWindow{seq: 0, start: epoch, end: epoch.Add(10 * time.Second), frame: flow.NewFrame(records)}
	buildStore(t, dir, StorePolicy{}, []testWindow{win})
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sg := st.Segments()[0]
	if !sg.PairOverflow {
		t.Fatal("expected pair summary overflow")
	}
	if len(sg.Pairs) != 0 {
		t.Errorf("overflowed summary still carries %d keys", len(sg.Pairs))
	}
	absent := flow.MakePair(flow.Addr(1<<30), flow.Addr(1<<30+1))
	if !sg.MayContainPair(absent) {
		t.Error("overflowed summary must match every pair")
	}
}

// TestStoreResumeMatchesUninterrupted drives the salvage path: a writer
// that dies mid-segment (windows past the checkpoint in its .tmp) resumes
// into a store whose replay is identical to a never-interrupted run —
// regardless of where the checkpoint fell relative to the torn windows.
func TestStoreResumeMatchesUninterrupted(t *testing.T) {
	wins := storeWindows(t, 9)
	policy := StorePolicy{RotateWindows: 3}
	ref := filepath.Join(t.TempDir(), "ref")
	buildStore(t, ref, policy, wins)
	refStore, err := OpenStore(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := dumpStore(t, refStore)

	// crashAt: windows [0, crashAt) written before the crash; resumeSeq:
	// what the session checkpoint had durably reached (≤ crashAt, and no
	// further back than the last finalized window).
	for _, tc := range []struct{ crashAt, resumeSeq int }{
		{7, 7}, // tmp window salvaged whole
		{8, 7}, // one past-checkpoint window discarded, then re-emitted
		{7, 6}, // whole tmp past checkpoint: discarded, segment re-cut
		{6, 6}, // crash exactly at a rotation boundary: clean tmp-less resume
		{0, 0}, // crash before any window
	} {
		dir := filepath.Join(t.TempDir(), "store")
		sw, err := CreateStoreWriter(dir, storeMeta, policy)
		if err != nil {
			t.Fatal(err)
		}
		sw.SetAnchor(epoch)
		for _, w := range wins[:tc.crashAt] {
			if err := sw.Append(w.seq, w.start, w.end, w.frame); err != nil {
				t.Fatal(err)
			}
		}
		sw.Abort() // the crash: open segment left as .tmp

		if tc.crashAt > tc.resumeSeq {
			if _, err := OpenStore(dir); err == nil {
				t.Fatalf("crashAt=%d: strict open accepted a store with a torn .tmp", tc.crashAt)
			}
		}

		rw, rec, err := ResumeStoreWriter(dir, storeMeta, policy, tc.resumeSeq)
		if err != nil {
			t.Fatalf("crashAt=%d resumeSeq=%d: %v", tc.crashAt, tc.resumeSeq, err)
		}
		if tc.crashAt%3 != 0 && rec.Clean {
			t.Errorf("crashAt=%d: resume over a torn .tmp reported clean", tc.crashAt)
		}
		rw.SetAnchor(epoch)
		for _, w := range wins[tc.resumeSeq:] {
			if err := rw.Append(w.seq, w.start, w.end, w.frame); err != nil {
				t.Fatal(err)
			}
		}
		if err := rw.Close(); err != nil {
			t.Fatal(err)
		}

		st, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("crashAt=%d resumeSeq=%d: resumed store not strictly openable: %v", tc.crashAt, tc.resumeSeq, err)
		}
		if got := dumpStore(t, st); !reflect.DeepEqual(got, want) {
			t.Errorf("crashAt=%d resumeSeq=%d: resumed store replay differs from uninterrupted run", tc.crashAt, tc.resumeSeq)
		}
	}
}

// TestStoreResumeAdoptsUnmanifestedSegment covers the finalize-then-crash
// window: the segment file was renamed into place but the store manifest
// was not rewritten. Resume must adopt it from disk, summaries recomputed.
func TestStoreResumeAdoptsUnmanifestedSegment(t *testing.T) {
	wins := storeWindows(t, 7)
	policy := StorePolicy{RotateWindows: 3}
	dir := filepath.Join(t.TempDir(), "store")
	sw, err := CreateStoreWriter(dir, storeMeta, policy)
	if err != nil {
		t.Fatal(err)
	}
	sw.SetAnchor(epoch)
	for _, w := range wins {
		if err := sw.Append(w.seq, w.start, w.end, w.frame); err != nil {
			t.Fatal(err)
		}
	}
	sw.Abort() // two finalized segments + window 6 in seg-3 .tmp

	// Rewind the manifest one finalize: drop segment 2's entry.
	b, err := os.ReadFile(filepath.Join(dir, StoreManifestName))
	if err != nil {
		t.Fatal(err)
	}
	meta, anchor, _, segs, err := decodeStoreManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("fixture has %d finalized segments, want 2", len(segs))
	}
	stale := encodeStoreManifest(meta, anchor, 2, segs[:1])
	if err := os.WriteFile(filepath.Join(dir, StoreManifestName), stale, 0o666); err != nil {
		t.Fatal(err)
	}

	rw, rec, err := ResumeStoreWriter(dir, storeMeta, policy, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Clean {
		t.Error("adopting an unmanifested segment should not report clean")
	}
	rw.SetAnchor(epoch)
	for _, w := range wins[7:] {
		if err := rw.Append(w.seq, w.start, w.end, w.frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	adopted := st.Segments()[1]
	if adopted.PairOverflow || len(adopted.Pairs) == 0 {
		t.Error("adopted segment's pair summary was not recomputed")
	}
	ref := filepath.Join(t.TempDir(), "ref")
	buildStore(t, ref, policy, wins)
	refStore, err := OpenStore(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dumpStore(t, st), dumpStore(t, refStore)) {
		t.Error("resumed store replay differs from uninterrupted run")
	}
}

func TestStoreResumeRefusesLostWindows(t *testing.T) {
	wins := storeWindows(t, 6)
	dir := filepath.Join(t.TempDir(), "store")
	buildStore(t, dir, StorePolicy{RotateWindows: 3}, wins)
	// A checkpoint claiming more windows than the store holds means synced
	// data vanished — resume must refuse, not silently gap the archive.
	if _, _, err := ResumeStoreWriter(dir, storeMeta, StorePolicy{RotateWindows: 3}, 9); err == nil {
		t.Fatal("resume accepted a store missing checkpointed windows")
	} else if !strings.Contains(err.Error(), "lost") {
		t.Errorf("unexpected error: %v", err)
	}
	// Geometry mismatch is refused before any reconciliation.
	other := storeMeta
	other.Width = 20 * time.Second
	if _, _, err := ResumeStoreWriter(dir, other, StorePolicy{}, 6); err == nil {
		t.Fatal("resume accepted mismatched geometry")
	}
}

func TestStoreRecoveringOpenSalvagesTmp(t *testing.T) {
	wins := storeWindows(t, 8)
	policy := StorePolicy{RotateWindows: 3}
	dir := filepath.Join(t.TempDir(), "store")
	sw, err := CreateStoreWriter(dir, storeMeta, policy)
	if err != nil {
		t.Fatal(err)
	}
	sw.SetAnchor(epoch)
	for _, w := range wins {
		if err := sw.Append(w.seq, w.start, w.end, w.frame); err != nil {
			t.Fatal(err)
		}
	}
	sw.Abort() // windows 6,7 torn in seg-3 .tmp

	st, rec, err := OpenStoreRecovering(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Clean {
		t.Error("recovering open of a crashed store reported clean")
	}
	dump := dumpStore(t, st)
	if len(dump) != 8 {
		t.Fatalf("recovered replay yielded %d windows, want all 8", len(dump))
	}
	for i, d := range dump {
		if d.seq != i {
			t.Fatalf("recovered window %d has seq %d", i, d.seq)
		}
	}

	// A healthy store opens recovering as clean.
	ref := filepath.Join(t.TempDir(), "ref")
	buildStore(t, ref, policy, wins)
	if _, rec, err := OpenStoreRecovering(ref); err != nil || !rec.Clean {
		t.Errorf("healthy store: err=%v clean=%v", err, rec.Clean)
	}
}

func TestStoreManifestStrictDecode(t *testing.T) {
	wins := storeWindows(t, 6)
	dir := filepath.Join(t.TempDir(), "store")
	buildStore(t, dir, StorePolicy{RotateWindows: 2}, wins)
	b, err := os.ReadFile(filepath.Join(dir, StoreManifestName))
	if err != nil {
		t.Fatal(err)
	}
	meta, anchor, next, segs, err := decodeStoreManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical: decode∘encode is the identity on accepted input.
	if again := encodeStoreManifest(meta, anchor, next, segs); !bytes.Equal(again, b) {
		t.Error("re-encoded manifest differs from file bytes")
	}
	// Every single-byte corruption is rejected (CRC or structure).
	for i := 0; i < len(b); i += 7 {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x41
		if _, _, _, _, err := decodeStoreManifest(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if _, _, _, _, err := decodeStoreManifest(b[:len(b)-1]); err == nil {
		t.Error("truncated manifest accepted")
	}
	if _, _, _, _, err := decodeStoreManifest(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("over-long manifest accepted")
	}
}

// FuzzStoreManifest asserts the decoder is total (no panics) and
// canonical: whatever it accepts must re-encode to the identical bytes.
func FuzzStoreManifest(f *testing.F) {
	wins := storeWindowsForFuzz()
	dir := f.TempDir()
	sw, err := CreateStoreWriter(filepath.Join(dir, "s"), storeMeta, StorePolicy{RotateWindows: 2})
	if err != nil {
		f.Fatal(err)
	}
	sw.SetAnchor(epoch)
	for _, w := range wins {
		if err := sw.Append(w.seq, w.start, w.end, w.frame); err != nil {
			f.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(dir, "s", StoreManifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:storeHeaderSize+storeTrailerSize])
	f.Add([]byte("LPS1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		meta, anchor, next, segs, err := decodeStoreManifest(b)
		if err != nil {
			return
		}
		if again := encodeStoreManifest(meta, anchor, next, segs); !bytes.Equal(again, b) {
			t.Fatalf("accepted manifest is not canonical: %d bytes in, %d re-encoded", len(b), len(again))
		}
	})
}

func storeWindowsForFuzz() []testWindow {
	var wins []testWindow
	for seq := 0; seq < 5; seq++ {
		start := epoch.Add(time.Duration(seq) * 10 * time.Second)
		wins = append(wins, testWindow{
			seq:   seq,
			start: start,
			end:   start.Add(10 * time.Second),
			frame: flow.NewFrame(windowRecords(int64(seq+1), 30, time.Duration(seq)*10*time.Second)),
		})
	}
	return wins
}
