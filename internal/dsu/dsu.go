// Package dsu implements a disjoint-set union (union-find) data structure
// with union by rank and path compression.
//
// LLM training job recognition (Algorithm 1 of the LLMPrism paper) merges
// the endpoints of every observed network flow into clusters; a disjoint-set
// gives amortized near-constant time merges over millions of flows.
//
// The zero value is not usable directly because element storage is sized at
// construction; use New for a fixed universe of dense integer elements, or
// NewSparse for arbitrary comparable keys.
package dsu

// DSU is a disjoint-set union over the dense universe [0, n).
type DSU struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a DSU over n singleton elements 0..n-1.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Len returns the size of the universe.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the representative of x's set, compressing paths on the way.
func (d *DSU) Find(x int) int {
	root := x
	for d.parent[root] != int32(root) {
		root = int(d.parent[root])
	}
	for d.parent[x] != int32(root) {
		d.parent[x], x = int32(root), int(d.parent[x])
	}
	return root
}

// Union merges the sets containing x and y. It reports whether a merge
// happened (false if they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = int32(rx)
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.sets--
	return true
}

// Same reports whether x and y belong to the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Groups returns the current partition as a map from representative to the
// sorted-by-insertion list of members. The result is freshly allocated.
func (d *DSU) Groups() map[int][]int {
	groups := make(map[int][]int)
	for i := range d.parent {
		r := d.Find(i)
		groups[r] = append(groups[r], i)
	}
	return groups
}

// Sparse is a disjoint-set union over arbitrary comparable keys. Keys are
// added implicitly on first use.
type Sparse[K comparable] struct {
	index map[K]int
	keys  []K
	d     *DSU
}

// NewSparse returns an empty sparse DSU.
func NewSparse[K comparable]() *Sparse[K] {
	return &Sparse[K]{index: make(map[K]int)}
}

// Len returns the number of distinct keys seen so far.
func (s *Sparse[K]) Len() int { return len(s.keys) }

// Sets returns the current number of disjoint sets.
func (s *Sparse[K]) Sets() int {
	if s.d == nil {
		return 0
	}
	return s.d.Sets()
}

func (s *Sparse[K]) id(k K) int {
	if i, ok := s.index[k]; ok {
		return i
	}
	i := len(s.keys)
	s.index[k] = i
	s.keys = append(s.keys, k)
	if s.d == nil {
		s.d = New(1)
	} else {
		s.d.parent = append(s.d.parent, int32(i))
		s.d.rank = append(s.d.rank, 0)
		s.d.sets++
	}
	return i
}

// Union merges the sets containing x and y, inserting either if new.
// It reports whether a merge happened.
func (s *Sparse[K]) Union(x, y K) bool {
	ix, iy := s.id(x), s.id(y)
	return s.d.Union(ix, iy)
}

// Add ensures k is present as (at least) a singleton set.
func (s *Sparse[K]) Add(k K) { s.id(k) }

// Same reports whether x and y are known and belong to the same set.
func (s *Sparse[K]) Same(x, y K) bool {
	ix, okx := s.index[x]
	iy, oky := s.index[y]
	return okx && oky && s.d.Same(ix, iy)
}

// Groups returns the partition over all keys seen so far. Group order and
// member order follow first-insertion order of the representative keys.
func (s *Sparse[K]) Groups() [][]K {
	if s.d == nil {
		return nil
	}
	byRoot := make(map[int]int) // root id -> group slot
	var groups [][]K
	for i, k := range s.keys {
		r := s.d.Find(i)
		slot, ok := byRoot[r]
		if !ok {
			slot = len(groups)
			byRoot[r] = slot
			groups = append(groups, nil)
		}
		groups[slot] = append(groups[slot], k)
	}
	return groups
}
