package dsu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSingletons(t *testing.T) {
	d := New(5)
	if got, want := d.Sets(), 5; got != want {
		t.Fatalf("Sets() = %d, want %d", got, want)
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, d.Find(i), i)
		}
	}
}

func TestUnionBasics(t *testing.T) {
	d := New(6)
	if !d.Union(0, 1) {
		t.Fatal("Union(0,1) = false, want true")
	}
	if d.Union(1, 0) {
		t.Fatal("Union(1,0) on same set = true, want false")
	}
	if !d.Same(0, 1) {
		t.Fatal("Same(0,1) = false after union")
	}
	if d.Same(0, 2) {
		t.Fatal("Same(0,2) = true, want false")
	}
	if got, want := d.Sets(), 5; got != want {
		t.Fatalf("Sets() = %d, want %d", got, want)
	}
}

func TestTransitivity(t *testing.T) {
	d := New(10)
	d.Union(1, 2)
	d.Union(2, 3)
	d.Union(3, 4)
	for _, pair := range [][2]int{{1, 4}, {1, 3}, {2, 4}} {
		if !d.Same(pair[0], pair[1]) {
			t.Errorf("Same(%d,%d) = false, want true", pair[0], pair[1])
		}
	}
}

func TestGroups(t *testing.T) {
	d := New(7)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Union(3, 4)
	groups := d.Groups()
	if len(groups) != 4 {
		t.Fatalf("len(Groups()) = %d, want 4", len(groups))
	}
	sizes := make(map[int]int)
	for _, members := range groups {
		sizes[len(members)]++
	}
	if sizes[2] != 1 || sizes[3] != 1 || sizes[1] != 2 {
		t.Fatalf("group size histogram = %v, want map[1:2 2:1 3:1]", sizes)
	}
}

// Property: number of sets equals n minus the number of successful unions.
func TestSetCountInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		d := New(n)
		merges := 0
		for i := 0; i < 400; i++ {
			if d.Union(rng.Intn(n), rng.Intn(n)) {
				merges++
			}
		}
		return d.Sets() == n-merges
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Find is idempotent and consistent across calls.
func TestFindIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		d := New(n)
		for i := 0; i < 150; i++ {
			d.Union(rng.Intn(n), rng.Intn(n))
		}
		for i := 0; i < n; i++ {
			r := d.Find(i)
			if d.Find(r) != r || d.Find(i) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: groups partition the universe (every element in exactly one group).
func TestGroupsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		d := New(n)
		for i := 0; i < 200; i++ {
			d.Union(rng.Intn(n), rng.Intn(n))
		}
		seen := make([]bool, n)
		total := 0
		for _, members := range d.Groups() {
			for _, m := range members {
				if seen[m] {
					return false
				}
				seen[m] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseBasics(t *testing.T) {
	s := NewSparse[string]()
	if s.Sets() != 0 || s.Len() != 0 {
		t.Fatal("empty sparse DSU should have 0 sets and 0 keys")
	}
	s.Union("a", "b")
	s.Union("c", "d")
	s.Add("e")
	if got, want := s.Len(), 5; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	if got, want := s.Sets(), 3; got != want {
		t.Fatalf("Sets() = %d, want %d", got, want)
	}
	if !s.Same("a", "b") || s.Same("a", "c") || s.Same("a", "zzz") {
		t.Fatal("Same() results inconsistent with unions")
	}
	s.Union("b", "c")
	if !s.Same("a", "d") {
		t.Fatal("transitivity across sparse unions failed")
	}
}

func TestSparseGroups(t *testing.T) {
	s := NewSparse[int]()
	s.Union(10, 20)
	s.Union(30, 40)
	s.Union(20, 30)
	s.Add(99)
	groups := s.Groups()
	if len(groups) != 2 {
		t.Fatalf("len(Groups()) = %d, want 2", len(groups))
	}
	var big, small []int
	if len(groups[0]) > len(groups[1]) {
		big, small = groups[0], groups[1]
	} else {
		big, small = groups[1], groups[0]
	}
	if len(big) != 4 || len(small) != 1 || small[0] != 99 {
		t.Fatalf("groups = %v, want one group of 4 and {99}", groups)
	}
}

func TestSparseAddIdempotent(t *testing.T) {
	s := NewSparse[string]()
	s.Add("x")
	s.Add("x")
	s.Add("x")
	if s.Len() != 1 || s.Sets() != 1 {
		t.Fatalf("Len,Sets = %d,%d after repeated Add, want 1,1", s.Len(), s.Sets())
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	xs := make([]int, 4096)
	ys := make([]int, 4096)
	for i := range xs {
		xs[i], ys[i] = rng.Intn(n), rng.Intn(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(n)
		for j := range xs {
			d.Union(xs[j], ys[j])
		}
	}
}
