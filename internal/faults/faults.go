// Package faults defines the fault-injection schedule applied to platform
// simulations. Every diagnosis experiment needs anomalies with known ground
// truth: degraded switches (the paper's Fig. 5 congestion case), straggler
// ranks (cross-step detection), and degraded links (cross-group detection).
package faults

import (
	"fmt"
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

// Kind classifies a fault.
type Kind uint8

// Fault kinds.
const (
	// KindSwitchDegrade scales the capacity of every link attached to a
	// switch by Factor for the fault window (thermal issues, failing
	// optics, configuration-induced congestion).
	KindSwitchDegrade Kind = iota + 1
	// KindLinkDegrade scales one link's capacity by Factor.
	KindLinkDegrade
	// KindRankSlowdown multiplies the compute time of one GPU rank by
	// Factor (> 1 — e.g. thermal throttling), making it a straggler.
	KindRankSlowdown
)

func (k Kind) String() string {
	switch k {
	case KindSwitchDegrade:
		return "switch-degrade"
	case KindLinkDegrade:
		return "link-degrade"
	case KindRankSlowdown:
		return "rank-slowdown"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Fault is one injected anomaly active during [At, Until).
type Fault struct {
	Kind      Kind
	At, Until time.Duration
	// Switch is the target of KindSwitchDegrade.
	Switch flow.SwitchID
	// Link is the target of KindLinkDegrade.
	Link topology.LinkID
	// Addr is the target NIC/GPU of KindRankSlowdown.
	Addr flow.Addr
	// Factor is the capacity scale (< 1) for degradations or the compute
	// multiplier (> 1) for slowdowns.
	Factor float64
}

// Validate checks the fault for internal consistency.
func (f Fault) Validate() error {
	if f.Until <= f.At {
		return fmt.Errorf("faults: window [%v, %v) is empty", f.At, f.Until)
	}
	switch f.Kind {
	case KindSwitchDegrade, KindLinkDegrade:
		if f.Factor < 0 || f.Factor >= 1 {
			return fmt.Errorf("faults: %v factor %v, want [0, 1)", f.Kind, f.Factor)
		}
	case KindRankSlowdown:
		if f.Factor <= 1 {
			return fmt.Errorf("faults: %v factor %v, want > 1", f.Kind, f.Factor)
		}
	default:
		return fmt.Errorf("faults: unknown kind %v", f.Kind)
	}
	return nil
}

// Schedule is a collection of faults.
type Schedule struct {
	Faults []Fault
}

// Validate checks every fault.
func (s Schedule) Validate() error {
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// Event is an activation or reversion of one fault at a point in time.
type Event struct {
	At     time.Duration
	Fault  Fault
	Revert bool
}

// Events expands the schedule into activation/reversion events sorted by
// time (activations before reversions on ties, for deterministic replay).
func (s Schedule) Events() []Event {
	events := make([]Event, 0, 2*len(s.Faults))
	for _, f := range s.Faults {
		events = append(events, Event{At: f.At, Fault: f})
		events = append(events, Event{At: f.Until, Fault: f, Revert: true})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return !events[i].Revert && events[j].Revert
	})
	return events
}

// ActiveSlowdown returns the compute multiplier for addr at time t
// (1 when no slowdown fault is active).
func (s Schedule) ActiveSlowdown(addr flow.Addr, t time.Duration) float64 {
	factor := 1.0
	for _, f := range s.Faults {
		if f.Kind == KindRankSlowdown && f.Addr == addr && t >= f.At && t < f.Until {
			factor *= f.Factor
		}
	}
	return factor
}
