package faults

import (
	"testing"
	"time"
)

func TestFaultValidate(t *testing.T) {
	tests := []struct {
		name    string
		fault   Fault
		wantErr bool
	}{
		{"valid switch degrade", Fault{Kind: KindSwitchDegrade, At: 0, Until: time.Minute, Factor: 0.25}, false},
		{"valid link degrade", Fault{Kind: KindLinkDegrade, At: 0, Until: time.Minute, Factor: 0}, false},
		{"valid slowdown", Fault{Kind: KindRankSlowdown, At: 0, Until: time.Minute, Factor: 2}, false},
		{"empty window", Fault{Kind: KindSwitchDegrade, At: time.Minute, Until: time.Minute, Factor: 0.5}, true},
		{"degrade factor >= 1", Fault{Kind: KindSwitchDegrade, At: 0, Until: time.Minute, Factor: 1}, true},
		{"slowdown factor <= 1", Fault{Kind: KindRankSlowdown, At: 0, Until: time.Minute, Factor: 0.5}, true},
		{"unknown kind", Fault{At: 0, Until: time.Minute, Factor: 0.5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.fault.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestScheduleValidate(t *testing.T) {
	good := Schedule{Faults: []Fault{
		{Kind: KindSwitchDegrade, At: 0, Until: time.Minute, Factor: 0.5},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := Schedule{Faults: []Fault{
		{Kind: KindSwitchDegrade, At: 0, Until: time.Minute, Factor: 0.5},
		{Kind: KindRankSlowdown, At: 0, Until: time.Minute, Factor: 0.5},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestEventsSortedAndPaired(t *testing.T) {
	s := Schedule{Faults: []Fault{
		{Kind: KindSwitchDegrade, At: 10 * time.Minute, Until: 20 * time.Minute, Factor: 0.25, Switch: 3},
		{Kind: KindRankSlowdown, At: time.Minute, Until: 5 * time.Minute, Factor: 3, Addr: 42},
	}}
	events := s.Events()
	if len(events) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events not sorted: %v after %v", events[i].At, events[i-1].At)
		}
	}
	if events[0].Revert || events[0].Fault.Kind != KindRankSlowdown {
		t.Errorf("first event should be slowdown activation, got %+v", events[0])
	}
	if !events[3].Revert || events[3].Fault.Kind != KindSwitchDegrade {
		t.Errorf("last event should be switch reversion, got %+v", events[3])
	}
}

func TestEventsTieOrder(t *testing.T) {
	// A reversion and an activation at the same instant: activation first.
	s := Schedule{Faults: []Fault{
		{Kind: KindSwitchDegrade, At: 0, Until: time.Minute, Factor: 0.5, Switch: 1},
		{Kind: KindSwitchDegrade, At: time.Minute, Until: 2 * time.Minute, Factor: 0.5, Switch: 2},
	}}
	events := s.Events()
	if events[1].Revert || events[1].Fault.Switch != 2 {
		t.Errorf("activation should precede reversion on tie, got %+v", events[1])
	}
}

func TestActiveSlowdown(t *testing.T) {
	s := Schedule{Faults: []Fault{
		{Kind: KindRankSlowdown, At: time.Minute, Until: 2 * time.Minute, Factor: 3, Addr: 7},
		{Kind: KindSwitchDegrade, At: 0, Until: time.Hour, Factor: 0.5, Switch: 1},
	}}
	if got := s.ActiveSlowdown(7, 90*time.Second); got != 3 {
		t.Errorf("ActiveSlowdown during window = %v, want 3", got)
	}
	if got := s.ActiveSlowdown(7, 3*time.Minute); got != 1 {
		t.Errorf("ActiveSlowdown after window = %v, want 1", got)
	}
	if got := s.ActiveSlowdown(8, 90*time.Second); got != 1 {
		t.Errorf("ActiveSlowdown other rank = %v, want 1", got)
	}
}

func TestKindString(t *testing.T) {
	if KindSwitchDegrade.String() != "switch-degrade" ||
		KindLinkDegrade.String() != "link-degrade" ||
		KindRankSlowdown.String() != "rank-slowdown" {
		t.Error("Kind.String labels wrong")
	}
	if Kind(77).String() == "" {
		t.Error("unknown kind should still render")
	}
}
