package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestClamp(t *testing.T) {
	if got := Clamp(4); got != 4 {
		t.Errorf("Clamp(4) = %d", got)
	}
	if got := Clamp(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Clamp(0) = %d, want GOMAXPROCS", got)
	}
	if got := Clamp(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Clamp(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestMapOrderPreserved(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 3, 8, 200} {
		got, err := Map(context.Background(), workers, items, func(_ context.Context, idx int, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, nil, func(_ context.Context, _ int, _ int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Errorf("Map(empty) = %v, %v", got, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	items := make([]int, 50)
	_, err := Map(context.Background(), workers, items, func(_ context.Context, _ int, _ int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	items := make([]int, 1000)
	_, err := Map(context.Background(), 2, items, func(_ context.Context, idx int, _ int) (int, error) {
		calls.Add(1)
		if idx == 3 {
			return 0, fmt.Errorf("item %d: %w", idx, boom)
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := calls.Load(); n == 1000 {
		t.Error("error did not stop the feed")
	}
}

func TestMapSequentialErrorStopsInOrder(t *testing.T) {
	var calls int
	items := []int{0, 1, 2, 3}
	_, err := Map(context.Background(), 1, items, func(_ context.Context, idx int, _ int) (int, error) {
		calls++
		if idx == 1 {
			return 0, errors.New("stop")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (inline mode stops at the failed item)", calls)
	}
}

func TestMapCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Map(ctx, workers, []int{1, 2, 3}, func(_ context.Context, _ int, _ int) (int, error) {
			return 0, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMapCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	items := make([]int, 1000)
	_, err := Map(ctx, 2, items, func(ctx context.Context, idx int, _ int) (int, error) {
		if calls.Add(1) == 5 {
			cancel()
		}
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n == 1000 {
		t.Error("cancellation did not stop the feed")
	}
}
