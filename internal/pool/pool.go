// Package pool provides the bounded, order-preserving worker pool that the
// analysis pipeline and the experiment runner fan out on. Results are
// returned in input order regardless of completion order, so callers that
// fold them sequentially get bit-identical output for any worker count.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Clamp resolves a worker-count knob: n when positive, GOMAXPROCS
// otherwise.
func Clamp(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every item on up to workers goroutines (Clamp applied,
// never more goroutines than items) and returns the results in input
// order. fn receives the item's index alongside the item and must not
// communicate with other invocations.
//
// On error the pool stops handing out unstarted items, waits for in-flight
// calls, and returns the errored item with the smallest index among those
// that ran; when ctx is canceled it does the same and returns ctx.Err().
// With workers == 1 items run inline on the caller's goroutine in strict
// order.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, idx int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, ctx.Err()
	}
	w := Clamp(workers)
	if w > n {
		w = n
	}
	results := make([]R, n)
	if w == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	idxCh := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idxCh {
				r, err := fn(ctx, i, items[i])
				if err != nil {
					errs[i] = err
					stopOnce.Do(func() { close(stop) })
					continue
				}
				results[i] = r
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break feed
		case <-stop:
			break feed
		case idxCh <- i:
		}
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
