package flow

import (
	"reflect"
	"testing"
	"time"
)

func frameRecords(seed int64, n int) []Record { return randomRecords(seed, n) }

func TestFrameRecordsByStartMatchesSortByStart(t *testing.T) {
	records := frameRecords(13, 500)
	want := make([]Record, len(records))
	copy(want, records)
	SortByStart(want)

	got := NewFrame(records).RecordsByStart()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("RecordsByStart diverges from SortByStart over the same records")
	}
}

func TestFrameBuildOrderInvariant(t *testing.T) {
	records := frameRecords(17, 300)
	reversed := make([]Record, len(records))
	for i, r := range records {
		reversed[len(records)-1-i] = r
	}
	a := NewFrame(records)
	b := NewFrame(reversed)
	if !reflect.DeepEqual(a.RecordsByStart(), b.RecordsByStart()) {
		t.Error("frame contents depend on input order")
	}
	if !reflect.DeepEqual(a.Pairs(), b.Pairs()) {
		t.Error("pair index depends on input order")
	}
}

func TestFramePairIndex(t *testing.T) {
	records := frameRecords(19, 400)
	f := NewFrame(records)
	if f.Len() != len(records) {
		t.Fatalf("Len = %d, want %d", f.Len(), len(records))
	}
	total := 0
	var prev Pair
	for i := 0; i < f.NumPairs(); i++ {
		p := f.PairAt(i)
		if i > 0 && !(prev.A < p.A || (prev.A == p.A && prev.B < p.B)) {
			t.Fatalf("pairs not ascending at %d: %v then %v", i, prev, p)
		}
		prev = p
		lo, hi := f.PairSpan(i)
		if hi <= lo {
			t.Fatalf("empty span for pair %v", p)
		}
		total += hi - lo
		for r := lo; r < hi; r++ {
			if f.PairOf(r) != p {
				t.Fatalf("row %d in span of %v has pair %v", r, p, f.PairOf(r))
			}
			if r > lo {
				if f.StartNanos(r) < f.StartNanos(r-1) ||
					(f.StartNanos(r) == f.StartNanos(r-1) && f.ID(r) < f.ID(r-1)) {
					t.Fatalf("span of %v not sorted by (start, id) at row %d", p, r)
				}
			}
		}
	}
	if total != f.Len() {
		t.Errorf("pair spans cover %d rows, want %d", total, f.Len())
	}
}

func TestFramePathInterning(t *testing.T) {
	path1 := []SwitchID{1, 5, 2}
	path2 := []SwitchID{1, 6, 2}
	var records []Record
	for i := 0; i < 100; i++ {
		p := path1
		if i%2 == 1 {
			p = path2
		}
		records = append(records, rec(uint64(i+1), time.Duration(i)*time.Millisecond, time.Millisecond, 1, 2, 10, p...))
	}
	f := NewFrame(records)
	if got := f.PathTable().NumPaths(); got != 2 {
		t.Errorf("interned paths = %d, want 2", got)
	}
	for i := 0; i < f.Len(); i++ {
		sw := f.Switches(i)
		if len(sw) != 3 {
			t.Fatalf("row %d switches = %v", i, sw)
		}
	}
	// Empty paths intern as NoPath and materialize as nil.
	f2 := NewFrame([]Record{rec(1, 0, time.Millisecond, 1, 2, 10)})
	if f2.Path(0) != NoPath || f2.Switches(0) != nil {
		t.Errorf("empty path: id=%v switches=%v, want NoPath/nil", f2.Path(0), f2.Switches(0))
	}
}

func TestFrameSelectMatchesFilter(t *testing.T) {
	records := frameRecords(23, 600)
	f := NewFrame(records)
	eps := Endpoints(records)
	if len(eps) < 4 {
		t.Skip("trace too small")
	}
	subset := eps[:len(eps)/2]

	sorted := make([]Record, len(records))
	copy(sorted, records)
	SortByStart(sorted)
	in := make(map[Addr]bool, len(subset))
	for _, a := range subset {
		in[a] = true
	}
	var want []Record
	for _, r := range sorted {
		if in[r.Src] && in[r.Dst] {
			want = append(want, r)
		}
	}

	v := f.Select(subset)
	got := v.Records()
	if len(want) == 0 {
		if v.Len() != 0 {
			t.Fatalf("Select returned %d rows, want 0", v.Len())
		}
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Select(%d endpoints) = %d records, diverges from filtered slice (%d records)",
			len(subset), len(got), len(want))
	}
}

func TestFrameSelectManyMatchesSelect(t *testing.T) {
	records := frameRecords(29, 600)
	f := NewFrame(records)
	eps := f.Endpoints()
	if len(eps) < 6 {
		t.Skip("trace too small")
	}
	third := len(eps) / 3
	groups := [][]Addr{eps[:third], eps[third : 2*third], eps[2*third:]}
	views := f.SelectMany(groups)
	if len(views) != len(groups) {
		t.Fatalf("views = %d, want %d", len(views), len(groups))
	}
	for g, group := range groups {
		want := f.Select(group).Records()
		got := views[g].Records()
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("group %d: SelectMany diverges from Select", g)
		}
	}
}

func TestFrameAllView(t *testing.T) {
	records := frameRecords(31, 200)
	f := NewFrame(records)
	v := f.All()
	if v.Len() != f.Len() || v.NumPairs() != f.NumPairs() {
		t.Fatalf("All view size %d/%d pairs, want %d/%d", v.Len(), v.NumPairs(), f.Len(), f.NumPairs())
	}
	if !reflect.DeepEqual(v.Records(), f.RecordsByStart()) {
		t.Error("All view records diverge from RecordsByStart")
	}
	rows, rowPairs := v.Rows(), v.RowPairs()
	for k := range rows {
		if v.PairAt(int(rowPairs[k])) != f.PairOf(int(rows[k])) {
			t.Fatalf("row %d: RowPairs inconsistent with PairOf", k)
		}
	}
	if !reflect.DeepEqual(f.Endpoints(), Endpoints(records)) {
		t.Error("frame Endpoints diverge from record-slice Endpoints")
	}
	if !reflect.DeepEqual(v.Endpoints(), Endpoints(records)) {
		t.Error("view Endpoints diverge from record-slice Endpoints")
	}
}

func TestFrameGbpsMatchesRecord(t *testing.T) {
	records := frameRecords(37, 300)
	f := NewFrame(records)
	for i := 0; i < f.Len(); i++ {
		if got, want := f.Gbps(i), f.Record(i).Gbps(); got != want {
			t.Fatalf("row %d: Gbps = %v, Record.Gbps = %v", i, got, want)
		}
	}
}

func TestFrameBuilderReusableAfterBuild(t *testing.T) {
	b := NewFrameBuilder()
	b.AppendRecord(rec(1, 0, time.Millisecond, 1, 2, 10, 3, 4))
	f1 := b.Build()
	b.AppendRecord(rec(2, time.Millisecond, time.Millisecond, 1, 2, 20, 3, 4))
	f2 := b.Build()
	if f1.Len() != 1 || f2.Len() != 2 {
		t.Fatalf("frame lengths = %d, %d; want 1, 2", f1.Len(), f2.Len())
	}
	if f2.PathTable().NumPaths() != 1 {
		t.Errorf("paths = %d, want 1 (same path interned once)", f2.PathTable().NumPaths())
	}
	// The first frame must be unaffected by later appends.
	if got := f1.Record(0); got.ID != 1 || got.Bytes != 10 {
		t.Errorf("frame 1 record changed after later appends: %+v", got)
	}
}

func TestEmptyFrame(t *testing.T) {
	f := NewFrame(nil)
	if f.Len() != 0 || f.NumPairs() != 0 {
		t.Fatalf("empty frame has %d rows, %d pairs", f.Len(), f.NumPairs())
	}
	if got := f.RecordsByStart(); len(got) != 0 {
		t.Errorf("empty frame materialized %d records", len(got))
	}
	v := f.All()
	if v.Len() != 0 || len(v.Records()) != 0 {
		t.Error("empty frame view not empty")
	}
	var zero View
	if zero.Len() != 0 || zero.NumPairs() != 0 {
		t.Error("zero View not empty")
	}
}

func TestFrameBuilderRecordAt(t *testing.T) {
	records := frameRecords(29, 50)
	b := NewFrameBuilder()
	for _, r := range records {
		b.AppendRecord(r)
	}
	for i, want := range records {
		got := b.RecordAt(i)
		// Timestamps normalize to UTC on append, like the built frame's.
		want.Start = want.Start.UTC()
		if len(want.Switches) == 0 {
			want.Switches = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("RecordAt(%d) = %+v, want %+v", i, got, want)
		}
	}
}
