package flow

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func rec(id uint64, start time.Duration, dur time.Duration, src, dst Addr, size int64, switches ...SwitchID) Record {
	return Record{
		ID:       id,
		Start:    epoch.Add(start),
		Duration: dur,
		Src:      src,
		Dst:      dst,
		Bytes:    size,
		Switches: switches,
	}
}

func TestAddrString(t *testing.T) {
	tests := []struct {
		addr Addr
		want string
	}{
		{0, "10.0.0.0"},
		{1, "10.0.0.1"},
		{256, "10.0.1.0"},
		{1<<16 + 2<<8 + 3, "10.1.2.3"},
	}
	for _, tt := range tests {
		if got := tt.addr.String(); got != tt.want {
			t.Errorf("Addr(%d).String() = %q, want %q", tt.addr, got, tt.want)
		}
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw & 0xffffff)
		parsed, err := ParseAddr(a.String())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "nonsense", "10.300.0.1", "11.0.0.1"} {
		if _, err := ParseAddr(s); err == nil && s != "11.0.0.1" {
			t.Errorf("ParseAddr(%q) succeeded, want error", s)
		}
	}
}

func TestMakePairCanonical(t *testing.T) {
	p1 := MakePair(5, 3)
	p2 := MakePair(3, 5)
	if p1 != p2 {
		t.Errorf("MakePair not canonical: %v vs %v", p1, p2)
	}
	if p1.A != 3 || p1.B != 5 {
		t.Errorf("MakePair order = %v, want A=3 B=5", p1)
	}
	if !p1.Has(3) || !p1.Has(5) || p1.Has(4) {
		t.Error("Pair.Has results wrong")
	}
	if p1.Other(3) != 5 || p1.Other(5) != 3 {
		t.Error("Pair.Other results wrong")
	}
}

func TestRecordEndAndGbps(t *testing.T) {
	r := rec(1, 0, time.Second, 1, 2, 12.5e9/8*1) // 12.5 GB/s over 1s = 12.5 Gb... careful
	r.Bytes = 1250000000                          // 1.25 GB in 1 s = 10 Gb/s
	if got := r.Gbps(); got < 9.99 || got > 10.01 {
		t.Errorf("Gbps = %v, want 10", got)
	}
	if !r.End().Equal(epoch.Add(time.Second)) {
		t.Errorf("End = %v, want %v", r.End(), epoch.Add(time.Second))
	}
	zero := Record{}
	if zero.Gbps() != 0 {
		t.Error("zero-duration flow should have 0 Gbps")
	}
}

func TestSortByStartStable(t *testing.T) {
	records := []Record{
		rec(3, 2*time.Second, 0, 1, 2, 10),
		rec(2, time.Second, 0, 1, 2, 10),
		rec(1, time.Second, 0, 1, 2, 10),
	}
	SortByStart(records)
	gotIDs := []uint64{records[0].ID, records[1].ID, records[2].ID}
	if !reflect.DeepEqual(gotIDs, []uint64{1, 2, 3}) {
		t.Errorf("sorted IDs = %v, want [1 2 3]", gotIDs)
	}
}

func TestWindow(t *testing.T) {
	records := []Record{
		rec(1, 0, 0, 1, 2, 10),
		rec(2, time.Second, 0, 1, 2, 10),
		rec(3, 2*time.Second, 0, 1, 2, 10),
		rec(4, 3*time.Second, 0, 1, 2, 10),
	}
	got := Window(records, epoch.Add(time.Second), epoch.Add(3*time.Second))
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Errorf("Window returned %v, want records 2,3", got)
	}
	if len(Window(records, epoch.Add(10*time.Second), epoch.Add(20*time.Second))) != 0 {
		t.Error("out-of-range window should be empty")
	}
}

func TestGroupByPair(t *testing.T) {
	records := []Record{
		rec(1, 0, 0, 1, 2, 10),
		rec(2, 0, 0, 2, 1, 20), // reverse direction, same pair
		rec(3, 0, 0, 1, 3, 30),
	}
	groups := GroupByPair(records)
	if len(groups) != 2 {
		t.Fatalf("len(groups) = %d, want 2", len(groups))
	}
	if got := len(groups[MakePair(1, 2)]); got != 2 {
		t.Errorf("pair(1,2) has %d records, want 2", got)
	}
}

func TestEndpointsAndByEndpoint(t *testing.T) {
	records := []Record{
		rec(1, 0, 0, 5, 2, 10),
		rec(2, 0, 0, 2, 9, 20),
	}
	eps := Endpoints(records)
	if !reflect.DeepEqual(eps, []Addr{2, 5, 9}) {
		t.Errorf("Endpoints = %v, want [2 5 9]", eps)
	}
	buckets := ByEndpoint(records)
	if len(buckets[2]) != 2 || len(buckets[5]) != 1 || len(buckets[9]) != 1 {
		t.Errorf("ByEndpoint bucket sizes wrong: %v", buckets)
	}
}

func TestTotalBytesAndTimeSpan(t *testing.T) {
	if TotalBytes(nil) != 0 {
		t.Error("TotalBytes(nil) != 0")
	}
	records := []Record{
		rec(1, time.Second, time.Second, 1, 2, 10),
		rec(2, 0, 500*time.Millisecond, 1, 2, 20),
	}
	if got := TotalBytes(records); got != 30 {
		t.Errorf("TotalBytes = %d, want 30", got)
	}
	from, to, ok := TimeSpan(records)
	if !ok || !from.Equal(epoch) || !to.Equal(epoch.Add(2*time.Second)) {
		t.Errorf("TimeSpan = %v..%v ok=%v, want %v..%v", from, to, ok, epoch, epoch.Add(2*time.Second))
	}
	if _, _, ok := TimeSpan(nil); ok {
		t.Error("TimeSpan(nil) should report !ok")
	}
}

func randomRecords(seed int64, n int) []Record {
	rng := rand.New(rand.NewSource(seed))
	records := make([]Record, n)
	for i := range records {
		var switches []SwitchID
		for k := 0; k < rng.Intn(4); k++ {
			switches = append(switches, SwitchID(rng.Intn(64)))
		}
		records[i] = Record{
			ID:       uint64(i + 1),
			Start:    epoch.Add(time.Duration(rng.Int63n(int64(time.Hour)))),
			Duration: time.Duration(rng.Int63n(int64(10 * time.Second))),
			Src:      Addr(rng.Intn(1 << 24)),
			Dst:      Addr(rng.Intn(1 << 24)),
			Bytes:    rng.Int63n(1 << 32),
			Switches: switches,
		}
	}
	return records
}

func TestCSVRoundTrip(t *testing.T) {
	records := randomRecords(7, 200)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip length = %d, want %d", len(got), len(records))
	}
	for i := range got {
		if !recordsEqual(got[i], records[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], records[i])
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	records := randomRecords(11, 200)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, records); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip length = %d, want %d", len(got), len(records))
	}
	for i := range got {
		if !recordsEqual(got[i], records[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], records[i])
		}
	}
}

func recordsEqual(a, b Record) bool {
	if a.ID != b.ID || !a.Start.Equal(b.Start) || a.Duration != b.Duration ||
		a.Src != b.Src || a.Dst != b.Dst || a.Bytes != b.Bytes ||
		len(a.Switches) != len(b.Switches) {
		return false
	}
	for i := range a.Switches {
		if a.Switches[i] != b.Switches[i] {
			return false
		}
	}
	return true
}

func TestParseSwitchesRejectsMalformed(t *testing.T) {
	for _, s := range []string{"|", "3|", "|3", "3||7", "3|x", "x"} {
		if _, err := parseSwitches(s); err == nil {
			t.Errorf("parseSwitches(%q) succeeded, want error", s)
		}
	}
	got, err := parseSwitches("3|7|11")
	if err != nil || len(got) != 3 || got[0] != 3 || got[1] != 7 || got[2] != 11 {
		t.Errorf("parseSwitches(\"3|7|11\") = %v, %v", got, err)
	}
	if got, err := parseSwitches(""); err != nil || got != nil {
		t.Errorf("parseSwitches(\"\") = %v, %v; want nil, nil", got, err)
	}
}

// TestCodecLargeSwitchIDs pins the truncation bugfix: switch ids past 2^31
// round-trip through both text codecs instead of wrapping into unrelated
// switches (the historical int32 wire forms corrupted every downstream
// per-switch diagnosis).
func TestCodecLargeSwitchIDs(t *testing.T) {
	records := []Record{
		rec(1, 0, time.Second, 1, 2, 100, 1<<33, 1<<62+7),
		rec(2, time.Second, time.Second, 3, 4, 50, (1<<63)-1),
	}
	var csvBuf, jsonBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, records); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jsonBuf, records); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSONL(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if !recordsEqual(records[i], fromCSV[i]) {
			t.Errorf("csv record %d: got switches %v, want %v", i, fromCSV[i].Switches, records[i].Switches)
		}
		if !recordsEqual(records[i], fromJSON[i]) {
			t.Errorf("jsonl record %d: got switches %v, want %v", i, fromJSON[i].Switches, records[i].Switches)
		}
	}
}

// TestCodecRejectsNegativeFields pins the validation bugfix: negative
// durations, byte counts and switch ids are decode errors carrying the
// offending line number, never records that poison Gbps and watermark math.
func TestCodecRejectsNegativeFields(t *testing.T) {
	good := []Record{rec(1, 0, time.Second, 1, 2, 100, 3)}
	mutations := []struct {
		name   string
		mutate func(*Record)
	}{
		{"negative duration", func(r *Record) { r.Duration = -time.Second }},
		{"negative bytes", func(r *Record) { r.Bytes = -100 }},
		{"negative switch", func(r *Record) { r.Switches = []SwitchID{-5} }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			bad := good[0]
			m.mutate(&bad)
			records := append(good, bad) // line 3 of the CSV, line 2 of the JSONL

			var csvBuf, jsonBuf bytes.Buffer
			if err := WriteCSV(&csvBuf, records); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadCSV(&csvBuf); err == nil {
				t.Error("ReadCSV accepted the record")
			} else if !strings.Contains(err.Error(), "line 3") {
				t.Errorf("ReadCSV error not line-numbered: %v", err)
			}
			if err := WriteJSONL(&jsonBuf, records); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadJSONL(&jsonBuf); err == nil {
				t.Error("ReadJSONL accepted the record")
			} else if !strings.Contains(err.Error(), "line 2") {
				t.Errorf("ReadJSONL error not line-numbered: %v", err)
			}
		})
	}
}

// TestCodecNilVsEmptySwitches: all codecs agree that a record with no
// switches decodes with a nil slice (ReadJSONL used to yield an empty
// non-nil slice, breaking cross-codec DeepEqual of decoded traces).
func TestCodecNilVsEmptySwitches(t *testing.T) {
	records := []Record{
		rec(1, 0, time.Second, 1, 2, 100),
		{ID: 2, Start: epoch, Duration: time.Second, Src: 1, Dst: 2, Bytes: 5, Switches: []SwitchID{}},
	}
	var csvBuf, jsonBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, records); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jsonBuf, records); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSONL(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if fromCSV[i].Switches != nil {
			t.Errorf("csv record %d: switches = %#v, want nil", i, fromCSV[i].Switches)
		}
		if fromJSON[i].Switches != nil {
			t.Errorf("jsonl record %d: switches = %#v, want nil", i, fromJSON[i].Switches)
		}
	}
	if !reflect.DeepEqual(fromCSV, fromJSON) {
		t.Error("CSV and JSONL decode the same trace differently")
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b,c,d,e,f,g\n")); err == nil {
		t.Error("ReadCSV accepted bad header")
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatalf("WriteCSV(nil): %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("ReadCSV of empty body = %v, %v; want empty, nil", got, err)
	}
}

func BenchmarkCSVWrite(b *testing.B) {
	records := randomRecords(3, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, records); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByPair(b *testing.B) {
	records := randomRecords(5, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupByPair(records)
	}
}
