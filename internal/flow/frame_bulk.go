package flow

// Bulk columnar ingest: append already-columnar rows (a decoded LPF1 frame)
// into a FrameBuilder without materializing a Record per row. The only
// per-row work is seven column appends plus one PathID translation through
// a remap computed once per source table (InternTable); Build's canonical
// renumbering then guarantees the resulting frame is byte-identical to the
// one the per-record AppendRecord path would have produced.

// NumSwitches returns the total switch entries across all interned paths.
func (t *PathTable) NumSwitches() int { return len(t.switches) }

// GrowTable pre-sizes the builder's path table for paths additional paths
// totalling switches switch entries — the table-side counterpart of Grow,
// which pre-sizes only the row columns. A following InternTable (or
// InternPath sequence) within that budget does no mid-append reallocation.
func (b *FrameBuilder) GrowTable(paths, switches int) {
	if len(b.table.offs) == 0 {
		b.table.offs = append(make([]int32, 0, paths+1), 0)
	} else if need := len(b.table.offs) + paths; cap(b.table.offs) < need {
		b.table.offs = append(make([]int32, 0, need), b.table.offs...)
	}
	if need := len(b.table.switches) + switches; cap(b.table.switches) < need {
		b.table.switches = append(make([]SwitchID, 0, need), b.table.switches...)
	}
}

// InternTable interns every path of t into the builder in one pass and
// returns the remap: remap[old] is the builder's id for t's path old. The
// builder's table is pre-sized from t first (GrowTable), so even when every
// path is new the appends reallocate nothing. A nil remap means the
// identity translation — returned when t is empty, and when the builder's
// own table is empty so t's table can be adopted wholesale (the common
// bulk-ingest case: a fresh window builder receiving its first frame pays
// two column copies and zero per-path interning; the intern index is
// rebuilt lazily if a later InternPath needs it).
func (b *FrameBuilder) InternTable(t *PathTable) []PathID {
	np := t.NumPaths()
	if np == 0 {
		return nil
	}
	b.GrowTable(np, len(t.switches))
	if b.table.NumPaths() == 0 {
		b.table.offs = append(b.table.offs, t.offs[1:]...)
		b.table.switches = append(b.table.switches, t.switches...)
		b.index = nil // stale; rebuilt on the next InternPath
		return nil
	}
	remap := make([]PathID, np)
	for p := 0; p < np; p++ {
		remap[p] = b.InternPath(t.switches[t.offs[p]:t.offs[p+1]])
	}
	return remap
}

// AppendFrameRows bulk-appends the rows of f listed in rows (every row when
// rows is nil), translating each row's path through remap — the result of
// InternTable on f's path table (NoPath passes through; a nil remap is the
// identity translation). Call Grow first to make the row appends
// realloc-free.
func (b *FrameBuilder) AppendFrameRows(f *Frame, remap []PathID, rows []int32) {
	if rows == nil {
		b.ids = append(b.ids, f.ids...)
		b.starts = append(b.starts, f.starts...)
		b.durs = append(b.durs, f.durs...)
		b.srcs = append(b.srcs, f.srcs...)
		b.dsts = append(b.dsts, f.dsts...)
		b.nbytes = append(b.nbytes, f.nbytes...)
		if remap == nil {
			b.paths = append(b.paths, f.paths...)
			return
		}
		for _, p := range f.paths {
			if p != NoPath {
				p = remap[p]
			}
			b.paths = append(b.paths, p)
		}
		return
	}
	for _, r := range rows {
		p := f.paths[r]
		if p != NoPath && remap != nil {
			p = remap[p]
		}
		b.ids = append(b.ids, f.ids[r])
		b.starts = append(b.starts, f.starts[r])
		b.durs = append(b.durs, f.durs[r])
		b.srcs = append(b.srcs, f.srcs[r])
		b.dsts = append(b.dsts, f.dsts[r])
		b.nbytes = append(b.nbytes, f.nbytes[r])
		b.paths = append(b.paths, p)
	}
}

// AppendFrame bulk-appends every row of f: one table remap plus wholesale
// column appends — no per-row path re-interning, no Record structs.
func (b *FrameBuilder) AppendFrame(f *Frame) {
	b.Grow(f.Len())
	b.AppendFrameRows(f, b.InternTable(&f.table), nil)
}

// MinStartNanos returns the smallest row start (UnixNano). The frame must
// be non-empty.
func (f *Frame) MinStartNanos() int64 { return f.starts[f.byStart[0]] }

// MaxStartNanos returns the largest row start (UnixNano). The frame must
// be non-empty.
func (f *Frame) MaxStartNanos() int64 { return f.starts[f.byStart[len(f.byStart)-1]] }

// NewFrameParallel is NewFrame with the close-time Build spread over
// workers goroutines (workers <= 0 means GOMAXPROCS); the result is
// byte-identical to NewFrame's.
func NewFrameParallel(records []Record, workers int) *Frame {
	b := NewFrameBuilder()
	b.Grow(len(records))
	for _, r := range records {
		b.AppendRecord(r)
	}
	return b.BuildParallel(workers)
}
