package flow

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

// FuzzParseAddr drives the strict manual parser with arbitrary input: it
// must never panic, must round-trip everything Addr.String produces, and
// anything it accepts must re-render to the exact input (the strict
// grammar admits no two spellings of one address... except leading zeros,
// which re-render canonically and must re-parse to the same value).
func FuzzParseAddr(f *testing.F) {
	f.Add("10.0.0.0")
	f.Add("10.255.255.255")
	f.Add("10.1.2.3")
	f.Add("10.1.2.3 ")
	f.Add("10.1.2.3.4")
	f.Add("10.256.0.1")
	f.Add("10.01.2.3")
	f.Add("11.0.0.1")
	f.Add("10.-1.0.1")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		rendered := a.String()
		back, err := ParseAddr(rendered)
		if err != nil {
			t.Fatalf("ParseAddr(%q) accepted, but its rendering %q did not re-parse: %v", s, rendered, err)
		}
		if back != a {
			t.Fatalf("ParseAddr(%q) = %v, re-parsed rendering = %v", s, a, back)
		}
	})
}

func TestParseAddrStrict(t *testing.T) {
	good := map[string]Addr{
		"10.0.0.0":       0,
		"10.0.0.1":       1,
		"10.1.2.3":       1<<16 | 2<<8 | 3,
		"10.255.255.255": 0xffffff,
	}
	for s, want := range good {
		got, err := ParseAddr(s)
		if err != nil || got != want {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	bad := []string{
		"", "nonsense", "11.0.0.1", "10.256.0.1", "10.0.0.256", "10.300.0.1",
		"10.1.2", "10.1.2.3.4", "10.1.2.3x", "10.1.2.3 ", " 10.1.2.3",
		"10..2.3", "10.1.2.", "10.-1.2.3", "10.1.2.+3", "10.0x1.2.3",
		"10.1234.2.3",
	}
	for _, s := range bad {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", s)
		}
	}
}

// TestCodecRoundTripFrameBacked is the codec property test over
// frame-backed records: materializing a frame and writing it through
// either codec must read back exactly, for arbitrary record multisets —
// including the path-table aliasing the frame introduces.
func TestCodecRoundTripFrameBacked(t *testing.T) {
	property := func(seed int64, n uint8) bool {
		records := randomRecords(seed, int(n))
		materialized := NewFrame(records).RecordsByStart()

		var csvBuf, jsonBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, materialized); err != nil {
			t.Logf("WriteCSV: %v", err)
			return false
		}
		fromCSV, err := ReadCSV(&csvBuf)
		if err != nil {
			t.Logf("ReadCSV: %v", err)
			return false
		}
		if err := WriteJSONL(&jsonBuf, materialized); err != nil {
			t.Logf("WriteJSONL: %v", err)
			return false
		}
		fromJSON, err := ReadJSONL(&jsonBuf)
		if err != nil {
			t.Logf("ReadJSONL: %v", err)
			return false
		}
		if len(fromCSV) != len(materialized) || len(fromJSON) != len(materialized) {
			return false
		}
		for i := range materialized {
			if !recordsEqual(materialized[i], fromCSV[i]) || !recordsEqual(materialized[i], fromJSON[i]) {
				return false
			}
		}
		// Rebuilding a frame from decoded records reproduces the frame.
		if !reflect.DeepEqual(materialized, NewFrame(fromCSV).RecordsByStart()) {
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
