package flow

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

// FuzzParseAddr drives the strict manual parser with arbitrary input: it
// must never panic, must round-trip everything Addr.String produces, and
// anything it accepts must re-render to the exact input (the strict
// grammar admits no two spellings of one address... except leading zeros,
// which re-render canonically and must re-parse to the same value).
func FuzzParseAddr(f *testing.F) {
	f.Add("10.0.0.0")
	f.Add("10.255.255.255")
	f.Add("10.1.2.3")
	f.Add("10.1.2.3 ")
	f.Add("10.1.2.3.4")
	f.Add("10.256.0.1")
	f.Add("10.01.2.3")
	f.Add("11.0.0.1")
	f.Add("10.-1.0.1")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err != nil {
			return
		}
		rendered := a.String()
		back, err := ParseAddr(rendered)
		if err != nil {
			t.Fatalf("ParseAddr(%q) accepted, but its rendering %q did not re-parse: %v", s, rendered, err)
		}
		if back != a {
			t.Fatalf("ParseAddr(%q) = %v, re-parsed rendering = %v", s, a, back)
		}
	})
}

func TestParseAddrStrict(t *testing.T) {
	good := map[string]Addr{
		"10.0.0.0":       0,
		"10.0.0.1":       1,
		"10.1.2.3":       1<<16 | 2<<8 | 3,
		"10.255.255.255": 0xffffff,
	}
	for s, want := range good {
		got, err := ParseAddr(s)
		if err != nil || got != want {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	bad := []string{
		"", "nonsense", "11.0.0.1", "10.256.0.1", "10.0.0.256", "10.300.0.1",
		"10.1.2", "10.1.2.3.4", "10.1.2.3x", "10.1.2.3 ", " 10.1.2.3",
		"10..2.3", "10.1.2.", "10.-1.2.3", "10.1.2.+3", "10.0x1.2.3",
		"10.1234.2.3",
	}
	for _, s := range bad {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", s)
		}
	}
}

// TestCodecRoundTripFrameBacked is the codec property test over
// frame-backed records: materializing a frame and writing it through any of
// the three codecs — CSV, JSONL, binary frame — must read back exactly, for
// arbitrary record multisets, including switch ids past 2^31 (which the
// historical int32-typed wire forms silently wrapped) and the path-table
// aliasing the frame introduces. All three decoders must also agree on the
// nil-vs-empty normalization of switch lists: an empty path reads back nil.
func TestCodecRoundTripFrameBacked(t *testing.T) {
	property := func(seed int64, n uint8) bool {
		records := randomRecords(seed, int(n))
		// Salt a large switch id into some paths so every run crosses the
		// old 32-bit truncation boundary.
		for i := range records {
			if len(records[i].Switches) > 0 && i%3 == 0 {
				path := append([]SwitchID(nil), records[i].Switches...)
				path[0] += 1 << 40
				records[i].Switches = path
			}
		}
		frame := NewFrame(records)
		materialized := frame.RecordsByStart()

		var csvBuf, jsonBuf, binBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, materialized); err != nil {
			t.Logf("WriteCSV: %v", err)
			return false
		}
		fromCSV, err := ReadCSV(&csvBuf)
		if err != nil {
			t.Logf("ReadCSV: %v", err)
			return false
		}
		if err := WriteJSONL(&jsonBuf, materialized); err != nil {
			t.Logf("WriteJSONL: %v", err)
			return false
		}
		fromJSON, err := ReadJSONL(&jsonBuf)
		if err != nil {
			t.Logf("ReadJSONL: %v", err)
			return false
		}
		if _, err := frame.WriteTo(&binBuf); err != nil {
			t.Logf("WriteTo: %v", err)
			return false
		}
		decodedFrame, err := ReadFrame(&binBuf)
		if err != nil {
			t.Logf("ReadFrame: %v", err)
			return false
		}
		fromBin := decodedFrame.RecordsByStart()
		if len(fromCSV) != len(materialized) || len(fromJSON) != len(materialized) || len(fromBin) != len(materialized) {
			return false
		}
		for i := range materialized {
			if !recordsEqual(materialized[i], fromCSV[i]) ||
				!recordsEqual(materialized[i], fromJSON[i]) ||
				!recordsEqual(materialized[i], fromBin[i]) {
				return false
			}
			// Identical normalization across codecs: empty switch lists
			// are nil from every decoder.
			if len(materialized[i].Switches) == 0 &&
				(fromCSV[i].Switches != nil || fromJSON[i].Switches != nil || fromBin[i].Switches != nil) {
				t.Logf("record %d: empty switches decoded non-nil", i)
				return false
			}
		}
		// Rebuilding a frame from decoded records reproduces the frame.
		if !reflect.DeepEqual(materialized, NewFrame(fromCSV).RecordsByStart()) {
			return false
		}
		return reflect.DeepEqual(frame, decodedFrame)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// FuzzReadFrame drives the binary frame decoder with arbitrary bytes: it
// must never panic, never allocate unboundedly from forged headers, and
// anything it accepts must satisfy the Frame invariants and re-encode to
// the exact input bytes (the format admits one spelling per frame).
func FuzzReadFrame(f *testing.F) {
	for _, n := range []int{0, 1, 7, 60} {
		var buf bytes.Buffer
		if _, err := NewFrame(randomRecords(int64(n), n)).WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 8 {
			f.Add(buf.Bytes()[:buf.Len()/2]) // truncation
			mut := append([]byte(nil), buf.Bytes()...)
			mut[8] ^= 0xff // forged row count
			f.Add(mut)
		}
	}
	f.Add([]byte("LPF1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted frames uphold the public invariants...
		for i := 0; i < fr.Len(); i++ {
			if p := fr.Path(i); p != NoPath && (p < 0 || int(p) >= fr.PathTable().NumPaths()) {
				t.Fatalf("row %d references out-of-range path %d", i, p)
			}
			_ = fr.Switches(i)
			_ = fr.Record(i)
		}
		for i := 0; i < fr.NumPairs(); i++ {
			lo, hi := fr.PairSpan(i)
			if lo < 0 || hi > fr.Len() || lo > hi {
				t.Fatalf("pair %d span [%d,%d) out of range", i, lo, hi)
			}
		}
		// ...and re-encode byte-identically, consuming exactly the bytes
		// the encoder would produce.
		var out bytes.Buffer
		if _, err := fr.WriteTo(&out); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted frame re-encodes differently")
		}
	})
}
