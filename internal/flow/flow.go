// Package flow defines the network flow data model consumed by the
// LLMPrism pipeline.
//
// A flow record is what an ERSPAN-style switch-level collector exports:
// start time, duration, source and destination NIC addresses, byte count
// and the list of switches the flow traversed (§II-B of the paper). The
// analysis side treats addresses as opaque identifiers — mapping an address
// to its physical server is the topology's job, mirroring the provider's
// black-box view of tenant workloads.
package flow

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Addr is an opaque NIC endpoint address on the training fabric. It renders
// as a 10.x.y.z management address. One GPU has exactly one NIC in
// rail-optimized RoCE fabrics, so an Addr identifies a GPU for analysis
// purposes.
type Addr uint32

// String renders the address in dotted form, e.g. "10.0.3.5".
func (a Addr) String() string {
	buf := make([]byte, 0, len("10.255.255.255"))
	buf = append(buf, '1', '0')
	for _, oct := range [3]uint32{uint32(a>>16) & 0xff, uint32(a>>8) & 0xff, uint32(a) & 0xff} {
		buf = append(buf, '.')
		buf = strconv.AppendUint(buf, uint64(oct), 10)
	}
	return string(buf)
}

// ParseAddr parses the dotted form produced by Addr.String: exactly
// "10.x.y.z" with each octet a decimal in [0, 255] and nothing trailing.
func ParseAddr(s string) (Addr, error) {
	rest, ok := strings.CutPrefix(s, "10.")
	if !ok {
		return 0, fmt.Errorf("flow: parse addr %q: want 10.x.y.z form", s)
	}
	var v uint32
	for oct := 0; oct < 3; oct++ {
		if oct > 0 {
			if rest, ok = strings.CutPrefix(rest, "."); !ok {
				return 0, fmt.Errorf("flow: parse addr %q: want 4 octets", s)
			}
		}
		n := 0
		var part uint32
		for n < len(rest) && rest[n] >= '0' && rest[n] <= '9' {
			part = part*10 + uint32(rest[n]-'0')
			if part > 255 {
				return 0, fmt.Errorf("flow: parse addr %q: octet out of range", s)
			}
			n++
		}
		if n == 0 || n > 3 {
			return 0, fmt.Errorf("flow: parse addr %q: bad octet", s)
		}
		v = v<<8 | part
		rest = rest[n:]
	}
	if rest != "" {
		return 0, fmt.Errorf("flow: parse addr %q: trailing garbage %q", s, rest)
	}
	return Addr(v), nil
}

// SwitchID identifies a fabric switch in collected flow records. Production
// collectors derive these from exporter identifiers that do not fit 32 bits
// (SNMP engine IDs, chassis MACs), so the type is a full int64; valid IDs
// are non-negative, and the text codecs reject anything else on decode.
type SwitchID int64

// String renders the switch identifier, e.g. "sw-12".
func (s SwitchID) String() string { return "sw-" + strconv.FormatInt(int64(s), 10) }

// Record is one collected network flow.
type Record struct {
	// ID is a collector-assigned unique identifier.
	ID uint64
	// Start is the flow start time.
	Start time.Time
	// Duration is the flow duration (first to last packet).
	Duration time.Duration
	// Src and Dst are the endpoint NIC addresses.
	Src, Dst Addr
	// Bytes is the flow size in bytes.
	Bytes int64
	// Switches lists the switches the flow traversed, in path order.
	Switches []SwitchID
}

// End returns the flow end time.
func (r Record) End() time.Time { return r.Start.Add(r.Duration) }

// Gbps returns the average flow bandwidth in gigabits per second
// (0 if the duration is zero).
func (r Record) Gbps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Duration.Seconds() / 1e9
}

// Pair returns the canonical (unordered) endpoint pair of the flow.
func (r Record) Pair() Pair { return MakePair(r.Src, r.Dst) }

// Pair is an unordered pair of endpoints with A <= B.
type Pair struct {
	A, B Addr
}

// MakePair returns the canonical pair for two endpoints.
func MakePair(x, y Addr) Pair {
	if x <= y {
		return Pair{A: x, B: y}
	}
	return Pair{A: y, B: x}
}

// String renders the pair as "src<->dst".
func (p Pair) String() string { return p.A.String() + "<->" + p.B.String() }

// Other returns the endpoint of p that is not a. If a is not part of the
// pair it returns p.A.
func (p Pair) Other(a Addr) Addr {
	if p.A == a {
		return p.B
	}
	if p.B == a {
		return p.A
	}
	return p.A
}

// Has reports whether a is one of the pair's endpoints.
func (p Pair) Has(a Addr) bool { return p.A == a || p.B == a }

// SortByStart sorts records by start time ascending (stable on ID for
// deterministic ordering of simultaneous flows).
func SortByStart(records []Record) {
	sort.Slice(records, func(i, j int) bool {
		if !records[i].Start.Equal(records[j].Start) {
			return records[i].Start.Before(records[j].Start)
		}
		return records[i].ID < records[j].ID
	})
}

// Window returns the records whose start time falls in [from, to).
// The input must be sorted by start time; the result aliases the input.
func Window(records []Record, from, to time.Time) []Record {
	lo := sort.Search(len(records), func(i int) bool {
		return !records[i].Start.Before(from)
	})
	hi := sort.Search(len(records), func(i int) bool {
		return !records[i].Start.Before(to)
	})
	return records[lo:hi]
}

// GroupByPair buckets records by their canonical endpoint pair, preserving
// input order inside each bucket.
func GroupByPair(records []Record) map[Pair][]Record {
	groups := make(map[Pair][]Record)
	for _, r := range records {
		p := r.Pair()
		groups[p] = append(groups[p], r)
	}
	return groups
}

// Endpoints returns the distinct endpoint addresses appearing in records,
// sorted ascending.
func Endpoints(records []Record) []Addr {
	seen := make(map[Addr]struct{}, len(records)*2)
	for _, r := range records {
		seen[r.Src] = struct{}{}
		seen[r.Dst] = struct{}{}
	}
	out := make([]Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ByEndpoint buckets records by endpoint: each record appears in the bucket
// of both its source and destination. Input order is preserved per bucket.
func ByEndpoint(records []Record) map[Addr][]Record {
	buckets := make(map[Addr][]Record)
	for _, r := range records {
		buckets[r.Src] = append(buckets[r.Src], r)
		if r.Dst != r.Src {
			buckets[r.Dst] = append(buckets[r.Dst], r)
		}
	}
	return buckets
}

// TotalBytes sums the byte counts of records.
func TotalBytes(records []Record) int64 {
	var total int64
	for _, r := range records {
		total += r.Bytes
	}
	return total
}

// TimeSpan returns the earliest start and latest end over records.
// ok is false when records is empty.
func TimeSpan(records []Record) (from, to time.Time, ok bool) {
	if len(records) == 0 {
		return time.Time{}, time.Time{}, false
	}
	from, to = records[0].Start, records[0].End()
	for _, r := range records[1:] {
		if r.Start.Before(from) {
			from = r.Start
		}
		if r.End().After(to) {
			to = r.End()
		}
	}
	return from, to, true
}
