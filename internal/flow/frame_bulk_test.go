package flow

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// frameBytes serializes f; byte equality is the strongest frame-identity
// check (columns, path table, canonical order — everything WriteTo covers).
func frameBytes(t *testing.T, f *Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// bulkRecords returns records with heavy path sharing and exact duplicates
// — duplicates exercise the total-comparator tie handling of the sharded
// sorts.
func bulkRecords(seed int64, n int) []Record {
	rng := rand.New(rand.NewSource(seed))
	records := randomRecords(seed, n)
	for i := range records {
		if rng.Intn(10) == 0 && i > 0 {
			records[i] = records[i-1] // exact duplicate row
		}
	}
	return records
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, parallelBuildMinRows - 1, parallelBuildMinRows + 1, 3 * parallelBuildMinRows} {
		records := bulkRecords(int64(n)+1, n)
		b1 := NewFrameBuilder()
		for _, r := range records {
			b1.AppendRecord(r)
		}
		want := frameBytes(t, b1.Build())
		for _, workers := range []int{0, 2, 3, 4, 8} {
			b2 := NewFrameBuilder()
			for _, r := range records {
				b2.AppendRecord(r)
			}
			f := b2.BuildParallel(workers)
			if got := frameBytes(t, f); !bytes.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: BuildParallel bytes diverge from serial Build", n, workers)
			}
		}
	}
}

// TestBuildCanonicalAcrossIngestOrder checks the canonicalization Build now
// guarantees: the same record multiset gives byte-identical frames no
// matter the append (and therefore intern) order — the property bulk
// ingest's one-shot table remap relies on.
func TestBuildCanonicalAcrossIngestOrder(t *testing.T) {
	records := bulkRecords(3, 700)
	want := frameBytes(t, NewFrame(records))
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		shuffled := make([]Record, len(records))
		copy(shuffled, records)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := frameBytes(t, NewFrame(shuffled)); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: frame bytes depend on append order", trial)
		}
	}
}

func TestAppendFrameMatchesAppendRecord(t *testing.T) {
	records := bulkRecords(11, 900)
	src := NewFrame(records)

	ref := NewFrameBuilder()
	for _, r := range src.RecordsByStart() {
		ref.AppendRecord(r)
	}
	want := frameBytes(t, ref.Build())

	bulk := NewFrameBuilder()
	bulk.AppendFrame(src)
	if got := frameBytes(t, bulk.Build()); !bytes.Equal(got, want) {
		t.Fatal("AppendFrame frame diverges from per-record AppendRecord frame")
	}

	// Mixing bulk and per-record appends into one builder must also land
	// on the canonical frame.
	extra := bulkRecords(12, 50)
	mixed := NewFrameBuilder()
	for _, r := range extra[:25] {
		mixed.AppendRecord(r)
	}
	mixed.AppendFrame(src)
	for _, r := range extra[25:] {
		mixed.AppendRecord(r)
	}
	all := append(append([]Record{}, records...), extra...)
	if got, want := frameBytes(t, mixed.Build()), frameBytes(t, NewFrame(all)); !bytes.Equal(got, want) {
		t.Fatal("mixed bulk/per-record ingest diverges from the canonical frame")
	}
}

func TestAppendFrameRowsSubset(t *testing.T) {
	records := bulkRecords(17, 400)
	src := NewFrame(records)
	rows := make([]int32, 0, src.Len()/2)
	var picked []Record
	for i := 0; i < src.Len(); i += 2 {
		rows = append(rows, int32(i))
		picked = append(picked, src.Record(i))
	}
	b := NewFrameBuilder()
	b.Grow(len(rows))
	b.AppendFrameRows(src, b.InternTable(src.PathTable()), rows)
	if got, want := frameBytes(t, b.Build()), frameBytes(t, NewFrame(picked)); !bytes.Equal(got, want) {
		t.Fatal("row-subset bulk append diverges from building the picked records")
	}
}

// TestInternTablePreSizesTable is the zero-realloc gate for bulk ingest:
// GrowTable must reserve the full table budget up front, so the interning
// appends never grow the offs/switches backing arrays.
func TestInternTablePreSizesTable(t *testing.T) {
	src := NewFrame(bulkRecords(23, 600))
	tbl := src.PathTable()
	if tbl.NumPaths() == 0 {
		t.Fatal("test frame interned no paths")
	}

	b := NewFrameBuilder()
	b.GrowTable(tbl.NumPaths(), tbl.NumSwitches())
	capOffs, capSwitches := cap(b.table.offs), cap(b.table.switches)
	remap := b.InternTable(tbl)
	if cap(b.table.offs) != capOffs || cap(b.table.switches) != capSwitches {
		t.Fatalf("InternTable reallocated the table: offs cap %d->%d, switches cap %d->%d",
			capOffs, cap(b.table.offs), capSwitches, cap(b.table.switches))
	}
	// Into an empty builder the copy is wholesale: nil remap = identity.
	if remap != nil {
		t.Fatalf("InternTable into an empty builder returned remap %v, want nil (identity)", remap)
	}
	if b.table.NumPaths() != tbl.NumPaths() {
		t.Fatalf("adopted %d of %d paths", b.table.NumPaths(), tbl.NumPaths())
	}
	for p := 0; p < tbl.NumPaths(); p++ {
		if !reflect.DeepEqual(b.Path(PathID(p)), tbl.Path(PathID(p))) {
			t.Fatalf("adopted path %d differs from the source", p)
		}
	}
	// Re-interning the same table is all duplicates: no table growth, and
	// the slow path (non-empty builder) returns the identity explicitly.
	lenOffs, lenSwitches := len(b.table.offs), len(b.table.switches)
	remap2 := b.InternTable(tbl)
	if len(b.table.offs) != lenOffs || len(b.table.switches) != lenSwitches {
		t.Fatal("duplicate InternTable grew the table")
	}
	if len(remap2) != tbl.NumPaths() {
		t.Fatalf("remap covers %d of %d paths", len(remap2), tbl.NumPaths())
	}
	for old, id := range remap2 {
		if id != PathID(old) {
			t.Fatalf("re-interning the same table gave remap[%d]=%d, want identity", old, id)
		}
	}
	remap = remap2

	// Row columns: Grow + AppendFrameRows must not reallocate either.
	b.Grow(src.Len())
	capIDs := cap(b.ids)
	b.AppendFrameRows(src, remap, nil)
	if cap(b.ids) != capIDs {
		t.Fatalf("AppendFrameRows reallocated row columns: cap %d->%d", capIDs, cap(b.ids))
	}
}

func TestMinMaxStartNanos(t *testing.T) {
	records := bulkRecords(29, 300)
	f := NewFrame(records)
	min, max := records[0].Start.UnixNano(), records[0].Start.UnixNano()
	for _, r := range records[1:] {
		if t := r.Start.UnixNano(); t < min {
			min = t
		} else if t > max {
			max = t
		}
	}
	if f.MinStartNanos() != min || f.MaxStartNanos() != max {
		t.Fatalf("MinStartNanos/MaxStartNanos = %d/%d, want %d/%d",
			f.MinStartNanos(), f.MaxStartNanos(), min, max)
	}
}

func TestNewFrameParallelMatchesNewFrame(t *testing.T) {
	records := bulkRecords(31, 2*parallelBuildMinRows)
	want := frameBytes(t, NewFrame(records))
	for _, workers := range []int{0, 1, 4} {
		if got := frameBytes(t, NewFrameParallel(records, workers)); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: NewFrameParallel diverges from NewFrame", workers)
		}
	}
}
