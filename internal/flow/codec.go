package flow

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// csvHeader is the column layout used by WriteCSV/ReadCSV.
var csvHeader = []string{"id", "start_unix_ns", "duration_ns", "src", "dst", "bytes", "switches"}

// WriteCSV writes records in the collector CSV format:
//
//	id,start_unix_ns,duration_ns,src,dst,bytes,switches
//
// where switches is a "|"-separated list of switch ids.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("flow: write csv header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for _, r := range records {
		row[0] = strconv.FormatUint(r.ID, 10)
		row[1] = strconv.FormatInt(r.Start.UnixNano(), 10)
		row[2] = strconv.FormatInt(int64(r.Duration), 10)
		row[3] = r.Src.String()
		row[4] = r.Dst.String()
		row[5] = strconv.FormatInt(r.Bytes, 10)
		row[6] = joinSwitches(r.Switches)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("flow: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("flow: flush csv: %w", err)
	}
	return nil
}

func joinSwitches(switches []SwitchID) string {
	if len(switches) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, s := range switches {
		if i > 0 {
			sb.WriteByte('|')
		}
		sb.WriteString(strconv.FormatInt(int64(s), 10))
	}
	return sb.String()
}

// parseSwitches parses the "|"-separated switch list. IDs are decoded as
// full 64-bit values — the historical int-then-truncate conversion silently
// wrapped IDs past 2^31 into unrelated switches — and out-of-range values
// (unparseable, overflowing, or negative) are rejected instead of corrupted.
func parseSwitches(s string) ([]SwitchID, error) {
	if s == "" {
		return nil, nil
	}
	out := make([]SwitchID, 0, strings.Count(s, "|")+1)
	for {
		part := s
		last := true
		if i := strings.IndexByte(s, '|'); i >= 0 {
			part, s = s[:i], s[i+1:]
			last = false
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("flow: parse switch %q: %w", part, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("flow: negative switch id %d", v)
		}
		out = append(out, SwitchID(v))
		if last {
			return out, nil
		}
	}
}

// ReadCSV reads records written by WriteCSV. It streams: the csv reader
// reuses one row buffer across lines, and each line is parsed in place into
// a preallocated record slot instead of an intermediate value.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("flow: read csv header: %w", err)
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("flow: unexpected csv column %d: got %q, want %q", i, header[i], col)
		}
	}
	records := make([]Record, 0, 64)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flow: read csv line %d: %w", line, err)
		}
		records = append(records, Record{})
		if err := parseCSVRow(row, &records[len(records)-1]); err != nil {
			return nil, fmt.Errorf("flow: csv line %d: %w", line, err)
		}
	}
	return records, nil
}

func parseCSVRow(row []string, rec *Record) error {
	id, err := strconv.ParseUint(row[0], 10, 64)
	if err != nil {
		return fmt.Errorf("id: %w", err)
	}
	startNS, err := strconv.ParseInt(row[1], 10, 64)
	if err != nil {
		return fmt.Errorf("start: %w", err)
	}
	durNS, err := strconv.ParseInt(row[2], 10, 64)
	if err != nil {
		return fmt.Errorf("duration: %w", err)
	}
	if durNS < 0 {
		// A negative duration would fabricate a negative Gbps and drag the
		// monitor's event-time math backwards; reject instead of poisoning.
		return fmt.Errorf("negative duration %dns", durNS)
	}
	src, err := ParseAddr(row[3])
	if err != nil {
		return err
	}
	dst, err := ParseAddr(row[4])
	if err != nil {
		return err
	}
	bytes, err := strconv.ParseInt(row[5], 10, 64)
	if err != nil {
		return fmt.Errorf("bytes: %w", err)
	}
	if bytes < 0 {
		return fmt.Errorf("negative bytes %d", bytes)
	}
	switches, err := parseSwitches(row[6])
	if err != nil {
		return err
	}
	*rec = Record{
		ID:       id,
		Start:    time.Unix(0, startNS).UTC(),
		Duration: time.Duration(durNS),
		Src:      src,
		Dst:      dst,
		Bytes:    bytes,
		Switches: switches,
	}
	return nil
}

// recordJSON is the stable JSONL wire form of a Record. Switches carry the
// full 64-bit SwitchID values: the historical []int32 wire type silently
// truncated IDs past 2^31, corrupting every downstream per-switch diagnosis.
type recordJSON struct {
	ID       uint64  `json:"id"`
	StartNS  int64   `json:"start_unix_ns"`
	DurNS    int64   `json:"duration_ns"`
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	Bytes    int64   `json:"bytes"`
	Switches []int64 `json:"switches,omitempty"`
}

// WriteJSONL writes one JSON object per line for each record.
func WriteJSONL(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		var switches []int64
		if len(r.Switches) > 0 {
			switches = make([]int64, len(r.Switches))
			for i, s := range r.Switches {
				switches[i] = int64(s)
			}
		}
		obj := recordJSON{
			ID:       r.ID,
			StartNS:  r.Start.UnixNano(),
			DurNS:    int64(r.Duration),
			Src:      r.Src.String(),
			Dst:      r.Dst.String(),
			Bytes:    r.Bytes,
			Switches: switches,
		}
		if err := enc.Encode(&obj); err != nil {
			return fmt.Errorf("flow: encode jsonl: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flow: flush jsonl: %w", err)
	}
	return nil
}

// ReadJSONL reads records written by WriteJSONL. Rows carrying negative
// durations, byte counts or switch ids are rejected with a line-numbered
// error rather than decoded into values that poison Gbps and watermark math
// downstream; an absent or empty switches list decodes to a nil slice,
// exactly as ReadCSV and ReadFrame produce.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var records []Record
	for line := 1; ; line++ {
		var obj recordJSON
		if err := dec.Decode(&obj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("flow: decode jsonl line %d: %w", line, err)
		}
		if obj.DurNS < 0 {
			return nil, fmt.Errorf("flow: jsonl line %d: negative duration %dns", line, obj.DurNS)
		}
		if obj.Bytes < 0 {
			return nil, fmt.Errorf("flow: jsonl line %d: negative bytes %d", line, obj.Bytes)
		}
		src, err := ParseAddr(obj.Src)
		if err != nil {
			return nil, fmt.Errorf("flow: jsonl line %d: %w", line, err)
		}
		dst, err := ParseAddr(obj.Dst)
		if err != nil {
			return nil, fmt.Errorf("flow: jsonl line %d: %w", line, err)
		}
		var switches []SwitchID
		if len(obj.Switches) > 0 {
			switches = make([]SwitchID, len(obj.Switches))
			for i, s := range obj.Switches {
				if s < 0 {
					return nil, fmt.Errorf("flow: jsonl line %d: negative switch id %d", line, s)
				}
				switches[i] = SwitchID(s)
			}
		}
		records = append(records, Record{
			ID:       obj.ID,
			Start:    time.Unix(0, obj.StartNS).UTC(),
			Duration: time.Duration(obj.DurNS),
			Src:      src,
			Dst:      dst,
			Bytes:    obj.Bytes,
			Switches: switches,
		})
	}
	return records, nil
}
