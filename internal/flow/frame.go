package flow

import (
	"sort"
	"time"
)

// PathID identifies an interned switch path inside a Frame's PathTable.
type PathID int32

// NoPath is the PathID of the empty switch path.
const NoPath PathID = -1

// PathTable stores deduplicated switch paths back to back: path i occupies
// switches[offs[i]:offs[i+1]].
type PathTable struct {
	offs     []int32
	switches []SwitchID
}

// NumPaths returns the number of distinct non-empty paths interned.
func (t *PathTable) NumPaths() int {
	if len(t.offs) == 0 {
		return 0
	}
	return len(t.offs) - 1
}

// Path returns the switches of path id, nil for NoPath. The result aliases
// the table and must not be modified.
func (t *PathTable) Path(id PathID) []SwitchID {
	if id == NoPath {
		return nil
	}
	return t.switches[t.offs[id]:t.offs[id+1]]
}

// FrameBuilder accumulates rows and interned paths for a Frame. The zero
// value is not usable; construct with NewFrameBuilder.
type FrameBuilder struct {
	ids    []uint64
	starts []int64
	durs   []int64
	srcs   []Addr
	dsts   []Addr
	nbytes []int64
	paths  []PathID

	table PathTable
	index map[string]PathID
	key   []byte
}

// NewFrameBuilder returns an empty builder. The intern index is built
// lazily on the first InternPath, so a builder fed purely by bulk table
// copies (InternTable's identity fast path) never pays for it.
func NewFrameBuilder() *FrameBuilder {
	return &FrameBuilder{}
}

// Len returns the number of rows appended so far.
func (b *FrameBuilder) Len() int { return len(b.ids) }

// Grow pre-sizes the builder for n additional rows.
func (b *FrameBuilder) Grow(n int) {
	need := len(b.ids) + n
	if cap(b.ids) >= need {
		return
	}
	grow := func(s []int64) []int64 { return append(make([]int64, 0, need), s...) }
	b.ids = append(make([]uint64, 0, need), b.ids...)
	b.starts = grow(b.starts)
	b.durs = grow(b.durs)
	b.srcs = append(make([]Addr, 0, need), b.srcs...)
	b.dsts = append(make([]Addr, 0, need), b.dsts...)
	b.nbytes = grow(b.nbytes)
	b.paths = append(make([]PathID, 0, need), b.paths...)
}

// InternPath deduplicates a switch path, returning its stable id. The empty
// path interns as NoPath. The input is copied on first sight only.
func (b *FrameBuilder) InternPath(path []SwitchID) PathID {
	if len(path) == 0 {
		return NoPath
	}
	b.key = b.key[:0]
	for _, s := range path {
		b.key = append(b.key,
			byte(s>>56), byte(s>>48), byte(s>>40), byte(s>>32),
			byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
	}
	if b.index == nil {
		b.rebuildIndex()
	}
	// map[string] lookup on a []byte key does not allocate; the string is
	// materialized only when the path is new.
	if id, ok := b.index[string(b.key)]; ok {
		return id
	}
	if len(b.table.offs) == 0 {
		b.table.offs = append(b.table.offs, 0)
	}
	id := PathID(len(b.table.offs) - 1)
	b.table.switches = append(b.table.switches, path...)
	b.table.offs = append(b.table.offs, int32(len(b.table.switches)))
	b.index[string(b.key)] = id
	return id
}

// rebuildIndex reconstructs the intern index from the table — needed after
// InternTable's wholesale table copy, which leaves the index stale (nil).
func (b *FrameBuilder) rebuildIndex() {
	np := b.table.NumPaths()
	b.index = make(map[string]PathID, np)
	var key []byte
	for p := 0; p < np; p++ {
		key = key[:0]
		for _, s := range b.table.switches[b.table.offs[p]:b.table.offs[p+1]] {
			key = append(key,
				byte(s>>56), byte(s>>48), byte(s>>40), byte(s>>32),
				byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
		}
		b.index[string(key)] = PathID(p)
	}
}

// Append adds one row with an already-interned path.
func (b *FrameBuilder) Append(id uint64, start time.Time, dur time.Duration, src, dst Addr, bytes int64, path PathID) {
	b.ids = append(b.ids, id)
	b.starts = append(b.starts, start.UnixNano())
	b.durs = append(b.durs, int64(dur))
	b.srcs = append(b.srcs, src)
	b.dsts = append(b.dsts, dst)
	b.nbytes = append(b.nbytes, bytes)
	b.paths = append(b.paths, path)
}

// AppendRecord adds one row, interning the record's switch path.
func (b *FrameBuilder) AppendRecord(r Record) {
	b.Append(r.ID, r.Start, r.Duration, r.Src, r.Dst, r.Bytes, b.InternPath(r.Switches))
}

// Path returns the switch path interned under id (nil for NoPath). The
// slice aliases the builder's path table and must be treated as read-only.
func (b *FrameBuilder) Path(id PathID) []SwitchID { return b.table.Path(id) }

// RecordAt materializes row i in append order (rows are not sorted until
// Build). The Switches slice aliases the builder's interned path table and
// must be treated as read-only.
func (b *FrameBuilder) RecordAt(i int) Record {
	return Record{
		ID:       b.ids[i],
		Start:    time.Unix(0, b.starts[i]).UTC(),
		Duration: time.Duration(b.durs[i]),
		Src:      b.srcs[i],
		Dst:      b.dsts[i],
		Bytes:    b.nbytes[i],
		Switches: b.table.Path(b.paths[i]),
	}
}

// Build freezes the accumulated rows into a Frame. The builder remains
// usable; paths interned so far keep their ids, and rows appended later
// appear only in subsequently built frames.
//
// Built frames are canonical: rows are sorted by (pair, start, id) and the
// path table is renumbered in first-use order over the sorted rows (paths
// no row references are dropped), so the same row multiset produces
// byte-identical WriteTo output regardless of append order, intern order,
// or which ingest path (per-record or bulk) filled the builder. Build is
// the single-threaded reference; BuildParallel(workers) produces the same
// bytes on multiple cores.
func (b *FrameBuilder) Build() *Frame { return b.BuildParallel(1) }

// buildIndexes derives the pair index and the start-ordered permutation from
// already-canonically-sorted columns. Build and ReadFrame share it, so a
// decoded frame's indexes are bit-identical to the builder's for the same
// columns.
func (f *Frame) buildIndexes() { f.buildIndexesParallel(1) }

// Frame is the immutable struct-of-arrays form of one analysis window:
// every Record field lives in its own column, switch paths are interned
// once into a shared PathTable, and rows are sorted by (endpoint pair,
// start, id). Construct with NewFrame or FrameBuilder.Build.
//
// The layout exists because the analysis pipeline re-reads the same window
// many times — once per job, once per pair, once per rank — and the
// row-major []Record form makes every one of those passes a full scan that
// drags each record's heap-allocated Switches slice through the cache. The
// frame gives each access pattern an index instead:
//
//   - the pair index (Pairs/PairSpan) makes "all records of pair p" a
//     contiguous span, already sorted by start time;
//   - views (Select/SelectMany) make "one job's records" a list of pair
//     spans plus a start-ordered row permutation, with no record copying;
//   - the path table makes "the switches of record i" an index lookup into
//     storage shared by every record on the same route.
//
// Determinism discipline: a frame built from the same multiset of records
// is identical regardless of input order (rows are sorted by (pair, start,
// id), and View.Rows orders rows by (start, id) exactly like SortByStart),
// so frame-based consumers iterate records in the same order as the
// classic sorted-[]Record code paths and produce bit-identical results —
// including float accumulation order. Timestamps are normalized to UTC
// nanoseconds; materialized records carry switch slices that alias the
// shared path table and must be treated as read-only.
type Frame struct {
	ids    []uint64
	starts []int64 // UnixNano, UTC
	durs   []int64
	srcs   []Addr
	dsts   []Addr
	nbytes []int64
	paths  []PathID

	table PathTable

	pairs   []Pair  // distinct canonical pairs, ascending
	pairOff []int32 // pair i spans rows [pairOff[i], pairOff[i+1])
	rowPair []int32 // pair index of each row
	byStart []int32 // rows in (start, id) order
}

// NewFrame builds a frame from a record slice. The input is not modified;
// its order does not matter.
func NewFrame(records []Record) *Frame {
	b := NewFrameBuilder()
	b.Grow(len(records))
	for _, r := range records {
		b.AppendRecord(r)
	}
	return b.Build()
}

// Len returns the number of rows.
func (f *Frame) Len() int { return len(f.ids) }

// NumPairs returns the number of distinct endpoint pairs.
func (f *Frame) NumPairs() int { return len(f.pairs) }

// PairAt returns the i-th distinct pair (ascending order).
func (f *Frame) PairAt(i int) Pair { return f.pairs[i] }

// PairSpan returns the row span [lo, hi) of the i-th pair; rows inside a
// span are sorted by (start, id).
func (f *Frame) PairSpan(i int) (lo, hi int) {
	return int(f.pairOff[i]), int(f.pairOff[i+1])
}

// Pairs returns the distinct pairs in ascending order. The result aliases
// the frame and must not be modified.
func (f *Frame) Pairs() []Pair { return f.pairs }

// PairOf returns the canonical pair of row i.
func (f *Frame) PairOf(i int) Pair { return f.pairs[f.rowPair[i]] }

// ID returns the collector id of row i.
func (f *Frame) ID(i int) uint64 { return f.ids[i] }

// Start returns the start time of row i (UTC).
func (f *Frame) Start(i int) time.Time { return time.Unix(0, f.starts[i]).UTC() }

// StartNanos returns the start time of row i as UnixNano.
func (f *Frame) StartNanos(i int) int64 { return f.starts[i] }

// Duration returns the duration of row i.
func (f *Frame) Duration(i int) time.Duration { return time.Duration(f.durs[i]) }

// End returns the end time of row i.
func (f *Frame) End(i int) time.Time { return time.Unix(0, f.starts[i]+f.durs[i]).UTC() }

// Src returns the source endpoint of row i.
func (f *Frame) Src(i int) Addr { return f.srcs[i] }

// Dst returns the destination endpoint of row i.
func (f *Frame) Dst(i int) Addr { return f.dsts[i] }

// Bytes returns the byte count of row i.
func (f *Frame) Bytes(i int) int64 { return f.nbytes[i] }

// Gbps returns the average bandwidth of row i in gigabits per second,
// computed exactly as Record.Gbps.
func (f *Frame) Gbps(i int) float64 {
	d := time.Duration(f.durs[i])
	if d <= 0 {
		return 0
	}
	return float64(f.nbytes[i]) * 8 / d.Seconds() / 1e9
}

// Path returns the interned path id of row i.
func (f *Frame) Path(i int) PathID { return f.paths[i] }

// Switches returns the switch path of row i. The result aliases the shared
// path table and must not be modified; empty paths return nil.
func (f *Frame) Switches(i int) []SwitchID { return f.table.Path(f.paths[i]) }

// PathTable returns the frame's interned path table.
func (f *Frame) PathTable() *PathTable { return &f.table }

// Record materializes row i. The Switches field aliases the shared path
// table and must be treated as read-only.
func (f *Frame) Record(i int) Record {
	return Record{
		ID:       f.ids[i],
		Start:    f.Start(i),
		Duration: time.Duration(f.durs[i]),
		Src:      f.srcs[i],
		Dst:      f.dsts[i],
		Bytes:    f.nbytes[i],
		Switches: f.table.Path(f.paths[i]),
	}
}

// RecordsByStart materializes every row in (start, id) order — the order
// SortByStart produces. Switch slices alias the shared path table.
func (f *Frame) RecordsByStart() []Record {
	out := make([]Record, len(f.byStart))
	for i, r := range f.byStart {
		out[i] = f.Record(int(r))
	}
	return out
}

// Endpoints returns the distinct endpoint addresses, ascending. Unlike the
// record-slice Endpoints helper this walks the pair index, not the rows.
func (f *Frame) Endpoints() []Addr {
	var out []Addr
	seen := make(map[Addr]struct{}, 2*len(f.pairs))
	for _, p := range f.pairs {
		if _, ok := seen[p.A]; !ok {
			seen[p.A] = struct{}{}
			out = append(out, p.A)
		}
		if _, ok := seen[p.B]; !ok {
			seen[p.B] = struct{}{}
			out = append(out, p.B)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns the view covering the whole frame. The view's index arrays
// are built on demand — the per-job pipeline goes through SelectMany and
// never pays for them.
func (f *Frame) All() View {
	pairIdx := make([]int32, len(f.pairs))
	for i := range pairIdx {
		pairIdx[i] = int32(i)
	}
	rowPair := make([]int32, len(f.byStart))
	for i, r := range f.byStart {
		rowPair[i] = f.rowPair[r]
	}
	return View{f: f, pairIdx: pairIdx, rows: f.byStart, rowPair: rowPair}
}

// Select returns the view of every pair whose two endpoints both belong to
// endpoints. No rows are copied. It is SelectMany with a single group, so
// both selection forms share one row-ordering implementation.
func (f *Frame) Select(endpoints []Addr) View {
	return f.SelectMany([][]Addr{endpoints})[0]
}

// SelectMany partitions the frame into one view per endpoint group in a
// single pass over the pair index and the start-ordered rows. Groups must
// be disjoint; pairs bridging two groups (or touching no group) belong to
// no view. The i-th view corresponds to groups[i], and each view's rows
// are in (start, id) order.
func (f *Frame) SelectMany(groups [][]Addr) []View {
	owner := make(map[Addr]int32, len(groups)*4)
	for g, members := range groups {
		for _, a := range members {
			owner[a] = int32(g) + 1
		}
	}
	views := make([]View, len(groups))
	for g := range views {
		views[g].f = f
	}
	// Assign each pair to its group; remember its view-local index.
	pairGroup := make([]int32, len(f.pairs))
	pairLocal := make([]int32, len(f.pairs))
	counts := make([]int, len(groups))
	for i, p := range f.pairs {
		g := owner[p.A]
		if g == 0 || owner[p.B] != g {
			pairGroup[i] = -1
			continue
		}
		v := &views[g-1]
		pairGroup[i] = g - 1
		pairLocal[i] = int32(len(v.pairIdx))
		v.pairIdx = append(v.pairIdx, int32(i))
		lo, hi := f.PairSpan(i)
		counts[g-1] += hi - lo
	}
	for g := range views {
		views[g].rows = make([]int32, 0, counts[g])
		views[g].rowPair = make([]int32, 0, counts[g])
	}
	// One pass over the start order keeps every view's rows start-ordered.
	for _, r := range f.byStart {
		gp := f.rowPair[r]
		g := pairGroup[gp]
		if g < 0 {
			continue
		}
		views[g].rows = append(views[g].rows, r)
		views[g].rowPair = append(views[g].rowPair, pairLocal[gp])
	}
	return views
}

// View is a cheap subset of a Frame: a sorted list of pair spans plus a
// start-ordered row permutation. Views alias their frame; the zero View is
// empty and usable.
type View struct {
	f       *Frame
	pairIdx []int32 // ascending global pair indices
	rows    []int32 // frame rows in (start, id) order
	rowPair []int32 // view-local pair index per rows element
}

// Frame returns the backing frame (nil for the zero View).
func (v View) Frame() *Frame { return v.f }

// Len returns the number of rows in the view.
func (v View) Len() int { return len(v.rows) }

// NumPairs returns the number of pairs in the view.
func (v View) NumPairs() int { return len(v.pairIdx) }

// PairAt returns the view's i-th pair (ascending order).
func (v View) PairAt(i int) Pair { return v.f.pairs[v.pairIdx[i]] }

// PairSpan returns the frame row span [lo, hi) of the view's i-th pair.
func (v View) PairSpan(i int) (lo, hi int) { return v.f.PairSpan(int(v.pairIdx[i])) }

// Rows returns the view's frame row indices in (start, id) order. The
// result aliases the view and must not be modified.
func (v View) Rows() []int32 { return v.rows }

// RowPairs returns, parallel to Rows, the view-local pair index of each
// row. The result aliases the view and must not be modified.
func (v View) RowPairs() []int32 { return v.rowPair }

// Records materializes the view's rows in (start, id) order — exactly what
// filtering a SortByStart-ed record slice to the view's pairs yields.
// Switch slices alias the shared path table.
func (v View) Records() []Record {
	out := make([]Record, len(v.rows))
	for i, r := range v.rows {
		out[i] = v.f.Record(int(r))
	}
	return out
}

// Endpoints returns the distinct endpoints of the view's pairs, ascending.
func (v View) Endpoints() []Addr {
	seen := make(map[Addr]struct{}, 2*len(v.pairIdx))
	var out []Addr
	for _, gp := range v.pairIdx {
		p := v.f.pairs[gp]
		if _, ok := seen[p.A]; !ok {
			seen[p.A] = struct{}{}
			out = append(out, p.A)
		}
		if _, ok := seen[p.B]; !ok {
			seen[p.B] = struct{}{}
			out = append(out, p.B)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
