package flow

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// TestFrameBinaryRoundTripBitIdentical is the archive acceptance property:
// Frame → WriteTo → ReadFrame must reproduce the frame bit-identically —
// every column, the interned path table, and the derived pair/start
// indexes — for arbitrary record multisets. In-package DeepEqual sees the
// unexported fields, so this compares the complete in-memory structure.
func TestFrameBinaryRoundTripBitIdentical(t *testing.T) {
	property := func(seed int64, n uint8) bool {
		f := NewFrame(randomRecords(seed, int(n)))
		var buf bytes.Buffer
		wrote, err := f.WriteTo(&buf)
		if err != nil {
			t.Logf("WriteTo: %v", err)
			return false
		}
		if wrote != int64(buf.Len()) {
			t.Logf("WriteTo reported %d bytes, wrote %d", wrote, buf.Len())
			return false
		}
		if wrote != f.EncodedLen() {
			t.Logf("EncodedLen = %d, wrote %d", f.EncodedLen(), wrote)
			return false
		}
		got, err := ReadFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("ReadFrame: %v", err)
			return false
		}
		if !reflect.DeepEqual(f, got) {
			t.Logf("decoded frame differs from original")
			return false
		}
		// The encoding itself is deterministic: re-encoding the decoded
		// frame reproduces the bytes.
		var again bytes.Buffer
		if _, err := got.WriteTo(&again); err != nil {
			t.Logf("re-encode: %v", err)
			return false
		}
		return bytes.Equal(buf.Bytes(), again.Bytes())
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFrameBinaryLargeSwitchIDs pins the corruption bugfix at the binary
// layer too: switch ids past 2^31 survive the frame codec exactly.
func TestFrameBinaryLargeSwitchIDs(t *testing.T) {
	big := []SwitchID{1 << 33, 1<<62 + 7, 0}
	f := NewFrame([]Record{
		rec(1, 0, time.Second, 1, 2, 100, big...),
		rec(2, time.Second, time.Second, 1, 2, 100, big...),
	})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Switches(0), big) {
		t.Errorf("switches = %v, want %v", got.Switches(0), big)
	}
	if got.PathTable().NumPaths() != 1 {
		t.Errorf("paths = %d, want 1 (both rows share one interned path)", got.PathTable().NumPaths())
	}
}

func TestFrameBinaryEmptyFrame(t *testing.T) {
	f := NewFrame(nil)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Error("empty frame did not round-trip bit-identically")
	}
}

// TestReadFrameRejectsCorruption flips, truncates and forges inputs; every
// mutation must yield an error, never a quietly different frame.
func TestReadFrameRejectsCorruption(t *testing.T) {
	f := NewFrame(randomRecords(3, 40))
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] = 'X'
		if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		for _, off := range []int{5, frameHeaderSize + 3, len(valid) / 2, len(valid) - 2} {
			b := append([]byte(nil), valid...)
			b[off] ^= 0x40
			if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
				t.Errorf("bit flip at %d accepted", off)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{1, frameHeaderSize, len(valid) / 2, len(valid) - 1} {
			if _, err := ReadFrame(bytes.NewReader(valid[:cut])); err == nil {
				t.Errorf("truncation to %d bytes accepted", cut)
			}
		}
	})
	t.Run("huge declared rows", func(t *testing.T) {
		b := append([]byte(nil), valid[:frameHeaderSize]...)
		b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff
		if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
			t.Error("forged row count with no data accepted")
		}
	})
	t.Run("non-canonical order rejected", func(t *testing.T) {
		// Swap two rows of the ids+starts region to break (start, id)
		// order within a pair, then re-checksum so only the order check
		// can object. Build the forged file from a two-row frame where
		// both rows share one pair.
		ff := NewFrame([]Record{
			rec(1, 0, time.Second, 1, 2, 10),
			rec(2, time.Second, time.Second, 1, 2, 10),
		})
		var fb bytes.Buffer
		if _, err := ff.WriteTo(&fb); err != nil {
			t.Fatal(err)
		}
		b := fb.Bytes()
		// ids column starts right after the header: swap the two u64 ids
		// and the two i64 starts so rows arrive as (id 2, t1), (id 1, t0).
		swap8 := func(off int) {
			for i := 0; i < 8; i++ {
				b[off+i], b[off+8+i] = b[off+8+i], b[off+i]
			}
		}
		swap8(frameHeaderSize)      // ids
		swap8(frameHeaderSize + 16) // starts
		rechecksum(b)
		if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
			t.Error("non-canonical row order accepted")
		}
	})
}

// TestFrameBinaryRejectsNegativeValues: the binary codec applies the same
// domain validation as the text codecs, on both sides — a frame carrying
// negative durations, bytes or switch ids neither encodes (no archive time
// bombs) nor decodes (trust boundary).
func TestFrameBinaryRejectsNegativeValues(t *testing.T) {
	bad := []*Frame{
		NewFrame([]Record{{ID: 1, Start: epoch, Duration: -time.Second, Src: 1, Dst: 2, Bytes: 5}}),
		NewFrame([]Record{{ID: 1, Start: epoch, Duration: time.Second, Src: 1, Dst: 2, Bytes: -5}}),
		NewFrame([]Record{{ID: 1, Start: epoch, Duration: time.Second, Src: 1, Dst: 2, Bytes: 5, Switches: []SwitchID{-3}}}),
	}
	for i, f := range bad {
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err == nil {
			t.Errorf("frame %d: negative value encoded without error", i)
		}
	}
	// Decode-side: forge a valid-checksum image with a negative duration.
	f := NewFrame([]Record{rec(1, 0, time.Second, 1, 2, 10)})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// durs column starts after ids (8) and starts (8): row 0's duration.
	durOff := frameHeaderSize + 16
	b[durOff+7] |= 0x80 // set the sign bit
	rechecksum(b)
	if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
		t.Error("negative duration decoded without error")
	}
}

// rechecksum recomputes the trailing CRC over a mutated frame image so
// structural validation, not the checksum, is what a test exercises.
func rechecksum(b []byte) {
	sum := crc32.ChecksumIEEE(b[:len(b)-4])
	binary.LittleEndian.PutUint32(b[len(b)-4:], sum)
}

// TestWriteToPropagatesSinkErrors: a failing writer must surface, not be
// swallowed into a silently short archive.
func TestWriteToPropagatesSinkErrors(t *testing.T) {
	f := NewFrame(randomRecords(5, 100))
	if _, err := f.WriteTo(failAfter{limit: 10}); err == nil {
		t.Error("sink failure swallowed")
	}
}

type failAfter struct{ limit int }

func (fa failAfter) Write(p []byte) (int, error) {
	if len(p) > fa.limit {
		return fa.limit, io.ErrShortWrite
	}
	return len(p), nil
}
