package flow

// Binary frame codec: the persistence form of a Frame used by the archive
// subsystem (internal/archive). Unlike the CSV/JSONL record codecs, which
// pay text parsing plus a full FrameBuilder sort on every load, this format
// serializes the frame's columns directly — ids, starts, durs, addrs,
// bytes, row→path ids — with the interned PathTable written once per frame
// instead of once per row, so decoding is a validated column copy and an
// index rebuild with no parsing and no sort.
//
// Layout (all integers little-endian):
//
//	magic "LPF1" | rows u32 | paths u32 | pathSwitches u32
//	ids      rows × u64
//	starts   rows × i64        (UnixNano, UTC)
//	durs     rows × i64
//	srcs     rows × u32
//	dsts     rows × u32
//	bytes    rows × i64
//	pathIDs  rows × i32        (NoPath = -1)
//	pathOffs (paths+1) × u32   (present only when paths > 0)
//	switches pathSwitches × i64
//	crc32    u32               (IEEE, over everything above)
//
// The magic carries the version ("LPF" + format digit); an incompatible
// future layout bumps the digit. ReadFrame accepts only frames in canonical
// column order — rows sorted by (endpoint pair, start, id), path offsets
// strictly increasing, path ids in range — and verifies the trailing CRC,
// so a decoded frame upholds every Frame invariant and a truncated or
// bit-flipped file fails loudly instead of corrupting diagnoses.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// frameMagic identifies version 1 of the binary frame layout.
var frameMagic = [4]byte{'L', 'P', 'F', '1'}

// FrameMagic is the frame magic as seen by external scanners: the archive
// salvage scan peeks for it to tell a segment blob from torn bookkeeping
// bytes before paying for a full decode.
var FrameMagic = frameMagic

// frameHeaderSize is magic + rows + paths + pathSwitches.
const frameHeaderSize = 4 + 4 + 4 + 4

// FrameOverhead is the minimum encoded size of any frame: header plus the
// trailing checksum. No valid frame blob is shorter.
const FrameOverhead = frameHeaderSize + 4

// readChunk bounds how much decode memory a declared column length can
// commit before the bytes actually arrive, so a forged header claiming
// billions of rows fails at EOF instead of out of memory.
const readChunk = 1 << 20

// frameRowSize is the per-row byte cost across all seven columns.
const frameRowSize = 8 + 8 + 8 + 4 + 4 + 8 + 4

// EncodedLen returns the exact byte length WriteTo produces for the frame —
// a closed-form function of the row, path and switch counts, so callers
// that need a length prefix (the archive's segment headers) can write it
// before streaming the frame instead of buffering the encoding.
func (f *Frame) EncodedLen() int64 {
	sz := int64(frameHeaderSize) + int64(len(f.ids))*frameRowSize + 4
	if p := int64(f.table.NumPaths()); p > 0 {
		sz += (p+1)*4 + int64(len(f.table.switches))*8
	}
	return sz
}

// WriteTo serializes the frame in the binary columnar layout, returning the
// number of bytes written. It implements io.WriterTo. The encoding is
// deterministic: equal frames produce identical bytes.
func (f *Frame) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	cw := &countingWriter{w: io.MultiWriter(w, crc)}

	n := len(f.ids)
	paths := f.table.NumPaths()
	if uint64(n) > math.MaxUint32 || uint64(paths) > math.MaxUint32 || uint64(len(f.table.switches)) > math.MaxUint32 {
		return 0, fmt.Errorf("flow: frame too large for binary layout (%d rows, %d paths)", n, paths)
	}
	// Refuse to persist values the decoder (and every text codec) rejects:
	// a frame that encodes but can never decode is an archive time bomb.
	for i := 0; i < n; i++ {
		if f.durs[i] < 0 {
			return 0, fmt.Errorf("flow: frame row %d: negative duration %dns", i, f.durs[i])
		}
		if f.nbytes[i] < 0 {
			return 0, fmt.Errorf("flow: frame row %d: negative bytes %d", i, f.nbytes[i])
		}
	}
	for i, s := range f.table.switches {
		if s < 0 {
			return 0, fmt.Errorf("flow: frame path table entry %d: negative switch id %d", i, s)
		}
	}
	hdr := make([]byte, frameHeaderSize)
	copy(hdr, frameMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(paths))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(f.table.switches)))
	if _, err := cw.Write(hdr); err != nil {
		return cw.n, fmt.Errorf("flow: write frame header: %w", err)
	}

	// Columns stream through one bounded scratch buffer: element
	// conversion happens inside the chunk loop, so no full-length
	// temporary slice is ever materialized.
	buf := make([]byte, 0, readChunk)
	var err error
	writeCols := func() error {
		if buf, err = writeCol64(cw, buf, f.ids); err != nil {
			return err
		}
		if buf, err = writeCol64(cw, buf, f.starts); err != nil {
			return err
		}
		if buf, err = writeCol64(cw, buf, f.durs); err != nil {
			return err
		}
		if buf, err = writeCol32(cw, buf, f.srcs); err != nil {
			return err
		}
		if buf, err = writeCol32(cw, buf, f.dsts); err != nil {
			return err
		}
		if buf, err = writeCol64(cw, buf, f.nbytes); err != nil {
			return err
		}
		if buf, err = writeCol32(cw, buf, f.paths); err != nil {
			return err
		}
		if paths > 0 {
			if buf, err = writeCol32(cw, buf, f.table.offs); err != nil {
				return err
			}
			if buf, err = writeCol64(cw, buf, f.table.switches); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeCols(); err != nil {
		return cw.n, fmt.Errorf("flow: write frame column: %w", err)
	}
	sum := binary.LittleEndian.AppendUint32(nil, crc.Sum32())
	if _, err := w.Write(sum); err != nil {
		return cw.n, fmt.Errorf("flow: write frame checksum: %w", err)
	}
	return cw.n + 4, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeCol32 / writeCol64 stream one fixed-width column through the shared
// scratch buffer, readChunk bytes at a time, converting elements in place.
// They return the (possibly re-capacitied) buffer for reuse.
func writeCol32[T ~int32 | ~uint32](w io.Writer, buf []byte, vs []T) ([]byte, error) {
	for lo := 0; lo < len(vs); {
		hi := min(lo+readChunk/4, len(vs))
		buf = buf[:0]
		for _, v := range vs[lo:hi] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
		if _, err := w.Write(buf); err != nil {
			return buf, err
		}
		lo = hi
	}
	return buf, nil
}

func writeCol64[T ~int64 | ~uint64](w io.Writer, buf []byte, vs []T) ([]byte, error) {
	for lo := 0; lo < len(vs); {
		hi := min(lo+readChunk/8, len(vs))
		buf = buf[:0]
		for _, v := range vs[lo:hi] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
		if _, err := w.Write(buf); err != nil {
			return buf, err
		}
		lo = hi
	}
	return buf, nil
}

// ReadFrame decodes one frame written by Frame.WriteTo. The decoder is
// strict: it verifies the magic, the trailing CRC, path-id ranges, the
// path-table offsets and the canonical (pair, start, id) row order, so the
// returned frame is bit-identical — columns, path table and derived indexes
// — to the frame that was written, and arbitrary input can never produce a
// frame that violates the Frame invariants.
func ReadFrame(r io.Reader) (*Frame, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	hdr := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("flow: read frame header: %w", err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return nil, fmt.Errorf("flow: bad frame magic %q", hdr[:4])
	}
	rows64 := int64(binary.LittleEndian.Uint32(hdr[4:]))
	paths64 := int64(binary.LittleEndian.Uint32(hdr[8:]))
	nswitches64 := int64(binary.LittleEndian.Uint32(hdr[12:]))
	if rows64 > math.MaxInt || paths64 > math.MaxInt || nswitches64 > math.MaxInt {
		// Only reachable on 32-bit platforms, where a u32 count can
		// exceed int; reject instead of wrapping negative into make().
		return nil, fmt.Errorf("flow: frame counts (%d rows, %d paths, %d switches) exceed platform limits", rows64, paths64, nswitches64)
	}
	rows, paths, nswitches := int(rows64), int(paths64), int(nswitches64)
	if paths > 0 && (nswitches < paths) {
		// Every interned path holds at least one switch.
		return nil, fmt.Errorf("flow: frame declares %d paths over %d switches", paths, nswitches)
	}
	if paths == 0 && nswitches != 0 {
		return nil, fmt.Errorf("flow: frame declares %d switches with no paths", nswitches)
	}

	d := &frameDecoder{r: tr}
	f := &Frame{
		ids:    d.u64s(rows),
		starts: d.i64s(rows),
		durs:   d.i64s(rows),
		srcs:   d.addrs(rows),
		dsts:   d.addrs(rows),
		nbytes: d.i64s(rows),
	}
	rowPaths := d.u32s(rows)
	var offs []uint32
	var switches []int64
	if paths > 0 {
		offs = d.u32s(paths + 1)
		switches = d.i64s64(nswitches)
	}
	if d.err != nil {
		return nil, fmt.Errorf("flow: read frame columns: %w", d.err)
	}
	want := crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("flow: read frame checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("flow: frame checksum mismatch: file %08x, computed %08x", got, want)
	}

	// The same domain validation the text codecs apply: negative durations,
	// byte counts and switch ids poison Gbps and watermark math downstream,
	// so the binary trust boundary rejects them too.
	for i := 0; i < rows; i++ {
		if f.durs[i] < 0 {
			return nil, fmt.Errorf("flow: frame row %d: negative duration %dns", i, f.durs[i])
		}
		if f.nbytes[i] < 0 {
			return nil, fmt.Errorf("flow: frame row %d: negative bytes %d", i, f.nbytes[i])
		}
	}
	for i, s := range switches {
		if s < 0 {
			return nil, fmt.Errorf("flow: frame path table entry %d: negative switch id %d", i, s)
		}
	}

	// Path table: offsets must start at 0, increase strictly (no empty
	// interned path exists — empty paths are NoPath) and end at the switch
	// count.
	if paths > 0 {
		if offs[0] != 0 {
			return nil, fmt.Errorf("flow: frame path offsets start at %d", offs[0])
		}
		f.table.offs = make([]int32, paths+1)
		for i := 1; i <= paths; i++ {
			if offs[i] <= offs[i-1] || offs[i] > uint32(nswitches) {
				return nil, fmt.Errorf("flow: frame path offset %d out of order", i)
			}
			f.table.offs[i] = int32(offs[i])
		}
		if int(offs[paths]) != nswitches {
			return nil, fmt.Errorf("flow: frame path offsets cover %d of %d switches", offs[paths], nswitches)
		}
		f.table.switches = make([]SwitchID, nswitches)
		for i, s := range switches {
			f.table.switches[i] = SwitchID(s)
		}
	}
	f.paths = make([]PathID, rows)
	for i, p := range rowPaths {
		id := PathID(int32(p))
		if id != NoPath && (id < 0 || int(id) >= paths) {
			return nil, fmt.Errorf("flow: frame row %d references path %d of %d", i, id, paths)
		}
		f.paths[i] = id
	}
	// Canonical row order: (pair, start, id) non-decreasing, exactly the
	// order FrameBuilder.Build establishes. The derived indexes below
	// assume it.
	for i := 1; i < rows; i++ {
		p, q := MakePair(f.srcs[i-1], f.dsts[i-1]), MakePair(f.srcs[i], f.dsts[i])
		if p.A != q.A || p.B != q.B {
			if q.A < p.A || (q.A == p.A && q.B < p.B) {
				return nil, fmt.Errorf("flow: frame rows %d..%d not in canonical pair order", i-1, i)
			}
			continue
		}
		if f.starts[i] < f.starts[i-1] ||
			(f.starts[i] == f.starts[i-1] && f.ids[i] < f.ids[i-1]) {
			return nil, fmt.Errorf("flow: frame rows %d..%d not in canonical (start, id) order", i-1, i)
		}
	}
	f.buildIndexes()
	return f, nil
}

// frameDecoder reads fixed-width columns, growing allocations with the
// bytes actually read (readChunk at a time) so declared lengths are
// commitments the input must honor, not allocations it gets for free.
type frameDecoder struct {
	r   io.Reader
	buf []byte
	err error
}

// block reads exactly n bytes into the decoder's scratch buffer.
func (d *frameDecoder) block(n int) []byte {
	if d.err != nil {
		return nil
	}
	if cap(d.buf) < n && n <= readChunk {
		d.buf = make([]byte, n)
	}
	if n <= readChunk {
		d.buf = d.buf[:cap(d.buf)][:n]
		if _, err := io.ReadFull(d.r, d.buf); err != nil {
			d.err = err
			return nil
		}
		return d.buf
	}
	out := make([]byte, 0, readChunk)
	for len(out) < n {
		m := min(n-len(out), readChunk)
		off := len(out)
		out = append(out, make([]byte, m)...)
		if _, err := io.ReadFull(d.r, out[off:]); err != nil {
			d.err = err
			return nil
		}
	}
	return out
}

func (d *frameDecoder) u64s(n int) []uint64 {
	out := make([]uint64, 0, min(n, readChunk/8))
	for len(out) < n {
		m := min(n-len(out), readChunk/8)
		b := d.block(m * 8)
		if d.err != nil {
			return nil
		}
		for i := 0; i < m; i++ {
			out = append(out, binary.LittleEndian.Uint64(b[i*8:]))
		}
	}
	return out
}

func (d *frameDecoder) i64s(n int) []int64 {
	u := d.u64s(n)
	if d.err != nil {
		return nil
	}
	out := make([]int64, len(u))
	for i, v := range u {
		out[i] = int64(v)
	}
	return out
}

// i64s64 is i64s for columns whose natural Go type is []int64 already; it
// exists only to keep call sites readable.
func (d *frameDecoder) i64s64(n int) []int64 { return d.i64s(n) }

func (d *frameDecoder) u32s(n int) []uint32 {
	out := make([]uint32, 0, min(n, readChunk/4))
	for len(out) < n {
		m := min(n-len(out), readChunk/4)
		b := d.block(m * 4)
		if d.err != nil {
			return nil
		}
		for i := 0; i < m; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[i*4:]))
		}
	}
	return out
}

func (d *frameDecoder) addrs(n int) []Addr {
	u := d.u32s(n)
	if d.err != nil {
		return nil
	}
	out := make([]Addr, len(u))
	for i, v := range u {
		out[i] = Addr(v)
	}
	return out
}
