package flow

import (
	"runtime"
	"sort"
	"sync"
)

// parallelBuildMinRows is the row count below which BuildParallel runs the
// serial path regardless of the requested worker count: goroutine fan-out
// costs more than it saves on small windows, and most test frames stay on
// the reference path.
const parallelBuildMinRows = 4096

// BuildParallel is Build with the permutation sort, the column permutation
// and the start-index sort spread over workers goroutines (workers <= 0
// means GOMAXPROCS). The output is byte-identical to Build's for every
// worker count: rows are partitioned by canonical-pair hash, shards are
// sorted concurrently with a total comparator ((pair, start, id), original
// row index breaking exact ties), and the k-way merge of sorted shards
// therefore reproduces the unique globally sorted permutation no matter how
// many shards there were.
func (b *FrameBuilder) BuildParallel(workers int) *Frame {
	n := len(b.ids)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < parallelBuildMinRows {
		workers = 1
	}

	// Canonical pair per row.
	pa := make([]Addr, n)
	pb := make([]Addr, n)
	parallelRanges(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a, c := b.srcs[i], b.dsts[i]
			if a > c {
				a, c = c, a
			}
			pa[i], pb[i] = a, c
		}
	})
	// Total order over rows: (pair, start, id), original index last so
	// exact duplicates sort deterministically in every partitioning.
	less := func(i, j int32) bool {
		if pa[i] != pa[j] {
			return pa[i] < pa[j]
		}
		if pb[i] != pb[j] {
			return pb[i] < pb[j]
		}
		if b.starts[i] != b.starts[j] {
			return b.starts[i] < b.starts[j]
		}
		if b.ids[i] != b.ids[j] {
			return b.ids[i] < b.ids[j]
		}
		return i < j
	}
	var order []int32
	if workers == 1 {
		order = make([]int32, n)
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(x, y int) bool { return less(order[x], order[y]) })
	} else {
		order = sortRowsSharded(pa, pb, less, workers)
	}

	remap, table := b.canonicalTable(order)
	f := &Frame{
		ids:    make([]uint64, n),
		starts: make([]int64, n),
		durs:   make([]int64, n),
		srcs:   make([]Addr, n),
		dsts:   make([]Addr, n),
		nbytes: make([]int64, n),
		paths:  make([]PathID, n),
		table:  table,
	}
	parallelRanges(workers, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			i := order[x]
			f.ids[x] = b.ids[i]
			f.starts[x] = b.starts[i]
			f.durs[x] = b.durs[i]
			f.srcs[x] = b.srcs[i]
			f.dsts[x] = b.dsts[i]
			f.nbytes[x] = b.nbytes[i]
			if p := b.paths[i]; p != NoPath {
				f.paths[x] = remap[p]
			} else {
				f.paths[x] = NoPath
			}
		}
	})
	f.buildIndexesParallel(workers)
	return f
}

// canonicalTable renumbers the builder's interned paths in first-use order
// over the sorted rows, dropping paths no row references. Frames are
// thereby canonical in their path table too: the same row multiset yields
// the same PathIDs and the same table bytes regardless of the order rows
// were appended or paths interned — which is what lets bulk ingest
// (InternTable remaps in table order, not arrival order) produce frames
// bit-identical to the per-record path. The builder's own ids are
// untouched.
func (b *FrameBuilder) canonicalTable(order []int32) ([]PathID, PathTable) {
	np := b.table.NumPaths()
	if np == 0 {
		return nil, PathTable{}
	}
	remap := make([]PathID, np)
	for i := range remap {
		remap[i] = NoPath
	}
	used := make([]PathID, 0, np) // old ids in first-use order
	for _, i := range order {
		if p := b.paths[i]; p != NoPath && remap[p] == NoPath {
			remap[p] = PathID(len(used))
			used = append(used, p)
		}
	}
	if len(used) == 0 {
		return remap, PathTable{}
	}
	total := 0
	for _, p := range used {
		total += int(b.table.offs[p+1] - b.table.offs[p])
	}
	t := PathTable{
		offs:     make([]int32, 1, len(used)+1),
		switches: make([]SwitchID, 0, total),
	}
	for _, p := range used {
		t.switches = append(t.switches, b.table.switches[b.table.offs[p]:b.table.offs[p+1]]...)
		t.offs = append(t.offs, int32(len(t.switches)))
	}
	return remap, t
}

// pairHash is a splitmix64 finalizer over the packed canonical pair; it
// decides only shard membership, never output order.
func pairHash(a, b Addr) uint64 {
	x := uint64(a)<<32 | uint64(b)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sortRowsSharded partitions rows by canonical-pair hash into one shard per
// worker (a pair's rows never straddle shards), sorts the shards
// concurrently, and k-way merges them in fixed shard order. less must be a
// total order, so the merged result is the unique sorted permutation —
// independent of the shard count.
func sortRowsSharded(pa, pb []Addr, less func(i, j int32) bool, shards int) []int32 {
	n := len(pa)
	shardOf := make([]uint32, n)
	counts := make([]int32, shards)
	for i := 0; i < n; i++ {
		s := uint32(pairHash(pa[i], pb[i]) % uint64(shards))
		shardOf[i] = s
		counts[s]++
	}
	bounds := make([]int32, shards+1)
	for s := 0; s < shards; s++ {
		bounds[s+1] = bounds[s] + counts[s]
	}
	buf := make([]int32, n)
	fill := make([]int32, shards)
	copy(fill, bounds[:shards])
	for i := 0; i < n; i++ {
		s := shardOf[i]
		buf[fill[s]] = int32(i)
		fill[s]++
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		bucket := buf[bounds[s]:bounds[s+1]]
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(bucket []int32) {
			defer wg.Done()
			sort.Slice(bucket, func(x, y int) bool { return less(bucket[x], bucket[y]) })
		}(bucket)
	}
	wg.Wait()
	return mergeSortedSpans(buf, bounds, less)
}

// mergeSortedSpans k-way merges the sorted spans buf[bounds[s]:bounds[s+1]]
// into one slice, scanning shards in fixed index order for each pick.
func mergeSortedSpans(buf []int32, bounds []int32, less func(i, j int32) bool) []int32 {
	shards := len(bounds) - 1
	out := make([]int32, 0, len(buf))
	cur := make([]int32, shards)
	copy(cur, bounds[:shards])
	for len(out) < len(buf) {
		best := -1
		for s := 0; s < shards; s++ {
			if cur[s] == bounds[s+1] {
				continue
			}
			if best < 0 || less(buf[cur[s]], buf[cur[best]]) {
				best = s
			}
		}
		out = append(out, buf[cur[best]])
		cur[best]++
	}
	return out
}

// parallelRanges splits [0, n) into one contiguous chunk per worker and
// runs fn on each concurrently. fn must touch only its own range.
func parallelRanges(workers, n int, fn func(lo, hi int)) {
	if workers <= 1 || n == 0 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// buildIndexesParallel is buildIndexes with the (start, id) permutation
// sort spread over workers goroutines: contiguous chunks sorted
// concurrently under a total comparator (row index breaks exact-duplicate
// ties), then merged in fixed chunk order — the same unique permutation the
// serial sort produces. The pair index stays a serial O(n) scan.
func (f *Frame) buildIndexesParallel(workers int) {
	n := len(f.ids)
	f.rowPair = make([]int32, n)
	for i := 0; i < n; i++ {
		p := MakePair(f.srcs[i], f.dsts[i])
		if len(f.pairs) == 0 || f.pairs[len(f.pairs)-1] != p {
			f.pairs = append(f.pairs, p)
			f.pairOff = append(f.pairOff, int32(i))
		}
		f.rowPair[i] = int32(len(f.pairs) - 1)
	}
	f.pairOff = append(f.pairOff, int32(n))

	f.byStart = make([]int32, n)
	for i := range f.byStart {
		f.byStart[i] = int32(i)
	}
	less := func(i, j int32) bool {
		if f.starts[i] != f.starts[j] {
			return f.starts[i] < f.starts[j]
		}
		if f.ids[i] != f.ids[j] {
			return f.ids[i] < f.ids[j]
		}
		return i < j
	}
	if workers <= 1 || n < parallelBuildMinRows {
		sort.Slice(f.byStart, func(x, y int) bool { return less(f.byStart[x], f.byStart[y]) })
		return
	}
	chunk := (n + workers - 1) / workers
	bounds := make([]int32, 0, workers+1)
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bounds = append(bounds, int32(lo))
		span := f.byStart[lo:hi]
		wg.Add(1)
		go func(span []int32) {
			defer wg.Done()
			sort.Slice(span, func(x, y int) bool { return less(span[x], span[y]) })
		}(span)
	}
	bounds = append(bounds, int32(n))
	wg.Wait()
	f.byStart = mergeSortedSpans(f.byStart, bounds, less)
}
