// Package stream implements the incremental, watermark-driven windowing
// engine behind the streaming monitor.
//
// The batch monitor it replaces buffered every raw record, re-sorted the
// whole buffer on each feed, and rebuilt each window's columnar frame from
// scratch — per-feed cost grew with the buffered history. The engine
// instead routes each record, as it arrives, into the flow.FrameBuilder of
// every open window it belongs to (out-of-order arrivals included), so
// ingest is append-plus-intern per record and the one O(n log n) sort a
// window ever pays happens once, inside FrameBuilder.Build, when the
// window closes.
//
// # Windowing and watermarks
//
// Windows live on a grid anchored at the earliest record of the first
// push: window k covers [anchor + k·Hop, anchor + k·Hop + Width), with k
// extending below zero while nothing has been emitted yet, so stragglers
// older than the anchor still land in correctly-bounded windows. Hop ==
// Width gives tumbling windows; Hop < Width overlapping ones, in which
// case a record belongs to every window covering its start time. The
// event-time watermark is the largest start time observed minus the
// allowed Lateness; a window closes when the watermark passes its end, so
// records up to Lateness out of order still land in the right window.
// Records arriving for an already-closed window are dropped and counted
// (Late) instead of being silently misfiled into a newer window — the
// failure mode of the batch path. Windows that close without records are
// still emitted (with an empty frame), so emission index and wall-clock
// grid stay aligned.
//
// # Pipelined analysis
//
// Closed windows are handed to the analyze callback on their own
// goroutines, at most MaxInFlight at a time (Push blocks beyond that,
// providing backpressure), so window k+1 ingests while window k analyzes.
// Results are released strictly in window order regardless of completion
// order. Determinism discipline: a frame built from a record multiset is
// independent of arrival order, window analyses share no mutable state,
// and in-order release means any cross-window folding the caller does sees
// windows in the same order a serial loop would — so pipelined results are
// bit-identical to serial ones.
package stream

import (
	"context"
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// Config parameterizes an Engine.
type Config struct {
	// Width is the window width. Required (> 0).
	Width time.Duration
	// Hop is the window stride. 0 defaults to Width (tumbling); Hop must
	// not exceed Width (larger hops would drop records between windows).
	Hop time.Duration
	// Lateness is the allowed out-of-orderness: a window [s, s+Width)
	// closes once a record at or past s+Width+Lateness is observed.
	Lateness time.Duration
	// MaxInFlight bounds concurrently analyzing windows. 0 defaults to 1
	// (no pipelining).
	MaxInFlight int
	// MaxEmptyRun bounds the number of consecutive empty windows emitted
	// for one event-time gap; a longer run is skipped in one jump and
	// counted by Skipped, so a single corrupt far-future timestamp cannot
	// stall the engine emitting one empty window per grid slot across the
	// gap. 0 defaults to DefaultMaxEmptyRun.
	MaxEmptyRun int
	// Anchor pre-sets the event-time grid origin instead of anchoring at
	// the earliest record of the first push. Deterministic replay uses it:
	// a recorded session whose grid was anchored by a record that was not
	// the globally earliest (an out-of-order straggler opened an earlier
	// window) can only be reproduced by restoring the original origin.
	// Zero means anchor at the first push, the default.
	Anchor time.Time
	// Resume restores a prior session's grid position (see State) so the
	// engine continues emitting at the next window instead of starting
	// over. When set, Anchor is ignored — the state carries its own. The
	// feeder must re-push, in the original order, every record whose start
	// falls at or after the next window's start; records before it are
	// dropped as late, which is harmless on resume.
	Resume *State
}

// State is the engine's grid-continuity snapshot: everything a restarted
// engine needs to emit the next window on the same grid with the same
// emission index. Capture it with StateAfter at a window boundary and hand
// it to Config.Resume.
type State struct {
	// Anchor is the event-time grid origin, UnixNano.
	Anchor int64
	// MaxEvent is the watermark basis: the largest record start observed
	// (UnixNano) as of the snapshot.
	MaxEvent int64
	// NextK is the smallest grid index not yet emitted.
	NextK int64
	// Seq is the next emission index.
	Seq int
	// Late and Skipped carry the session counters across the restart.
	// They are informational: a resumed feeder re-pushing pre-boundary
	// records inflates Late relative to the uninterrupted session.
	Late, Skipped uint64
}

// DefaultMaxEmptyRun is the default bound on consecutive empty windows
// emitted across an event-time gap — generous for real collection pauses,
// small enough that a corrupt timestamp decades ahead costs one jump.
const DefaultMaxEmptyRun = 1024

func (c Config) withDefaults() Config {
	if c.Hop <= 0 {
		c.Hop = c.Width
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1
	}
	if c.MaxEmptyRun <= 0 {
		c.MaxEmptyRun = DefaultMaxEmptyRun
	}
	return c
}

// Window locates one emitted window.
type Window struct {
	// Seq is the 0-based emission index; windows are emitted in strictly
	// increasing Seq order with no gaps.
	Seq int
	// Start and End bound the window: records with Start in [Start, End).
	Start, End time.Time
}

// Result is the outcome of analyzing one window.
type Result[R any] struct {
	Window Window
	// Rows is the number of records the window held (0 for an empty
	// window, which is still emitted).
	Rows int
	// Frame is the window's immutable columnar frame — the exact input the
	// analyze callback saw. Archive sinks persist it; it is never nil.
	Frame *flow.Frame
	Value R
	Err   error
}

// Engine is the streaming ingest-and-analyze loop. Construct with New.
// Feed it from one goroutine; the analyze callback runs on engine-owned
// goroutines and must be safe to run concurrently with itself (window
// analyses share no frame).
type Engine[R any] struct {
	cfg     Config
	analyze func(ctx context.Context, w Window, f *flow.Frame) (R, error)

	anchored bool
	anchor   int64 // grid origin, UnixNano of the first push's earliest record
	maxEvent int64 // largest record start observed, UnixNano
	// nextK is the smallest grid index not yet emitted. Until the first
	// dispatch (started == false) it tracks the smallest index opened so
	// far — which may go negative while within-lateness stragglers older
	// than the anchor arrive; afterwards it only advances, and records for
	// indices below it are late.
	nextK   int64
	haveK   bool
	started bool
	seq     int
	open    map[int64]*openWindow
	late    uint64
	skipped uint64
	pending int

	sem      chan struct{}
	inflight []chan Result[R]
}

type openWindow struct {
	b    *flow.FrameBuilder
	rows int
}

// New returns an engine that hands every closed window's frame to analyze.
// cfg.Width must be positive and cfg.Hop at most cfg.Width; New panics
// otherwise (the public monitor layer validates user input).
func New[R any](cfg Config, analyze func(ctx context.Context, w Window, f *flow.Frame) (R, error)) *Engine[R] {
	cfg = cfg.withDefaults()
	if cfg.Width <= 0 {
		panic("stream: non-positive window width")
	}
	if cfg.Hop > cfg.Width {
		panic("stream: hop exceeds window width")
	}
	e := &Engine[R]{
		cfg:     cfg,
		analyze: analyze,
		open:    make(map[int64]*openWindow),
		sem:     make(chan struct{}, cfg.MaxInFlight),
	}
	switch {
	case cfg.Resume != nil:
		s := cfg.Resume
		e.anchored = true
		e.anchor = s.Anchor
		e.maxEvent = s.MaxEvent
		e.nextK = s.NextK
		e.haveK = true
		e.started = true
		e.seq = s.Seq
		e.late = s.Late
		e.skipped = s.Skipped
	case !cfg.Anchor.IsZero():
		e.anchored = true
		e.anchor = cfg.Anchor.UnixNano()
		e.maxEvent = e.anchor
	}
	return e
}

// StateAfter captures the grid state as of the release of window w: a new
// engine resumed from it emits w's successor next, on the same grid, with
// the same emission index the uninterrupted session would have used. The
// watermark basis is reconstructed from the window's close condition (its
// end plus the allowed lateness) rather than the live maxEvent, which may
// already reflect records past the snapshot boundary.
func (e *Engine[R]) StateAfter(w Window) State {
	k := FloorDiv(w.Start.UnixNano()-e.anchor, int64(e.cfg.Hop))
	return State{
		Anchor:   e.anchor,
		MaxEvent: w.End.UnixNano() + int64(e.cfg.Lateness),
		NextK:    k + 1,
		Seq:      w.Seq + 1,
		Late:     e.late,
		Skipped:  e.skipped,
	}
}

// Anchor returns the event-time grid origin (zero until the first push
// anchors it).
func (e *Engine[R]) Anchor() time.Time {
	if !e.anchored {
		return time.Time{}
	}
	return time.Unix(0, e.anchor).UTC()
}

// Late returns the number of dropped record-to-window assignments: each
// record that arrived after one of its windows had already closed counts
// once per missed window (with overlapping windows a record can be late
// for one window and on time for the next).
func (e *Engine[R]) Late() uint64 { return e.late }

// Pending returns the number of record-to-window assignments buffered in
// open windows.
func (e *Engine[R]) Pending() int { return e.pending }

// Skipped returns the number of empty grid slots jumped over because their
// run exceeded MaxEmptyRun.
func (e *Engine[R]) Skipped() uint64 { return e.skipped }

// InFlight returns the number of windows dispatched but not yet collected.
func (e *Engine[R]) InFlight() int { return len(e.inflight) }

// Watermark returns the current event-time watermark (zero before the
// first record).
func (e *Engine[R]) Watermark() time.Time {
	if !e.anchored {
		return time.Time{}
	}
	return time.Unix(0, e.maxEvent-int64(e.cfg.Lateness)).UTC()
}

// Push ingests one batch of records (any order) and dispatches every
// window the advanced watermark closes. It blocks only when more than
// MaxInFlight windows would be analyzing at once; ctx bounds that wait and
// the dispatched analyses. Completed results are collected with Ready (or
// Flush), not returned here.
func (e *Engine[R]) Push(ctx context.Context, records []flow.Record) error {
	if len(records) == 0 {
		return nil
	}
	if !e.anchored {
		min := records[0].Start
		for _, r := range records[1:] {
			if r.Start.Before(min) {
				min = r.Start
			}
		}
		e.anchor = min.UnixNano()
		e.maxEvent = e.anchor
		e.anchored = true
	}
	for i := range records {
		e.ingest(&records[i])
	}
	// Close windows only after the whole batch landed, so records within
	// one push never race their own batch's watermark.
	return e.closeDue(ctx)
}

// PushFrame ingests one already-columnar frame — the bulk counterpart of
// Push, and the seam the daemon's wire ingest and archive replay feed. Rows
// route to their windows with one path-table remap per touched window
// (FrameBuilder.InternTable + AppendFrameRows) instead of materializing and
// re-interning a Record per row. Semantics are identical to
// Push(f.RecordsByStart()): the grid anchors at the frame's earliest start,
// the same windows close, the same record-to-window assignments count late
// — and, frames being canonical under Build, every emitted frame is
// byte-identical to the per-record path's.
func (e *Engine[R]) PushFrame(ctx context.Context, f *flow.Frame) error {
	n := f.Len()
	if n == 0 {
		return nil
	}
	if !e.anchored {
		e.anchor = f.MinStartNanos()
		e.maxEvent = e.anchor
		e.anchored = true
	}
	if t := f.MaxStartNanos(); t > e.maxEvent {
		e.maxEvent = t
	}
	hop, width := int64(e.cfg.Hop), int64(e.cfg.Width)
	// Fast path: the frame's earliest and latest rows each belong to
	// exactly one window and it is the same one — then so does every row
	// between them (window assignment is monotone in start time), and the
	// whole frame bulk-appends with no per-row routing. This is the common
	// shape when replaying an archived session on its original grid.
	loD := f.MinStartNanos() - e.anchor
	hiD := f.MaxStartNanos() - e.anchor
	if k := FloorDiv(loD, hop); k == FloorDiv(hiD, hop) &&
		FloorDiv(loD-width, hop)+1 == k && FloorDiv(hiD-width, hop)+1 == k {
		e.routeRows(f, k, nil, n)
		return e.closeDue(ctx)
	}
	// General path: bucket row indices per window index, then bulk-append
	// each bucket. Buckets are processed in ascending k for determinism of
	// builder allocation order (the emitted frames do not depend on it).
	buckets := make(map[int64][]int32)
	ks := make([]int64, 0, 4)
	for i := 0; i < n; i++ {
		d := f.StartNanos(i) - e.anchor
		kHi := FloorDiv(d, hop)
		kLo := FloorDiv(d-width, hop) + 1
		for k := kLo; k <= kHi; k++ {
			if _, ok := buckets[k]; !ok {
				ks = append(ks, k)
			}
			buckets[k] = append(buckets[k], int32(i))
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	for _, k := range ks {
		rows := buckets[k]
		e.routeRows(f, k, rows, len(rows))
	}
	return e.closeDue(ctx)
}

// routeRows lands count rows of f (all rows when rows is nil) in window k,
// mirroring ingest's per-record late accounting and pre-emission grid
// extension. Each call interns f's whole path table into the window's
// builder once; Build drops whatever the window's rows never reference.
func (e *Engine[R]) routeRows(f *flow.Frame, k int64, rows []int32, count int) {
	if e.haveK && k < e.nextK {
		if e.started {
			e.late += uint64(count)
			return
		}
		e.nextK = k // emission not begun: the grid extends backwards
	}
	if !e.haveK {
		e.nextK = k
		e.haveK = true
	}
	w := e.open[k]
	if w == nil {
		w = &openWindow{b: flow.NewFrameBuilder()}
		e.open[k] = w
	}
	w.b.Grow(count)
	remap := w.b.InternTable(f.PathTable())
	w.b.AppendFrameRows(f, remap, rows)
	w.rows += count
	e.pending += count
}

// closeDue dispatches every window the current watermark closes — the
// shared tail of Push and PushFrame.
func (e *Engine[R]) closeDue(ctx context.Context) error {
	if !e.haveK {
		return nil
	}
	wm := e.maxEvent - int64(e.cfg.Lateness)
	kMax := FloorDiv(wm-e.anchor-int64(e.cfg.Width), int64(e.cfg.Hop))
	for e.nextK <= kMax {
		e.skipEmptyRun(kMax)
		if e.nextK > kMax {
			break
		}
		if err := e.dispatch(ctx, e.nextK); err != nil {
			return err
		}
	}
	return nil
}

// skipEmptyRun jumps nextK over a run of empty grid slots longer than
// MaxEmptyRun, landing on the next open window (or just past kMax). Short
// runs are left alone — they emit one empty window per slot, keeping
// emission aligned with wall clock across ordinary collection gaps.
func (e *Engine[R]) skipEmptyRun(kMax int64) {
	if e.open[e.nextK] != nil {
		return
	}
	next := kMax + 1
	for k := range e.open {
		if k >= e.nextK && k < next {
			next = k
		}
	}
	if run := next - e.nextK; run > int64(e.cfg.MaxEmptyRun) {
		e.skipped += uint64(run)
		e.nextK = next
	}
}

func (e *Engine[R]) windowStart(k int64) int64 { return e.anchor + k*int64(e.cfg.Hop) }
func (e *Engine[R]) windowEnd(k int64) int64   { return e.windowStart(k) + int64(e.cfg.Width) }

// ingest routes one record to every open window covering its start time.
// The grid extends below the anchor (negative k) while nothing has been
// emitted yet, so within-lateness stragglers older than the first push's
// minimum still land in their own correctly-bounded windows.
func (e *Engine[R]) ingest(r *flow.Record) {
	t := r.Start.UnixNano()
	if t > e.maxEvent {
		e.maxEvent = t
	}
	d := t - e.anchor
	hop, width := int64(e.cfg.Hop), int64(e.cfg.Width)
	kHi := FloorDiv(d, hop)
	kLo := FloorDiv(d-width, hop) + 1
	for k := kLo; k <= kHi; k++ {
		if e.haveK && k < e.nextK {
			if e.started {
				e.late++
				continue
			}
			e.nextK = k // emission not begun: the grid extends backwards
		}
		if !e.haveK {
			e.nextK = k
			e.haveK = true
		}
		w := e.open[k]
		if w == nil {
			w = &openWindow{b: flow.NewFrameBuilder()}
			e.open[k] = w
		}
		w.b.AppendRecord(*r)
		w.rows++
		e.pending++
	}
}

// dispatch closes window k (possibly empty) and hands it to an analysis
// goroutine, blocking while MaxInFlight analyses are already running.
func (e *Engine[R]) dispatch(ctx context.Context, k int64) error {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	w := e.open[k]
	delete(e.open, k)
	win := Window{
		Seq:   e.seq,
		Start: time.Unix(0, e.windowStart(k)).UTC(),
		End:   time.Unix(0, e.windowEnd(k)).UTC(),
	}
	e.seq++
	e.nextK = k + 1
	e.started = true
	var b *flow.FrameBuilder
	rows := 0
	if w != nil {
		b, rows = w.b, w.rows
		e.pending -= rows
	}
	ch := make(chan Result[R], 1)
	e.inflight = append(e.inflight, ch)
	go func() {
		defer func() { <-e.sem }()
		var f *flow.Frame
		if b != nil {
			// BuildParallel is byte-identical to the serial Build for any
			// worker count; GOMAXPROCS cuts the close-time sort off the
			// window-release critical path.
			f = b.BuildParallel(0)
		} else {
			f = flow.NewFrame(nil)
		}
		v, err := e.analyze(ctx, win, f)
		ch <- Result[R]{Window: win, Rows: rows, Frame: f, Value: v, Err: err}
	}()
	return nil
}

// Ready returns, without blocking, every completed result that is next in
// window order. A finished window is withheld while an earlier one is
// still analyzing, so results never arrive out of order.
func (e *Engine[R]) Ready() []Result[R] {
	var out []Result[R]
	for len(e.inflight) > 0 {
		select {
		case res := <-e.inflight[0]:
			out = append(out, res)
			e.inflight = e.inflight[1:]
		default:
			return out
		}
	}
	return out
}

// Flush closes every remaining open window — including empty grid slots
// between them, keeping emission aligned with the grid — waits for all
// in-flight analyses, and returns their results in window order. The
// engine is drained afterwards; it can keep ingesting (the grid and
// watermark persist).
func (e *Engine[R]) Flush(ctx context.Context) ([]Result[R], error) {
	var dispatchErr error
	if e.haveK {
		maxK := e.nextK - 1
		for k := range e.open {
			if k > maxK {
				maxK = k
			}
		}
		for e.nextK <= maxK {
			e.skipEmptyRun(maxK)
			if e.nextK > maxK {
				break
			}
			if err := e.dispatch(ctx, e.nextK); err != nil {
				dispatchErr = err
				break
			}
		}
	}
	out := make([]Result[R], 0, len(e.inflight))
	for _, ch := range e.inflight {
		out = append(out, <-ch)
	}
	e.inflight = nil
	return out, dispatchErr
}

// FloorDiv is integer division rounding toward negative infinity — the
// grid-index arithmetic both the engine and the Monitor's Feed-path mirror
// share.
func FloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
