package stream

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

// frameResult captures everything an emitted window exposes, with the frame
// reduced to its serialized bytes — the strictest identity.
type frameResult struct {
	Seq        int
	Start, End time.Time
	Rows       int
	Bytes      []byte
}

func newCaptureEngine(cfg Config) *Engine[struct{}] {
	return New(cfg, func(_ context.Context, _ Window, _ *flow.Frame) (struct{}, error) {
		return struct{}{}, nil
	})
}

func capture(t *testing.T, out []frameResult, results []Result[struct{}]) []frameResult {
	t.Helper()
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		var buf bytes.Buffer
		if _, err := r.Frame.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		out = append(out, frameResult{
			Seq: r.Window.Seq, Start: r.Window.Start, End: r.Window.End,
			Rows: r.Rows, Bytes: buf.Bytes(),
		})
	}
	return out
}

func captureAll(t *testing.T, e *Engine[struct{}]) []frameResult {
	t.Helper()
	results, err := e.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return capture(t, nil, results)
}

// pushFrameRecords builds a spread of records with shared switch paths,
// duplicates and stragglers across several window widths.
func pushFrameRecords(seed int64, n int, span time.Duration) []flow.Record {
	rng := rand.New(rand.NewSource(seed))
	paths := [][]flow.SwitchID{nil, {1, 9, 2}, {1, 8, 2}, {3, 9, 4}, {3, 8, 4, 9}}
	records := make([]flow.Record, n)
	for i := range records {
		records[i] = flow.Record{
			ID:       uint64(i + 1),
			Start:    epoch.Add(time.Duration(rng.Int63n(int64(span)))),
			Duration: time.Duration(rng.Int63n(int64(time.Second))),
			Src:      flow.Addr(rng.Intn(8)),
			Dst:      flow.Addr(rng.Intn(8)),
			Bytes:    rng.Int63n(1 << 20),
			Switches: paths[rng.Intn(len(paths))],
		}
		if i > 0 && rng.Intn(12) == 0 {
			records[i] = records[i-1]
		}
	}
	return records
}

// TestPushFrameMatchesPush is the engine-level equivalence gate: feeding
// frames through PushFrame must emit exactly the windows, rows, late counts
// and byte-identical frames the per-record Push reference produces — for
// tumbling and overlapping grids, several pipeline depths, and arrival
// batchings that include late rows.
func TestPushFrameMatchesPush(t *testing.T) {
	records := pushFrameRecords(1, 2000, time.Minute)
	configs := []Config{
		{Width: 10 * time.Second},
		{Width: 10 * time.Second, Lateness: 2 * time.Second},
		{Width: 12 * time.Second, Hop: 4 * time.Second, Lateness: time.Second},
		{Width: 10 * time.Second, Lateness: 2 * time.Second, MaxInFlight: 4},
	}
	for ci, cfg := range configs {
		for _, batch := range []int{1, 7, 200, len(records)} {
			ref := newCaptureEngine(cfg)
			bulk := newCaptureEngine(cfg)
			var want, got []frameResult
			for lo := 0; lo < len(records); lo += batch {
				hi := lo + batch
				if hi > len(records) {
					hi = len(records)
				}
				chunk := records[lo:hi]
				if err := ref.Push(context.Background(), chunk); err != nil {
					t.Fatal(err)
				}
				want = capture(t, want, ref.Ready())
				if err := bulk.PushFrame(context.Background(), flow.NewFrame(chunk)); err != nil {
					t.Fatal(err)
				}
				got = capture(t, got, bulk.Ready())
			}
			want = append(want, captureAll(t, ref)...)
			got = append(got, captureAll(t, bulk)...)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("config %d batch %d: PushFrame windows diverge from Push (%d vs %d windows)",
					ci, batch, len(want), len(got))
			}
			if ref.Late() != bulk.Late() {
				t.Fatalf("config %d batch %d: late %d (push) vs %d (frame)", ci, batch, ref.Late(), bulk.Late())
			}
			if ref.Skipped() != bulk.Skipped() {
				t.Fatalf("config %d batch %d: skipped diverge", ci, batch)
			}
		}
	}
}

// TestPushFrameAnchorsLikePush: the first frame anchors the grid at its
// earliest row, exactly as the first Push batch does.
func TestPushFrameAnchorsLikePush(t *testing.T) {
	records := []flow.Record{rec(2, 9*time.Second), rec(1, 3*time.Second), rec(3, 15*time.Second)}
	ref := newCaptureEngine(Config{Width: 10 * time.Second})
	if err := ref.Push(context.Background(), records); err != nil {
		t.Fatal(err)
	}
	bulk := newCaptureEngine(Config{Width: 10 * time.Second})
	if err := bulk.PushFrame(context.Background(), flow.NewFrame(records)); err != nil {
		t.Fatal(err)
	}
	if !ref.Anchor().Equal(bulk.Anchor()) {
		t.Fatalf("anchor %v (push) vs %v (frame)", ref.Anchor(), bulk.Anchor())
	}
	if want, got := captureAll(t, ref), captureAll(t, bulk); !reflect.DeepEqual(want, got) {
		t.Fatal("windows diverge after identical anchoring")
	}
}

// TestPushFrameLateFrame: a whole frame older than the emitted grid is
// dropped as late, one count per row per missed window, with no windows
// reopened.
func TestPushFrameLateFrame(t *testing.T) {
	e := newCaptureEngine(Config{Width: 10 * time.Second})
	if err := e.Push(context.Background(), []flow.Record{rec(1, time.Second), rec(2, 25*time.Second)}); err != nil {
		t.Fatal(err)
	}
	e.Ready()
	late := flow.NewFrame([]flow.Record{rec(3, 2*time.Second), rec(4, 3*time.Second)})
	if err := e.PushFrame(context.Background(), late); err != nil {
		t.Fatal(err)
	}
	if e.Late() != 2 {
		t.Fatalf("late = %d, want 2", e.Late())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (only the on-time record)", e.Pending())
	}
}
