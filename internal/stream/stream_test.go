package stream

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
)

var epoch = time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)

func rec(id uint64, at time.Duration) flow.Record {
	return flow.Record{ID: id, Start: epoch.Add(at), Src: 1, Dst: 2, Bytes: 100}
}

// summary is the test analyze output: window bounds plus the ids the
// window's frame holds, in canonical frame order.
type summary struct {
	Seq        int
	Start, End time.Duration
	IDs        []uint64
}

func summarize(w Window, f *flow.Frame) summary {
	s := summary{Seq: w.Seq, Start: w.Start.Sub(epoch), End: w.End.Sub(epoch)}
	for i := 0; i < f.Len(); i++ {
		s.IDs = append(s.IDs, f.ID(i))
	}
	return s
}

func newSummaryEngine(cfg Config) *Engine[summary] {
	return New(cfg, func(_ context.Context, w Window, f *flow.Frame) (summary, error) {
		return summarize(w, f), nil
	})
}

func drainAll(t *testing.T, e *Engine[summary]) []summary {
	t.Helper()
	results, err := e.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]summary, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		out = append(out, r.Value)
	}
	return out
}

func TestTumblingWindows(t *testing.T) {
	e := newSummaryEngine(Config{Width: 10 * time.Second})
	// Records in windows 0 and 1; a record at 25s closes both.
	err := e.Push(context.Background(), []flow.Record{
		rec(1, 1*time.Second), rec(2, 9*time.Second), rec(3, 12*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Ready(); len(got) != 0 {
		t.Fatalf("windows closed prematurely: %d", len(got))
	}
	if err := e.Push(context.Background(), []flow.Record{rec(4, 25*time.Second)}); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, e)
	// The grid anchors at the earliest record of the first push (1s).
	want := []summary{
		{Seq: 0, Start: 1 * time.Second, End: 11 * time.Second, IDs: []uint64{1, 2}},
		{Seq: 1, Start: 11 * time.Second, End: 21 * time.Second, IDs: []uint64{3}},
		{Seq: 2, Start: 21 * time.Second, End: 31 * time.Second, IDs: []uint64{4}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("windows = %+v, want %+v", got, want)
	}
}

func TestEmptyWindowsEmitted(t *testing.T) {
	e := newSummaryEngine(Config{Width: 10 * time.Second})
	// A gap spanning windows 1 and 2: both must still be emitted.
	err := e.Push(context.Background(), []flow.Record{rec(1, 0), rec(2, 35*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, e)
	if len(got) != 4 {
		t.Fatalf("windows = %d, want 4 (two empty)", len(got))
	}
	for i, s := range got {
		if s.Seq != i {
			t.Errorf("window %d has seq %d", i, s.Seq)
		}
	}
	if got[1].IDs != nil || got[2].IDs != nil {
		t.Error("gap windows should be empty")
	}
}

func TestLatenessHoldsWindowsOpen(t *testing.T) {
	e := newSummaryEngine(Config{Width: 10 * time.Second, Lateness: 5 * time.Second})
	// 12s does not close window 0 (watermark 7s); the out-of-order record
	// at 8s must still land in window 0.
	if err := e.Push(context.Background(), []flow.Record{rec(1, 2*time.Second), rec(2, 12*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(context.Background(), []flow.Record{rec(3, 8*time.Second)}); err != nil {
		t.Fatal(err)
	}
	// 15s pushes the watermark to 10s; window 0 ([2s,12s), grid anchored
	// at the first record) stays open until the flush.
	if err := e.Push(context.Background(), []flow.Record{rec(4, 15*time.Second)}); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, e)
	want := []summary{
		{Seq: 0, Start: 2 * time.Second, End: 12 * time.Second, IDs: []uint64{1, 3}},
		{Seq: 1, Start: 12 * time.Second, End: 22 * time.Second, IDs: []uint64{2, 4}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("windows = %+v, want %+v", got, want)
	}
	if e.Late() != 0 {
		t.Errorf("late = %d, want 0", e.Late())
	}
}

func TestLateRecordsDroppedAndCounted(t *testing.T) {
	e := newSummaryEngine(Config{Width: 10 * time.Second})
	if err := e.Push(context.Background(), []flow.Record{rec(1, 0), rec(2, 11*time.Second)}); err != nil {
		t.Fatal(err)
	}
	// Window 0 closed at watermark 11s; this record is late.
	if err := e.Push(context.Background(), []flow.Record{rec(3, 5*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if e.Late() != 1 {
		t.Errorf("late = %d, want 1", e.Late())
	}
	got := drainAll(t, e)
	if !reflect.DeepEqual(got[0].IDs, []uint64{1}) {
		t.Errorf("window 0 ids = %v, want [1] (late record dropped, not misfiled)", got[0].IDs)
	}
}

// TestPreAnchorStragglerKept pins the negative-k grid: a within-lateness
// straggler older than the first push's minimum is not dropped — the grid
// extends backwards while nothing has been emitted, giving it its own
// correctly-bounded window.
func TestPreAnchorStragglerKept(t *testing.T) {
	e := newSummaryEngine(Config{Width: 10 * time.Second, Lateness: 6 * time.Second})
	if err := e.Push(context.Background(), []flow.Record{rec(1, 10*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(context.Background(), []flow.Record{rec(2, 5*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if e.Late() != 0 {
		t.Fatalf("late = %d, want 0 (straggler within lateness)", e.Late())
	}
	got := drainAll(t, e)
	want := []summary{
		{Seq: 0, Start: 0, End: 10 * time.Second, IDs: []uint64{2}},
		{Seq: 1, Start: 10 * time.Second, End: 20 * time.Second, IDs: []uint64{1}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("windows = %+v, want %+v", got, want)
	}
}

// TestPreAnchorRecordLateAfterEmission is the counterpart: once a window
// has been emitted, records for grid slots before it are genuinely late.
func TestPreAnchorRecordLateAfterEmission(t *testing.T) {
	e := newSummaryEngine(Config{Width: 10 * time.Second})
	// 25s closes the anchor window [10s, 20s).
	if err := e.Push(context.Background(), []flow.Record{rec(1, 10*time.Second), rec(2, 25*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Push(context.Background(), []flow.Record{rec(3, 5*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if e.Late() != 1 {
		t.Errorf("late = %d, want 1", e.Late())
	}
}

func TestHoppedWindows(t *testing.T) {
	// Width 10, hop 5: record at t belongs to the two windows covering it,
	// including the leading partial phase window that starts before the
	// anchor (grid index -1).
	e := newSummaryEngine(Config{Width: 10 * time.Second, Hop: 5 * time.Second})
	err := e.Push(context.Background(), []flow.Record{
		rec(1, 1*time.Second),  // windows -1 and 0
		rec(2, 7*time.Second),  // windows 0 and 1
		rec(3, 12*time.Second), // windows 1 and 2
		rec(4, 40*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, e)
	if len(got) < 4 {
		t.Fatalf("windows = %d, want >= 4", len(got))
	}
	wantIDs := [][]uint64{{1}, {1, 2}, {2, 3}, {3}}
	for i, want := range wantIDs {
		if !reflect.DeepEqual(got[i].IDs, want) {
			t.Errorf("window %d ids = %v, want %v", i, got[i].IDs, want)
		}
		// Anchor 1s; the first emitted window is grid index -1.
		if wantStart := time.Second + time.Duration(i-1)*5*time.Second; got[i].Start != wantStart {
			t.Errorf("window %d start = %v, want %v", i, got[i].Start, wantStart)
		}
	}
}

// TestPipelinedOrderingDeterministic runs a many-window trace through
// MaxInFlight worker analyses whose completion order is scrambled by the
// scheduler, and checks results still arrive in window order and identical
// to the serial run. Run with -race to verify the handoff.
func TestPipelinedOrderingDeterministic(t *testing.T) {
	build := func(inFlight int) []summary {
		var active, peak int32
		e := New(Config{Width: 10 * time.Second, MaxInFlight: inFlight},
			func(_ context.Context, w Window, f *flow.Frame) (summary, error) {
				n := atomic.AddInt32(&active, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
						break
					}
				}
				time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
				atomic.AddInt32(&active, -1)
				return summarize(w, f), nil
			})
		var id uint64
		for at := time.Duration(0); at < 200*time.Second; at += time.Second {
			id++
			if err := e.Push(context.Background(), []flow.Record{rec(id, at)}); err != nil {
				t.Fatal(err)
			}
		}
		results, err := e.Flush(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]summary, 0, len(results))
		for _, r := range results {
			out = append(out, r.Value)
		}
		if inFlight > 1 && peak < 2 {
			t.Logf("pipelining never overlapped (peak %d); scheduling artifact, results still checked", peak)
		}
		return out
	}
	serial := build(1)
	if len(serial) != 20 {
		t.Fatalf("windows = %d, want 20", len(serial))
	}
	for _, inFlight := range []int{2, 4} {
		if got := build(inFlight); !reflect.DeepEqual(serial, got) {
			t.Errorf("MaxInFlight=%d diverges from serial results", inFlight)
		}
	}
}

// TestPermutationInvariance is the engine-level ordering property: any
// arrival permutation that respects the lateness bound yields identical
// results and no late drops.
func TestPermutationInvariance(t *testing.T) {
	const lateness = 4 * time.Second
	var records []flow.Record
	for i := 0; i < 120; i++ {
		records = append(records, rec(uint64(i+1), time.Duration(i)*500*time.Millisecond))
	}
	run := func(seed int64) []summary {
		e := newSummaryEngine(Config{Width: 10 * time.Second, Lateness: lateness})
		// Shuffle within lateness/2-wide chunks: displacement stays under
		// the bound. Chunked pushes keep the grid anchor at the global
		// minimum.
		perm := append([]flow.Record(nil), records...)
		if seed >= 0 {
			rng := rand.New(rand.NewSource(seed))
			chunk := 4 // 4 records = 2s span < lateness
			for lo := 0; lo < len(perm); lo += chunk {
				hi := lo + chunk
				if hi > len(perm) {
					hi = len(perm)
				}
				rng.Shuffle(hi-lo, func(i, j int) { perm[lo+i], perm[lo+j] = perm[lo+j], perm[lo+i] })
			}
		}
		for lo := 0; lo < len(perm); lo += 4 {
			hi := lo + 4
			if hi > len(perm) {
				hi = len(perm)
			}
			if err := e.Push(context.Background(), perm[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if e.Late() != 0 {
			t.Fatalf("seed %d: late = %d, want 0", seed, e.Late())
		}
		return drainAll(t, e)
	}
	want := run(-1)
	for seed := int64(0); seed < 5; seed++ {
		if got := run(seed); !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: permuted arrival diverges", seed)
		}
	}
}

func TestAnalyzeErrorSurfaced(t *testing.T) {
	e := New(Config{Width: 10 * time.Second}, func(_ context.Context, w Window, f *flow.Frame) (int, error) {
		if w.Seq == 1 {
			return 0, fmt.Errorf("boom")
		}
		return f.Len(), nil
	})
	err := e.Push(context.Background(), []flow.Record{rec(1, 0), rec(2, 12*time.Second), rec(3, 25*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	if results[0].Err != nil || results[1].Err == nil || results[2].Err != nil {
		t.Errorf("error not attached to the failing window: %v", results)
	}
}

func TestPushCanceledContext(t *testing.T) {
	block := make(chan struct{})
	e := New(Config{Width: 10 * time.Second, MaxInFlight: 1},
		func(ctx context.Context, w Window, f *flow.Frame) (int, error) {
			if w.Seq == 0 {
				<-block
			}
			return f.Len(), nil
		})
	ctx, cancel := context.WithCancel(context.Background())
	// Window 0 dispatches and parks; window 1 needs the only slot.
	if err := e.Push(ctx, []flow.Record{rec(1, 0), rec(2, 12*time.Second)}); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := e.Push(ctx, []flow.Record{rec(3, 25*time.Second)})
	if err == nil {
		t.Error("blocked dispatch ignored cancellation")
	}
	close(block)
}

func TestWatermarkAndPending(t *testing.T) {
	e := newSummaryEngine(Config{Width: 10 * time.Second, Lateness: 3 * time.Second})
	if !e.Watermark().IsZero() {
		t.Error("watermark before any record should be zero")
	}
	if err := e.Push(context.Background(), []flow.Record{rec(1, 8*time.Second)}); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Watermark(), epoch.Add(5*time.Second); !got.Equal(want) {
		t.Errorf("watermark = %v, want %v", got, want)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	drainAll(t, e)
	if e.Pending() != 0 {
		t.Errorf("pending after flush = %d, want 0", e.Pending())
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 3, 2}, {-7, 3, -3}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0}, {-1, 10, -1},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.want {
			t.Errorf("FloorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestHugeGapSkipsEmptyRun pins the corrupt-timestamp guard: one record
// decades ahead must not make the engine emit one empty window per grid
// slot across the gap.
func TestHugeGapSkipsEmptyRun(t *testing.T) {
	e := newSummaryEngine(Config{Width: 10 * time.Second})
	err := e.Push(context.Background(), []flow.Record{
		rec(1, 0),
		rec(2, 10*365*24*time.Hour), // ~10 years ahead
	})
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, e)
	if len(got) > 3 {
		t.Fatalf("windows emitted = %d, want a handful (gap skipped, not enumerated)", len(got))
	}
	if e.Skipped() == 0 {
		t.Error("skipped counter = 0, want the jumped slots counted")
	}
	if got[0].IDs[0] != 1 || got[len(got)-1].IDs[0] != 2 {
		t.Errorf("data windows lost across the gap: %+v", got)
	}
}

// TestShortGapStillEmitsEmpties guards the other side: ordinary gaps keep
// their per-slot empty windows so emission stays wall-clock aligned.
func TestShortGapStillEmitsEmpties(t *testing.T) {
	e := newSummaryEngine(Config{Width: 10 * time.Second, MaxEmptyRun: 8})
	err := e.Push(context.Background(), []flow.Record{rec(1, 0), rec(2, 55*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, e)
	if len(got) != 6 {
		t.Fatalf("windows = %d, want 6 (4 empties emitted, run below bound)", len(got))
	}
	if e.Skipped() != 0 {
		t.Errorf("skipped = %d, want 0", e.Skipped())
	}
}

func TestResumeContinuesGrid(t *testing.T) {
	cfg := Config{Width: 10 * time.Second, Hop: 5 * time.Second, Lateness: 3 * time.Second}
	// A hopped, late-tolerant stream pushed in small out-of-order batches.
	rng := rand.New(rand.NewSource(11))
	var batches [][]flow.Record
	var id uint64
	for base := time.Duration(0); base < 90*time.Second; base += 2 * time.Second {
		var b []flow.Record
		for i := 0; i < 3; i++ {
			id++
			jitter := time.Duration(rng.Int63n(int64(2 * time.Second)))
			b = append(b, rec(id, base+jitter))
		}
		batches = append(batches, b)
	}

	run := func(e *Engine[summary], batches [][]flow.Record) []summary {
		var out []summary
		for _, b := range batches {
			if err := e.Push(context.Background(), b); err != nil {
				t.Fatal(err)
			}
			for _, r := range e.Ready() {
				out = append(out, r.Value)
			}
		}
		for _, r := range drainAll(t, e) {
			out = append(out, r)
		}
		return out
	}

	ref := run(newSummaryEngine(cfg), batches)
	if len(ref) < 6 {
		t.Fatalf("reference run emitted %d windows", len(ref))
	}

	// Checkpoint the live engine at each released window boundary and
	// verify a resumed engine reproduces the tail exactly.
	for _, cut := range []int{0, 2, 12} {
		e := newSummaryEngine(cfg)
		var st *State
		var rest [][]flow.Record
	feed:
		for bi, b := range batches {
			if err := e.Push(context.Background(), b); err != nil {
				t.Fatal(err)
			}
			for _, r := range e.Ready() {
				if r.Window.Seq == cut {
					s := e.StateAfter(r.Window)
					st = &s
					rest = batches[bi+1:]
					break feed
				}
			}
		}
		if st == nil {
			t.Fatalf("cut %d never released", cut)
		}
		// Re-feed the original stream from the resume point: every record
		// at or after the next window's start, in original batch order.
		from := time.Unix(0, st.Anchor+st.NextK*int64(cfg.Hop)).UTC()
		var refeed [][]flow.Record
		for _, b := range batches[:len(batches)-len(rest)] {
			var keep []flow.Record
			for _, r := range b {
				if !r.Start.Before(from) {
					keep = append(keep, r)
				}
			}
			if len(keep) > 0 {
				refeed = append(refeed, keep)
			}
		}
		refeed = append(refeed, rest...)
		got := run(New(Config{
			Width: cfg.Width, Hop: cfg.Hop, Lateness: cfg.Lateness, Resume: st,
		}, func(_ context.Context, w Window, f *flow.Frame) (summary, error) {
			return summarize(w, f), nil
		}), refeed)
		if !reflect.DeepEqual(got, ref[cut+1:]) {
			t.Errorf("cut %d: resumed tail = %+v, want %+v", cut, got, ref[cut+1:])
		}
	}
}
