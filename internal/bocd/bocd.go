// Package bocd implements Bayesian Online Changepoint Detection
// (Adams & MacKay, 2007), the change-point detector LLMPrism uses to divide
// network flow sequences into training steps (§IV-B, §IV-C of the paper).
//
// The detector maintains a posterior distribution over the current
// "run length" r_t (time since the last change-point). Observations are
// modelled as Gaussian with unknown mean and variance under a Normal-Gamma
// conjugate prior, giving a Student-t predictive distribution. A constant
// hazard function governs change-point arrival. The paper reports a
// change-point whenever P(r_t = 0) exceeds a threshold (0.95 in their
// implementation, our default).
//
// All computation is in log space; the run-length distribution is truncated
// at a configurable maximum length for linear-time operation.
package bocd

import (
	"math"
)

// Config parameterizes a Detector. The zero value selects the defaults
// documented on each field.
type Config struct {
	// Hazard is the per-observation change-point probability (1/expected
	// run length). Default 1/100.
	Hazard float64
	// Threshold is the posterior change-point probability above which
	// a change-point is reported. Default 0.95 (the paper's setting).
	Threshold float64
	// MaxRunLength truncates the run-length distribution. Default 512.
	MaxRunLength int
	// Prior hyperparameters of the Normal-Gamma prior on (mean, precision).
	// Defaults: Mu0=0, Kappa0=0.1, Alpha0=1, Beta0=1. The small Kappa0
	// keeps the prior on the mean vague, so the change-point hypothesis
	// (which predicts from the prior) explains genuine regime shifts far
	// better than the incumbent run hypotheses and P(r_t = 0) saturates.
	Mu0, Kappa0, Alpha0, Beta0 float64
}

func (c Config) withDefaults() Config {
	if c.Hazard <= 0 || c.Hazard >= 1 {
		c.Hazard = 1.0 / 100
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		c.Threshold = 0.95
	}
	if c.MaxRunLength <= 0 {
		c.MaxRunLength = 512
	}
	if c.Kappa0 <= 0 {
		c.Kappa0 = 0.1
	}
	if c.Alpha0 <= 0 {
		c.Alpha0 = 1
	}
	if c.Beta0 <= 0 {
		c.Beta0 = 1
	}
	return c
}

// Detector is an online BOCD instance. Construct with New.
//
// Step is allocation-free in steady state: the posterior arrays are
// double-buffered, so each update writes into last step's spare buffers
// and swaps. Once the run-length distribution reaches MaxRunLength both
// buffer pairs have their final capacity and no further allocation occurs —
// this matters because the analysis pipeline runs one detector per endpoint
// pair and per rank over every window.
type Detector struct {
	cfg     Config
	logH    float64 // log hazard
	log1mH  float64 // log(1 - hazard)
	logp    []float64
	kappa   []float64
	mu      []float64
	alpha   []float64
	beta    []float64
	scratch []float64
	// Spare buffers Step writes the next posterior into before swapping.
	spareLogp  []float64
	spareKappa []float64
	spareMu    []float64
	spareAlpha []float64
	spareBeta  []float64
	n          int
}

// New returns a Detector with the given configuration.
func New(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg:    cfg,
		logH:   math.Log(cfg.Hazard),
		log1mH: math.Log1p(-cfg.Hazard),
	}
	d.reset()
	return d
}

func (d *Detector) reset() {
	d.logp = append(d.logp[:0], 0) // P(r_0 = 0) = 1
	d.kappa = append(d.kappa[:0], d.cfg.Kappa0)
	d.mu = append(d.mu[:0], d.cfg.Mu0)
	d.alpha = append(d.alpha[:0], d.cfg.Alpha0)
	d.beta = append(d.beta[:0], d.cfg.Beta0)
	d.n = 0
}

// N returns the number of observations consumed.
func (d *Detector) N() int { return d.n }

// Reset returns the detector to its initial state while keeping its
// buffers, so one detector can be reused across many short sequences
// without reallocating.
func (d *Detector) Reset() { d.reset() }

// nextBuf returns buf resized to n without preserving contents, growing
// its capacity geometrically when needed.
func nextBuf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		return make([]float64, n, c)
	}
	return buf[:n]
}

// studentTLogPDF returns the log density of x under a Student-t with nu
// degrees of freedom, the given location, and scale sigma (not squared).
func studentTLogPDF(x, nu, loc, sigma float64) float64 {
	z := (x - loc) / sigma
	return lgamma((nu+1)/2) - lgamma(nu/2) -
		0.5*math.Log(nu*math.Pi) - math.Log(sigma) -
		(nu+1)/2*math.Log1p(z*z/nu)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Step consumes one observation and returns the posterior probability that
// a change-point occurred at this observation, P(r_t = 0 | x_{1:t}).
//
// Convention: r_t = 0 means x is the first observation of a new segment, so
// the change-point hypothesis predicts x from the prior, while the growth
// hypotheses predict x from the sufficient statistics of their runs. (With
// the alternative "change-point after x_t" convention, P(r_t = 0) is
// identically the hazard and useless for thresholding, which is how the
// paper applies it.)
func (d *Detector) Step(x float64) float64 {
	n := len(d.logp)
	// Predictive log-probability of x under each run-length hypothesis.
	d.scratch = nextBuf(d.scratch, n)
	logpred := d.scratch
	for r := 0; r < n; r++ {
		nu := 2 * d.alpha[r]
		scale := math.Sqrt(d.beta[r] * (d.kappa[r] + 1) / (d.alpha[r] * d.kappa[r]))
		logpred[r] = studentTLogPDF(x, nu, d.mu[r], scale)
	}
	priorScale := math.Sqrt(d.cfg.Beta0 * (d.cfg.Kappa0 + 1) / (d.cfg.Alpha0 * d.cfg.Kappa0))
	logPriorPred := studentTLogPDF(x, 2*d.cfg.Alpha0, d.cfg.Mu0, priorScale)

	// Growth probabilities: r -> r+1; the change-point hypothesis pools the
	// hazard mass of every run and predicts x from the prior. The new
	// posterior is written into the spare buffers, which never alias the
	// current ones.
	newLogp := nextBuf(d.spareLogp, n+1)
	for r := 0; r < n; r++ {
		newLogp[r+1] = d.logp[r] + logpred[r] + d.log1mH
	}
	newLogp[0] = logSumExp(d.logp) + d.logH + logPriorPred

	// Normalize.
	total := logSumExp(newLogp)
	for i := range newLogp {
		newLogp[i] -= total
	}

	// Posterior parameter update: run length r+1 inherits stats of r
	// updated with x; run length 0 restarts from the prior updated with x
	// (its segment contains exactly x).
	newKappa := nextBuf(d.spareKappa, n+1)
	newMu := nextBuf(d.spareMu, n+1)
	newAlpha := nextBuf(d.spareAlpha, n+1)
	newBeta := nextBuf(d.spareBeta, n+1)
	k0, m0, a0, b0 := d.cfg.Kappa0, d.cfg.Mu0, d.cfg.Alpha0, d.cfg.Beta0
	newKappa[0] = k0 + 1
	newMu[0] = (k0*m0 + x) / (k0 + 1)
	newAlpha[0] = a0 + 0.5
	newBeta[0] = b0 + k0*(x-m0)*(x-m0)/(2*(k0+1))
	for r := 0; r < n; r++ {
		k, m, a, b := d.kappa[r], d.mu[r], d.alpha[r], d.beta[r]
		newKappa[r+1] = k + 1
		newMu[r+1] = (k*m + x) / (k + 1)
		newAlpha[r+1] = a + 0.5
		newBeta[r+1] = b + k*(x-m)*(x-m)/(2*(k+1))
	}

	d.spareLogp, d.spareKappa, d.spareMu, d.spareAlpha, d.spareBeta =
		d.logp, d.kappa, d.mu, d.alpha, d.beta
	d.logp, d.kappa, d.mu, d.alpha, d.beta = newLogp, newKappa, newMu, newAlpha, newBeta
	d.truncate()
	d.n++
	return math.Exp(d.logp[0])
}

// truncate caps the run-length distribution at MaxRunLength by folding the
// tail mass into the final (longest) hypothesis.
func (d *Detector) truncate() {
	max := d.cfg.MaxRunLength
	if len(d.logp) <= max {
		return
	}
	tail := logSumExp(d.logp[max-1:])
	d.logp = d.logp[:max]
	d.logp[max-1] = tail
	// Keep the sufficient statistics of the longest run for the folded bucket.
	last := len(d.kappa) - 1
	d.kappa[max-1] = d.kappa[last]
	d.mu[max-1] = d.mu[last]
	d.alpha[max-1] = d.alpha[last]
	d.beta[max-1] = d.beta[last]
	d.kappa = d.kappa[:max]
	d.mu = d.mu[:max]
	d.alpha = d.alpha[:max]
	d.beta = d.beta[:max]
}

// RunLengthDist returns a copy of the current run-length posterior
// probabilities (index = run length).
func (d *Detector) RunLengthDist() []float64 {
	out := make([]float64, len(d.logp))
	for i, lp := range d.logp {
		out[i] = math.Exp(lp)
	}
	return out
}

// MAPRunLength returns the maximum a posteriori run length.
func (d *Detector) MAPRunLength() int {
	best, bestLP := 0, math.Inf(-1)
	for r, lp := range d.logp {
		if lp > bestLP {
			best, bestLP = r, lp
		}
	}
	return best
}

// Detect runs a fresh detector over xs and returns the indices i where
// P(r_i = 0) exceeded the configured threshold.
func Detect(xs []float64, cfg Config) []int {
	cfg = cfg.withDefaults()
	d := New(cfg)
	var cps []int
	for i, x := range xs {
		if p := d.Step(x); p > cfg.Threshold && i > 0 {
			cps = append(cps, i)
		}
	}
	return cps
}

func logSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}
