package bocd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDetectorFindsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs []float64
	for i := 0; i < 60; i++ {
		xs = append(xs, rng.NormFloat64()*0.5)
	}
	for i := 0; i < 60; i++ {
		xs = append(xs, 10+rng.NormFloat64()*0.5)
	}
	cps := Detect(xs, Config{Hazard: 1.0 / 50})
	if len(cps) == 0 {
		t.Fatal("no change-point detected across a 20-sigma mean shift")
	}
	found := false
	for _, cp := range cps {
		if cp >= 58 && cp <= 63 {
			found = true
		}
	}
	if !found {
		t.Errorf("change-points %v do not include the true shift at 60", cps)
	}
}

func TestDetectorQuietOnStationaryData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := New(Config{Hazard: 1.0 / 200})
	fires := 0
	for i := 0; i < 500; i++ {
		if p := d.Step(rng.NormFloat64()); p > 0.95 && i > 5 {
			fires++
		}
	}
	if fires > 5 {
		t.Errorf("detector fired %d times on stationary noise, want <= 5", fires)
	}
}

func TestRunLengthDistNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := New(Config{})
	for i := 0; i < 100; i++ {
		d.Step(rng.NormFloat64())
	}
	sum := 0.0
	for _, p := range d.RunLengthDist() {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("run-length distribution sums to %v, want 1", sum)
	}
}

func TestMAPRunLengthGrowsOnStationaryData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := New(Config{Hazard: 1.0 / 1000})
	for i := 0; i < 200; i++ {
		d.Step(5 + rng.NormFloat64()*0.1)
	}
	if got := d.MAPRunLength(); got < 150 {
		t.Errorf("MAP run length = %d after 200 stationary obs, want >= 150", got)
	}
}

func TestTruncationKeepsWorking(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := New(Config{MaxRunLength: 16, Hazard: 1.0 / 50})
	for i := 0; i < 200; i++ {
		d.Step(rng.NormFloat64())
	}
	if len(d.RunLengthDist()) > 16 {
		t.Errorf("run-length dist has %d entries, want <= 16", len(d.RunLengthDist()))
	}
	// Detection must still work after long truncated operation.
	fired := false
	for i := 0; i < 50; i++ {
		if p := d.Step(50 + rng.NormFloat64()); p > 0.95 {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("truncated detector failed to fire on a 50-sigma shift")
	}
}

// Property: Step output is always a valid probability and the distribution
// stays normalized regardless of input.
func TestStepOutputsValidProbability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(Config{})
		for i := 0; i < 50; i++ {
			x := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)))
			p := d.Step(x)
			if math.IsNaN(p) || p < 0 || p > 1+1e-9 {
				return false
			}
		}
		sum := 0.0
		for _, q := range d.RunLengthDist() {
			sum += q
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	got := logSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Errorf("logSumExp = %v, want log(6)", got)
	}
	if !math.IsInf(logSumExp(nil), -1) {
		t.Error("logSumExp(nil) should be -Inf")
	}
	if !math.IsInf(logSumExp([]float64{math.Inf(-1)}), -1) {
		t.Error("logSumExp of -Inf should be -Inf")
	}
}

func TestStudentTLogPDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
			return true
		}
		a := studentTLogPDF(x, 3, 0, 1)
		b := studentTLogPDF(-x, 3, 0, 1)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Step splitting ---

var splitEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// syntheticStepTimes builds nSteps bursts of burstLen events spaced
// intraGap apart, with interGap between bursts, plus optional jitter.
func syntheticStepTimes(nSteps, burstLen int, intraGap, interGap time.Duration, jitter float64, seed int64) []time.Time {
	rng := rand.New(rand.NewSource(seed))
	var times []time.Time
	cursor := splitEpoch
	for s := 0; s < nSteps; s++ {
		for i := 0; i < burstLen; i++ {
			times = append(times, cursor)
			gap := intraGap
			if jitter > 0 {
				gap += time.Duration(rng.NormFloat64() * jitter * float64(intraGap))
				if gap < intraGap/10 {
					gap = intraGap / 10
				}
			}
			cursor = cursor.Add(gap)
		}
		cursor = cursor.Add(interGap)
	}
	return times
}

func TestSplitTimesCleanSteps(t *testing.T) {
	times := syntheticStepTimes(8, 20, time.Millisecond, 2*time.Second, 0, 1)
	segments := SplitTimes(times, SplitConfig{})
	if len(segments) != 8 {
		t.Fatalf("got %d segments, want 8", len(segments))
	}
	for i, seg := range segments {
		if seg.Len() != 20 {
			t.Errorf("segment %d has %d events, want 20", i, seg.Len())
		}
	}
}

func TestSplitTimesWithJitter(t *testing.T) {
	times := syntheticStepTimes(10, 30, time.Millisecond, time.Second, 0.3, 2)
	segments := SplitTimes(times, SplitConfig{})
	if len(segments) != 10 {
		t.Fatalf("got %d segments with jitter, want 10", len(segments))
	}
}

func TestSplitTimesPartitionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSteps := 1 + rng.Intn(6)
		burst := 3 + rng.Intn(20)
		times := syntheticStepTimes(nSteps, burst, time.Millisecond, time.Second, 0.2, seed)
		segments := SplitTimes(times, SplitConfig{})
		// Segments must partition [0, len(times)) contiguously.
		expect := 0
		for _, seg := range segments {
			if seg.Lo != expect || seg.Hi <= seg.Lo {
				return false
			}
			expect = seg.Hi
		}
		return expect == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSplitTimesSmallInputs(t *testing.T) {
	if got := SplitTimes(nil, SplitConfig{}); got != nil {
		t.Errorf("SplitTimes(nil) = %v, want nil", got)
	}
	one := []time.Time{splitEpoch}
	if got := SplitTimes(one, SplitConfig{}); len(got) != 1 || got[0] != (Segment{0, 1}) {
		t.Errorf("SplitTimes(one event) = %v, want single segment", got)
	}
	two := []time.Time{splitEpoch, splitEpoch.Add(time.Second)}
	if got := SplitTimes(two, SplitConfig{}); len(got) != 1 || got[0] != (Segment{0, 2}) {
		t.Errorf("SplitTimes(two events) = %v, want single segment", got)
	}
}

func TestNaiveSplitTimes(t *testing.T) {
	times := syntheticStepTimes(5, 10, time.Millisecond, time.Second, 0, 3)
	segments := NaiveSplitTimes(times, 5)
	if len(segments) != 5 {
		t.Fatalf("naive splitter got %d segments, want 5", len(segments))
	}
	if got := NaiveSplitTimes(nil, 5); got != nil {
		t.Error("NaiveSplitTimes(nil) should be nil")
	}
}

func TestMedianOf(t *testing.T) {
	if got := medianOf([]float64{3, 1, 2}); got != 2 {
		t.Errorf("medianOf odd = %v, want 2", got)
	}
	if got := medianOf([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("medianOf even = %v, want 2.5", got)
	}
	if got := medianOf(nil); got != 0 {
		t.Errorf("medianOf(nil) = %v, want 0", got)
	}
}

func BenchmarkDetectorStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := New(Config{MaxRunLength: 256})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step(rng.NormFloat64())
	}
}

func BenchmarkSplitTimes(b *testing.B) {
	times := syntheticStepTimes(20, 50, time.Millisecond, time.Second, 0.2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SplitTimes(times, SplitConfig{})
	}
}

// TestDetectorResetMatchesFresh pins the buffer-reuse contract: a detector
// reused via Reset must emit exactly the probabilities a fresh detector
// does, for several consecutive sequences — the double-buffered posterior
// update must never let a stale buffer leak into a new run.
func TestDetectorResetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	reused := New(Config{})
	for run := 0; run < 4; run++ {
		fresh := New(Config{})
		if run > 0 {
			reused.Reset()
		}
		for i := 0; i < 700; i++ { // past MaxRunLength truncation
			x := rng.NormFloat64()
			if i > 350 {
				x += 8
			}
			pf := fresh.Step(x)
			pr := reused.Step(x)
			if pf != pr {
				t.Fatalf("run %d step %d: fresh %v != reused %v", run, i, pf, pr)
			}
		}
		if fresh.N() != reused.N() {
			t.Fatalf("run %d: N %d != %d", run, fresh.N(), reused.N())
		}
	}
}
