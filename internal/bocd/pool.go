package bocd

import "sync"

// Pool is a concurrency-safe free list of detectors sharing one
// configuration. Continuous monitoring runs one SplitTimes pass per
// endpoint pair and per rank in every window, and each pass historically
// allocated a fresh Detector whose posterior buffers grow back to steady
// state from scratch; a Pool lets those passes reuse detectors via Reset
// instead. A Reset detector is indistinguishable from a newly constructed
// one, so pooling never changes results — it only recycles buffers — and
// any worker may use any pooled instance.
type Pool struct {
	mu   sync.Mutex
	cfg  Config
	free []*Detector
}

// NewPool returns an empty pool handing out detectors configured with cfg
// (defaults applied).
func NewPool(cfg Config) *Pool {
	return &Pool{cfg: cfg.withDefaults()}
}

// Config returns the pool's resolved detector configuration.
func (p *Pool) Config() Config { return p.cfg }

// Get returns a detector in its initial state, reusing a pooled one when
// available.
func (p *Pool) Get() *Detector {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return d
	}
	p.mu.Unlock()
	return New(p.cfg)
}

// Put resets d and returns it to the pool for reuse. d must have been
// obtained from this pool (or configured identically).
func (p *Pool) Put(d *Detector) {
	if d == nil {
		return
	}
	d.Reset()
	p.mu.Lock()
	p.free = append(p.free, d)
	p.mu.Unlock()
}
