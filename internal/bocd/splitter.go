package bocd

import (
	"math"
	"sort"
	"time"
)

// Segment is a half-open index range [Lo, Hi) over an event sequence,
// representing one training step's worth of events.
type Segment struct {
	Lo, Hi int
}

// Len returns the number of events in the segment.
func (s Segment) Len() int { return s.Hi - s.Lo }

// SplitConfig parameterizes step division of a flow/event time sequence.
type SplitConfig struct {
	// BOCD configures the change-point detector run over normalized
	// inter-event gaps. The zero value uses the package defaults.
	BOCD Config
	// MinSeparation is the minimum multiplicative separation between the
	// within-step gap population and the between-step gap cluster. The
	// splitter locates the largest ratio jump in the sorted upper half of
	// the gaps; if that jump is below MinSeparation there are no step
	// boundaries in the window (the paper's premise — "intervals between
	// flows within the same step are significantly shorter than those
	// between adjacent steps" — does not hold), and a BOCD change-point
	// only counts as a boundary when its gap sits above the jump. This is
	// the robustness guard that keeps intra-step structure (e.g. the
	// optimizer pause between reduce-scatter and all-gather bursts,
	// typically a few× the largest transfer gap) from registering as step
	// boundaries. Default 4.
	MinSeparation float64
	// MergeFactor post-merges adjacent segments whose separating gap is
	// below MergeFactor × the larger segment span — see mergeImplausible.
	// Default 1.5.
	MergeFactor float64
	// Detectors, when non-nil and configured with the same BOCD settings,
	// supplies the change-point detector via Reset-based reuse instead of a
	// fresh allocation per call — the steady-state mode of the streaming
	// monitor, where SplitTimes runs once per pair and rank every window.
	// Reuse never changes results; a mismatched pool is ignored.
	Detectors *Pool
}

func (c SplitConfig) withDefaults() SplitConfig {
	if c.MinSeparation <= 1 {
		c.MinSeparation = 4
	}
	if c.MergeFactor <= 0 {
		c.MergeFactor = 1.5
	}
	return c
}

// separationThreshold finds the largest multiplicative jump between
// consecutive sorted gaps in the upper half of the distribution. ok is
// false when no jump reaches minRatio. The threshold is the geometric mean
// of the jump's endpoints.
func separationThreshold(gaps []float64, minRatio float64) (float64, bool) {
	sorted := make([]float64, len(gaps))
	copy(sorted, gaps)
	sort.Float64s(sorted)
	bestRatio, bestAt := 0.0, -1
	for i := len(sorted) / 2; i+1 < len(sorted); i++ {
		lo, hi := sorted[i], sorted[i+1]
		if lo <= 0 {
			continue
		}
		if ratio := hi / lo; ratio > bestRatio {
			bestRatio, bestAt = ratio, i
		}
	}
	if bestAt < 0 || bestRatio < minRatio {
		return 0, false
	}
	return math.Sqrt(sorted[bestAt] * sorted[bestAt+1]), true
}

// SplitTimes divides a time-ordered event sequence into step segments using
// BOCD over the log inter-event gaps, as in §IV-B of the paper: gaps within
// a training step are much shorter than the gap between adjacent steps, so
// a change-point in the gap process marks a step boundary.
//
// times must be sorted ascending. The returned segments partition
// [0, len(times)).
func SplitTimes(times []time.Time, cfg SplitConfig) []Segment {
	cfg = cfg.withDefaults()
	n := len(times)
	if n == 0 {
		return nil
	}
	if n <= 2 {
		return []Segment{{Lo: 0, Hi: n}}
	}

	gaps := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		gaps[i] = times[i+1].Sub(times[i]).Seconds()
	}
	guard, separated := separationThreshold(gaps, cfg.MinSeparation)
	if !separated {
		// No two-regime structure in the gaps: the window holds no
		// complete step boundary.
		return []Segment{{Lo: 0, Hi: n}}
	}

	median := medianOf(gaps)
	if median <= 0 {
		median = 1e-9
	}
	// Normalize gaps by their median so the detector is scale-free across
	// pairs and jobs, and winsorize the low side at the median: gaps below
	// the median carry no step-boundary information (boundaries are always
	// unusually *large* gaps), but near-zero gaps — concurrent collective
	// chains, retransmitted records — would otherwise dominate the learned
	// within-step distribution and mask boundaries.
	obs := make([]float64, len(gaps))
	for i, g := range gaps {
		v := g / median
		if v < 1 {
			v = 1
		}
		obs[i] = v
	}

	det, pooled := cfg.acquireDetector()
	if pooled != nil {
		defer pooled.Put(det)
	}
	var segments []Segment
	lo := 0
	for i, x := range obs {
		p := det.Step(x)
		if i == 0 {
			continue
		}
		if p > det.cfg.Threshold && gaps[i] >= guard {
			// Gap i separates times[i] and times[i+1]: a new step
			// begins at event i+1. Reset the detector so run-length
			// hypotheses containing the boundary spike cannot absorb
			// (and thereby mask) the next boundary — each step's gap
			// regime is learned fresh.
			segments = append(segments, Segment{Lo: lo, Hi: i + 1})
			lo = i + 1
			det.Reset()
		}
	}
	segments = append(segments, Segment{Lo: lo, Hi: n})
	return mergeImplausible(times, segments, cfg.MergeFactor)
}

// acquireDetector returns the detector SplitTimes runs with and, when it
// came from the configured pool, the pool to return it to. The pool is
// used only when its configuration matches cfg.BOCD exactly, so pooled and
// fresh detectors are interchangeable.
func (c SplitConfig) acquireDetector() (*Detector, *Pool) {
	if c.Detectors != nil && c.Detectors.cfg == c.BOCD.withDefaults() {
		return c.Detectors.Get(), c.Detectors
	}
	return New(c.BOCD), nil
}

// mergeImplausible merges adjacent segments whose separating gap is not
// clearly larger than the segments themselves. A real step boundary is a
// compute phase, which dwarfs the communication bursts it separates; a gap
// comparable to the burst spans (e.g. the optimizer pause splitting one DP
// burst into reduce-scatter and all-gather halves when the window holds no
// true boundary to anchor the gap distribution) is intra-step structure.
func mergeImplausible(times []time.Time, segments []Segment, factor float64) []Segment {
	if factor <= 0 {
		factor = 1.5
	}
	if len(segments) <= 1 {
		return segments
	}
	out := segments[:1]
	for _, next := range segments[1:] {
		cur := &out[len(out)-1]
		gap := times[next.Lo].Sub(times[cur.Hi-1]).Seconds()
		spanCur := times[cur.Hi-1].Sub(times[cur.Lo]).Seconds()
		spanNext := times[next.Hi-1].Sub(times[next.Lo]).Seconds()
		span := spanCur
		if spanNext > span {
			span = spanNext
		}
		if gap < factor*span {
			cur.Hi = next.Hi
		} else {
			out = append(out, next)
		}
	}
	return out
}

// NaiveSplitTimes divides the sequence with a simple threshold rule:
// a boundary is any gap exceeding factor × median(gaps). It is the baseline
// step splitter used in the A2 ablation.
func NaiveSplitTimes(times []time.Time, factor float64) []Segment {
	n := len(times)
	if n == 0 {
		return nil
	}
	if factor <= 0 {
		factor = 5
	}
	if n <= 2 {
		return []Segment{{Lo: 0, Hi: n}}
	}
	gaps := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		gaps[i] = times[i+1].Sub(times[i]).Seconds()
	}
	threshold := factor * medianOf(gaps)
	var segments []Segment
	lo := 0
	for i, g := range gaps {
		if g > threshold {
			segments = append(segments, Segment{Lo: lo, Hi: i + 1})
			lo = i + 1
		}
	}
	segments = append(segments, Segment{Lo: lo, Hi: n})
	return segments
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
