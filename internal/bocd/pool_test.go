package bocd

import (
	"testing"
	"time"
)

func TestPoolReuseMatchesFresh(t *testing.T) {
	cfg := Config{Hazard: 1.0 / 50}
	p := NewPool(cfg)
	xs := []float64{1, 1.1, 0.9, 1, 8, 1, 1.05, 0.95, 1, 7.5, 1, 1.02}

	run := func(d *Detector) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = d.Step(x)
		}
		return out
	}
	want := run(New(cfg))

	d := p.Get()
	first := run(d)
	p.Put(d)
	d2 := p.Get()
	if d2 != d {
		t.Fatal("pool did not reuse the returned detector")
	}
	second := run(d2)
	p.Put(d2)
	for i := range want {
		if want[i] != first[i] || want[i] != second[i] {
			t.Fatalf("step %d: fresh %v, first %v, reused %v — reuse changed results", i, want[i], first[i], second[i])
		}
	}
}

func TestSplitTimesPooledMatchesFresh(t *testing.T) {
	epoch := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	var times []time.Time
	at := epoch
	for step := 0; step < 6; step++ {
		for i := 0; i < 10; i++ {
			times = append(times, at)
			at = at.Add(20 * time.Millisecond)
		}
		at = at.Add(2 * time.Second) // step boundary gap
	}

	fresh := SplitTimes(times, SplitConfig{})
	pool := NewPool(Config{})
	pooled := SplitConfig{Detectors: pool}
	for i := 0; i < 3; i++ {
		got := SplitTimes(times, pooled)
		if len(got) != len(fresh) {
			t.Fatalf("run %d: segments = %d, want %d", i, len(got), len(fresh))
		}
		for j := range got {
			if got[j] != fresh[j] {
				t.Fatalf("run %d segment %d: %+v, want %+v", i, j, got[j], fresh[j])
			}
		}
	}

	// A pool with a different configuration is ignored, not misused.
	other := SplitConfig{Detectors: NewPool(Config{Hazard: 0.3})}
	got := SplitTimes(times, other)
	if len(got) != len(fresh) {
		t.Fatalf("mismatched pool changed results: %d segments, want %d", len(got), len(fresh))
	}
}
