package platform

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/llmprism/llmprism/internal/model"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/trainsim"
)

// JobPlan is a compact tenant-job request the planner expands into a full
// trainsim.JobConfig.
type JobPlan struct {
	// Nodes is the number of servers the tenant rents. Must be >= 2.
	Nodes int
	// Model overrides the size-based default model choice.
	Model model.Spec
	// PP overrides the derived pipeline depth (0 = derive).
	PP int
	// TargetStep is the desired training-step duration (drives the
	// micro-batch sizing). Default 10s.
	TargetStep time.Duration
	// Style selects DP communication. Defaults to alternating per job.
	Style trainsim.CommStyle
	// StyleSet marks Style as explicitly chosen.
	StyleSet bool
}

// PlanJobs expands plans into validated job configs placed on contiguous
// node ranges of the fabric, deterministically under seed.
func PlanJobs(topoSpec topology.Spec, plans []JobPlan, seed int64) ([]trainsim.JobConfig, error) {
	topo, err := topology.New(topoSpec)
	if err != nil {
		return nil, fmt.Errorf("platform: plan: %w", err)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	gpn := topo.Spec().GPUsPerNode

	var cfgs []trainsim.JobConfig
	cursor := 0
	for i, plan := range plans {
		if plan.Nodes < 2 {
			return nil, fmt.Errorf("platform: plan %d: needs >= 2 nodes, got %d", i, plan.Nodes)
		}
		if cursor+plan.Nodes > topo.Nodes() {
			return nil, fmt.Errorf("platform: plan %d: fabric exhausted (%d nodes, need %d more)",
				i, topo.Nodes(), cursor+plan.Nodes-topo.Nodes())
		}
		nodes := make([]topology.NodeID, plan.Nodes)
		for k := range nodes {
			nodes[k] = topology.NodeID(cursor + k)
		}
		cursor += plan.Nodes

		pp := plan.PP
		if pp <= 0 {
			pp = derivePP(plan.Nodes)
		}
		if plan.Nodes%pp != 0 {
			return nil, fmt.Errorf("platform: plan %d: PP %d does not divide %d nodes", i, pp, plan.Nodes)
		}
		dp := plan.Nodes / pp
		if dp < 2 {
			return nil, fmt.Errorf("platform: plan %d: PP %d leaves DP %d < 2", i, pp, dp)
		}

		spec := plan.Model
		if spec.Layers == 0 {
			spec = modelForSize(plan.Nodes)
		}

		style := plan.Style
		if !plan.StyleSet {
			style = trainsim.CommStyle(i % 2)
		}

		target := plan.TargetStep
		if target <= 0 {
			target = 10 * time.Second
		}
		micro := 2 * pp
		if micro < 8 {
			micro = 8
		}
		if micro > 16 {
			micro = 16
		}
		mbs := deriveMicroBatchSize(spec, pp, micro, target)

		cfgs = append(cfgs, trainsim.JobConfig{
			ID:             i + 1,
			Name:           fmt.Sprintf("job-%02d-%s", i+1, spec.Name),
			Model:          spec,
			TP:             gpn,
			PP:             pp,
			DP:             dp,
			MicroBatches:   micro,
			MicroBatchSize: mbs,
			Nodes:          nodes,
			Style:          style,
			Seed:           seed + int64(i)*7919,
			StartOffset:    time.Duration(rng.Int63n(int64(target))),
		})
	}
	return cfgs, nil
}

// derivePP picks the deepest pipeline in {8,4,2,1} that divides the node
// count while keeping DP >= 4 (production jobs favour wide DP, and wide DP
// makes the multi-ring DP graph robust).
func derivePP(nodes int) int {
	for _, pp := range []int{8, 4, 2} {
		if nodes%pp == 0 && nodes/pp >= 4 {
			return pp
		}
	}
	// Fall back to any divisor keeping DP >= 2.
	for _, pp := range []int{8, 4, 2} {
		if nodes%pp == 0 && nodes/pp >= 2 {
			return pp
		}
	}
	return 1
}

// modelForSize maps tenant scale to a model from the LLaMA family.
func modelForSize(nodes int) model.Spec {
	switch {
	case nodes <= 8:
		return model.Llama7B
	case nodes <= 24:
		return model.Llama13B
	case nodes <= 64:
		return model.Llama33B
	default:
		return model.Llama70B
	}
}

// deriveMicroBatchSize sizes micro-batches so a step's compute lands near
// the target duration: step ≈ micro × (fwd+bwd) = micro × 3 × fwd.
func deriveMicroBatchSize(spec model.Spec, pp, micro int, target time.Duration) int {
	// fwd seconds per unit micro-batch-size on the largest stage (stage 0),
	// at the default effective GPU rate of trainsim.JobConfig.
	fwdPerUnit := spec.FwdFLOPs(pp, 0, 8, 1) / 120e12
	if fwdPerUnit <= 0 {
		return 1
	}
	mbs := int(target.Seconds() / (3 * float64(micro) * fwdPerUnit))
	if mbs < 1 {
		mbs = 1
	}
	if mbs > 64 {
		mbs = 64
	}
	return mbs
}
