// Package platform assembles the full simulated multi-tenant LLM training
// platform: it builds the fabric, places tenant jobs, co-simulates training
// against the fluid network, collects ERSPAN-style flow records, and
// returns them together with the ground truth. It is the synthetic stand-in
// for the paper's production Platform-X.
package platform

import (
	"fmt"
	"time"

	"github.com/llmprism/llmprism/internal/erspan"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/netsim"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/trainsim"
	"github.com/llmprism/llmprism/internal/truth"
)

// DefaultEpoch anchors simulation offsets to wall-clock timestamps.
var DefaultEpoch = time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)

// Scenario is a full platform simulation specification.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Topo describes the fabric.
	Topo topology.Spec
	// Jobs are the tenant training jobs.
	Jobs []trainsim.JobConfig
	// Faults is the injected anomaly schedule.
	Faults faults.Schedule
	// Net configures the network simulator.
	Net netsim.Config
	// Collector configures flow-collection noise.
	Collector erspan.Config
	// Epoch is the wall-clock anchor (DefaultEpoch if zero).
	Epoch time.Time
	// Horizon is the simulated duration. Required.
	Horizon time.Duration
}

// Result is the output of one platform run.
type Result struct {
	Topo *topology.Topology
	// Frame is the collected flow window in columnar form — the native
	// input of Analyzer.AnalyzeFrame.
	Frame *flow.Frame
	// Records is Frame materialized in start order. Switch paths alias the
	// frame's interned path table; treat them as read-only.
	Records []flow.Record
	Truth   truth.Platform
	Stats   trainsim.Stats
	// Observed and Lost count collector activity; Blacked is the subset of
	// Lost dropped by switch mirror blackouts (Collector.Blackouts).
	Observed, Lost, Blacked uint64
}

// Run executes the scenario.
func Run(s Scenario) (*Result, error) {
	if s.Horizon <= 0 {
		return nil, fmt.Errorf("platform: scenario %q needs a positive horizon", s.Name)
	}
	epoch := s.Epoch
	if epoch.IsZero() {
		epoch = DefaultEpoch
	}
	topo, err := topology.New(s.Topo)
	if err != nil {
		return nil, fmt.Errorf("platform: scenario %q: %w", s.Name, err)
	}
	coll := erspan.New(epoch, s.Collector)
	cluster, err := trainsim.NewCluster(topo, s.Jobs, s.Faults, s.Net, coll.Observe)
	if err != nil {
		return nil, fmt.Errorf("platform: scenario %q: %w", s.Name, err)
	}
	if err := cluster.Run(s.Horizon); err != nil {
		return nil, fmt.Errorf("platform: scenario %q: %w", s.Name, err)
	}
	frame := coll.Frame()
	return &Result{
		Topo:     topo,
		Frame:    frame,
		Records:  frame.RecordsByStart(),
		Truth:    cluster.Truth(epoch),
		Stats:    cluster.Stats(),
		Observed: coll.Observed(),
		Lost:     coll.Lost(),
		Blacked:  coll.BlackedOut(),
	}, nil
}

// Window returns the records of res whose start falls within
// [epoch+from, epoch+from+width).
func (r *Result) Window(from, width time.Duration) []flow.Record {
	start := r.Truth.Epoch.Add(from)
	return flow.Window(r.Records, start, start.Add(width))
}
