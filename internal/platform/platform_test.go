package platform

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/trainsim"
)

var smallTopo = topology.Spec{Nodes: 16, NodesPerLeaf: 8, Spines: 2}

func TestPlanJobsBasics(t *testing.T) {
	cfgs, err := PlanJobs(smallTopo, []JobPlan{
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 4, TargetStep: 2 * time.Second},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Fatalf("planned %d jobs, want 2", len(cfgs))
	}
	topo, err := topology.New(smallTopo)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[topology.NodeID]bool)
	for _, cfg := range cfgs {
		if err := cfg.Validate(topo); err != nil {
			t.Errorf("planned job invalid: %v", err)
		}
		for _, n := range cfg.Nodes {
			if seen[n] {
				t.Errorf("node %d assigned to two jobs", n)
			}
			seen[n] = true
		}
		if cfg.DP < 2 {
			t.Errorf("job %d has DP %d", cfg.ID, cfg.DP)
		}
	}
}

func TestPlanJobsErrors(t *testing.T) {
	if _, err := PlanJobs(smallTopo, []JobPlan{{Nodes: 1}}, 1); err == nil {
		t.Error("1-node plan should fail")
	}
	if _, err := PlanJobs(smallTopo, []JobPlan{{Nodes: 12}, {Nodes: 12}}, 1); err == nil {
		t.Error("over-subscribed fabric should fail")
	}
	if _, err := PlanJobs(smallTopo, []JobPlan{{Nodes: 6, PP: 4}}, 1); err == nil {
		t.Error("non-dividing PP should fail")
	}
}

func TestDerivePP(t *testing.T) {
	tests := []struct{ nodes, want int }{
		{32, 8}, {16, 4}, {8, 2}, {4, 2}, {6, 2}, {24, 4}, {12, 2},
	}
	for _, tt := range tests {
		if got := derivePP(tt.nodes); got != tt.want {
			t.Errorf("derivePP(%d) = %d, want %d", tt.nodes, got, tt.want)
		}
	}
	// Invariants: PP divides nodes and DP >= 2 for any node count >= 2.
	for nodes := 2; nodes <= 128; nodes++ {
		pp := derivePP(nodes)
		if nodes%pp != 0 {
			t.Errorf("derivePP(%d) = %d does not divide", nodes, pp)
		}
		if pp > 1 && nodes/pp < 2 {
			t.Errorf("derivePP(%d) = %d leaves DP < 2", nodes, pp)
		}
	}
}

func TestRunSmallScenario(t *testing.T) {
	cfgs, err := PlanJobs(smallTopo, []JobPlan{
		{Nodes: 8, TargetStep: time.Second},
		{Nodes: 4, TargetStep: time.Second},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Scenario{
		Name:    "small",
		Topo:    smallTopo,
		Jobs:    cfgs,
		Horizon: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no flow records collected")
	}
	if len(res.Truth.Jobs) != 2 {
		t.Fatalf("truth jobs = %d, want 2", len(res.Truth.Jobs))
	}
	if res.Stats.StepEnds == 0 {
		t.Error("no steps completed")
	}
	// Records must be sorted and within the horizon.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Start.Before(res.Records[i-1].Start) {
			t.Fatal("records not sorted")
		}
	}
	last := res.Records[len(res.Records)-1]
	if last.Start.After(res.Truth.Epoch.Add(10 * time.Second)) {
		t.Errorf("record starts after horizon: %v", last.Start)
	}
	// Window extraction.
	win := res.Window(2*time.Second, 3*time.Second)
	if len(win) == 0 {
		t.Error("window returned no records")
	}
	for _, r := range win {
		off := r.Start.Sub(res.Truth.Epoch)
		if off < 2*time.Second || off >= 5*time.Second {
			t.Fatalf("windowed record at offset %v", off)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Scenario{Name: "no-horizon", Topo: smallTopo}); err == nil {
		t.Error("missing horizon should fail")
	}
	if _, err := Run(Scenario{
		Name: "bad-topo", Topo: topology.Spec{}, Horizon: time.Second,
	}); err == nil {
		t.Error("bad topology should fail")
	}
	if _, err := Run(Scenario{
		Name: "bad-job", Topo: smallTopo, Horizon: time.Second,
		Jobs: []trainsim.JobConfig{{}},
	}); err == nil {
		t.Error("bad job should fail")
	}
}

func TestStyleAlternation(t *testing.T) {
	cfgs, err := PlanJobs(smallTopo, []JobPlan{{Nodes: 4}, {Nodes: 4}, {Nodes: 4}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].Style == cfgs[1].Style {
		t.Error("styles should alternate by default")
	}
	forced, err := PlanJobs(smallTopo, []JobPlan{
		{Nodes: 4, Style: trainsim.StyleAllReduce, StyleSet: true},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if forced[0].Style != trainsim.StyleAllReduce {
		t.Error("explicit style ignored")
	}
}
