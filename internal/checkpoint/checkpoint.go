// Package checkpoint serializes a streaming monitor session's continuity
// state — the window grid position plus the cross-window trackers (job
// registry, incident tracker, suspect tracker, coverage baseline) — so a
// killed-and-restarted monitor resumes emitting the next window with the
// same JobIDs, incident first-seen times and fused suspect scores the
// uninterrupted session would have produced.
//
// # File layout (version 1)
//
// All integers are little-endian; times are UnixNano with math.MinInt64
// marking the zero time; floats are IEEE-754 bits.
//
//	magic "LPK1" | version u32 (1)
//	geometry: width i64 | hop i64 | lateness i64
//	engine:   anchor i64 | maxEvent i64 | nextK i64 | seq i64 |
//	          late u64 | skipped u64
//	registry: next i64 | njobs u32, then per job:
//	          id i64 | firstSeen i64 | lastSeq i64 | nend u32 | addr u32 ...
//	incidents: seq i64 | firstAlertSeq i64 | n u32, then per incident:
//	          job i64 | kind u8 | rank u32 | switch i64 | firstSeen i64 |
//	          lastSeen i64 | windows i64 | flags u8 (bit0 StillFiring,
//	          bit1 Chronic) | openedSeq i64 | detail (u32 len + bytes)
//	suspects: present u8, then when present: n u32, then per track:
//	          component | firstSeen i64 | windows i64 | fused f64 |
//	          missed i64 | last suspect (component | score f64 |
//	          coverage f64 | contrast f64 | implicated i64 | healthy i64 |
//	          firstSeen i64 | windows i64 | fused f64)
//	          where component = kind u8 | switch i64 | a i64 | b i64 |
//	          host u32
//	coverage: present u8, then when present: n u32 | rows i64 ...
//	crc32 (IEEE) over all preceding bytes
//
// # Compatibility policy
//
// The decoder is strict: unknown version, bad checksum, truncation,
// implausible counts and trailing bytes are all rejected with precise
// errors — the strict-decoder bar every wire surface in this codebase
// meets. A layout change bumps the version; old versions are not migrated
// (a checkpoint is a crash-recovery artifact of one deployed binary, not
// an interchange format — on version skew the monitor starts a fresh
// session and only continuity, not correctness, is lost).
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/localize"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/stream"
)

var magic = [4]byte{'L', 'P', 'K', '1'}

// Version is the current checkpoint layout version.
const Version = 1

// zeroTime marks time.Time{} on the wire (no real timestamp collides:
// UnixNano of the zero time is not representable anyway).
const zeroTime = math.MinInt64

// Checkpoint is one session's continuity state as of a window boundary.
type Checkpoint struct {
	// Width, Hop and Lateness pin the window geometry; a resumed session
	// must use them (a different grid would misalign every window).
	Width, Hop, Lateness time.Duration
	// Engine is the window-grid position (see stream.State).
	Engine stream.State
	// Registry is the job registry's tracked jobs and id counter.
	Registry jobrec.Snapshot
	// Incidents is the incident tracker's open incidents and baseline
	// bookkeeping.
	Incidents diagnose.TrackerSnapshot
	// Suspects is the suspect tracker's state; nil when the session ran
	// without localization.
	Suspects *localize.TrackerSnapshot
	// Coverage is the coverage guard's rolling baseline; nil when the
	// session ran without a coverage guard.
	Coverage *CoverageState
}

// CoverageState is the coverage guard's rolling baseline: the row counts
// of the most recent healthy windows.
type CoverageState struct {
	Recent []int64
}

// ResumeFrom returns the start of the first window the resumed session
// will emit. Records before it belong to already-emitted windows; the
// feeder replays everything at or after it.
func (c *Checkpoint) ResumeFrom() time.Time {
	return time.Unix(0, c.Engine.Anchor+c.Engine.NextK*int64(c.Hop)).UTC()
}

func putI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func putTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return putI64(b, zeroTime)
	}
	return putI64(b, t.UnixNano())
}

func putF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func putComponent(b []byte, c localize.Component) []byte {
	b = append(b, byte(c.Kind))
	b = putI64(b, int64(c.Switch))
	b = putI64(b, int64(c.A))
	b = putI64(b, int64(c.B))
	return binary.LittleEndian.AppendUint32(b, uint32(c.Host))
}

// Write serializes the checkpoint to w.
func Write(w io.Writer, c *Checkpoint) error {
	b := make([]byte, 0, 512)
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint32(b, Version)
	b = putI64(b, int64(c.Width))
	b = putI64(b, int64(c.Hop))
	b = putI64(b, int64(c.Lateness))

	e := c.Engine
	b = putI64(b, e.Anchor)
	b = putI64(b, e.MaxEvent)
	b = putI64(b, e.NextK)
	b = putI64(b, int64(e.Seq))
	b = binary.LittleEndian.AppendUint64(b, e.Late)
	b = binary.LittleEndian.AppendUint64(b, e.Skipped)

	b = putI64(b, int64(c.Registry.Next))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Registry.Jobs)))
	for _, j := range c.Registry.Jobs {
		b = putI64(b, int64(j.ID))
		b = putTime(b, j.FirstSeen)
		b = putI64(b, int64(j.LastSeq))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(j.Endpoints)))
		for _, a := range j.Endpoints {
			b = binary.LittleEndian.AppendUint32(b, uint32(a))
		}
	}

	b = putI64(b, int64(c.Incidents.Seq))
	b = putI64(b, int64(c.Incidents.FirstAlertSeq))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Incidents.Open)))
	for _, o := range c.Incidents.Open {
		inc := o.Incident
		b = putI64(b, int64(inc.Key.Job))
		b = append(b, byte(inc.Key.Kind))
		b = binary.LittleEndian.AppendUint32(b, uint32(inc.Key.Rank))
		b = putI64(b, int64(inc.Key.Switch))
		b = putTime(b, inc.FirstSeen)
		b = putTime(b, inc.LastSeen)
		b = putI64(b, int64(inc.Windows))
		var flags byte
		if inc.StillFiring {
			flags |= 1
		}
		if inc.Chronic {
			flags |= 2
		}
		b = append(b, flags)
		b = putI64(b, int64(o.OpenedSeq))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(inc.Detail)))
		b = append(b, inc.Detail...)
	}

	if c.Suspects == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Suspects.Tracks)))
		for _, tr := range c.Suspects.Tracks {
			b = putComponent(b, tr.Component)
			b = putTime(b, tr.FirstSeen)
			b = putI64(b, int64(tr.Windows))
			b = putF64(b, tr.Fused)
			b = putI64(b, int64(tr.Missed))
			s := tr.Last
			b = putComponent(b, s.Component)
			b = putF64(b, s.Score)
			b = putF64(b, s.Coverage)
			b = putF64(b, s.Contrast)
			b = putI64(b, int64(s.Implicated))
			b = putI64(b, int64(s.Healthy))
			b = putTime(b, s.FirstSeen)
			b = putI64(b, int64(s.Windows))
			b = putF64(b, s.Fused)
		}
	}

	if c.Coverage == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Coverage.Recent)))
		for _, v := range c.Coverage.Recent {
			b = putI64(b, v)
		}
	}

	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	_, err := w.Write(b)
	return err
}

// cursor is a strict sequential decoder: every read is bounds-checked and
// the caller verifies full consumption at the end.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || len(c.b)-c.off < n {
		c.fail("truncated at offset %d (need %d bytes, %d left)", c.off, n, len(c.b)-c.off)
		return nil
	}
	p := c.b[c.off : c.off+n]
	c.off += n
	return p
}

func (c *cursor) u8() byte {
	if p := c.take(1); p != nil {
		return p[0]
	}
	return 0
}

func (c *cursor) u32() uint32 {
	if p := c.take(4); p != nil {
		return binary.LittleEndian.Uint32(p)
	}
	return 0
}

func (c *cursor) u64() uint64 {
	if p := c.take(8); p != nil {
		return binary.LittleEndian.Uint64(p)
	}
	return 0
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) time() time.Time {
	v := c.i64()
	if v == zeroTime {
		return time.Time{}
	}
	return time.Unix(0, v).UTC()
}

// count reads an element count and rejects one that could not fit in the
// remaining bytes at unit bytes per element, so a forged count fails here
// instead of committing decode memory.
func (c *cursor) count(unit int, what string) int {
	n := int(c.u32())
	if c.err == nil && n*unit > len(c.b)-c.off {
		c.fail("%s count %d exceeds remaining %d bytes", what, n, len(c.b)-c.off)
		return 0
	}
	return n
}

func (c *cursor) component() localize.Component {
	return localize.Component{
		Kind:   localize.ComponentKind(c.u8()),
		Switch: flow.SwitchID(c.i64()),
		A:      flow.SwitchID(c.i64()),
		B:      flow.SwitchID(c.i64()),
		Host:   flow.Addr(c.u32()),
	}
}

// Read parses and validates a checkpoint. The reader must yield exactly
// one checkpoint; trailing bytes are rejected.
func Read(r io.Reader) (*Checkpoint, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	if len(b) < 8+4 {
		return nil, fmt.Errorf("checkpoint: %d bytes is too small", len(b))
	}
	if [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (want %d)", v, Version)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch: file %08x, computed %08x", want, got)
	}

	cur := &cursor{b: body, off: 8}
	c := &Checkpoint{}
	c.Width = time.Duration(cur.i64())
	c.Hop = time.Duration(cur.i64())
	c.Lateness = time.Duration(cur.i64())
	if cur.err == nil && (c.Width <= 0 || c.Hop <= 0 || c.Lateness < 0 || c.Hop > c.Width) {
		cur.fail("invalid window geometry width=%v hop=%v lateness=%v", c.Width, c.Hop, c.Lateness)
	}

	c.Engine = stream.State{
		Anchor:   cur.i64(),
		MaxEvent: cur.i64(),
		NextK:    cur.i64(),
		Seq:      int(cur.i64()),
		Late:     cur.u64(),
		Skipped:  cur.u64(),
	}
	if cur.err == nil && c.Engine.Seq < 0 {
		cur.fail("negative emission index %d", c.Engine.Seq)
	}

	c.Registry.Next = jobrec.JobID(cur.i64())
	njobs := cur.count(8+8+8+4, "job")
	for i := 0; i < njobs && cur.err == nil; i++ {
		j := jobrec.JobSnapshot{
			ID:        jobrec.JobID(cur.i64()),
			FirstSeen: cur.time(),
			LastSeq:   int(cur.i64()),
		}
		nend := cur.count(4, "endpoint")
		for k := 0; k < nend && cur.err == nil; k++ {
			j.Endpoints = append(j.Endpoints, flow.Addr(cur.u32()))
		}
		c.Registry.Jobs = append(c.Registry.Jobs, j)
	}

	c.Incidents.Seq = int(cur.i64())
	c.Incidents.FirstAlertSeq = int(cur.i64())
	nincs := cur.count(8+1+4+8+8+8+8+1+8+4, "incident")
	for i := 0; i < nincs && cur.err == nil; i++ {
		var o diagnose.OpenIncident
		o.Incident.Key = diagnose.IncidentKey{
			Job:    int(cur.i64()),
			Kind:   diagnose.AlertKind(cur.u8()),
			Rank:   flow.Addr(cur.u32()),
			Switch: flow.SwitchID(cur.i64()),
		}
		o.Incident.FirstSeen = cur.time()
		o.Incident.LastSeen = cur.time()
		o.Incident.Windows = int(cur.i64())
		flags := cur.u8()
		o.Incident.StillFiring = flags&1 != 0
		o.Incident.Chronic = flags&2 != 0
		if cur.err == nil && flags&^byte(3) != 0 {
			cur.fail("unknown incident flags %#x", flags)
		}
		o.OpenedSeq = int(cur.i64())
		ndetail := cur.count(1, "detail byte")
		if p := cur.take(ndetail); p != nil {
			o.Incident.Detail = string(p)
		}
		c.Incidents.Open = append(c.Incidents.Open, o)
	}

	const componentSize = 1 + 8 + 8 + 8 + 4
	switch cur.u8() {
	case 0:
	case 1:
		c.Suspects = &localize.TrackerSnapshot{}
		n := cur.count(componentSize*2+8*13, "suspect track")
		for i := 0; i < n && cur.err == nil; i++ {
			tr := localize.TrackSnapshot{
				Component: cur.component(),
				FirstSeen: cur.time(),
				Windows:   int(cur.i64()),
				Fused:     cur.f64(),
				Missed:    int(cur.i64()),
			}
			tr.Last = localize.Suspect{
				Component:  cur.component(),
				Score:      cur.f64(),
				Coverage:   cur.f64(),
				Contrast:   cur.f64(),
				Implicated: int(cur.i64()),
				Healthy:    int(cur.i64()),
				FirstSeen:  cur.time(),
				Windows:    int(cur.i64()),
				Fused:      cur.f64(),
			}
			c.Suspects.Tracks = append(c.Suspects.Tracks, tr)
		}
	default:
		cur.fail("invalid suspects presence byte")
	}

	switch cur.u8() {
	case 0:
	case 1:
		c.Coverage = &CoverageState{}
		n := cur.count(8, "coverage window")
		for i := 0; i < n && cur.err == nil; i++ {
			c.Coverage.Recent = append(c.Coverage.Recent, cur.i64())
		}
	default:
		cur.fail("invalid coverage presence byte")
	}

	if cur.err != nil {
		return nil, cur.err
	}
	if cur.off != len(body) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(body)-cur.off)
	}
	return c, nil
}

// Save writes the checkpoint to path atomically: a temp file in the same
// directory, fsynced, then renamed over the target — a crash mid-write
// leaves either the previous checkpoint or none, never a torn one.
func Save(path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads and validates the checkpoint at path.
func Load(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Read(f)
}
