package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/localize"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/stream"
)

var epoch = time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Width:    20 * time.Second,
		Hop:      20 * time.Second,
		Lateness: 5 * time.Second,
		Engine: stream.State{
			Anchor:   epoch.UnixNano(),
			MaxEvent: epoch.Add(85 * time.Second).UnixNano(),
			NextK:    4,
			Seq:      4,
			Late:     3,
			Skipped:  0,
		},
		Registry: jobrec.Snapshot{
			Next: 2,
			Jobs: []jobrec.JobSnapshot{
				{ID: 1, Endpoints: []flow.Addr{1, 2, 3, 4}, FirstSeen: epoch, LastSeq: 3},
				{ID: 2, Endpoints: []flow.Addr{9, 10}, FirstSeen: epoch.Add(20 * time.Second), LastSeq: 2},
			},
		},
		Incidents: diagnose.TrackerSnapshot{
			Seq:           4,
			FirstAlertSeq: 1,
			Open: []diagnose.OpenIncident{
				{
					Incident: diagnose.Incident{
						Key:         diagnose.IncidentKey{Job: 1, Kind: diagnose.AlertCrossStep, Rank: 3},
						FirstSeen:   epoch.Add(25 * time.Second),
						LastSeen:    epoch.Add(70 * time.Second),
						Windows:     3,
						StillFiring: true,
						Chronic:     true,
						Detail:      "rank 3 slow",
					},
					OpenedSeq: 1,
				},
				{
					Incident: diagnose.Incident{
						Key:         diagnose.IncidentKey{Kind: diagnose.AlertSwitchBandwidth, Switch: 17},
						FirstSeen:   epoch.Add(65 * time.Second),
						LastSeen:    epoch.Add(70 * time.Second),
						Windows:     1,
						StillFiring: true,
					},
					OpenedSeq: 3,
				},
			},
		},
		Suspects: &localize.TrackerSnapshot{
			Tracks: []localize.TrackSnapshot{
				{
					Component: localize.SwitchComponent(17),
					FirstSeen: epoch.Add(60 * time.Second),
					Windows:   2,
					Fused:     1.75,
					Missed:    0,
					Last: localize.Suspect{
						Component:  localize.SwitchComponent(17),
						Score:      0.9,
						Coverage:   0.95,
						Contrast:   1.4,
						Implicated: 12,
						Healthy:    3,
						FirstSeen:  epoch.Add(60 * time.Second),
						Windows:    2,
						Fused:      1.75,
					},
				},
			},
		},
		Coverage: &CoverageState{Recent: []int64{1200, 1180, 1210}},
	}
}

func encode(t *testing.T, c *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := sampleCheckpoint()
	got, err := Read(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("round trip differs:\n got %+v\nwant %+v", got, want)
	}
	if from := got.ResumeFrom(); !from.Equal(epoch.Add(80 * time.Second)) {
		t.Errorf("ResumeFrom = %v", from)
	}
}

func TestCheckpointRoundTripMinimal(t *testing.T) {
	want := &Checkpoint{
		Width: time.Second, Hop: time.Second,
		Engine:    stream.State{Anchor: epoch.UnixNano(), MaxEvent: epoch.UnixNano(), NextK: 1, Seq: 1},
		Incidents: diagnose.TrackerSnapshot{FirstAlertSeq: -1, Seq: 1},
	}
	got, err := Read(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("round trip differs:\n got %+v\nwant %+v", got, want)
	}
	if got.Suspects != nil || got.Coverage != nil {
		t.Error("absent sections materialized")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	data := encode(t, sampleCheckpoint())
	read := func(b []byte) error {
		_, err := Read(bytes.NewReader(b))
		return err
	}
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), data...)
		b[0] = 'X'
		if read(b) == nil {
			t.Error("accepted")
		}
	})
	t.Run("unknown version", func(t *testing.T) {
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(b[4:], 99)
		if read(b) == nil {
			t.Error("accepted")
		}
	})
	t.Run("bit flip fails checksum", func(t *testing.T) {
		for _, off := range []int{10, len(data) / 2, len(data) - 6} {
			b := append([]byte(nil), data...)
			b[off] ^= 0x20
			if read(b) == nil {
				t.Errorf("flip at %d accepted", off)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 4, 11, len(data) / 2, len(data) - 1} {
			if read(data[:cut]) == nil {
				t.Errorf("truncation to %d accepted", cut)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if read(append(append([]byte(nil), data...), 0)) == nil {
			t.Error("accepted")
		}
	})
	t.Run("forged job count", func(t *testing.T) {
		// The job count sits right after geometry+engine+registry.next.
		off := 8 + 3*8 + 6*8 + 8
		b := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(b[off:], 1<<30)
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		if read(b) == nil {
			t.Error("accepted")
		}
	})
}

func TestCheckpointSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.ckpt")
	want := sampleCheckpoint()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("Save/Load round trip differs")
	}
	// Overwrite must not leave temp droppings behind.
	want.Engine.Seq++
	want.Engine.NextK++
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "session.ckpt" {
		t.Errorf("directory holds %v", entries)
	}
	if got, err = Load(path); err != nil || got.Engine.Seq != want.Engine.Seq {
		t.Errorf("reload: %+v, %v", got.Engine, err)
	}
}

// FuzzCheckpointRead holds the decoder to the strict-decoder bar:
// arbitrary bytes either fail or decode to a checkpoint that re-encodes
// to the identical bytes.
func FuzzCheckpointRead(f *testing.F) {
	f.Add(encodeF(f, sampleCheckpoint()))
	f.Add(encodeF(f, &Checkpoint{
		Width: time.Second, Hop: time.Second,
		Incidents: diagnose.TrackerSnapshot{FirstAlertSeq: -1},
	}))
	f.Add([]byte("LPK1"))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := Read(bytes.NewReader(b))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), b) {
			t.Fatal("decode/encode not canonical")
		}
	})
}

func encodeF(f *testing.F, c *Checkpoint) []byte {
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
