// Package netsim is a fluid (rate-based) flow-level network simulator over
// a topology fabric. It substitutes for the RDMA network of the production
// platform the paper measures.
//
// Model: each active flow receives, on every link of its path, an equal
// share of the link's effective capacity; the flow's rate is the minimum
// share along its path (per-link processor sharing — max-min fairness
// without slack redistribution, the standard fluid abstraction for long
// RDMA flows). Rates change only when a flow starts or finishes or a
// capacity fault is injected; remaining bytes are settled lazily at those
// instants, and projected completion times are tracked in a priority queue
// with generation-stamped lazy invalidation.
//
// ModeAnalytic freezes each flow's rate at admission (no reaction to later
// arrivals), trading fidelity for speed; the A1 ablation quantifies the
// difference.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

// Mode selects the rate model.
type Mode uint8

// Rate models.
const (
	// ModeFairShare recomputes equal-share rates on every arrival and
	// departure (default).
	ModeFairShare Mode = iota
	// ModeAnalytic fixes each flow's rate at admission time.
	ModeAnalytic
)

// Config parameterizes a Network.
type Config struct {
	// Mode selects the rate model. Default ModeFairShare.
	Mode Mode
	// BaseLatency is the per-flow startup latency (propagation + RDMA
	// protocol overhead). Default 8µs.
	BaseLatency time.Duration
	// NVLinkGBps is the intra-node transfer bandwidth in gigabytes/s used
	// for same-server transfers that never reach the fabric. Default 400.
	NVLinkGBps float64
}

func (c Config) withDefaults() Config {
	if c.BaseLatency <= 0 {
		c.BaseLatency = 8 * time.Microsecond
	}
	if c.NVLinkGBps <= 0 {
		c.NVLinkGBps = 400
	}
	return c
}

// Handle identifies an active flow inside the Network.
type Handle int32

// Completion reports a finished flow.
type Completion struct {
	Handle   Handle
	Tag      uint64
	Src, Dst flow.Addr
	Bytes    int64
	Start    time.Duration // sim time the flow was admitted
	End      time.Duration // sim time the last byte arrived
	// Switches is the routed switch path (empty for intra-node flows).
	Switches []flow.SwitchID
	// IntraNode is true for same-server transfers.
	IntraNode bool
}

type flowState struct {
	active    bool
	tag       uint64
	src, dst  flow.Addr
	bytes     int64
	remaining float64 // bytes left to drain
	rate      float64 // bytes/sec currently allocated
	updatedAt float64 // sim seconds of the last settle
	startSec  float64
	gen       uint32
	links     []topology.LinkID
	switches  []flow.SwitchID
	intraNode bool
}

type heapEntry struct {
	at     float64
	handle Handle
	gen    uint32
}

type completionHeap []heapEntry

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].handle < h[j].handle
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Network simulates flows over a topology. Construct with New.
type Network struct {
	topo      *topology.Topology
	cfg       Config
	capacity  []float64 // effective capacity per link, bytes/sec
	baseCap   []float64
	flows     []flowState
	freeList  []Handle
	linkFlows [][]Handle
	heap      completionHeap
	now       float64 // sim seconds
	active    int
	completed uint64
}

// New builds a Network over topo.
func New(topo *topology.Topology, cfg Config) *Network {
	cfg = cfg.withDefaults()
	links := topo.Links()
	n := &Network{
		topo:      topo,
		cfg:       cfg,
		capacity:  make([]float64, len(links)),
		baseCap:   make([]float64, len(links)),
		linkFlows: make([][]Handle, len(links)),
	}
	for i, l := range links {
		n.capacity[i] = l.Capacity
		n.baseCap[i] = l.Capacity
	}
	return n
}

// Now returns the current simulation time.
func (n *Network) Now() time.Duration { return secToDur(n.now) }

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return n.active }

// CompletedFlows returns the total number of completed flows.
func (n *Network) CompletedFlows() uint64 { return n.completed }

// Start admits a flow at sim time `at` (which must be >= the time of the
// last processed event). label differentiates ECMP paths. Intra-node pairs
// are modelled as NVLink transfers that never touch the fabric.
func (n *Network) Start(src, dst flow.Addr, bytes int64, label uint32, tag uint64, at time.Duration) (Handle, error) {
	atSec := durToSec(at)
	// 2ns tolerance: callers feed back Completion.End values that were
	// rounded to the nanosecond, so they can sit just below the float
	// clock.
	if atSec < n.now-2e-9 {
		return 0, fmt.Errorf("netsim: Start at %v is before current sim time %v", at, n.Now())
	}
	if atSec > n.now {
		n.now = atSec
	}
	if bytes <= 0 {
		bytes = 1
	}

	h := n.alloc()
	st := &n.flows[h]
	st.active = true
	st.tag = tag
	st.src, st.dst = src, dst
	st.bytes = bytes
	st.remaining = float64(bytes)
	st.rate = 0 // recycled entries must not inherit a stale rate
	st.startSec = atSec
	st.updatedAt = atSec + n.cfg.BaseLatency.Seconds()
	st.gen++

	path := n.topo.Route(src, dst, label)
	st.intraNode = path.IntraNode
	st.links = path.Links
	st.switches = path.Switches
	n.active++

	if path.IntraNode {
		st.rate = n.cfg.NVLinkGBps * 1e9
		n.push(h)
		return h, nil
	}

	for _, l := range st.links {
		n.linkFlows[l] = append(n.linkFlows[l], h)
	}
	if n.cfg.Mode == ModeAnalytic {
		st.rate = n.pathRate(st.links)
		n.push(h)
		return h, nil
	}
	n.recomputeAround(st.links)
	return h, nil
}

// pathRate returns the equal-share rate along links given current counts.
func (n *Network) pathRate(links []topology.LinkID) float64 {
	rate := math.Inf(1)
	for _, l := range links {
		share := n.capacity[l] / float64(len(n.linkFlows[l]))
		if share < rate {
			rate = share
		}
	}
	if math.IsInf(rate, 1) {
		return 0
	}
	return rate
}

// recomputeAround settles and re-rates every active flow that shares a link
// with the given set, including flows on those links themselves.
func (n *Network) recomputeAround(links []topology.LinkID) {
	seen := make(map[Handle]struct{})
	for _, l := range links {
		for _, h := range n.linkFlows[l] {
			seen[h] = struct{}{}
		}
	}
	for h := range seen {
		n.reRate(h)
	}
}

func (n *Network) reRate(h Handle) {
	st := &n.flows[h]
	if !st.active || st.intraNode {
		return
	}
	newRate := n.pathRate(st.links)
	if st.rate > 0 && math.Abs(newRate-st.rate) < 1e-9*st.rate {
		return
	}
	n.settle(h)
	st.rate = newRate
	st.gen++
	n.push(h)
}

// settle drains remaining bytes up to n.now at the current rate.
func (n *Network) settle(h Handle) {
	st := &n.flows[h]
	if n.now > st.updatedAt {
		st.remaining -= st.rate * (n.now - st.updatedAt)
		if st.remaining < 0 {
			st.remaining = 0
		}
		st.updatedAt = n.now
	}
}

func (n *Network) push(h Handle) {
	st := &n.flows[h]
	var at float64
	if st.rate <= 0 {
		return // stalled: no completion until capacity returns
	}
	at = st.updatedAt + st.remaining/st.rate
	heap.Push(&n.heap, heapEntry{at: at, handle: h, gen: st.gen})
}

// NextEventTime returns the earliest projected flow completion.
// ok is false when no flow is in flight (or all are stalled).
func (n *Network) NextEventTime() (time.Duration, bool) {
	n.skim()
	if len(n.heap) == 0 {
		return 0, false
	}
	return secToDur(n.heap[0].at), true
}

// skim discards stale heap entries.
func (n *Network) skim() {
	for len(n.heap) > 0 {
		top := n.heap[0]
		st := &n.flows[top.handle]
		if st.active && st.gen == top.gen {
			return
		}
		heap.Pop(&n.heap)
	}
}

// AdvanceTo advances the simulation clock to `at`, completing every flow
// whose completion falls at or before it, in completion order. Completions
// may shift other projected completions (rates rise when flows leave), but
// never to before the popped completion, so ordering is preserved.
func (n *Network) AdvanceTo(at time.Duration) []Completion {
	atSec := durToSec(at)
	var out []Completion
	for {
		n.skim()
		// Tolerance of 1ns: NextEventTime rounds projections to the
		// nanosecond, so an exact-time AdvanceTo must still pop the
		// completion that produced the rounded value.
		if len(n.heap) == 0 || n.heap[0].at > atSec+1e-9 {
			break
		}
		entry := heap.Pop(&n.heap).(heapEntry)
		if entry.at > n.now {
			n.now = entry.at
		}
		out = append(out, n.complete(entry.handle))
	}
	if atSec > n.now {
		n.now = atSec
	}
	return out
}

func (n *Network) complete(h Handle) Completion {
	st := &n.flows[h]
	n.settle(h)
	st.active = false
	n.active--
	n.completed++
	c := Completion{
		Handle:    h,
		Tag:       st.tag,
		Src:       st.src,
		Dst:       st.dst,
		Bytes:     st.bytes,
		Start:     secToDur(st.startSec),
		End:       secToDur(n.now),
		Switches:  st.switches,
		IntraNode: st.intraNode,
	}
	if !st.intraNode {
		for _, l := range st.links {
			n.removeFromLink(l, h)
		}
		if n.cfg.Mode == ModeFairShare {
			n.recomputeAround(st.links)
		}
	}
	st.links = nil
	st.switches = nil
	n.freeList = append(n.freeList, h)
	return c
}

func (n *Network) removeFromLink(l topology.LinkID, h Handle) {
	flows := n.linkFlows[l]
	for i, fh := range flows {
		if fh == h {
			flows[i] = flows[len(flows)-1]
			n.linkFlows[l] = flows[:len(flows)-1]
			return
		}
	}
}

func (n *Network) alloc() Handle {
	if k := len(n.freeList); k > 0 {
		h := n.freeList[k-1]
		n.freeList = n.freeList[:k-1]
		return h
	}
	n.flows = append(n.flows, flowState{})
	return Handle(len(n.flows) - 1)
}

// SetLinkScale sets the effective capacity of one link to scale × nominal
// (scale 1 restores it) and re-rates affected flows.
func (n *Network) SetLinkScale(l topology.LinkID, scale float64, at time.Duration) {
	n.advanceClock(at)
	if scale < 0 {
		scale = 0
	}
	n.capacity[l] = n.baseCap[l] * scale
	n.recomputeAround([]topology.LinkID{l})
}

// SetSwitchScale degrades (or restores) every link attached to a switch —
// the fault model behind the paper's Fig. 5 switch-level diagnosis case.
func (n *Network) SetSwitchScale(sw flow.SwitchID, scale float64, at time.Duration) {
	n.advanceClock(at)
	if scale < 0 {
		scale = 0
	}
	var affected []topology.LinkID
	for _, link := range n.topo.Links() {
		if link.Switch == sw {
			n.capacity[link.ID] = n.baseCap[link.ID] * scale
			affected = append(affected, link.ID)
		}
	}
	n.recomputeAround(affected)
}

// advanceClock moves `now` forward without processing completions; callers
// must have drained completions up to `at` first (the platform driver's
// event loop guarantees this).
func (n *Network) advanceClock(at time.Duration) {
	if s := durToSec(at); s > n.now {
		n.now = s
	}
}

func durToSec(d time.Duration) float64 { return float64(d) / float64(time.Second) }

func secToDur(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}
