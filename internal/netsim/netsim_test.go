package netsim

import (
	"math"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

// testNet builds an 8-node fabric: 100 Gb/s NICs (12.5 GB/s), 2 leaves,
// 2 spines, 400 Gb/s uplinks.
func testNet(t *testing.T, cfg Config) (*Network, *topology.Topology) {
	t.Helper()
	topo, err := topology.New(topology.Spec{
		Nodes: 8, GPUsPerNode: 8, NodesPerLeaf: 4, Spines: 2,
		NICGbps: 100, UplinkGbps: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(topo, cfg), topo
}

func drainAll(t *testing.T, n *Network, horizon time.Duration) []Completion {
	t.Helper()
	var out []Completion
	for {
		at, ok := n.NextEventTime()
		if !ok || at > horizon {
			return out
		}
		out = append(out, n.AdvanceTo(at)...)
	}
}

func TestSingleFlowDuration(t *testing.T) {
	n, topo := testNet(t, Config{})
	src := topo.AddrOf(0, 0)
	dst := topo.AddrOf(1, 0)
	const bytes = 125_000_000 // at 12.5 GB/s -> 10 ms
	if _, err := n.Start(src, dst, bytes, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	comps := drainAll(t, n, time.Second)
	if len(comps) != 1 {
		t.Fatalf("got %d completions, want 1", len(comps))
	}
	c := comps[0]
	wantDur := 10*time.Millisecond + 8*time.Microsecond
	got := c.End - c.Start
	if math.Abs(float64(got-wantDur)) > float64(50*time.Microsecond) {
		t.Errorf("flow duration = %v, want ≈ %v", got, wantDur)
	}
	if c.Tag != 1 || c.Bytes != bytes {
		t.Errorf("completion metadata wrong: %+v", c)
	}
	if len(c.Switches) == 0 {
		t.Error("cross-node flow should traverse switches")
	}
}

func TestTwoFlowsShareNIC(t *testing.T) {
	n, topo := testNet(t, Config{})
	src := topo.AddrOf(0, 0)
	const bytes = 125_000_000
	// Both flows leave the same source NIC: each should get half rate.
	if _, err := n.Start(src, topo.AddrOf(1, 0), bytes, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Start(src, topo.AddrOf(2, 0), bytes, 0, 2, 0); err != nil {
		t.Fatal(err)
	}
	comps := drainAll(t, n, time.Second)
	if len(comps) != 2 {
		t.Fatalf("got %d completions, want 2", len(comps))
	}
	for _, c := range comps {
		got := (c.End - c.Start).Seconds()
		if got < 0.019 || got > 0.022 {
			t.Errorf("shared-NIC flow took %vs, want ≈ 0.02s", got)
		}
	}
}

func TestDepartureRaisesRate(t *testing.T) {
	n, topo := testNet(t, Config{})
	src := topo.AddrOf(0, 0)
	// Short flow and long flow share the NIC; after the short one leaves,
	// the long one speeds up: total time < sequential, > fully parallel.
	if _, err := n.Start(src, topo.AddrOf(1, 0), 62_500_000, 0, 1, 0); err != nil { // 5ms alone
		t.Fatal(err)
	}
	if _, err := n.Start(src, topo.AddrOf(2, 0), 125_000_000, 0, 2, 0); err != nil { // 10ms alone
		t.Fatal(err)
	}
	comps := drainAll(t, n, time.Second)
	if len(comps) != 2 {
		t.Fatalf("got %d completions, want 2", len(comps))
	}
	var long Completion
	for _, c := range comps {
		if c.Tag == 2 {
			long = c
		}
	}
	// Long flow: 10ms shared (drains 62.5MB while short flow finishes its
	// 62.5MB at half rate) then 62.5MB at full rate = 5ms -> 15ms total.
	got := (long.End - long.Start).Seconds()
	if got < 0.0145 || got > 0.0155 {
		t.Errorf("long flow took %vs, want ≈ 0.015s", got)
	}
}

func TestIntraNodeFlow(t *testing.T) {
	n, topo := testNet(t, Config{})
	src, dst := topo.AddrOf(3, 0), topo.AddrOf(3, 7)
	if _, err := n.Start(src, dst, 400_000_000, 0, 9, 0); err != nil {
		t.Fatal(err)
	}
	comps := drainAll(t, n, time.Second)
	if len(comps) != 1 {
		t.Fatalf("got %d completions, want 1", len(comps))
	}
	c := comps[0]
	if !c.IntraNode || len(c.Switches) != 0 {
		t.Errorf("intra-node flow misreported: %+v", c)
	}
	// 400 MB at 400 GB/s ≈ 1 ms.
	got := (c.End - c.Start).Seconds()
	if got < 0.0009 || got > 0.0015 {
		t.Errorf("NVLink flow took %vs, want ≈ 0.001s", got)
	}
}

func TestSwitchDegradationSlowsFlows(t *testing.T) {
	n, topo := testNet(t, Config{})
	src, dst := topo.AddrOf(0, 0), topo.AddrOf(1, 0)
	const bytes = 125_000_000

	// Baseline.
	if _, err := n.Start(src, dst, bytes, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	base := drainAll(t, n, time.Second)[0]
	baseDur := base.End - base.Start

	// Degrade the shared leaf (both nodes are on leaf 0) to 25%.
	n.SetSwitchScale(topo.LeafSwitch(0), 0.25, n.Now())
	if _, err := n.Start(src, dst, bytes, 0, 2, n.Now()); err != nil {
		t.Fatal(err)
	}
	slow := drainAll(t, n, 10*time.Second)[0]
	slowDur := slow.End - slow.Start
	if ratio := float64(slowDur) / float64(baseDur); ratio < 3.5 || ratio > 4.5 {
		t.Errorf("degraded/baseline duration ratio = %.2f, want ≈ 4", ratio)
	}

	// Restore and verify recovery.
	n.SetSwitchScale(topo.LeafSwitch(0), 1, n.Now())
	if _, err := n.Start(src, dst, bytes, 0, 3, n.Now()); err != nil {
		t.Fatal(err)
	}
	rec := drainAll(t, n, time.Minute)[0]
	recDur := rec.End - rec.Start
	if math.Abs(float64(recDur-baseDur)) > float64(time.Millisecond) {
		t.Errorf("restored duration %v differs from baseline %v", recDur, baseDur)
	}
}

func TestStalledFlowResumesAfterRestore(t *testing.T) {
	n, topo := testNet(t, Config{})
	src, dst := topo.AddrOf(0, 0), topo.AddrOf(1, 0)
	if _, err := n.Start(src, dst, 125_000_000, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Kill the src NIC link entirely: flow stalls, no completion event.
	n.SetLinkScale(topology.LinkID(int(src)), 0, 5*time.Millisecond)
	if _, ok := n.NextEventTime(); ok {
		t.Fatal("stalled flow still has a projected completion")
	}
	// Restore at t=1s: flow should finish.
	n.SetLinkScale(topology.LinkID(int(src)), 1, time.Second)
	comps := drainAll(t, n, 10*time.Second)
	if len(comps) != 1 {
		t.Fatalf("got %d completions after restore, want 1", len(comps))
	}
	if comps[0].End < time.Second {
		t.Errorf("flow completed at %v, before the restore", comps[0].End)
	}
}

func TestAnalyticModeIgnoresLaterArrivals(t *testing.T) {
	n, topo := testNet(t, Config{Mode: ModeAnalytic})
	src := topo.AddrOf(0, 0)
	const bytes = 125_000_000
	if _, err := n.Start(src, topo.AddrOf(1, 0), bytes, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Start(src, topo.AddrOf(2, 0), bytes, 0, 2, 0); err != nil {
		t.Fatal(err)
	}
	comps := drainAll(t, n, time.Second)
	if len(comps) != 2 {
		t.Fatalf("got %d completions, want 2", len(comps))
	}
	// First flow was admitted alone: full rate, ≈10ms. Second flow saw
	// concurrency 2 at admission: ≈20ms.
	byTag := map[uint64]time.Duration{}
	for _, c := range comps {
		byTag[c.Tag] = c.End - c.Start
	}
	if d := byTag[1].Seconds(); d < 0.009 || d > 0.011 {
		t.Errorf("first analytic flow took %vs, want ≈ 0.01", d)
	}
	if d := byTag[2].Seconds(); d < 0.019 || d > 0.022 {
		t.Errorf("second analytic flow took %vs, want ≈ 0.02", d)
	}
}

func TestStartBeforeNowRejected(t *testing.T) {
	n, topo := testNet(t, Config{})
	if _, err := n.Start(topo.AddrOf(0, 0), topo.AddrOf(1, 0), 1000, 0, 1, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Start(topo.AddrOf(0, 0), topo.AddrOf(1, 0), 1000, 0, 2, 0); err == nil {
		t.Error("Start in the past should fail")
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	n, topo := testNet(t, Config{})
	const flows = 500
	endpoints := topo.Endpoints()
	started := 0
	for i := 0; i < flows; i++ {
		src := flow.Addr(i % endpoints)
		dst := flow.Addr((i*13 + 7) % endpoints)
		if topo.NodeOf(src) == topo.NodeOf(dst) {
			continue
		}
		at := time.Duration(i) * 10 * time.Microsecond
		if _, err := n.Start(src, dst, int64(1+i)*100_000, uint32(i), uint64(i), at); err != nil {
			t.Fatal(err)
		}
		started++
	}
	comps := drainAll(t, n, time.Hour)
	if len(comps) != started {
		t.Fatalf("completed %d of %d flows", len(comps), started)
	}
	if n.ActiveFlows() != 0 {
		t.Errorf("ActiveFlows = %d after drain, want 0", n.ActiveFlows())
	}
	if n.CompletedFlows() != uint64(started) {
		t.Errorf("CompletedFlows = %d, want %d", n.CompletedFlows(), started)
	}
	for _, c := range comps {
		if c.End < c.Start {
			t.Fatalf("completion ends before start: %+v", c)
		}
	}
}

func TestCompletionsInTimeOrder(t *testing.T) {
	n, topo := testNet(t, Config{})
	for i := 0; i < 64; i++ {
		src := topo.AddrOf(topology.NodeID(i%4), i%8)
		dst := topo.AddrOf(topology.NodeID(4+i%4), (i+3)%8)
		if _, err := n.Start(src, dst, int64(1+i%7)*10_000_000, uint32(i), uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	comps := drainAll(t, n, time.Hour)
	for i := 1; i < len(comps); i++ {
		if comps[i].End < comps[i-1].End {
			t.Fatalf("completions out of order at %d: %v < %v", i, comps[i].End, comps[i-1].End)
		}
	}
}

func BenchmarkFairShareBurst(b *testing.B) {
	topo, err := topology.New(topology.Spec{Nodes: 64, NodesPerLeaf: 16, Spines: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := New(topo, Config{})
		for f := 0; f < 1024; f++ {
			src := topo.AddrOf(topology.NodeID(f%64), f%8)
			dst := topo.AddrOf(topology.NodeID((f+17)%64), f%8)
			if _, err := n.Start(src, dst, 50_000_000, uint32(f), uint64(f), 0); err != nil {
				b.Fatal(err)
			}
		}
		for {
			at, ok := n.NextEventTime()
			if !ok {
				break
			}
			n.AdvanceTo(at)
		}
	}
}
