package llmprism

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// resumeTail filters the full record trace down to the resumed session's
// replay input: every record starting at or after the resume boundary, in
// the original order.
func resumeTail(records []FlowRecord, from time.Time) []FlowRecord {
	var out []FlowRecord
	for _, r := range records {
		if !r.Start.Before(from) {
			out = append(out, r)
		}
	}
	return out
}

// TestResumeMonitorContinuesSession is the crash-equivalence gate for
// monitoring: a session checkpointed after window k and rebuilt with
// ResumeMonitor emits windows k+1..n bit-identical to the uninterrupted
// reference — job ids, incidents (chronic flags included), suspects and
// fused suspect scores. Run with -race to cover the pipelined handoff on
// both sides of the cut.
func TestResumeMonitorContinuesSession(t *testing.T) {
	records, topo := concurrencyTrace(t)
	// A 2s window over the 20s trace gives ~10 windows, so the pipelined
	// session releases windows while records are still arriving — the
	// checkpoint is taken genuinely mid-stream.
	const (
		window   = 2 * time.Second
		lateness = time.Second
		batch    = 300
	)

	variants := []struct {
		name  string
		mopts []MonitorOption
	}{
		{"localization", []MonitorOption{
			WithLateness(lateness), WithPipelineDepth(3),
		}},
		{"chronic suppression + coverage guard", []MonitorOption{
			WithLateness(lateness), WithPipelineDepth(3),
			WithChronicSuppression(IncidentConfig{}),
			WithCoverageGuard(CoverageConfig{}),
		}},
	}
	analyzer := func() *Analyzer {
		return New(WithWorkers(4), WithLocalization(LocalizationConfig{}))
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			// Uninterrupted reference.
			m, err := NewMonitor(analyzer(), topo, window, v.mopts...)
			if err != nil {
				t.Fatal(err)
			}
			s, err := m.Stream(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			ref := pushAll(t, s, records, batch)
			if len(ref) < 3 {
				t.Fatalf("windows = %d, want >= 3", len(ref))
			}

			// Interrupted session: same feed until at least two windows have
			// been released, then checkpoint and abandon mid-stream.
			m, err = NewMonitor(analyzer(), topo, window, v.mopts...)
			if err != nil {
				t.Fatal(err)
			}
			s, err = m.Stream(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			var head []*Report
			for lo := 0; lo < len(records) && len(head) < 2; lo += batch {
				hi := lo + batch
				if hi > len(records) {
					hi = len(records)
				}
				got, err := s.Push(records[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				head = append(head, got...)
			}
			if len(head) < 2 || len(head) >= len(ref) {
				t.Fatalf("interrupted session released %d of %d windows", len(head), len(ref))
			}
			var ck bytes.Buffer
			if err := s.Checkpoint(&ck); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Close(); err != nil { // post-checkpoint output is discarded
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref[:len(head)], head) {
				t.Fatal("interrupted session head diverges from reference (pre-existing invariant)")
			}

			// Resume and replay the tail of the trace.
			m2, err := ResumeMonitor(analyzer(), topo, &ck, v.mopts...)
			if err != nil {
				t.Fatal(err)
			}
			from := m2.ResumeFrom()
			if !from.Equal(ref[len(head)].Window.Start) {
				t.Fatalf("ResumeFrom = %v, want next window start %v", from, ref[len(head)].Window.Start)
			}
			s2, err := m2.Stream(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			tail := pushAll(t, s2, resumeTail(records, from), batch)
			if !reflect.DeepEqual(ref[len(head):], tail) {
				t.Errorf("resumed session diverges from uninterrupted reference (%d tail windows)", len(tail))
			}
		})
	}
}

// TestResumeMonitorRejectsMismatchedOptions: a checkpoint restores state,
// not configuration — resuming with a different localization or coverage
// setup must fail loudly instead of silently diverging.
func TestResumeMonitorRejectsMismatchedOptions(t *testing.T) {
	records, topo := concurrencyTrace(t)
	m, err := NewMonitor(New(WithLocalization(LocalizationConfig{})), topo, 5*time.Second,
		WithCoverageGuard(CoverageConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(records); err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := s.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data := ck.Bytes()

	// No localization on the resuming analyzer.
	if _, err := ResumeMonitor(New(), topo, bytes.NewReader(data), WithCoverageGuard(CoverageConfig{})); err == nil {
		t.Error("resume without localization accepted")
	}
	// No coverage guard in the resuming options.
	if _, err := ResumeMonitor(New(WithLocalization(LocalizationConfig{})), topo, bytes.NewReader(data)); err == nil {
		t.Error("resume without coverage guard accepted")
	}
	// Matching configuration resumes, and a resumed monitor is stream-only.
	m2, err := ResumeMonitor(New(WithLocalization(LocalizationConfig{})), topo, bytes.NewReader(data),
		WithCoverageGuard(CoverageConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Feed(records[:1]); err == nil {
		t.Error("resumed monitor accepted Feed")
	}
}

// TestWithCheckpointFileResume covers the deployment shape: a session
// persisting its state through WithCheckpoint is killed (context
// cancellation, no Close), and a new process resumes from the file on
// disk, reproducing the reference session's remaining windows.
func TestWithCheckpointFileResume(t *testing.T) {
	records, topo := concurrencyTrace(t)
	const (
		window   = 2 * time.Second
		lateness = time.Second
		batch    = 300
	)
	path := filepath.Join(t.TempDir(), "session.ckpt")
	analyzer := func() *Analyzer {
		return New(WithWorkers(4), WithLocalization(LocalizationConfig{}))
	}

	// Uninterrupted reference (no checkpointing).
	m, err := NewMonitor(analyzer(), topo, window, WithLateness(lateness), WithPipelineDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ref := pushAll(t, s, records, batch)
	if len(ref) < 3 {
		t.Fatalf("windows = %d, want >= 3", len(ref))
	}

	// Checkpointing session, killed mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	m, err = NewMonitor(analyzer(), topo, window,
		WithLateness(lateness), WithPipelineDepth(3), WithCheckpoint(path))
	if err != nil {
		t.Fatal(err)
	}
	s, err = m.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var head []*Report
	for lo := 0; lo < len(records) && len(head) < 2; lo += batch {
		hi := lo + batch
		if hi > len(records) {
			hi = len(records)
		}
		got, err := s.Push(records[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		head = append(head, got...)
	}
	if len(head) < 2 || len(head) >= len(ref) {
		t.Fatalf("killed session released %d of %d windows", len(head), len(ref))
	}
	cancel() // the crash: in-flight windows die, the file keeps the last released state

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ResumeMonitor(analyzer(), topo, f,
		WithPipelineDepth(3), WithCheckpoint(path))
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tail := pushAll(t, s2, resumeTail(records, m2.ResumeFrom()), batch)
	if !reflect.DeepEqual(ref[len(head):], tail) {
		t.Fatal("resumed session diverges from uninterrupted reference")
	}
	// The resumed session kept checkpointing: the file now points past the
	// final window.
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	m3, err := ResumeMonitor(analyzer(), topo, f2, WithPipelineDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	if last := ref[len(ref)-1].Window; !m3.ResumeFrom().After(last.Start) {
		t.Errorf("final checkpoint resumes at %v, not past last window %v", m3.ResumeFrom(), last.Start)
	}
}

// TestCoverageGuardMarksDegradedWindows pins the guard's window-level
// semantics on a hand-built trace: early windows pass unjudged while the
// baseline forms, a volume collapse is stamped degraded, and degraded
// windows do not poison the baseline for their successors.
func TestCoverageGuardMarksDegradedWindows(t *testing.T) {
	_, topo := monitorFixture(t)
	m, err := NewMonitor(New(), topo, 10*time.Second,
		WithCoverageGuard(CoverageConfig{BaselineWindows: 4, MinBaseline: 2, DegradedBelow: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0..2 hold 4 records each, window 3 collapses to one record,
	// window 4 recovers.
	var recs []FlowRecord
	id := uint64(0)
	emit := func(w int, n int) {
		for i := 0; i < n; i++ {
			id++
			recs = append(recs, monitorRecord(id, time.Duration(w*10)*time.Second+time.Duration(i)*time.Second, topo))
		}
	}
	emit(0, 4)
	emit(1, 4)
	emit(2, 4)
	emit(3, 1)
	emit(4, 4)
	reports, err := m.Feed(recs)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	reports = append(reports, tail...)
	if len(reports) != 5 {
		t.Fatalf("windows = %d, want 5", len(reports))
	}

	want := []Coverage{
		{Rows: 4},                        // no baseline yet: unjudged
		{Rows: 4},                        // still below MinBaseline
		{Rows: 4, Baseline: 4, Ratio: 1}, // judged healthy
		{Rows: 1, Baseline: 4, Ratio: 0.25, Degraded: true},
		{Rows: 4, Baseline: 4, Ratio: 1}, // degraded window did not drag the baseline down
	}
	for i, w := range want {
		if got := reports[i].Coverage; got != w {
			t.Errorf("window %d coverage = %+v, want %+v", i, got, w)
		}
	}
}
