package llmprism

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/topology"
)

// bulkReplay replays an archive through MonitorStream.PushFrame — the bulk
// columnar path — while re-archiving to rearchived, so both the reports and
// the emitted frame bytes can be held against the per-record reference.
func bulkReplay(t *testing.T, data []byte, topo *topology.Topology, depth int, rearchived *bytes.Buffer, opts ...Option) []*Report {
	t.Helper()
	ar, err := archive.OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	meta := ar.Meta()
	mopts := []MonitorOption{
		WithLateness(meta.Lateness),
		WithPipelineDepth(depth),
		WithChronicSuppression(IncidentConfig{}),
	}
	if !ar.Anchor().IsZero() {
		mopts = append(mopts, WithAnchor(ar.Anchor()))
	}
	if rearchived != nil {
		mopts = append(mopts, WithArchive(rearchived))
	}
	m, err := NewMonitor(New(opts...), topo, meta.Width, mopts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var reports []*Report
	if err := ar.Replay(func(_ archive.Segment, f *FlowFrame) error {
		got, err := s.PushFrame(f)
		reports = append(reports, got...)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tail, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	return append(reports, tail...)
}

// TestPushFrameReplayEquivalence is the end-to-end bulk-ingest gate: an
// archive replayed through PushFrame must reproduce, bit for bit, what the
// per-record Push replay produces — reports (incidents, suspects and fused
// suspects included), late counts, and the re-archived frame bytes — across
// pipeline depths, localization shard counts, and a live session that
// ingested its records permuted within the lateness bound. Run with -race.
func TestPushFrameReplayEquivalence(t *testing.T) {
	records, topo := concurrencyTrace(t)
	const (
		window   = 5 * time.Second
		lateness = 2 * time.Second
	)

	record := func(recs []FlowRecord) ([]*Report, []byte) {
		var buf bytes.Buffer
		m, err := NewMonitor(New(WithWorkers(4), WithLocalization(LocalizationConfig{})), topo, window,
			WithLateness(lateness), WithPipelineDepth(3), WithArchive(&buf),
			WithChronicSuppression(IncidentConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		reports := pushAll(t, s, recs, 300)
		return reports, buf.Bytes()
	}
	live, data := record(records)
	if len(live) < 3 {
		t.Fatalf("windows = %d, want >= 3", len(live))
	}

	// Per-record reference replay, re-archiving as it goes.
	ar, err := archive.OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var refArchive bytes.Buffer
	refMon, err := NewMonitor(New(WithWorkers(4), WithLocalization(LocalizationConfig{})), topo, ar.Meta().Width,
		WithLateness(ar.Meta().Lateness), WithPipelineDepth(3), WithAnchor(ar.Anchor()),
		WithArchive(&refArchive), WithChronicSuppression(IncidentConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	refStream, err := refMon.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var want []*Report
	if err := ar.Replay(func(_ archive.Segment, f *FlowFrame) error {
		got, err := refStream.Push(f.RecordsByStart())
		want = append(want, got...)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tail, err := refStream.Close()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, tail...)
	if !reflect.DeepEqual(live, want) {
		t.Fatal("per-record replay diverges from live session (pre-existing invariant)")
	}

	for _, depth := range []int{1, 3} {
		for _, shards := range []int{0, 1, 4} {
			var bulkArchive bytes.Buffer
			got := bulkReplay(t, data, topo, depth, &bulkArchive,
				WithWorkers(4), WithLocalization(LocalizationConfig{Shards: shards}))
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("depth=%d shards=%d: PushFrame replay reports diverge from per-record replay", depth, shards)
			}
			if !bytes.Equal(refArchive.Bytes(), bulkArchive.Bytes()) {
				t.Fatalf("depth=%d shards=%d: PushFrame replay archived different frame bytes", depth, shards)
			}
		}
	}

	// Late accounting must match too: replay with zero lateness so archived
	// rows that straddle window bounds arrive late for their windows.
	zeroLateness := func(push bool, out *bytes.Buffer) ([]*Report, uint64) {
		ar2, err := archive.OpenReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMonitor(New(), topo, ar2.Meta().Width, WithAnchor(ar2.Anchor()), WithArchive(out))
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var reports []*Report
		if err := ar2.Replay(func(_ archive.Segment, f *FlowFrame) error {
			var got []*Report
			var err error
			if push {
				got, err = s.Push(f.RecordsByStart())
			} else {
				got, err = s.PushFrame(f)
			}
			reports = append(reports, got...)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		tail, err := s.Close()
		if err != nil {
			t.Fatal(err)
		}
		return append(reports, tail...), s.Late()
	}
	var lateRef, lateBulk bytes.Buffer
	wantReports, wantLate := zeroLateness(true, &lateRef)
	gotReports, gotLate := zeroLateness(false, &lateBulk)
	if !reflect.DeepEqual(wantReports, gotReports) {
		t.Fatal("zero-lateness PushFrame replay diverges from per-record replay")
	}
	if gotLate != wantLate {
		t.Fatalf("late counts diverge: %d (push) vs %d (frame)", wantLate, gotLate)
	}
	if !bytes.Equal(lateRef.Bytes(), lateBulk.Bytes()) {
		t.Fatal("zero-lateness replays archived different frame bytes")
	}

	// A session recorded from permuted-within-lateness arrivals archives
	// canonical frames; its bulk replay must land on the same reports.
	permLive, permData := record(permuteWithinLateness(records, lateness/2, 3))
	if !reflect.DeepEqual(live, permLive) {
		t.Fatal("permuted live session diverges (pre-existing invariant)")
	}
	if got := bulkReplay(t, permData, topo, 3, nil, WithWorkers(4), WithLocalization(LocalizationConfig{})); !reflect.DeepEqual(permLive, got) {
		t.Fatal("PushFrame replay of permuted-session archive diverges")
	}
}
